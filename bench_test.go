// Benchmarks regenerating the paper's tables and figures, one per artifact
// (see DESIGN.md's per-experiment index). Each benchmark executes the full
// simulation and reports the measured *virtual* quantity (latency in
// microseconds or bandwidth in GB/s) as custom metrics; the Go ns/op number
// is simulator wall time and is not a result.
//
// Virtual time vs wall clock: the simulated metrics (us@..., GBps@...) are
// deterministic properties of the modeled hardware — they never change with
// the machine running the benchmark, the -benchtime setting, or engine
// optimizations (any refactor of internal/sim must keep them bit-identical).
// Wall-clock numbers (ns/op here, and events/sec in the internal/sim suite)
// measure the simulator substrate itself and bound how many scenarios a
// sweep can cover per core-hour.
//
// The substrate has its own microbenchmark suite (event throughput,
// park/dispatch latency, condition-broadcast storms):
//
//	go test ./internal/sim -bench=BenchmarkEngine -benchmem
//
// with tracked before/after numbers in BENCH_sim.json.
//
// For full sweeps and paper-style tables use cmd/collbench, cmd/inferbench
// and cmd/deepepbench; their independent simulations fan out across
// GOMAXPROCS-bounded workers (see benchkit.Parallel) with byte-identical
// output to a sequential run.
package mscclpp

import (
	"fmt"
	"testing"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/collective"
	"mscclpp/internal/core"
	"mscclpp/internal/dsl"
	"mscclpp/internal/executor"
	"mscclpp/internal/inference"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/moe"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// benchSizes is a compressed size grid (full grid in cmd/collbench).
var benchSmall = []int64{1 << 10, 32 << 10, 1 << 20}
var benchLarge = []int64{16 << 20, 256 << 20}

func reportSweep(b *testing.B, env *topology.Env, fn benchkit.MeasureFn, sizes []int64, metric string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, size := range sizes {
			d, _, err := fn(env, size)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				if metric == "us" {
					b.ReportMetric(float64(d)/1000, fmt.Sprintf("us@%s", benchkit.HumanSize(size)))
				} else {
					b.ReportMetric(float64(size)/float64(d), fmt.Sprintf("GBps@%s", benchkit.HumanSize(size)))
				}
			}
		}
	}
}

// BenchmarkTable1P2P reproduces Table 1: primitive peer-to-peer performance.
func BenchmarkTable1P2P(b *testing.B) {
	b.Run("NVLinkThroughput", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.New(topology.H100(1))
			c := core.NewCommunicator(m)
			const size = 256 << 20
			src, dst := m.Alloc(0, "src", size), m.Alloc(1, "dst", size)
			ch, _ := c.NewPortChannelPairEx(0, 1, src, dst, dst, src)
			m.GPUs[0].Launch("bw", 1, func(k *machine.Kernel) {
				ch.Put(k, 0, 0, size, 0, 1)
				ch.Flush(k)
			})
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(size)/float64(m.Now()-m.Model.KernelLaunch), "GBps")
			}
		}
	})
	b.Run("IBLatency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := machine.New(topology.H100(2))
			c := core.NewCommunicator(m)
			src, dst := m.Alloc(0, "src", 4), m.Alloc(8, "dst", 4)
			ch0, ch1 := c.NewPortChannelPairEx(0, 8, src, dst, dst, src)
			var lat sim.Duration
			m.GPUs[0].Launch("s", 1, func(k *machine.Kernel) { ch0.PutWithSignal(k, 0, 0, 4, 0, 1) })
			m.GPUs[8].Launch("r", 1, func(k *machine.Kernel) {
				t0 := k.Now()
				ch1.Wait(k)
				lat = k.Now() - t0
			})
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(lat)/1000, "us")
			}
		}
	})
}

// BenchmarkFig7AllReduceA100 reproduces Figure 7 (AllReduce, A100-40G).
func BenchmarkFig7AllReduceA100(b *testing.B) {
	for _, nodes := range []int{1, 2} {
		for _, lib := range []struct {
			name string
			fn   benchkit.MeasureFn
		}{{"NCCL", benchkit.NCCLAllReduce}, {"MSCCL", benchkit.MSCCLAllReduce}, {"MSCCLPP", benchkit.MSCCLPPAllReduce}} {
			b.Run(fmt.Sprintf("%dn/%s/small", nodes, lib.name), func(b *testing.B) {
				reportSweep(b, topology.A100_40G(nodes), lib.fn, benchSmall, "us")
			})
			b.Run(fmt.Sprintf("%dn/%s/large", nodes, lib.name), func(b *testing.B) {
				reportSweep(b, topology.A100_40G(nodes), lib.fn, benchLarge, "GBps")
			})
		}
	}
}

// BenchmarkFig8AllGatherA100 reproduces Figure 8 (AllGather, A100-40G).
func BenchmarkFig8AllGatherA100(b *testing.B) {
	for _, lib := range []struct {
		name string
		fn   benchkit.MeasureFn
	}{{"NCCL", benchkit.NCCLAllGather}, {"MSCCL", benchkit.MSCCLAllGather}, {"MSCCLPP", benchkit.MSCCLPPAllGather}} {
		b.Run("1n/"+lib.name+"/small", func(b *testing.B) {
			reportSweep(b, topology.A100_40G(1), lib.fn, benchSmall, "us")
		})
		b.Run("1n/"+lib.name+"/large", func(b *testing.B) {
			reportSweep(b, topology.A100_40G(1), lib.fn, benchLarge, "GBps")
		})
	}
}

// BenchmarkFig9AllReduceH100 reproduces Figure 9 (AllReduce, H100, NVLS).
func BenchmarkFig9AllReduceH100(b *testing.B) {
	for _, lib := range []struct {
		name string
		fn   benchkit.MeasureFn
	}{{"NCCL", benchkit.NCCLAllReduce}, {"MSCCL", benchkit.MSCCLAllReduce}, {"MSCCLPP", benchkit.MSCCLPPAllReduce}} {
		b.Run(lib.name+"/small", func(b *testing.B) {
			reportSweep(b, topology.H100(1), lib.fn, benchSmall, "us")
		})
		b.Run(lib.name+"/large", func(b *testing.B) {
			reportSweep(b, topology.H100(1), lib.fn, benchLarge, "GBps")
		})
	}
}

// BenchmarkFig10AllReduceMI300x reproduces Figure 10 (AllReduce, MI300x).
func BenchmarkFig10AllReduceMI300x(b *testing.B) {
	for _, lib := range []struct {
		name string
		fn   benchkit.MeasureFn
	}{{"RCCL", benchkit.NCCLAllReduce}, {"MSCCL", benchkit.MSCCLAllReduce}, {"MSCCLPP", benchkit.MSCCLPPAllReduce}} {
		b.Run(lib.name+"/small", func(b *testing.B) {
			reportSweep(b, topology.MI300x(1), lib.fn, benchSmall, "us")
		})
		b.Run(lib.name+"/large", func(b *testing.B) {
			reportSweep(b, topology.MI300x(1), lib.fn, benchLarge, "GBps")
		})
	}
}

// BenchmarkFig11VLLMDecode reproduces Figure 11 (Llama3-70B decode speedup).
func BenchmarkFig11VLLMDecode(b *testing.B) {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	env := envFn()
	model := inference.Llama3x70B(8)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	for i := 0; i < b.N; i++ {
		var sps []float64
		for _, bsz := range []int{1, 8, 64} {
			tN := inference.DecodeStep(env, model, bsz, 512, nccl.Time)
			tM := inference.DecodeStep(env, model, bsz, 512, mpp.Time)
			sps = append(sps, inference.Speedup(tN, tM))
		}
		if i == 0 {
			b.ReportMetric(benchkit.Geomean(sps), "speedup")
		}
	}
}

// BenchmarkFig12SGLangDecode reproduces Figure 12 (DeepSeek-V3 decode).
func BenchmarkFig12SGLangDecode(b *testing.B) {
	envFn := func() *topology.Env { return topology.H100(2) }
	env := envFn()
	model := inference.DeepSeekV3(16)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	for i := 0; i < b.N; i++ {
		var sps []float64
		var tput float64
		for _, bsz := range []int{1, 16, 64} {
			tN := inference.DecodeStep(env, model, bsz, 1024, nccl.Time)
			tM := inference.DecodeStep(env, model, bsz, 1024, mpp.Time)
			sps = append(sps, inference.Speedup(tN, tM))
			tput = inference.DecodeThroughput(bsz, tM)
		}
		if i == 0 {
			b.ReportMetric(benchkit.Geomean(sps), "speedup")
			b.ReportMetric(tput, "tok/s@64")
		}
	}
}

// BenchmarkFig13DeepEP reproduces Figure 13 (expert-parallel dispatch and
// combine bandwidth, MSCCL++ vs NVSHMEM-IBGDA).
func BenchmarkFig13DeepEP(b *testing.B) {
	for _, tr := range []moe.Transport{moe.TransportMSCCLPP, moe.TransportIBGDA} {
		b.Run(string(tr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := moe.New(moe.Paper13Env(), moe.DefaultConfig(), tr)
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Dispatch(16384)
				if err != nil {
					b.Fatal(err)
				}
				resC, err := e.Combine(16384)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.AlgoBWGBs, "dispatchGBps")
					b.ReportMetric(resC.AlgoBWGBs, "combineGBps")
				}
			}
		})
	}
}

// BenchmarkDSLvsPrimitive reproduces the §7.1 comparison: the same algorithm
// authored in the DSL (interpreted by the Executor) vs hand-written against
// the Primitive API.
func BenchmarkDSLvsPrimitive(b *testing.B) {
	const size = 64 << 10
	for i := 0; i < b.N; i++ {
		prog, err := dsl.BuildAllReduce1PA(8, size, 2)
		if err != nil {
			b.Fatal(err)
		}
		pl, err := prog.Lower()
		if err != nil {
			b.Fatal(err)
		}
		mD := machine.New(topology.A100_40G(1))
		mD.MaterializeLimit = 0
		inst, err := executor.New(core.NewCommunicator(mD), pl, allocPair(mD, size), allocPair2(mD, size))
		if err != nil {
			b.Fatal(err)
		}
		var dslT sim.Duration
		for it := 0; it < 2; it++ {
			start := mD.Engine.Now()
			inst.Launch()
			if err := mD.Run(); err != nil {
				b.Fatal(err)
			}
			dslT = mD.Engine.Now() - start
		}
		mP := machine.New(topology.A100_40G(1))
		mP.MaterializeLimit = 0
		cP := collective.New(mP)
		ex, err := (&collective.AllReduce1PA{TB: 2}).Prepare(cP, allocPair(mP, size), allocPair2(mP, size))
		if err != nil {
			b.Fatal(err)
		}
		var primT sim.Duration
		for it := 0; it < 2; it++ {
			if primT, err = cP.Run(ex); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			b.ReportMetric(float64(dslT-primT)/float64(primT)*100, "overhead%")
		}
	}
}

func allocPair(m *machine.Machine, size int64) []*mem.Buffer {
	var out []*mem.Buffer
	for r := 0; r < len(m.GPUs); r++ {
		out = append(out, m.Alloc(r, "a", size))
	}
	return out
}

func allocPair2(m *machine.Machine, size int64) []*mem.Buffer {
	var out []*mem.Buffer
	for r := 0; r < len(m.GPUs); r++ {
		out = append(out, m.Alloc(r, "b", size))
	}
	return out
}

// BenchmarkAblationChannels reproduces the §7.1/§7.2 gain-breakdown
// ablations: LL vs HB one-phase, PortChannel vs MemoryChannel ring, and
// SwitchChannel vs MemoryChannel.
func BenchmarkAblationChannels(b *testing.B) {
	measure := func(b *testing.B, env *topology.Env, algo collective.Algorithm, size int64) sim.Duration {
		m := machine.New(env)
		m.MaterializeLimit = 0
		c := collective.New(m)
		ex, err := algo.Prepare(c, allocPair(m, size), allocPair2(m, size))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(ex); err != nil {
			b.Fatal(err)
		}
		d, err := c.Run(ex)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	b.Run("LLvsHB1KB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ll := measure(b, topology.A100_40G(1), &collective.AllReduce1PA{}, 1<<10)
			hb := measure(b, topology.A100_40G(1), &collective.AllReduce1PAHB{}, 1<<10)
			if i == 0 {
				b.ReportMetric((1-float64(ll)/float64(hb))*100, "latencyCut%")
			}
		}
	})
	b.Run("PortVsMemoryRing256MB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			port := measure(b, topology.A100_40G(1), &collective.AllReduce2PR{}, 256<<20)
			memv := measure(b, topology.A100_40G(1), &collective.AllReduce2PR{UseMemoryChannel: true}, 256<<20)
			if i == 0 {
				b.ReportMetric((float64(memv)/float64(port)-1)*100, "portGain%")
			}
		}
	})
	b.Run("SwitchVsMemory256MB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sw := measure(b, topology.H100(1), &collective.AllReduce2PASwitch{}, 256<<20)
			mc := measure(b, topology.H100(1), &collective.AllReduce2PAHB{}, 256<<20)
			if i == 0 {
				b.ReportMetric((float64(mc)/float64(sw)-1)*100, "switchGain%")
			}
		}
	})
}
