module mscclpp

go 1.24
