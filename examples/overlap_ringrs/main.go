// Overlapped ring ReduceScatter: the paper's Figure 6 program, authored in
// the DSL — PortChannel half-chunk puts whose DMA transfers overlap the
// local reduction of the previously received halves — executed and verified,
// then compared against a non-overlapped variant to show the win.
package main

import (
	"fmt"
	"log"

	"mscclpp"
)

const (
	ranks = 8
	size  = int64(8 << 20)
)

func runPlan(p *mscclpp.Plan, verify bool) (float64, error) {
	cluster := mscclpp.NewCluster(mscclpp.A100x40G(1))
	if verify {
		cluster.MaterializeLimit = 1 << 40
	} else {
		cluster.MaterializeLimit = 0
	}
	comm := mscclpp.NewCommunicator(cluster)
	in := make([]*mscclpp.Buffer, ranks)
	out := make([]*mscclpp.Buffer, ranks)
	for r := 0; r < ranks; r++ {
		in[r] = cluster.Alloc(r, "in", size)
		out[r] = cluster.Alloc(r, "out", size)
	}
	pattern := func(r int, i int64) float32 { return float32(r+1) + float32(i%7) }
	mscclpp.FillInputs(in, pattern)
	inst, err := mscclpp.NewExecutor(comm, p, in, out)
	if err != nil {
		return 0, err
	}
	start := cluster.Now()
	inst.Launch()
	if err := cluster.Run(); err != nil {
		return 0, err
	}
	elapsed := float64(cluster.Now()-start) / 1000
	if verify {
		// After Figure 6's ReduceScatter, rank r's working buffer holds
		// chunk (r+1)%N fully reduced.
		chunk := size / ranks
		for r := 0; r < ranks; r++ {
			owned := int64((r + 1) % ranks)
			base := owned * chunk / 4
			for el := int64(0); el < chunk/4; el += 997 {
				got := out[r].Float32(owned*chunk + el*4)
				var want float32
				for p := 0; p < ranks; p++ {
					want += float32(p+1) + float32((base+el)%7)
				}
				if d := got - want; d > 1e-3 || d < -1e-3 {
					return 0, fmt.Errorf("rank %d elem %d: got %v want %v", r, el, got, want)
				}
			}
		}
	}
	return elapsed, nil
}

func main() {
	prog, err := mscclpp.BuildRingReduceScatter(ranks, size)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := prog.Lower()
	if err != nil {
		log.Fatal(err)
	}
	elapsed, err := runPlan(plan, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 6 overlapped ring ReduceScatter (%dMB, 8 GPUs): %.2fus (verified)\n",
		size>>20, elapsed)
	fmt.Println("plan ops on rank 0 / tb 0:", len(plan.Programs[0][0]),
		"(puts fused with signals where adjacent)")
}
