// Disaggregation example: the same Poisson request stream replayed against
// (a) a chunked-prefill cluster — every replica interleaves prompt
// processing with decode — and (b) every disaggregated prefill/decode
// split of the same replica slots, where finished prefills hand their KV
// cache to a decode replica over the simulated cluster fabric
// (serve.RunDisaggregated). The handoff is priced per tensor-parallel rank
// on the fabric's RDMA NICs, so the comparison shows both sides of the
// trade: decode iterations freed from prefill chunks, against prompt
// queueing on a smaller prefill pool plus real transfer time.
//
// Flags keep it smoke-test friendly:
//
//	go run ./examples/disagg -requests 60 -slots 3
package main

import (
	"flag"
	"fmt"
	"log"

	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func main() {
	n := flag.Int("requests", 240, "number of requests")
	slots := flag.Int("slots", 4, "replica slots (chunked uses all; disagg splits them)")
	rate := flag.Float64("rate", 14, "Poisson arrival rate, requests/second")
	median := flag.Float64("prompt-median", 1536, "median prompt length, tokens")
	seed := flag.Uint64("seed", 21, "workload seed")
	flag.Parse()
	if *slots < 2 {
		log.Fatal("need -slots >= 2 to have both a prefill and a decode pool")
	}

	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	replica := serve.Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              timer.Time,
		MaxBatch:        24,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}

	wl := serve.Poisson(*seed, *n, *rate,
		serve.LogNormalLen(*median, 0.6, int(*median*4)), serve.LogNormalLen(96, 0.5, 256))
	fmt.Printf("Workload: %s — %d requests, %d prompt + %d output tokens (median prompt %.0f)\n",
		wl.Name, len(wl.Requests), wl.TotalPromptTokens(), wl.TotalOutputTokens(), *median)
	fmt.Printf("Cluster: %d replica slots, each Llama3-70b TP=8 on one A100-80G node (MSCCL++ collectives)\n\n", *slots)

	slo := serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}
	fmt.Printf("%-12s %9s %9s %9s %9s %7s %11s %9s\n",
		"config", "ttft p50", "ttft p99", "tpot p99", "goodput", "slo%", "handoff ms", "moved GB")

	chunked, err := serve.RunRouted(serve.RouterConfig{
		Replicas: *slots,
		Policy:   serve.NewJSQ(),
		Replica:  replica,
	}, wl)
	if err != nil {
		log.Fatal(err)
	}
	cs := chunked.Summarize(slo)
	fmt.Printf("%-12s %9.1f %9.1f %9.1f %9.0f %6.1f%%\n",
		fmt.Sprintf("chunked-%d", *slots), cs.TTFTp50ms, cs.TTFTp99ms, cs.TPOTp99ms, cs.GoodputTokS, 100*cs.SLOAttainment)

	for p := 1; p < *slots; p++ {
		res, err := serve.RunDisaggregated(serve.DisaggConfig{
			PrefillReplicas: p,
			DecodeReplicas:  *slots - p,
			Replica:         replica,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summarize(slo)
		fmt.Printf("%-12s %9.1f %9.1f %9.1f %9.0f %6.1f%% %11.2f %9.1f\n",
			fmt.Sprintf("disagg-%dp%dd", p, *slots-p),
			s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment,
			float64(res.HandoffMeanNs)/1e6, float64(res.HandoffBytes)/1e9)
	}

	fmt.Println("\nDecode pools never run prefill chunks, so while the decode side has")
	fmt.Println("headroom TPOT collapses to the pure decode iteration time; the costs are")
	fmt.Println("prompt queueing on the prefill pool, the fabric KV handoff, and — if the")
	fmt.Println("decode pool is cut too small — decode queueing that inflates TPOT past")
	fmt.Println("the chunked baseline. Long prompts and tight TPOT SLOs favor")
	fmt.Println("disaggregation; short prompts keep chunked prefill ahead. Rerun with")
	fmt.Println("-prompt-median / -rate / -slots to walk the crossover.")
}
