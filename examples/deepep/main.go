// DeepEP example: expert-parallel token dispatch over two simulated H100
// nodes, comparing MSCCL++ PortChannels with an NVSHMEM-IBGDA-style stack
// (the paper's Figure 13 workload) at a few batch sizes.
package main

import (
	"fmt"
	"log"

	"mscclpp/internal/moe"
)

func main() {
	cfg := moe.DefaultConfig()
	fmt.Println("DeepEP dispatch (FP8) on 2x H100 nodes, DeepSeek-V3 settings:")
	for _, tokens := range []int{512, 4096, 32768} {
		var bws []float64
		for _, tr := range []moe.Transport{moe.TransportMSCCLPP, moe.TransportIBGDA} {
			e, err := moe.New(moe.Paper13Env(), cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			res, err := e.Dispatch(tokens)
			if err != nil {
				log.Fatal(err)
			}
			bws = append(bws, res.AlgoBWGBs)
		}
		fmt.Printf("  tokens=%-6d  MSCCL++ %6.1f GB/s   NVSHMEM-IBGDA %6.1f GB/s\n",
			tokens, bws[0], bws[1])
	}
}
