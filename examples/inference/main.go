// Inference example: measure the decode-step speedup of MSCCL++ over an
// NCCL-style baseline for Llama3-70B tensor-parallel inference (the paper's
// Figure 11 workload) at a few batch sizes.
package main

import (
	"fmt"

	"mscclpp/internal/inference"
	"mscclpp/internal/topology"
)

func main() {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	env := envFn()
	model := inference.Llama3x70B(8)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	fmt.Println("Llama3-70b decode, TP=8 on simulated A100-80G (seqlen 512):")
	for _, bsz := range []int{1, 8, 32} {
		tN := inference.DecodeStep(env, model, bsz, 512, nccl.Time)
		tM := inference.DecodeStep(env, model, bsz, 512, mpp.Time)
		fmt.Printf("  bsz=%-3d  NCCL %6.2fms  MSCCL++ %6.2fms  speedup %.2fx\n",
			bsz, float64(tN)/1e6, float64(tM)/1e6, inference.Speedup(tN, tM))
	}
}
