// Routing example: the same bursty request stream, with 60% of requests
// sharing one of a handful of prompt prefixes (multi-tenant system
// prompts), replayed against a 3-replica Llama3-70B cluster under each
// routing policy — round-robin, join-shortest-queue, and prefix-cache
// affinity. Every replica is a full continuous-batching engine over the
// simulated cluster model (internal/serve.Scheduler); the router splits
// arrivals inside one discrete-event timeline, so policies are compared
// at exactly equal offered load.
//
// Flags keep it smoke-test friendly:
//
//	go run ./examples/routing -requests 60 -replicas 2
package main

import (
	"flag"
	"fmt"
	"log"

	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func main() {
	n := flag.Int("requests", 240, "number of requests")
	replicas := flag.Int("replicas", 3, "number of replica engines")
	seed := flag.Uint64("seed", 11, "workload seed")
	flag.Parse()

	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	replica := serve.Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              timer.Time,
		MaxBatch:        24,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}

	// An on/off bursty arrival process (base 6 req/s, 48 req/s spikes),
	// then 60% of requests tagged with one of 12 shared 256-token
	// prefixes. Arrivals and lengths are identical across policies.
	wl := serve.WithPrefixGroups(
		serve.Bursty(*seed, *n, 6, 48, 6*sim.Second, 2*sim.Second,
			serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192)),
		*seed+100, 12, 0.6, 256)
	fmt.Printf("Workload: %s — %d requests, %d prompt + %d output tokens\n",
		wl.Name, len(wl.Requests), wl.TotalPromptTokens(), wl.TotalOutputTokens())
	fmt.Printf("Cluster: %d replicas, each Llama3-70b TP=8 on one A100-80G node (MSCCL++ collectives)\n\n", *replicas)

	slo := serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}
	fmt.Printf("%-16s %9s %9s %9s %7s %7s  %s\n",
		"policy", "ttft p50", "ttft p99", "goodput", "slo%", "hits", "req/replica")
	for _, name := range serve.PolicyNames() {
		// Policies are stateful (round-robin carries its cursor), so each
		// run gets a fresh instance.
		pol, err := serve.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := serve.RunRouted(serve.RouterConfig{
			Replicas: *replicas,
			Policy:   pol,
			Replica:  replica,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summarize(slo)
		hits := 0
		for _, m := range res.Merged.PerRequest {
			if m.PrefixHit {
				hits++
			}
		}
		fmt.Printf("%-16s %9.1f %9.1f %9.0f %6.1f%% %7d ", res.Policy,
			s.TTFTp50ms, s.TTFTp99ms, s.GoodputTokS, 100*s.SLOAttainment, hits)
		for _, pr := range res.PerReplica {
			fmt.Printf(" %d", len(pr.PerRequest))
		}
		fmt.Println()
	}
	fmt.Println("\nRound-robin is load-blind; JSQ routes on in-flight tokens and tames the")
	fmt.Println("burst tail; prefix-affinity trades some balance for prefix-cache hits")
	fmt.Println("(prefill discounts). Rerun with -replicas / -seed to explore.")
}
