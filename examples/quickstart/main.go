// Quickstart: run a verified AllReduce over a simulated 8x A100 node with
// the one-call Collective API, at two message sizes showing the library's
// automatic algorithm selection.
package main

import (
	"fmt"
	"log"

	"mscclpp"
)

func main() {
	for _, size := range []int64{4 << 10, 4 << 20} {
		cluster := mscclpp.NewCluster(mscclpp.A100x40G(1))
		cluster.MaterializeLimit = 1 << 40 // verify real data
		comm := mscclpp.NewComm(cluster)

		n := comm.Ranks()
		in := make([]*mscclpp.Buffer, n)
		out := make([]*mscclpp.Buffer, n)
		for r := 0; r < n; r++ {
			in[r] = cluster.Alloc(r, "in", size)
			out[r] = cluster.Alloc(r, "out", size)
		}
		pattern := func(r int, i int64) float32 { return float32(r+1) * float32(i%5+1) }
		mscclpp.FillInputs(in, pattern)

		algo := comm.SelectAllReduce(size)
		elapsed, err := comm.AllReduce(in, out)
		if err != nil {
			log.Fatal(err)
		}
		if err := mscclpp.CheckAllReduce(out, pattern, 1e-4); err != nil {
			log.Fatalf("wrong result: %v", err)
		}
		fmt.Printf("AllReduce %7dB over 8 GPUs: %8.2fus using %-18s (verified)\n",
			size, float64(elapsed)/1000, algo.Name())
	}
}
