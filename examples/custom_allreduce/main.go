// Custom AllReduce: author a collective communication algorithm in the
// MSCCL++ DSL (a one-phase all-pairs exchange written from scratch against
// the global view), lower it — the compiler inserts synchronization and
// fuses operations — and run it with the DSL Executor, verifying the result.
package main

import (
	"fmt"
	"log"

	"mscclpp"
)

const (
	ranks = 8
	size  = int64(16 << 10)
)

func main() {
	// --- Author the algorithm (paper Figure 5 style, global view) ---
	prog := mscclpp.NewProgram("my-allreduce", "allreduce", ranks, 1, size, size)

	// Per-rank packet scratch: one slot per source rank.
	scratch := make([]*mscclpp.DSLBuffer, ranks)
	for r := 0; r < ranks; r++ {
		scratch[r] = prog.ScratchBuffer(r, size*int64(ranks))
	}
	// Channels: every rank's input streams into every peer's scratch.
	chans := map[[2]int]*mscclpp.DSLMemChannel{}
	for a := 0; a < ranks; a++ {
		for b := 0; b < ranks; b++ {
			if a != b {
				chans[[2]int{a, b}] = prog.MemoryChannel(a, b, prog.Input(a), scratch[b])
			}
		}
	}
	const flag = 1
	for r := 0; r < ranks; r++ {
		in, out := prog.Input(r), prog.Output(r)
		// Broadcast my input to every peer with LL packets.
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			chans[[2]int{r, q}].PutPackets(scratch[q].Chunk(int64(r)*size, size), in.Whole(), 0, flag)
		}
		// Reduce my own contribution plus every arriving slot.
		out.Whole().Copy(in.Whole(), 0)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			chans[[2]int{q, r}].AwaitPackets(0, flag, size)
			out.Whole().Reduce(scratch[r].Chunk(int64(q)*size, size), 0)
		}
	}

	// --- Lower: dependence analysis + sync insertion + fusion ---
	plan, err := prog.Lower()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lowered plan: %d channels, %d ops across %d ranks\n",
		len(plan.Channels), plan.OpCount(), plan.Ranks)

	// --- Execute on a simulated cluster and verify ---
	cluster := mscclpp.NewCluster(mscclpp.A100x40G(1))
	cluster.MaterializeLimit = 1 << 40
	comm := mscclpp.NewCommunicator(cluster)
	in := make([]*mscclpp.Buffer, ranks)
	out := make([]*mscclpp.Buffer, ranks)
	for r := 0; r < ranks; r++ {
		in[r] = cluster.Alloc(r, "in", size)
		out[r] = cluster.Alloc(r, "out", size)
	}
	pattern := func(r int, i int64) float32 { return float32(r) + float32(i%3) }
	mscclpp.FillInputs(in, pattern)
	inst, err := mscclpp.NewExecutor(comm, plan, in, out)
	if err != nil {
		log.Fatal(err)
	}
	start := cluster.Now()
	inst.Launch()
	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
	if err := mscclpp.CheckAllReduce(out, pattern, 1e-4); err != nil {
		log.Fatalf("wrong result: %v", err)
	}
	fmt.Printf("custom DSL AllReduce over %d GPUs: %.2fus (verified)\n",
		ranks, float64(cluster.Now()-start)/1000)
}
