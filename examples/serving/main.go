// Serving example: replay a seeded Poisson request stream against a
// continuous-batching scheduler on a simulated 8x A100-80G node running
// Llama3-70B (TP=8), with the tensor-parallel AllReduces priced by the
// simulated MSCCL++ collectives. Prints the per-request latency
// distribution and goodput under a TTFT/TPOT SLO.
//
// Flags keep it smoke-test friendly:
//
//	go run ./examples/serving -requests 40 -rate 6
package main

import (
	"flag"
	"fmt"
	"log"

	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func main() {
	n := flag.Int("requests", 80, "number of requests")
	rate := flag.Float64("rate", 8, "Poisson arrival rate, requests/second")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	envFn := func() *topology.Env { return topology.A100_80G(1) }
	ar := inference.NewARTimer(envFn, inference.LibMSCCLPP)

	// Prompt lengths follow a log-normal (median 512, capped at 2K), output
	// lengths likewise (median 64) — the shape of production traces.
	wl := serve.Poisson(*seed, *n, *rate,
		serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
	fmt.Printf("Workload: %d Poisson requests at %.3g req/s (%d prompt + %d output tokens total)\n",
		len(wl.Requests), *rate, wl.TotalPromptTokens(), wl.TotalOutputTokens())

	res, err := serve.Run(serve.Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              ar.Time,
		MaxBatch:        32,
		KVCapacityBytes: 4 << 30,            // per-GPU KV budget gates admission
		ChunkTokens:     512,                // chunked-prefill token budget per iteration
		Metrics:         serve.MetricsExact, // retain rows: small run, post-hoc SLO sweeps
	}, wl)
	if err != nil {
		log.Fatal(err)
	}

	slo := serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}
	s := res.Summarize(slo)
	fmt.Printf("Completed %d requests in %.2fs of virtual time (%d engine iterations)\n",
		s.Requests, s.MakespanS, s.Iterations)
	fmt.Printf("  TTFT  p50 %7.1f ms   p90 %7.1f ms   p99 %7.1f ms\n", s.TTFTp50ms, s.TTFTp90ms, s.TTFTp99ms)
	fmt.Printf("  TPOT  p50 %7.1f ms                    p99 %7.1f ms\n", s.TPOTp50ms, s.TPOTp99ms)
	fmt.Printf("  E2E   p50 %7.1f ms                    p99 %7.1f ms\n", s.E2Ep50ms, s.E2Ep99ms)
	fmt.Printf("  throughput %.0f tok/s, goodput %.0f tok/s, SLO attainment %.1f%% (TTFT<=2s, TPOT<=100ms)\n",
		s.ThroughputTokS, s.GoodputTokS, 100*s.SLOAttainment)
}
