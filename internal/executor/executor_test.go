package executor

import (
	"testing"

	"mscclpp/internal/collective"
	"mscclpp/internal/core"
	"mscclpp/internal/dsl"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func pattern(r int, i int64) float32 {
	return float32(r+1) + float32(i%11)*0.125
}

func setupBufs(m *machine.Machine, size int64) (in, out []*mem.Buffer) {
	n := len(m.GPUs)
	for r := 0; r < n; r++ {
		in = append(in, m.Alloc(r, "in", size))
		out = append(out, m.Alloc(r, "out", size))
	}
	collective.FillInputs(in, pattern)
	return in, out
}

// runPlan executes a lowered program and returns the elapsed time per run.
func runPlan(t *testing.T, env *topology.Env, prog *dsl.Program, size int64, iters int,
	verify func(out []*mem.Buffer) error) sim.Duration {
	t.Helper()
	pl, err := prog.Lower()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(env)
	m.MaterializeLimit = 1 << 40
	c := core.NewCommunicator(m)
	in, out := setupBufs(m, size)
	inst, err := New(c, pl, in, out)
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Duration
	for it := 0; it < iters; it++ {
		start := m.Engine.Now()
		inst.Launch()
		if err := m.Run(); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		last = m.Engine.Now() - start
		if verify != nil {
			if err := verify(out); err != nil {
				t.Fatalf("iter %d: %v", it, err)
			}
		}
	}
	return last
}

func TestExecutorAllReduce1PA(t *testing.T) {
	const size = 8192
	prog, err := dsl.BuildAllReduce1PA(8, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	runPlan(t, topology.A100_40G(1), prog, size, 3, func(out []*mem.Buffer) error {
		return collective.CheckAllReduce(out, pattern, 1e-4)
	})
}

func TestExecutorAllReduce2PAHB(t *testing.T) {
	const size = 1 << 20
	prog, err := dsl.BuildAllReduce2PAHB(8, size, 4)
	if err != nil {
		t.Fatal(err)
	}
	runPlan(t, topology.A100_40G(1), prog, size, 2, func(out []*mem.Buffer) error {
		return collective.CheckAllReduce(out, pattern, 1e-4)
	})
}

// TestExecutorFigure6RingRS validates the paper's Figure 6 program: after
// the ReduceScatter, rank r's working buffer (output) holds chunk (r+1)%N
// fully reduced.
func TestExecutorFigure6RingRS(t *testing.T) {
	const size = 64 << 10
	const ranks = 8
	chunk := int64(size / ranks)
	prog, err := dsl.BuildRingReduceScatter(ranks, size)
	if err != nil {
		t.Fatal(err)
	}
	runPlan(t, topology.A100_40G(1), prog, size, 1, func(out []*mem.Buffer) error {
		for r := 0; r < ranks; r++ {
			owned := int64((r + 1) % ranks)
			base := owned * chunk / 4 // element offset of the owned chunk
			want := func(i int64) float32 {
				var s float32
				for p := 0; p < ranks; p++ {
					s += pattern(p, base+i)
				}
				return s
			}
			// Verify only the owned chunk region.
			probe := out[r]
			for el := int64(0); el < chunk/4; el += 37 {
				got := probe.Float32(owned*chunk + el*4)
				w := want(el)
				d := got - w
				if d < 0 {
					d = -d
				}
				if d > 1e-3*w && d > 1e-3 {
					t.Fatalf("rank %d chunk elem %d = %v, want %v", r, el, got, w)
				}
			}
		}
		return nil
	})
}

// TestDSLvsPrimitiveOverhead reproduces §7.1: the DSL-executed algorithm is
// slightly slower than the direct Primitive API implementation (~3%
// average, bounded well below 25%).
func TestDSLvsPrimitiveOverhead(t *testing.T) {
	const size = 64 << 10
	prog, err := dsl.BuildAllReduce1PA(8, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	dslT := runPlan(t, topology.A100_40G(1), prog, size, 2, nil)

	// Primitive version.
	m := machine.New(topology.A100_40G(1))
	c := collective.New(m)
	in, out := setupBufs(m, size)
	ex, err := (&collective.AllReduce1PA{TB: 2}).Prepare(c, in, out)
	if err != nil {
		t.Fatal(err)
	}
	var primT sim.Duration
	for i := 0; i < 2; i++ {
		primT, err = c.Run(ex)
		if err != nil {
			t.Fatal(err)
		}
	}
	if dslT < primT {
		t.Fatalf("DSL (%d) faster than primitive (%d): dispatch cost missing", dslT, primT)
	}
	overhead := float64(dslT-primT) / float64(primT)
	if overhead > 0.25 {
		t.Fatalf("DSL overhead %.1f%% too large (dsl=%d prim=%d)", overhead*100, dslT, primT)
	}
	t.Logf("DSL=%dns primitive=%dns overhead=%.1f%%", dslT, primT, overhead*100)
}

func TestExecutorValidation(t *testing.T) {
	prog, err := dsl.BuildAllReduce1PA(8, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := prog.Lower()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong machine size.
	m2 := machine.New(topology.A100_40G(2))
	if _, err := New(core.NewCommunicator(m2), pl, nil, nil); err == nil {
		t.Fatal("expected rank-count error")
	}
	// Wrong buffer sizes.
	m := machine.New(topology.A100_40G(1))
	c := core.NewCommunicator(m)
	in, out := setupBufs(m, 8192) // plan expects 4096
	if _, err := New(c, pl, in, out); err == nil {
		t.Fatal("expected buffer-size error")
	}
}
