// Package executor implements the MSCCL++ DSL Executor (paper §5.4): a
// single generic GPU kernel that interprets an execution plan — setting up
// channels, registering memory, allocating semaphores and scratch — and
// inlines Primitive API calls for each operation in the plan.
package executor

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/plan"
)

// Instance is one plan bound to concrete buffers and channels, reusable
// across invocations.
type Instance struct {
	M    *machine.Machine
	Comm *core.Communicator
	Plan *plan.Plan

	in, out []*mem.Buffer
	scratch map[[2]int]*mem.Buffer

	memSrc  map[int]*core.MemoryChannel // channel id -> source endpoint
	memDst  map[int]*core.MemoryChannel // channel id -> destination endpoint
	portSrc map[int]*core.PortChannel
	portDst map[int]*core.PortChannel
	swChans map[int]map[int]*core.SwitchChannel // channel id -> rank -> endpoint

	iter uint64
}

// New binds pl to per-rank input/output buffers, allocating scratch and
// constructing all channels (the Executor's initialization step).
func New(c *core.Communicator, pl *plan.Plan, in, out []*mem.Buffer) (*Instance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	m := c.M
	if pl.Ranks != len(m.GPUs) {
		return nil, fmt.Errorf("executor: plan for %d ranks on %d-GPU machine", pl.Ranks, len(m.GPUs))
	}
	if len(in) != pl.Ranks || len(out) != pl.Ranks {
		return nil, fmt.Errorf("executor: need %d in/out buffers", pl.Ranks)
	}
	for r := 0; r < pl.Ranks; r++ {
		if in[r].Size() != pl.InSize || out[r].Size() != pl.OutSize {
			return nil, fmt.Errorf("executor: rank %d buffer sizes (%d,%d) don't match plan (%d,%d)",
				r, in[r].Size(), out[r].Size(), pl.InSize, pl.OutSize)
		}
	}
	x := &Instance{
		M: m, Comm: c, Plan: pl, in: in, out: out,
		scratch: make(map[[2]int]*mem.Buffer),
		memSrc:  make(map[int]*core.MemoryChannel),
		memDst:  make(map[int]*core.MemoryChannel),
		portSrc: make(map[int]*core.PortChannel),
		portDst: make(map[int]*core.PortChannel),
		swChans: make(map[int]map[int]*core.SwitchChannel),
	}
	for _, s := range pl.Scratch {
		x.scratch[[2]int{s.Rank, s.Index}] = m.Alloc(s.Rank, fmt.Sprintf("%s.scr%d", pl.Name, s.Index), s.Size)
	}
	for _, ch := range pl.Channels {
		switch ch.Type {
		case plan.ChanMemory:
			srcBuf := x.resolve(ch.SrcBuf)
			dstBuf := x.resolve(ch.DstBuf)
			// Reverse direction is unused; bind dummies.
			revSrc := mem.NewBuffer(ch.DstRank, "dummy", 4)
			revDst := mem.NewBuffer(ch.SrcRank, "dummy", 4)
			s, d := c.NewMemoryChannelPairEx(ch.SrcRank, ch.DstRank, srcBuf, dstBuf, revSrc, revDst)
			x.memSrc[ch.ID] = s
			x.memDst[ch.ID] = d
		case plan.ChanPort:
			srcBuf := x.resolve(ch.SrcBuf)
			dstBuf := x.resolve(ch.DstBuf)
			revSrc := mem.NewBuffer(ch.DstRank, "dummy", 4)
			revDst := mem.NewBuffer(ch.SrcRank, "dummy", 4)
			s, d := c.NewPortChannelPairEx(ch.SrcRank, ch.DstRank, srcBuf, dstBuf, revSrc, revDst)
			x.portSrc[ch.ID] = s
			x.portDst[ch.ID] = d
		case plan.ChanSwitch:
			bufs := make([]*mem.Buffer, len(ch.Bufs))
			for i, b := range ch.Bufs {
				bufs[i] = x.resolve(b)
			}
			endpoints := c.NewSwitchChannels(ch.Ranks, bufs)
			byRank := make(map[int]*core.SwitchChannel, len(ch.Ranks))
			for i, r := range ch.Ranks {
				byRank[r] = endpoints[i]
			}
			x.swChans[ch.ID] = byRank
		default:
			return nil, fmt.Errorf("executor: unknown channel type %q", ch.Type)
		}
	}
	return x, nil
}

func (x *Instance) resolve(b plan.BufRef) *mem.Buffer {
	switch b.Kind {
	case plan.BufInput:
		return x.in[b.Rank]
	case plan.BufOutput:
		return x.out[b.Rank]
	case plan.BufScratch:
		return x.scratch[[2]int{b.Rank, b.Index}]
	}
	panic(fmt.Sprintf("executor: unresolvable buffer %+v", b))
}

// Launch starts one invocation: the generic execution kernel on every rank
// interprets its thread blocks' op streams.
func (x *Instance) Launch() []*machine.KernelHandle {
	x.iter++
	flagBase := (x.iter - 1) * (x.Plan.MaxFlag + 1)
	handles := make([]*machine.KernelHandle, x.Plan.Ranks)
	for r := 0; r < x.Plan.Ranks; r++ {
		r := r
		handles[r] = x.M.GPUs[r].Launch("dsl-exec/"+x.Plan.Name, x.Plan.NumTB, func(k *machine.Kernel) {
			ops := x.Plan.Programs[r][k.Block]
			for _, op := range ops {
				x.step(k, op, flagBase)
			}
		})
	}
	return handles
}

// step interprets one operation, charging the interpreter dispatch cost.
func (x *Instance) step(k *machine.Kernel, op plan.Op, flagBase uint64) {
	model := k.Model()
	k.Elapse(model.DSLDispatch)
	g, gi := op.GroupSize, op.GroupRank
	if g <= 0 {
		g, gi = 1, 0
	}
	switch op.Code {
	case plan.OpPut:
		if ch, ok := x.memSrc[op.Channel]; ok {
			ch.PutBuf(k, x.resolve(op.Dst.Buf), op.Dst.Off, x.resolve(op.Src.Buf), op.Src.Off, op.Src.Size, gi, g)
		} else {
			x.portSrc[op.Channel].Put(k, op.Dst.Off, op.Src.Off, op.Src.Size, gi, g)
		}
	case plan.OpPutWithSignal:
		if ch, ok := x.memSrc[op.Channel]; ok {
			// Explicit-buffer put then fused signal via the channel.
			ch.PutBuf(k, x.resolve(op.Dst.Buf), op.Dst.Off, x.resolve(op.Src.Buf), op.Src.Off, op.Src.Size, gi, g)
			ch.Signal(k)
		} else {
			x.portSrc[op.Channel].PutWithSignal(k, op.Dst.Off, op.Src.Off, op.Src.Size, gi, g)
		}
	case plan.OpPutPackets:
		x.memSrc[op.Channel].PutPacketsBuf(k, x.resolve(op.Dst.Buf), op.Dst.Off,
			x.resolve(op.Src.Buf), op.Src.Off, op.Src.Size, gi, g, flagBase+op.Flag)
	case plan.OpAwaitPackets:
		x.memDst[op.Channel].AwaitPackets(k, flagBase+op.Flag, op.Target)
	case plan.OpSignal:
		if ch, ok := x.memSrc[op.Channel]; ok {
			ch.Signal(k)
		} else {
			x.portSrc[op.Channel].Signal(k)
		}
	case plan.OpWait:
		if ch, ok := x.memDst[op.Channel]; ok {
			ch.Wait(k)
		} else {
			x.portDst[op.Channel].Wait(k)
		}
	case plan.OpFlush:
		if ch, ok := x.memSrc[op.Channel]; ok {
			ch.Flush(k)
		} else {
			x.portSrc[op.Channel].Flush(k)
		}
	case plan.OpChanReduce:
		x.memSrc[op.Channel].ReduceBuf(k, x.resolve(op.Dst.Buf), op.Dst.Off,
			x.resolve(op.Src.Buf), op.Src.Off, op.Src.Size, gi, g)
	case plan.OpReducePut:
		x.memSrc[op.Channel].ReducePut(k, op.Dst.Off, op.Src.Off,
			x.resolve(op.Data.Buf), op.Data.Off, op.Src.Size, gi, g)
	case plan.OpLocalCopy:
		off, n := shard(op.Src.Size, gi, g)
		if n > 0 {
			k.LocalCopy(n, 1)
			x.resolve(op.Src.Buf).CopyTo(x.resolve(op.Dst.Buf), op.Dst.Off+off, op.Src.Off+off, n)
		}
	case plan.OpLocalReduce:
		off, n := shard(op.Src.Size, gi, g)
		if n > 0 {
			k.LocalReduce(n, 1)
			x.resolve(op.Dst.Buf).AccumulateFrom(x.resolve(op.Src.Buf), op.Dst.Off+off, op.Src.Off+off, n)
		}
	case plan.OpTBSync:
		k.TBSync()
	case plan.OpGridBarrier:
		k.GridBarrier()
	case plan.OpSwitchReduce:
		x.swChans[op.Channel][k.GPU.Rank].ReduceInto(k, x.resolve(op.Dst.Buf), op.Dst.Off,
			op.Src.Off, op.Src.Size, gi, g)
	case plan.OpSwitchBcast:
		x.swChans[op.Channel][k.GPU.Rank].BroadcastFrom(k, x.resolve(op.Src.Buf), op.Src.Off,
			op.Dst.Off, op.Src.Size, gi, g)
	default:
		panic(fmt.Sprintf("executor: unknown op %q", op.Code))
	}
}

func shard(size int64, tb, nTB int) (off, n int64) {
	if nTB <= 1 {
		return 0, size
	}
	el := size / 4
	base := el / int64(nTB)
	rem := el % int64(nTB)
	start := base*int64(tb) + min64(int64(tb), rem)
	cnt := base
	if int64(tb) < rem {
		cnt++
	}
	off = start * 4
	n = cnt * 4
	if tb == nTB-1 {
		n += size % 4
	}
	return
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
