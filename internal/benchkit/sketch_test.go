package benchkit

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchSamples builds the seeded sample sets the sketch properties are
// checked over: shapes chosen to stress both tails (uniform), the heavy
// right tail latency series actually have (lognormal), and near-zero mass
// (exponential).
func sketchSamples(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	n := 20000
	uni := make([]float64, n)
	lgn := make([]float64, n)
	exp := make([]float64, n)
	for i := 0; i < n; i++ {
		uni[i] = 0.5 + 1000*rng.Float64()
		lgn[i] = math.Exp(rng.NormFloat64()*1.5 + 3)
		exp[i] = rng.ExpFloat64() * 20
	}
	return map[string][]float64{"uniform": uni, "lognormal": lgn, "exponential": exp}
}

var sketchPercentiles = []float64{0, 1, 5, 25, 50, 75, 90, 95, 99, 99.9, 100}

// TestSketchErrorBound is the exactness-vs-sketch gate: for every tested
// quantile the sketch answer must land within the advertised relative
// error of the exact order statistics bracketing that rank.
func TestSketchErrorBound(t *testing.T) {
	for name, xs := range sketchSamples(t) {
		sk := NewSketch(0)
		for _, x := range xs {
			sk.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		alpha := sk.Alpha()
		for _, p := range sketchPercentiles {
			got := sk.Percentile(p)
			rank := p / 100 * float64(len(sorted)-1)
			lo := sorted[int(math.Floor(rank))] * (1 - alpha - 1e-9)
			hi := sorted[int(math.Ceil(rank))] * (1 + alpha + 1e-9)
			if got < lo || got > hi {
				t.Errorf("%s p%v: sketch %v outside [%v, %v]", name, p, got, lo, hi)
			}
		}
		// Count/Sum/Mean/Min/Max are exact, matching the Summary path.
		ex := NewSummary(xs)
		if int(sk.Count()) != ex.Count() {
			t.Errorf("%s: Count %d != %d", name, sk.Count(), ex.Count())
		}
		if sk.Min() != ex.Min() || sk.Max() != ex.Max() {
			t.Errorf("%s: Min/Max %v/%v != %v/%v", name, sk.Min(), sk.Max(), ex.Min(), ex.Max())
		}
		if math.Abs(sk.Mean()-ex.Mean()) > 1e-9*math.Abs(ex.Mean()) {
			t.Errorf("%s: Mean %v != %v", name, sk.Mean(), ex.Mean())
		}
	}
}

// TestSketchMergeProperties checks that merging is associative and
// commutative for quantile queries, and that a merged sketch equals the
// sketch of the pooled stream — the invariant cross-replica pooling needs.
func TestSketchMergeProperties(t *testing.T) {
	for name, xs := range sketchSamples(t) {
		// Three uneven parts.
		a, b, c := xs[:len(xs)/5], xs[len(xs)/5:len(xs)/2], xs[len(xs)/2:]
		build := func(part []float64) *Sketch {
			s := NewSketch(0)
			for _, x := range part {
				s.Add(x)
			}
			return s
		}
		pooled := build(xs)

		// (a+b)+c
		left := build(a)
		left.Merge(build(b))
		left.Merge(build(c))
		// a+(b+c)
		bc := build(b)
		bc.Merge(build(c))
		right := build(a)
		right.Merge(bc)
		// c+b+a (commuted)
		rev := build(c)
		rev.Merge(build(b))
		rev.Merge(build(a))

		for _, p := range sketchPercentiles {
			want := pooled.Percentile(p)
			for i, m := range []*Sketch{left, right, rev} {
				if got := m.Percentile(p); got != want {
					t.Errorf("%s p%v merge order %d: %v != pooled %v", name, p, i, got, want)
				}
			}
		}
		if left.Count() != pooled.Count() || left.Min() != pooled.Min() || left.Max() != pooled.Max() {
			t.Errorf("%s: merged count/min/max diverge from pooled", name)
		}
		if rel := math.Abs(left.Mean()-pooled.Mean()) / math.Abs(pooled.Mean()); rel > 1e-12 {
			t.Errorf("%s: merged mean off by %v relative", name, rel)
		}
	}
}

// TestSketchDeterminism: the same stream always yields the same answers.
func TestSketchDeterminism(t *testing.T) {
	for name, xs := range sketchSamples(t) {
		s1, s2 := NewSketch(0), NewSketch(0)
		for _, x := range xs {
			s1.Add(x)
			s2.Add(x)
		}
		for _, p := range sketchPercentiles {
			if s1.Percentile(p) != s2.Percentile(p) {
				t.Fatalf("%s p%v: nondeterministic sketch", name, p)
			}
		}
	}
}

func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0)
	if s.Percentile(50) != 0 || s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty sketch queries must all be 0")
	}
	s.Add(7.5)
	for _, p := range []float64{0, 50, 100} {
		got := s.Percentile(p)
		if got < 7.5*(1-s.Alpha()) || got > 7.5*(1+s.Alpha()) {
			t.Errorf("single sample p%v = %v", p, got)
		}
	}
	// Zero and sub-resolution samples land in the exact zero bucket.
	z := NewSketch(0)
	z.Add(0)
	z.Add(0)
	z.Add(100)
	if got := z.Percentile(25); got != 0 {
		t.Errorf("zero-bucket p25 = %v, want 0", got)
	}
	if z.Min() != 0 || z.Max() != 100 || z.Count() != 3 {
		t.Errorf("zero-bucket min/max/count = %v/%v/%d", z.Min(), z.Max(), z.Count())
	}

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("alpha=1", func() { NewSketch(1) })
	mustPanic("alpha<0", func() { NewSketch(-0.5) })
	mustPanic("alpha mismatch", func() {
		a, b := NewSketch(0.01), NewSketch(0.02)
		b.Add(1)
		a.Merge(b)
	})
}

// TestSketchCollapse drives the bucket window past its fixed-size bound
// and checks memory stays bounded while the high quantiles stay accurate
// (the collapse folds only the extreme low tail).
func TestSketchCollapse(t *testing.T) {
	s := NewSketch(0)
	// Span vastly more than sketchMaxBuckets buckets: 1e-9 .. 1e60.
	for e := -9; e <= 60; e++ {
		s.Add(math.Pow(10, float64(e)))
	}
	if len(s.buckets) > sketchMaxBuckets {
		t.Fatalf("bucket window %d exceeds bound %d", len(s.buckets), sketchMaxBuckets)
	}
	if got := s.Percentile(100); got != math.Pow(10, 60) {
		t.Errorf("p100 = %v", got)
	}
	// p90 of 70 samples is around 1e53; must stay within relative alpha.
	got := s.Percentile(90)
	rank := 0.9 * 69
	lo := math.Pow(10, float64(-9+int(math.Floor(rank)))) * (1 - s.Alpha())
	hi := math.Pow(10, float64(-9+int(math.Ceil(rank)))) * (1 + s.Alpha())
	if got < lo || got > hi {
		t.Errorf("p90 after collapse = %v outside [%v, %v]", got, lo, hi)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()*1.5 + 3)
	}
	s := NewSketch(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}

func BenchmarkSketchPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSketch(0)
	for i := 0; i < 100000; i++ {
		s.Add(math.Exp(rng.NormFloat64()*1.5 + 3))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Percentile(99)
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() *Sketch {
		s := NewSketch(0)
		for i := 0; i < 100000; i++ {
			s.Add(math.Exp(rng.NormFloat64()*1.5 + 3))
		}
		return s
	}
	x, y := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewSketch(0)
		acc.Merge(x)
		acc.Merge(y)
	}
}
