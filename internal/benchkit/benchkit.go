// Package benchkit provides the measurement harness that regenerates the
// paper's tables and figures: message-size sweeps over the MSCCL++, NCCL-sim
// and MSCCL-sim libraries, series formatting, and summary statistics.
package benchkit

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mscclpp/internal/baseline/mscclsim"
	"mscclpp/internal/baseline/ncclsim"
	"mscclpp/internal/baseline/twosided"
	"mscclpp/internal/collective"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// SmallSizes are the latency-regime message sizes of Figures 7-10 (1KB-1MB).
func SmallSizes() []int64 {
	var out []int64
	for s := int64(1 << 10); s <= 1<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// LargeSizes are the bandwidth-regime sizes of Figures 7-10 (1MB-1GB).
func LargeSizes() []int64 {
	var out []int64
	for s := int64(1 << 20); s <= 1<<30; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Point is one measurement. Dur is exact virtual time (ns), so a marshaled
// Point is a canonical, drift-free record of the simulation result.
type Point struct {
	Size int64        `json:"size"`
	Dur  sim.Duration `json:"dur_ns"`
	Algo string       `json:"algo,omitempty"`
}

// LatencyUS returns the latency in microseconds.
func (p Point) LatencyUS() float64 { return float64(p.Dur) / 1000 }

// AlgoBW returns the algorithm bandwidth in GB/s (size/time).
func (p Point) AlgoBW() float64 {
	if p.Dur <= 0 {
		return 0
	}
	return float64(p.Size) / float64(p.Dur)
}

// Series is a named sweep result.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// MeasureFn times one library's collective at one size.
type MeasureFn func(env *topology.Env, size int64) (sim.Duration, string, error)

// MaxParallel bounds the number of simulations Parallel runs concurrently.
// Each simulation owns its engine (and machine, fabric, buffers), so sweeps
// over independent configurations are embarrassingly parallel. Set to 1 to
// force sequential execution (e.g. when bisecting a nondeterminism report).
var MaxParallel = runtime.GOMAXPROCS(0)

// Parallel runs jobs 0..n-1 on a MaxParallel-bounded worker pool and waits
// for all of them. Jobs must be independent; each receives its index, so
// callers write results into index-stable slots and output ordering is
// unchanged from a sequential run. Do not nest Parallel calls.
func Parallel(n int, job func(i int)) {
	workers := MaxParallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// Sweep measures sizes with fn, fanning the per-size simulations out across
// the worker pool. Every simulation is deterministic and owns its machine,
// so results (and their order) are identical to a sequential sweep; only
// wall-clock time changes. On error the first failing size (in size order)
// is reported.
func Sweep(env *topology.Env, name string, sizes []int64, fn MeasureFn) (Series, error) {
	s := Series{Name: name, Points: make([]Point, len(sizes))}
	errs := make([]error, len(sizes))
	Parallel(len(sizes), func(i int) {
		d, algo, err := fn(env, sizes[i])
		if err != nil {
			errs[i] = fmt.Errorf("%s at %d: %w", name, sizes[i], err)
			return
		}
		s.Points[i] = Point{Size: sizes[i], Dur: d, Algo: algo}
	})
	for i, err := range errs {
		if err != nil {
			return Series{Name: name, Points: s.Points[:i]}, err
		}
	}
	return s, nil
}

// bufs allocates timing-only buffer sets.
func bufs(m *machine.Machine, inSize, outSize int64) (in, out []*mem.Buffer) {
	for r := 0; r < len(m.GPUs); r++ {
		in = append(in, m.Alloc(r, "in", inSize))
		out = append(out, m.Alloc(r, "out", outSize))
	}
	return
}

// timeBest runs a set of candidate preparations on fresh machines, warming
// up once and timing the second run, returning the fastest.
func timeBest(env *topology.Env, inSize, outSize int64,
	cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)) (sim.Duration, string, error) {
	best := sim.Duration(math.MaxInt64)
	bestName := ""
	for _, prep := range cands {
		m := machine.New(env)
		m.MaterializeLimit = 0
		c := collective.New(m)
		in, out := bufs(m, inSize, outSize)
		ex, err := prep(c, in, out)
		if err != nil {
			continue // not applicable
		}
		if _, err := c.Run(ex); err != nil {
			return 0, "", fmt.Errorf("%s warmup: %w", ex.Name, err)
		}
		d, err := c.Run(ex)
		if err != nil {
			return 0, "", fmt.Errorf("%s: %w", ex.Name, err)
		}
		if d < best {
			best, bestName = d, ex.Name
		}
	}
	if bestName == "" {
		return 0, "", fmt.Errorf("no applicable algorithm")
	}
	return best, bestName, nil
}

// MSCCLPPAllReduce measures the best MSCCL++ AllReduce (all applicable
// algorithms, best per size — the paper's methodology).
func MSCCLPPAllReduce(env *topology.Env, size int64) (sim.Duration, string, error) {
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	probe := collective.New(machine.New(env))
	for _, algo := range probe.AllReduceAlgorithms() {
		a := algo
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return a.Prepare(c, in, out)
		})
	}
	return timeBest(env, size, size, cands)
}

// llSizeCap bounds the sizes at which LL-protocol and one-phase candidates
// are tried: they are never competitive above a few MB (the paper's tuned
// baselines pick protocols per size the same way) and their tiny chunk
// counts make huge-message simulation needlessly slow.
const llSizeCap = 4 << 20

// NCCLAllReduce measures tuned NCCL-sim (best of ring Simple/LL and tree).
func NCCLAllReduce(env *topology.Env, size int64) (sim.Duration, string, error) {
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	protos := []twosided.Proto{twosided.ProtoSimple}
	if size <= llSizeCap {
		protos = append(protos, twosided.ProtoLL)
	}
	for _, proto := range protos {
		p := proto
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return ncclsim.New(c, 0).PrepareAllReduceRing(in, out, p)
		})
		if env.Nodes > 1 && size <= llSizeCap {
			cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return ncclsim.New(c, 0).PrepareAllReduceTree(in, out, p)
			})
		}
	}
	return timeBest(env, size, size, cands)
}

// MSCCLAllReduce measures tuned MSCCL-sim (best custom algorithm per size).
func MSCCLAllReduce(env *topology.Env, size int64) (sim.Duration, string, error) {
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	protos := []twosided.Proto{twosided.ProtoSimple}
	if size <= llSizeCap {
		protos = append(protos, twosided.ProtoLL)
	}
	if env.Nodes == 1 {
		if size <= 256<<10 {
			cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return mscclsim.New(c, 0).PrepareAllReduceAllPairs1P(in, out)
			})
		}
		for _, proto := range protos {
			p := proto
			cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return mscclsim.New(c, 0).PrepareAllReduceAllPairs2P(in, out, p)
			})
		}
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return ncclsim.New(c, 0).PrepareAllReduceRing(in, out, twosided.ProtoSimple)
		})
	} else {
		for _, proto := range protos {
			p := proto
			cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return mscclsim.New(c, 0).PrepareAllReduceHier(in, out, p)
			})
		}
	}
	return timeBest(env, size, size, cands)
}

// MSCCLPPAllGather measures the best MSCCL++ AllGather for a gathered size.
func MSCCLPPAllGather(env *topology.Env, total int64) (sim.Duration, string, error) {
	shard := total / int64(env.TotalGPUs())
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	probe := collective.New(machine.New(env))
	for _, algo := range probe.AllGatherAlgorithms() {
		a := algo
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return a.Prepare(c, in, out)
		})
	}
	return timeBest(env, shard, total, cands)
}

// NCCLAllGather measures NCCL-sim's ring AllGather.
func NCCLAllGather(env *topology.Env, total int64) (sim.Duration, string, error) {
	shard := total / int64(env.TotalGPUs())
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	protos := []twosided.Proto{twosided.ProtoSimple}
	if total <= llSizeCap {
		protos = append(protos, twosided.ProtoLL)
	}
	for _, proto := range protos {
		p := proto
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return ncclsim.New(c, 0).PrepareAllGatherRing(in, out, p)
		})
	}
	return timeBest(env, shard, total, cands)
}

// MSCCLAllGather measures MSCCL-sim's all-pairs AllGather (plus ring).
func MSCCLAllGather(env *topology.Env, total int64) (sim.Duration, string, error) {
	shard := total / int64(env.TotalGPUs())
	var cands []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)
	protos := []twosided.Proto{twosided.ProtoSimple}
	if total <= llSizeCap {
		protos = append(protos, twosided.ProtoLL)
	}
	for _, proto := range protos {
		p := proto
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return mscclsim.New(c, 0).PrepareAllGatherAllPairs(in, out, p)
		})
		cands = append(cands, func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return ncclsim.New(c, 0).PrepareAllGatherRing(in, out, p)
		})
	}
	return timeBest(env, shard, total, cands)
}

// VLLMCustomAllReduce measures the vLLM-style custom kernel.
func VLLMCustomAllReduce(env *topology.Env, size int64) (sim.Duration, string, error) {
	return timeBest(env, size, size, []func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error){
		func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return (&collective.AllReduce1PAHB{}).Prepare(c, in, out)
		},
	})
}

// Geomean returns the geometric mean of positive ratios.
func Geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Log(r)
	}
	return math.Exp(sum / float64(len(ratios)))
}

// HumanSize formats a byte count like the paper's axes (1K, 2M, 1G).
func HumanSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PrintLatencyTable renders a latency (us) comparison for small sizes.
func PrintLatencyTable(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "\n%s — latency (us)\n", title)
	printTable(w, series, func(p Point) string { return fmt.Sprintf("%.2f", p.LatencyUS()) })
}

// PrintBandwidthTable renders an AlgoBW (GB/s) comparison for large sizes.
func PrintBandwidthTable(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "\n%s — AlgoBW (GB/s)\n", title)
	printTable(w, series, func(p Point) string { return fmt.Sprintf("%.1f", p.AlgoBW()) })
}

func printTable(w io.Writer, series []Series, cell func(Point) string) {
	if len(series) == 0 {
		return
	}
	var sizes []int64
	for _, p := range series[0].Points {
		sizes = append(sizes, p.Size)
	}
	header := []string{"size"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i, size := range sizes {
		row := []string{HumanSize(size)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, cell(s.Points[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// SpeedupSummary prints per-size speedups of target over base and their
// geomean/max.
func SpeedupSummary(w io.Writer, label string, base, target Series) (geo, max float64) {
	var ratios []float64
	for i := range target.Points {
		if i >= len(base.Points) {
			break
		}
		r := float64(base.Points[i].Dur) / float64(target.Points[i].Dur)
		ratios = append(ratios, r)
		if r > max {
			max = r
		}
	}
	geo = Geomean(ratios)
	fmt.Fprintf(w, "%s: geomean %.2fx, max %.2fx\n", label, geo, max)
	return geo, max
}

// SortSizes sorts a size list ascending (helper for custom sweeps).
func SortSizes(sizes []int64) {
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
}
