package benchkit

// Sketch is a mergeable streaming quantile sketch: the bounded-memory
// counterpart of Summary for runs too large to retain every sample. It is
// a DDSketch-style logarithmic histogram — samples land in geometric
// buckets of ratio gamma = (1+alpha)/(1-alpha), so any quantile's value is
// reported with relative error at most alpha regardless of how many
// samples were added. Count, Sum, Mean, Min and Max are exact.
//
// Merging is bucket-wise integer addition, so Merge is exactly
// associative, commutative and deterministic for every quantile query
// (Mean/Sum are float accumulations and may differ in the last ulp across
// merge orders). That is the property the serving layer's cross-replica
// metric pooling depends on: streaming per-replica sketches merge into
// the same cluster view no matter how the replicas are grouped.

import (
	"fmt"
	"math"
)

// DefaultSketchAlpha is the relative-accuracy bound NewSketch(0) uses: 1%
// relative value error on every quantile, which is far below the digit
// precision any latency table prints.
const DefaultSketchAlpha = 0.01

// sketchMinValue is the smallest magnitude tracked logarithmically; samples
// below it (including zero and any negative input) collapse into an exact
// zero bucket. One nanosecond-of-a-millisecond is far below the resolution
// of any latency series the serving layer streams.
const sketchMinValue = 1e-9

// sketchMaxBuckets bounds the bucket array. At alpha = 0.01 the full span
// from sketchMinValue to 1e26 needs ~4000 buckets, so in practice nothing
// collapses; if a pathological stream exceeds the bound, the lowest
// buckets fold together (biasing only the extreme low tail) so memory
// stays fixed.
const sketchMaxBuckets = 4096

// Sketch is a fixed-size streaming quantile summary; construct with
// NewSketch. The zero value is not usable.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	count int64   // total samples
	zero  int64   // samples below sketchMinValue
	sum   float64 // exact sum of all samples
	min   float64
	max   float64

	minKey  int     // key of buckets[0]
	buckets []int64 // counts per geometric bucket, contiguous from minKey
}

// NewSketch returns an empty sketch with the given relative-accuracy
// target (0 < alpha < 1); alpha = 0 selects DefaultSketchAlpha. Sketches
// may only merge with sketches of the same alpha.
func NewSketch(alpha float64) *Sketch {
	if alpha == 0 {
		alpha = DefaultSketchAlpha
	}
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("benchkit: NewSketch(alpha = %v), need 0 < alpha < 1", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{alpha: alpha, gamma: gamma, lnGamma: math.Log(gamma)}
}

// Alpha returns the sketch's relative-accuracy bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the exact number of samples added.
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the exact sum of all samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the exact smallest sample (0 if empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact largest sample (0 if empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Mean returns the exact arithmetic mean (0 if empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Add records one sample.
func (s *Sketch) Add(x float64) {
	if s.count == 0 || x < s.min {
		s.min = x
	}
	if s.count == 0 || x > s.max {
		s.max = x
	}
	s.count++
	s.sum += x
	if x < sketchMinValue {
		s.zero++
		return
	}
	s.bump(s.key(x), 1)
}

// key maps a positive sample to its geometric bucket: the smallest k with
// gamma^k >= x, so bucket k covers (gamma^(k-1), gamma^k].
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// representative is the midpoint value reported for bucket k:
// 2*gamma^k/(gamma+1), within relative alpha of every value in the bucket.
func (s *Sketch) representative(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// bump adds n to bucket k, growing the contiguous bucket window as needed
// and collapsing the lowest buckets when the window would exceed the
// fixed-size bound.
func (s *Sketch) bump(k int, n int64) {
	if len(s.buckets) == 0 {
		s.minKey = k
		s.buckets = append(s.buckets, n)
		return
	}
	if k < s.minKey {
		grow := s.minKey - k
		if grow+len(s.buckets) > sketchMaxBuckets {
			// Window full below: fold the new count into the lowest bucket.
			s.buckets[0] += n
			return
		}
		nb := make([]int64, grow+len(s.buckets), growCap(grow+len(s.buckets)))
		copy(nb[grow:], s.buckets)
		s.buckets = nb
		s.minKey = k
	} else if k >= s.minKey+len(s.buckets) {
		for len(s.buckets) <= k-s.minKey {
			s.buckets = append(s.buckets, 0)
		}
		if len(s.buckets) > sketchMaxBuckets {
			// Window full above: collapse the lowest buckets together so the
			// span shrinks back to the bound (low-tail bias only).
			drop := len(s.buckets) - sketchMaxBuckets
			var folded int64
			for i := 0; i < drop; i++ {
				folded += s.buckets[i]
			}
			s.buckets = s.buckets[drop:]
			s.minKey += drop
			s.buckets[0] += folded
		}
	}
	s.buckets[k-s.minKey] += n
}

// growCap pads bucket-window growth so repeated low-side extensions stay
// amortized O(1) instead of copying the window on every new low key.
func growCap(n int) int {
	c := n + n/2
	if c > sketchMaxBuckets {
		c = sketchMaxBuckets
	}
	if c < n {
		c = n
	}
	return c
}

// Percentile returns the p-th percentile (0 <= p <= 100) under the same
// closest-rank convention as Summary.Percentile: p=0 is the exact min,
// p=100 the exact max, and interior ranks return a bucket representative
// within relative alpha of the exact order statistic. Returns 0 if empty.
func (s *Sketch) Percentile(p float64) float64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := p / 100 * float64(s.count-1)
	cum := float64(s.zero)
	if rank < cum {
		return 0
	}
	for i, c := range s.buckets {
		cum += float64(c)
		if rank < cum {
			return s.clamp(s.representative(s.minKey + i))
		}
	}
	return s.max
}

// clamp bounds a representative to the exact observed range, so quantile
// answers never step outside [Min, Max].
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Merge adds every sample of o into s (o is unchanged; merging a nil or
// empty sketch is a no-op). Panics if the two sketches were built with
// different alpha — their bucket grids would not line up.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic(fmt.Sprintf("benchkit: Merge of sketches with alpha %v and %v", s.alpha, o.alpha))
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.zero += o.zero
	s.sum += o.sum
	for i, c := range o.buckets {
		if c > 0 {
			s.bump(o.minKey+i, c)
		}
	}
}
