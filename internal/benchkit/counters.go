package benchkit

// The "where did the time go" rendering of resource counter reports: every
// simulation layer that owns sim.Resources (fabric ports, DMA engines,
// RDMA NICs, serve replicas' gpu/kv-swap lanes, MoE all-to-all paths)
// registers them as named sim.CounterGroups, and PrintCounterReport folds
// each group into one aggregate row — reservations, busy time, utilization
// against the report's elapsed span, queue delay, idle gaps, max depth.
// All inputs are exact virtual-time integers, so the rendering is
// deterministic and golden-safe.

import (
	"fmt"
	"io"

	"mscclpp/internal/sim"
)

// GroupTotals aggregates one counter group: reservations, busy, queue
// delay and idle sum across members; MaxQueueDepth is the deepest member's.
func GroupTotals(g sim.CounterGroup) sim.ResourceStats {
	t := sim.ResourceStats{Name: g.Name}
	for _, s := range g.Stats {
		t.Reservations += s.Reservations
		t.BusyNs += s.BusyNs
		t.QueueDelayNs += s.QueueDelayNs
		t.IdleNs += s.IdleNs
		if s.MaxQueueDepth > t.MaxQueueDepth {
			t.MaxQueueDepth = s.MaxQueueDepth
		}
	}
	return t
}

// Utilization returns the group's mean busy fraction over an elapsed span:
// total busy time divided by member count times elapsed. Zero when the
// span or the group is empty.
func Utilization(g sim.CounterGroup, elapsed sim.Duration) float64 {
	if elapsed <= 0 || len(g.Stats) == 0 {
		return 0
	}
	return float64(GroupTotals(g).BusyNs) / (float64(elapsed) * float64(len(g.Stats)))
}

// PrintCounterReport renders one counter report: a header naming the
// report and its elapsed virtual-time span, then one aggregate row per
// group. Groups with zero reservations are printed too — a resource class
// that never fired is itself a calibration signal.
func PrintCounterReport(w io.Writer, title string, elapsed sim.Duration, groups []sim.CounterGroup) {
	fmt.Fprintf(w, "\n%s — where did the time go (elapsed %.3f ms)\n", title, float64(elapsed)/1e6)
	fmt.Fprintf(w, "  %-10s %4s %9s %12s %7s %12s %12s %5s\n",
		"group", "res", "reserves", "busy(ms)", "util%", "qdelay(ms)", "idle(ms)", "maxq")
	for _, g := range groups {
		t := GroupTotals(g)
		fmt.Fprintf(w, "  %-10s %4d %9d %12.3f %6.1f%% %12.3f %12.3f %5d\n",
			g.Name, len(g.Stats), t.Reservations,
			float64(t.BusyNs)/1e6, 100*Utilization(g, elapsed),
			float64(t.QueueDelayNs)/1e6, float64(t.IdleNs)/1e6, t.MaxQueueDepth)
	}
}
