package benchkit

// The io-agnostic JSON sink: alongside the human-readable tables that
// PrintLatencyTable/PrintBandwidthTable render, a Record accumulates the
// same results in canonical machine-readable form. Durations stay exact
// virtual-time integers (ns), so two runs of a deterministic scenario
// marshal to byte-identical JSON — which is what lets the golden-output
// regression harness (internal/scenario, cmd/paperbench) diff paper
// artifacts mechanically.

import (
	"encoding/json"
	"fmt"
	"io"

	"mscclpp/internal/sim"
)

// Metric is one named scalar result (a speedup, a bandwidth, an exact
// virtual-time duration stored as a float64 — exact up to 2^53 ns).
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// TableRecord is the machine-readable twin of one printed table: the raw
// per-size series behind a latency or bandwidth panel.
type TableRecord struct {
	Kind   string   `json:"kind"` // "latency_us" | "algobw_gbs"
	Title  string   `json:"title"`
	Series []Series `json:"series"`
}

// CounterRecord is the machine-readable twin of one printed resource
// counter report ("where did the time go"): the named counter groups a
// simulation layer registered, snapshot at elapsed ns of virtual time.
// cmd/planviz renders utilization and roofline views from these.
type CounterRecord struct {
	Title     string             `json:"title"`
	ElapsedNs sim.Duration       `json:"elapsed_ns"`
	Groups    []sim.CounterGroup `json:"groups"`
}

// Record is the canonical machine-readable result of one scenario run.
// Tables, Metrics and Counters appear in emission order, which is
// deterministic for deterministic scenarios. The zero value is usable; all
// methods are nil-safe so text-only callers can pass a nil *Record.
type Record struct {
	Name     string          `json:"name"`
	Title    string          `json:"title"`
	Tables   []TableRecord   `json:"tables,omitempty"`
	Metrics  []Metric        `json:"metrics,omitempty"`
	Counters []CounterRecord `json:"counters,omitempty"`
}

// AddTable appends a table to the record. The series — including each
// Points slice — are deep-copied so later caller mutations cannot alias
// into the record.
func (r *Record) AddTable(kind, title string, series []Series) {
	if r == nil {
		return
	}
	cp := make([]Series, len(series))
	for i, s := range series {
		cp[i] = Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
	}
	r.Tables = append(r.Tables, TableRecord{Kind: kind, Title: title, Series: cp})
}

// AddMetric appends a named scalar to the record.
func (r *Record) AddMetric(name, unit string, value float64) {
	if r == nil {
		return
	}
	r.Metrics = append(r.Metrics, Metric{Name: name, Unit: unit, Value: value})
}

// AddDuration appends an exact virtual-time duration (ns) as a metric.
func (r *Record) AddDuration(name string, d int64) {
	r.AddMetric(name, "ns", float64(d))
}

// AddCounters appends a resource counter report. The groups — including
// each Stats slice — are deep-copied so later caller mutations cannot
// alias into the record.
func (r *Record) AddCounters(title string, elapsedNs sim.Duration, groups []sim.CounterGroup) {
	if r == nil {
		return
	}
	cp := make([]sim.CounterGroup, len(groups))
	for i, g := range groups {
		cp[i] = sim.CounterGroup{Name: g.Name, Stats: append([]sim.ResourceStats(nil), g.Stats...)}
	}
	r.Counters = append(r.Counters, CounterRecord{Title: title, ElapsedNs: elapsedNs, Groups: cp})
}

// Encode writes the record to w in canonical form: two-space-indented JSON
// with a trailing newline. This is the byte format of the committed golden
// files; any change here invalidates every golden at once.
func (r *Record) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("record %q: %w", r.Name, err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
