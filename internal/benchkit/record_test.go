package benchkit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRecordEncodeCanonical pins the golden byte format: two-space
// indentation, emission order preserved, trailing newline, and exact
// integer durations. Changing this encoding invalidates every committed
// golden at once, so it must be deliberate.
func TestRecordEncodeCanonical(t *testing.T) {
	rec := &Record{Name: "demo", Title: "Demo artifact"}
	rec.AddTable("latency_us", "demo (small messages)", []Series{
		{Name: "NCCL", Points: []Point{{Size: 1024, Dur: 23700, Algo: "ring"}}},
	})
	rec.AddMetric("speedup geomean", "x", 2.14)
	rec.AddDuration("one-phase ll", 3850)

	var a, b bytes.Buffer
	if err := rec.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Encode is not deterministic")
	}
	out := a.String()
	if !strings.HasSuffix(out, "}\n") {
		t.Errorf("missing trailing newline: %q", out[len(out)-4:])
	}
	for _, want := range []string{
		`"name": "demo"`,
		`"kind": "latency_us"`,
		`"dur_ns": 23700`,
		`"algo": "ring"`,
		`"value": 2.14`,
		`"unit": "ns"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoded record missing %s:\n%s", want, out)
		}
	}
	// The canonical form must round-trip.
	var back Record
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Name != "demo" || len(back.Tables) != 1 || len(back.Metrics) != 2 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if back.Tables[0].Series[0].Points[0].Dur != 23700 {
		t.Errorf("duration not exact after round-trip")
	}
}

// TestRecordNilSafe verifies text-only callers can pass a nil record.
func TestRecordNilSafe(t *testing.T) {
	var rec *Record
	rec.AddTable("latency_us", "t", nil)
	rec.AddMetric("m", "x", 1)
	rec.AddDuration("d", 2)
}

// TestRecordAddTableCopies verifies later mutation of the caller's series
// — including the nested Points buffers — does not alias into the record.
func TestRecordAddTableCopies(t *testing.T) {
	series := []Series{{Name: "a", Points: []Point{{Size: 1, Dur: 10}}}}
	rec := &Record{}
	rec.AddTable("latency_us", "t", series)
	series[0].Name = "mutated"
	series[0].Points[0].Dur = 999
	if got := rec.Tables[0].Series[0].Name; got != "a" {
		t.Errorf("record aliases caller series slice: %q", got)
	}
	if got := rec.Tables[0].Series[0].Points[0].Dur; got != 10 {
		t.Errorf("record aliases caller points slice: dur %d", got)
	}
}
