package benchkit

// Latency-distribution helpers for the serving scenarios: percentiles and
// means over per-request samples. Pure functions of their inputs, so
// summaries built from deterministic simulations stay golden-stable.

import "sort"

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the common "exclusive of extrapolation"
// definition: p=0 is the min, p=100 the max). xs need not be sorted; it is
// not modified. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
