package benchkit

// Latency-distribution helpers for the serving scenarios: percentiles and
// means over per-request samples. Pure functions of their inputs, so
// summaries built from deterministic simulations stay golden-stable.

import "sort"

// Summary holds a sorted copy of a sample set for repeated distribution
// queries: sort once, then Percentile/Mean/Min/Max in O(1)/O(log n). The
// serving metrics layer queries seven percentiles per latency series;
// building a Summary per series replaces seven copy-and-sort passes with
// one.
type Summary struct {
	sorted []float64
}

// NewSummary copies and sorts xs. The input slice is not retained or
// modified. An empty (or nil) input yields a valid Summary whose queries
// all return 0.
func NewSummary(xs []float64) *Summary {
	s := &Summary{sorted: append([]float64(nil), xs...)}
	sort.Float64s(s.sorted)
	return s
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.sorted) }

// Min returns the smallest sample (0 if empty).
func (s *Summary) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest sample (0 if empty).
func (s *Summary) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Summary) Mean() float64 { return Mean(s.sorted) }

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks (the common "exclusive of
// extrapolation" definition: p=0 is the min, p=100 the max). Returns 0 if
// the Summary is empty.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s.sorted[n-1]
	}
	return s.sorted[lo] + frac*(s.sorted[lo+1]-s.sorted[lo])
}

// Percentile returns the p-th percentile of xs; see Summary.Percentile for
// the definition. xs need not be sorted and is not modified. Callers that
// query several percentiles of the same series should build one
// NewSummary instead — this wrapper copies and sorts on every call.
func Percentile(xs []float64, p float64) float64 {
	return NewSummary(xs).Percentile(p)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
