package benchkit

import (
	"reflect"
	"testing"

	"mscclpp/internal/topology"
)

// TestSweepParallelMatchesSequential pins the parallel-harness contract:
// fanning a sweep across workers changes wall-clock time only — every
// per-configuration result (duration, winning algorithm, ordering) is
// identical to a sequential run.
func TestSweepParallelMatchesSequential(t *testing.T) {
	env := topology.A100_40G(1)
	sizes := []int64{1 << 10, 8 << 10, 64 << 10, 512 << 10}
	old := MaxParallel
	defer func() { MaxParallel = old }()

	MaxParallel = 1
	seq, err := Sweep(env, "mscclpp", sizes, MSCCLPPAllReduce)
	if err != nil {
		t.Fatal(err)
	}
	MaxParallel = 4
	par, err := Sweep(env, "mscclpp", sizes, MSCCLPPAllReduce)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged:\nseq %+v\npar %+v", seq, par)
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	old := MaxParallel
	defer func() { MaxParallel = old }()
	for _, workers := range []int{1, 3, 8} {
		MaxParallel = workers
		const n = 100
		hits := make([]int32, n)
		Parallel(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v, want 0", g)
	}
}

func TestHumanSize(t *testing.T) {
	cases := map[int64]string{1 << 10: "1K", 2 << 20: "2M", 1 << 30: "1G", 1000: "1000"}
	for n, want := range cases {
		if got := HumanSize(n); got != want {
			t.Fatalf("HumanSize(%d) = %q, want %q", n, got, want)
		}
	}
}
