package benchkit

// Property tests for the distribution helpers: the router's cross-replica
// aggregation leans on Percentile/Mean being order-free, bounded and
// non-mutating, so those invariants are pinned here over seeded random
// sample sets rather than hand-picked examples.

import (
	"math"
	"math/rand"
	"testing"
)

// randomSamples draws n samples from one of several shapes (uniform,
// heavy-tailed, constant, negative) so the properties are exercised off
// the happy path.
func randomSamples(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	switch rng.Intn(4) {
	case 0:
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
	case 1: // heavy tail
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64() * 3)
		}
	case 2: // constant
		c := rng.Float64()
		for i := range xs {
			xs[i] = c
		}
	default: // signed
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
	}
	return xs
}

func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		xs := randomSamples(rng, 1+rng.Intn(50))
		orig := append([]float64(nil), xs...)

		min, max := xs[0], xs[0]
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}

		// Bounded by min/max at every p, monotone in p, and exact at the
		// extremes (including out-of-range p, which clamps).
		prev := math.Inf(-1)
		for _, p := range []float64{-5, 0, 1, 10, 25, 50, 75, 90, 99, 99.9, 100, 120} {
			v := Percentile(xs, p)
			if v < min || v > max {
				t.Fatalf("trial %d: P%g = %g outside [%g, %g]", trial, p, v, min, max)
			}
			if v < prev {
				t.Fatalf("trial %d: P%g = %g < previous percentile %g — not monotone in p", trial, p, v, prev)
			}
			prev = v
		}
		if Percentile(xs, 0) != min || Percentile(xs, 100) != max {
			t.Fatalf("trial %d: P0/P100 = %g/%g, want min/max %g/%g",
				trial, Percentile(xs, 0), Percentile(xs, 100), min, max)
		}

		// Permutation-invariant: shuffling the samples changes nothing
		// (Percentile sorts, so equality is exact).
		shuffled := append([]float64(nil), xs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, p := range []float64{0, 17, 50, 83.5, 99, 100} {
			if Percentile(xs, p) != Percentile(shuffled, p) {
				t.Fatalf("trial %d: P%g not permutation-invariant", trial, p)
			}
		}

		// Mean is bounded (up to summation rounding) and
		// permutation-invariant up to rounding.
		m, ms := Mean(xs), Mean(shuffled)
		slack := 1e-12 * math.Max(1, math.Max(math.Abs(min), math.Abs(max)))
		if m < min-slack || m > max+slack {
			t.Fatalf("trial %d: mean %g outside [%g, %g]", trial, m, min, max)
		}
		if diff := math.Abs(m - ms); diff > 1e-9*math.Max(1, math.Abs(m)) {
			t.Fatalf("trial %d: mean not permutation-invariant: %g vs %g", trial, m, ms)
		}

		// The input slice is never mutated by Percentile, Mean or Summary.
		NewSummary(xs)
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatalf("trial %d: input slice mutated at %d", trial, i)
			}
		}
	}
}

// TestSummaryMatchesPercentile: the sort-once Summary must answer exactly
// what the per-call wrapper answers — they are the same definition, and
// goldens depend on them not drifting apart.
func TestSummaryMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		xs := randomSamples(rng, 1+rng.Intn(40))
		s := NewSummary(xs)
		for p := float64(0); p <= 100; p += 0.5 {
			if got, want := s.Percentile(p), Percentile(xs, p); got != want {
				t.Fatalf("trial %d: Summary P%g = %g, wrapper = %g", trial, p, got, want)
			}
		}
		min, max := xs[0], xs[0]
		for _, x := range xs {
			min, max = math.Min(min, x), math.Max(max, x)
		}
		if s.Min() != min || s.Max() != max || s.Count() != len(xs) {
			t.Fatalf("trial %d: Summary min/max/count %g/%g/%d, want %g/%g/%d",
				trial, s.Min(), s.Max(), s.Count(), min, max, len(xs))
		}
		if diff := math.Abs(s.Mean() - Mean(xs)); diff > 1e-9*math.Max(1, math.Abs(s.Mean())) {
			t.Fatalf("trial %d: Summary mean %g vs Mean %g", trial, s.Mean(), Mean(xs))
		}
	}
}

func TestStatsEmptyAndSingle(t *testing.T) {
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 {
		t.Error("empty-slice Percentile/Mean not 0")
	}
	s := NewSummary(nil)
	if s.Count() != 0 || s.Percentile(50) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("empty Summary not all-zero")
	}
	one := []float64{7.5}
	for _, p := range []float64{0, 33, 100} {
		if Percentile(one, p) != 7.5 {
			t.Errorf("single-sample P%g = %g, want 7.5", p, Percentile(one, p))
		}
	}
}
