package fabric

// The exported-symbol documentation gate: `go doc mscclpp/internal/fabric`
// must be self-explanatory — the transfer paths and their counter groups
// are what the calibrate-* scenarios assert against. CI additionally runs
// staticcheck's stylecheck comment rules on this package; this test keeps
// the gate in plain `go test` too.

import (
	"strings"
	"testing"

	"mscclpp/internal/doccheck"
)

func TestExportedSymbolsDocumented(t *testing.T) {
	missing, err := doccheck.Undocumented(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("internal/fabric has undocumented exported symbols:\n  %s", strings.Join(missing, "\n  "))
	}
}
