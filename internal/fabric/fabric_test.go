package fabric

import (
	"testing"

	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

func newFabric(env *topology.Env) *Fabric {
	return New(env, timing.Default(env))
}

// TestReserveJoint: a joint reservation starts when the *last* of its
// resources frees up and occupies all of them for the full duration.
func TestReserveJoint(t *testing.T) {
	a := sim.NewResource("a")
	b := sim.NewResource("b")
	a.Reserve(0, 100) // a busy until 100
	start, end := reserveJoint(30, 50, a, b)
	if start != 100 || end != 150 {
		t.Fatalf("joint reservation = [%d, %d], want [100, 150]", start, end)
	}
	if a.FreeAt() != 150 || b.FreeAt() != 150 {
		t.Fatalf("resources free at %d/%d, want 150/150", a.FreeAt(), b.FreeAt())
	}
	// A later request serializes behind the joint occupancy.
	s2, e2 := reserveJoint(0, 10, b)
	if s2 != 150 || e2 != 160 {
		t.Fatalf("follow-up = [%d, %d], want [150, 160]", s2, e2)
	}
}

// TestP2PSerializes: two back-to-back transfers over the same switch path
// serialize on the port resources — the second completes one wire-time
// later, never in parallel for free.
func TestP2PSerializes(t *testing.T) {
	env := topology.A100_40G(1)
	f := newFabric(env)
	const size = 1 << 20
	streamBW := 1e12 // not the bottleneck
	t1 := f.P2P(0, 0, 1, size, streamBW)
	t2 := f.P2P(0, 0, 1, size, streamBW)
	wire := timing.XferTime(size, env.IntraBW)
	if want := wire + env.IntraLat; t1 != want {
		t.Fatalf("first transfer completes at %d, want %d", t1, want)
	}
	if want := 2*wire + env.IntraLat; t2 != want {
		t.Fatalf("second transfer completes at %d, want %d (serialized)", t2, want)
	}
	// Disjoint pairs do not contend.
	f2 := newFabric(env)
	u1 := f2.P2P(0, 0, 1, size, streamBW)
	u2 := f2.P2P(0, 2, 3, size, streamBW)
	if u1 != u2 {
		t.Fatalf("disjoint pairs serialized: %d vs %d", u1, u2)
	}
}

// TestP2PStreamBound: when the issuing thread blocks are slower than the
// wire, completion stretches to the stream rate but wire occupancy stays at
// wire time (a following flow starts after the wire slot, not the stream).
func TestP2PStreamBound(t *testing.T) {
	env := topology.A100_40G(1)
	f := newFabric(env)
	const size = 1 << 20
	slow := env.IntraBW / 4
	done := f.P2P(0, 0, 1, size, slow)
	if want := timing.XferTime(size, slow) + env.IntraLat; done != want {
		t.Fatalf("stream-bound completion %d, want %d", done, want)
	}
	next := f.P2P(0, 0, 1, size, 1e12)
	wire := timing.XferTime(size, env.IntraBW)
	if want := 2*wire + env.IntraLat; next != want {
		t.Fatalf("wire occupancy: next completes at %d, want %d", next, want)
	}
}

// TestP2PMeshPath: on a mesh env each directed pair owns its own link at
// PeerBW, so opposite directions and different pairs run concurrently.
func TestP2PMeshPath(t *testing.T) {
	env := topology.MI300x(1)
	f := newFabric(env)
	const size = 1 << 20
	fast := 1e12
	fwd := f.P2P(0, 0, 1, size, fast)
	rev := f.P2P(0, 1, 0, size, fast)
	if fwd != rev {
		t.Fatalf("mesh directions contend: %d vs %d", fwd, rev)
	}
	if want := timing.XferTime(size, env.PeerBW()) + env.IntraLat; fwd != want {
		t.Fatalf("mesh transfer completes at %d, want %d (PeerBW)", fwd, want)
	}
}

// TestP2PCrossNodePanics: P2P is intra-node only.
func TestP2PCrossNodePanics(t *testing.T) {
	f := newFabric(topology.A100_40G(2))
	defer func() {
		if recover() == nil {
			t.Fatal("P2P across nodes did not panic")
		}
	}()
	f.P2P(0, 0, 8, 1024, 1e12)
}

// TestDMA: the engine runs at min(DMABW, link), completion includes both
// link and DMA initiation latencies, and consecutive DMAs on one engine
// serialize.
func TestDMA(t *testing.T) {
	env := topology.A100_40G(1)
	f := newFabric(env)
	const size = 8 << 20
	bw := env.DMABW
	if bw > env.IntraBW {
		bw = env.IntraBW
	}
	wire := timing.XferTime(size, bw)
	d1 := f.DMA(0, 0, 1, size)
	if want := wire + env.IntraLat + env.DMALat; d1 != want {
		t.Fatalf("DMA completes at %d, want %d", d1, want)
	}
	d2 := f.DMA(0, 0, 1, size)
	if want := 2*wire + env.IntraLat + env.DMALat; d2 != want {
		t.Fatalf("second DMA completes at %d, want %d (engine serialized)", d2, want)
	}
}

// TestRDMA: NIC queues serialize per endpoint but distinct NIC pairs run
// concurrently; completion adds the IB latency.
func TestRDMA(t *testing.T) {
	env := topology.A100_40G(2)
	f := newFabric(env)
	const size = 1 << 20
	wire := timing.XferTime(size, env.IBBW)
	r1 := f.RDMA(0, 0, 8, size)
	if want := wire + env.IBLat; r1 != want {
		t.Fatalf("RDMA completes at %d, want %d", r1, want)
	}
	r2 := f.RDMA(0, 0, 9, size) // same sender NIC -> serializes on nicTx
	if want := 2*wire + env.IBLat; r2 != want {
		t.Fatalf("same-sender RDMA completes at %d, want %d", r2, want)
	}
	r3 := f.RDMA(0, 1, 10, size) // disjoint NICs -> concurrent
	if r3 != r1 {
		t.Fatalf("disjoint RDMA completes at %d, want %d", r3, r1)
	}
}

// TestSignalLatency picks the intra-node store latency inside a node and
// the IB latency across nodes.
func TestSignalLatency(t *testing.T) {
	env := topology.A100_40G(2)
	f := newFabric(env)
	if got := f.SignalLatency(0, 1); got != env.IntraLat {
		t.Errorf("intra-node signal latency %d, want %d", got, env.IntraLat)
	}
	if got := f.SignalLatency(0, 8); got != env.IBLat {
		t.Errorf("inter-node signal latency %d, want %d", got, env.IBLat)
	}
}

// TestSwitchOps: switch-mapped reductions occupy every member egress port
// (a second op serializes behind the first), and envs without multicast
// panic instead of silently mispricing.
func TestSwitchOps(t *testing.T) {
	env := topology.H100(1)
	f := newFabric(env)
	if !f.HasSwitch() {
		t.Fatal("H100 fabric should expose switch-mapped I/O")
	}
	const size = 1 << 20
	fast := 1e12
	wire := timing.XferTime(size, env.SwitchBW)
	s1 := f.SwitchReduce(0, 0, size, fast)
	if want := wire + env.SwitchLat; s1 != want {
		t.Fatalf("SwitchReduce completes at %d, want %d", s1, want)
	}
	// Rank 1's reduce reads every member egress too, so it contends.
	s2 := f.SwitchReduce(0, 1, size, fast)
	if want := 2*wire + env.SwitchLat; s2 != want {
		t.Fatalf("second SwitchReduce completes at %d, want %d", s2, want)
	}

	plain := newFabric(topology.A100_40G(1))
	if plain.HasSwitch() {
		t.Fatal("A100 fabric should not expose switch-mapped I/O")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SwitchReduce without multicast did not panic")
		}
	}()
	plain.SwitchReduce(0, 0, size, fast)
}

// TestReset returns every resource to idle so a fresh repetition sees a
// cold fabric.
func TestReset(t *testing.T) {
	env := topology.H100(2)
	f := newFabric(env)
	f.P2P(0, 0, 1, 1<<20, 1e12)
	f.DMA(0, 2, 3, 1<<20)
	f.RDMA(0, 0, 8, 1<<20)
	f.SwitchReduce(0, 4, 1<<20, 1e12)
	f.Reset()
	for _, rs := range [][]*sim.Resource{f.egress, f.ingress, f.dma, f.nicTx, f.nicRx, f.switchPipe, f.mesh} {
		for _, r := range rs {
			if r == nil {
				continue
			}
			if r.FreeAt() != 0 || r.BusyTime() != 0 || r.Reservations() != 0 {
				t.Fatalf("resource %s not reset: freeAt=%d busy=%d reserves=%d",
					r.Name, r.FreeAt(), r.BusyTime(), r.Reservations())
			}
		}
	}
}
