// Package fabric models the cluster interconnect: per-GPU NVLink/xGMI ports,
// per-pair mesh links, NVSwitch reduction/multicast pipelines, DMA engines,
// and per-GPU RDMA NICs.
//
// All transfer functions are pure scheduling: they reserve the resources a
// transfer occupies and return its completion time. They never block and
// never move data; the channel layer decides whether to wait and performs
// the actual copy at completion time.
package fabric

import (
	"fmt"

	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

// Fabric owns the interconnect resources of one simulated cluster.
type Fabric struct {
	Env   *topology.Env
	Model *timing.Model

	// Intra-node switch fabric (NVSwitch): per-GPU egress and ingress ports.
	egress  []*sim.Resource
	ingress []*sim.Resource
	// Intra-node mesh fabric (xGMI): per directed pair links, indexed
	// [src*G+dst] within a node; nil when the env uses a switch.
	mesh []*sim.Resource
	// Switch-mapped I/O pipelines (multimem), one per GPU port into the
	// switch; nil when unsupported.
	switchPipe []*sim.Resource
	// DMA copy engines, one per GPU (cudaMemcpy path of PortChannel).
	dma []*sim.Resource
	// RDMA NICs, one per GPU, split into send and receive queues.
	nicTx []*sim.Resource
	nicRx []*sim.Resource
}

// New builds the interconnect for env.
func New(env *topology.Env, model *timing.Model) *Fabric {
	n := env.TotalGPUs()
	f := &Fabric{Env: env, Model: model}
	name := func(kind string, i int) string { return fmt.Sprintf("%s[%d]", kind, i) }
	for i := 0; i < n; i++ {
		f.egress = append(f.egress, sim.NewResource(name("egress", i)))
		f.ingress = append(f.ingress, sim.NewResource(name("ingress", i)))
		f.dma = append(f.dma, sim.NewResource(name("dma", i)))
		f.nicTx = append(f.nicTx, sim.NewResource(name("nicTx", i)))
		f.nicRx = append(f.nicRx, sim.NewResource(name("nicRx", i)))
		if env.HasMulticast {
			f.switchPipe = append(f.switchPipe, sim.NewResource(name("switch", i)))
		}
	}
	if env.IntraMesh {
		g := env.GPUsPerNode
		f.mesh = make([]*sim.Resource, env.Nodes*g*g)
		for node := 0; node < env.Nodes; node++ {
			for s := 0; s < g; s++ {
				for d := 0; d < g; d++ {
					if s == d {
						continue
					}
					idx := node*g*g + s*g + d
					f.mesh[idx] = sim.NewResource(fmt.Sprintf("xgmi[%d:%d->%d]", node, s, d))
				}
			}
		}
	}
	return f
}

func (f *Fabric) node(rank int) int  { return rank / f.Env.GPUsPerNode }
func (f *Fabric) local(rank int) int { return rank % f.Env.GPUsPerNode }

// SameNode reports whether two ranks share a node.
func (f *Fabric) SameNode(a, b int) bool { return f.node(a) == f.node(b) }

// reserveJoint books all resources simultaneously for dur ns, starting when
// the last of them frees up (crossbar-style occupancy). It is
// sim.ReserveJoint, which also attributes queue-delay and idle-gap counters
// per member resource.
func reserveJoint(now sim.Time, dur sim.Duration, rs ...*sim.Resource) (start, end sim.Time) {
	return sim.ReserveJoint(now, dur, rs...)
}

// intraPath returns the resources a single intra-node flow src->dst occupies
// and the raw bandwidth of that path.
func (f *Fabric) intraPath(src, dst int) ([]*sim.Resource, float64) {
	if f.Env.IntraMesh {
		g := f.Env.GPUsPerNode
		idx := f.node(src)*g*g + f.local(src)*g + f.local(dst)
		return []*sim.Resource{f.mesh[idx]}, f.Env.PeerBW()
	}
	return []*sim.Resource{f.egress[src], f.ingress[dst]}, f.Env.IntraBW
}

// P2P schedules a thread-copy transfer of size bytes from src to dst (same
// node), produced at streamBW by the copying thread blocks. Returns the time
// at which the data is fully visible at dst.
func (f *Fabric) P2P(now sim.Time, src, dst int, size int64, streamBW float64) sim.Time {
	if !f.SameNode(src, dst) {
		panic(fmt.Sprintf("fabric: P2P across nodes %d->%d", src, dst))
	}
	rs, linkBW := f.intraPath(src, dst)
	wire := timing.XferTime(size, linkBW)
	start, _ := reserveJoint(now, wire, rs...)
	dur := timing.XferTime(size, streamBW)
	if dur < wire {
		dur = wire
	}
	return start + dur + f.Env.IntraLat
}

// DMA schedules a DMA-engine (cudaMemcpy-style) transfer src->dst within a
// node. The engine runs at the full DMA rate independent of SM occupancy.
func (f *Fabric) DMA(now sim.Time, src, dst int, size int64) sim.Time {
	if !f.SameNode(src, dst) {
		panic(fmt.Sprintf("fabric: DMA across nodes %d->%d", src, dst))
	}
	rs, linkBW := f.intraPath(src, dst)
	bw := f.Env.DMABW
	if bw > linkBW {
		bw = linkBW
	}
	wire := timing.XferTime(size, bw)
	all := append([]*sim.Resource{f.dma[src]}, rs...)
	start, end := reserveJoint(now, wire, all...)
	_ = start
	return end + f.Env.IntraLat + f.Env.DMALat
}

// RDMA schedules an RDMA write src->dst across nodes via the per-GPU NICs.
func (f *Fabric) RDMA(now sim.Time, src, dst int, size int64) sim.Time {
	wire := timing.XferTime(size, f.Env.IBBW)
	_, end := reserveJoint(now, wire, f.nicTx[src], f.nicRx[dst])
	return end + f.Env.IBLat
}

// SignalLatency returns the one-way latency of an atomic semaphore update
// between two ranks (p2p store intra-node, RDMA atomic inter-node).
func (f *Fabric) SignalLatency(src, dst int) sim.Duration {
	if f.SameNode(src, dst) {
		return f.Env.IntraLat
	}
	return f.Env.IBLat
}

// nodeEgress / nodeIngress return the port resources of every GPU in rank's
// node (the multimem group spans the node's NVSwitch).
func (f *Fabric) nodeEgress(rank int) []*sim.Resource {
	g := f.Env.GPUsPerNode
	base := f.node(rank) * g
	return f.egress[base : base+g]
}

func (f *Fabric) nodeIngress(rank int) []*sim.Resource {
	g := f.Env.GPUsPerNode
	base := f.node(rank) * g
	return f.ingress[base : base+g]
}

// switchTimes returns the wire occupancy (SHARP pipeline rate) and the
// completion extension for slower issuing streams.
func (f *Fabric) switchTimes(size int64, streamBW float64) (wire, dur sim.Duration) {
	wire = timing.XferTime(size, f.Env.SwitchBW)
	dur = wire
	if s := timing.XferTime(size, streamBW); s > dur {
		dur = s
	}
	return wire, dur
}

// SwitchReduce schedules an in-switch reduction read (multimem.ld_reduce):
// rank pulls size bytes that the switch aggregates across the multimem
// group. The switch reads size bytes from EVERY member GPU's memory, so the
// operation occupies all member egress ports plus the requester's ingress
// and SHARP pipeline; streamBW is the issuing thread blocks' instruction
// rate.
func (f *Fabric) SwitchReduce(now sim.Time, rank int, size int64, streamBW float64) sim.Time {
	if f.switchPipe == nil {
		panic("fabric: switch-mapped I/O unsupported on " + f.Env.Name)
	}
	wire, dur := f.switchTimes(size, streamBW)
	rs := append([]*sim.Resource{f.switchPipe[rank], f.ingress[rank]}, f.nodeEgress(rank)...)
	start, _ := reserveJoint(now, wire, rs...)
	return start + dur + f.Env.SwitchLat
}

// SwitchBroadcast schedules an in-switch multicast store (multimem.st): rank
// sends size bytes once; the switch fans them out to every member GPU's
// memory, occupying the sender's egress plus all member ingress ports.
func (f *Fabric) SwitchBroadcast(now sim.Time, rank int, size int64, streamBW float64) sim.Time {
	if f.switchPipe == nil {
		panic("fabric: switch-mapped I/O unsupported on " + f.Env.Name)
	}
	wire, dur := f.switchTimes(size, streamBW)
	rs := append([]*sim.Resource{f.switchPipe[rank], f.egress[rank]}, f.nodeIngress(rank)...)
	start, _ := reserveJoint(now, wire, rs...)
	return start + dur + f.Env.SwitchLat
}

// SwitchReduceBroadcast schedules the fused ld_reduce + multimem.st loop
// used by switch-based AllReduce: a single streaming pass that reduces
// through the switch and multicasts the result back out. The read side
// (all member egresses) and the write side (all member ingresses) pipeline,
// so completion is the max of the two occupancies.
func (f *Fabric) SwitchReduceBroadcast(now sim.Time, rank int, size int64, streamBW float64) sim.Time {
	if f.switchPipe == nil {
		panic("fabric: switch-mapped I/O unsupported on " + f.Env.Name)
	}
	wire, dur := f.switchTimes(size, streamBW)
	rdRes := append([]*sim.Resource{f.switchPipe[rank]}, f.nodeEgress(rank)...)
	rdStart, _ := reserveJoint(now, wire, rdRes...)
	wrStart, _ := reserveJoint(now, wire, f.nodeIngress(rank)...)
	start := rdStart
	if wrStart > start {
		start = wrStart
	}
	return start + dur + f.Env.SwitchLat
}

// HasSwitch reports whether switch-mapped I/O is available.
func (f *Fabric) HasSwitch() bool { return f.switchPipe != nil }

// Counters snapshots every fabric resource's introspection counters,
// grouped by interconnect role in a fixed order (egress, ingress, xgmi,
// switch, dma, nicTx, nicRx; absent roles are omitted). This is the
// fabric's counter registration for per-scenario "where did the time go"
// reports: utilization, queue delay and max depth per port class.
func (f *Fabric) Counters() []sim.CounterGroup {
	groups := []sim.CounterGroup{
		sim.Group("egress", f.egress...),
		sim.Group("ingress", f.ingress...),
		sim.Group("xgmi", f.mesh...),
		sim.Group("switch", f.switchPipe...),
		sim.Group("dma", f.dma...),
		sim.Group("nicTx", f.nicTx...),
		sim.Group("nicRx", f.nicRx...),
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g.Stats) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// Reset returns every resource to idle (between benchmark repetitions run on
// fresh engines).
func (f *Fabric) Reset() {
	for _, rs := range [][]*sim.Resource{f.egress, f.ingress, f.dma, f.nicTx, f.nicRx, f.switchPipe, f.mesh} {
		for _, r := range rs {
			if r != nil {
				r.Reset()
			}
		}
	}
}
