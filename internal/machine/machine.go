// Package machine assembles the simulated cluster: a DES engine, the
// interconnect fabric, and GPU devices that can launch kernels whose thread
// blocks execute as simulated processes.
package machine

import (
	"fmt"
	"strconv"

	"mscclpp/internal/fabric"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

// DefaultMaterializeLimit is the buffer size up to which allocations carry
// real data (larger buffers are virtual: timing only). 8 MiB keeps full
// numerical verification for the latency-regime experiments while letting
// 1 GB sweeps run fast.
const DefaultMaterializeLimit = 8 << 20

// Machine is one simulated cluster instance.
type Machine struct {
	Engine *sim.Engine
	Env    *topology.Env
	Model  *timing.Model
	Fabric *fabric.Fabric
	GPUs   []*GPU

	// MaterializeLimit controls whether Alloc returns materialized or
	// virtual buffers. Set to a huge value to force full materialization in
	// correctness tests.
	MaterializeLimit int64
}

// New builds a machine for env with the default cost model.
func New(env *topology.Env) *Machine {
	if err := env.Validate(); err != nil {
		panic(err)
	}
	model := timing.Default(env)
	m := &Machine{
		Engine:           sim.NewEngine(),
		Env:              env,
		Model:            model,
		Fabric:           fabric.New(env, model),
		MaterializeLimit: DefaultMaterializeLimit,
	}
	for r := 0; r < env.TotalGPUs(); r++ {
		m.GPUs = append(m.GPUs, &GPU{
			Rank:  r,
			Node:  r / env.GPUsPerNode,
			Local: r % env.GPUsPerNode,
			m:     m,
		})
	}
	return m
}

// Alloc allocates a buffer on rank, materialized iff size is within the
// materialization limit.
func (m *Machine) Alloc(rank int, name string, size int64) *mem.Buffer {
	if rank < 0 || rank >= len(m.GPUs) {
		panic(fmt.Sprintf("machine: Alloc on invalid rank %d", rank))
	}
	if size <= m.MaterializeLimit {
		return mem.NewBuffer(rank, name, size)
	}
	return mem.NewVirtualBuffer(rank, name, size)
}

// Run drains the event queue, returning any deadlock error.
func (m *Machine) Run() error { return m.Engine.Run() }

// Now returns current virtual time.
func (m *Machine) Now() sim.Time { return m.Engine.Now() }

// Counters snapshots the cluster's resource introspection counters. All of
// a machine's contended resources live in its fabric (GPU thread blocks
// are processes, not occupancy resources), so this is the fabric's
// registration surfaced at the cluster level.
func (m *Machine) Counters() []sim.CounterGroup { return m.Fabric.Counters() }

// GPU is one simulated device.
type GPU struct {
	Rank  int // global rank
	Node  int
	Local int // rank within node
	m     *Machine
}

// Machine returns the owning machine.
func (g *GPU) Machine() *Machine { return g.m }

// KernelHandle tracks a launched kernel for joining.
type KernelHandle struct {
	Name  string
	GPU   *GPU
	wg    *sim.WaitGroup
	start sim.Time
	end   sim.Time
}

// Wait blocks p until all thread blocks of the kernel have returned.
func (h *KernelHandle) Wait(p *sim.Proc) {
	h.wg.Wait(p)
	if p.Now() > h.end {
		h.end = p.Now()
	}
}

// Launch starts a kernel with nblocks thread blocks on the device. Each
// block runs body as a simulated process after the launch overhead elapses.
// Launch may be called from outside any Proc (events are scheduled at the
// engine's current time).
func (g *GPU) Launch(name string, nblocks int, body func(k *Kernel)) *KernelHandle {
	if nblocks < 1 {
		panic(fmt.Sprintf("machine: kernel %s launched with %d blocks", name, nblocks))
	}
	e := g.m.Engine
	h := &KernelHandle{Name: name, GPU: g, wg: sim.NewWaitGroup(e), start: e.Now()}
	h.wg.Add(nblocks)
	grid := &gridState{cond: sim.NewCond(e), size: nblocks}
	// Per-block proc names are assembled by concatenation: this runs once
	// per thread block on every kernel launch, where Sprintf parsing is
	// measurable across a sweep's thousands of launches.
	prefix := name + "/gpu" + strconv.Itoa(g.Rank) + "/tb"
	e.After(g.m.Model.KernelLaunch, func() {
		for b := 0; b < nblocks; b++ {
			blk := b
			e.Spawn(prefix+strconv.Itoa(blk), func(p *sim.Proc) {
				k := &Kernel{P: p, GPU: g, Block: blk, NumBlocks: nblocks, grid: grid}
				body(k)
				h.wg.Done()
			})
		}
	})
	return h
}

// gridState implements a reusable grid-wide barrier.
type gridState struct {
	cond  *sim.Cond
	size  int
	count int
	gen   int
}

// Kernel is the execution context of one thread block: the paper's in-kernel
// Primitive API calls receive this.
type Kernel struct {
	P         *sim.Proc
	GPU       *GPU
	Block     int
	NumBlocks int
	grid      *gridState
}

// Machine returns the owning machine.
func (k *Kernel) Machine() *Machine { return k.GPU.m }

// Model returns the cost model.
func (k *Kernel) Model() *timing.Model { return k.GPU.m.Model }

// Fabric returns the interconnect.
func (k *Kernel) Fabric() *fabric.Fabric { return k.GPU.m.Fabric }

// Now returns current virtual time.
func (k *Kernel) Now() sim.Time { return k.P.Now() }

// Elapse charges d nanoseconds of in-kernel compute time.
func (k *Kernel) Elapse(d sim.Duration) { k.P.Sleep(d) }

// TBSync models __syncthreads() within the thread block.
func (k *Kernel) TBSync() { k.P.Sleep(k.Model().TBSyncCost) }

// GridBarrier synchronizes all thread blocks of this kernel (device-wide
// barrier via arrive/wait counters).
func (k *Kernel) GridBarrier() {
	g := k.grid
	gen := g.gen
	g.count++
	if g.count == g.size {
		g.count = 0
		g.gen++
		k.P.Sleep(k.Model().DeviceBarrierCost)
		g.cond.Broadcast()
		return
	}
	k.P.Wait(g.cond, "grid barrier", func() bool { return g.gen != gen })
}

// LocalReduce charges the cost of an in-kernel local reduction of size bytes
// performed cooperatively by nTB thread blocks (caller is one of them; all
// participating blocks should call with the same arguments).
func (k *Kernel) LocalReduce(size int64, nTB int) {
	bw := k.Model().LocalReduceBW(nTB)
	k.P.Sleep(timing.XferTime(size, bw) + k.Model().InstrOverhead)
}

// LocalCopy charges the cost of an in-kernel local memory copy by nTB blocks.
func (k *Kernel) LocalCopy(size int64, nTB int) {
	bw := float64(nTB) * k.Model().LocalCopyBWPerTB
	if hbm := k.Model().Env.HBMBW / 2; bw > hbm {
		bw = hbm
	}
	k.P.Sleep(timing.XferTime(size, bw) + k.Model().InstrOverhead)
}
