package machine

import (
	"testing"

	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

func TestNewMachineShape(t *testing.T) {
	m := New(topology.A100_40G(2))
	if len(m.GPUs) != 16 {
		t.Fatalf("got %d GPUs, want 16", len(m.GPUs))
	}
	g := m.GPUs[11]
	if g.Rank != 11 || g.Node != 1 || g.Local != 3 {
		t.Fatalf("gpu11 = %+v", g)
	}
}

func TestAllocMaterialization(t *testing.T) {
	m := New(topology.H100(1))
	small := m.Alloc(0, "small", 1024)
	if !small.Materialized() {
		t.Fatal("small buffer should be materialized")
	}
	big := m.Alloc(0, "big", 1<<30)
	if big.Materialized() {
		t.Fatal("1GB buffer should be virtual")
	}
	m.MaterializeLimit = 1 << 40
	big2 := m.Alloc(0, "big2", 64<<20)
	if !big2.Materialized() {
		t.Fatal("raised limit should materialize")
	}
}

func TestAllocInvalidRankPanics(t *testing.T) {
	m := New(topology.H100(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Alloc(8, "oob", 16)
}

func TestKernelLaunchOverheadAndJoin(t *testing.T) {
	m := New(topology.A100_40G(1))
	var blockStart, kernelEnd sim.Time
	h := m.GPUs[0].Launch("k", 4, func(k *Kernel) {
		if k.Block == 0 {
			blockStart = k.Now()
		}
		k.Elapse(sim.Duration(100 * (k.Block + 1)))
	})
	m.Engine.Spawn("join", func(p *sim.Proc) {
		h.Wait(p)
		kernelEnd = p.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	launch := m.Model.KernelLaunch
	if blockStart != launch {
		t.Fatalf("block started at %d, want launch overhead %d", blockStart, launch)
	}
	if kernelEnd != launch+400 {
		t.Fatalf("kernel joined at %d, want %d", kernelEnd, launch+400)
	}
}

func TestGridBarrier(t *testing.T) {
	m := New(topology.A100_40G(1))
	const blocks = 8
	var after [blocks]sim.Time
	m.GPUs[0].Launch("bar", blocks, func(k *Kernel) {
		// Stagger arrival.
		k.Elapse(sim.Duration(10 * k.Block))
		k.GridBarrier()
		after[k.Block] = k.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Everyone leaves the barrier no earlier than the last arrival.
	lastArrival := m.Model.KernelLaunch + 10*(blocks-1)
	for b, tm := range after {
		if tm < lastArrival {
			t.Fatalf("block %d left barrier at %d before last arrival %d", b, tm, lastArrival)
		}
	}
}

func TestGridBarrierReusable(t *testing.T) {
	m := New(topology.A100_40G(1))
	const blocks, rounds = 4, 5
	counts := make([]int, blocks)
	m.GPUs[0].Launch("bar", blocks, func(k *Kernel) {
		for r := 0; r < rounds; r++ {
			k.Elapse(sim.Duration(k.Block + 1))
			k.GridBarrier()
			counts[k.Block]++
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for b, c := range counts {
		if c != rounds {
			t.Fatalf("block %d completed %d rounds, want %d", b, c, rounds)
		}
	}
}

func TestLaunchZeroBlocksPanics(t *testing.T) {
	m := New(topology.A100_40G(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.GPUs[0].Launch("bad", 0, func(k *Kernel) {})
}

func TestFabricP2PTiming(t *testing.T) {
	m := New(topology.H100(1))
	f := m.Fabric
	// Single 1 MB transfer at full link speed.
	size := int64(1 << 20)
	done := f.P2P(0, 0, 1, size, 1e9)
	wire := timing.XferTime(size, m.Env.IntraBW)
	want := wire + m.Env.IntraLat
	if done != want {
		t.Fatalf("P2P completion %d, want %d", done, want)
	}
	// Slow stream (one TB): completion extends, wire occupancy doesn't.
	f.Reset()
	slow := f.P2P(0, 0, 1, size, m.Model.ThreadCopyBWPerTB)
	if slow <= done {
		t.Fatalf("slow stream (%d) should finish after fast stream (%d)", slow, done)
	}
	// A second transfer from another source to another target overlaps.
	f.Reset()
	a := f.P2P(0, 0, 1, size, 1e9)
	b := f.P2P(0, 2, 3, size, 1e9)
	if a != b {
		t.Fatalf("disjoint transfers should complete together: %d vs %d", a, b)
	}
	// Same egress port serializes.
	f.Reset()
	a = f.P2P(0, 0, 1, size, 1e9)
	b = f.P2P(0, 0, 2, size, 1e9)
	if b <= a {
		t.Fatalf("shared egress should serialize: first %d, second %d", a, b)
	}
}

func TestFabricP2PCrossNodePanics(t *testing.T) {
	m := New(topology.A100_40G(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Fabric.P2P(0, 0, 8, 1024, 1e9)
}

func TestFabricRDMA(t *testing.T) {
	m := New(topology.H100(2))
	size := int64(1 << 20)
	done := m.Fabric.RDMA(0, 0, 8, size)
	want := timing.XferTime(size, m.Env.IBBW) + m.Env.IBLat
	if done != want {
		t.Fatalf("RDMA completion %d, want %d", done, want)
	}
	// NIC serialization: two sends from the same GPU queue up.
	second := m.Fabric.RDMA(0, 0, 9, size)
	if second <= done {
		t.Fatalf("same nicTx should serialize: %d then %d", done, second)
	}
}

func TestFabricSwitchOps(t *testing.T) {
	m := New(topology.H100(1))
	if !m.Fabric.HasSwitch() {
		t.Fatal("H100 should support switch-mapped I/O")
	}
	size := int64(1 << 20)
	done := m.Fabric.SwitchReduce(0, 0, size, 1e9)
	want := timing.XferTime(size, m.Env.SwitchBW) + m.Env.SwitchLat
	if done != want {
		t.Fatalf("SwitchReduce completion %d, want %d", done, want)
	}
	a100 := New(topology.A100_40G(1))
	if a100.Fabric.HasSwitch() {
		t.Fatal("A100 must not report switch support")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsupported switch op")
		}
	}()
	a100.Fabric.SwitchReduce(0, 0, size, 1e9)
}

func TestFabricMeshPaths(t *testing.T) {
	m := New(topology.MI300x(1))
	size := int64(1 << 20)
	// On a mesh, transfers to different peers use independent links.
	a := m.Fabric.P2P(0, 0, 1, size, 1e9)
	b := m.Fabric.P2P(0, 0, 2, size, 1e9)
	if a != b {
		t.Fatalf("mesh links to different peers should be independent: %d vs %d", a, b)
	}
	// But per-peer bandwidth is the per-link share.
	wire := timing.XferTime(size, m.Env.PeerBW())
	if a != wire+m.Env.IntraLat {
		t.Fatalf("mesh completion %d, want %d", a, wire+m.Env.IntraLat)
	}
	// Same directed pair serializes.
	c := m.Fabric.P2P(0, 0, 1, size, 1e9)
	if c <= a {
		t.Fatal("same mesh link should serialize")
	}
}

func TestSignalLatency(t *testing.T) {
	m := New(topology.H100(2))
	if got := m.Fabric.SignalLatency(0, 1); got != m.Env.IntraLat {
		t.Fatalf("intra signal latency %d, want %d", got, m.Env.IntraLat)
	}
	if got := m.Fabric.SignalLatency(0, 8); got != m.Env.IBLat {
		t.Fatalf("inter signal latency %d, want %d", got, m.Env.IBLat)
	}
}

func TestLocalComputeCosts(t *testing.T) {
	m := New(topology.A100_40G(1))
	var redT, cpT sim.Time
	m.GPUs[0].Launch("compute", 1, func(k *Kernel) {
		t0 := k.Now()
		k.LocalReduce(1<<20, 4)
		redT = k.Now() - t0
		t1 := k.Now()
		k.LocalCopy(1<<20, 4)
		cpT = k.Now() - t1
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if redT <= 0 || cpT <= 0 {
		t.Fatalf("compute costs must be positive: reduce=%d copy=%d", redT, cpT)
	}
}
