// Package doccheck enforces the repository's documentation gates from
// inside `go test`, so they hold on every developer machine and not just
// in CI:
//
//   - Undocumented lists exported identifiers that lack a doc comment,
//     backing the per-package "go doc output must be self-explanatory"
//     gate (internal/serve and internal/scenario opt in via a one-line
//     test).
//   - BrokenLinks validates the relative links of a Markdown file against
//     the filesystem, backing the README link gate at the repository root.
//
// Both checks return findings rather than failing themselves, so the
// calling test owns the error message and the opt-in surface stays
// explicit.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Undocumented parses the non-test Go sources of the package in dir and
// returns a sorted list of exported identifiers that have no doc comment:
// functions, methods with exported receivers, types, and const/var specs
// (a group comment on the enclosing declaration covers its specs, matching
// what `go doc` displays). An empty result means every exported symbol is
// documented.
func Undocumented(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(name string, pos token.Pos) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s (%s:%d)", name, filepath.Base(p.Filename), p.Line))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					name := d.Name.Name
					if d.Recv != nil && len(d.Recv.List) == 1 {
						recv := receiverName(d.Recv.List[0].Type)
						if recv == "" || !ast.IsExported(recv) {
							// Methods of unexported types (e.g. unexported
							// implementations of an exported interface) do
							// not appear in go doc output.
							continue
						}
						name = recv + "." + name
					}
					report(name, d.Pos())
				case *ast.GenDecl:
					switch d.Tok {
					case token.TYPE:
						for _, spec := range d.Specs {
							ts := spec.(*ast.TypeSpec)
							if ts.Name.IsExported() && ts.Doc == nil && d.Doc == nil {
								report(ts.Name.Name, ts.Pos())
							}
						}
					case token.CONST, token.VAR:
						for _, spec := range d.Specs {
							vs := spec.(*ast.ValueSpec)
							if vs.Doc != nil || d.Doc != nil {
								continue
							}
							for _, id := range vs.Names {
								if id.IsExported() {
									report(id.Name, id.Pos())
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// receiverName unwraps a method receiver type expression to its type name.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}

// mdLink matches inline Markdown links and images: [text](target). Angle
// brackets, titles and reference-style links are out of scope — the
// repository's READMEs use plain inline links.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// codeSpans matches fenced code blocks and inline code spans, which must
// not be link-checked: Go snippets like pols[i](req) would otherwise
// parse as Markdown links.
var codeSpans = regexp.MustCompile("(?s)```.*?```|`[^`\n]*`")

// BrokenLinks scans the Markdown file at path and returns each relative
// link whose target does not exist on the filesystem (resolved against the
// file's directory, anchors stripped). Absolute URLs (scheme://...) and
// pure in-page anchors are skipped. An empty result means every local link
// resolves.
func BrokenLinks(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	prose := codeSpans.ReplaceAllString(string(data), "")
	var broken []string
	for _, m := range mdLink.FindAllStringSubmatch(prose, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			broken = append(broken, fmt.Sprintf("%s -> %s", m[0], target))
		}
	}
	return broken, nil
}
