package doccheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUndocumentedDetection exercises the checker against a synthetic
// package with every category of finding it must (and must not) flag.
func TestUndocumentedDetection(t *testing.T) {
	dir := t.TempDir()
	src := `// Package fixture is a doccheck test fixture.
package fixture

// Documented has a doc comment.
func Documented() {}

func Undoc() {}

func unexported() {}

// T is documented.
type T struct{}

// Method is documented.
func (T) Method() {}

func (T) NoDoc() {}

type U struct{}

type hidden struct{}

func (hidden) Exported() {}

// Grouped constants share the declaration comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const Bare = 3

var (
	// VarDoc has a spec comment.
	VarDoc int

	BareVar int
)
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files must be ignored entirely.
	if err := os.WriteFile(filepath.Join(dir, "fixture_test.go"),
		[]byte("package fixture\n\nfunc TestExportedNoDoc() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	missing, err := Undocumented(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range missing {
		name, _, _ := strings.Cut(m, " ")
		got[name] = true
	}
	want := []string{"Undoc", "T.NoDoc", "U", "Bare", "BareVar"}
	for _, w := range want {
		if !got[w] {
			t.Errorf("checker missed undocumented %s (got %v)", w, missing)
		}
	}
	if len(missing) != len(want) {
		t.Errorf("flagged %d symbols, want %d: %v", len(missing), len(want), missing)
	}
}

// TestBrokenLinks validates the Markdown link checker against present and
// missing targets, anchors, and external URLs.
func TestBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "other.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := "# Test\n" +
		"[ok](sub/other.md) [anchored](sub/other.md#sec) [web](https://example.com/x)\n" +
		"[inpage](#here) [missing](nope.md) ![img](gone.png)\n" +
		"Inline code `pols[i](req)` and fences are not links:\n" +
		"```go\nhandlers[i](w)\nx := arr[j](y)\n```\n"
	path := filepath.Join(dir, "README.md")
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := BrokenLinks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("flagged %d links, want 2 (missing + img): %v", len(broken), broken)
	}
}
