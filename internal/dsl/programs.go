package dsl

import "fmt"

// This file contains the DSL-authored collective algorithms bundled with the
// library (paper §6: "we implement the best algorithms in our collective
// kernels using the MSCCL++ DSL"). Each builder returns a Program ready to
// Lower; the executor package runs the resulting plans.

// BuildAllReduce1PA authors the one-phase all-pairs LL AllReduce in the DSL:
// every rank packet-broadcasts its input to every peer's scratch slot and
// reduces arrivals locally.
func BuildAllReduce1PA(ranks int, size int64, numTB int) (*Program, error) {
	if numTB < 1 {
		numTB = 1
	}
	p := NewProgram(fmt.Sprintf("dsl-1PA-LL-%dB", size), "allreduce", ranks, numTB, size, size)
	scratch := make([]*Buffer, ranks)
	for r := 0; r < ranks; r++ {
		scratch[r] = p.ScratchBuffer(r, size*int64(ranks))
	}
	chans := make([][]*MemChannel, ranks)
	for r := 0; r < ranks; r++ {
		chans[r] = make([]*MemChannel, ranks)
	}
	for a := 0; a < ranks; a++ {
		for b := 0; b < ranks; b++ {
			if a != b {
				chans[a][b] = p.MemoryChannel(a, b, p.Input(a), scratch[b])
			}
		}
	}
	grp := TBGroup{First: 0, Size: numTB}
	const flag = 1
	for r := 0; r < ranks; r++ {
		in, out := p.Input(r), p.Output(r)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			chans[r][q].PutPackets(scratch[q].Chunk(int64(r)*size, size), in.Whole(), 0, flag, grp)
		}
		out.Whole().Copy(in.Whole(), 0, grp)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			for tb := 0; tb < numTB; tb++ {
				chans[q][r].AwaitPackets(tb, flag, size)
			}
			out.Whole().Reduce(scratch[r].Chunk(int64(q)*size, size), 0, grp)
		}
	}
	return p, nil
}

// BuildAllReduce2PAHB authors the two-phase all-pairs HB AllReduce in the
// DSL: pull-reduce my slice from all peers, device sync, push the reduced
// slice to all peers, then signal/wait closing handshake.
func BuildAllReduce2PAHB(ranks int, size int64, numTB int) (*Program, error) {
	if size%int64(4*ranks) != 0 {
		return nil, fmt.Errorf("dsl 2PA-HB: size %d not divisible by 4*ranks", size)
	}
	if numTB < 1 {
		numTB = 1
	}
	slice := size / int64(ranks)
	p := NewProgram(fmt.Sprintf("dsl-2PA-HB-%dB", size), "allreduce", ranks, numTB, size, size)
	pull := make([][]*MemChannel, ranks)
	push := make([][]*MemChannel, ranks)
	for r := 0; r < ranks; r++ {
		pull[r] = make([]*MemChannel, ranks)
		push[r] = make([]*MemChannel, ranks)
	}
	for a := 0; a < ranks; a++ {
		for b := 0; b < ranks; b++ {
			if a != b {
				pull[a][b] = p.MemoryChannel(a, b, p.Input(a), p.Input(b))
				push[a][b] = p.MemoryChannel(a, b, p.Output(a), p.Output(b))
			}
		}
	}
	grp := TBGroup{First: 0, Size: numTB}
	for r := 0; r < ranks; r++ {
		in, out := p.Input(r), p.Output(r)
		my := int64(r) * slice
		mine := out.Chunk(my, slice)
		mine.Copy(in.Chunk(my, slice), 0, grp)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			pull[r][q].Reduce(mine, p.Input(q).Chunk(my, slice), 0, grp)
		}
		p.DeviceSync(r)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			push[r][q].Put(p.Output(q).Chunk(my, slice), mine, 0, grp)
		}
		p.DeviceSync(r)
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			push[r][q].Signal(0)
		}
		for s := 1; s < ranks; s++ {
			q := (r + s) % ranks
			push[q][r].Wait(0)
		}
		p.DeviceSync(r)
	}
	return p, nil
}

// BuildRingReduceScatter authors the overlapped Ring ReduceScatter of paper
// Figure 6 in the DSL: PortChannel puts of half-chunks whose DMA transfers
// overlap the local reduction of the previously received halves. After the
// program, rank r's working scratch holds chunk (r+1)%N fully reduced.
// The working buffer is the output buffer (sized like the input) and the
// receive buffer is scratch, mirroring Figure 6's src/scr split.
func BuildRingReduceScatter(ranks int, size int64) (*Program, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("dsl ringRS: need >= 2 ranks")
	}
	if size%int64(8*ranks) != 0 {
		return nil, fmt.Errorf("dsl ringRS: size %d not divisible by 8*ranks", size)
	}
	chunk := size / int64(ranks)
	half := chunk / 2
	p := NewProgram(fmt.Sprintf("dsl-ringRS-%dB", size), "reducescatter-ring", ranks, 1, size, size)
	scr := make([]*Buffer, ranks)
	for r := 0; r < ranks; r++ {
		scr[r] = p.ScratchBuffer(r, size)
	}
	// portChannels[r] sends from r's working buffer (output) to next's scr.
	put := make([]*PortChannel, ranks)
	for r := 0; r < ranks; r++ {
		next := (r + 1) % ranks
		put[r] = p.PortChannel(r, next, p.Output(r), scr[next])
	}
	const tb = 0
	for r := 0; r < ranks; r++ {
		src := p.Output(r) // working buffer, seeded from input
		recv := scr[r]
		prev := (r + ranks - 1) % ranks
		src.Whole().Copy(p.Input(r).Whole(), tb)
		for step := 0; step < ranks-1; step++ {
			cs := int64((r+ranks-step)%ranks) * chunk   // chunk to send
			cr := int64((r+ranks-step-1)%ranks) * chunk // chunk arriving
			// (a) Put 1st half of the outgoing chunk.
			put[r].Put(scr[(r+1)%ranks].Chunk(cs, half), src.Chunk(cs, half), tb)
			put[r].Signal(tb)
			// (b) Put 2nd half; its DMA overlaps the reduction below.
			put[r].Put(scr[(r+1)%ranks].Chunk(cs+half, half), src.Chunk(cs+half, half), tb)
			put[r].Signal(tb)
			// Wait for the 1st half of the incoming chunk and reduce it
			// while (b) is in flight.
			put[prev].Wait(tb)
			src.Chunk(cr, half).Reduce(recv.Chunk(cr, half), tb)
			put[prev].Wait(tb)
			src.Chunk(cr+half, half).Reduce(recv.Chunk(cr+half, half), tb)
			put[r].Flush(tb)
		}
	}
	return p, nil
}
