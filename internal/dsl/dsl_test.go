package dsl

import (
	"testing"

	"mscclpp/internal/plan"
)

func TestLowerInsertsSyncBetweenDependentOps(t *testing.T) {
	p := NewProgram("dep", "test", 2, 1, 1024, 1024)
	scr := p.ScratchBuffer(0, 1024)
	// Write scr then read it: lowering must insert a tb_sync between.
	scr.Whole().Copy(p.Input(0).Whole(), 0)
	p.Output(0).Whole().Copy(scr.Whole(), 0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Programs[0][0]
	if len(ops) != 3 {
		t.Fatalf("ops = %v, want copy/tb_sync/copy", codes(ops))
	}
	if ops[1].Code != plan.OpTBSync {
		t.Fatalf("middle op = %s, want tb_sync", ops[1].Code)
	}
}

func TestLowerNoSyncBetweenIndependentOps(t *testing.T) {
	p := NewProgram("indep", "test", 2, 1, 1024, 1024)
	scr := p.ScratchBuffer(0, 2048)
	scr.Chunk(0, 1024).Copy(p.Input(0).Whole(), 0)
	scr.Chunk(1024, 1024).Copy(p.Input(0).Whole(), 0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pl.Programs[0][0] {
		if op.Code == plan.OpTBSync {
			t.Fatalf("unnecessary sync inserted: %v", codes(pl.Programs[0][0]))
		}
	}
}

func TestLowerRedundantSyncElimination(t *testing.T) {
	p := NewProgram("redundant", "test", 2, 2, 1024, 1024)
	// Back-to-back device syncs collapse is for tb_sync; grid barriers stay,
	// but a dependent pair across a wait gets no extra sync.
	ch := p.MemoryChannel(0, 1, p.Input(0), p.Input(1))
	ch.Put(p.Input(1).Whole(), p.Input(0).Whole(), 0)
	ch.Signal(0)
	ch.Wait(0)
	// After the wait (a sync point), reading data written before it must not
	// insert another tb_sync.
	p.Output(1).Whole().Copy(p.Input(1).Whole(), 0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pl.Programs[1][0] {
		if op.Code == plan.OpTBSync {
			t.Fatalf("sync after wait is redundant: %v", codes(pl.Programs[1][0]))
		}
	}
}

func TestLowerFusesPutSignal(t *testing.T) {
	p := NewProgram("fuse1", "test", 2, 1, 1024, 1024)
	ch := p.MemoryChannel(0, 1, p.Input(0), p.Input(1))
	ch.Put(p.Input(1).Whole(), p.Input(0).Whole(), 0)
	ch.Signal(0)
	ch.Wait(0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Programs[0][0]
	if len(ops) != 1 || ops[0].Code != plan.OpPutWithSignal {
		t.Fatalf("rank0 ops = %v, want single put_with_signal", codes(ops))
	}
}

func TestLowerFusesReducePut(t *testing.T) {
	p := NewProgram("fuse2", "test", 2, 1, 1024, 1024)
	scrA := p.ScratchBuffer(0, 1024)
	scrB := p.ScratchBuffer(0, 1024)
	ch := p.MemoryChannel(0, 1, scrA, p.Input(1))
	// A += B; put(dst, A): fuses into reduce_put since A is dead after.
	scrA.Whole().Reduce(scrB.Whole(), 0)
	ch.Put(p.Input(1).Whole(), scrA.Whole(), 0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range pl.Programs[0][0] {
		if op.Code == plan.OpReducePut {
			found = true
		}
		if op.Code == plan.OpLocalReduce || op.Code == plan.OpPut {
			t.Fatalf("unfused ops remain: %v", codes(pl.Programs[0][0]))
		}
	}
	if !found {
		t.Fatalf("reduce_put missing: %v", codes(pl.Programs[0][0]))
	}
}

func TestLowerNoReducePutFusionWhenValueLive(t *testing.T) {
	p := NewProgram("nofuse", "test", 2, 1, 1024, 1024)
	scrA := p.ScratchBuffer(0, 1024)
	scrB := p.ScratchBuffer(0, 1024)
	ch := p.MemoryChannel(0, 1, scrA, p.Input(1))
	scrA.Whole().Reduce(scrB.Whole(), 0)
	ch.Put(p.Input(1).Whole(), scrA.Whole(), 0)
	// scrA is read later: fusion would lose the reduced value.
	p.Output(0).Whole().Copy(scrA.Whole(), 0)
	pl, err := p.Lower()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pl.Programs[0][0] {
		if op.Code == plan.OpReducePut {
			t.Fatalf("illegal fusion with live value: %v", codes(pl.Programs[0][0]))
		}
	}
}

func TestLowerRejectsUnbalancedSignals(t *testing.T) {
	p := NewProgram("unbalanced", "test", 2, 1, 1024, 1024)
	ch := p.MemoryChannel(0, 1, p.Input(0), p.Input(1))
	ch.Wait(0) // wait with no signal anywhere
	if _, err := p.Lower(); err == nil {
		t.Fatal("expected signal/wait balance error")
	}
}

func TestLowerRejectsBadChunks(t *testing.T) {
	p := NewProgram("bad", "test", 2, 1, 1024, 1024)
	p.Input(0).Chunk(512, 1024) // out of bounds, recorded as error
	if _, err := p.Lower(); err == nil {
		t.Fatal("expected chunk bounds error")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	prog, err := BuildAllReduce1PA(8, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := prog.Lower()
	if err != nil {
		t.Fatal(err)
	}
	data, err := pl.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := plan.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.OpCount() != pl.OpCount() || back.Name != pl.Name || len(back.Channels) != len(pl.Channels) {
		t.Fatalf("round trip mismatch: %d/%d ops", back.OpCount(), pl.OpCount())
	}
}

func TestBuildProgramsLower(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*Program, error)
	}{
		{"1pa", func() (*Program, error) { return BuildAllReduce1PA(8, 8192, 2) }},
		{"2pahb", func() (*Program, error) { return BuildAllReduce2PAHB(8, 65536, 4) }},
		{"ringrs", func() (*Program, error) { return BuildRingReduceScatter(8, 65536) }},
	}
	for _, c := range cases {
		prog, err := c.f()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		pl, err := prog.Lower()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if pl.OpCount() == 0 {
			t.Fatalf("%s: empty plan", c.name)
		}
	}
}

func codes(ops []plan.Op) []plan.OpCode {
	out := make([]plan.OpCode, len(ops))
	for i, o := range ops {
		out[i] = o.Code
	}
	return out
}
