package dsl

import (
	"errors"
	"fmt"
	"strings"

	"mscclpp/internal/plan"
)

// Lower runs dependence analysis, synchronization insertion, redundant-sync
// elimination and operation fusion, and returns the validated execution
// plan (paper §5.3).
func (p *Program) Lower() (*plan.Plan, error) {
	if len(p.errs) > 0 {
		msgs := make([]string, 0, len(p.errs))
		for _, e := range p.errs {
			msgs = append(msgs, e.Error())
		}
		return nil, errors.New("dsl: program has errors: " + strings.Join(msgs, "; "))
	}
	pl := &plan.Plan{
		Name:       p.Name,
		Collective: p.Collective,
		Ranks:      p.Ranks,
		NumTB:      p.NumTB,
		InSize:     p.InSize,
		OutSize:    p.OutSize,
		MaxFlag:    p.maxFlag,
		Channels:   append([]plan.Channel(nil), p.channels...),
		Scratch:    append([]plan.Scratch(nil), p.scratch...),
	}
	pl.Programs = make([][][]plan.Op, p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		pl.Programs[r] = make([][]plan.Op, p.NumTB)
		for tb := 0; tb < p.NumTB; tb++ {
			ops := append([]plan.Op(nil), p.streams[r][tb]...)
			// Fusion first: it eliminates the intermediate write whose
			// dependence would otherwise force a synchronization.
			ops = fuseOps(ops)
			ops = insertSyncs(ops, r)
			ops = dedupSyncs(ops)
			pl.Programs[r][tb] = ops
		}
	}
	if err := checkSignalBalance(pl); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// interval is a written byte range of one buffer.
type interval struct {
	buf      plan.BufRef
	off, end int64
}

func overlaps(a, b interval) bool {
	return a.buf == b.buf && a.off < b.end && b.off < a.end
}

// accesses returns the local-rank chunks op reads and writes (remote-side
// chunks are synchronized by explicit signal/wait, as in the paper).
func accesses(op plan.Op, rank int) (reads, writes []interval) {
	toIv := func(c plan.Chunk) (interval, bool) {
		if c.Size == 0 {
			return interval{}, false
		}
		if c.Buf.Rank != rank {
			return interval{}, false
		}
		return interval{buf: c.Buf, off: c.Off, end: c.Off + c.Size}, true
	}
	switch op.Code {
	case plan.OpPut, plan.OpPutPackets, plan.OpPutWithSignal:
		if iv, ok := toIv(op.Src); ok {
			reads = append(reads, iv)
		}
	case plan.OpReducePut:
		if iv, ok := toIv(op.Src); ok {
			reads = append(reads, iv)
		}
		if iv, ok := toIv(op.Data); ok {
			reads = append(reads, iv)
		}
	case plan.OpLocalCopy, plan.OpLocalReduce, plan.OpChanReduce, plan.OpSwitchReduce:
		if iv, ok := toIv(op.Src); ok {
			reads = append(reads, iv)
		}
		if iv, ok := toIv(op.Dst); ok {
			writes = append(writes, iv)
			if op.Code == plan.OpLocalReduce || op.Code == plan.OpChanReduce {
				reads = append(reads, iv)
			}
		}
	case plan.OpSwitchBcast:
		if iv, ok := toIv(op.Src); ok {
			reads = append(reads, iv)
		}
	}
	return reads, writes
}

// insertSyncs adds a tb_sync before any op that touches data written by an
// earlier op since the last synchronization point (chunk-level last-writer
// tracking, paper §5.3).
func insertSyncs(ops []plan.Op, rank int) []plan.Op {
	var out []plan.Op
	var dirty []interval
	isSyncPoint := func(c plan.OpCode) bool {
		switch c {
		case plan.OpTBSync, plan.OpGridBarrier, plan.OpWait, plan.OpAwaitPackets, plan.OpFlush:
			return true
		}
		return false
	}
	for _, op := range ops {
		if isSyncPoint(op.Code) {
			dirty = dirty[:0]
			out = append(out, op)
			continue
		}
		reads, writes := accesses(op, rank)
		conflict := false
		for _, a := range append(append([]interval(nil), reads...), writes...) {
			for _, d := range dirty {
				if overlaps(a, d) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			out = append(out, plan.Op{Code: plan.OpTBSync})
			dirty = dirty[:0]
		}
		dirty = append(dirty, writes...)
		out = append(out, op)
	}
	return out
}

// fuseOps merges operation pairs meeting the fusion criteria (§5.3):
// local_reduce immediately followed by a put of the reduced chunk becomes
// reduce_put (register-resident intermediate), and put immediately followed
// by signal on the same channel becomes put_with_signal.
func fuseOps(ops []plan.Op) []plan.Op {
	var out []plan.Op
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		// local_reduce(A += B); put(ch, dst, A) -> reduce_put, valid when no
		// later op in this stream reads or writes A (the reduced value
		// lives only in registers).
		if op.Code == plan.OpLocalReduce && i+1 < len(ops) {
			nxt := ops[i+1]
			if nxt.Code == plan.OpPut && nxt.Src == op.Dst &&
				nxt.GroupRank == op.GroupRank && nxt.GroupSize == op.GroupSize &&
				!chunkTouchedLater(ops[i+2:], op.Dst) {
				out = append(out, plan.Op{
					Code: plan.OpReducePut, Channel: nxt.Channel,
					Dst: nxt.Dst, Src: op.Dst, Data: op.Src,
					GroupRank: op.GroupRank, GroupSize: op.GroupSize,
				})
				i++
				continue
			}
		}
		// put; signal (same channel) -> put_with_signal.
		if op.Code == plan.OpPut && i+1 < len(ops) {
			nxt := ops[i+1]
			if nxt.Code == plan.OpSignal && nxt.Channel == op.Channel {
				f := op
				f.Code = plan.OpPutWithSignal
				out = append(out, f)
				i++
				continue
			}
		}
		out = append(out, op)
	}
	return out
}

// chunkTouchedLater reports whether any later op reads or writes chunk c.
func chunkTouchedLater(ops []plan.Op, c plan.Chunk) bool {
	iv := interval{buf: c.Buf, off: c.Off, end: c.Off + c.Size}
	for _, op := range ops {
		reads, writes := accesses(op, c.Buf.Rank)
		for _, a := range append(reads, writes...) {
			if overlaps(a, iv) {
				return true
			}
		}
	}
	return false
}

// dedupSyncs removes back-to-back thread-block synchronizations and syncs
// at the stream head (§5.3: "redundancies will be removed, retaining only
// one of them").
func dedupSyncs(ops []plan.Op) []plan.Op {
	var out []plan.Op
	for _, op := range ops {
		if op.Code == plan.OpTBSync {
			if len(out) == 0 {
				continue
			}
			last := out[len(out)-1].Code
			if last == plan.OpTBSync || last == plan.OpGridBarrier ||
				last == plan.OpWait || last == plan.OpAwaitPackets {
				continue
			}
		}
		out = append(out, op)
	}
	return out
}

// checkSignalBalance verifies that each channel's signal-like ops match its
// waits (a mismatch deadlocks the executor).
func checkSignalBalance(pl *plan.Plan) error {
	signals := make(map[int]int)
	waits := make(map[int]int)
	for _, tbs := range pl.Programs {
		for _, ops := range tbs {
			for _, op := range ops {
				switch op.Code {
				case plan.OpSignal, plan.OpPutWithSignal:
					signals[op.Channel]++
				case plan.OpWait:
					waits[op.Channel]++
				}
			}
		}
	}
	for ch, w := range waits {
		if s := signals[ch]; s < w {
			return fmt.Errorf("dsl: channel %d has %d waits but only %d signals", ch, w, s)
		}
	}
	return nil
}
