// Package dsl implements the MSCCL++ DSL (paper Section 5): a builder with
// a global view of all thread blocks on all ranks, in which users describe
// custom collective communication algorithms over PortChannel /
// MemoryChannel / SwitchChannel abstractions. Lowering performs chunk-level
// data-dependence analysis (inserting thread-block synchronizations),
// redundant-synchronization elimination and operation fusion, and emits an
// execution plan (package plan) interpreted by the DSL Executor (package
// executor).
//
// The paper's DSL is Python-embedded; this reproduction embeds the same
// programming model in Go (documented substitution in DESIGN.md).
package dsl

import (
	"fmt"

	"mscclpp/internal/plan"
)

// Program is a DSL program under construction.
type Program struct {
	Name       string
	Collective string
	Ranks      int
	NumTB      int
	InSize     int64
	OutSize    int64

	channels []plan.Channel
	scratch  []plan.Scratch
	streams  [][][]plan.Op // [rank][tb]
	maxFlag  uint64
	errs     []error
}

// NewProgram starts a program for a collective over ranks ranks with numTB
// thread blocks per rank, for concrete input/output buffer sizes (the DSL
// lowers for specific sizes, as in the paper).
func NewProgram(name, collective string, ranks, numTB int, inSize, outSize int64) *Program {
	p := &Program{
		Name: name, Collective: collective,
		Ranks: ranks, NumTB: numTB,
		InSize: inSize, OutSize: outSize,
	}
	p.streams = make([][][]plan.Op, ranks)
	for r := range p.streams {
		p.streams[r] = make([][]plan.Op, numTB)
	}
	return p
}

func (p *Program) errf(format string, args ...interface{}) {
	p.errs = append(p.errs, fmt.Errorf(format, args...))
}

func (p *Program) emit(rank, tb int, op plan.Op) {
	if rank < 0 || rank >= p.Ranks {
		p.errf("dsl: op %s on invalid rank %d", op.Code, rank)
		return
	}
	if tb < 0 || tb >= p.NumTB {
		p.errf("dsl: op %s on invalid tb %d (rank %d)", op.Code, tb, rank)
		return
	}
	p.streams[rank][tb] = append(p.streams[rank][tb], op)
}

// TBGroup names a contiguous group of thread blocks cooperating on one
// operation (Figure 5's ThreadBlockGroup).
type TBGroup struct {
	First int
	Size  int
}

// group normalizes an optional TBGroup argument.
func group(tb int, g []TBGroup) []struct{ tb, rank, size int } {
	if len(g) == 0 || g[0].Size <= 1 {
		return []struct{ tb, rank, size int }{{tb, 0, 1}}
	}
	gg := g[0]
	out := make([]struct{ tb, rank, size int }, gg.Size)
	for i := 0; i < gg.Size; i++ {
		out[i] = struct{ tb, rank, size int }{gg.First + i, i, gg.Size}
	}
	return out
}

// Buffer is a named buffer on one rank in the global view.
type Buffer struct {
	p    *Program
	ref  plan.BufRef
	size int64
}

// Input returns rank's collective input buffer.
func (p *Program) Input(rank int) *Buffer {
	return &Buffer{p: p, ref: plan.BufRef{Kind: plan.BufInput, Rank: rank}, size: p.InSize}
}

// Output returns rank's collective output buffer.
func (p *Program) Output(rank int) *Buffer {
	return &Buffer{p: p, ref: plan.BufRef{Kind: plan.BufOutput, Rank: rank}, size: p.OutSize}
}

// ScratchBuffer declares a scratch buffer of size bytes on rank.
func (p *Program) ScratchBuffer(rank int, size int64) *Buffer {
	idx := 0
	for _, s := range p.scratch {
		if s.Rank == rank {
			idx++
		}
	}
	p.scratch = append(p.scratch, plan.Scratch{Rank: rank, Index: idx, Size: size})
	return &Buffer{p: p, ref: plan.BufRef{Kind: plan.BufScratch, Rank: rank, Index: idx}, size: size}
}

// Rank returns the buffer's owning rank.
func (b *Buffer) Rank() int { return b.ref.Rank }

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Chunk selects the byte range [off, off+size).
func (b *Buffer) Chunk(off, size int64) Chunk {
	if off < 0 || size < 0 || off+size > b.size {
		b.p.errf("dsl: chunk [%d,%d) out of buffer (size %d)", off, off+size, b.size)
	}
	return Chunk{b: b, off: off, size: size}
}

// Whole selects the entire buffer.
func (b *Buffer) Whole() Chunk { return Chunk{b: b, off: 0, size: b.size} }

// Chunk is a byte range of a buffer (specified, as in the paper, as slices
// of Buffer).
type Chunk struct {
	b    *Buffer
	off  int64
	size int64
}

// Rank returns the chunk's owning rank.
func (c Chunk) Rank() int { return c.b.ref.Rank }

// Size returns the chunk length.
func (c Chunk) Size() int64 { return c.size }

func (c Chunk) pc() plan.Chunk {
	return plan.Chunk{Buf: c.b.ref, Off: c.off, Size: c.size}
}

// Copy emits a local copy dst <- src on the chunks' rank (both chunks must
// be local to that rank).
func (c Chunk) Copy(src Chunk, tb int, g ...TBGroup) {
	p := c.b.p
	if c.Rank() != src.Rank() {
		p.errf("dsl: local copy across ranks %d and %d", c.Rank(), src.Rank())
		return
	}
	if c.size != src.size {
		p.errf("dsl: local copy size mismatch %d vs %d", c.size, src.size)
		return
	}
	for _, m := range group(tb, g) {
		p.emit(c.Rank(), m.tb, plan.Op{Code: plan.OpLocalCopy, Dst: c.pc(), Src: src.pc(),
			GroupRank: m.rank, GroupSize: m.size})
	}
}

// Reduce emits a local accumulate dst += src on the chunks' rank.
func (c Chunk) Reduce(src Chunk, tb int, g ...TBGroup) {
	p := c.b.p
	if c.Rank() != src.Rank() {
		p.errf("dsl: local reduce across ranks %d and %d", c.Rank(), src.Rank())
		return
	}
	if c.size != src.size {
		p.errf("dsl: local reduce size mismatch %d vs %d", c.size, src.size)
		return
	}
	for _, m := range group(tb, g) {
		p.emit(c.Rank(), m.tb, plan.Op{Code: plan.OpLocalReduce, Dst: c.pc(), Src: src.pc(),
			GroupRank: m.rank, GroupSize: m.size})
	}
}

// channelBase carries the shared directional-channel state.
type channelBase struct {
	p       *Program
	id      int
	srcRank int
	dstRank int
}

func (p *Program) addChannel(t plan.ChannelType, srcRank, dstRank int, srcBuf, dstBuf *Buffer) channelBase {
	if srcRank == dstRank || srcRank < 0 || dstRank < 0 || srcRank >= p.Ranks || dstRank >= p.Ranks {
		p.errf("dsl: channel ranks (%d,%d)", srcRank, dstRank)
	}
	if srcBuf.Rank() != srcRank || dstBuf.Rank() != dstRank {
		p.errf("dsl: channel buffers on ranks (%d,%d), want (%d,%d)",
			srcBuf.Rank(), dstBuf.Rank(), srcRank, dstRank)
	}
	id := len(p.channels)
	p.channels = append(p.channels, plan.Channel{
		ID: id, Type: t, SrcRank: srcRank, DstRank: dstRank,
		SrcBuf: srcBuf.ref, DstBuf: dstBuf.ref,
	})
	return channelBase{p: p, id: id, srcRank: srcRank, dstRank: dstRank}
}

func (cb channelBase) put(code plan.OpCode, dst, src Chunk, tb int, flag uint64, g []TBGroup) {
	p := cb.p
	if dst.Rank() != cb.dstRank || src.Rank() != cb.srcRank {
		p.errf("dsl: put chunks on ranks (%d->%d), channel is (%d->%d)",
			src.Rank(), dst.Rank(), cb.srcRank, cb.dstRank)
		return
	}
	if dst.size != src.size {
		p.errf("dsl: put size mismatch %d vs %d", dst.size, src.size)
		return
	}
	if flag > p.maxFlag {
		p.maxFlag = flag
	}
	for _, m := range group(tb, g) {
		p.emit(cb.srcRank, m.tb, plan.Op{Code: code, Channel: cb.id,
			Dst: dst.pc(), Src: src.pc(), Flag: flag,
			GroupRank: m.rank, GroupSize: m.size})
	}
}

// Signal emits an ordered semaphore increment from the source rank.
func (cb channelBase) Signal(tb int) {
	cb.p.emit(cb.srcRank, tb, plan.Op{Code: plan.OpSignal, Channel: cb.id})
}

// Wait emits a blocking semaphore wait on the destination rank.
func (cb channelBase) Wait(tb int) {
	cb.p.emit(cb.dstRank, tb, plan.Op{Code: plan.OpWait, Channel: cb.id})
}

// Flush emits a sender-side completion flush.
func (cb channelBase) Flush(tb int) {
	cb.p.emit(cb.srcRank, tb, plan.Op{Code: plan.OpFlush, Channel: cb.id})
}

// MemChannel is a directional memory-mapped channel in the global view.
type MemChannel struct{ channelBase }

// MemoryChannel declares a MemoryChannel whose puts stream srcBuf (on
// srcRank) into dstBuf (on dstRank).
func (p *Program) MemoryChannel(srcRank, dstRank int, srcBuf, dstBuf *Buffer) *MemChannel {
	return &MemChannel{p.addChannel(plan.ChanMemory, srcRank, dstRank, srcBuf, dstBuf)}
}

// Put emits an HB-protocol one-sided write.
func (ch *MemChannel) Put(dst, src Chunk, tb int, g ...TBGroup) {
	ch.put(plan.OpPut, dst, src, tb, 0, g)
}

// PutPackets emits an LL-protocol write tagged with flag.
func (ch *MemChannel) PutPackets(dst, src Chunk, tb int, flag uint64, g ...TBGroup) {
	if flag == 0 {
		ch.p.errf("dsl: put_packets flag must be nonzero")
	}
	ch.put(plan.OpPutPackets, dst, src, tb, flag, g)
}

// AwaitPackets emits the receiver-side LL wait for target cumulative bytes
// tagged with flag; runs on the destination rank.
func (ch *MemChannel) AwaitPackets(tb int, flag uint64, target int64) {
	ch.p.emit(ch.dstRank, tb, plan.Op{Code: plan.OpAwaitPackets, Channel: ch.id,
		Flag: flag, Target: uint64(target)})
}

// Reduce emits a read-reduce executed on the SOURCE rank: dst (local to
// srcRank) accumulates the remote chunk src (on dstRank).
func (ch *MemChannel) Reduce(dst, src Chunk, tb int, g ...TBGroup) {
	p := ch.p
	if dst.Rank() != ch.srcRank || src.Rank() != ch.dstRank {
		p.errf("dsl: chan reduce chunks on ranks (%d,%d), channel is (%d->%d)",
			dst.Rank(), src.Rank(), ch.srcRank, ch.dstRank)
		return
	}
	for _, m := range group(tb, g) {
		p.emit(ch.srcRank, m.tb, plan.Op{Code: plan.OpChanReduce, Channel: ch.id,
			Dst: dst.pc(), Src: src.pc(), GroupRank: m.rank, GroupSize: m.size})
	}
}

// PortChannel is a directional port-mapped channel in the global view.
type PortChannel struct{ channelBase }

// PortChannelOf declares a PortChannel whose puts DMA srcBuf (on srcRank)
// into dstBuf (on dstRank).
func (p *Program) PortChannel(srcRank, dstRank int, srcBuf, dstBuf *Buffer) *PortChannel {
	return &PortChannel{p.addChannel(plan.ChanPort, srcRank, dstRank, srcBuf, dstBuf)}
}

// Put emits an asynchronous DMA/RDMA put request.
func (ch *PortChannel) Put(dst, src Chunk, tb int, g ...TBGroup) {
	ch.put(plan.OpPut, dst, src, tb, 0, g)
}

// SwitchChannel is a multimem channel over a rank group in the global view.
type SwitchChannel struct {
	p     *Program
	id    int
	ranks []int
}

// SwitchChannelOver declares a switch channel spanning ranks over bufs
// (bufs[i] on ranks[i]).
func (p *Program) SwitchChannelOver(ranks []int, bufs []*Buffer) *SwitchChannel {
	if len(ranks) != len(bufs) || len(ranks) < 2 {
		p.errf("dsl: switch channel over %d ranks / %d buffers", len(ranks), len(bufs))
	}
	refs := make([]plan.BufRef, len(bufs))
	for i, b := range bufs {
		if i < len(ranks) && b.Rank() != ranks[i] {
			p.errf("dsl: switch buffer %d on rank %d, want %d", i, b.Rank(), ranks[i])
		}
		refs[i] = b.ref
	}
	id := len(p.channels)
	p.channels = append(p.channels, plan.Channel{
		ID: id, Type: plan.ChanSwitch, Ranks: append([]int(nil), ranks...), Bufs: refs,
	})
	return &SwitchChannel{p: p, id: id, ranks: ranks}
}

// Reduce emits a multimem ld_reduce on rank: dst (local chunk) receives the
// switch-aggregated sums of the group's buffers over [srcOff, srcOff+size).
func (ch *SwitchChannel) Reduce(rank int, dst Chunk, srcOff, size int64, tb int, g ...TBGroup) {
	for _, m := range group(tb, g) {
		ch.p.emit(rank, m.tb, plan.Op{Code: plan.OpSwitchReduce, Channel: ch.id,
			Dst: dst.pc(), Src: plan.Chunk{Off: srcOff, Size: size},
			GroupRank: m.rank, GroupSize: m.size})
	}
}

// Broadcast emits a multimem st on rank: src (local chunk) is multicast to
// every group member at dstOff.
func (ch *SwitchChannel) Broadcast(rank int, dstOff int64, src Chunk, tb int, g ...TBGroup) {
	for _, m := range group(tb, g) {
		ch.p.emit(rank, m.tb, plan.Op{Code: plan.OpSwitchBcast, Channel: ch.id,
			Src: src.pc(), Dst: plan.Chunk{Off: dstOff, Size: src.size},
			GroupRank: m.rank, GroupSize: m.size})
	}
}

// DeviceSync emits a device-wide (grid) barrier on rank: every thread block
// of the rank arrives before any proceeds.
func (p *Program) DeviceSync(rank int) {
	for tb := 0; tb < p.NumTB; tb++ {
		p.emit(rank, tb, plan.Op{Code: plan.OpGridBarrier})
	}
}

// DeviceSyncAll emits a device-wide barrier on every rank.
func (p *Program) DeviceSyncAll() {
	for r := 0; r < p.Ranks; r++ {
		p.DeviceSync(r)
	}
}
