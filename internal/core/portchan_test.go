package core

import (
	"testing"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// TestPortChannelFigure4Workflow exercises the full Figure 4 path: GPU
// pushes put+signal, the CPU proxy initiates the transfer, and the receiving
// GPU's wait completes only after the data has landed.
func TestPortChannelFigure4Workflow(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		m := machine.New(topology.H100(nodes))
		m.MaterializeLimit = 1 << 40
		c := NewCommunicator(m)
		dstRank := 1
		if nodes == 2 {
			dstRank = 8 // cross-node: RDMA path
		}
		const size = 65536
		src := m.Alloc(0, "src", size)
		dst := m.Alloc(dstRank, "dst", size)
		src.FillPattern(func(i int64) float32 { return float32(i) - 7 })
		ch0, ch1 := c.NewPortChannelPair(0, dstRank, src, dst)
		var putReturn, waitDone sim.Time
		m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
			ch0.Put(k, 0, 0, size, 0, 1)
			putReturn = k.Now()
			ch0.Signal(k)
			ch0.Flush(k)
		})
		m.GPUs[dstRank].Launch("recv", 1, func(k *machine.Kernel) {
			ch1.Wait(k)
			waitDone = k.Now()
			if dst.Float32(0) != -7 {
				t.Errorf("nodes=%d: data not visible after wait", nodes)
			}
		})
		if err := m.Run(); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if err := dst.EqualFloat32(func(i int64) float32 { return float32(i) - 7 }, 0); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		// Key asynchrony property: Put returns long before the data lands.
		if putReturn >= waitDone {
			t.Fatalf("nodes=%d: put returned at %d, after wait completed at %d",
				nodes, putReturn, waitDone)
		}
	}
}

// TestPortChannelPutIsAsync: the GPU must be free to compute while the proxy
// drives the transfer (paper: "peer-GPUs are free to execute code").
func TestPortChannelPutIsAsync(t *testing.T) {
	m := machine.New(topology.H100(1))
	c := NewCommunicator(m)
	const size = 32 << 20 // 32 MB: DMA takes ~80us
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	ch0, _ := c.NewPortChannelPair(0, 1, src, dst)
	var putCost sim.Duration
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		t0 := k.Now()
		ch0.Put(k, 0, 0, size, 0, 1)
		putCost = k.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	dmaTime := sim.Duration(float64(size) / m.Env.DMABW)
	if putCost > dmaTime/10 {
		t.Fatalf("put blocked the GPU for %dns (~transfer time %dns); must be async", putCost, dmaTime)
	}
}

// TestPortChannelFlushBlocksUntilComplete: flush returns only after all
// preceding transfers finish, making the source buffer reusable.
func TestPortChannelFlushBlocksUntilComplete(t *testing.T) {
	m := machine.New(topology.H100(1))
	c := NewCommunicator(m)
	const size = 32 << 20
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	ch0, _ := c.NewPortChannelPair(0, 1, src, dst)
	var flushDone sim.Time
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, size, 0, 1)
		ch0.Flush(k)
		flushDone = k.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	dmaTime := sim.Duration(float64(size) / m.Env.DMABW)
	if flushDone < dmaTime {
		t.Fatalf("flush returned at %d, before transfer could complete (%d)", flushDone, dmaTime)
	}
}

// TestPortChannelOrdering: two puts followed by a signal; the signal must
// arrive after both transfers' data.
func TestPortChannelOrdering(t *testing.T) {
	m := machine.New(topology.H100(2))
	m.MaterializeLimit = 1 << 40
	c := NewCommunicator(m)
	const half = 1 << 20
	src := m.Alloc(0, "src", 2*half)
	dst := m.Alloc(8, "dst", 2*half)
	src.FillFloat32(5)
	ch0, ch1 := c.NewPortChannelPair(0, 8, src, dst)
	ok := true
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, half, 0, 1)
		ch0.Put(k, half, half, half, 0, 1)
		ch0.Signal(k)
	})
	m.GPUs[8].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
		if dst.Float32(0) != 5 || dst.Float32(2*half-4) != 5 {
			ok = false
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("signal overtook put data")
	}
}

func TestPortChannelPutWithSignalAndFlush(t *testing.T) {
	m := machine.New(topology.H100(2))
	m.MaterializeLimit = 1 << 40
	c := NewCommunicator(m)
	const size = 8192
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(8, "dst", size)
	src.FillPattern(func(i int64) float32 { return float32(i * i % 31) })
	ch0, ch1 := c.NewPortChannelPair(0, 8, src, dst)
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.PutWithSignalAndFlush(k, 0, 0, size, 0, 1)
		ch0.WaitFlush(k)
	})
	m.GPUs[8].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(i * i % 31) }, 0); err != nil {
		t.Fatal(err)
	}
}

// TestPortChannelProxyAddsLatency: the PortChannel path must cost more than
// raw wire latency for tiny messages (Table 1: 4.89us vs 3.76us on IB), and
// the overhead must come from FIFO push + poll + handling.
func TestPortChannelProxyAddsLatency(t *testing.T) {
	m := machine.New(topology.H100(2))
	c := NewCommunicator(m)
	const size = 4
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(8, "dst", size)
	ch0, ch1 := c.NewPortChannelPair(0, 8, src, dst)
	var done sim.Time
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.PutWithSignal(k, 0, 0, size, 0, 1)
	})
	m.GPUs[8].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
		done = k.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lat := done - m.Model.KernelLaunch
	if lat <= m.Env.IBLat {
		t.Fatalf("port latency %d <= raw IB latency %d: proxy overhead missing", lat, m.Env.IBLat)
	}
	budget := m.Env.IBLat + m.Model.FifoPushCost + m.Model.ProxyPollInterval +
		m.Model.ProxyHandleCost + m.Model.SemSignalCost + m.Model.SemWaitWake +
		m.Model.InstrOverhead + 3000
	if lat > budget {
		t.Fatalf("port latency %d exceeds budget %d: overhead model broken", lat, budget)
	}
}

// TestPortChannelManyRequestsFIFO: saturating the FIFO must not deadlock or
// reorder transfers.
func TestPortChannelManyRequestsFIFO(t *testing.T) {
	m := machine.New(topology.H100(1))
	m.MaterializeLimit = 1 << 40
	c := NewCommunicator(m)
	const n = 300 // exceeds FIFO capacity of 128
	const chunk = 256
	src := m.Alloc(0, "src", n*chunk)
	dst := m.Alloc(1, "dst", n*chunk)
	src.FillPattern(func(i int64) float32 { return float32(i) })
	ch0, ch1 := c.NewPortChannelPair(0, 1, src, dst)
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		for i := int64(0); i < n; i++ {
			ch0.Put(k, i*chunk, i*chunk, chunk, 0, 1)
		}
		ch0.Signal(k)
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(i) }, 0); err != nil {
		t.Fatal(err)
	}
}

// DMA throughput through a PortChannel must approach the DMA engine rate for
// large transfers (Table 1: MSCCL++ reaches best-achievable NVLink BW).
func TestPortChannelDMAThroughput(t *testing.T) {
	m := machine.New(topology.H100(1))
	c := NewCommunicator(m)
	const size = 256 << 20
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	ch0, _ := c.NewPortChannelPair(0, 1, src, dst)
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, size, 0, 1)
		ch0.Flush(k)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(size) / float64(m.Now())
	if bw < 0.95*m.Env.DMABW {
		t.Fatalf("PortChannel BW %.1f GB/s, want >= 95%% of DMA %.1f GB/s", bw, m.Env.DMABW)
	}
}

// TestSwitchChannelAllReducePattern runs the canonical SwitchChannel use:
// every rank switch-reduces its 1/N slice into a result buffer, then
// multicast-broadcasts the slice to all peers — an in-network AllReduce.
func TestSwitchChannelAllReducePattern(t *testing.T) {
	m := machine.New(topology.H100(1))
	m.MaterializeLimit = 1 << 40
	c := NewCommunicator(m)
	const ranks = 8
	const size = 8192 // per-rank input, divisible by ranks*4
	const slice = size / ranks

	inputs := make([]*mem.Buffer, ranks)
	outputs := make([]*mem.Buffer, ranks)
	rankIDs := make([]int, ranks)
	for r := 0; r < ranks; r++ {
		rankIDs[r] = r
		inputs[r] = m.Alloc(r, "in", size)
		outputs[r] = m.Alloc(r, "out", size)
		rr := r
		inputs[r].FillPattern(func(i int64) float32 { return float32(rr+1) * float32(i+1) })
	}
	// Two multimem groups: one over inputs (reduce source), one over outputs
	// (broadcast destination).
	inChans := c.NewSwitchChannels(rankIDs, inputs)
	outChans := c.NewSwitchChannels(rankIDs, outputs)

	for r := 0; r < ranks; r++ {
		r := r
		tmp := m.Alloc(r, "tmp", slice)
		m.GPUs[r].Launch("nvls-ar", 1, func(k *machine.Kernel) {
			off := int64(r) * slice
			// Switch-reduce my slice across all ranks into tmp... the
			// primitive writes into the channel's local buffer, so reduce
			// into my own output region first.
			inChans[r].Reduce(k, 0, off, slice, 0, 1)
			// inChans[r].Reduce wrote into inputs[r][0:slice]; copy to tmp.
			_ = tmp
			// Broadcast the reduced slice to everyone's output at off.
			// Our local copy of the reduced slice lives at inputs[r][0:].
			k.LocalCopy(slice, 1)
			outputs[r].Bytes() // ensure materialized
			// move reduced data into outputs[r][off:] for broadcast source
			inputs[r].CopyTo(outputs[r], off, 0, slice)
			outChans[r].Broadcast(k, off, off, slice, 0, 1)
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Expected AllReduce result: sum over r of (r+1)*(i+1) = 36*(i+1).
	for r := 0; r < ranks; r++ {
		if err := outputs[r].EqualFloat32(func(i int64) float32 {
			return 36 * float32(i+1)
		}, 1e-4); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// SwitchChannel reduce must be faster than gathering and reducing the same
// data via MemoryChannel (paper: up to 56% higher bandwidth).
func TestSwitchReduceFasterThanMemoryGather(t *testing.T) {
	const size = 4 << 20
	// Switch path: one rank reduces a full buffer across 8 ranks.
	mSwitch := machine.New(topology.H100(1))
	cSwitch := NewCommunicator(mSwitch)
	var bufs []*mem.Buffer
	var ids []int
	for r := 0; r < 8; r++ {
		bufs = append(bufs, mSwitch.Alloc(r, "b", size))
		ids = append(ids, r)
	}
	chans := cSwitch.NewSwitchChannels(ids, bufs)
	const nTB = 16
	mSwitch.GPUs[0].Launch("sw", nTB, func(k *machine.Kernel) {
		chans[0].Reduce(k, 0, 0, size, k.Block, k.NumBlocks)
	})
	if err := mSwitch.Run(); err != nil {
		t.Fatal(err)
	}
	switchT := mSwitch.Now()

	// Memory path: rank 0 read-reduces from 7 peers sequentially.
	mMem := machine.New(topology.H100(1))
	cMem := NewCommunicator(mMem)
	local := mMem.Alloc(0, "local", size)
	var memChans []*MemoryChannel
	for r := 1; r < 8; r++ {
		peer := mMem.Alloc(r, "peer", size)
		ch0, _ := cMem.NewMemoryChannelPair(0, r, local, peer)
		memChans = append(memChans, ch0)
	}
	mMem.GPUs[0].Launch("mem", nTB, func(k *machine.Kernel) {
		for _, ch := range memChans {
			ch.Reduce(k, 0, 0, size, k.Block, k.NumBlocks)
		}
	})
	if err := mMem.Run(); err != nil {
		t.Fatal(err)
	}
	memT := mMem.Now()
	if switchT >= memT {
		t.Fatalf("switch reduce (%d) not faster than memory gather-reduce (%d)", switchT, memT)
	}
}

func TestSwitchChannelValidation(t *testing.T) {
	// Unsupported platform panics.
	a100 := machine.New(topology.A100_40G(1))
	cA := NewCommunicator(a100)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on A100 switch channel")
			}
		}()
		cA.NewSwitchChannels([]int{0, 1}, []*mem.Buffer{
			a100.Alloc(0, "a", 64), a100.Alloc(1, "b", 64)})
	}()
	// Cross-node membership panics.
	h := machine.New(topology.H100(2))
	cH := NewCommunicator(h)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on cross-node switch channel")
			}
		}()
		cH.NewSwitchChannels([]int{0, 8}, []*mem.Buffer{
			h.Alloc(0, "a", 64), h.Alloc(8, "b", 64)})
	}()
}
