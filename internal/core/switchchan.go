package core

import (
	"fmt"
	"strconv"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// SwitchChannel is one endpoint of a switch-mapped I/O channel: the GPU
// issues multimem load-reduce and multicast-store instructions that the
// interconnect switch executes in-network (paper §4.3, NVLink SHARP).
//
// Reduce takes a local destination and a multimem source; the switch fetches
// the source element from every member GPU, reduces on the switch, and
// returns the result. Broadcast takes a local source and a multimem
// destination; the switch stores the value to every member.
type SwitchChannel struct {
	comm  *Communicator
	rank  int
	local *mem.Buffer
	group *mem.Multimem
	ranks []int
}

// NewSwitchChannels builds one SwitchChannel per participating rank over a
// multimem group spanning bufs (bufs[i] lives on ranks[i]).
func (c *Communicator) NewSwitchChannels(ranks []int, bufs []*mem.Buffer) []*SwitchChannel {
	if !c.M.Fabric.HasSwitch() {
		panic("core: switch-mapped I/O unsupported on " + c.M.Env.Name)
	}
	if len(ranks) < 2 || len(ranks) != len(bufs) {
		panic(fmt.Sprintf("core: switch channel over %d ranks / %d buffers", len(ranks), len(bufs)))
	}
	node := c.M.GPUs[ranks[0]].Node
	for i, r := range ranks {
		if bufs[i].Rank != r {
			panic(fmt.Sprintf("core: switch buffer %d on rank %d, want %d", i, bufs[i].Rank, r))
		}
		if c.M.GPUs[r].Node != node {
			panic("core: switch channel members must share a node (single NVSwitch)")
		}
	}
	mm, err := mem.NewMultimem("sc"+strconv.Itoa(c.id()), bufs)
	if err != nil {
		panic(err)
	}
	chans := make([]*SwitchChannel, len(ranks))
	for i, r := range ranks {
		chans[i] = &SwitchChannel{comm: c, rank: r, local: bufs[i], group: mm, ranks: ranks}
	}
	return chans
}

// Rank returns the owning rank.
func (ch *SwitchChannel) Rank() int { return ch.rank }

// Members returns the participating ranks.
func (ch *SwitchChannel) Members() []int { return ch.ranks }

func (ch *SwitchChannel) checkKernel(k *machine.Kernel) {
	if k.GPU.Rank != ch.rank {
		panic(fmt.Sprintf("core: SwitchChannel of rank %d used from rank %d",
			ch.rank, k.GPU.Rank))
	}
}

// Reduce executes multimem.ld_reduce over [srcOff, srcOff+size) of the
// multimem group, writing the switch-aggregated sums into the local buffer
// at dstOff. Thread block tb of nTB handles its shard. Synchronous: the
// block has the reduced values when Reduce returns. The caller must ensure
// all members' data is ready (e.g. via a preceding barrier).
func (ch *SwitchChannel) Reduce(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().SwitchReduce(k.Now(), ch.rank, n, model.ThreadCopyBWPerTB)
	dst, grp := ch.local, ch.group
	awaitAndApply(k, complete, func() {
		grp.ReduceInto(dst, dstOff+off, srcOff+off, n)
	})
}

// ReduceInto is Reduce with an explicit local destination buffer: dst (any
// buffer on this rank) receives the switch-aggregated sums of the multimem
// group over [srcOff, srcOff+size).
func (ch *SwitchChannel) ReduceInto(k *machine.Kernel, dst *mem.Buffer, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	if dst.Rank != ch.rank {
		panic("core: ReduceInto destination not on channel rank")
	}
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().SwitchReduce(k.Now(), ch.rank, n, model.ThreadCopyBWPerTB)
	grp := ch.group
	awaitAndApply(k, complete, func() {
		grp.ReduceInto(dst, dstOff+off, srcOff+off, n)
	})
}

// BroadcastFrom is Broadcast with an explicit local source buffer: src (any
// buffer on this rank) is multicast-stored to every member at dstOff.
func (ch *SwitchChannel) BroadcastFrom(k *machine.Kernel, src *mem.Buffer, srcOff, dstOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	if src.Rank != ch.rank {
		panic("core: BroadcastFrom source not on channel rank")
	}
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().SwitchBroadcast(k.Now(), ch.rank, n, model.ThreadCopyBWPerTB)
	grp := ch.group
	k.Machine().Engine.At(complete, func() {
		grp.BroadcastFrom(src, dstOff+off, srcOff+off, n)
	})
	awaitAndApply(k, complete-k.Machine().Env.SwitchLat, nil)
}

// FusedReduceBroadcast executes the fused ld_reduce + multimem.st loop of a
// switch-based AllReduce: for each element, the switch-aggregated sum over
// in's multimem group at srcOff is multicast-stored to every member of out's
// group at dstOff, in a single streaming pass with no intermediate buffer
// (the paper's "15 lines of Python" NVLS kernel). in and out must be
// SwitchChannels of the same rank over equally-sized groups.
func FusedReduceBroadcast(k *machine.Kernel, in, out *SwitchChannel, dstOff, srcOff, size int64, tb, nTB int) {
	in.checkKernel(k)
	out.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().SwitchReduceBroadcast(k.Now(), in.rank, n, model.ThreadCopyBWPerTB)
	src, dst := in.group, out.group
	awaitAndApply(k, complete, func() {
		mem.ReduceBroadcast(src, dst, dstOff+off, srcOff+off, n)
	})
}

// Broadcast executes multimem.st: it reads the local buffer at srcOff and
// multicast-stores size bytes to every member's buffer at dstOff.
func (ch *SwitchChannel) Broadcast(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().SwitchBroadcast(k.Now(), ch.rank, n, model.ThreadCopyBWPerTB)
	src, grp := ch.local, ch.group
	k.Machine().Engine.At(complete, func() {
		grp.BroadcastFrom(src, dstOff+off, srcOff+off, n)
	})
	awaitAndApply(k, complete-k.Machine().Env.SwitchLat, nil)
}
