// Package core implements the MSCCL++ Primitive API (paper Section 4): the
// minimal, performance-preserving hardware abstractions for GPU
// communication.
//
// The package provides the three channel types of the paper —
//
//   - PortChannel for port-mapped I/O (DMA engines / RDMA NICs driven by a
//     CPU proxy thread through a FIFO request queue),
//   - MemoryChannel for memory-mapped I/O (peer-to-peer thread copy, with LL
//     and HB protocols),
//   - SwitchChannel for switch-mapped I/O (in-network reduction and
//     multicast over multimem addresses),
//
// plus the bootstrap-side Communicator used to establish channels. All data
// transfer primitives are zero-copy (no staging buffers), one-sided
// (initiated by one peer) and asynchronous (explicit signal/wait/flush
// synchronization).
package core

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
)

// Communicator is the host-side bootstrap object: it owns channel
// construction between ranks of one machine, mirroring MSCCL++'s
// bootstrapping API (connection setup, memory registration, semaphore
// allocation).
type Communicator struct {
	M *machine.Machine

	nextChan int
}

// NewCommunicator returns a communicator over all ranks of m.
func NewCommunicator(m *machine.Machine) *Communicator {
	return &Communicator{M: m}
}

// Ranks returns the number of ranks in the communicator.
func (c *Communicator) Ranks() int { return len(c.M.GPUs) }

func (c *Communicator) id() int {
	c.nextChan++
	return c.nextChan
}

// Channel is the synchronization-and-transfer interface shared by
// PortChannel and MemoryChannel endpoints, letting collective algorithms be
// written generically over the transport (paper Section 6: 2PR runs over
// either PortChannel or MemoryChannel).
type Channel interface {
	// Put transfers size bytes from the bound local buffer at srcOff to the
	// bound remote buffer at dstOff. When invoked by a thread-block group,
	// each block tb of nTB moves its shard. Asynchronous: completion is
	// observed via Signal/Wait (receiver) and Flush (sender).
	Put(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int)
	// PutWithSignal fuses Put and Signal into one primitive call.
	PutWithSignal(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int)
	// Signal asynchronously increments the peer's semaphore, ordered after
	// all previous transfers on this channel.
	Signal(k *machine.Kernel)
	// Wait blocks until the local semaphore reaches the next expected value.
	Wait(k *machine.Kernel)
	// Flush blocks until all previous transfers on this channel are complete
	// from the sender's perspective (the source buffer may be reused).
	Flush(k *machine.Kernel)
	// LocalRank and RemoteRank identify the endpoint.
	LocalRank() int
	RemoteRank() int
}

// shardRange splits size bytes into nTB 4-byte-aligned shards and returns
// the half-open byte range assigned to block tb.
func shardRange(size int64, tb, nTB int) (off, n int64) {
	if nTB <= 1 {
		return 0, size
	}
	el := size / 4
	base := el / int64(nTB)
	rem := el % int64(nTB)
	startEl := base*int64(tb) + min64(int64(tb), rem)
	count := base
	if int64(tb) < rem {
		count++
	}
	off = startEl * 4
	n = count * 4
	if tb == nTB-1 {
		// Absorb any non-4-byte tail.
		n += size % 4
	}
	return off, n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// awaitAndApply schedules apply at time t and blocks the kernel until then.
// apply runs before the kernel resumes (FIFO event ordering at equal
// timestamps), so data written by apply is visible to subsequent kernel code.
func awaitAndApply(k *machine.Kernel, t sim.Time, apply func()) {
	if apply != nil {
		k.Machine().Engine.At(t, apply)
	}
	k.P.SleepUntil(t)
}

// validateEndpoint panics on malformed channel construction.
func validateEndpoint(m *machine.Machine, a, b int, abuf, bbuf *mem.Buffer) {
	n := len(m.GPUs)
	if a < 0 || a >= n || b < 0 || b >= n || a == b {
		panic(fmt.Sprintf("core: invalid channel ranks (%d,%d) of %d", a, b, n))
	}
	if abuf == nil || bbuf == nil {
		panic("core: channel requires registered buffers on both ranks")
	}
	if abuf.Rank != a || bbuf.Rank != b {
		panic(fmt.Sprintf("core: buffer ranks (%d,%d) do not match channel ranks (%d,%d)",
			abuf.Rank, bbuf.Rank, a, b))
	}
}
