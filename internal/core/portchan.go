package core

import (
	"fmt"
	"strconv"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/proxy"
	"mscclpp/internal/sim"
)

// PortChannel is one endpoint of a port-mapped I/O channel: the GPU enqueues
// requests into a FIFO drained by a dedicated CPU proxy thread, which drives
// a DMA engine (intra-node) or an RDMA NIC (inter-node). See paper §4.1 and
// Figure 4.
//
// Put is zero-copy, one-sided and asynchronous: the GPU is free immediately
// after pushing the request, and peer GPUs execute code while the transfer
// is in flight.
type PortChannel struct {
	comm      *Communicator
	local     int
	remote    int
	localBuf  *mem.Buffer
	remoteBuf *mem.Buffer

	svc *proxy.Service

	sendSem  *sim.Semaphore // on the remote GPU
	recvSem  *sim.Semaphore // local
	expected uint64

	flushSem   *sim.Semaphore // local; proxy bumps per completed flush
	flushCount uint64

	// proxy-side ordering state
	lastComplete sim.Time // arrival time of the latest transfer's data
	lastSignal   sim.Time
}

// NewPortChannelPair connects ranks a and b with port-mapped channels; each
// endpoint gets its own CPU proxy thread (paper: "each channel creates its
// own CPU thread").
func (c *Communicator) NewPortChannelPair(a, b int, abuf, bbuf *mem.Buffer) (*PortChannel, *PortChannel) {
	return c.NewPortChannelPairEx(a, b, abuf, bbuf, bbuf, abuf)
}

// NewPortChannelPairEx connects ranks a and b with independent per-direction
// buffer bindings (a puts aSrc->aDst, b puts bSrc->bDst), analogous to
// NewMemoryChannelPairEx.
func (c *Communicator) NewPortChannelPairEx(a, b int, aSrc, aDst, bSrc, bDst *mem.Buffer) (*PortChannel, *PortChannel) {
	validateEndpoint(c.M, a, b, aSrc, bSrc)
	validateEndpoint(c.M, a, b, bDst, aDst)
	e := c.M.Engine
	id, as, bs := strconv.Itoa(c.id()), strconv.Itoa(a), strconv.Itoa(b)
	semAB := sim.NewSemaphore(e, "pc"+id+"/"+as+"->"+bs)
	semBA := sim.NewSemaphore(e, "pc"+id+"/"+bs+"->"+as)
	ca := &PortChannel{comm: c, local: a, remote: b, localBuf: aSrc, remoteBuf: aDst,
		sendSem: semAB, recvSem: semBA,
		flushSem: sim.NewSemaphore(e, "pc"+id+"/flush@"+as)}
	cb := &PortChannel{comm: c, local: b, remote: a, localBuf: bSrc, remoteBuf: bDst,
		sendSem: semBA, recvSem: semAB,
		flushSem: sim.NewSemaphore(e, "pc"+id+"/flush@"+bs)}
	ca.svc = c.newProxy("pc"+id+"@"+as, ca)
	cb.svc = c.newProxy("pc"+id+"@"+bs, cb)
	return ca, cb
}

func (c *Communicator) newProxy(name string, ch *PortChannel) *proxy.Service {
	model := c.M.Model
	cfg := proxy.Config{
		Capacity:   128,
		PushCost:   model.FifoPushCost,
		PollDelay:  model.ProxyPollInterval / 2,
		HandleCost: model.ProxyHandleCost,
	}
	return proxy.NewService(c.M.Engine, name, cfg, ch.handle)
}

// LocalRank returns the owning rank.
func (ch *PortChannel) LocalRank() int { return ch.local }

// RemoteRank returns the peer rank.
func (ch *PortChannel) RemoteRank() int { return ch.remote }

// LocalBuffer returns the bound local buffer.
func (ch *PortChannel) LocalBuffer() *mem.Buffer { return ch.localBuf }

// RemoteBuffer returns the bound remote buffer.
func (ch *PortChannel) RemoteBuffer() *mem.Buffer { return ch.remoteBuf }

func (ch *PortChannel) checkKernel(k *machine.Kernel) {
	if k.GPU.Rank != ch.local {
		panic(fmt.Sprintf("core: PortChannel of rank %d used from rank %d",
			ch.local, k.GPU.Rank))
	}
}

// handle processes one proxy request in proxy context at virtual time now
// (paper Figure 4 steps 3-7). It returns the time at which the proxy may
// pick up the next request.
func (ch *PortChannel) handle(now sim.Time, req proxy.Request) sim.Time {
	e := ch.comm.M.Engine
	f := ch.comm.M.Fabric
	switch req.Kind {
	case proxy.KindPut, proxy.KindPutSignal, proxy.KindPutSignalFlush:
		var complete sim.Time
		if f.SameNode(ch.local, ch.remote) {
			complete = f.DMA(now, ch.local, ch.remote, req.Size)
		} else {
			complete = f.RDMA(now, ch.local, ch.remote, req.Size)
		}
		// In-order delivery per channel (same DMA engine / same QP).
		complete = maxTime(complete, ch.lastComplete)
		ch.lastComplete = complete
		dst, src := ch.remoteBuf, ch.localBuf
		dstOff, srcOff, n := req.DstOff, req.SrcOff, req.Size
		e.At(complete, func() { src.CopyTo(dst, dstOff, srcOff, n) })
		if req.Kind == proxy.KindPutSignal || req.Kind == proxy.KindPutSignalFlush {
			ch.issueSignal(now, complete)
		}
		if req.Kind == proxy.KindPutSignalFlush {
			return ch.completeFlush(now, complete)
		}
	case proxy.KindSignal:
		ch.issueSignal(now, ch.lastComplete)
	case proxy.KindFlush:
		return ch.completeFlush(now, ch.lastComplete)
	default:
		panic("core: unknown proxy request kind " + req.Kind.String())
	}
	return now
}

// issueSignal delivers an ordered atomic increment to the peer semaphore: it
// arrives no earlier than the data of preceding transfers (same-QP ordering
// for RDMA; fenced DMA for NVLink).
func (ch *PortChannel) issueSignal(now, lastData sim.Time) {
	f := ch.comm.M.Fabric
	model := ch.comm.M.Model
	arrive := maxTime(now+f.SignalLatency(ch.local, ch.remote), lastData+model.SemSignalCost)
	arrive = maxTime(arrive, ch.lastSignal+1)
	ch.lastSignal = arrive
	ch.sendSem.AddAt(arrive, 1)
}

// completeFlush stalls the proxy until all prior transfers complete
// (ibv_poll_cq loop), then releases the GPU-side flush waiter. The returned
// stall time delays subsequent requests, exactly as the paper describes.
func (ch *PortChannel) completeFlush(now, lastData sim.Time) sim.Time {
	model := ch.comm.M.Model
	done := maxTime(now, lastData) + model.FlushCheckCost
	ch.flushSem.AddAt(done, 1)
	return done
}

// Put pushes a put request for this block's shard. Asynchronous: returns as
// soon as the request is enqueued.
func (ch *PortChannel) Put(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.enqueue(k, proxy.KindPut, dstOff, srcOff, size, tb, nTB)
}

// PutWithSignal pushes the fused put+signal request.
func (ch *PortChannel) PutWithSignal(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.enqueue(k, proxy.KindPutSignal, dstOff, srcOff, size, tb, nTB)
}

// PutWithSignalAndFlush pushes the fused put+signal+flush request; pair with
// WaitFlush to block until completion.
func (ch *PortChannel) PutWithSignalAndFlush(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.flushCount++
	ch.enqueue(k, proxy.KindPutSignalFlush, dstOff, srcOff, size, tb, nTB)
}

func (ch *PortChannel) enqueue(k *machine.Kernel, kind proxy.Kind, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	k.Elapse(k.Model().InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 && (kind == proxy.KindPut) {
		return
	}
	ch.svc.Push(k.P, proxy.Request{Kind: kind, DstOff: dstOff + off, SrcOff: srcOff + off, Size: n})
}

// Signal pushes a signal request (asynchronous, ordered after prior puts).
func (ch *PortChannel) Signal(k *machine.Kernel) {
	ch.checkKernel(k)
	k.Elapse(k.Model().InstrOverhead)
	ch.svc.Push(k.P, proxy.Request{Kind: proxy.KindSignal})
}

// Wait blocks until the local semaphore reaches the next expected value.
func (ch *PortChannel) Wait(k *machine.Kernel) {
	ch.checkKernel(k)
	ch.expected++
	ch.recvSem.WaitGE(k.P, ch.expected)
	k.Elapse(k.Model().SemWaitWake)
}

// Flush pushes a flush request and blocks until the proxy confirms all prior
// transfers have completed, after which the source buffer may be rewritten.
func (ch *PortChannel) Flush(k *machine.Kernel) {
	ch.checkKernel(k)
	k.Elapse(k.Model().InstrOverhead)
	ch.flushCount++
	ch.svc.Push(k.P, proxy.Request{Kind: proxy.KindFlush})
	ch.WaitFlush(k)
}

// WaitFlush blocks until all flushes requested so far have completed.
func (ch *PortChannel) WaitFlush(k *machine.Kernel) {
	ch.checkKernel(k)
	ch.flushSem.WaitGE(k.P, ch.flushCount)
	k.Elapse(k.Model().SemWaitWake)
}

var _ Channel = (*PortChannel)(nil)
