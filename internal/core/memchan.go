package core

import (
	"fmt"
	"strconv"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
)

// Protocol selects the MemoryChannel data-transfer protocol (paper §4.2).
type Protocol int

const (
	// ProtoHB is the high-bandwidth protocol: bulk 16-byte vectorized copies
	// synchronized once per chunk with signal/wait semaphores.
	ProtoHB Protocol = iota
	// ProtoLL is the low-latency protocol: data interleaved with flag words
	// so the receiver can consume it without a semaphore round-trip, at the
	// cost of doubled wire traffic.
	ProtoLL
)

func (p Protocol) String() string {
	if p == ProtoLL {
		return "LL"
	}
	return "HB"
}

// llState tracks LL-protocol packet arrival for one channel direction:
// cumulative bytes whose flags have become visible, per flag value. Most
// algorithm steps use a single live flag, so the first flag is cached
// inline; the rare additional flags live in a small linear-scanned slice
// (flag populations are tiny — one per algorithm step).
type llState struct {
	e     *sim.Engine
	name  string
	flag0 uint64
	sem0  *sim.Semaphore
	flags []uint64
	sems  []*sim.Semaphore
}

func (s *llState) sem(flag uint64) *sim.Semaphore {
	if s.sem0 != nil && s.flag0 == flag {
		return s.sem0
	}
	for i, f := range s.flags {
		if f == flag {
			return s.sems[i]
		}
	}
	sem := sim.NewSemaphore(s.e, s.name+"/flag"+strconv.FormatUint(flag, 10))
	if s.sem0 == nil {
		s.flag0, s.sem0 = flag, sem
	} else {
		s.flags = append(s.flags, flag)
		s.sems = append(s.sems, sem)
	}
	return sem
}

// MemoryChannel is one endpoint of a memory-mapped I/O channel: the local
// GPU's threads directly store into (and load from) the peer GPU's memory.
type MemoryChannel struct {
	comm      *Communicator
	local     int
	remote    int
	localBuf  *mem.Buffer
	remoteBuf *mem.Buffer

	sendSem  *sim.Semaphore // lives on the remote GPU; our Signal bumps it
	recvSem  *sim.Semaphore // lives locally; peer's Signal bumps it
	expected uint64

	sendLL *llState // put_packets progress we produce
	recvLL *llState // put_packets progress we consume

	lastVisible sim.Time // completion time of our latest outbound store
	lastSignal  sim.Time
}

// NewMemoryChannelPair connects ranks a and b with memory-mapped channels,
// registering abuf/bbuf as the respective local buffers. Puts from a land in
// bbuf; puts from b land in abuf.
func (c *Communicator) NewMemoryChannelPair(a, b int, abuf, bbuf *mem.Buffer) (*MemoryChannel, *MemoryChannel) {
	return c.NewMemoryChannelPairEx(a, b, abuf, bbuf, bbuf, abuf)
}

// NewMemoryChannelPairEx connects ranks a and b with independent per-
// direction buffer bindings: a's puts stream aSrc (on a) into aDst (on b),
// b's puts stream bSrc (on b) into bDst (on a). This matches MSCCL++'s
// registration model, where each channel handle binds a local source and a
// remote destination (e.g. the peer's packet scratch buffer).
func (c *Communicator) NewMemoryChannelPairEx(a, b int, aSrc, aDst, bSrc, bDst *mem.Buffer) (*MemoryChannel, *MemoryChannel) {
	validateEndpoint(c.M, a, b, aSrc, bSrc)
	validateEndpoint(c.M, a, b, bDst, aDst)
	e := c.M.Engine
	id, as, bs := strconv.Itoa(c.id()), strconv.Itoa(a), strconv.Itoa(b)
	semAB := sim.NewSemaphore(e, "mc"+id+"/"+as+"->"+bs)
	semBA := sim.NewSemaphore(e, "mc"+id+"/"+bs+"->"+as)
	llAB := &llState{e: e, name: "mc" + id + "/ll/" + as + "->" + bs}
	llBA := &llState{e: e, name: "mc" + id + "/ll/" + bs + "->" + as}
	ca := &MemoryChannel{comm: c, local: a, remote: b, localBuf: aSrc, remoteBuf: aDst,
		sendSem: semAB, recvSem: semBA, sendLL: llAB, recvLL: llBA}
	cb := &MemoryChannel{comm: c, local: b, remote: a, localBuf: bSrc, remoteBuf: bDst,
		sendSem: semBA, recvSem: semAB, sendLL: llBA, recvLL: llAB}
	return ca, cb
}

// LocalRank returns the owning rank.
func (ch *MemoryChannel) LocalRank() int { return ch.local }

// RemoteRank returns the peer rank.
func (ch *MemoryChannel) RemoteRank() int { return ch.remote }

// LocalBuffer returns the bound local buffer.
func (ch *MemoryChannel) LocalBuffer() *mem.Buffer { return ch.localBuf }

// RemoteBuffer returns the bound remote buffer.
func (ch *MemoryChannel) RemoteBuffer() *mem.Buffer { return ch.remoteBuf }

// checkKernel panics when a primitive is invoked from the wrong GPU: channel
// endpoints are per-rank objects, like their CUDA counterparts.
func (ch *MemoryChannel) checkKernel(k *machine.Kernel) {
	if k.GPU.Rank != ch.local {
		panic(fmt.Sprintf("core: MemoryChannel of rank %d used from rank %d",
			ch.local, k.GPU.Rank))
	}
}

// put streams n bytes from src[srcOff] into dst[dstOff] on the peer using
// this block's threads, returning the visibility time.
func (ch *MemoryChannel) put(k *machine.Kernel, dst *mem.Buffer, dstOff int64,
	src *mem.Buffer, srcOff int64, size int64, tb, nTB int, trafficFactor float64) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	wireBytes := int64(float64(n) * trafficFactor)
	complete := k.Fabric().P2P(k.Now(), ch.local, ch.remote, wireBytes, model.ThreadCopyBWPerTB)
	ch.lastVisible = maxTime(ch.lastVisible, complete)
	awaitAndApply(k, complete-k.Machine().Env.IntraLat, nil) // threads busy issuing stores
	k.Machine().Engine.At(complete, func() {
		src.CopyTo(dst, dstOff+off, srcOff+off, n)
	})
}

// Put implements the HB-protocol one-sided write into the peer's bound
// buffer (paper Figure 2). Thread block tb of nTB moves its shard.
func (ch *MemoryChannel) Put(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.put(k, ch.remoteBuf, dstOff, ch.localBuf, srcOff, size, tb, nTB, 1.0)
}

// PutBuf is Put with explicit buffers (used by the DSL executor, which
// registers multiple buffers per rank).
func (ch *MemoryChannel) PutBuf(k *machine.Kernel, dst *mem.Buffer, dstOff int64,
	src *mem.Buffer, srcOff, size int64, tb, nTB int) {
	if dst.Rank != ch.remote || src.Rank != ch.local {
		panic("core: PutBuf buffer ranks do not match channel endpoints")
	}
	ch.put(k, dst, dstOff, src, srcOff, size, tb, nTB, 1.0)
}

// PutPackets implements the LL-protocol write: every data word travels with
// a flag word (doubling traffic), letting the receiver consume data at
// packet granularity without semaphores. flag must be distinct per
// algorithm step (paper §4.2).
func (ch *MemoryChannel) PutPackets(k *machine.Kernel, dstOff, srcOff, size int64,
	tb, nTB int, flag uint64) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	wireBytes := int64(float64(n) * model.LLTrafficFactor)
	complete := k.Fabric().P2P(k.Now(), ch.local, ch.remote, wireBytes, model.ThreadCopyBWPerTB)
	dst, src := ch.remoteBuf, ch.localBuf
	sem := ch.sendLL.sem(flag)
	awaitAndApply(k, complete-k.Machine().Env.IntraLat, nil)
	k.Machine().Engine.At(complete, func() {
		src.CopyTo(dst, dstOff+off, srcOff+off, n)
		sem.Add(uint64(n))
	})
}

// PutPacketsBuf is PutPackets with explicit buffers.
func (ch *MemoryChannel) PutPacketsBuf(k *machine.Kernel, dst *mem.Buffer, dstOff int64,
	src *mem.Buffer, srcOff, size int64, tb, nTB int, flag uint64) {
	if dst.Rank != ch.remote || src.Rank != ch.local {
		panic("core: PutPacketsBuf buffer ranks do not match channel endpoints")
	}
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	wireBytes := int64(float64(n) * model.LLTrafficFactor)
	complete := k.Fabric().P2P(k.Now(), ch.local, ch.remote, wireBytes, model.ThreadCopyBWPerTB)
	sem := ch.sendLL.sem(flag)
	awaitAndApply(k, complete-k.Machine().Env.IntraLat, nil)
	k.Machine().Engine.At(complete, func() {
		src.CopyTo(dst, dstOff+off, srcOff+off, n)
		sem.Add(uint64(n))
	})
}

// AwaitPackets blocks until at least target cumulative bytes tagged with
// flag have arrived on this channel direction (the receiver-side flag poll
// of the LL protocol).
func (ch *MemoryChannel) AwaitPackets(k *machine.Kernel, flag uint64, target uint64) {
	ch.checkKernel(k)
	sem := ch.recvLL.sem(flag)
	sem.WaitGE(k.P, target)
	k.Elapse(k.Model().LLCheckCost)
}

// PacketsArrived returns the cumulative LL bytes received for flag
// (non-blocking check, used by polling loops).
func (ch *MemoryChannel) PacketsArrived(flag uint64) uint64 {
	return ch.recvLL.sem(flag).Value()
}

// Signal asynchronously increments the peer's semaphore, ordered after all
// previous puts on this channel (a __threadfence_system precedes the store).
func (ch *MemoryChannel) Signal(k *machine.Kernel) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.MemFenceCost + model.SemSignalCost)
	lat := k.Fabric().SignalLatency(ch.local, ch.remote)
	arrive := maxTime(k.Now()+lat, ch.lastVisible+model.SemSignalCost)
	arrive = maxTime(arrive, ch.lastSignal+1)
	ch.lastSignal = arrive
	ch.sendSem.AddAt(arrive, 1)
}

// Wait blocks until the local semaphore reaches the next expected value
// (busy-wait while-loop in the paper).
func (ch *MemoryChannel) Wait(k *machine.Kernel) {
	ch.checkKernel(k)
	ch.expected++
	ch.recvSem.WaitGE(k.P, ch.expected)
	k.Elapse(k.Model().SemWaitWake)
}

// Flush is a no-op for MemoryChannel: once Put returns, the source buffer
// may be reused even though the write may still be in flight (paper §4.2).
func (ch *MemoryChannel) Flush(k *machine.Kernel) {
	ch.checkKernel(k)
	k.Elapse(k.Model().InstrOverhead)
}

// PutWithSignal fuses Put and Signal, paying the call overhead once.
func (ch *MemoryChannel) PutWithSignal(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	model := k.Model()
	off, n := shardRange(size, tb, nTB)
	if n > 0 {
		complete := k.Fabric().P2P(k.Now(), ch.local, ch.remote, n, model.ThreadCopyBWPerTB)
		ch.lastVisible = maxTime(ch.lastVisible, complete)
		dst, src := ch.remoteBuf, ch.localBuf
		k.Machine().Engine.At(complete, func() {
			src.CopyTo(dst, dstOff+off, srcOff+off, n)
		})
		awaitAndApply(k, complete-k.Machine().Env.IntraLat, nil)
	}
	k.Elapse(model.MemFenceCost + model.SemSignalCost)
	lat := k.Fabric().SignalLatency(ch.local, ch.remote)
	arrive := maxTime(k.Now()+lat, ch.lastVisible+model.SemSignalCost)
	arrive = maxTime(arrive, ch.lastSignal+1)
	ch.lastSignal = arrive
	ch.sendSem.AddAt(arrive, 1)
}

// Reduce reads size bytes of the peer's bound buffer at srcOff and
// accumulates them element-wise into the local bound buffer at dstOff
// (remote load + add + local store, one streaming pass). Synchronous: the
// block has the reduced values when Reduce returns.
func (ch *MemoryChannel) Reduce(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	// Data flows peer -> local over the link at the reduce streaming rate.
	complete := k.Fabric().P2P(k.Now(), ch.remote, ch.local, n, model.ReduceBWPerTB)
	dst, src := ch.localBuf, ch.remoteBuf
	awaitAndApply(k, complete, func() {
		dst.AccumulateFrom(src, dstOff+off, srcOff+off, n)
	})
}

// ReduceBuf is Reduce with explicit buffers: it reads size bytes of src (on
// the peer) at srcOff and accumulates them into dst (local) at dstOff.
func (ch *MemoryChannel) ReduceBuf(k *machine.Kernel, dst *mem.Buffer, dstOff int64,
	src *mem.Buffer, srcOff, size int64, tb, nTB int) {
	if dst.Rank != ch.local || src.Rank != ch.remote {
		panic("core: ReduceBuf buffer ranks do not match channel endpoints")
	}
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	complete := k.Fabric().P2P(k.Now(), ch.remote, ch.local, n, model.ReduceBWPerTB)
	awaitAndApply(k, complete, func() {
		dst.AccumulateFrom(src, dstOff+off, srcOff+off, n)
	})
}

// ReducePut is the fused reduce_put primitive produced by DSL operation
// fusion (paper §5.3): it reduces the local bound buffer region with a
// second local buffer region and puts the result to the peer, keeping the
// intermediate in registers (single streaming pass, no memory round-trip).
func (ch *MemoryChannel) ReducePut(k *machine.Kernel, dstOff, srcOff int64,
	data *mem.Buffer, dataOff, size int64, tb, nTB int) {
	ch.checkKernel(k)
	model := k.Model()
	k.Elapse(model.InstrOverhead)
	off, n := shardRange(size, tb, nTB)
	if n == 0 {
		return
	}
	rate := model.ReduceBWPerTB
	if model.ThreadCopyBWPerTB < rate {
		rate = model.ThreadCopyBWPerTB
	}
	complete := k.Fabric().P2P(k.Now(), ch.local, ch.remote, n, rate)
	ch.lastVisible = maxTime(ch.lastVisible, complete)
	dst, src := ch.remoteBuf, ch.localBuf
	k.Machine().Engine.At(complete, func() {
		src.CopyTo(dst, dstOff+off, srcOff+off, n)
		dst.AccumulateFrom(data, dstOff+off, dataOff+off, n)
	})
	awaitAndApply(k, complete-k.Machine().Env.IntraLat, nil)
}

// ReadReduceBW exposes the effective reduce bandwidth for n blocks (used by
// algorithm planners choosing thread-block counts).
func ReadReduceBW(m *timing.Model, nTB int, linkBW float64) float64 {
	return m.ReduceBW(nTB, linkBW)
}

var _ Channel = (*MemoryChannel)(nil)
