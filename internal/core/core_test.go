package core

import (
	"testing"

	"mscclpp/internal/machine"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func newH100(t *testing.T, nodes int) *machine.Machine {
	t.Helper()
	m := machine.New(topology.H100(nodes))
	m.MaterializeLimit = 1 << 40 // full data verification in tests
	return m
}

func TestShardRange(t *testing.T) {
	cases := []struct {
		size    int64
		tb, nTB int
		off, n  int64
	}{
		{1024, 0, 1, 0, 1024},
		{1024, 0, 4, 0, 256},
		{1024, 3, 4, 768, 256},
		{1028, 0, 4, 0, 260}, // 257 elements: first gets 65 elems
		{1028, 3, 4, 772, 256},
		{4, 0, 4, 0, 4},
		{4, 1, 4, 4, 0},
		{10, 0, 2, 0, 4}, // 2 elements + 2 tail bytes
		{10, 1, 2, 4, 6}, // last shard absorbs tail
	}
	for _, c := range cases {
		off, n := shardRange(c.size, c.tb, c.nTB)
		if off != c.off || n != c.n {
			t.Errorf("shardRange(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.size, c.tb, c.nTB, off, n, c.off, c.n)
		}
	}
	// Shards must tile the buffer exactly.
	for _, size := range []int64{0, 4, 100, 1024, 4093} {
		for _, nTB := range []int{1, 2, 3, 7, 16} {
			var total int64
			prevEnd := int64(0)
			for tb := 0; tb < nTB; tb++ {
				off, n := shardRange(size, tb, nTB)
				if n > 0 && off != prevEnd {
					t.Fatalf("size %d nTB %d: shard %d starts at %d, want %d", size, nTB, tb, off, prevEnd)
				}
				if n > 0 {
					prevEnd = off + n
				}
				total += n
			}
			if total != size {
				t.Fatalf("size %d nTB %d: shards cover %d bytes", size, nTB, total)
			}
		}
	}
}

// TestMemoryChannelPutSignalWait reproduces paper Figure 3: GPU-0 puts then
// signals; GPU-1 waits and must observe the transferred data.
func TestMemoryChannelPutSignalWait(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 4096
	src := m.Alloc(0, "src0", size)
	dst := m.Alloc(1, "dst1", size)
	src.FillPattern(func(i int64) float32 { return float32(i) + 0.5 })

	ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
	var waitDone sim.Time
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, size, 0, 1)
		ch0.Signal(k)
		ch0.Flush(k)
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
		waitDone = k.Now()
		// Data must be fully visible now.
		if got := dst.Float32(0); got != 0.5 {
			t.Errorf("dst[0] = %v after wait, want 0.5", got)
		}
		if got := dst.Float32(size - 4); got != float32(size/4-1)+0.5 {
			t.Errorf("dst[last] = %v", got)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(i) + 0.5 }, 0); err != nil {
		t.Fatal(err)
	}
	if waitDone <= m.Model.KernelLaunch {
		t.Fatalf("wait completed at %d, implausibly early", waitDone)
	}
}

// TestMemoryChannelSignalOrderedAfterPut verifies that a signal never
// arrives before the data of the preceding put is visible, even for large
// transfers.
func TestMemoryChannelSignalOrderedAfterPut(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 1 << 22 // 4 MB: transfer time >> signal latency
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	src.FillFloat32(3)
	ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, size, 0, 1)
		ch0.Signal(k)
	})
	ok := true
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
		if dst.Float32(size-4) != 3 {
			ok = false
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("signal arrived before put data was visible")
	}
}

func TestMemoryChannelMultiTBPut(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 1 << 16
	const nTB = 8
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	src.FillPattern(func(i int64) float32 { return float32(i % 97) })
	ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
	m.GPUs[0].Launch("send", nTB, func(k *machine.Kernel) {
		ch0.Put(k, 0, 0, size, k.Block, k.NumBlocks)
		k.GridBarrier()
		if k.Block == 0 {
			ch0.Signal(k)
		}
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(i % 97) }, 0); err != nil {
		t.Fatal(err)
	}
}

// Multi-TB puts must be faster than single-TB for bandwidth-bound sizes.
func TestMemoryChannelMultiTBScaling(t *testing.T) {
	const size = 8 << 20
	elapsed := func(nTB int) sim.Time {
		m := machine.New(topology.H100(1))
		c := NewCommunicator(m)
		src := m.Alloc(0, "src", size)
		dst := m.Alloc(1, "dst", size)
		ch0, _ := c.NewMemoryChannelPair(0, 1, src, dst)
		m.GPUs[0].Launch("send", nTB, func(k *machine.Kernel) {
			ch0.Put(k, 0, 0, size, k.Block, k.NumBlocks)
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	t1, t8 := elapsed(1), elapsed(8)
	if t8 >= t1 {
		t.Fatalf("8-TB put (%d) not faster than 1-TB put (%d)", t8, t1)
	}
	// 8 TBs at 22 GB/s each: ~5.7x speedup expected; allow generous bounds.
	if ratio := float64(t1) / float64(t8); ratio < 3 {
		t.Fatalf("multi-TB scaling ratio %.2f too small", ratio)
	}
}

func TestMemoryChannelLLPackets(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 4096
	src := m.Alloc(0, "src", size)
	scratch := m.Alloc(1, "scratch", size)
	src.FillPattern(func(i int64) float32 { return float32(2 * i) })
	ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, scratch)
	var recvT, sendIssueT sim.Time
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		ch0.PutPackets(k, 0, 0, size, 0, 1, 7)
		sendIssueT = k.Now()
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.AwaitPackets(k, 7, size)
		recvT = k.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := scratch.EqualFloat32(func(i int64) float32 { return float32(2 * i) }, 0); err != nil {
		t.Fatal(err)
	}
	if recvT <= sendIssueT {
		t.Fatalf("receiver finished at %d, sender issued at %d", recvT, sendIssueT)
	}
	if got := ch1.PacketsArrived(7); got != size {
		t.Fatalf("PacketsArrived = %d, want %d", got, size)
	}
}

// LL must beat HB on latency for small messages (the protocol's raison
// d'etre): no fence + semaphore round-trip.
func TestLLFasterThanHBSmall(t *testing.T) {
	const size = 1024
	run := func(ll bool) sim.Time {
		m := machine.New(topology.H100(1))
		c := NewCommunicator(m)
		src := m.Alloc(0, "src", size)
		dst := m.Alloc(1, "dst", size)
		ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
		m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
			if ll {
				ch0.PutPackets(k, 0, 0, size, 0, 1, 1)
			} else {
				ch0.Put(k, 0, 0, size, 0, 1)
				ch0.Signal(k)
			}
		})
		var done sim.Time
		m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
			if ll {
				ch1.AwaitPackets(k, 1, size)
			} else {
				ch1.Wait(k)
			}
			done = k.Now()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	llT, hbT := run(true), run(false)
	if llT >= hbT {
		t.Fatalf("LL latency %d >= HB latency %d for 1KB", llT, hbT)
	}
}

// HB must beat LL on bandwidth for large messages (LL doubles traffic).
func TestHBFasterThanLLLarge(t *testing.T) {
	const size = 64 << 20
	run := func(ll bool) sim.Time {
		m := machine.New(topology.H100(1))
		c := NewCommunicator(m)
		src := m.Alloc(0, "src", size)
		dst := m.Alloc(1, "dst", size)
		ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
		const nTB = 24
		m.GPUs[0].Launch("send", nTB, func(k *machine.Kernel) {
			if ll {
				ch0.PutPackets(k, 0, 0, size, k.Block, k.NumBlocks, 1)
			} else {
				ch0.Put(k, 0, 0, size, k.Block, k.NumBlocks)
				k.GridBarrier()
				if k.Block == 0 {
					ch0.Signal(k)
				}
			}
		})
		var done sim.Time
		m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
			if ll {
				ch1.AwaitPackets(k, 1, size)
			} else {
				ch1.Wait(k)
			}
			done = k.Now()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	llT, hbT := run(true), run(false)
	if hbT >= llT {
		t.Fatalf("HB %d >= LL %d for 64MB", hbT, llT)
	}
}

func TestMemoryChannelReduce(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 8192
	a := m.Alloc(0, "a", size)
	b := m.Alloc(1, "b", size)
	a.FillPattern(func(i int64) float32 { return float32(i) })
	b.FillPattern(func(i int64) float32 { return float32(3 * i) })
	ch0, _ := c.NewMemoryChannelPair(0, 1, a, b)
	m.GPUs[0].Launch("reduce", 1, func(k *machine.Kernel) {
		// Read peer's data, accumulate into local: a += b.
		ch0.Reduce(k, 0, 0, size, 0, 1)
		// Synchronous: values available immediately.
		if got := a.Float32(4); got != 4 {
			t.Errorf("a[1] = %v mid-kernel, want 4", got)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := a.EqualFloat32(func(i int64) float32 { return float32(4 * i) }, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryChannelReducePutFused(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	const size = 4096
	src := m.Alloc(0, "src", size)
	data := m.Alloc(0, "data", size)
	dst := m.Alloc(1, "dst", size)
	src.FillPattern(func(i int64) float32 { return float32(i) })
	data.FillPattern(func(i int64) float32 { return float32(10 * i) })
	ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
	m.GPUs[0].Launch("rp", 1, func(k *machine.Kernel) {
		ch0.ReducePut(k, 0, 0, data, 0, size, 0, 1)
		ch0.Signal(k)
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		ch1.Wait(k)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(11 * i) }, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestPutWithSignalFusionCheaper(t *testing.T) {
	const size = 1024
	run := func(fused bool) sim.Time {
		m := machine.New(topology.H100(1))
		c := NewCommunicator(m)
		src := m.Alloc(0, "src", size)
		dst := m.Alloc(1, "dst", size)
		ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
		m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
			if fused {
				ch0.PutWithSignal(k, 0, 0, size, 0, 1)
			} else {
				ch0.Put(k, 0, 0, size, 0, 1)
				ch0.Signal(k)
			}
		})
		var done sim.Time
		m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
			ch1.Wait(k)
			done = k.Now()
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	if f, u := run(true), run(false); f > u {
		t.Fatalf("fused put_with_signal (%d) slower than unfused (%d)", f, u)
	}
}

func TestMemoryChannelWrongRankPanics(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	src := m.Alloc(0, "src", 64)
	dst := m.Alloc(1, "dst", 64)
	ch0, _ := c.NewMemoryChannelPair(0, 1, src, dst)
	panicked := false
	m.GPUs[2].Launch("bad", 1, func(k *machine.Kernel) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch0.Put(k, 0, 0, 64, 0, 1)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Fatal("expected panic using channel from wrong rank")
	}
}

func TestChannelPairValidation(t *testing.T) {
	m := newH100(t, 1)
	c := NewCommunicator(m)
	good0 := m.Alloc(0, "g0", 64)
	good1 := m.Alloc(1, "g1", 64)
	cases := []func(){
		func() { c.NewMemoryChannelPair(0, 0, good0, good0) },
		func() { c.NewMemoryChannelPair(0, 9, good0, good1) },
		func() { c.NewMemoryChannelPair(0, 1, good1, good0) }, // swapped ranks
		func() { c.NewMemoryChannelPair(0, 1, nil, good1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected construction panic", i)
				}
			}()
			fn()
		}()
	}
}
