package timing

import (
	"testing"

	"mscclpp/internal/topology"
)

// TestXferTimeRounding is the regression test for the fractional-nanosecond
// truncation bug: any positive-size transfer must cost at least 1 ns, and
// partial nanoseconds round up, never down.
func TestXferTimeRounding(t *testing.T) {
	cases := []struct {
		name string
		size int64
		bw   float64
		want int64
	}{
		{"exact division", 4000, 4.0, 1000},
		{"rounds up", 4001, 4.0, 1001},
		{"sub-ns transfer costs 1ns", 16, 400.0, 1},
		{"one byte on fast link", 1, 397.5, 1},
		{"one byte on slow link", 1, 0.5, 2},
		{"fractional bw rounds up", 100, 3.0, 34},
		{"large transfer", 1 << 30, 256.0, 4194304},
	}
	for _, c := range cases {
		if got := XferTime(c.size, c.bw); got != c.want {
			t.Errorf("%s: XferTime(%d, %g) = %d, want %d", c.name, c.size, c.bw, got, c.want)
		}
	}
}

// TestXferTimeDegenerate covers the guarded inputs: non-positive sizes and
// bandwidths cost nothing rather than producing negative or infinite times.
func TestXferTimeDegenerate(t *testing.T) {
	for _, c := range []struct {
		size int64
		bw   float64
	}{
		{0, 100}, {-1, 100}, {100, 0}, {100, -5}, {0, 0}, {-3, -3},
	} {
		if got := XferTime(c.size, c.bw); got != 0 {
			t.Errorf("XferTime(%d, %g) = %d, want 0", c.size, c.bw, got)
		}
	}
}

// TestXferTimeMonotone: more bytes never cost less time.
func TestXferTimeMonotone(t *testing.T) {
	const bw = 48.94
	prev := int64(0)
	for size := int64(1); size <= 1<<20; size *= 3 {
		got := XferTime(size, bw)
		if got < prev {
			t.Fatalf("XferTime not monotone: %d bytes -> %d ns after %d ns", size, got, prev)
		}
		if got < 1 {
			t.Fatalf("XferTime(%d, %g) = %d, want >= 1", size, bw, got)
		}
		prev = got
	}
}

// TestDefaultModels sanity-checks the calibrated models for every Table 2
// environment: bandwidth helpers must be positive, capped by their links,
// and scale with thread-block count until saturation.
func TestDefaultModels(t *testing.T) {
	envs := []*topology.Env{
		topology.A100_40G(1), topology.A100_80G(2), topology.H100(2), topology.MI300x(1),
	}
	for _, env := range envs {
		m := Default(env)
		if m.Env != env {
			t.Fatalf("%s: model not bound to env", env.Name)
		}
		link := env.PeerBW()
		one := m.ThreadCopyBW(1, link)
		many := m.ThreadCopyBW(64, link)
		if one <= 0 || many <= 0 {
			t.Errorf("%s: non-positive thread-copy bandwidth", env.Name)
		}
		if many > m.ThreadCopyPeakFrac*link+1e-9 {
			t.Errorf("%s: ThreadCopyBW(64) = %g exceeds peak fraction of link %g", env.Name, many, link)
		}
		if many < one {
			t.Errorf("%s: thread-copy bandwidth not monotone in TB count", env.Name)
		}
		if got := m.ThreadCopyBW(0, link); got != m.ThreadCopyBW(1, link) {
			t.Errorf("%s: ThreadCopyBW(0) = %g, want clamp to one TB", env.Name, got)
		}
		if rb := m.ReduceBW(64, link); rb > link {
			t.Errorf("%s: ReduceBW exceeds link bandwidth", env.Name)
		}
		if lrb := m.LocalReduceBW(1024); lrb > env.HBMBW/3+1e-9 {
			t.Errorf("%s: LocalReduceBW exceeds HBM/3 cap", env.Name)
		}
	}
}
