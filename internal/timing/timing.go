// Package timing holds the calibrated software-side cost model layered over
// the raw hardware characteristics in package topology.
//
// Every constant here attaches to a mechanism described in the paper
// (Sections 4 and 6): the GPU->CPU proxy FIFO of PortChannel, LL packet flag
// overhead of MemoryChannel, semaphore signal/wait costs, thread-copy
// throughput scaling, and so on. Baselines and MSCCL++ pay for what they
// actually do; there are no per-library fudge factors.
package timing

import (
	"math"

	"mscclpp/internal/topology"
)

// Model is the per-environment cost model. All durations are nanoseconds,
// all bandwidths bytes/ns (== GB/s).
type Model struct {
	Env *topology.Env

	// --- Kernel-side costs ---

	// KernelLaunch is the fixed cost to start and tear down one collective
	// GPU kernel (graph-captured launch, parameter load, TB dispatch).
	KernelLaunch int64
	// TBSyncCost is one intra-thread-block __syncthreads().
	TBSyncCost int64
	// DeviceBarrierCost is a grid-wide barrier across thread blocks.
	DeviceBarrierCost int64
	// InstrOverhead is the fixed per-primitive-call overhead inside a kernel
	// (offset arithmetic, channel state loads). Fused primitives pay it once.
	InstrOverhead int64

	// --- MemoryChannel (thread-copy) ---

	// ThreadCopyBWPerTB is the peer-to-peer copy bandwidth one thread block
	// sustains; multiple TBs scale linearly until the link saturates.
	ThreadCopyBWPerTB float64
	// ThreadCopyPeakFrac is the fraction of raw link bandwidth that SM
	// thread-copy can reach (copy engines get slightly closer to the wire
	// rate than load/store loops; paper §7.1 reports PortChannel ~6% above
	// MemoryChannel at 1 GB).
	ThreadCopyPeakFrac float64
	// ReduceBWPerTB is the load+add+store streaming rate of one TB when
	// reducing remote data into local memory.
	ReduceBWPerTB float64
	// LocalCopyBWPerTB is one TB's local HBM copy bandwidth.
	LocalCopyBWPerTB float64
	// LLTrafficFactor multiplies wire traffic for the LL protocol (data is
	// interleaved with flags; 8-byte data + 8-byte flag per 16-byte packet
	// doubles traffic).
	LLTrafficFactor float64
	// LLCheckCost is the receiver-side cost of one flag poll round.
	LLCheckCost int64

	// --- Semaphore synchronization (HB protocol, PortChannel) ---

	// SemSignalCost is the issue cost of an atomic increment on a remote
	// semaphore (the store itself travels at link latency).
	SemSignalCost int64
	// SemWaitWake is the wake-up granularity of a busy-wait loop: time from
	// the semaphore value becoming visible to the waiting kernel proceeding.
	SemWaitWake int64
	// MemFenceCost is a __threadfence_system() before signaling.
	MemFenceCost int64

	// --- PortChannel proxy path (paper Figure 4) ---

	// FifoPushCost is the GPU-side cost to append a request to the proxy
	// FIFO (write element + bump head over PCIe-visible memory).
	FifoPushCost int64
	// ProxyPollInterval is how often the CPU proxy thread samples the FIFO
	// tail; a request waits on average half of this.
	ProxyPollInterval int64
	// ProxyHandleCost is the CPU cost to decode one request and initiate the
	// transfer (ibv_post_send / cudaMemcpyAsync).
	ProxyHandleCost int64
	// FlushCheckCost is the CPU cost of one completion-queue poll.
	FlushCheckCost int64

	// --- Baseline library mechanisms ---

	// StagingCopyBWPerTB is the rate at which a baseline (NCCL-style)
	// send/recv moves data through its internal staging buffers; each hop
	// pays an extra local copy at this rate.
	StagingCopyBWPerTB float64
	// BaselineProtoOverhead is the per-step protocol cost of a synchronous
	// two-sided send/recv rendezvous (ready-flag exchange both directions).
	BaselineProtoOverhead int64
	// BaselineLaunch is the baseline library's kernel launch cost; NCCL's
	// generic kernel loads a larger parameter/work-elem state.
	BaselineLaunch int64

	// DSLDispatch is the per-operation overhead of the DSL Executor's
	// interpreter loop (paper §7.1: DSL versions average ~3% slower than
	// direct Primitive API implementations).
	DSLDispatch int64
}

// Default returns the calibrated model for env.
//
// Calibration anchors (paper Table 1 and Section 7.1):
//   - H100 MemoryChannel p2p latency 829 ns vs best-achievable 822 ns.
//   - H100 PortChannel IB latency 4.89 us vs perftest 3.76 us (proxy adds
//     ~1.1 us: FIFO push + poll + handling).
//   - PortChannel NVLink throughput reaches the nvbandwidth peak.
//   - Single-node 1 KB AllReduce (1PA/LL) ~5 us on A100.
func Default(env *topology.Env) *Model {
	m := &Model{
		Env: env,

		KernelLaunch:      1100,
		TBSyncCost:        40,
		DeviceBarrierCost: 350,
		InstrOverhead:     25,

		ThreadCopyBWPerTB:  22.0,
		ThreadCopyPeakFrac: 0.94,
		ReduceBWPerTB:      16.0,
		LocalCopyBWPerTB:   60.0,
		LLTrafficFactor:    2.0,
		LLCheckCost:        60,

		SemSignalCost: 90,
		SemWaitWake:   120,
		MemFenceCost:  150,

		FifoPushCost:      180,
		ProxyPollInterval: 450,
		ProxyHandleCost:   350,
		FlushCheckCost:    200,

		StagingCopyBWPerTB:    26.0,
		BaselineProtoOverhead: 600,
		BaselineLaunch:        1700,

		DSLDispatch: 55,
	}
	if env.IntraMesh {
		// CDNA CUs sustain slightly lower per-CU copy rates over xGMI but the
		// mesh provides more aggregate paths.
		m.ThreadCopyBWPerTB = 18.0
		m.ReduceBWPerTB = 14.0
	}
	return m
}

// ThreadCopyBW returns the aggregate copy bandwidth of n thread blocks over
// a link with capacity linkBW.
func (m *Model) ThreadCopyBW(n int, linkBW float64) float64 {
	if n < 1 {
		n = 1
	}
	bw := float64(n) * m.ThreadCopyBWPerTB
	if peak := m.ThreadCopyPeakFrac * linkBW; bw > peak {
		return peak
	}
	return bw
}

// ReduceBW returns the aggregate remote-read-reduce bandwidth of n thread
// blocks capped by the link.
func (m *Model) ReduceBW(n int, linkBW float64) float64 {
	if n < 1 {
		n = 1
	}
	bw := float64(n) * m.ReduceBWPerTB
	if bw > linkBW {
		return linkBW
	}
	return bw
}

// LocalReduceBW returns the aggregate local (HBM) reduce bandwidth of n
// thread blocks, capped by device memory bandwidth.
func (m *Model) LocalReduceBW(n int) float64 {
	if n < 1 {
		n = 1
	}
	// A local reduce streams two reads and one write; cap at a third of HBM.
	bw := float64(n) * m.ReduceBWPerTB * 2
	cap3 := m.Env.HBMBW / 3
	if bw > cap3 {
		return cap3
	}
	return bw
}

// XferTime returns size/bw rounded up to whole nanoseconds, guarding against
// degenerate inputs. Rounding up (rather than truncating toward zero) keeps
// every positive-size transfer at >= 1 ns: with truncation, any message
// smaller than the link's per-ns byte rate — e.g. a 16-byte LL packet on a
// 400 GB/s NVLink — was modeled as free, which understated wire occupancy
// for exactly the small-message regime the paper's latency figures measure.
func XferTime(size int64, bw float64) int64 {
	if size <= 0 || bw <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(size) / bw))
}
