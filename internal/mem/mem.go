// Package mem implements simulated GPU device memory: registered
// communication buffers, typed float32 access for reductions, and multimem
// address groups for switch-mapped I/O.
//
// A Buffer has a modeled length (what the timing model charges for) and,
// optionally, materialized backing storage. Correctness tests run fully
// materialized so every collective is verified bit-for-bit; large-message
// benchmarks (up to 1 GB per rank) run virtual buffers whose data operations
// are skipped while their costs are still charged.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is a region of simulated GPU memory registered for communication.
type Buffer struct {
	Rank int    // owning GPU (global rank)
	Name string // diagnostic label
	size int64  // modeled length in bytes
	data []byte // nil when virtual
}

// NewBuffer allocates a materialized buffer of size bytes on rank.
func NewBuffer(rank int, name string, size int64) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative buffer size %d", size))
	}
	return &Buffer{Rank: rank, Name: name, size: size, data: make([]byte, size)}
}

// NewVirtualBuffer allocates a buffer whose size is modeled for timing but
// which carries no backing data. All data operations on it are no-ops.
func NewVirtualBuffer(rank int, name string, size int64) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative buffer size %d", size))
	}
	return &Buffer{Rank: rank, Name: name, size: size}
}

// Size returns the modeled length in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Materialized reports whether the buffer has real backing storage.
func (b *Buffer) Materialized() bool { return b.data != nil }

// Bytes returns the backing storage (nil for virtual buffers).
func (b *Buffer) Bytes() []byte { return b.data }

func (b *Buffer) check(off, n int64) {
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("mem: out-of-bounds access [%d,%d) of %s (size %d)",
			off, off+n, b.Name, b.size))
	}
}

// CopyTo copies n bytes from b[srcOff:] into dst[dstOff:]. Bounds are always
// checked against modeled sizes; data moves only if both sides are
// materialized.
func (b *Buffer) CopyTo(dst *Buffer, dstOff, srcOff, n int64) {
	b.check(srcOff, n)
	dst.check(dstOff, n)
	if b.data == nil || dst.data == nil {
		return
	}
	copy(dst.data[dstOff:dstOff+n], b.data[srcOff:srcOff+n])
}

// Float32 returns the float32 at byte offset off.
func (b *Buffer) Float32(off int64) float32 {
	b.check(off, 4)
	if b.data == nil {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b.data[off:]))
}

// SetFloat32 stores v at byte offset off.
func (b *Buffer) SetFloat32(off int64, v float32) {
	b.check(off, 4)
	if b.data == nil {
		return
	}
	binary.LittleEndian.PutUint32(b.data[off:], math.Float32bits(v))
}

// FillFloat32 writes v to every 4-byte element.
func (b *Buffer) FillFloat32(v float32) {
	if b.data == nil {
		return
	}
	bits := math.Float32bits(v)
	for off := int64(0); off+4 <= b.size; off += 4 {
		binary.LittleEndian.PutUint32(b.data[off:], bits)
	}
}

// FillPattern writes a deterministic per-rank pattern used by tests:
// element i gets pattern(rank, i).
func (b *Buffer) FillPattern(f func(i int64) float32) {
	if b.data == nil {
		return
	}
	for off, i := int64(0), int64(0); off+4 <= b.size; off, i = off+4, i+1 {
		binary.LittleEndian.PutUint32(b.data[off:], math.Float32bits(f(i)))
	}
}

// AccumulateFrom adds n bytes' worth of float32 elements from src[srcOff:]
// into b[dstOff:], element-wise (b += src). n must be a multiple of 4 when
// materialized.
func (b *Buffer) AccumulateFrom(src *Buffer, dstOff, srcOff, n int64) {
	b.check(dstOff, n)
	src.check(srcOff, n)
	if b.data == nil || src.data == nil {
		return
	}
	if n%4 != 0 {
		panic(fmt.Sprintf("mem: reduce length %d not a multiple of 4", n))
	}
	for i := int64(0); i < n; i += 4 {
		d := b.data[dstOff+i:]
		s := src.data[srcOff+i:]
		sum := math.Float32frombits(binary.LittleEndian.Uint32(d)) +
			math.Float32frombits(binary.LittleEndian.Uint32(s))
		binary.LittleEndian.PutUint32(d, math.Float32bits(sum))
	}
}

// EqualFloat32 reports whether every element of b matches want within eps.
// Virtual buffers vacuously match.
func (b *Buffer) EqualFloat32(want func(i int64) float32, eps float32) error {
	if b.data == nil {
		return nil
	}
	for off, i := int64(0), int64(0); off+4 <= b.size; off, i = off+4, i+1 {
		got := math.Float32frombits(binary.LittleEndian.Uint32(b.data[off:]))
		w := want(i)
		d := got - w
		if d < 0 {
			d = -d
		}
		lim := eps
		if w != 0 {
			aw := w
			if aw < 0 {
				aw = -aw
			}
			lim = eps * aw
		}
		if d > lim {
			return fmt.Errorf("mem: %s[%d] = %v, want %v", b.Name, i, got, w)
		}
	}
	return nil
}

// Multimem is a multimem address group: a virtual address that fans out to
// one buffer per participating rank (paper Section 4.3). Switch-mapped
// reduce reads all members through the switch; broadcast stores to all
// members.
type Multimem struct {
	Name    string
	Members []*Buffer // indexed by position in the participating rank list
}

// NewMultimem builds a multimem group over per-rank buffers, which must all
// share the same modeled size.
func NewMultimem(name string, members []*Buffer) (*Multimem, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("mem: multimem %s has no members", name)
	}
	size := members[0].Size()
	for _, b := range members {
		if b.Size() != size {
			return nil, fmt.Errorf("mem: multimem %s member sizes differ (%d vs %d)",
				name, size, b.Size())
		}
	}
	return &Multimem{Name: name, Members: members}, nil
}

// Size returns the per-member modeled size.
func (m *Multimem) Size() int64 { return m.Members[0].Size() }

// ReduceInto sums member[*][srcOff:srcOff+n] element-wise into
// dst[dstOff:dstOff+n] (the in-switch reduction of multimem.ld_reduce).
func (m *Multimem) ReduceInto(dst *Buffer, dstOff, srcOff, n int64) {
	dst.check(dstOff, n)
	if dst.data == nil {
		return
	}
	if n%4 != 0 {
		panic(fmt.Sprintf("mem: multimem reduce length %d not a multiple of 4", n))
	}
	for i := int64(0); i < n; i += 4 {
		var sum float32
		for _, mb := range m.Members {
			mb.check(srcOff+i, 4)
			if mb.data == nil {
				continue
			}
			sum += math.Float32frombits(binary.LittleEndian.Uint32(mb.data[srcOff+i:]))
		}
		binary.LittleEndian.PutUint32(dst.data[dstOff+i:], math.Float32bits(sum))
	}
}

// BroadcastFrom stores src[srcOff:srcOff+n] into every member's
// [dstOff:dstOff+n] (multimem.st through the switch).
func (m *Multimem) BroadcastFrom(src *Buffer, dstOff, srcOff, n int64) {
	src.check(srcOff, n)
	for _, mb := range m.Members {
		src.CopyTo(mb, dstOff, srcOff, n)
	}
}

// ReduceBroadcast performs the fused ld_reduce + multimem.st data movement:
// element-wise sums of src's members at srcOff are stored into every member
// of dst at dstOff (without touching any intermediate buffer).
func ReduceBroadcast(src, dst *Multimem, dstOff, srcOff, n int64) {
	if n%4 != 0 {
		panic(fmt.Sprintf("mem: reduce-broadcast length %d not a multiple of 4", n))
	}
	for _, d := range dst.Members {
		d.check(dstOff, n)
	}
	for i := int64(0); i < n; i += 4 {
		var sum float32
		any := false
		for _, sb := range src.Members {
			sb.check(srcOff+i, 4)
			if sb.data == nil {
				continue
			}
			any = true
			sum += math.Float32frombits(binary.LittleEndian.Uint32(sb.data[srcOff+i:]))
		}
		if !any {
			continue
		}
		bits := math.Float32bits(sum)
		for _, d := range dst.Members {
			if d.data != nil {
				binary.LittleEndian.PutUint32(d.data[dstOff+i:], bits)
			}
		}
	}
}
