package mem

import (
	"testing"
	"testing/quick"
)

func TestNewBufferSizes(t *testing.T) {
	b := NewBuffer(0, "b", 64)
	if b.Size() != 64 || !b.Materialized() {
		t.Fatalf("size=%d materialized=%v", b.Size(), b.Materialized())
	}
	v := NewVirtualBuffer(1, "v", 1<<30)
	if v.Size() != 1<<30 || v.Materialized() {
		t.Fatalf("virtual: size=%d materialized=%v", v.Size(), v.Materialized())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuffer(0, "bad", -1)
}

func TestFloat32RoundTrip(t *testing.T) {
	b := NewBuffer(0, "b", 16)
	b.SetFloat32(4, 3.25)
	if got := b.Float32(4); got != 3.25 {
		t.Fatalf("got %v", got)
	}
	if got := b.Float32(0); got != 0 {
		t.Fatalf("untouched element = %v", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	b := NewBuffer(0, "b", 8)
	cases := []func(){
		func() { b.Float32(8) },
		func() { b.Float32(-4) },
		func() { b.SetFloat32(6, 1) },
		func() { b.CopyTo(NewBuffer(0, "d", 8), 4, 0, 8) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCopyTo(t *testing.T) {
	src := NewBuffer(0, "src", 32)
	dst := NewBuffer(1, "dst", 32)
	src.FillPattern(func(i int64) float32 { return float32(i) })
	src.CopyTo(dst, 8, 8, 16)
	if dst.Float32(8) != 2 || dst.Float32(20) != 5 {
		t.Fatalf("copy wrong: %v %v", dst.Float32(8), dst.Float32(20))
	}
	if dst.Float32(0) != 0 || dst.Float32(24) != 0 {
		t.Fatal("copy spilled outside range")
	}
}

func TestVirtualOpsAreNoops(t *testing.T) {
	v := NewVirtualBuffer(0, "v", 1024)
	m := NewBuffer(1, "m", 1024)
	m.FillFloat32(7)
	// None of these should panic or move data.
	v.SetFloat32(0, 1)
	if v.Float32(0) != 0 {
		t.Fatal("virtual read returned data")
	}
	v.CopyTo(m, 0, 0, 1024)
	if m.Float32(0) != 7 {
		t.Fatal("virtual source overwrote materialized destination")
	}
	m.CopyTo(v, 0, 0, 1024)
	v.AccumulateFrom(m, 0, 0, 1024)
	if err := v.EqualFloat32(func(int64) float32 { return 42 }, 0); err != nil {
		t.Fatalf("virtual EqualFloat32 should vacuously pass: %v", err)
	}
	// Bounds are still enforced on virtual buffers.
	defer func() {
		if recover() == nil {
			t.Fatal("expected bounds panic on virtual buffer")
		}
	}()
	v.CopyTo(m, 0, 512, 1024)
}

func TestAccumulateFrom(t *testing.T) {
	a := NewBuffer(0, "a", 16)
	b := NewBuffer(1, "b", 16)
	a.FillPattern(func(i int64) float32 { return float32(i) })
	b.FillPattern(func(i int64) float32 { return float32(10 * i) })
	a.AccumulateFrom(b, 0, 0, 16)
	if err := a.EqualFloat32(func(i int64) float32 { return float32(11 * i) }, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateOddLengthPanics(t *testing.T) {
	a := NewBuffer(0, "a", 16)
	b := NewBuffer(1, "b", 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.AccumulateFrom(b, 0, 0, 6)
}

func TestEqualFloat32Mismatch(t *testing.T) {
	a := NewBuffer(0, "a", 16)
	a.FillFloat32(1)
	if err := a.EqualFloat32(func(int64) float32 { return 1 }, 0); err != nil {
		t.Fatalf("unexpected mismatch: %v", err)
	}
	if err := a.EqualFloat32(func(int64) float32 { return 2 }, 1e-6); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestMultimemReduceBroadcast(t *testing.T) {
	const ranks = 4
	var members []*Buffer
	for r := 0; r < ranks; r++ {
		b := NewBuffer(r, "m", 32)
		rr := r
		b.FillPattern(func(i int64) float32 { return float32(rr+1) * float32(i+1) })
		members = append(members, b)
	}
	mm, err := NewMultimem("grp", members)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewBuffer(0, "dst", 32)
	mm.ReduceInto(dst, 0, 0, 32)
	// sum over r of (r+1)*(i+1) = 10*(i+1)
	if err := dst.EqualFloat32(func(i int64) float32 { return 10 * float32(i+1) }, 1e-5); err != nil {
		t.Fatal(err)
	}
	src := NewBuffer(2, "src", 32)
	src.FillFloat32(-3)
	mm.BroadcastFrom(src, 0, 0, 32)
	for r := 0; r < ranks; r++ {
		if err := members[r].EqualFloat32(func(int64) float32 { return -3 }, 0); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestMultimemSizeMismatch(t *testing.T) {
	a := NewBuffer(0, "a", 16)
	b := NewBuffer(1, "b", 32)
	if _, err := NewMultimem("bad", []*Buffer{a, b}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := NewMultimem("empty", nil); err == nil {
		t.Fatal("expected empty-group error")
	}
}

// Property: copy then accumulate equals 2x source for any offset-aligned
// subrange.
func TestCopyAccumulateProperty(t *testing.T) {
	f := func(seed uint8, nEl uint8) bool {
		n := int64(nEl%32+1) * 4
		src := NewBuffer(0, "s", n)
		dst := NewBuffer(1, "d", n)
		src.FillPattern(func(i int64) float32 { return float32(seed) + float32(i) })
		src.CopyTo(dst, 0, 0, n)
		dst.AccumulateFrom(src, 0, 0, n)
		return dst.EqualFloat32(func(i int64) float32 {
			return 2 * (float32(seed) + float32(i))
		}, 1e-5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
