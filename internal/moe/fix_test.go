package moe

// Regression coverage for the two all-to-all correctness fixes:
//
//  1. Wait symmetry: a rank's receive-wait loop must be gated on the
//     peer's bytes toward it (the traffic-matrix column), not on the
//     rank's own send vector. The old row-gated code deadlocked under
//     asymmetric traffic (a rank waiting on a peer that never put) and
//     silently skipped waits for puts that were issued.
//  2. Remainder conservation: tokens % GPUs used to be dropped, so
//     BytesMax/AlgoBWGBs underreported for any non-divisible token count.
//
// Plus the IBGDA semaphore-expectation lockstep check: repeated
// Dispatch/Combine sequences must advance every pairwise expectation in
// step with the traffic matrix and stay bit-identical across runs.

import (
	"testing"

	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// asymCfg routes three single-expert tokens on an 8-GPU node: ranks 0..2
// own one token each, routed to experts 0, 3 and 6 (rank r's token lands
// on expert (r*11) mod 8). The send set {1->3, 2->6} has an empty
// intersection with its transpose, so any confusion between "who I send
// to" and "who sends to me" either deadlocks or skips a real wait.
func asymCfg() (Config, int) {
	return Config{Hidden: 16, TopK: 1, Experts: 8}, 3
}

// wantAsymWaits is the per-rank wait count the asymCfg traffic matrix
// implies: rank 3 waits for rank 1's put, rank 6 for rank 2's, nobody else
// receives remote traffic.
var wantAsymWaits = []int{0, 0, 0, 1, 0, 0, 1, 0}

// TestAsymmetricWaitsMSCCLPP deadlock-checks the MSCCL++ path under
// asymmetric traffic and pins the exact receive-wait count per rank. With
// the pre-fix row-gated waits, rank 1 blocks forever on a signal from rank
// 3 that is never issued and the engine reports a deadlock.
func TestAsymmetricWaitsMSCCLPP(t *testing.T) {
	cfg, tokens := asymCfg()
	e, err := New(topology.H100(1), cfg, TransportMSCCLPP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Dispatch(tokens)
	if err != nil {
		t.Fatalf("asymmetric dispatch deadlocked or failed: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("asymmetric dispatch elapsed %d", res.Elapsed)
	}
	for r, got := range e.waits {
		if got != wantAsymWaits[r] {
			t.Fatalf("rank %d executed %d waits, want %d (waits %v)", r, got, wantAsymWaits[r], e.waits)
		}
	}
}

// TestAsymmetricWaitsIBGDA is the IBGDA twin: the same asymmetric routing
// must neither deadlock nor leave semaphore expectations drifting from the
// signals actually issued.
func TestAsymmetricWaitsIBGDA(t *testing.T) {
	cfg, tokens := asymCfg()
	e, err := New(topology.H100(1), cfg, TransportIBGDA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dispatch(tokens); err != nil {
		t.Fatalf("asymmetric dispatch deadlocked or failed: %v", err)
	}
	for r, got := range e.waits {
		if got != wantAsymWaits[r] {
			t.Fatalf("rank %d executed %d waits, want %d (waits %v)", r, got, wantAsymWaits[r], e.waits)
		}
	}
	// Every pairwise expectation must equal the puts actually issued: one
	// per nonzero off-diagonal matrix entry, and the semaphore value must
	// have caught up (no unconsumed signals, no outstanding waits).
	n := 8
	mat := cfg.TrafficMatrix(n, tokens, 1)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			want := uint64(0)
			if mat[a][b] > 0 {
				want = 1
			}
			if got := e.gdaExp[a][b]; got != want {
				t.Fatalf("expectation %d->%d = %d, want %d", a, b, got, want)
			}
			if v := e.gdaSem[a][b].Value(); v != want {
				t.Fatalf("semaphore %d->%d = %d, want %d (signal issued but never consumed, or vice versa)", a, b, v, want)
			}
		}
	}
}

// TestRemainderConservation pins byte conservation for a token count not
// divisible by the GPU count: the aggregate dispatch volume over all ranks
// must be exactly tokens * TopK * Hidden * elemBytes, with the remainder
// split giving the first tokens%n ranks one extra token each.
func TestRemainderConservation(t *testing.T) {
	cfg := DefaultConfig()
	const n, tokens = 16, 4100 // 4100 % 16 = 4
	var total int64
	for r := 0; r < n; r++ {
		d := cfg.destBytes(n, r, tokens, 1)
		var row int64
		for _, b := range d {
			row += b
		}
		wantRow := int64(rankTokens(tokens, n, r)) * int64(cfg.TopK) * int64(cfg.Hidden)
		if row != wantRow {
			t.Fatalf("rank %d row total %d, want %d", r, row, wantRow)
		}
		total += row
	}
	want := int64(tokens) * int64(cfg.TopK) * int64(cfg.Hidden)
	if total != want {
		t.Fatalf("aggregate %d bytes, want %d (remainder tokens dropped?)", total, want)
	}
	// The split itself: first 4 ranks carry one extra token.
	for r := 0; r < n; r++ {
		want := tokens / n
		if r < tokens%n {
			want++
		}
		if got := rankTokens(tokens, n, r); got != want {
			t.Fatalf("rankTokens(%d, %d, %d) = %d, want %d", tokens, n, r, got, want)
		}
	}
}

// TestRemainderBytesMax asserts the engine-level symptom of the old bug is
// gone: 16 GPUs at 4100 tokens must move strictly more bytes than at 4096,
// not silently truncate to the 4096 volume.
func TestRemainderBytesMax(t *testing.T) {
	run := func(tokens int) int64 {
		e, err := New(topology.H100(2), DefaultConfig(), TransportIBGDA)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Dispatch(tokens)
		if err != nil {
			t.Fatal(err)
		}
		return res.BytesMax
	}
	if b4100, b4096 := run(4100), run(4096); b4100 <= b4096 {
		t.Fatalf("BytesMax(4100 tokens) = %d not > BytesMax(4096) = %d: remainder still dropped", b4100, b4096)
	}
}

// TestIBGDALockstep runs the same Dispatch/Combine sequence on two
// independent engines and asserts bit-identical timing per call plus
// semaphore expectations advancing in lockstep with the cumulative traffic
// matrix — the property that keeps successive all-to-alls from drifting
// when earlier phases leave expectations misaligned.
func TestIBGDALockstep(t *testing.T) {
	cfg := Config{Hidden: 64, TopK: 2, Experts: 16}
	tokensSeq := []int{5, 16, 7} // mixes non-divisible and divisible counts
	runSeq := func() (*Engine, []sim.Duration) {
		e, err := New(topology.H100(1), cfg, TransportIBGDA)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed []sim.Duration
		for _, tokens := range tokensSeq {
			d, err := e.Dispatch(tokens)
			if err != nil {
				t.Fatalf("dispatch %d: %v", tokens, err)
			}
			c, err := e.Combine(tokens)
			if err != nil {
				t.Fatalf("combine %d: %v", tokens, err)
			}
			elapsed = append(elapsed, d.Elapsed, c.Elapsed)
		}
		return e, elapsed
	}
	e1, t1 := runSeq()
	e2, t2 := runSeq()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("phase %d timing diverged across identical runs: %d vs %d ns", i, t1[i], t2[i])
		}
	}
	// Expectations must equal the cumulative count of nonzero off-diagonal
	// entries over all six phases (dispatch and combine share one matrix
	// sparsity pattern; elemBytes only scales values).
	n := 8
	want := make(map[[2]int]uint64)
	for _, tokens := range tokensSeq {
		mat := cfg.TrafficMatrix(n, tokens, 1)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && mat[a][b] > 0 {
					want[[2]int{a, b}] += 2 // dispatch + combine
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if got := e1.gdaExp[a][b]; got != want[[2]int{a, b}] {
				t.Fatalf("expectation %d->%d = %d, want %d after %d phases", a, b, got, want[[2]int{a, b}], 2*len(tokensSeq))
			}
			if e1.gdaExp[a][b] != e2.gdaExp[a][b] {
				t.Fatalf("expectation %d->%d diverged: %d vs %d", a, b, e1.gdaExp[a][b], e2.gdaExp[a][b])
			}
		}
	}
}

// TestSkewPlacementLoadFactor pins the imbalance model: uniform routing is
// near-balanced, hot-expert skew under block placement concentrates load
// on GPU 0, and the stride remap recovers most of the balance without
// changing aggregate volume.
func TestSkewPlacementLoadFactor(t *testing.T) {
	const n, tokens = 16, 4096
	uni := DefaultConfig()
	skew := uni
	skew.Skew = 0.5
	rebal := skew
	rebal.Placement = PlaceRebalance

	lfUni := uni.LoadFactor(n, tokens)
	lfSkew := skew.LoadFactor(n, tokens)
	lfRebal := rebal.LoadFactor(n, tokens)
	if lfUni < 1 || lfUni > 1.25 {
		t.Fatalf("uniform load factor %.3f not near 1", lfUni)
	}
	if lfSkew < 2 {
		t.Fatalf("skewed block-placement load factor %.3f shows no hot spot", lfSkew)
	}
	if lfRebal > (1+lfSkew)/2 {
		t.Fatalf("rebalanced load factor %.3f does not recover from skewed %.3f", lfRebal, lfSkew)
	}

	// Conservation is placement- and skew-invariant.
	var sums [3]int64
	for i, cfg := range []Config{uni, skew, rebal} {
		for r := 0; r < n; r++ {
			for _, b := range cfg.destBytes(n, r, tokens, 1) {
				sums[i] += b
			}
		}
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("skew/placement changed aggregate volume: %v", sums)
	}
}

// FuzzDestBytes fuzzes the routing split for byte conservation: for any
// valid (config, cluster, token count), the aggregate volume over all
// ranks is exactly tokens * TopK * Hidden * elemBytes and the load factor
// stays in [1, n].
func FuzzDestBytes(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(8), uint16(7168), uint16(4100), uint16(0), false)
	f.Add(uint8(8), uint8(1), uint8(1), uint16(16), uint16(3), uint16(500), true)
	f.Add(uint8(2), uint8(4), uint8(3), uint16(64), uint16(65535), uint16(1000), false)
	f.Fuzz(func(t *testing.T, n8, epg8, topk8 uint8, hidden16, tokens16, skewMille uint16, rebalance bool) {
		n := int(n8%63) + 2     // 2..64 GPUs
		epg := int(epg8%32) + 1 // experts per GPU
		experts := n * epg      // divisibility by construction
		topk := int(topk8)%experts + 1
		hidden := int(hidden16)%8192 + 1
		tokens := int(tokens16) % 5000
		cfg := Config{
			Hidden:  hidden,
			TopK:    topk,
			Experts: experts,
			Skew:    float64(skewMille%1001) / 1000,
		}
		if rebalance {
			cfg.Placement = PlaceRebalance
		}
		if err := cfg.validate(n); err != nil {
			t.Fatalf("sanitized config invalid: %v", err)
		}
		const elemBytes = 2
		var total int64
		for r := 0; r < n; r++ {
			for p, b := range cfg.destBytes(n, r, tokens, elemBytes) {
				if b < 0 {
					t.Fatalf("negative bytes %d toward %d", b, p)
				}
				total += b
			}
		}
		want := int64(tokens) * int64(topk) * int64(hidden) * elemBytes
		if total != want {
			t.Fatalf("aggregate %d bytes, want %d (n=%d topk=%d hidden=%d tokens=%d skew=%g)",
				total, want, n, topk, hidden, tokens, cfg.Skew)
		}
		if tokens > 0 {
			lf := cfg.LoadFactor(n, tokens)
			if lf < 1 || lf > float64(n)+1e-9 {
				t.Fatalf("load factor %.3f outside [1, %d]", lf, n)
			}
		}
	})
}
