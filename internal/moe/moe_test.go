package moe

import (
	"testing"

	"mscclpp/internal/topology"
)

func TestEngineValidation(t *testing.T) {
	if _, err := New(topology.H100(2), Config{Hidden: 7168, TopK: 8, Experts: 100}, TransportMSCCLPP); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := New(topology.H100(2), DefaultConfig(), Transport("bogus")); err == nil {
		t.Fatal("expected transport error")
	}
}

func TestDestBytesUniformAndComplete(t *testing.T) {
	e, err := New(topology.H100(2), DefaultConfig(), TransportMSCCLPP)
	if err != nil {
		t.Fatal(err)
	}
	tokens := 4096
	d := e.Cfg.destBytes(16, 0, tokens, 1)
	var total int64
	for _, b := range d {
		total += b
	}
	perRank := tokens / 16
	want := int64(perRank * e.Cfg.TopK * e.Cfg.Hidden)
	if total != want {
		t.Fatalf("total bytes %d, want %d", total, want)
	}
	// Near-uniform: every destination within 3x of the mean.
	mean := total / 16
	for p, b := range d {
		if b < mean/3 || b > mean*3 {
			t.Fatalf("dest %d gets %d bytes, mean %d: routing too skewed", p, b, mean)
		}
	}
}

func TestDispatchCombineBothTransports(t *testing.T) {
	for _, tr := range []Transport{TransportMSCCLPP, TransportIBGDA} {
		e, err := New(topology.H100(2), DefaultConfig(), tr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Dispatch(2048)
		if err != nil {
			t.Fatalf("%s dispatch: %v", tr, err)
		}
		if res.Elapsed <= 0 || res.AlgoBWGBs <= 0 {
			t.Fatalf("%s dispatch: %+v", tr, res)
		}
		resC, err := e.Combine(2048)
		if err != nil {
			t.Fatalf("%s combine: %v", tr, err)
		}
		// Combine moves 2x the bytes (BF16 vs FP8).
		if resC.BytesMax != 2*res.BytesMax {
			t.Fatalf("%s: combine bytes %d != 2x dispatch bytes %d", tr, resC.BytesMax, res.BytesMax)
		}
	}
}

// Figure 13 shape: bandwidth grows with batch and saturates near the NIC
// rate; MSCCL++ and IBGDA show no noticeable difference at saturation.
func TestFigure13Shape(t *testing.T) {
	bwAt := func(tr Transport, tokens int) float64 {
		e, err := New(topology.H100(2), DefaultConfig(), tr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Dispatch(tokens)
		if err != nil {
			t.Fatal(err)
		}
		return res.AlgoBWGBs
	}
	smallM := bwAt(TransportMSCCLPP, 256)
	bigM := bwAt(TransportMSCCLPP, 32768)
	bigG := bwAt(TransportIBGDA, 32768)
	if bigM <= smallM {
		t.Fatalf("bandwidth should grow with batch: %f -> %f", smallM, bigM)
	}
	env := topology.H100(2)
	if bigM < 0.5*env.IBBW || bigM > 1.5*env.IBBW {
		t.Fatalf("saturated BW %.1f GB/s not near NIC rate %.1f", bigM, env.IBBW)
	}
	// Parity: within 10% at saturation.
	ratio := bigM / bigG
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("MSCCL++ (%.1f) vs IBGDA (%.1f) differ by more than 10%%", bigM, bigG)
	}
}
