package moe

// The exported-symbol documentation gate: `go doc mscclpp/internal/moe`
// must be self-explanatory, so every exported identifier needs a doc
// comment. CI additionally runs staticcheck's stylecheck comment rules on
// this package; this test keeps the gate in plain `go test` too.

import (
	"strings"
	"testing"

	"mscclpp/internal/doccheck"
)

func TestExportedSymbolsDocumented(t *testing.T) {
	missing, err := doccheck.Undocumented(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("internal/moe has undocumented exported symbols:\n  %s", strings.Join(missing, "\n  "))
	}
}
