// Package moe implements the DeepEP-style expert-parallel dispatch/combine
// communication of paper Section 7.3 and Figure 13: Mixture-of-Experts
// token routing across two H100 nodes (16 GPUs, 256 experts, top-k 8,
// FP8 dispatch and BF16 combine), over either MSCCL++ PortChannels (CPU
// proxy RDMA) or an NVSHMEM-IBGDA-style GPU-initiated RDMA stack.
package moe

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Transport selects the networking stack.
type Transport string

// Transports.
const (
	// TransportMSCCLPP routes cross-GPU traffic through MSCCL++
	// PortChannels (RDMA driven by the CPU proxy, paper Figure 4).
	TransportMSCCLPP Transport = "mscclpp"
	// TransportIBGDA models NVSHMEM's InfiniBand GPUDirect Async: the GPU
	// posts RDMA work requests directly to the NIC, bypassing the CPU.
	TransportIBGDA Transport = "nvshmem-ibgda"
)

// Config describes the expert-parallel layer (DeepSeek-V3 defaults).
type Config struct {
	Hidden  int // hidden size (7168)
	TopK    int // experts per token (8)
	Experts int // total experts (256)
}

// DefaultConfig returns the paper's DeepSeek-V3 setting.
func DefaultConfig() Config {
	return Config{Hidden: 7168, TopK: 8, Experts: 256}
}

// Engine is one expert-parallel communicator over a simulated cluster.
type Engine struct {
	M    *machine.Machine
	Cfg  Config
	mode Transport

	// MSCCL++ transport: pairwise port channels bound to token buffers.
	send map[int]map[int]*core.PortChannel
	recv map[int]map[int]*core.PortChannel
	// IBGDA transport: per-pair semaphores; puts are issued in-kernel.
	gdaSem  map[int]map[int]*sim.Semaphore
	gdaExp  map[int]map[int]uint64
	gdaLast map[int]map[int]sim.Time

	src []*mem.Buffer
	dst []*mem.Buffer
}

// maxTokensBytes bounds per-rank communication buffers (65536 tokens total,
// BF16): tokens/rank * topk * hidden * 2 fits in 512 MB virtual buffers.
const maxBufBytes = int64(1) << 30

// New builds an engine on env (expects 2 nodes of H100 for the paper
// setting, but any multi-GPU env works).
func New(env *topology.Env, cfg Config, mode Transport) (*Engine, error) {
	if env.TotalGPUs() < 2 {
		return nil, fmt.Errorf("moe: need at least 2 GPUs")
	}
	if cfg.Experts%env.TotalGPUs() != 0 {
		return nil, fmt.Errorf("moe: %d experts not divisible by %d GPUs", cfg.Experts, env.TotalGPUs())
	}
	m := machine.New(env)
	m.MaterializeLimit = 0 // throughput experiment: timing only
	e := &Engine{M: m, Cfg: cfg, mode: mode}
	n := env.TotalGPUs()
	for r := 0; r < n; r++ {
		e.src = append(e.src, m.Alloc(r, "moe.src", maxBufBytes))
		e.dst = append(e.dst, m.Alloc(r, "moe.dst", maxBufBytes))
	}
	comm := core.NewCommunicator(m)
	switch mode {
	case TransportMSCCLPP:
		e.send = make(map[int]map[int]*core.PortChannel)
		e.recv = make(map[int]map[int]*core.PortChannel)
		for r := 0; r < n; r++ {
			e.send[r] = make(map[int]*core.PortChannel)
			e.recv[r] = make(map[int]*core.PortChannel)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				ca, cb := comm.NewPortChannelPairEx(a, b, e.src[a], e.dst[b], e.src[b], e.dst[a])
				e.send[a][b], e.recv[b][a] = ca, cb
				e.send[b][a], e.recv[a][b] = cb, ca
			}
		}
	case TransportIBGDA:
		e.gdaSem = make(map[int]map[int]*sim.Semaphore)
		e.gdaExp = make(map[int]map[int]uint64)
		e.gdaLast = make(map[int]map[int]sim.Time)
		for r := 0; r < n; r++ {
			e.gdaSem[r] = make(map[int]*sim.Semaphore)
			e.gdaExp[r] = make(map[int]uint64)
			e.gdaLast[r] = make(map[int]sim.Time)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					e.gdaSem[a][b] = sim.NewSemaphore(m.Engine, fmt.Sprintf("ibgda/%d->%d", a, b))
					e.gdaLast[a][b] = 0
				}
			}
		}
	default:
		return nil, fmt.Errorf("moe: unknown transport %q", mode)
	}
	return e, nil
}

// ibgdaIssueCost is the in-kernel cost of posting one RDMA work request via
// IBGDA (doorbell write + WQE build), much cheaper than the proxy path.
const ibgdaIssueCost = 120

// gdaPut issues a GPU-initiated RDMA/DMA put from rank a to rank b.
func (e *Engine) gdaPut(k *machine.Kernel, a, b int, bytes int64) {
	k.Elapse(ibgdaIssueCost)
	var complete sim.Time
	if e.M.Fabric.SameNode(a, b) {
		complete = e.M.Fabric.DMA(k.Now(), a, b, bytes)
	} else {
		complete = e.M.Fabric.RDMA(k.Now(), a, b, bytes)
	}
	if complete < e.gdaLast[a][b] {
		complete = e.gdaLast[a][b]
	}
	e.gdaLast[a][b] = complete
	sem := e.gdaSem[a][b]
	e.M.Engine.At(complete+e.M.Model.SemSignalCost, func() { sem.Add(1) })
}

// destBytes computes how many bytes rank r sends to each destination for
// `tokens` total tokens: tokens are split evenly across ranks, each token
// activates TopK experts spread deterministically (near-uniformly) over all
// expert GPUs.
func (e *Engine) destBytes(r int, tokens int, elemBytes int64) []int64 {
	n := e.M.Env.TotalGPUs()
	perRank := tokens / n
	out := make([]int64, n)
	expertsPerGPU := e.Cfg.Experts / n
	for t := 0; t < perRank; t++ {
		for j := 0; j < e.Cfg.TopK; j++ {
			// Deterministic near-uniform expert choice.
			expert := (t*e.Cfg.TopK + j*37 + r*11) % e.Cfg.Experts
			out[expert/expertsPerGPU] += int64(e.Cfg.Hidden) * elemBytes
		}
	}
	return out
}

// Result reports one dispatch or combine phase.
type Result struct {
	Elapsed   sim.Duration
	BytesMax  int64   // max per-GPU bytes sent to remote/peer GPUs
	AlgoBWGBs float64 // BytesMax / Elapsed
}

// run executes one all-to-all phase moving elemBytes per hidden element.
func (e *Engine) run(tokens int, elemBytes int64, label string) (Result, error) {
	n := e.M.Env.TotalGPUs()
	start := e.M.Engine.Now()
	var maxBytes int64
	for r := 0; r < n; r++ {
		r := r
		dests := e.destBytes(r, tokens, elemBytes)
		var total int64
		for p, b := range dests {
			if p != r {
				total += b
			}
		}
		if total > maxBytes {
			maxBytes = total
		}
		e.M.GPUs[r].Launch(label, 1, func(k *machine.Kernel) {
			// Local experts: HBM pass.
			if dests[r] > 0 {
				k.LocalCopy(dests[r], 4)
			}
			switch e.mode {
			case TransportMSCCLPP:
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.send[r][p].PutWithSignal(k, 0, 0, dests[p], 0, 1)
				}
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.recv[r][p].Wait(k)
				}
			case TransportIBGDA:
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.gdaPut(k, r, p, dests[p])
				}
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.gdaExp[p][r]++
					e.gdaSem[p][r].WaitGE(k.P, e.gdaExp[p][r])
					k.Elapse(k.Model().SemWaitWake)
				}
			}
		})
	}
	if err := e.M.Run(); err != nil {
		return Result{}, err
	}
	elapsed := e.M.Engine.Now() - start
	bw := 0.0
	if elapsed > 0 {
		bw = float64(maxBytes) / float64(elapsed)
	}
	return Result{Elapsed: elapsed, BytesMax: maxBytes, AlgoBWGBs: bw}, nil
}

// Dispatch routes tokens to experts in FP8 (1 byte/element).
func (e *Engine) Dispatch(tokens int) (Result, error) {
	return e.run(tokens, 1, "moe-dispatch")
}

// Combine returns expert outputs to token owners in BF16 (2 bytes/element).
func (e *Engine) Combine(tokens int) (Result, error) {
	return e.run(tokens, 2, "moe-combine")
}

// Counters snapshots the all-to-all paths' resource counters: the DMA
// engines (intra-node puts) and RDMA NICs (cross-node puts) every
// dispatch/combine kernel occupied, plus the rest of the cluster fabric.
func (e *Engine) Counters() []sim.CounterGroup { return e.M.Counters() }

// Paper13Env returns the Figure 13 environment (two H100 nodes).
func Paper13Env() *topology.Env { return topology.H100(2) }
