// Package moe implements the DeepEP-style expert-parallel dispatch/combine
// communication of paper Section 7.3 and Figure 13: Mixture-of-Experts
// token routing across two H100 nodes (16 GPUs, 256 experts, top-k 8,
// FP8 dispatch and BF16 combine), over either MSCCL++ PortChannels (CPU
// proxy RDMA) or an NVSHMEM-IBGDA-style GPU-initiated RDMA stack.
//
// Beyond the Figure 13 bandwidth curves, the package models deterministic
// expert imbalance (Config.Skew routes a fixed fraction of activations to
// a hot expert set) and an expert-placement knob (Config.Placement:
// uniform block placement vs a skew-aware stride remap), which the serving
// layer prices expert-parallel decode iterations against.
package moe

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Transport selects the networking stack.
type Transport string

// Transports.
const (
	// TransportMSCCLPP routes cross-GPU traffic through MSCCL++
	// PortChannels (RDMA driven by the CPU proxy, paper Figure 4).
	TransportMSCCLPP Transport = "mscclpp"
	// TransportIBGDA models NVSHMEM's InfiniBand GPUDirect Async: the GPU
	// posts RDMA work requests directly to the NIC, bypassing the CPU.
	TransportIBGDA Transport = "nvshmem-ibgda"
)

// Placement selects the expert-to-GPU map.
type Placement int

// Placements. PlaceUniform is the zero value.
const (
	// PlaceUniform assigns contiguous expert blocks: expert e lives on GPU
	// e / (Experts/n). Under hot-expert skew the entire hot set (experts
	// 0..TopK-1) co-locates on GPU 0, concentrating the imbalance.
	PlaceUniform Placement = iota
	// PlaceRebalance is the skew-aware remap: expert e lives on GPU e % n,
	// striding the hot set across the cluster so no single GPU absorbs the
	// skewed traffic. Per-GPU expert counts stay exactly Experts/n.
	PlaceRebalance
)

// Config describes the expert-parallel layer (DeepSeek-V3 defaults).
type Config struct {
	Hidden  int // hidden size (7168)
	TopK    int // experts per token (8)
	Experts int // total experts (256)

	// Skew is the deterministic hot-expert imbalance: the fraction (0..1)
	// of routed activations redirected to the hot expert set — experts
	// 0..TopK-1, one hot expert per top-k slot so a token's experts stay
	// distinct. Zero (the default) keeps the near-uniform routing of the
	// Figure 13 setting.
	Skew float64
	// Placement selects the expert-to-GPU map (uniform block placement vs
	// the skew-aware stride remap). Irrelevant to aggregate volume, decisive
	// for where skewed traffic lands.
	Placement Placement
}

// DefaultConfig returns the paper's DeepSeek-V3 setting.
func DefaultConfig() Config {
	return Config{Hidden: 7168, TopK: 8, Experts: 256}
}

// validate checks the config against an n-GPU cluster.
func (c Config) validate(n int) error {
	switch {
	case c.Hidden < 1:
		return fmt.Errorf("moe: Hidden = %d", c.Hidden)
	case c.TopK < 1 || c.TopK > c.Experts:
		return fmt.Errorf("moe: TopK = %d of %d experts", c.TopK, c.Experts)
	case c.Experts%n != 0:
		return fmt.Errorf("moe: %d experts not divisible by %d GPUs", c.Experts, n)
	case c.Skew < 0 || c.Skew > 1:
		return fmt.Errorf("moe: Skew = %g outside [0, 1]", c.Skew)
	case c.Placement != PlaceUniform && c.Placement != PlaceRebalance:
		return fmt.Errorf("moe: Placement = %d", c.Placement)
	}
	return nil
}

// rankTokens returns how many of `tokens` batch tokens rank r owns: tokens
// split as evenly as possible, with the first tokens%n ranks carrying one
// extra token each. This is the documented deterministic remainder split —
// no token is ever dropped, so aggregate dispatch volume is exactly
// tokens * TopK * Hidden * elemBytes regardless of divisibility.
func rankTokens(tokens, n, r int) int {
	per := tokens / n
	if r < tokens%n {
		per++
	}
	return per
}

// expertOf returns the expert serving activation (r, t, j): token t on
// rank r, top-k slot j. The base choice is the deterministic near-uniform
// hash (t*TopK + j*37 + r*11) mod Experts; with Skew > 0 a fixed fraction
// of activations (selected by a deterministic hash, well-mixed across
// ranks, tokens and slots) is redirected to hot expert j.
func (c Config) expertOf(r, t, j int) int {
	if c.Skew > 0 {
		h := (uint64(t)*1000003 + uint64(j)*7919 + uint64(r)*104729) % 1000
		if h < uint64(c.Skew*1000+0.5) {
			return j
		}
	}
	return (t*c.TopK + j*37 + r*11) % c.Experts
}

// gpuOf returns the GPU hosting an expert under the configured placement.
func (c Config) gpuOf(expert, n int) int {
	if c.Placement == PlaceRebalance {
		return expert % n
	}
	return expert / (c.Experts / n)
}

// destBytes computes how many bytes rank r sends to each destination GPU
// for its share of `tokens` total tokens: each of the rank's tokens
// (rankTokens split) activates TopK experts whose placement decides the
// destination.
func (c Config) destBytes(n, r, tokens int, elemBytes int64) []int64 {
	out := make([]int64, n)
	for t := 0; t < rankTokens(tokens, n, r); t++ {
		for j := 0; j < c.TopK; j++ {
			out[c.gpuOf(c.expertOf(r, t, j), n)] += int64(c.Hidden) * elemBytes
		}
	}
	return out
}

// TrafficMatrix returns the full n-by-n all-to-all byte matrix of one
// phase moving elemBytes per hidden element: mat[src][dst] is what src
// puts into dst (the diagonal is the local-expert HBM pass). One phase's
// sender loops and receive-wait loops are both driven from this single
// matrix, so every put has a matching wait by construction — the
// column mat[*][r] is exactly the set of peers rank r must wait for.
func (c Config) TrafficMatrix(n, tokens int, elemBytes int64) [][]int64 {
	mat := make([][]int64, n)
	for r := 0; r < n; r++ {
		mat[r] = c.destBytes(n, r, tokens, elemBytes)
	}
	return mat
}

// LoadFactor reports the expert-compute imbalance of this routing over an
// n-GPU cluster at a batch of `tokens`: the hottest GPU's received
// activation count over the per-GPU mean (1.0 = perfectly balanced,
// n = everything on one GPU). The serving layer scales the routed-expert
// FLOPs of an expert-parallel decode step by this factor — the batch is
// not done until the hottest GPU is.
func (c Config) LoadFactor(n, tokens int) float64 {
	if tokens < 1 || n < 1 {
		return 1
	}
	recv := make([]int64, n)
	var total int64
	for r := 0; r < n; r++ {
		for t := 0; t < rankTokens(tokens, n, r); t++ {
			for j := 0; j < c.TopK; j++ {
				recv[c.gpuOf(c.expertOf(r, t, j), n)]++
				total++
			}
		}
	}
	var max int64
	for _, v := range recv {
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(n) / float64(total)
}

// Engine is one expert-parallel communicator over a simulated cluster.
type Engine struct {
	M    *machine.Machine
	Cfg  Config
	mode Transport

	// MSCCL++ transport: pairwise port channels bound to token buffers.
	send map[int]map[int]*core.PortChannel
	recv map[int]map[int]*core.PortChannel
	// IBGDA transport: per-pair semaphores; puts are issued in-kernel.
	gdaSem  map[int]map[int]*sim.Semaphore
	gdaExp  map[int]map[int]uint64
	gdaLast map[int]map[int]sim.Time

	src []*mem.Buffer
	dst []*mem.Buffer

	// waits counts, per rank, the receive-waits the last run executed —
	// the per-rank peer set derived from the traffic-matrix column. Tests
	// pin these against the matrix to keep put/wait symmetry honest.
	waits []int
}

// maxTokensBytes bounds per-rank communication buffers (65536 tokens total,
// BF16): tokens/rank * topk * hidden * 2 fits in 512 MB virtual buffers.
const maxBufBytes = int64(1) << 30

// New builds an engine on env (expects 2 nodes of H100 for the paper
// setting, but any multi-GPU env works).
func New(env *topology.Env, cfg Config, mode Transport) (*Engine, error) {
	if env.TotalGPUs() < 2 {
		return nil, fmt.Errorf("moe: need at least 2 GPUs")
	}
	if err := cfg.validate(env.TotalGPUs()); err != nil {
		return nil, err
	}
	m := machine.New(env)
	m.MaterializeLimit = 0 // throughput experiment: timing only
	e := &Engine{M: m, Cfg: cfg, mode: mode}
	n := env.TotalGPUs()
	for r := 0; r < n; r++ {
		e.src = append(e.src, m.Alloc(r, "moe.src", maxBufBytes))
		e.dst = append(e.dst, m.Alloc(r, "moe.dst", maxBufBytes))
	}
	comm := core.NewCommunicator(m)
	switch mode {
	case TransportMSCCLPP:
		e.send = make(map[int]map[int]*core.PortChannel)
		e.recv = make(map[int]map[int]*core.PortChannel)
		for r := 0; r < n; r++ {
			e.send[r] = make(map[int]*core.PortChannel)
			e.recv[r] = make(map[int]*core.PortChannel)
		}
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				ca, cb := comm.NewPortChannelPairEx(a, b, e.src[a], e.dst[b], e.src[b], e.dst[a])
				e.send[a][b], e.recv[b][a] = ca, cb
				e.send[b][a], e.recv[a][b] = cb, ca
			}
		}
	case TransportIBGDA:
		e.gdaSem = make(map[int]map[int]*sim.Semaphore)
		e.gdaExp = make(map[int]map[int]uint64)
		e.gdaLast = make(map[int]map[int]sim.Time)
		for r := 0; r < n; r++ {
			e.gdaSem[r] = make(map[int]*sim.Semaphore)
			e.gdaExp[r] = make(map[int]uint64)
			e.gdaLast[r] = make(map[int]sim.Time)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b {
					e.gdaSem[a][b] = sim.NewSemaphore(m.Engine, fmt.Sprintf("ibgda/%d->%d", a, b))
					e.gdaLast[a][b] = 0
				}
			}
		}
	default:
		return nil, fmt.Errorf("moe: unknown transport %q", mode)
	}
	return e, nil
}

// ibgdaIssueCost is the in-kernel cost of posting one RDMA work request via
// IBGDA (doorbell write + WQE build), much cheaper than the proxy path.
const ibgdaIssueCost = 120

// gdaPut issues a GPU-initiated RDMA/DMA put from rank a to rank b.
func (e *Engine) gdaPut(k *machine.Kernel, a, b int, bytes int64) {
	k.Elapse(ibgdaIssueCost)
	var complete sim.Time
	if e.M.Fabric.SameNode(a, b) {
		complete = e.M.Fabric.DMA(k.Now(), a, b, bytes)
	} else {
		complete = e.M.Fabric.RDMA(k.Now(), a, b, bytes)
	}
	if complete < e.gdaLast[a][b] {
		complete = e.gdaLast[a][b]
	}
	e.gdaLast[a][b] = complete
	sem := e.gdaSem[a][b]
	e.M.Engine.At(complete+e.M.Model.SemSignalCost, func() { sem.Add(1) })
}

// Result reports one dispatch or combine phase.
type Result struct {
	Elapsed   sim.Duration
	BytesMax  int64   // max per-GPU bytes sent to remote/peer GPUs
	AlgoBWGBs float64 // BytesMax / Elapsed
}

// run executes one all-to-all phase moving elemBytes per hidden element.
// The full n-by-n traffic matrix is computed once up front and drives both
// directions of the exchange: rank r puts along row mat[r] and waits along
// column mat[*][r], so a put issued toward r is always matched by a wait
// on r — including under asymmetric traffic (small or non-divisible token
// counts, skewed routing), where a rank's send set and receive set differ.
func (e *Engine) run(tokens int, elemBytes int64, label string) (Result, error) {
	n := e.M.Env.TotalGPUs()
	mat := e.Cfg.TrafficMatrix(n, tokens, elemBytes)
	start := e.M.Engine.Now()
	var maxBytes int64
	e.waits = make([]int, n)
	for r := 0; r < n; r++ {
		r := r
		dests := mat[r]
		var total int64
		for p, b := range dests {
			if p != r {
				total += b
			}
		}
		if total > maxBytes {
			maxBytes = total
		}
		e.M.GPUs[r].Launch(label, 1, func(k *machine.Kernel) {
			// Local experts: HBM pass.
			if dests[r] > 0 {
				k.LocalCopy(dests[r], 4)
			}
			switch e.mode {
			case TransportMSCCLPP:
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.send[r][p].PutWithSignal(k, 0, 0, dests[p], 0, 1)
				}
				for p := 0; p < n; p++ {
					if p == r || mat[p][r] == 0 {
						continue
					}
					e.waits[r]++
					e.recv[r][p].Wait(k)
				}
			case TransportIBGDA:
				for p := 0; p < n; p++ {
					if p == r || dests[p] == 0 {
						continue
					}
					e.gdaPut(k, r, p, dests[p])
				}
				for p := 0; p < n; p++ {
					if p == r || mat[p][r] == 0 {
						continue
					}
					e.waits[r]++
					e.gdaExp[p][r]++
					e.gdaSem[p][r].WaitGE(k.P, e.gdaExp[p][r])
					k.Elapse(k.Model().SemWaitWake)
				}
			}
		})
	}
	if err := e.M.Run(); err != nil {
		return Result{}, err
	}
	elapsed := e.M.Engine.Now() - start
	bw := 0.0
	if elapsed > 0 {
		bw = float64(maxBytes) / float64(elapsed)
	}
	return Result{Elapsed: elapsed, BytesMax: maxBytes, AlgoBWGBs: bw}, nil
}

// Dispatch routes tokens to experts in FP8 (1 byte/element).
func (e *Engine) Dispatch(tokens int) (Result, error) {
	return e.run(tokens, 1, "moe-dispatch")
}

// Combine returns expert outputs to token owners in BF16 (2 bytes/element).
func (e *Engine) Combine(tokens int) (Result, error) {
	return e.run(tokens, 2, "moe-combine")
}

// Counters snapshots the all-to-all paths' resource counters: the DMA
// engines (intra-node puts) and RDMA NICs (cross-node puts) every
// dispatch/combine kernel occupied, plus the rest of the cluster fabric.
func (e *Engine) Counters() []sim.CounterGroup { return e.M.Counters() }

// Paper13Env returns the Figure 13 environment (two H100 nodes).
func Paper13Env() *topology.Env { return topology.H100(2) }
