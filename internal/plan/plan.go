// Package plan defines the execution-plan IR that MSCCL++ DSL programs
// lower to (paper §5.3): a JSON-serializable description of channels,
// scratch buffers, semaphores and the per-thread-block operation streams
// that the DSL Executor interprets.
package plan

import (
	"encoding/json"
	"fmt"
)

// OpCode enumerates executable operations.
type OpCode string

// Operation codes. Channel ops reference Channels[op.Channel]; local ops
// run on the thread block's own GPU.
const (
	OpPut           OpCode = "put"
	OpPutPackets    OpCode = "put_packets"
	OpPutWithSignal OpCode = "put_with_signal" // fused by lowering
	OpReducePut     OpCode = "reduce_put"      // fused by lowering
	OpSignal        OpCode = "signal"
	OpWait          OpCode = "wait"
	OpFlush         OpCode = "flush"
	OpAwaitPackets  OpCode = "await_packets"
	OpChanReduce    OpCode = "chan_reduce" // read remote, accumulate local
	OpLocalCopy     OpCode = "local_copy"
	OpLocalReduce   OpCode = "local_reduce"
	OpTBSync        OpCode = "tb_sync"      // inserted by dependence analysis
	OpGridBarrier   OpCode = "grid_barrier" // device-wide barrier
	OpSwitchReduce  OpCode = "switch_reduce"
	OpSwitchBcast   OpCode = "switch_broadcast"
)

// BufKind names the three buffer classes a plan references.
type BufKind string

// Buffer classes.
const (
	BufInput   BufKind = "input"
	BufOutput  BufKind = "output"
	BufScratch BufKind = "scratch"
)

// BufRef identifies a buffer on a specific rank.
type BufRef struct {
	Kind  BufKind `json:"kind"`
	Rank  int     `json:"rank"`
	Index int     `json:"index,omitempty"` // scratch buffer index on that rank
}

// Chunk is a byte range of a buffer.
type Chunk struct {
	Buf  BufRef `json:"buf"`
	Off  int64  `json:"off"`
	Size int64  `json:"size"`
}

// ChannelType matches the Primitive API channel kinds.
type ChannelType string

// Channel types.
const (
	ChanMemory ChannelType = "memory"
	ChanPort   ChannelType = "port"
	ChanSwitch ChannelType = "switch"
)

// Channel describes one directional DSL channel: puts flow SrcRank->DstRank
// reading SrcBuf and writing DstBuf; signal runs on the source rank and wait
// on the destination rank. Switch channels instead span Ranks over Bufs.
type Channel struct {
	ID      int         `json:"id"`
	Type    ChannelType `json:"type"`
	SrcRank int         `json:"src_rank"`
	DstRank int         `json:"dst_rank"`
	SrcBuf  BufRef      `json:"src_buf"`
	DstBuf  BufRef      `json:"dst_buf"`
	// Switch channels only:
	Ranks []int    `json:"ranks,omitempty"`
	Bufs  []BufRef `json:"bufs,omitempty"`
}

// Op is one interpreted operation.
type Op struct {
	Code    OpCode `json:"code"`
	Channel int    `json:"channel,omitempty"`
	Dst     Chunk  `json:"dst,omitempty"`
	Src     Chunk  `json:"src,omitempty"`
	Data    Chunk  `json:"data,omitempty"` // second operand of reduce_put
	Flag    uint64 `json:"flag,omitempty"`
	Target  uint64 `json:"target,omitempty"` // await_packets byte target
	// Thread-block-group sharding: this op moves the GroupRank-th of
	// GroupSize shards (GroupSize 0/1 means the whole range).
	GroupRank int `json:"group_rank,omitempty"`
	GroupSize int `json:"group_size,omitempty"`
}

// Scratch declares a scratch buffer to allocate on a rank.
type Scratch struct {
	Rank  int   `json:"rank"`
	Index int   `json:"index"`
	Size  int64 `json:"size"`
}

// Plan is a lowered DSL program for concrete sizes and rank counts.
type Plan struct {
	Name       string    `json:"name"`
	Collective string    `json:"collective"`
	Ranks      int       `json:"ranks"`
	NumTB      int       `json:"num_tb"` // thread blocks per rank
	InSize     int64     `json:"in_size"`
	OutSize    int64     `json:"out_size"`
	MaxFlag    uint64    `json:"max_flag"` // highest LL flag used (for re-issue)
	Channels   []Channel `json:"channels"`
	Scratch    []Scratch `json:"scratch"`
	// Programs[rank][tb] is the op stream of one thread block.
	Programs [][][]Op `json:"programs"`
}

// Marshal renders the plan as indented JSON.
func (p *Plan) Marshal() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Unmarshal parses a JSON plan.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate performs structural checks.
func (p *Plan) Validate() error {
	if p.Ranks < 1 || p.NumTB < 1 {
		return fmt.Errorf("plan %s: ranks=%d numTB=%d", p.Name, p.Ranks, p.NumTB)
	}
	if len(p.Programs) != p.Ranks {
		return fmt.Errorf("plan %s: %d rank programs for %d ranks", p.Name, len(p.Programs), p.Ranks)
	}
	for r, tbs := range p.Programs {
		if len(tbs) != p.NumTB {
			return fmt.Errorf("plan %s: rank %d has %d TB programs, want %d", p.Name, r, len(tbs), p.NumTB)
		}
	}
	scratchSize := map[[2]int]int64{}
	for _, s := range p.Scratch {
		if s.Rank < 0 || s.Rank >= p.Ranks || s.Size <= 0 {
			return fmt.Errorf("plan %s: bad scratch %+v", p.Name, s)
		}
		scratchSize[[2]int{s.Rank, s.Index}] = s.Size
	}
	bufSize := func(b BufRef) (int64, error) {
		switch b.Kind {
		case BufInput:
			return p.InSize, nil
		case BufOutput:
			return p.OutSize, nil
		case BufScratch:
			sz, ok := scratchSize[[2]int{b.Rank, b.Index}]
			if !ok {
				return 0, fmt.Errorf("undeclared scratch %d on rank %d", b.Index, b.Rank)
			}
			return sz, nil
		}
		return 0, fmt.Errorf("unknown buffer kind %q", b.Kind)
	}
	checkChunk := func(c Chunk) error {
		if c.Size == 0 && c.Off == 0 {
			return nil // absent operand
		}
		sz, err := bufSize(c.Buf)
		if err != nil {
			return err
		}
		if c.Off < 0 || c.Size < 0 || c.Off+c.Size > sz {
			return fmt.Errorf("chunk [%d,%d) out of %s buffer (size %d)", c.Off, c.Off+c.Size, c.Buf.Kind, sz)
		}
		return nil
	}
	for ci, ch := range p.Channels {
		if ch.ID != ci {
			return fmt.Errorf("plan %s: channel %d has id %d", p.Name, ci, ch.ID)
		}
		if ch.Type != ChanSwitch {
			if ch.SrcRank == ch.DstRank || ch.SrcRank < 0 || ch.DstRank < 0 ||
				ch.SrcRank >= p.Ranks || ch.DstRank >= p.Ranks {
				return fmt.Errorf("plan %s: channel %d ranks (%d,%d)", p.Name, ci, ch.SrcRank, ch.DstRank)
			}
		}
	}
	for r, tbs := range p.Programs {
		for tb, ops := range tbs {
			for oi, op := range ops {
				if op.Channel < 0 || (op.Channel >= len(p.Channels) && chanOp(op.Code)) {
					return fmt.Errorf("plan %s: rank %d tb %d op %d: channel %d out of range",
						p.Name, r, tb, oi, op.Channel)
				}
				for _, ck := range []Chunk{op.Dst, op.Src, op.Data} {
					if err := checkChunk(ck); err != nil {
						return fmt.Errorf("plan %s: rank %d tb %d op %d (%s): %w",
							p.Name, r, tb, oi, op.Code, err)
					}
				}
			}
		}
	}
	return nil
}

func chanOp(c OpCode) bool {
	switch c {
	case OpPut, OpPutPackets, OpPutWithSignal, OpReducePut, OpSignal, OpWait,
		OpFlush, OpAwaitPackets, OpChanReduce, OpSwitchReduce, OpSwitchBcast:
		return true
	}
	return false
}

// OpCount returns the total number of ops across all programs.
func (p *Plan) OpCount() int {
	n := 0
	for _, tbs := range p.Programs {
		for _, ops := range tbs {
			n += len(ops)
		}
	}
	return n
}
