// Package proxy implements the CPU-side proxy service that drives
// PortChannel data transfers (paper Figure 4).
//
// Each PortChannel owns a proxy Service: a simulated CPU thread that drains
// a bounded FIFO request queue shared with the GPU. The GPU pushes put /
// signal / flush requests by writing at the queue head; the CPU thread polls
// the tail, decodes requests, initiates DMA/RDMA transfers, and completes
// flushes once all preceding transfers have finished.
package proxy

import (
	"fmt"

	"mscclpp/internal/sim"
)

// Kind discriminates proxy requests.
type Kind int

const (
	// KindPut asks the proxy to initiate a data transfer.
	KindPut Kind = iota
	// KindSignal asks the proxy to atomically bump the peer's semaphore,
	// ordered after all previously requested transfers.
	KindSignal
	// KindFlush asks the proxy to report (via the flush counter) once all
	// previously requested transfers have fully completed.
	KindFlush
	// KindPutSignal is the fused put_with_signal request: one FIFO element
	// carrying both a transfer and the trailing semaphore update.
	KindPutSignal
	// KindPutSignalFlush additionally completes a flush once the transfer
	// finishes (put_with_signal_and_flush).
	KindPutSignalFlush
)

func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindSignal:
		return "signal"
	case KindFlush:
		return "flush"
	case KindPutSignal:
		return "put_with_signal"
	case KindPutSignalFlush:
		return "put_with_signal_and_flush"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one element of the GPU->CPU FIFO.
type Request struct {
	Kind   Kind
	DstOff int64
	SrcOff int64
	Size   int64
}

// Handler processes one request in proxy-thread context. It may sleep the
// proxy process (e.g. a flush blocks the proxy until the CQ drains, delaying
// subsequent requests, exactly as in the paper).
type Handler func(p *sim.Proc, req Request)

// Config carries the cost-model constants the service charges.
type Config struct {
	Capacity   int          // FIFO slots; GPU pushes block when full
	PushCost   sim.Duration // GPU-side cost to write an element + bump head
	PollDelay  sim.Duration // CPU delay to notice a request on an idle queue
	HandleCost sim.Duration // CPU cost to decode + initiate one request
}

// Service is one proxy thread plus its FIFO.
type Service struct {
	name    string
	e       *sim.Engine
	cfg     Config
	handler Handler

	queue    []Request
	notEmpty *sim.Cond
	notFull  *sim.Cond

	// stats
	pushed  uint64
	handled uint64
}

// NewService spawns the proxy thread (a daemon process) and returns the
// service handle.
func NewService(e *sim.Engine, name string, cfg Config, h Handler) *Service {
	if cfg.Capacity < 1 {
		cfg.Capacity = 128
	}
	s := &Service{
		name:     name,
		e:        e,
		cfg:      cfg,
		handler:  h,
		notEmpty: sim.NewCond(e),
		notFull:  sim.NewCond(e),
	}
	p := e.Spawn("proxy/"+name, s.run)
	p.SetDaemon(true)
	return s
}

// Push appends a request from GPU context, blocking the calling thread block
// while the FIFO is full (the GPU checks head-tail distance before writing).
func (s *Service) Push(p *sim.Proc, req Request) {
	p.Wait(s.notFull, "proxy fifo full "+s.name, func() bool {
		return len(s.queue) < s.cfg.Capacity
	})
	p.Sleep(s.cfg.PushCost)
	s.queue = append(s.queue, req)
	s.pushed++
	s.notEmpty.Broadcast()
}

// Pending returns the number of queued requests (diagnostics).
func (s *Service) Pending() int { return len(s.queue) }

// Handled returns the number of requests processed so far.
func (s *Service) Handled() uint64 { return s.handled }

func (s *Service) run(p *sim.Proc) {
	for {
		if len(s.queue) == 0 {
			p.Wait(s.notEmpty, "proxy idle "+s.name, func() bool {
				return len(s.queue) > 0
			})
			// The queue was idle: charge the polling-granularity delay
			// before the CPU notices the new head value over PCIe.
			p.Sleep(s.cfg.PollDelay)
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		s.notFull.Broadcast()
		p.Sleep(s.cfg.HandleCost)
		s.handler(p, req)
		s.handled++
	}
}
