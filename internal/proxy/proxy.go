// Package proxy implements the CPU-side proxy service that drives
// PortChannel data transfers (paper Figure 4).
//
// Each PortChannel owns a proxy Service: a simulated CPU thread that drains
// a bounded FIFO request queue shared with the GPU. The GPU pushes put /
// signal / flush requests by writing at the queue head; the CPU thread polls
// the tail, decodes requests, initiates DMA/RDMA transfers, and completes
// flushes once all preceding transfers have finished.
//
// The proxy thread is purely reactive, so it is simulated as a callback
// state machine on the engine's event queue rather than a full Proc: each
// request costs two typed events (notice/handle) instead of a goroutine
// park/resume round-trip per FIFO operation. Timing is identical to the
// thread formulation: an idle proxy notices a push after PollDelay, charges
// HandleCost per request, and a stalling request (flush) delays all
// subsequent requests until it completes.
package proxy

import (
	"fmt"

	"mscclpp/internal/sim"
)

// Kind discriminates proxy requests.
type Kind int

const (
	// KindPut asks the proxy to initiate a data transfer.
	KindPut Kind = iota
	// KindSignal asks the proxy to atomically bump the peer's semaphore,
	// ordered after all previously requested transfers.
	KindSignal
	// KindFlush asks the proxy to report (via the flush counter) once all
	// previously requested transfers have fully completed.
	KindFlush
	// KindPutSignal is the fused put_with_signal request: one FIFO element
	// carrying both a transfer and the trailing semaphore update.
	KindPutSignal
	// KindPutSignalFlush additionally completes a flush once the transfer
	// finishes (put_with_signal_and_flush).
	KindPutSignalFlush
)

func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindSignal:
		return "signal"
	case KindFlush:
		return "flush"
	case KindPutSignal:
		return "put_with_signal"
	case KindPutSignalFlush:
		return "put_with_signal_and_flush"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one element of the GPU->CPU FIFO.
type Request struct {
	Kind   Kind
	DstOff int64
	SrcOff int64
	Size   int64
}

// Handler processes one request in proxy context at virtual time now. It
// schedules its own side effects (transfers, semaphore bumps) on the engine
// and returns the time at which the proxy is free to pick up the next
// request: now for fire-and-forget requests, later for stalling requests
// (e.g. a flush blocks the proxy until the CQ drains, delaying subsequent
// requests, exactly as in the paper).
type Handler func(now sim.Time, req Request) (busyUntil sim.Time)

// Config carries the cost-model constants the service charges.
type Config struct {
	Capacity   int          // FIFO slots; GPU pushes block when full
	PushCost   sim.Duration // GPU-side cost to write an element + bump head
	PollDelay  sim.Duration // CPU delay to notice a request on an idle queue
	HandleCost sim.Duration // CPU cost to decode + initiate one request
}

// Service is one proxy state machine plus its FIFO.
type Service struct {
	name    string
	e       *sim.Engine
	cfg     Config
	handler Handler

	queue   []Request
	head    int
	notFull *sim.Cond

	// running is true while a step/exec event chain is in flight; an idle
	// service is re-armed by the next Push.
	running bool
	cur     Request

	// cached callbacks and wait state, built once at construction so the
	// steady-state request path allocates nothing.
	stepFn     func()
	execFn     func()
	fullPred   func() bool
	fullReason string

	// stats
	pushed  uint64
	handled uint64
}

// NewService returns the service handle. No goroutine is spawned: the proxy
// thread exists only as events on the engine's queue.
func NewService(e *sim.Engine, name string, cfg Config, h Handler) *Service {
	if cfg.Capacity < 1 {
		cfg.Capacity = 128
	}
	s := &Service{
		name:       name,
		e:          e,
		cfg:        cfg,
		handler:    h,
		notFull:    sim.NewCond(e),
		fullReason: "proxy fifo full " + name,
	}
	s.stepFn = s.step
	s.execFn = s.exec
	s.fullPred = func() bool { return s.pending() < s.cfg.Capacity }
	return s
}

func (s *Service) pending() int { return len(s.queue) - s.head }

// Push appends a request from GPU context, blocking the calling thread block
// while the FIFO is full (the GPU checks head-tail distance before writing).
func (s *Service) Push(p *sim.Proc, req Request) {
	p.Wait(s.notFull, s.fullReason, s.fullPred)
	p.Sleep(s.cfg.PushCost)
	s.queue = append(s.queue, req)
	s.pushed++
	if !s.running {
		// The queue was idle: charge the polling-granularity delay before
		// the CPU notices the new head value over PCIe.
		s.running = true
		s.e.After(s.cfg.PollDelay, s.stepFn)
	}
}

// Pending returns the number of queued requests (diagnostics).
func (s *Service) Pending() int { return s.pending() }

// Handled returns the number of requests processed so far.
func (s *Service) Handled() uint64 { return s.handled }

// step picks up the next request, or parks the service when the queue is
// empty.
func (s *Service) step() {
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		s.running = false
		return
	}
	s.cur = s.queue[s.head]
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.notFull.Broadcast()
	s.e.After(s.cfg.HandleCost, s.execFn)
}

// exec runs the handler for the current request and chains to the next one
// once the proxy is free again.
func (s *Service) exec() {
	busy := s.handler(s.e.Now(), s.cur)
	s.handled++
	if busy > s.e.Now() {
		s.e.At(busy, s.stepFn)
		return
	}
	s.step()
}
