package proxy

// Timing-contract tests for the callback-based proxy state machine: the
// event formulation must charge exactly the same virtual-time costs as the
// original proxy-thread formulation (poll delay on an idle queue, handle
// cost per request, stalls delaying subsequent requests, and FIFO
// backpressure on a bounded queue).

import (
	"testing"

	"mscclpp/internal/sim"
)

var testCfg = Config{Capacity: 4, PushCost: 5, PollDelay: 10, HandleCost: 7}

func TestIdleQueueChargesPollDelay(t *testing.T) {
	e := sim.NewEngine()
	var handledAt []sim.Time
	svc := NewService(e, "t", testCfg, func(now sim.Time, req Request) sim.Time {
		handledAt = append(handledAt, now)
		return now
	})
	e.Spawn("gpu", func(p *sim.Proc) {
		p.Sleep(100)
		svc.Push(p, Request{Kind: KindSignal})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Push completes at 100+PushCost; the idle proxy notices after
	// PollDelay and handles after HandleCost.
	want := sim.Time(100 + testCfg.PushCost + testCfg.PollDelay + testCfg.HandleCost)
	if len(handledAt) != 1 || handledAt[0] != want {
		t.Fatalf("handledAt = %v, want [%d]", handledAt, want)
	}
	if svc.Handled() != 1 || svc.Pending() != 0 {
		t.Fatalf("handled=%d pending=%d", svc.Handled(), svc.Pending())
	}
}

func TestBusyQueueSkipsPollDelay(t *testing.T) {
	e := sim.NewEngine()
	var handledAt []sim.Time
	svc := NewService(e, "t", testCfg, func(now sim.Time, req Request) sim.Time {
		handledAt = append(handledAt, now)
		return now
	})
	e.Spawn("gpu", func(p *sim.Proc) {
		svc.Push(p, Request{Kind: KindSignal})
		svc.Push(p, Request{Kind: KindSignal})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(handledAt) != 2 {
		t.Fatalf("handled %d requests", len(handledAt))
	}
	// Second request is picked up back-to-back: only HandleCost apart, no
	// second poll delay.
	if handledAt[1]-handledAt[0] != testCfg.HandleCost {
		t.Fatalf("back-to-back spacing = %d, want %d", handledAt[1]-handledAt[0], testCfg.HandleCost)
	}
}

func TestStallDelaysSubsequentRequests(t *testing.T) {
	e := sim.NewEngine()
	const stall = 50
	var handledAt []sim.Time
	svc := NewService(e, "t", testCfg, func(now sim.Time, req Request) sim.Time {
		handledAt = append(handledAt, now)
		if req.Kind == KindFlush {
			return now + stall
		}
		return now
	})
	e.Spawn("gpu", func(p *sim.Proc) {
		svc.Push(p, Request{Kind: KindFlush})
		svc.Push(p, Request{Kind: KindSignal})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(handledAt) != 2 {
		t.Fatalf("handled %d requests", len(handledAt))
	}
	if got := handledAt[1] - handledAt[0]; got != stall+testCfg.HandleCost {
		t.Fatalf("post-stall spacing = %d, want %d", got, stall+testCfg.HandleCost)
	}
}

func TestBoundedQueueBackpressure(t *testing.T) {
	e := sim.NewEngine()
	cfg := Config{Capacity: 2, PushCost: 1, PollDelay: 10, HandleCost: 100}
	svc := NewService(e, "t", cfg, func(now sim.Time, req Request) sim.Time { return now })
	var pushDone []sim.Time
	e.Spawn("gpu", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			svc.Push(p, Request{Kind: KindSignal})
			pushDone = append(pushDone, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if svc.Handled() != 4 {
		t.Fatalf("handled = %d, want 4", svc.Handled())
	}
	// Pushes 1 and 2 land immediately; push 3 must wait until the proxy
	// drains a slot (well after the unconstrained pushes).
	if pushDone[1] != 2 {
		t.Fatalf("second push finished at %d, want 2", pushDone[1])
	}
	if pushDone[2] <= cfg.PollDelay {
		t.Fatalf("third push finished at %d, expected backpressure past the first drain", pushDone[2])
	}
}

func TestReIdleChargesPollDelayAgain(t *testing.T) {
	e := sim.NewEngine()
	var handledAt []sim.Time
	svc := NewService(e, "t", testCfg, func(now sim.Time, req Request) sim.Time {
		handledAt = append(handledAt, now)
		return now
	})
	e.Spawn("gpu", func(p *sim.Proc) {
		svc.Push(p, Request{Kind: KindSignal})
		p.Sleep(1000) // let the proxy drain and go idle
		svc.Push(p, Request{Kind: KindSignal})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(handledAt) != 2 {
		t.Fatalf("handled %d requests", len(handledAt))
	}
	push2Done := sim.Time(1000 + testCfg.PushCost + testCfg.PushCost)
	want := push2Done + testCfg.PollDelay + testCfg.HandleCost
	if handledAt[1] != want {
		t.Fatalf("re-idle handle at %d, want %d", handledAt[1], want)
	}
}
