package scenario

// The expert-parallel MoE serving artifact: DeepSeek-V3 served end-to-end
// with per-iteration dispatch/combine all-to-alls priced on the simulated
// fabric (internal/inference's MoE step functions over internal/moe),
// against the dense-equivalent card on the same traffic. Three in-run
// properties gate the artifact:
//
//  (a) at equal SLO the dense-equivalent model's goodput is never below
//      the MoE deployment's, and the MoE p99 TPOT is strictly above the
//      dense p99 TPOT on every environment — every MoE iteration pays a
//      strictly positive all-to-all;
//  (b) hot-expert skew under uniform (block) placement strictly degrades
//      p99 TPOT versus balanced routing;
//  (c) the skew-aware rebalancing remap recovers at least half of that
//      degradation.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/moe"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// moeServeCell runs one (environment, model) serving cell on the shared
// MoE traffic and returns its summary plus the counter snapshot.
func moeServeCell(envFn func() *topology.Env, model inference.Model, wl serve.Workload) (serve.Summary, *serve.Result, error) {
	cfg := serve.Config{
		Env:             envFn(),
		Model:           model,
		AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
		MaxBatch:        32,
		KVCapacityBytes: 1 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}
	if model.MoE != nil {
		cfg.A2A = inference.NewEPTimer(envFn, model.MoE.Config, model.MoE.Transport).Layer
	}
	res, err := serve.Run(cfg, wl)
	if err != nil {
		return serve.Summary{}, nil, err
	}
	return res.Summarize(serveSLO), res, nil
}

// a2aFrac extracts the expert-parallel all-to-all share of a replica's
// priced iteration time from its counter snapshot (0 for dense cells).
func a2aFrac(res *serve.Result) float64 {
	var gpu, a2a sim.Duration
	for _, g := range res.Counters {
		switch g.Name {
		case "gpu":
			gpu += g.Stats[0].BusyNs
		case "moe-dispatch", "moe-combine":
			a2a += g.Stats[0].BusyNs
		}
	}
	if gpu <= 0 {
		return 0
	}
	return float64(a2a) / float64(gpu)
}

// serveMoE: DeepSeek-V3 expert-parallel serving across the Table-2
// two-node environments (16 GPUs each), dense-equivalent vs MoE at equal
// SLO, then the imbalance sweep on 2x H100: balanced routing vs 50%
// hot-expert skew under block placement vs the same skew under the
// rebalancing remap.
func serveMoE(r *Report) error {
	// One arrival sequence for every cell: the comparisons isolate the
	// model/placement, never the workload.
	wl := serve.Poisson(13001, 96, 2.5,
		serve.LogNormalLen(768, 0.5, 2048), serve.LogNormalLen(96, 0.5, 256))

	envs := []struct {
		name string
		fn   func() *topology.Env
	}{
		{"A100-80G", func() *topology.Env { return topology.A100_80G(2) }},
		{"H100", func() *topology.Env { return topology.H100(2) }},
		{"MI300x", func() *topology.Env { return topology.MI300x(2) }},
	}

	skewed := inference.DeepSeekV3MoE(16)
	skewed.MoE.Config.Skew = 0.5
	rebalanced := inference.DeepSeekV3MoE(16)
	rebalanced.MoE.Config.Skew = 0.5
	rebalanced.MoE.Config.Placement = moe.PlaceRebalance

	// Cells 0..5: (env x {dense, moe-uniform}); cells 6..7: the H100
	// imbalance pair (skewed block placement, skew-aware rebalance).
	type cell struct {
		env   int
		model inference.Model
		label string
	}
	var cells []cell
	for ei := range envs {
		cells = append(cells,
			cell{ei, inference.DeepSeekV3(16), "dense"},
			cell{ei, inference.DeepSeekV3MoE(16), "moe"})
	}
	const h100 = 1
	cells = append(cells,
		cell{h100, skewed, "moe-skew"},
		cell{h100, rebalanced, "moe-rebalance"})

	sums := make([]serve.Summary, len(cells))
	results := make([]*serve.Result, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		sums[i], results[i], errs[i] = moeServeCell(envs[cells[i].env].fn, cells[i].model, wl)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Println("\nServing: DeepSeek-V3 expert-parallel MoE vs dense-equivalent (EP=16, two-node Table-2 environments, MSCCL++ AR + IBGDA all-to-all)")
	r.Println("96-request Poisson at 2.5 req/s; MoE: 256 experts top-8 over 58 layers, FP8 dispatch / BF16 combine; SLO: TTFT<=2s TPOT<=100ms")
	r.Printf("  %-10s %-14s %9s %9s %9s %9s %9s %7s %7s\n",
		"env", "model", "ttft p99", "tpot p50", "tpot p99", "tok/s", "goodput", "slo%", "a2a%")
	for i, c := range cells {
		s := sums[i]
		r.Printf("  %-10s %-14s %9.1f %9.1f %9.1f %9.0f %9.0f %6.1f%% %6.1f%%\n",
			envs[c.env].name, c.label, s.TTFTp99ms, s.TPOTp50ms, s.TPOTp99ms,
			s.ThroughputTokS, s.GoodputTokS, 100*s.SLOAttainment, 100*a2aFrac(results[i]))
		key := envs[c.env].name + " " + c.label
		recordServeSummary(r, key, s)
		r.Metric(key+" a2a_frac", "frac", a2aFrac(results[i]))
	}

	// (a) Dense-equivalent vs MoE at equal SLO, per environment: the MoE
	// deployment pays a strictly positive all-to-all every iteration, so
	// its p99 TPOT must sit strictly above dense and its goodput must not
	// exceed dense.
	for ei, e := range envs {
		dense, moeU := sums[2*ei], sums[2*ei+1]
		if moeU.TPOTp99ms <= dense.TPOTp99ms {
			return fmt.Errorf("moe property violated: %s MoE p99 TPOT %.2f ms not above dense-equivalent %.2f ms",
				e.name, moeU.TPOTp99ms, dense.TPOTp99ms)
		}
		if moeU.GoodputTokS > dense.GoodputTokS {
			return fmt.Errorf("moe property violated: %s MoE goodput %.0f tok/s exceeds dense-equivalent %.0f tok/s at equal SLO",
				e.name, moeU.GoodputTokS, dense.GoodputTokS)
		}
		if f := a2aFrac(results[2*ei+1]); f <= 0 {
			return fmt.Errorf("moe property violated: %s MoE cell booked no all-to-all time", e.name)
		}
	}

	// (b)+(c) The imbalance knob on 2x H100: skew under block placement
	// strictly degrades p99 TPOT, and the rebalancing remap recovers at
	// least half of the gap.
	uni, skw, reb := sums[2*h100+1], sums[len(sums)-2], sums[len(sums)-1]
	if skw.TPOTp99ms <= uni.TPOTp99ms {
		return fmt.Errorf("moe property violated: skewed placement p99 TPOT %.2f ms not above balanced %.2f ms",
			skw.TPOTp99ms, uni.TPOTp99ms)
	}
	gap := skw.TPOTp99ms - uni.TPOTp99ms
	if reb.TPOTp99ms > uni.TPOTp99ms+gap/2 {
		return fmt.Errorf("moe property violated: rebalancing recovers too little (balanced %.2f, skewed %.2f, rebalanced %.2f ms p99 TPOT)",
			uni.TPOTp99ms, skw.TPOTp99ms, reb.TPOTp99ms)
	}
	r.Printf("  imbalance (H100): p99 TPOT balanced %.1f ms -> skew 0.5 block %.1f ms; rebalance remap %.1f ms (recovers %.0f%% of the gap)\n",
		uni.TPOTp99ms, skw.TPOTp99ms, reb.TPOTp99ms, 100*(skw.TPOTp99ms-reb.TPOTp99ms)/gap)
	return nil
}
