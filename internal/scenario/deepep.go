package scenario

// Figure 13: DeepEP expert-parallel dispatch (FP8) and combine (BF16)
// bandwidth on two H100 nodes (16 GPUs, DeepSeek-V3 settings), comparing
// the NVSHMEM-IBGDA stack with MSCCL++ PortChannels. Ported from
// cmd/deepepbench, which is now a thin wrapper; printed text is
// byte-identical to the pre-registry command.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/moe"
)

func fig13(r *Report) error {
	cfg := moe.DefaultConfig()
	r.Println("Figure 13: DeepEP on two H100 nodes (16 GPUs, hidden 7168, top-k 8, 256 experts)")
	r.Printf("%-8s | %12s %12s | %12s %12s\n", "tokens",
		"disp NVSHMEM", "disp MSCCL++", "comb NVSHMEM", "comb MSCCL++")
	var tokenSizes []int
	for tokens := 128; tokens <= 65536; tokens *= 2 {
		tokenSizes = append(tokenSizes, tokens)
	}
	// Each (tokens, phase, transport) cell is an independent simulation with
	// its own engine; fan the whole grid out and print rows in order.
	phases := []string{"dispatch", "combine"}
	transports := []moe.Transport{moe.TransportIBGDA, moe.TransportMSCCLPP}
	cells := len(phases) * len(transports)
	bw := make([]float64, len(tokenSizes)*cells)
	errs := make([]error, len(tokenSizes)*cells)
	benchkit.Parallel(len(bw), func(idx int) {
		row, cell := idx/cells, idx%cells
		phase, tr := phases[cell/len(transports)], transports[cell%len(transports)]
		e, err := moe.New(moe.Paper13Env(), cfg, tr)
		if err != nil {
			errs[idx] = err
			return
		}
		var res moe.Result
		if phase == "dispatch" {
			res, err = e.Dispatch(tokenSizes[row])
		} else {
			res, err = e.Combine(tokenSizes[row])
		}
		if err != nil {
			errs[idx] = err
			return
		}
		bw[idx] = res.AlgoBWGBs
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	labels := []string{"dispatch nvshmem", "dispatch mscclpp", "combine nvshmem", "combine mscclpp"}
	for i, tokens := range tokenSizes {
		row := bw[i*cells : (i+1)*cells]
		r.Printf("%-8d | %9.1f GB/s %9.1f GB/s | %9.1f GB/s %9.1f GB/s\n",
			tokens, row[0], row[1], row[2], row[3])
		for c, label := range labels {
			r.Metric(fmt.Sprintf("%s tokens=%d", label, tokens), "GB/s", row[c])
		}
	}
	r.Println("(expected: curves rise and saturate near the 48.94 GB/s NIC rate;")
	r.Println(" MSCCL++ CPU-proxy RDMA shows no noticeable difference vs IBGDA)")
	return nil
}
