package scenario

// serve-autoscale: the control-plane economics artifact. Two tenants — a
// multi-turn interactive chat tenant riding a compressed diurnal day and
// a bursty batch tenant with a relaxed SLO — share one elastic fleet of
// Llama3-70B replicas under three scaling policies: static peak
// provisioning (the capacity-planning baseline), target-utilization, and
// the SLO-attainment PI controller. The in-run assertions pin the three
// properties the autoscaler exists for: the SLO policy holds the
// interactive tier's attainment floor, it does so on strictly fewer
// GPU-hours than static peak provisioning, and no graceful scale-down
// ever strands a resident request.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

const (
	// autoscaleFleetMax bounds the elastic fleet; the static baseline pins
	// here (peak provisioning).
	autoscaleFleetMax = 4
	// autoscaleInteractiveFloor is the in-run floor on the interactive
	// tier's end-of-day SLO attainment for the slo-pid cell — a notch
	// under the controller's own 0.95 objective to allow boot-lag misses
	// on the diurnal rising edge.
	autoscaleInteractiveFloor = 0.90
	// autoscaleDay is the compressed diurnal period.
	autoscaleDay = 600 * sim.Second
)

func serveAutoscale(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)

	// Tenant "chat": diurnal interactive traffic where every root request
	// expands into a 2-4 turn session (think-time gaps, growing prompts,
	// per-session prefix groups feeding the prefix cache).
	chat := serve.Diurnal(9101, 4300, 6, 0.2, autoscaleDay,
		serve.LogNormalLen(256, 0.6, 1024), serve.LogNormalLen(64, 0.5, 192))
	chat = serve.WithSessions(chat, 9102, 2, 4, 30*sim.Second, 3072)
	// Tenant "batch": bursty background jobs, longer prompts and outputs,
	// demoted to the relaxed priority-1 SLO.
	batch := serve.Bursty(9201, 2700, 1.5, 6, 300*sim.Second, 60*sim.Second,
		serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(96, 0.5, 256))
	for i := range batch.Requests {
		batch.Requests[i].Priority = 1
	}
	wl := serve.MergeWorkloads("two-tenant-day", chat, batch)

	tierSLOs := map[int]serve.SLO{1: batchSLO}
	base := routedReplica(timer.Time)
	// Streaming metrics: the control loop reads windowed attainment from
	// the per-tier sketch accumulators, so SLOs are replica configuration.
	base.Metrics = serve.MetricsStream
	base.SLO = serveSLO
	base.TierSLOs = tierSLOs

	cells := []struct {
		name string
		pol  func() serve.ScalePolicy
		init int
	}{
		// Static peak provisioning boots the whole fleet at time zero; the
		// elastic policies start mid-range and must earn their size.
		{"static-peak", func() serve.ScalePolicy { return serve.NewStaticScale(0) }, autoscaleFleetMax},
		{"target-util", func() serve.ScalePolicy { return serve.NewTargetUtilization(0) }, 2},
		{"slo-pid", func() serve.ScalePolicy { return serve.NewSLOPID(0, 0, 0) }, 2},
	}
	results := make([]*serve.AutoscaleResult, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		results[i], errs[i] = serve.RunAutoscaled(serve.AutoscaleConfig{
			Replica:         base,
			Policy:          cells[i].pol(),
			Router:          serve.NewJSQ(),
			MinReplicas:     1,
			MaxReplicas:     autoscaleFleetMax,
			InitialReplicas: cells[i].init,
			Interval:        20 * sim.Second,
			ProvisionDelay:  60 * sim.Second,
		}, wl)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Printf("\nAutoscaling: 2 tenants over a compressed diurnal day (%d requests, period %ds), fleet 1..%d Llama3-70B TP=8 replicas\n",
		len(wl.Requests), autoscaleDay/sim.Second, autoscaleFleetMax)
	r.Println("chat: diurnal 2-4 turn sessions with prefix reuse (interactive SLO); batch: bursty long-form jobs (relaxed SLO); 20s control interval, 60s provisioning delay")
	r.Printf("  %-12s %5s %5s %6s %8s %8s %9s %8s %8s %8s %7s %7s\n",
		"policy", "peak", "mean", "gpu-h", "$/Mtok", "tok/gpuh", "goodput", "int slo%", "bat slo%", "ttft p99", "up/down", "drains")
	sums := make([]serve.Summary, len(cells))
	for i, c := range cells {
		res := results[i]
		s := res.Merged.SummarizeTiered(serveSLO, tierSLOs)
		sums[i] = s
		tier := func(p int) serve.TierSummary {
			for _, ts := range s.ByTier {
				if ts.Priority == p {
					return ts
				}
			}
			return serve.TierSummary{}
		}
		it, bt := tier(0), tier(1)
		e := res.Econ
		r.Printf("  %-12s %5d %5.2f %6.1f %8.3f %8.0f %9.0f %7.1f%% %7.1f%% %8.1f %4d/%-3d %7d\n",
			c.name, e.PeakReplicas, e.MeanReplicas, e.GPUHours, e.CostPerMTok,
			e.GoodputPerGPUHour, s.GoodputTokS, 100*it.SLOAttainment, 100*bt.SLOAttainment,
			s.TTFTp99ms, res.ScaleUps, res.ScaleDowns, len(res.Drains))
		recordServeSummary(r, c.name, s)
		r.Metric(c.name+" gpu_hours", "h", e.GPUHours)
		r.Metric(c.name+" cost_per_mtok", "$/Mtok", e.CostPerMTok)
		r.Metric(c.name+" peak_replicas", "count", float64(e.PeakReplicas))
		r.Metric(c.name+" mean_replicas", "count", e.MeanReplicas)
		r.Metric(c.name+" interactive_slo", "frac", it.SLOAttainment)
		r.Metric(c.name+" scale_downs", "count", float64(res.ScaleDowns))

		// (c) Graceful drain must never strand a resident: every scale-down
		// audit record retired with zero requests still owned.
		for _, d := range res.Drains {
			if d.Stranded != 0 {
				return fmt.Errorf("autoscale property violated: %s drained replica %d stranded %d requests",
					c.name, d.Replica, d.Stranded)
			}
			if d.RetiredNs == 0 {
				return fmt.Errorf("autoscale property violated: %s drained replica %d never retired", c.name, d.Replica)
			}
		}
		// Conservation: elasticity must not lose or invent requests.
		if s.Requests != len(wl.Requests) {
			return fmt.Errorf("autoscale property violated: %s completed %d of %d requests",
				c.name, s.Requests, len(wl.Requests))
		}
	}

	static, pid := results[0], results[2]
	if static.ScaleUps != 0 || static.ScaleDowns != 0 {
		return fmt.Errorf("autoscale property violated: static baseline actuated (%d up, %d down)",
			static.ScaleUps, static.ScaleDowns)
	}
	if pid.ScaleDowns == 0 {
		return fmt.Errorf("autoscale property violated: slo-pid never scaled down across the diurnal day — the controller is inert")
	}
	// (a) The SLO policy must hold the interactive tier's floor...
	var pidInt serve.TierSummary
	for _, ts := range sums[2].ByTier {
		if ts.Priority == 0 {
			pidInt = ts
		}
	}
	if pidInt.SLOAttainment < autoscaleInteractiveFloor {
		return fmt.Errorf("autoscale property violated: slo-pid interactive attainment %.3f below the %.2f floor",
			pidInt.SLOAttainment, autoscaleInteractiveFloor)
	}
	// (b) ...on strictly fewer GPU-hours than static peak provisioning.
	if pid.Econ.GPUHours >= static.Econ.GPUHours {
		return fmt.Errorf("autoscale property violated: slo-pid %.2f GPU-hours does not beat static peak %.2f",
			pid.Econ.GPUHours, static.Econ.GPUHours)
	}
	r.Printf("  slo-pid held interactive SLO at %.1f%% (floor %.0f%%) on %.1f GPU-hours vs static peak %.1f (-%.0f%%)\n",
		100*pidInt.SLOAttainment, 100*autoscaleInteractiveFloor,
		pid.Econ.GPUHours, static.Econ.GPUHours,
		100*(1-pid.Econ.GPUHours/static.Econ.GPUHours))
	return nil
}
