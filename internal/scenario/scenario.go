// Package scenario is the registry of the repository's artifacts: every
// table and figure the repository reproduces (Table 1, Figures 7-13, the
// DSL-vs-Primitive comparison, the gain-breakdown ablations) and every
// serving-stack artifact grown on top of them (the serve-* scenarios:
// continuous batching, multi-replica routing, prefix-cache affinity,
// disaggregated prefill/decode) is a named, self-describing scenario with
// a deterministic writer.
//
// A scenario emits two views of one run:
//
//   - the human-readable text the original bench commands print, and
//   - a canonical machine-readable benchkit.Record (exact virtual-time
//     durations, canonical JSON encoding).
//
// Both are deterministic, so both are committed as goldens under
// testdata/golden/ and diffed mechanically by cmd/paperbench -check and by
// the golden replay in scenario_test.go. cmd/collbench, cmd/inferbench and
// cmd/deepepbench are thin wrappers that run subsets of this registry.
package scenario

import (
	"fmt"
	"io"
	"sort"

	"mscclpp/internal/benchkit"
)

// Scenario is one named paper artifact.
type Scenario struct {
	// Name is the stable registry key; it is also the golden-file stem
	// (testdata/golden/<Name>.txt and .json), so renaming a scenario
	// retires its goldens.
	Name string
	// Title is the human-facing description shown by paperbench -list and
	// recorded in the JSON record.
	Title string
	// Slow marks scenarios excluded from the default `go test` golden
	// replay; they still run under `go test -tags slow` and in the CI
	// golden-artifact job (paperbench -run all -check).
	Slow bool
	// Run produces the artifact. All output must go through r so the text
	// and the machine-readable record stay in lockstep.
	Run func(r *Report) error
}

var (
	order  []string
	byName = map[string]Scenario{}
)

// Register adds a scenario to the registry. Registration order is
// presentation order (All, paperbench -run all). It panics on duplicate or
// malformed registrations: the registry is assembled in init and a bad
// entry is a programming error.
func Register(s Scenario) {
	switch {
	case s.Name == "":
		panic("scenario: Register with empty Name")
	case s.Title == "":
		panic(fmt.Sprintf("scenario %q: Register with empty Title", s.Name))
	case s.Run == nil:
		panic(fmt.Sprintf("scenario %q: Register with nil Run", s.Name))
	}
	if _, dup := byName[s.Name]; dup {
		panic(fmt.Sprintf("scenario %q: duplicate registration", s.Name))
	}
	byName[s.Name] = s
	order = append(order, s.Name)
}

// All returns every registered scenario in registration order.
func All() []Scenario {
	out := make([]Scenario, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out
}

// Get returns the named scenario.
func Get(name string) (Scenario, bool) {
	s, ok := byName[name]
	return s, ok
}

// Names returns the sorted scenario names (for error messages and -list
// style completion; presentation order is All's).
func Names() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// Exec runs the scenario, streaming the human-readable text to w (which
// may be nil to discard it) and returning the machine-readable record.
func (s Scenario) Exec(w io.Writer) (*benchkit.Record, error) {
	rec := &benchkit.Record{Name: s.Name, Title: s.Title}
	if err := s.Run(NewReport(w, rec)); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return rec, nil
}
