package scenario

// The LLM-inference artifacts: Figure 11 (Llama3-70B decode speedup with
// vLLM, TP=8 on A100-80G), Figure 12 (DeepSeek-V3 decode throughput with
// SGLang, TP=16 on two H100 nodes) and the §7.3 vLLM
// custom-AllReduce-kernel comparison. Ported from cmd/inferbench, which is
// now a thin wrapper; printed text is byte-identical to the pre-registry
// command.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func fig11(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	env := envFn()
	model := inference.Llama3x70B(8)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	r.Println("\nFigure 11: Llama3-70b decode speedup, MSCCL++ over NCCL (vLLM, TP=8, A100-80G)")
	r.Printf("  %-18s %12s %12s %9s\n", "bsz x seqlen", "NCCL (ms)", "MSCCL++ (ms)", "speedup")
	// The (bsz, seqlen) grid points are independent simulations: fan them
	// out and print from index-stable slots so output order is unchanged.
	type combo struct{ bsz, seqlen int }
	var combos []combo
	for _, bsz := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, seqlen := range []int{128, 512, 2048} {
			combos = append(combos, combo{bsz, seqlen})
		}
	}
	times := make([][2]sim.Duration, len(combos))
	benchkit.Parallel(len(combos), func(i int) {
		c := combos[i]
		times[i][0] = inference.DecodeStep(env, model, c.bsz, c.seqlen, nccl.Time)
		times[i][1] = inference.DecodeStep(env, model, c.bsz, c.seqlen, mpp.Time)
	})
	var speedups []float64
	for i, c := range combos {
		tN, tM := times[i][0], times[i][1]
		sp := inference.Speedup(tN, tM)
		speedups = append(speedups, sp)
		r.Printf("  bsz=%-4d seq=%-6d %12.2f %12.2f %8.2fx\n",
			c.bsz, c.seqlen, float64(tN)/1e6, float64(tM)/1e6, sp)
		key := fmt.Sprintf("decode bsz=%d seq=%d", c.bsz, c.seqlen)
		r.Duration(key+" nccl", int64(tN))
		r.Duration(key+" mscclpp", int64(tM))
	}
	r.Printf("  average decode speedup: %.2fx (paper: 1.11x)\n", benchkit.Geomean(speedups))
	r.Metric("average decode speedup", "x", benchkit.Geomean(speedups))
	// Prefill comparison (paper: similar or up to 1.06x).
	tN := inference.PrefillStep(env, model, 8, 1024, nccl.Time)
	tM := inference.PrefillStep(env, model, 8, 1024, mpp.Time)
	r.Printf("  prefill (bsz=8, seq=1024) speedup: %.2fx (paper: up to 1.06x)\n",
		inference.Speedup(tN, tM))
	r.Duration("prefill bsz=8 seq=1024 nccl", int64(tN))
	r.Duration("prefill bsz=8 seq=1024 mscclpp", int64(tM))
	return nil
}

func fig12(r *Report) error {
	envFn := func() *topology.Env { return topology.H100(2) }
	env := envFn()
	model := inference.DeepSeekV3(16)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	r.Println("\nFigure 12: DeepSeek-V3 decode throughput (SGLang, TP=16, 2x H100 nodes, 1024 in / 1024 out)")
	r.Printf("  %-6s %16s %16s %9s\n", "bsz", "baseline tok/s", "MSCCL++ tok/s", "speedup")
	bszs := []int{1, 2, 4, 8, 16, 32, 64}
	times := make([][2]sim.Duration, len(bszs))
	benchkit.Parallel(len(bszs), func(i int) {
		times[i][0] = inference.DecodeStep(env, model, bszs[i], 1024, nccl.Time)
		times[i][1] = inference.DecodeStep(env, model, bszs[i], 1024, mpp.Time)
	})
	var speedups []float64
	for i, bsz := range bszs {
		tN, tM := times[i][0], times[i][1]
		sp := inference.Speedup(tN, tM)
		speedups = append(speedups, sp)
		r.Printf("  %-6d %16.0f %16.0f %8.2fx\n", bsz,
			inference.DecodeThroughput(bsz, tN), inference.DecodeThroughput(bsz, tM), sp)
		key := fmt.Sprintf("decode bsz=%d", bsz)
		r.Duration(key+" baseline", int64(tN))
		r.Duration(key+" mscclpp", int64(tM))
	}
	r.Printf("  average decode speedup: %.2fx (paper: 1.31x)\n", benchkit.Geomean(speedups))
	r.Metric("average decode speedup", "x", benchkit.Geomean(speedups))
	return nil
}

func customAR(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	custom := inference.NewARTimer(envFn, inference.LibVLLMCustom)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	r.Println("\nvLLM custom AllReduce kernel vs MSCCL++ (A100-80G, TP=8)")
	msgs := []int64{2 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} // vLLM uses its custom kernel only for small inputs
	times := make([][2]sim.Duration, len(msgs))
	benchkit.Parallel(len(msgs), func(i int) {
		times[i][0], times[i][1] = custom.Time(msgs[i]), mpp.Time(msgs[i])
	})
	var ratios []float64
	for i, msg := range msgs {
		tc, tm := times[i][0], times[i][1]
		ratio := inference.Speedup(tc, tm)
		ratios = append(ratios, ratio)
		r.Printf("  msg %-6s custom %8.2fus  MSCCL++ %8.2fus  ratio %.2fx\n",
			benchkit.HumanSize(msg), float64(tc)/1000, float64(tm)/1000, ratio)
		key := "msg " + benchkit.HumanSize(msg)
		r.Duration(key+" custom", int64(tc))
		r.Duration(key+" mscclpp", int64(tm))
	}
	r.Printf("  geomean MSCCL++ advantage: %.2fx (paper: 1.4x geomean, up to 3x)\n",
		benchkit.Geomean(ratios))
	r.Metric("geomean mscclpp advantage", "x", benchkit.Geomean(ratios))
	// End-to-end decode with the custom kernel vs MSCCL++.
	env := envFn()
	model := inference.Llama3x70B(8)
	var sps []float64
	for _, bsz := range []int{1, 8, 32} {
		tC := inference.DecodeStep(env, model, bsz, 512, custom.Time)
		tM := inference.DecodeStep(env, model, bsz, 512, mpp.Time)
		sps = append(sps, inference.Speedup(tC, tM))
	}
	r.Printf("  end-to-end decode speedup vs custom kernel: %.2fx geomean (paper: 1.04x avg, up to 1.11x)\n",
		benchkit.Geomean(sps))
	r.Metric("end-to-end decode speedup vs custom", "x", benchkit.Geomean(sps))
	return nil
}
