package scenario_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mscclpp/internal/scenario"
)

const goldenDir = "testdata/golden"

// TestRegistry checks the registry's structural invariants: every scenario
// is well-formed, names are unique (Register enforces it at init; this
// guards the accessors), and lookups round-trip.
func TestRegistry(t *testing.T) {
	all := scenario.All()
	if len(all) == 0 {
		t.Fatal("no scenarios registered")
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Title == "" || s.Run == nil {
			t.Errorf("malformed scenario %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		got, ok := scenario.Get(s.Name)
		if !ok || got.Name != s.Name || got.Title != s.Title {
			t.Errorf("Get(%q) does not round-trip", s.Name)
		}
	}
	if _, ok := scenario.Get("no-such-scenario"); ok {
		t.Error("Get of unknown name succeeded")
	}
	if names := scenario.Names(); len(names) != len(all) {
		t.Errorf("Names() returned %d names for %d scenarios", len(names), len(all))
	}
}

// TestGoldensComplete checks both directions of the golden/<->registry
// mapping without running anything: every scenario (slow ones included)
// has both golden files, and every golden file belongs to a registered
// scenario — an orphan means a scenario was renamed without retiring its
// goldens.
func TestGoldensComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range scenario.All() {
		names[s.Name] = true
		for _, ext := range []string{".txt", ".json"} {
			p := filepath.Join(goldenDir, s.Name+ext)
			if _, err := os.Stat(p); err != nil {
				t.Errorf("scenario %s: missing golden %s (run: go run ./cmd/paperbench -run %s -update)",
					s.Name, p, s.Name)
			}
		}
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		stem := strings.TrimSuffix(strings.TrimSuffix(e.Name(), ".txt"), ".json")
		if !names[stem] {
			t.Errorf("orphan golden %s: no scenario named %q", e.Name(), stem)
		}
	}
}

// TestGoldens replays each scenario and requires both the human-readable
// text and the canonical JSON record to be byte-identical to the committed
// goldens. Slow scenarios (the multi-panel figure grids) are skipped by
// default and replayed under `go test -tags slow`; the CI golden-artifact
// job (`paperbench -run all -check`) always covers the full set.
func TestGoldens(t *testing.T) {
	for _, s := range scenario.All() {
		t.Run(s.Name, func(t *testing.T) {
			if s.Slow && !runSlowScenarios {
				t.Skip("slow scenario; replay with -tags slow (always checked by paperbench -run all -check)")
			}
			var text bytes.Buffer
			rec, err := s.Exec(&text)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Name != s.Name || rec.Title != s.Title {
				t.Errorf("record identity %q/%q, want %q/%q", rec.Name, rec.Title, s.Name, s.Title)
			}
			compare(t, filepath.Join(goldenDir, s.Name+".txt"), text.Bytes())
			var jb bytes.Buffer
			if err := rec.Encode(&jb); err != nil {
				t.Fatal(err)
			}
			compare(t, filepath.Join(goldenDir, s.Name+".json"), jb.Bytes())
		})
	}
}

func compare(t *testing.T, goldenPath string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if d := scenario.DiffGolden(got, want); d != "" {
		t.Fatalf("drift vs %s:\n%s\n(refresh intentional changes with: go run ./cmd/paperbench -run all -update)",
			goldenPath, d)
	}
}
