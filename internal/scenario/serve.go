package scenario

// The serving artifacts: traffic-driven continuous-batching simulations
// (internal/serve) layered over the simulated collectives. These go beyond
// the paper's single-step decode/prefill comparisons (Figures 11-12) to
// the regime the paper motivates — serving sustained request traffic — and
// report TTFT/TPOT tails and goodput under SLOs per communication backend.

import (
	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// serveSLO is the latency objective shared by the serving artifacts:
// first token within 2 s, steady decode under 100 ms/token.
var serveSLO = serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}

func printServeHeader(r *Report) {
	r.Printf("  %-10s %-8s %9s %9s %9s %9s %9s %9s %7s\n",
		"rate", "lib", "ttft p50", "ttft p99", "tpot p50", "tpot p99", "tok/s", "goodput", "slo%")
}

func printServeRow(r *Report, rate, lib string, s serve.Summary) {
	r.Printf("  %-10s %-8s %9.1f %9.1f %9.1f %9.1f %9.0f %9.0f %6.1f%%\n",
		rate, lib, s.TTFTp50ms, s.TTFTp99ms, s.TPOTp50ms, s.TPOTp99ms,
		s.ThroughputTokS, s.GoodputTokS, 100*s.SLOAttainment)
}

func recordServeSummary(r *Report, key string, s serve.Summary) {
	r.Metric(key+" ttft_p50", "ms", s.TTFTp50ms)
	r.Metric(key+" ttft_p99", "ms", s.TTFTp99ms)
	r.Metric(key+" tpot_p99", "ms", s.TPOTp99ms)
	r.Metric(key+" goodput", "tok/s", s.GoodputTokS)
	r.Metric(key+" slo_attainment", "frac", s.SLOAttainment)
}

// serveLlama70B: Llama3-70B TP=8 on one A100-80G node under seeded Poisson
// traffic at increasing rates, NCCL-sim vs MSCCL++ backends. The serving
// translation of Figure 11: per-step decode speedups compound into tail
// latency and goodput once queueing dynamics are in play.
func serveLlama70B(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timers := map[inference.Library]*inference.ARTimer{
		inference.LibNCCL:    inference.NewARTimer(envFn, inference.LibNCCL),
		inference.LibMSCCLPP: inference.NewARTimer(envFn, inference.LibMSCCLPP),
	}
	rates := []float64{4, 8, 12}
	libs := []inference.Library{inference.LibNCCL, inference.LibMSCCLPP}
	r.Println("\nServing: Llama3-70b continuous batching (TP=8, A100-80G, 200-request Poisson, SLO: TTFT<=2s TPOT<=100ms)")
	printServeHeader(r)
	type cell struct {
		rate float64
		lib  inference.Library
	}
	var cells []cell
	for _, rate := range rates {
		for _, lib := range libs {
			cells = append(cells, cell{rate, lib})
		}
	}
	sums := make([]serve.Summary, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		c := cells[i]
		// Seed depends only on the rate so both libraries replay the exact
		// same arrival sequence — the comparison isolates the backend.
		wl := serve.Poisson(7000+uint64(c.rate), 200, c.rate,
			serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
		res, err := serve.Run(serve.Config{
			Env:             envFn(),
			Model:           inference.Llama3x70B(8),
			AR:              timers[c.lib].Time,
			MaxBatch:        32,
			KVCapacityBytes: 4 << 30,
			ChunkTokens:     512,
			Metrics:         serve.MetricsExact,
		}, wl)
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = res.Summarize(serveSLO)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, c := range cells {
		rate := benchkit.HumanSize(int64(c.rate)) + " req/s"
		printServeRow(r, rate, string(c.lib), sums[i])
		recordServeSummary(r, string(c.lib)+" rate="+benchkit.HumanSize(int64(c.rate)), sums[i])
	}
	return nil
}

// serveDeepSeek: DeepSeek-V3 TP=16 over two H100 nodes, steady Poisson vs
// an on/off burst at the same average rate. Bursts stress admission: the
// KV gate and batch bound must absorb 8x the base rate without collapsing
// the tails.
func serveDeepSeek(r *Report) error {
	envFn := func() *topology.Env { return topology.H100(2) }
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	cfg := func() serve.Config {
		return serve.Config{
			Env:             envFn(),
			Model:           inference.DeepSeekV3(16),
			AR:              mpp.Time,
			MaxBatch:        32,
			KVCapacityBytes: 1 << 30,
			ChunkTokens:     512,
			Metrics:         serve.MetricsExact,
		}
	}
	// ~2.7 req/s average either way: steady, or 1 req/s base with 8 req/s
	// bursts one-quarter of the time.
	workloads := []serve.Workload{
		serve.Poisson(8101, 160, 2.75, serve.LogNormalLen(768, 0.5, 2048), serve.LogNormalLen(96, 0.5, 256)),
		serve.Bursty(8102, 160, 1, 8, 6*sim.Second, 2*sim.Second,
			serve.LogNormalLen(768, 0.5, 2048), serve.LogNormalLen(96, 0.5, 256)),
	}
	r.Println("\nServing: DeepSeek-V3 continuous batching (TP=16, 2x H100, MSCCL++, steady vs bursty arrivals)")
	printServeHeader(r)
	sums := make([]serve.Summary, len(workloads))
	errs := make([]error, len(workloads))
	benchkit.Parallel(len(workloads), func(i int) {
		res, err := serve.Run(cfg(), workloads[i])
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = res.Summarize(serveSLO)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	labels := []string{"steady", "bursty"}
	for i, s := range sums {
		printServeRow(r, labels[i], "mscclpp", s)
		recordServeSummary(r, labels[i], s)
	}
	return nil
}

// serveRateSweep: goodput-vs-offered-rate curves for Llama3-70B TP=8 on
// three Table-2 environments, every (env, rate) cell an independent
// simulation fanned out with benchkit.Parallel. The knee of each curve is
// the environment's serving capacity under the SLO.
func serveRateSweep(r *Report) error {
	envs := []struct {
		name string
		fn   func() *topology.Env
	}{
		{"A100-80G", func() *topology.Env { return topology.A100_80G(1) }},
		{"H100", func() *topology.Env { return topology.H100(1) }},
		{"MI300x", func() *topology.Env { return topology.MI300x(1) }},
	}
	rates := []float64{2, 6, 10, 14}
	timers := make([]*inference.ARTimer, len(envs))
	for i, e := range envs {
		timers[i] = inference.NewARTimer(e.fn, inference.LibMSCCLPP)
	}
	type cell struct{ env, rate int }
	var cells []cell
	for ei := range envs {
		for ri := range rates {
			cells = append(cells, cell{ei, ri})
		}
	}
	sums := make([]serve.Summary, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		c := cells[i]
		wl := serve.Poisson(9000+uint64(c.rate), 120, rates[c.rate],
			serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
		res, err := serve.Run(serve.Config{
			Env:             envs[c.env].fn(),
			Model:           inference.Llama3x70B(8),
			AR:              timers[c.env].Time,
			MaxBatch:        32,
			KVCapacityBytes: 4 << 30,
			ChunkTokens:     512,
			Metrics:         serve.MetricsExact,
		}, wl)
		if err != nil {
			errs[i] = err
			return
		}
		sums[i] = res.Summarize(serveSLO)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	r.Println("\nServing: goodput under SLO vs offered rate, Llama3-70b TP=8, MSCCL++ (120-request Poisson per cell)")
	r.Printf("  %-10s", "env")
	for _, rate := range rates {
		r.Printf(" %7.0fq/s", rate)
	}
	r.Printf("   (goodput tok/s | slo%%)\n")
	for ei, e := range envs {
		r.Printf("  %-10s", e.name)
		for ri := range rates {
			s := sums[ei*len(rates)+ri]
			r.Printf(" %6.0f|%3.0f", s.GoodputTokS, 100*s.SLOAttainment)
			recordServeSummary(r, e.name+" rate="+benchkit.HumanSize(int64(rates[ri])), s)
		}
		r.Println()
	}
	return nil
}
