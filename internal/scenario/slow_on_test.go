//go:build slow

package scenario_test

// The slow tag opts the golden replay into the multi-panel figure grids
// (fig7-fig9), whose 1GB sweeps dominate runtime.
const runSlowScenarios = true
