package scenario

import (
	"bytes"
	"fmt"
	"strings"
)

// DiffGolden compares a regenerated artifact against its committed golden
// and returns "" when byte-identical, otherwise a human-readable
// description of the first differing line. It is the single drift
// renderer shared by the golden replay test and cmd/paperbench -check, so
// both report drift identically.
func DiffGolden(got, want []byte) string {
	if bytes.Equal(got, want) {
		return ""
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\nwant: %q\ngot:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}
