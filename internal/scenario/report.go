package scenario

import (
	"fmt"
	"io"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// Report is the dual-view writer a scenario emits through: Printf/Println
// render the human-readable text (byte-identical to what the original
// bench commands printed), while the table and metric methods additionally
// land the underlying numbers in the canonical benchkit.Record. Either
// side may be absent: a nil writer discards text (paperbench -json), and a
// nil record is tolerated (benchkit.Record methods are nil-safe) for
// callers that construct a text-only Report directly.
type Report struct {
	w   io.Writer
	rec *benchkit.Record
}

// NewReport builds a report over a text sink and a record sink; both are
// optional.
func NewReport(w io.Writer, rec *benchkit.Record) *Report {
	if w == nil {
		w = io.Discard
	}
	return &Report{w: w, rec: rec}
}

// Printf writes formatted text output.
func (r *Report) Printf(format string, args ...any) {
	fmt.Fprintf(r.w, format, args...)
}

// Println writes a text line.
func (r *Report) Println(args ...any) {
	fmt.Fprintln(r.w, args...)
}

// Metric records a named scalar in the machine-readable record only (the
// scenario prints its own text rendering of the value).
func (r *Report) Metric(name, unit string, value float64) {
	r.rec.AddMetric(name, unit, value)
}

// Duration records an exact virtual-time duration (ns) in the record only.
func (r *Report) Duration(name string, d int64) {
	r.rec.AddDuration(name, d)
}

// LatencyTable renders a small-message latency table and records the raw
// series.
func (r *Report) LatencyTable(title string, series []benchkit.Series) {
	benchkit.PrintLatencyTable(r.w, title, series)
	r.rec.AddTable("latency_us", title, series)
}

// BandwidthTable renders a large-message AlgoBW table and records the raw
// series.
func (r *Report) BandwidthTable(title string, series []benchkit.Series) {
	benchkit.PrintBandwidthTable(r.w, title, series)
	r.rec.AddTable("algobw_gbs", title, series)
}

// Counters renders a resource counter report ("where did the time go" —
// per-group reservations, busy time, utilization over elapsed, queue
// delay, idle gaps, max queue depth) and records the raw snapshots. Every
// scenario may optionally emit one or more of these alongside its existing
// artifact; pre-counter goldens are unaffected because the record section
// is omitempty.
func (r *Report) Counters(title string, elapsed int64, groups []sim.CounterGroup) {
	benchkit.PrintCounterReport(r.w, title, elapsed, groups)
	r.rec.AddCounters(title, elapsed, groups)
}

// Speedup prints the per-size speedup summary of target over base (exact
// SpeedupSummary text) and records geomean/max under metricPrefix.
func (r *Report) Speedup(label, metricPrefix string, base, target benchkit.Series) {
	geo, max := benchkit.SpeedupSummary(r.w, label, base, target)
	r.rec.AddMetric(metricPrefix+" geomean", "x", geo)
	r.rec.AddMetric(metricPrefix+" max", "x", max)
}
