package scenario

// The multi-replica routing artifacts: several continuous-batching replica
// engines behind an arrival-splitting router (internal/serve's
// RunRouted), comparing routing policies at equal offered load. This is
// the cluster-scale regime the serving simulator exists for — at a fixed
// per-replica engine, tail latency and goodput are decided by how
// arrivals are split, and by whether requests land where their prompt
// prefix is already cached.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// routedReplica is the shared per-replica engine configuration of the
// routing and disaggregation artifacts: Llama3-70B TP=8 on one A100-80G
// node with MSCCL++ collectives, a 24-deep running batch and a 4 GiB
// per-GPU KV budget. serve-disagg's equal-GPU comparison against the
// routed chunked baseline depends on both sides using this one config.
func routedReplica(ar func(int64) sim.Duration) serve.Config {
	return serve.Config{
		Env:             topology.A100_80G(1),
		Model:           inference.Llama3x70B(8),
		AR:              ar,
		MaxBatch:        24,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}
}

func printRoutingHeader(r *Report) {
	r.Printf("  %-8s %-16s %9s %9s %9s %9s %7s  %s\n",
		"load", "policy", "ttft p50", "ttft p99", "e2e p99", "goodput", "slo%", "req/replica")
}

func printRoutingRow(r *Report, load string, res *serve.RoutedResult, s serve.Summary) {
	r.Printf("  %-8s %-16s %9.1f %9.1f %9.1f %9.0f %6.1f%% ",
		load, res.Policy, s.TTFTp50ms, s.TTFTp99ms, s.E2Ep99ms, s.GoodputTokS, 100*s.SLOAttainment)
	for _, pr := range res.PerReplica {
		r.Printf(" %d", len(pr.PerRequest))
	}
	r.Println()
}

func recordRoutingSummary(r *Report, key string, s serve.Summary) {
	r.Metric(key+" ttft_p50", "ms", s.TTFTp50ms)
	r.Metric(key+" ttft_p99", "ms", s.TTFTp99ms)
	r.Metric(key+" e2e_p99", "ms", s.E2Ep99ms)
	r.Metric(key+" goodput", "tok/s", s.GoodputTokS)
	r.Metric(key+" slo_attainment", "frac", s.SLOAttainment)
}

// serveRouting: 3 Llama3-70B replicas behind round-robin, JSQ and
// prefix-affinity routing, under Poisson and on/off bursty arrivals at
// equal offered rate (~24 req/s aggregate, 60% of requests sharing one of
// 12 prompt prefixes). Round-robin is load-blind, so a burst that lands
// long prompts on one replica inflates the TTFT tail; JSQ routes on
// in-flight tokens and must strictly improve p99 TTFT under the bursty
// load — the run fails (and so does the golden gate) if it ever stops
// doing so.
func serveRouting(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	loads := []struct {
		name string
		wl   serve.Workload
	}{
		{"poisson", serve.WithPrefixGroups(
			serve.Poisson(4001, 360, 24, serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192)),
			4100, 12, 0.6, 256)},
		{"bursty", serve.WithPrefixGroups(
			serve.Bursty(4002, 360, 9, 72, 6*sim.Second, 2*sim.Second,
				serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192)),
			4100, 12, 0.6, 256)},
	}
	policies := []string{"round-robin", "jsq", "prefix-affinity"}

	type cell struct{ load, pol int }
	var cells []cell
	for li := range loads {
		for pi := range policies {
			cells = append(cells, cell{li, pi})
		}
	}
	results := make([]*serve.RoutedResult, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		c := cells[i]
		// Policies carry routing state; each cell gets a fresh instance.
		pol, err := serve.PolicyByName(policies[c.pol])
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = serve.RunRouted(serve.RouterConfig{
			Replicas: 3,
			Policy:   pol,
			Replica:  routedReplica(timer.Time),
		}, loads[c.load].wl)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Println("\nRouting: 3x Llama3-70b replicas (TP=8 each, A100-80G, MSCCL++), 360 requests at ~24 req/s, 60% prefix reuse over 12 groups")
	r.Println("SLO: TTFT<=2s TPOT<=100ms; bursty load is 9 req/s with 72 req/s spikes (2s every 8s)")
	printRoutingHeader(r)
	sums := make([]serve.Summary, len(cells))
	for i, c := range cells {
		sums[i] = results[i].Summarize(serveSLO)
		printRoutingRow(r, loads[c.load].name, results[i], sums[i])
		recordRoutingSummary(r, loads[c.load].name+" "+results[i].Policy, sums[i])
	}

	// The property this artifact exists to demonstrate, enforced: at equal
	// offered load, token-weighted JSQ strictly improves the TTFT tail
	// over load-blind round-robin when arrivals are bursty.
	var rrP99, jsqP99 float64
	for i, c := range cells {
		if loads[c.load].name != "bursty" {
			continue
		}
		switch results[i].Policy {
		case "round-robin":
			rrP99 = sums[i].TTFTp99ms
		case "jsq":
			jsqP99 = sums[i].TTFTp99ms
		}
	}
	if !(jsqP99 < rrP99) {
		return fmt.Errorf("routing property violated: bursty JSQ p99 TTFT %.1f ms is not strictly below round-robin's %.1f ms", jsqP99, rrP99)
	}
	r.Printf("  bursty p99 TTFT: jsq %.1f ms vs round-robin %.1f ms (-%.0f%%)\n", jsqP99, rrP99, 100*(1-jsqP99/rrP99))
	return nil
}

// serveAffinity: prefix-cache affinity vs pure JSQ while the prefix-reuse
// fraction sweeps from 0 to 90% (64 groups of 384 shared tokens, median
// 512-token prompts). Affinity prefills each group's prefix once per
// pinned replica, so its hit rate — and TTFT advantage — grows with
// reuse; JSQ only hits when a group happens to revisit a replica. The
// flip side appears at extreme reuse: pinning hot groups skews load and
// the p99 tail gives some of the win back, the classic affinity-vs-
// balance trade.
func serveAffinity(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	reuses := []float64{0, 0.3, 0.6, 0.9}
	policies := []string{"jsq", "prefix-affinity"}

	type cell struct{ reuse, pol int }
	var cells []cell
	for ri := range reuses {
		for pi := range policies {
			cells = append(cells, cell{ri, pi})
		}
	}
	results := make([]*serve.RoutedResult, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		c := cells[i]
		wl := serve.Poisson(5001, 300, 24, serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
		if reuses[c.reuse] > 0 {
			wl = serve.WithPrefixGroups(wl, 5100, 64, reuses[c.reuse], 384)
		}
		pol, err := serve.PolicyByName(policies[c.pol])
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = serve.RunRouted(serve.RouterConfig{
			Replicas: 3,
			Policy:   pol,
			Replica:  routedReplica(timer.Time),
		}, wl)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Println("\nRouting: prefix-cache affinity vs JSQ over prefix-reuse fraction (3x Llama3-70b TP=8, 300 requests at 24 req/s, 64 groups x 384 shared tokens)")
	r.Printf("  %-8s %-16s %9s %9s %9s %7s %7s\n", "reuse", "policy", "ttft p50", "ttft p99", "goodput", "slo%", "hits")
	for i, c := range cells {
		s := results[i].Summarize(serveSLO)
		hits := 0
		for _, m := range results[i].Merged.PerRequest {
			if m.PrefixHit {
				hits++
			}
		}
		r.Printf("  %-8s %-16s %9.1f %9.1f %9.0f %6.1f%% %7d\n",
			fmt.Sprintf("%.0f%%", 100*reuses[c.reuse]), results[i].Policy,
			s.TTFTp50ms, s.TTFTp99ms, s.GoodputTokS, 100*s.SLOAttainment, hits)
		key := fmt.Sprintf("%s reuse=%.0f%%", results[i].Policy, 100*reuses[c.reuse])
		r.Metric(key+" ttft_p50", "ms", s.TTFTp50ms)
		r.Metric(key+" ttft_p99", "ms", s.TTFTp99ms)
		r.Metric(key+" goodput", "tok/s", s.GoodputTokS)
		r.Metric(key+" prefix_hits", "req", float64(hits))
	}
	return nil
}
