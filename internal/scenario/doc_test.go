package scenario

// The exported-symbol documentation gate for the registry package: every
// exported identifier must carry a doc comment so `go doc
// mscclpp/internal/scenario` explains the whole artifact surface. CI
// additionally runs staticcheck's stylecheck comment rules on this
// package; this test keeps the gate in plain `go test` too.

import (
	"strings"
	"testing"

	"mscclpp/internal/doccheck"
)

func TestExportedSymbolsDocumented(t *testing.T) {
	missing, err := doccheck.Undocumented(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("internal/scenario has undocumented exported symbols:\n  %s", strings.Join(missing, "\n  "))
	}
}
