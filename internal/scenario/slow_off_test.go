//go:build !slow

package scenario_test

// Without the slow tag, the golden replay covers only the fast scenarios;
// the full set runs under `go test -tags slow ./internal/scenario` and in
// the CI golden-artifact job.
const runSlowScenarios = false
