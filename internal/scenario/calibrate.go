package scenario

// The calibrate-* family: first-principles calibration curves for the
// simulator's transfer paths and the decode roofline, golden-gated like
// every other scenario but with in-run *shape* assertions layered on top.
// A golden diff tells you a number moved; these assertions tell you when a
// number moved in a way that breaks the physics the paper's figures rest
// on — latency curves must be monotone in size, the half-power knee must
// sit near bandwidth x latency, DMA must beat a single NIC but lose to the
// node's aggregated NICs, and the decode-step sweep must cross from
// memory-bound to compute-bound strictly inside the batch range. The
// scenarios also exercise the counter-introspection path end to end: each
// one emits a "where did the time go" report and asserts counter-level
// facts (queue delay, max depth) that the closed-form timings predict.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/fabric"
	"mscclpp/internal/inference"
	"mscclpp/internal/moe"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

// calSizes returns the calibration size grid: 1KB to maxSize in x4 steps,
// coarse enough to keep goldens compact but fine enough to bracket every
// environment's latency/bandwidth knee within one grid step.
func calSizes(maxSize int64) []int64 {
	var out []int64
	for s := int64(1 << 10); s <= maxSize; s *= 4 {
		out = append(out, s)
	}
	return out
}

// calMonotone asserts a latency curve never gets faster as messages grow —
// the most basic sanity property of a store-and-forward transfer model.
func calMonotone(name string, pts []benchkit.Point) error {
	for i := 1; i < len(pts); i++ {
		if pts[i].Dur < pts[i-1].Dur {
			return fmt.Errorf("calibrate property violated: %s latency not monotone: %d B takes %d ns after %d B took %d ns",
				name, pts[i].Size, pts[i].Dur, pts[i-1].Size, pts[i-1].Dur)
		}
	}
	return nil
}

// calHalfPower returns the smallest measured size whose achieved bandwidth
// reaches half the path's asymptotic cap (n1/2 in classic network terms),
// or -1 if the curve never gets there.
func calHalfPower(pts []benchkit.Point, capBW float64) int64 {
	for _, p := range pts {
		if p.AlgoBW() >= capBW/2 {
			return p.Size
		}
	}
	return -1
}

// calGroup finds a named counter group in a fabric snapshot.
func calGroup(groups []sim.CounterGroup, name string) (sim.CounterGroup, error) {
	for _, g := range groups {
		if g.Name == name {
			return g, nil
		}
	}
	return sim.CounterGroup{}, fmt.Errorf("calibrate: counter group %q not in fabric snapshot", name)
}

// calCurve measures one transfer path over the size grid on a shared
// fabric, advancing the cursor past each completion so successive points
// never contend (the counters must show zero queue delay afterwards).
func calCurve(now sim.Time, sizes []int64, xfer func(sim.Time, int64) sim.Time) (sim.Time, []benchkit.Point) {
	pts := make([]benchkit.Point, 0, len(sizes))
	for _, s := range sizes {
		end := xfer(now, s)
		pts = append(pts, benchkit.Point{Size: s, Dur: end - now})
		now = end
	}
	return now, pts
}

// calibrateP2P measures the intra-node P2P thread-copy path on a
// switch-based (H100) and a mesh-based (MI300x) environment: latency floor
// at small sizes, asymptotic bandwidth against min(streamBW, linkBW), and
// the half-power knee near capacity x latency.
func calibrateP2P(r *Report) error {
	sizes := calSizes(1 << 28)
	envs := []*topology.Env{topology.H100(1), topology.MI300x(1)}
	series := make([]benchkit.Series, 0, len(envs))
	for _, env := range envs {
		model := timing.Default(env)
		f := fabric.New(env, model)
		linkBW := env.PeerBW()
		streamBW := model.ThreadCopyBW(8, linkBW)
		capBW := streamBW
		if linkBW < capBW {
			capBW = linkBW
		}
		now, pts := calCurve(0, sizes, func(t sim.Time, s int64) sim.Time {
			return f.P2P(t, 0, 1, s, streamBW)
		})
		series = append(series, benchkit.Series{Name: env.Name, Points: pts})
		if err := calMonotone("p2p "+env.Name, pts); err != nil {
			return err
		}
		if floor := 4 * env.IntraLat; pts[0].Dur > floor {
			return fmt.Errorf("calibrate property violated: p2p %s small-message latency %d ns exceeds 4x link latency %d ns",
				env.Name, pts[0].Dur, floor)
		}
		asym := pts[len(pts)-1].AlgoBW()
		if asym < 0.93*capBW {
			return fmt.Errorf("calibrate property violated: p2p %s asymptotic bw %.1f GB/s below 93%% of the %.1f GB/s cap",
				env.Name, asym, capBW)
		}
		knee := int64(capBW * float64(env.IntraLat))
		half := calHalfPower(pts, capBW)
		if half < knee/5 || half > 5*knee {
			return fmt.Errorf("calibrate property violated: p2p %s half-power size %d B not within 5x of the bw x lat knee %d B",
				env.Name, half, knee)
		}
		// The curve ran back to back on one port pair: the counters must
		// show every reservation admitted without queueing.
		gname := "egress"
		if env.IntraMesh {
			gname = "xgmi"
		}
		g, err := calGroup(f.Counters(), gname)
		if err != nil {
			return err
		}
		t := benchkit.GroupTotals(g)
		if t.Reservations != uint64(len(sizes)) || t.QueueDelayNs != 0 || t.MaxQueueDepth != 1 {
			return fmt.Errorf("calibrate property violated: p2p %s %s counters %+v, want %d uncontended reservations",
				env.Name, gname, t, len(sizes))
		}
		r.Metric("p2p "+env.Name+" cap", "GB/s", capBW)
		r.Metric("p2p "+env.Name+" asymptotic bw", "GB/s", asym)
		r.Metric("p2p "+env.Name+" half-power size", "B", float64(half))
		r.Counters("calibrate-p2p "+env.Name+" fabric", int64(now), f.Counters())
	}
	r.LatencyTable("Calibration: P2P latency vs size", series)
	r.BandwidthTable("Calibration: P2P bandwidth vs size", series)
	return nil
}

// calibrateXfer compares the three point-to-point transfer paths on a
// two-node H100 cluster: per-path curves, the small-message latency
// ordering P2P < DMA < RDMA, asymptotic bandwidth ratios, single-NIC RDMA
// losing to DMA but the node's aggregated NICs beating it, and exact FIFO
// serialization (with matching counters) when two flows share a NIC.
func calibrateXfer(r *Report) error {
	env := topology.H100(2)
	model := timing.Default(env)
	f := fabric.New(env, model)
	streamBW := model.ThreadCopyBW(8, env.PeerBW())
	sizes := calSizes(1 << 28)
	curves := []struct {
		name string
		xfer func(sim.Time, int64) sim.Time
	}{
		{"p2p", func(t sim.Time, s int64) sim.Time { return f.P2P(t, 0, 1, s, streamBW) }},
		{"dma", func(t sim.Time, s int64) sim.Time { return f.DMA(t, 0, 1, s) }},
		{"rdma", func(t sim.Time, s int64) sim.Time { return f.RDMA(t, 0, 8, s) }},
	}
	now := sim.Time(0)
	series := make([]benchkit.Series, len(curves))
	for i, c := range curves {
		var pts []benchkit.Point
		now, pts = calCurve(now, sizes, c.xfer)
		if err := calMonotone(c.name+" "+env.Name, pts); err != nil {
			return err
		}
		series[i] = benchkit.Series{Name: c.name, Points: pts}
	}
	p2p, dma, rdma := series[0].Points, series[1].Points, series[2].Points
	if !(p2p[0].Dur < dma[0].Dur && dma[0].Dur < rdma[0].Dur) {
		return fmt.Errorf("calibrate property violated: small-message latency ordering p2p < dma < rdma broken: %d, %d, %d ns",
			p2p[0].Dur, dma[0].Dur, rdma[0].Dur)
	}
	dmaCap := env.DMABW
	if env.IntraBW < dmaCap {
		dmaCap = env.IntraBW
	}
	dmaAsym := dma[len(dma)-1].AlgoBW()
	rdmaAsym := rdma[len(rdma)-1].AlgoBW()
	if dmaAsym < 0.95*dmaCap || rdmaAsym < 0.95*env.IBBW {
		return fmt.Errorf("calibrate property violated: asymptotes dma %.1f (cap %.1f), rdma %.1f (cap %.1f) GB/s below 95%%",
			dmaAsym, dmaCap, rdmaAsym, env.IBBW)
	}
	ratio, want := dmaAsym/rdmaAsym, dmaCap/env.IBBW
	if ratio < 0.85*want || ratio > 1.15*want {
		return fmt.Errorf("calibrate property violated: dma/rdma bandwidth ratio %.2f strays from the configured %.2f", ratio, want)
	}
	// Aggregate RDMA: every GPU drives its own NIC to the peer node at
	// once. A single NIC loses to DMA, but the node's NICs in aggregate
	// must win — the saturation ordering disaggregation pricing relies on.
	const flowSize = int64(64 << 20)
	n := env.TotalGPUs()
	aggStart, aggEnd := now, now
	for g := 0; g < n; g++ {
		if end := f.RDMA(aggStart, g, (g+n/2)%n, flowSize); end > aggEnd {
			aggEnd = end
		}
	}
	aggBW := float64(n) * float64(flowSize) / float64(aggEnd-aggStart)
	if !(rdmaAsym < dmaAsym && dmaAsym < aggBW) {
		return fmt.Errorf("calibrate property violated: saturation ordering single-NIC %.1f < DMA %.1f < aggregate RDMA %.1f GB/s broken",
			rdmaAsym, dmaAsym, aggBW)
	}
	if aggBW < 0.75*float64(n)*env.IBBW {
		return fmt.Errorf("calibrate property violated: %d-flow aggregate RDMA %.1f GB/s below 75%% of %d NICs", n, aggBW, n)
	}
	// Contended NIC: two same-pair flows must serialize FIFO, end to end
	// exactly one wire time apart, and the counters must record the wait.
	wire := sim.Duration(timing.XferTime(flowSize, env.IBBW))
	end1 := f.RDMA(aggEnd, 0, n/2, flowSize)
	end2 := f.RDMA(aggEnd, 0, n/2, flowSize)
	if end2-end1 != wire {
		return fmt.Errorf("calibrate property violated: contended RDMA flows %d ns apart, want one wire time %d ns", end2-end1, wire)
	}
	nic, err := calGroup(f.Counters(), "nicTx")
	if err != nil {
		return err
	}
	if s := nic.Stats[0]; s.QueueDelayNs != wire || s.MaxQueueDepth != 2 {
		return fmt.Errorf("calibrate property violated: nicTx[0] counters %+v, want queue delay %d ns at depth 2", s, wire)
	}
	r.Metric("dma asymptotic bw", "GB/s", dmaAsym)
	r.Metric("rdma asymptotic bw", "GB/s", rdmaAsym)
	r.Metric("dma/rdma ratio", "x", ratio)
	r.Metric("aggregate rdma bw", "GB/s", aggBW)
	r.Counters("calibrate-xfer "+env.Name+" fabric", int64(end2), f.Counters())
	r.LatencyTable("Calibration: transfer-path latency vs size (2x H100)", series)
	r.BandwidthTable("Calibration: transfer-path bandwidth vs size (2x H100)", series)
	return nil
}

// calibrateSwitch measures the NVLS switch-mapped paths on one H100 node
// with enough thread blocks that the SHARP pipeline, not the issuing
// stream, is the bottleneck: reduce and broadcast curves must coincide
// (symmetric port shapes), saturate near SwitchBW, and a full-node burst
// of ld_reduce ops must serialize exactly 8x on the shared egress ports —
// visible both in completion time and in the egress counters.
func calibrateSwitch(r *Report) error {
	env := topology.H100(1)
	model := timing.Default(env)
	f := fabric.New(env, model)
	streamBW := model.ThreadCopyBW(16, env.IntraBW)
	if streamBW <= env.SwitchBW {
		return fmt.Errorf("calibrate: 16 thread blocks (%.1f GB/s) no longer saturate the switch (%.1f GB/s)", streamBW, env.SwitchBW)
	}
	sizes := calSizes(1 << 28)
	curves := []struct {
		name string
		xfer func(sim.Time, int64) sim.Time
	}{
		{"reduce", func(t sim.Time, s int64) sim.Time { return f.SwitchReduce(t, 0, s, streamBW) }},
		{"bcast", func(t sim.Time, s int64) sim.Time { return f.SwitchBroadcast(t, 0, s, streamBW) }},
		{"redbcast", func(t sim.Time, s int64) sim.Time { return f.SwitchReduceBroadcast(t, 0, s, streamBW) }},
	}
	now := sim.Time(0)
	series := make([]benchkit.Series, len(curves))
	for i, c := range curves {
		var pts []benchkit.Point
		now, pts = calCurve(now, sizes, c.xfer)
		if err := calMonotone(c.name+" "+env.Name, pts); err != nil {
			return err
		}
		if floor := 4 * env.SwitchLat; pts[0].Dur > floor {
			return fmt.Errorf("calibrate property violated: %s small-message latency %d ns exceeds 4x switch latency %d ns",
				c.name, pts[0].Dur, floor)
		}
		if asym := pts[len(pts)-1].AlgoBW(); asym < 0.95*env.SwitchBW {
			return fmt.Errorf("calibrate property violated: %s asymptotic bw %.1f GB/s below 95%% of SwitchBW %.1f",
				c.name, asym, env.SwitchBW)
		}
		series[i] = benchkit.Series{Name: c.name, Points: pts}
	}
	for i, p := range series[0].Points {
		if q := series[1].Points[i]; p.Dur != q.Dur {
			return fmt.Errorf("calibrate property violated: reduce (%d ns) and broadcast (%d ns) diverge at %d B despite symmetric port shapes",
				p.Dur, q.Dur, p.Size)
		}
	}
	// Full-node burst: every rank issues ld_reduce at once. Each op needs
	// ALL member egress ports jointly, so the burst serializes exactly 8x.
	const burstSize = int64(64 << 20)
	wire := sim.Duration(timing.XferTime(burstSize, env.SwitchBW))
	burstStart, burstEnd := now, now
	for rank := 0; rank < env.GPUsPerNode; rank++ {
		if end := f.SwitchReduce(burstStart, rank, burstSize, streamBW); end > burstEnd {
			burstEnd = end
		}
	}
	nOps := sim.Duration(env.GPUsPerNode)
	if got := burstEnd - burstStart; got != nOps*wire+env.SwitchLat {
		return fmt.Errorf("calibrate property violated: %d-rank ld_reduce burst spans %d ns, want exact %dx serialization %d ns",
			env.GPUsPerNode, got, env.GPUsPerNode, nOps*wire+env.SwitchLat)
	}
	eg, err := calGroup(f.Counters(), "egress")
	if err != nil {
		return err
	}
	wantDelay := wire * nOps * (nOps - 1) / 2 // op k queued k wire times
	if s := eg.Stats[0]; s.MaxQueueDepth != env.GPUsPerNode || s.QueueDelayNs != wantDelay {
		return fmt.Errorf("calibrate property violated: egress[0] counters %+v, want depth %d and queue delay %d ns",
			s, env.GPUsPerNode, wantDelay)
	}
	r.Metric("switch serialization factor", "x", float64(burstEnd-burstStart-env.SwitchLat)/float64(wire))
	r.Counters("calibrate-switch "+env.Name+" fabric", int64(burstEnd), f.Counters())
	r.LatencyTable("Calibration: switch-path latency vs size (H100 NVLS)", series)
	r.BandwidthTable("Calibration: switch-path bandwidth vs size (H100 NVLS)", series)
	return nil
}

// calibrateRoofline sweeps the decode step over batch size on the paper's
// Figure 11 setup and audits it against the roofline model computed from
// first principles in this function: the step must equal
// max(memT, compT) + comm exactly, achieved FLOP/s must stay under both
// ceilings, tokens/s must keep improving while memory-bound, and the
// memory-to-compute crossover must land strictly inside the sweep.
func calibrateRoofline(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	env := envFn()
	m := inference.Llama3x70B(8)
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	const seqlen = 1024
	peak := env.PeakTFLOPS * 1e3 * m.Efficiency // FLOP/ns == GFLOP/s
	membw := env.HBMBW * m.Efficiency           // bytes/ns == GB/s
	r.Metric("roofline peak", "GFLOP/s", peak)
	r.Metric("roofline membw", "GB/s", membw)
	r.Printf("Decode roofline: %s TP=8 on %s, seqlen %d (peak %.0f GFLOP/s, mem %.0f GB/s)\n",
		m.Name, env.Name, seqlen, peak, membw)
	r.Printf("%6s %12s %10s %12s %14s %6s\n", "bsz", "step(ms)", "tok/s", "FLOP/B", "GFLOP/s", "bound")
	knee := 0
	var steps []sim.Duration
	var tputs []float64
	var bszs []int
	for bsz := 1; bsz <= 512; bsz *= 2 {
		totalCtx := int64(bsz) * seqlen
		step := inference.DecodeStepCtx(env, m, bsz, totalCtx, timer.Time)
		memBytes := float64(m.WeightBytesPerGPU) + float64(totalCtx*m.KVBytesPerTokenPerGPU)
		memT := sim.Duration(memBytes / membw)
		flops := m.FLOPsPerTokenPerGPU * float64(bsz)
		compT := sim.Duration(flops / peak)
		comm := sim.Duration(m.Layers*m.ARsPerLayer) * timer.Time(int64(bsz)*int64(m.Hidden)*2)
		maxT := memT
		if compT > maxT {
			maxT = compT
		}
		if step != maxT+comm {
			return fmt.Errorf("calibrate property violated: decode step bsz=%d is %d ns, closed form says %d + %d", bsz, step, maxT, comm)
		}
		bound := "mem"
		if compT > memT {
			bound = "comp"
			if knee == 0 {
				knee = bsz
			}
		}
		intensity := flops / memBytes
		achieved := flops / float64(step) // GFLOP/s
		ceiling := peak
		if c := intensity * membw; c < ceiling {
			ceiling = c
		}
		if achieved > ceiling*1.0001 {
			return fmt.Errorf("calibrate property violated: bsz=%d achieves %.0f GFLOP/s above the %.0f roofline ceiling", bsz, achieved, ceiling)
		}
		tput := inference.DecodeThroughput(bsz, step)
		r.Printf("%6d %12.3f %10.0f %12.1f %14.0f %6s\n", bsz, float64(step)/1e6, tput, intensity, achieved, bound)
		r.Duration(fmt.Sprintf("decode step bsz=%d", bsz), int64(step))
		r.Metric(fmt.Sprintf("roofline bsz=%d intensity", bsz), "FLOP/B", intensity)
		r.Metric(fmt.Sprintf("roofline bsz=%d achieved", bsz), "GFLOP/s", achieved)
		steps = append(steps, step)
		tputs = append(tputs, tput)
		bszs = append(bszs, bsz)
	}
	if knee <= bszs[0] || knee >= bszs[len(bszs)-1] || knee == 0 {
		return fmt.Errorf("calibrate property violated: memory-to-compute knee at bsz=%d is not strictly inside the sweep", knee)
	}
	var kneeStep sim.Duration
	for i := range bszs {
		if i > 0 && steps[i] < steps[i-1] {
			return fmt.Errorf("calibrate property violated: decode step shrank from bsz=%d to bsz=%d", bszs[i-1], bszs[i])
		}
		if i > 0 && bszs[i] <= knee && tputs[i] < tputs[i-1] {
			return fmt.Errorf("calibrate property violated: tokens/s fell at memory-bound bsz=%d — batching stopped amortizing weight reads", bszs[i])
		}
		if bszs[i] == knee {
			kneeStep = steps[i]
		}
	}
	if last := steps[len(steps)-1]; last < kneeStep*3/2 {
		return fmt.Errorf("calibrate property violated: compute-bound step grew only %d -> %d ns past the knee", kneeStep, last)
	}
	r.Metric("roofline knee bsz", "", float64(knee))
	return nil
}

// calibrateSweep is the nightly dense grid: the transfer-path curves of
// calibrate-xfer replayed on every supported environment (mesh and switch,
// Ampere through MI300x) with the same shape assertions, plus a MoE
// all-to-all on both transports audited through the counter reports —
// dispatch/combine must put real traffic on the NICs, not just elapse time.
func calibrateSweep(r *Report) error {
	sizes := calSizes(1 << 28)
	envs := []*topology.Env{topology.A100_40G(2), topology.A100_80G(2), topology.H100(2), topology.MI300x(2)}
	for _, env := range envs {
		model := timing.Default(env)
		f := fabric.New(env, model)
		linkBW := env.PeerBW()
		streamBW := model.ThreadCopyBW(8, linkBW)
		p2pCap := streamBW
		if linkBW < p2pCap {
			p2pCap = linkBW
		}
		dmaCap := env.DMABW
		if linkBW < dmaCap {
			dmaCap = linkBW
		}
		curves := []struct {
			name  string
			capBW float64
			xfer  func(sim.Time, int64) sim.Time
		}{
			{"p2p", p2pCap, func(t sim.Time, s int64) sim.Time { return f.P2P(t, 0, 1, s, streamBW) }},
			{"dma", dmaCap, func(t sim.Time, s int64) sim.Time { return f.DMA(t, 0, 1, s) }},
			{"rdma", env.IBBW, func(t sim.Time, s int64) sim.Time { return f.RDMA(t, 0, env.TotalGPUs()/2, s) }},
		}
		now := sim.Time(0)
		series := make([]benchkit.Series, len(curves))
		for i, c := range curves {
			var pts []benchkit.Point
			now, pts = calCurve(now, sizes, c.xfer)
			if err := calMonotone(c.name+" "+env.Name, pts); err != nil {
				return err
			}
			asym := pts[len(pts)-1].AlgoBW()
			if asym < 0.93*c.capBW {
				return fmt.Errorf("calibrate property violated: %s %s asymptotic bw %.1f GB/s below 93%% of the %.1f GB/s cap",
					env.Name, c.name, asym, c.capBW)
			}
			r.Metric(fmt.Sprintf("sweep %s %s asymptotic bw", env.Name, c.name), "GB/s", asym)
			series[i] = benchkit.Series{Name: c.name, Points: pts}
		}
		r.BandwidthTable("Calibration sweep: transfer paths on "+env.Name, series)
		r.Counters("calibrate-sweep "+env.Name+" fabric", int64(now), f.Counters())
	}
	const tokens = 4096
	for _, tr := range []moe.Transport{moe.TransportMSCCLPP, moe.TransportIBGDA} {
		e, err := moe.New(moe.Paper13Env(), moe.DefaultConfig(), tr)
		if err != nil {
			return err
		}
		d, err := e.Dispatch(tokens)
		if err != nil {
			return err
		}
		c, err := e.Combine(tokens)
		if err != nil {
			return err
		}
		nic, err := calGroup(e.Counters(), "nicTx")
		if err != nil {
			return err
		}
		if benchkit.GroupTotals(nic).BusyNs == 0 {
			return fmt.Errorf("calibrate property violated: moe %s all-to-all left the NICs idle — cross-node puts are not priced", tr)
		}
		r.Printf("MoE %s: dispatch %.1f GB/s, combine %.1f GB/s over %d tokens\n", tr, d.AlgoBWGBs, c.AlgoBWGBs, tokens)
		r.Metric(fmt.Sprintf("moe %s dispatch bw", tr), "GB/s", d.AlgoBWGBs)
		r.Metric(fmt.Sprintf("moe %s combine bw", tr), "GB/s", c.AlgoBWGBs)
		r.Counters(fmt.Sprintf("calibrate-sweep moe %s", tr), int64(d.Elapsed+c.Elapsed), e.Counters())
	}
	return nil
}
