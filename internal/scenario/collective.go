package scenario

// The collective-communication artifacts: Table 1 (peer-to-peer
// primitives), Figures 7-10 (AllReduce / AllGather across A100-40G, H100
// and MI300x), the DSL-vs-Primitive comparison (§7.1) and the
// gain-breakdown ablations. Ported from cmd/collbench, which is now a thin
// wrapper; the printed text is byte-identical to the pre-registry command.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/collective"
	"mscclpp/internal/core"
	"mscclpp/internal/dsl"
	"mscclpp/internal/executor"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

type libFns struct {
	names []string
	fns   []benchkit.MeasureFn
}

func allReduceFns() libFns {
	return libFns{
		names: []string{"NCCL", "MSCCL", "MSCCL++"},
		fns:   []benchkit.MeasureFn{benchkit.NCCLAllReduce, benchkit.MSCCLAllReduce, benchkit.MSCCLPPAllReduce},
	}
}

func allGatherFns() libFns {
	return libFns{
		names: []string{"NCCL", "MSCCL", "MSCCL++"},
		fns:   []benchkit.MeasureFn{benchkit.NCCLAllGather, benchkit.MSCCLAllGather, benchkit.MSCCLPPAllGather},
	}
}

// collFigure renders one Figure 7/8-style grid: 1n8g, 2n16g, 4n32g.
func collFigure(r *Report, title string, envFn func(nodes int) *topology.Env, libs libFns) error {
	for _, nodes := range []int{1, 2, 4} {
		env := envFn(nodes)
		label := fmt.Sprintf("%s — %dn%dg", title, nodes, env.TotalGPUs())
		if err := renderPanels(r, label, env, libs); err != nil {
			return err
		}
	}
	return nil
}

func singleNodeFigure(r *Report, title string, env *topology.Env, libs libFns) error {
	return renderPanels(r, title, env, libs)
}

// renderPanels sweeps every (library, size) configuration of one panel
// pair. Each Sweep call fans its per-size simulations out across the worker
// pool (see benchkit.Sweep); results land in index-stable slots, keeping
// the printed tables byte-identical to a sequential run.
func renderPanels(r *Report, label string, env *topology.Env, libs libFns) error {
	var small, large []benchkit.Series
	for i, fn := range libs.fns {
		s, err := benchkit.Sweep(env, libs.names[i], benchkit.SmallSizes(), fn)
		if err != nil {
			return err
		}
		small = append(small, s)
		l, err := benchkit.Sweep(env, libs.names[i], benchkit.LargeSizes(), fn)
		if err != nil {
			return err
		}
		large = append(large, l)
	}
	r.LatencyTable(label+" (small messages)", small)
	r.BandwidthTable(label+" (large messages)", large)
	all := benchkit.Series{Name: "all", Points: append(append([]benchkit.Point{}, small[len(small)-1].Points...), large[len(large)-1].Points...)}
	allBaseN := benchkit.Series{Name: "nccl", Points: append(append([]benchkit.Point{}, small[0].Points...), large[0].Points...)}
	allBaseM := benchkit.Series{Name: "msccl", Points: append(append([]benchkit.Point{}, small[1].Points...), large[1].Points...)}
	r.Speedup("  MSCCL++ vs NCCL ", label+" | MSCCL++ vs NCCL", allBaseN, all)
	r.Speedup("  MSCCL++ vs MSCCL", label+" | MSCCL++ vs MSCCL", allBaseM, all)
	r.Println()
	return nil
}

// table1 reproduces Table 1: MSCCL++ primitive p2p performance vs the best
// achievable on the H100 environment.
func table1(r *Report) error {
	env := topology.H100(2)
	r.Println("\nTable 1: Primitive API peer-to-peer performance (H100)")

	// NVLink throughput: PortChannel DMA, 256 MB.
	{
		m := machine.New(topology.H100(1))
		c := core.NewCommunicator(m)
		const size = 256 << 20
		src, dst := m.Alloc(0, "src", size), m.Alloc(1, "dst", size)
		ch, _ := c.NewPortChannelPairEx(0, 1, src, dst, dst, src)
		m.GPUs[0].Launch("bw", 1, func(k *machine.Kernel) {
			ch.Put(k, 0, 0, size, 0, 1)
			ch.Flush(k)
		})
		if err := m.Run(); err != nil {
			return err
		}
		bw := float64(size) / float64(m.Now()-m.Model.KernelLaunch)
		r.Printf("  NVLink throughput (GB/s): best %.1f   MSCCL++ (PortChannel) %.1f\n", env.DMABW, bw)
		r.Metric("nvlink throughput best", "GB/s", env.DMABW)
		r.Metric("nvlink throughput mscclpp", "GB/s", bw)
	}
	// NVLink latency: MemoryChannel LL packet, 8 B.
	{
		m := machine.New(topology.H100(1))
		c := core.NewCommunicator(m)
		src, dst := m.Alloc(0, "src", 8), m.Alloc(1, "dst", 8)
		ch0, ch1 := c.NewMemoryChannelPair(0, 1, src, dst)
		var lat sim.Duration
		m.GPUs[0].Launch("lat-send", 1, func(k *machine.Kernel) {
			ch0.PutPackets(k, 0, 0, 8, 0, 1, 1)
		})
		m.GPUs[1].Launch("lat-recv", 1, func(k *machine.Kernel) {
			t0 := k.Now()
			ch1.AwaitPackets(k, 1, 8)
			lat = k.Now() - t0
		})
		if err := m.Run(); err != nil {
			return err
		}
		r.Printf("  NVLink latency (ns):      best %d    MSCCL++ (MemoryChannel) %d\n", env.IntraLat, lat)
		r.Duration("nvlink latency best", int64(env.IntraLat))
		r.Duration("nvlink latency mscclpp", int64(lat))
	}
	// InfiniBand throughput: PortChannel RDMA, 256 MB across nodes.
	{
		m := machine.New(topology.H100(2))
		c := core.NewCommunicator(m)
		const size = 256 << 20
		src, dst := m.Alloc(0, "src", size), m.Alloc(8, "dst", size)
		ch, _ := c.NewPortChannelPairEx(0, 8, src, dst, dst, src)
		m.GPUs[0].Launch("ibbw", 1, func(k *machine.Kernel) {
			ch.Put(k, 0, 0, size, 0, 1)
			ch.Flush(k)
		})
		if err := m.Run(); err != nil {
			return err
		}
		bw := float64(size) / float64(m.Now()-m.Model.KernelLaunch)
		r.Printf("  InfiniBand throughput (GB/s): best %.2f  MSCCL++ (PortChannel) %.2f\n", env.IBBW, bw)
		r.Metric("ib throughput best", "GB/s", env.IBBW)
		r.Metric("ib throughput mscclpp", "GB/s", bw)
	}
	// InfiniBand latency: PortChannel 4 B put+signal end to end.
	{
		m := machine.New(topology.H100(2))
		c := core.NewCommunicator(m)
		src, dst := m.Alloc(0, "src", 4), m.Alloc(8, "dst", 4)
		ch0, ch1 := c.NewPortChannelPairEx(0, 8, src, dst, dst, src)
		var lat sim.Duration
		m.GPUs[0].Launch("iblat-s", 1, func(k *machine.Kernel) {
			ch0.PutWithSignal(k, 0, 0, 4, 0, 1)
		})
		m.GPUs[8].Launch("iblat-r", 1, func(k *machine.Kernel) {
			t0 := k.Now()
			ch1.Wait(k)
			lat = k.Now() - t0
		})
		if err := m.Run(); err != nil {
			return err
		}
		r.Printf("  InfiniBand latency (us):  best %.2f  MSCCL++ (PortChannel) %.2f\n",
			float64(env.IBLat)/1000, float64(lat)/1000)
		r.Duration("ib latency best", int64(env.IBLat))
		r.Duration("ib latency mscclpp", int64(lat))
	}
	return nil
}

// dslVsPrim reproduces the §7.1 DSL-vs-Primitive comparison.
func dslVsPrim(r *Report) error {
	r.Println("\nDSL vs Primitive API (AllReduce, A100-40G 1n8g)")
	type pair struct {
		name  string
		size  int64
		nTB   int
		build func(ranks int, size int64, nTB int) (*dsl.Program, error)
		prim  collective.Algorithm
	}
	cases := []pair{
		{"1PA-LL 8KB", 8 << 10, 2, dsl.BuildAllReduce1PA, &collective.AllReduce1PA{TB: 2}},
		{"1PA-LL 64KB", 64 << 10, 2, dsl.BuildAllReduce1PA, &collective.AllReduce1PA{TB: 2}},
		{"2PA-HB 1MB", 1 << 20, 4, dsl.BuildAllReduce2PAHB, &collective.AllReduce2PAHB{TB: 4}},
		{"2PA-HB 16MB", 16 << 20, 8, dsl.BuildAllReduce2PAHB, &collective.AllReduce2PAHB{TB: 8}},
	}
	var overheads []float64
	for _, cse := range cases {
		prog, err := cse.build(8, cse.size, cse.nTB)
		if err != nil {
			return err
		}
		pl, err := prog.Lower()
		if err != nil {
			return err
		}
		// DSL-executed.
		mD := machine.New(topology.A100_40G(1))
		mD.MaterializeLimit = 0
		cD := core.NewCommunicator(mD)
		inD, outD := allocBufs(mD, cse.size)
		inst, err := executor.New(cD, pl, inD, outD)
		if err != nil {
			return err
		}
		var dslT sim.Duration
		for i := 0; i < 2; i++ {
			start := mD.Engine.Now()
			inst.Launch()
			if err := mD.Run(); err != nil {
				return err
			}
			dslT = mD.Engine.Now() - start
		}
		// Primitive.
		mP := machine.New(topology.A100_40G(1))
		mP.MaterializeLimit = 0
		cP := collective.New(mP)
		inP, outP := allocBufs(mP, cse.size)
		ex, err := cse.prim.Prepare(cP, inP, outP)
		if err != nil {
			return err
		}
		var primT sim.Duration
		for i := 0; i < 2; i++ {
			if primT, err = cP.Run(ex); err != nil {
				return err
			}
		}
		ov := float64(dslT-primT) / float64(primT) * 100
		overheads = append(overheads, ov)
		r.Printf("  %-12s  primitive %8.2fus   DSL %8.2fus   overhead %+.1f%%\n",
			cse.name, float64(primT)/1000, float64(dslT)/1000, ov)
		r.Duration(cse.name+" primitive", int64(primT))
		r.Duration(cse.name+" dsl", int64(dslT))
	}
	var sum float64
	for _, o := range overheads {
		sum += o
	}
	r.Printf("  mean DSL overhead: %.1f%% (paper: ~3%%, up to 18%%)\n", sum/float64(len(overheads)))
	r.Metric("mean dsl overhead", "%", sum/float64(len(overheads)))
	return nil
}

func allocBufs(m *machine.Machine, size int64) (in, out []*mem.Buffer) {
	for r := 0; r < len(m.GPUs); r++ {
		in = append(in, m.Alloc(r, "in", size))
		out = append(out, m.Alloc(r, "out", size))
	}
	return
}

// ablation reproduces the §7.1/§7.2 gain-breakdown observations.
func ablation(r *Report) error {
	r.Println("\nAblations (gain breakdown)")
	measure := func(env *topology.Env, algo collective.Algorithm, size int64) (sim.Duration, error) {
		m := machine.New(env)
		m.MaterializeLimit = 0
		c := collective.New(m)
		in, out := allocBufs(m, size)
		ex, err := algo.Prepare(c, in, out)
		if err != nil {
			return 0, err
		}
		if _, err := c.Run(ex); err != nil {
			return 0, err
		}
		return c.Run(ex)
	}
	// (a) LL vs HB one-phase at 1KB: relaxed synchronization.
	a100 := topology.A100_40G(1)
	ll, err := measure(a100, &collective.AllReduce1PA{}, 1<<10)
	if err != nil {
		return err
	}
	hb, err := measure(a100, &collective.AllReduce1PAHB{}, 1<<10)
	if err != nil {
		return err
	}
	r.Printf("  1KB one-phase: LL %0.2fus vs HB-signal %0.2fus (%.0f%% latency cut from LL flags)\n",
		float64(ll)/1000, float64(hb)/1000, (1-float64(ll)/float64(hb))*100)
	r.Duration("1KB one-phase ll", int64(ll))
	r.Duration("1KB one-phase hb", int64(hb))
	// (b) PortChannel vs MemoryChannel ring at 1GB (paper: +6.2%).
	port, err := measure(a100, &collective.AllReduce2PR{}, 1<<30)
	if err != nil {
		return err
	}
	memv, err := measure(a100, &collective.AllReduce2PR{UseMemoryChannel: true}, 1<<30)
	if err != nil {
		return err
	}
	r.Printf("  1GB 2PR: PortChannel %.2fms vs MemoryChannel %.2fms (+%.1f%% bandwidth)\n",
		float64(port)/1e6, float64(memv)/1e6, (float64(memv)/float64(port)-1)*100)
	r.Duration("1GB 2PR portchannel", int64(port))
	r.Duration("1GB 2PR memorychannel", int64(memv))
	// (c) SwitchChannel vs MemoryChannel 2PA on H100 (paper: up to +56% BW).
	h100 := topology.H100(1)
	sw, err := measure(h100, &collective.AllReduce2PASwitch{}, 256<<20)
	if err != nil {
		return err
	}
	mc, err := measure(h100, &collective.AllReduce2PAHB{}, 256<<20)
	if err != nil {
		return err
	}
	r.Printf("  256MB H100: SwitchChannel %.2fms vs MemoryChannel %.2fms (+%.0f%% bandwidth)\n",
		float64(sw)/1e6, float64(mc)/1e6, (float64(mc)/float64(sw)-1)*100)
	r.Duration("256MB H100 switchchannel", int64(sw))
	r.Duration("256MB H100 memorychannel", int64(mc))
	return nil
}
