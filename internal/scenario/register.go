package scenario

// All paper artifacts are registered here, in one place, so presentation
// order (paperbench -run all, -list) is explicit rather than an accident
// of file-init ordering. Slow scenarios are the multi-panel figure grids
// whose 1GB sweeps dominate runtime; they are skipped by the default
// `go test` golden replay (run them with -tags slow) but always covered by
// `paperbench -run all -check`.

import "mscclpp/internal/topology"

func init() {
	Register(Scenario{
		Name:  "table1",
		Title: "Table 1: Primitive API peer-to-peer performance (H100)",
		Run:   table1,
	})
	Register(Scenario{
		Name:  "fig7",
		Title: "Figure 7: AllReduce, A100-40G (1n8g, 2n16g, 4n32g)",
		Slow:  true,
		Run: func(r *Report) error {
			return collFigure(r, "Figure 7: AllReduce, A100-40G", topology.A100_40G, allReduceFns())
		},
	})
	Register(Scenario{
		Name:  "fig8",
		Title: "Figure 8: AllGather, A100-40G (1n8g, 2n16g, 4n32g)",
		Slow:  true,
		Run: func(r *Report) error {
			return collFigure(r, "Figure 8: AllGather, A100-40G", topology.A100_40G, allGatherFns())
		},
	})
	Register(Scenario{
		Name:  "fig9",
		Title: "Figure 9: AllReduce, H100 (NVLS)",
		Slow:  true,
		Run: func(r *Report) error {
			return singleNodeFigure(r, "Figure 9: AllReduce, H100 (NVLS)", topology.H100(1), allReduceFns())
		},
	})
	Register(Scenario{
		Name:  "fig10",
		Title: "Figure 10: AllReduce, MI300x (RCCL baseline)",
		Run: func(r *Report) error {
			return singleNodeFigure(r, "Figure 10: AllReduce, MI300x (RCCL baseline)", topology.MI300x(1), allReduceFns())
		},
	})
	Register(Scenario{
		Name:  "dslvsprim",
		Title: "DSL vs Primitive API overhead (§7.1, AllReduce, A100-40G 1n8g)",
		Run:   dslVsPrim,
	})
	Register(Scenario{
		Name:  "ablation",
		Title: "Gain-breakdown ablations (§7.1/§7.2)",
		Run:   ablation,
	})
	Register(Scenario{
		Name:  "fig11",
		Title: "Figure 11: Llama3-70B decode speedup (vLLM, TP=8, A100-80G)",
		Run:   fig11,
	})
	Register(Scenario{
		Name:  "fig12",
		Title: "Figure 12: DeepSeek-V3 decode throughput (SGLang, TP=16, 2x H100)",
		Run:   fig12,
	})
	Register(Scenario{
		Name:  "customar",
		Title: "vLLM custom AllReduce kernel vs MSCCL++ (§7.3, A100-80G, TP=8)",
		Run:   customAR,
	})
	Register(Scenario{
		Name:  "fig13",
		Title: "Figure 13: DeepEP dispatch/combine bandwidth (2x H100, 16 GPUs)",
		Run:   fig13,
	})
	Register(Scenario{
		Name:  "serve-llama70b",
		Title: "Serving: Llama3-70B continuous batching under Poisson load (TP=8, A100-80G, NCCL vs MSCCL++)",
		Slow:  true,
		Run:   serveLlama70B,
	})
	Register(Scenario{
		Name:  "serve-deepseek",
		Title: "Serving: DeepSeek-V3 steady vs bursty arrivals (TP=16, 2x H100, MSCCL++)",
		Run:   serveDeepSeek,
	})
	Register(Scenario{
		Name:  "serve-ratesweep",
		Title: "Serving: goodput under SLO vs offered rate across environments (Llama3-70B TP=8)",
		Slow:  true,
		Run:   serveRateSweep,
	})
	Register(Scenario{
		Name:  "serve-routing",
		Title: "Routing: round-robin vs JSQ vs prefix-affinity over 3 replicas, Poisson and bursty load (Llama3-70B TP=8)",
		Run:   serveRouting,
	})
	Register(Scenario{
		Name:  "serve-affinity",
		Title: "Routing: prefix-cache affinity vs JSQ across prefix-reuse fractions (3 replicas, Llama3-70B TP=8)",
		Slow:  true,
		Run:   serveAffinity,
	})
	Register(Scenario{
		Name:  "serve-disagg",
		Title: "Disaggregation: prefill/decode pools vs chunked prefill across pool ratios and prompt mixes, fabric-priced KV handoff (4 slots, Llama3-70B TP=8)",
		Run:   serveDisagg,
	})
	Register(Scenario{
		Name:  "serve-planetary",
		Title: "Planetary serving: 1M+ diurnal requests over 8 regional cells x 3 JSQ replicas, streamed metric sketches, two priority tiers (Llama3-70B TP=8)",
		Slow:  true,
		Run:   servePlanetary,
	})
	Register(Scenario{
		Name:  "serve-moe",
		Title: "Serving: DeepSeek-V3 expert-parallel MoE vs dense-equivalent, fabric-priced dispatch/combine, hot-expert skew and rebalancing (EP=16, two-node Table-2 envs)",
		Slow:  true,
		Run:   serveMoE,
	})
	Register(Scenario{
		Name:  "serve-autoscale",
		Title: "Autoscaling: SLO-PID vs target-utilization vs static peak over a 2-tenant compressed diurnal day, GPU-hour economics and graceful drains (fleet 1-4, Llama3-70B TP=8)",
		Slow:  true,
		Run:   serveAutoscale,
	})
	Register(Scenario{
		Name:  "serve-overload",
		Title: "Overload: paged KV + recompute/swap preemption vs whole-request reservation at 2x load, two priority tiers (Llama3-70B TP=8)",
		Run:   serveOverload,
	})
	Register(Scenario{
		Name:  "calibrate-p2p",
		Title: "Calibration: P2P latency/bandwidth curves with half-power knee check (H100, MI300x)",
		Run:   calibrateP2P,
	})
	Register(Scenario{
		Name:  "calibrate-xfer",
		Title: "Calibration: P2P vs DMA vs RDMA curves, NIC aggregation ordering and contention counters (2x H100)",
		Run:   calibrateXfer,
	})
	Register(Scenario{
		Name:  "calibrate-switch",
		Title: "Calibration: NVLS switch reduce/broadcast curves and exact egress serialization under a full-node burst (H100)",
		Run:   calibrateSwitch,
	})
	Register(Scenario{
		Name:  "calibrate-roofline",
		Title: "Calibration: decode-step roofline sweep with closed-form knee audit (Llama3-70B TP=8, A100-80G)",
		Run:   calibrateRoofline,
	})
	Register(Scenario{
		Name:  "calibrate-sweep",
		Title: "Calibration sweep: transfer curves across all environments plus MoE all-to-all counter audit (nightly)",
		Slow:  true,
		Run:   calibrateSweep,
	})
}
