package scenario

// Docs-vs-registry drift gate: the "Registered scenarios" table in
// README.md must name exactly the scenarios the registry knows — the
// serve-* artifacts went undocumented for two PRs before this test
// existed, which is precisely the drift it now prevents.

import (
	"os"
	"regexp"
	"testing"
)

// readmeScenarioRow matches a table row of the "Registered scenarios"
// section: a leading backticked scenario name in the first column.
var readmeScenarioRow = regexp.MustCompile("(?m)^\\| `([a-z0-9-]+)` \\|")

func TestReadmeMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range readmeScenarioRow.FindAllStringSubmatch(string(data), -1) {
		if documented[m[1]] {
			t.Errorf("README.md lists scenario %q twice", m[1])
		}
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("README.md has no scenario table rows — did the \"Registered scenarios\" section move?")
	}
	registered := map[string]bool{}
	for _, s := range All() {
		registered[s.Name] = true
		if !documented[s.Name] {
			t.Errorf("scenario %q is registered but missing from README.md's scenario table", s.Name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README.md documents scenario %q which is not in the registry (renamed or retired?)", name)
		}
	}
}
