package scenario

// serve-planetary: the million-request artifact. Eight regional cells —
// each three routed replicas behind JSQ — serve independently seeded
// diurnal request streams (sinusoidal day/night load, two priority
// tiers), 1,024,000 requests in total across a multi-hour virtual day.
// Every replica records in the default streaming-metrics mode, so memory
// stays constant in the request count: per-request rows are never
// retained, completions fold into per-tier quantile sketches at
// completion time and the planet-wide view is a sketch merge, not a row
// concatenation. The artifact is golden-gated like every other scenario;
// the companion CI job (planetary-smoke) additionally pins bytes/request.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Planetary cell geometry: total requests must clear the million-request
// bar with every cell at a load its three replicas can actually sustain
// (peak 8 req/s per replica; the probe point where a single replica still
// meets the SLO on every request).
const (
	planetaryCells       = 8
	planetaryPerCell     = 128_000
	planetaryPeakRate    = 24.0 // cluster req/s per cell at the diurnal peak
	planetaryTroughFrac  = 0.25 // night load as a fraction of peak
	planetaryPeriod      = 2 * 3600 * sim.Second
	planetaryInteractive = 0.7 // fraction of traffic in the interactive tier
)

// batchSLO is the relaxed objective of the background (priority-1) tier.
var batchSLO = serve.SLO{MaxTTFT: 20 * sim.Second, MaxTPOT: 400 * sim.Millisecond}

func servePlanetary(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	tierSLOs := map[int]serve.SLO{1: batchSLO}
	replica := serve.Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              timer.Time,
		MaxBatch:        32,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		// Streaming metrics (the zero value, spelled out because it is the
		// point of this artifact): SLOs are judged at completion time, so
		// they are part of the replica configuration.
		Metrics:  serve.MetricsStream,
		SLO:      serveSLO,
		TierSLOs: tierSLOs,
	}

	r.Printf("\nPlanetary serving: %d regional cells x 3 replicas (JSQ), %d diurnal requests total\n",
		planetaryCells, planetaryCells*planetaryPerCell)
	r.Printf("  (Llama3-70B TP=8 per replica, peak %.3g req/s per cell, %.2gx night load, 2h cycle, 70%% interactive)\n",
		planetaryPeakRate, planetaryTroughFrac)
	r.Printf("  %-10s %9s %9s %9s %9s %9s %7s\n",
		"region", "requests", "ttft p50", "ttft p99", "e2e p99", "goodput", "slo%")

	results := make([]*serve.RoutedResult, planetaryCells)
	errs := make([]error, planetaryCells)
	benchkit.Parallel(planetaryCells, func(i int) {
		// Each region is an independent shard of the planetary day: its
		// own seed, its own diurnal cycle, the shared replica config.
		wl := serve.Diurnal(41000+uint64(i), planetaryPerCell, planetaryPeakRate, planetaryTroughFrac,
			planetaryPeriod, serve.LogNormalLen(384, 0.6, 1024), serve.LogNormalLen(48, 0.5, 128))
		wl = serve.WithPriorities(wl, 42000+uint64(i), planetaryInteractive)
		res, err := serve.RunRouted(serve.RouterConfig{Replicas: 3, Policy: serve.NewJSQ(), Replica: replica}, wl)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = res
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	parts := make([]*serve.Result, planetaryCells)
	var total int
	for i, res := range results {
		parts[i] = res.Merged
		s := res.Merged.SummarizeTiered(serveSLO, tierSLOs)
		total += s.Requests
		region := fmt.Sprintf("region-%d", i)
		r.Printf("  %-10s %9d %9.1f %9.1f %9.1f %9.0f %6.1f%%\n",
			region, s.Requests, s.TTFTp50ms, s.TTFTp99ms, s.E2Ep99ms, s.GoodputTokS, 100*s.SLOAttainment)
		r.Metric(region+" slo_attainment", "frac", s.SLOAttainment)
	}
	// The artifact's contract: this is the million-request run. If cell
	// geometry is ever edited below the bar, fail the scenario itself
	// rather than silently shrinking the claim.
	if total < 1_000_000 {
		return fmt.Errorf("serve-planetary completed %d requests, want >= 1000000", total)
	}

	planet := serve.MergeResults(parts...)
	s := planet.SummarizeTiered(serveSLO, tierSLOs)
	r.Printf("  %-10s %9d %9.1f %9.1f %9.1f %9.0f %6.1f%%\n",
		"planet", s.Requests, s.TTFTp50ms, s.TTFTp99ms, s.E2Ep99ms, s.GoodputTokS, 100*s.SLOAttainment)
	r.Println("\n  Per-tier (planet-wide, streamed sketches):")
	r.Printf("  %-12s %9s %9s %9s %9s %7s\n", "tier", "requests", "ttft p50", "ttft p99", "goodput", "slo%")
	names := map[int]string{0: "interactive", 1: "batch"}
	for _, t := range s.ByTier {
		r.Printf("  %-12s %9d %9.1f %9.1f %9.0f %6.1f%%\n",
			names[t.Priority], t.Requests, t.TTFTp50ms, t.TTFTp99ms, t.GoodputTokS, 100*t.SLOAttainment)
		r.Metric(fmt.Sprintf("tier%d slo_attainment", t.Priority), "frac", t.SLOAttainment)
		r.Metric(fmt.Sprintf("tier%d ttft_p99", t.Priority), "ms", t.TTFTp99ms)
	}
	r.Metric("requests", "count", float64(s.Requests))
	r.Metric("ttft_p50", "ms", s.TTFTp50ms)
	r.Metric("ttft_p99", "ms", s.TTFTp99ms)
	r.Metric("e2e_p99", "ms", s.E2Ep99ms)
	r.Metric("goodput", "tok/s", s.GoodputTokS)
	r.Metric("slo_attainment", "frac", s.SLOAttainment)
	return nil
}
