package scenario

// The overload-robustness artifact: one replica engine pushed to roughly
// twice its sustainable load on a deliberately small KV budget, comparing
// whole-request KV reservation against the block-granular paged allocator
// (internal/serve's KVPaged) across admission orders, with a two-tier
// priority workload and auto recompute-or-swap preemption. The in-run
// assertions pin the three properties the paged allocator exists for:
// paged admission strictly out-goodputs whole-footprint reservation at
// equal load, the interactive tier's SLO attainment survives the overload
// while the batch tier absorbs the loss, and every preemption's
// recompute-or-swap choice matches the cheaper closed-form cost.

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/topology"
)

// interactiveSLOFloor is the in-run floor on the interactive tier's SLO
// attainment under 2x overload for every paged cell. The reserve baseline
// is exempt: without preemption the scheduler cannot shield one tier from
// the other once the pool saturates.
const interactiveSLOFloor = 0.75

// serveOverload: Llama3-70B TP=8 on one A100-80G node with the KV budget
// squeezed to 256 MiB (~6.5k resident tokens, ~410 16-token blocks) under
// a 180-request Poisson stream at twice the sustainable rate, 30% of it
// interactive (priority 0) and the rest batch. Cell 0 is the
// whole-request reservation baseline; the paged cells run block-granular
// admission with auto recompute-or-swap preemption under FIFO, SJF and
// decode-prioritizing admission orders.
func serveOverload(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)

	wl := serve.WithPriorities(
		serve.Poisson(7001, 180, 24,
			serve.LogNormalLen(256, 0.6, 1024), serve.LogNormalLen(64, 0.5, 192)),
		7001, 0.3)

	base := routedReplica(timer.Time)
	base.KVCapacityBytes = 256 << 20
	base.Preempt = serve.PreemptAuto

	cells := []struct {
		name string
		kv   serve.KVPolicy
		adm  serve.AdmissionOrder
	}{
		{"reserve-fifo", serve.KVReserve, serve.AdmitFIFO},
		{"paged-fifo", serve.KVPaged, serve.AdmitFIFO},
		{"paged-sjf", serve.KVPaged, serve.AdmitSJF},
		{"paged-decode1st", serve.KVPaged, serve.AdmitDecodeFirst},
	}
	results := make([]*serve.Result, len(cells))
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		cfg := base
		cfg.KVPolicy = cells[i].kv
		cfg.Admission = cells[i].adm
		results[i], errs[i] = serve.Run(cfg, wl)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Println("\nOverload: paged KV + preemption vs whole-request reservation at 2x load (Llama3-70b TP=8, A100-80G, MSCCL++, 256 MiB KV)")
	r.Println("180-request Poisson at 24 req/s, 30% interactive / 70% batch; paged cells use 16-token blocks and auto recompute-or-swap eviction")
	r.Printf("  %-16s %9s %9s %9s %7s %9s %9s %8s %9s %8s %8s\n",
		"config", "ttft p50", "ttft p99", "goodput", "slo%", "preempts", "rc/swap", "swap GB", "rejected", "int slo%", "bat slo%")
	sums := make([]serve.Summary, len(cells))
	for i, c := range cells {
		res := results[i]
		s := res.SummarizeTiered(serveSLO, nil)
		sums[i] = s
		tier := func(p int) serve.TierSummary {
			for _, ts := range s.ByTier {
				if ts.Priority == p {
					return ts
				}
			}
			return serve.TierSummary{}
		}
		it, bt := tier(0), tier(1)
		r.Printf("  %-16s %9.1f %9.1f %9.0f %6.1f%% %9d %5d/%-3d %8.2f %9d %7.1f%% %7.1f%%\n",
			c.name, s.TTFTp50ms, s.TTFTp99ms, s.GoodputTokS, 100*s.SLOAttainment,
			res.Preemptions, res.Recomputes, res.Swaps, float64(res.SwapBytes)/1e9,
			res.Rejected, 100*it.SLOAttainment, 100*bt.SLOAttainment)
		recordServeSummary(r, c.name, s)
		r.Metric(c.name+" preemptions", "count", float64(res.Preemptions))
		r.Metric(c.name+" swap_bytes", "GB", float64(res.SwapBytes)/1e9)
		r.Metric(c.name+" interactive_slo", "frac", it.SLOAttainment)
		r.Metric(c.name+" batch_slo", "frac", bt.SLOAttainment)

		if c.kv == serve.KVPaged {
			// (b) The priority mechanism must hold under overload: the
			// interactive tier stays above the floor, and strictly above the
			// batch tier that absorbs the loss.
			if res.Preemptions == 0 {
				return fmt.Errorf("overload property violated: %s never preempted — the load is not 2x capacity", c.name)
			}
			if it.SLOAttainment < interactiveSLOFloor {
				return fmt.Errorf("overload property violated: %s interactive SLO attainment %.3f below the %.2f floor",
					c.name, it.SLOAttainment, interactiveSLOFloor)
			}
			if it.SLOAttainment <= bt.SLOAttainment {
				return fmt.Errorf("overload property violated: %s interactive tier (%.3f) does not beat batch (%.3f) — priority classes are inert",
					c.name, it.SLOAttainment, bt.SLOAttainment)
			}
			// (c) Every preemption's recompute-or-swap choice must match the
			// cheaper closed-form cost recorded in the event itself.
			for _, ev := range res.Preempts {
				want := "recompute"
				if ev.SwapCostNs < ev.RecomputeCostNs {
					want = "swap"
				}
				if ev.Mode != want {
					return fmt.Errorf("overload property violated: %s preempted request %d by %s where %s is cheaper (recompute %d ns, swap %d ns)",
						c.name, ev.RequestID, ev.Mode, want, ev.RecomputeCostNs, ev.SwapCostNs)
				}
			}
		}
	}

	// (a) The headline: block-granular admission must strictly out-goodput
	// whole-request reservation at equal load and equal admission order —
	// reservation holds decode-phase bytes idle for the whole prompt queue
	// wait, paged admission hands them to requests that can use them now.
	if sums[1].GoodputTokS <= sums[0].GoodputTokS {
		return fmt.Errorf("overload property violated: paged-fifo goodput %.0f tok/s does not beat reserve-fifo %.0f tok/s",
			sums[1].GoodputTokS, sums[0].GoodputTokS)
	}
	r.Printf("  paged-fifo goodput %.0f tok/s vs reserve-fifo %.0f tok/s (+%.0f%%); interactive tier held >= %.0f%% SLO in every paged cell\n",
		sums[1].GoodputTokS, sums[0].GoodputTokS,
		100*(sums[1].GoodputTokS/sums[0].GoodputTokS-1), 100*interactiveSLOFloor)
	return nil
}
