package scenario

// The disaggregated-serving artifact: prefill/decode pool splits versus
// chunked prefill at equal GPU count, with the KV handoff priced on the
// cluster fabric (internal/serve's RunDisaggregated over internal/fabric's
// DMA/RDMA occupancy models). The sweep walks prompt-length mixes and
// prefill:decode ratios to locate the crossover the ROADMAP asks for:
// where isolating prefill stops costing (handoff + fewer decode GPUs) more
// than it saves (no prefill chunks polluting decode iterations).

import (
	"fmt"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/serve"
	"mscclpp/internal/topology"
)

// serveDisagg: Llama3-70B TP=8 replicas on A100-80G nodes, 4 replica slots
// total, under Poisson load at three prompt-length mixes (median 256, 768
// and 1536 prompt tokens, arrival rates scaled to keep offered token load
// comparable). For each mix the chunked-prefill baseline (RunRouted, 4
// unified replicas, JSQ) is compared against every prefill:decode split of
// the same 4 slots (1p3d, 2p2d, 3p1d); every finished prefill pays a real
// KV handoff over the fabric's RDMA NICs. The in-run assertions pin the
// headline crossover: at the long-prompt mix the best split must strictly
// beat chunked prefill on p99 TTFT, at the short-prompt mix chunked must
// stay at least as good on SLO attainment, and every handoff must have
// cost visibly nonzero time (removing the fabric pricing changes this
// golden).
func serveDisagg(r *Report) error {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	const slots = 4

	mixes := []struct {
		name   string
		median float64
		max    int
		rate   float64
		seed   uint64
	}{
		{"short-256", 256, 1024, 28, 6001},
		{"mid-768", 768, 3072, 20, 6002},
		{"long-1536", 1536, 6144, 14, 6003},
	}
	// Config 0 is the chunked baseline; configs 1..slots-1 are the
	// prefill:decode splits of the same GPU count.
	type split struct{ prefill, decode int }
	configs := []split{{0, slots}}
	for p := 1; p < slots; p++ {
		configs = append(configs, split{p, slots - p})
	}
	cfgName := func(c split) string {
		if c.prefill == 0 {
			return fmt.Sprintf("chunked-%d", slots)
		}
		return fmt.Sprintf("disagg-%dp%dd", c.prefill, c.decode)
	}

	type cell struct{ mix, cfg int }
	var cells []cell
	for mi := range mixes {
		for ci := range configs {
			cells = append(cells, cell{mi, ci})
		}
	}
	sums := make([]serve.Summary, len(cells))
	disagg := make([]*serve.DisaggResult, len(cells)) // nil for chunked cells
	errs := make([]error, len(cells))
	benchkit.Parallel(len(cells), func(i int) {
		c := cells[i]
		mx := mixes[c.mix]
		wl := serve.Poisson(mx.seed, 280, mx.rate,
			serve.LogNormalLen(mx.median, 0.6, mx.max), serve.LogNormalLen(96, 0.5, 256))
		cfg := configs[c.cfg]
		if cfg.prefill == 0 {
			res, err := serve.RunRouted(serve.RouterConfig{
				Replicas: slots,
				Policy:   serve.NewJSQ(),
				Replica:  routedReplica(timer.Time),
			}, wl)
			if err != nil {
				errs[i] = err
				return
			}
			sums[i] = res.Summarize(serveSLO)
			return
		}
		res, err := serve.RunDisaggregated(serve.DisaggConfig{
			PrefillReplicas: cfg.prefill,
			DecodeReplicas:  cfg.decode,
			Replica:         routedReplica(timer.Time),
		}, wl)
		if err != nil {
			errs[i] = err
			return
		}
		disagg[i] = res
		sums[i] = res.Summarize(serveSLO)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	r.Println("\nDisaggregation: prefill/decode pools vs chunked prefill at equal GPU count (4x Llama3-70b TP=8 slots, A100-80G, MSCCL++, JSQ)")
	r.Println("280-request Poisson per cell; prompt medians 256/768/1536 tokens at 28/20/14 req/s; KV handoff priced on the fabric (RDMA, per-TP-rank shards)")
	r.Printf("  %-10s %-12s %9s %9s %9s %9s %7s %11s %9s\n",
		"mix", "config", "ttft p50", "ttft p99", "tpot p99", "goodput", "slo%", "handoff ms", "moved GB")
	for i, c := range cells {
		s := sums[i]
		name := cfgName(configs[c.cfg])
		r.Printf("  %-10s %-12s %9.1f %9.1f %9.1f %9.0f %6.1f%%",
			mixes[c.mix].name, name, s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment)
		key := mixes[c.mix].name + " " + name
		recordServeSummary(r, key, s)
		if d := disagg[i]; d != nil {
			r.Printf(" %11.2f %9.1f", float64(d.HandoffMeanNs)/1e6, float64(d.HandoffBytes)/1e9)
			r.Metric(key+" handoff_mean", "ms", float64(d.HandoffMeanNs)/1e6)
			r.Metric(key+" handoff_max", "ms", float64(d.HandoffMaxNs)/1e6)
			r.Metric(key+" handoff_bytes", "GB", float64(d.HandoffBytes)/1e9)
			// The fabric pricing must be live: a free handoff means the
			// DMA/RDMA occupancy model was bypassed.
			if d.Handoffs == 0 || d.HandoffMeanNs <= 0 {
				return fmt.Errorf("disagg property violated: %s recorded %d handoffs at mean %d ns — KV transfer is free",
					key, d.Handoffs, d.HandoffMeanNs)
			}
		}
		r.Println()
	}

	// The crossover this artifact exists to locate, enforced in-run. At
	// the long-prompt mix the best prefill:decode split must strictly beat
	// chunked prefill's p99 TTFT at equal GPU count — prefill chunks no
	// longer stall decode batches, and that outweighs the fabric handoff.
	// At the short-prompt mix the trade must flip: chunked prefill's SLO
	// attainment stays at least as good as every split's (dedicating slots
	// to prefill starves decode or queues prompts for no benefit).
	byKey := func(mix string, cfg int) serve.Summary {
		for i, c := range cells {
			if mixes[c.mix].name == mix && c.cfg == cfg {
				return sums[i]
			}
		}
		panic("disagg: missing cell " + mix)
	}
	longChunked := byKey("long-1536", 0)
	bestCfg, best := 0, longChunked
	for ci := 1; ci < len(configs); ci++ {
		if s := byKey("long-1536", ci); s.TTFTp99ms < best.TTFTp99ms {
			bestCfg, best = ci, s
		}
	}
	if bestCfg == 0 {
		return fmt.Errorf("disagg property violated: no pool split beats chunked prefill's long-prompt p99 TTFT (%.1f ms)",
			longChunked.TTFTp99ms)
	}
	shortChunked := byKey("short-256", 0)
	for ci := 1; ci < len(configs); ci++ {
		if s := byKey("short-256", ci); s.SLOAttainment > shortChunked.SLOAttainment {
			return fmt.Errorf("disagg property violated: %s beats chunked prefill on short-prompt SLO attainment (%.3f vs %.3f) — no crossover",
				cfgName(configs[ci]), s.SLOAttainment, shortChunked.SLOAttainment)
		}
	}
	r.Printf("  crossover: long-1536 p99 TTFT %s %.1f ms vs chunked %.1f ms (-%.0f%%); short-256 stays with chunked prefill\n",
		cfgName(configs[bestCfg]), best.TTFTp99ms, longChunked.TTFTp99ms, 100*(1-best.TTFTp99ms/longChunked.TTFTp99ms))
	return nil
}
