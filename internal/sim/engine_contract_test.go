package sim

// Contract tests for the engine guarantees the hot-path overhaul must
// preserve: RunUntil boundary semantics, deadlock reporting with daemons,
// Cond.Broadcast FIFO wake order, deferred semaphore delivery, and run-to-run
// determinism of both timing and event counts.

import "testing"

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	var ran []Time
	e.At(99, func() { ran = append(ran, 99) })
	e.At(100, func() { ran = append(ran, 100) })
	e.At(101, func() { ran = append(ran, 101) })
	if e.RunUntil(100) {
		t.Fatal("RunUntil(100) claimed completion with an event at 101 pending")
	}
	if len(ran) != 2 || ran[0] != 99 || ran[1] != 100 {
		t.Fatalf("events <= deadline ran: %v, want [99 100]", ran)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d after RunUntil(100), want 100", e.Now())
	}
	if !e.RunUntil(101) {
		t.Fatal("RunUntil(101) should drain the queue")
	}
	if len(ran) != 3 || ran[2] != 101 {
		t.Fatalf("ran = %v, want trailing 101", ran)
	}
}

// TestRunUntilSleeperNotOvershot pins the horizon contract: a process whose
// engine is otherwise idle may advance the clock inline, but never past a
// RunUntil deadline — work after the deadline must stay pending.
func TestRunUntilSleeperNotOvershot(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("walker", func(p *Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(100)
			steps++
		}
	})
	if e.RunUntil(350) {
		t.Fatal("RunUntil(350) claimed completion")
	}
	if steps != 3 {
		t.Fatalf("steps = %d at t<=350, want 3", steps)
	}
	if e.Now() > 350 {
		t.Fatalf("clock overshot deadline: %d", e.Now())
	}
	if !e.RunUntil(10_000) {
		t.Fatal("final RunUntil should drain")
	}
	if steps != 8 || e.Now() != 800 {
		t.Fatalf("steps=%d now=%d, want 8 at 800", steps, e.Now())
	}
}

func TestDeadlockReportSkipsDaemons(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "never")
	daemon := e.Spawn("svc", func(p *Proc) {
		sem.WaitGE(p, 1)
	})
	daemon.SetDaemon(true)
	e.Spawn("victim", func(p *Proc) {
		sem.WaitGE(p, 1)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want only the non-daemon victim", de.Blocked)
	}
	if de.Blocked[0] != "victim (semaphore never)" {
		t.Fatalf("blocked[0] = %q", de.Blocked[0])
	}
}

func TestBroadcastWakesFIFO(t *testing.T) {
	e := NewEngine()
	cond := NewCond(e)
	ready := false
	var order []int
	for i := 0; i < 8; i++ {
		id := i
		e.Spawn("w", func(p *Proc) {
			p.Wait(cond, "w", func() bool { return ready })
			order = append(order, id)
		})
	}
	e.Spawn("kick", func(p *Proc) {
		p.Sleep(5)
		ready = true
		cond.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("woke %d of 8", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestSemaphoreAddAt(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s")
	var woke Time = -1
	e.Spawn("waiter", func(p *Proc) {
		sem.WaitGE(p, 3)
		woke = p.Now()
	})
	sem.AddAt(50, 1)
	sem.AddAt(120, 2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 120 {
		t.Fatalf("waiter woke at %d, want 120", woke)
	}
	if sem.Value() != 3 {
		t.Fatalf("sem = %d, want 3", sem.Value())
	}
}

// TestSameInstantFIFOAcrossSources checks the ring/heap ordering invariant:
// events scheduled for time T before the clock reached T (heap residents)
// run before events scheduled at T from within T (ring residents), and each
// group runs in schedule order.
func TestSameInstantFIFOAcrossSources(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(10, func() {
		order = append(order, "early-a")
		e.At(10, func() { order = append(order, "late-a") })
		e.At(10, func() { order = append(order, "late-b") })
	})
	e.At(10, func() { order = append(order, "early-b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"early-a", "early-b", "late-a", "late-b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// runWorkload drives a mixed sleep/semaphore/cond workload and returns the
// engine's final state for determinism comparison.
func runWorkload(t *testing.T) (Time, uint64) {
	t.Helper()
	e := NewEngine()
	sem := NewSemaphore(e, "sync")
	wg := NewWaitGroup(e)
	wg.Add(6)
	for i := 0; i < 6; i++ {
		id := i
		e.Spawn("worker", func(p *Proc) {
			for step := 0; step < 20; step++ {
				p.Sleep(Duration(7*id + step%5))
				if step%3 == 0 {
					sem.Add(1)
				} else {
					sem.WaitGE(p, uint64(id*3))
				}
				p.Yield()
			}
			wg.Done()
		})
	}
	e.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		sem.Add(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now(), e.EventsRun()
}

func TestDeterministicReplay(t *testing.T) {
	now1, events1 := runWorkload(t)
	for trial := 0; trial < 3; trial++ {
		now2, events2 := runWorkload(t)
		if now2 != now1 || events2 != events1 {
			t.Fatalf("trial %d: (now, events) = (%d, %d), want (%d, %d)",
				trial, now2, events2, now1, events1)
		}
	}
}
