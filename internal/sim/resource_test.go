package sim

import (
	"reflect"
	"testing"
)

// reservation is one step of a hand-computed contention schedule: a request
// at time now for dur ns, expected to be granted [start, start+dur).
type reservation struct {
	now, dur    int64
	wantStart   int64
	wantEnd     int64
	wantQDelay  int64 // cumulative after this reservation
	wantIdle    int64 // cumulative after this reservation
	wantMaxHere int   // max queue depth after this reservation
}

// TestResourceCountersContention drives hand-computed schedules of two and
// three overlapping reservers through one resource and asserts the exact
// queue-delay, idle-gap and max-depth accounting after every step.
func TestResourceCountersContention(t *testing.T) {
	cases := []struct {
		name  string
		sched []reservation
	}{
		{
			// Two reservers, second arrives mid-occupancy of the first:
			// it queues for 60 ns (100+100-140), depth 2.
			name: "two overlapping",
			sched: []reservation{
				{now: 100, dur: 100, wantStart: 100, wantEnd: 200, wantQDelay: 0, wantIdle: 0, wantMaxHere: 1},
				{now: 140, dur: 50, wantStart: 200, wantEnd: 250, wantQDelay: 60, wantIdle: 0, wantMaxHere: 2},
			},
		},
		{
			// Three reservers piling up within the first occupancy: the
			// third waits for both predecessors (250-120 = 130), depth 3.
			name: "three overlapping",
			sched: []reservation{
				{now: 0, dur: 200, wantStart: 0, wantEnd: 200, wantQDelay: 0, wantIdle: 0, wantMaxHere: 1},
				{now: 80, dur: 50, wantStart: 200, wantEnd: 250, wantQDelay: 120, wantIdle: 0, wantMaxHere: 2},
				{now: 120, dur: 10, wantStart: 250, wantEnd: 260, wantQDelay: 250, wantIdle: 0, wantMaxHere: 3},
			},
		},
		{
			// Idle gap between occupancies, then renewed contention: the gap
			// [50, 300) counts as idle, and the late burst queues again.
			name: "idle gap then burst",
			sched: []reservation{
				{now: 10, dur: 40, wantStart: 10, wantEnd: 50, wantQDelay: 0, wantIdle: 0, wantMaxHere: 1},
				{now: 300, dur: 100, wantStart: 300, wantEnd: 400, wantQDelay: 0, wantIdle: 250, wantMaxHere: 1},
				{now: 310, dur: 100, wantStart: 400, wantEnd: 500, wantQDelay: 90, wantIdle: 250, wantMaxHere: 2},
				{now: 320, dur: 100, wantStart: 500, wantEnd: 600, wantQDelay: 270, wantIdle: 250, wantMaxHere: 3},
			},
		},
		{
			// Back-to-back (end == next request): no queue delay, no idle
			// gap, and the finished occupancy does not count toward depth.
			name: "back to back",
			sched: []reservation{
				{now: 0, dur: 100, wantStart: 0, wantEnd: 100, wantQDelay: 0, wantIdle: 0, wantMaxHere: 1},
				{now: 100, dur: 100, wantStart: 100, wantEnd: 200, wantQDelay: 0, wantIdle: 0, wantMaxHere: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewResource("res")
			var wantBusy int64
			for i, step := range tc.sched {
				start, end := r.Reserve(step.now, step.dur)
				wantBusy += step.dur
				if start != step.wantStart || end != step.wantEnd {
					t.Errorf("step %d: Reserve(%d, %d) = [%d, %d), want [%d, %d)",
						i, step.now, step.dur, start, end, step.wantStart, step.wantEnd)
				}
				if got := r.QueueDelay(); got != step.wantQDelay {
					t.Errorf("step %d: QueueDelay = %d, want %d", i, got, step.wantQDelay)
				}
				if got := r.IdleTime(); got != step.wantIdle {
					t.Errorf("step %d: IdleTime = %d, want %d", i, got, step.wantIdle)
				}
				if got := r.MaxQueueDepth(); got != step.wantMaxHere {
					t.Errorf("step %d: MaxQueueDepth = %d, want %d", i, got, step.wantMaxHere)
				}
				if got := r.BusyTime(); got != wantBusy {
					t.Errorf("step %d: BusyTime = %d, want %d", i, got, wantBusy)
				}
				if got := r.Reservations(); got != uint64(i+1) {
					t.Errorf("step %d: Reservations = %d, want %d", i, got, i+1)
				}
			}
		})
	}
}

// TestReserveJointCounters checks joint (crossbar-style) reservations: the
// granted interval starts when the last member frees up, queue delay is
// charged per member for the wait that member alone imposed, and a member
// held up only by a busier peer accrues idle time instead.
func TestReserveJointCounters(t *testing.T) {
	a := NewResource("a")
	b := NewResource("b")
	// Occupy a until 100 and b until 300.
	a.Reserve(0, 100)
	b.Reserve(0, 300)
	// A joint flow over {a, b} requested at 50 must start at 300.
	start, end := ReserveJoint(50, 10, a, b)
	if start != 300 || end != 310 {
		t.Fatalf("ReserveJoint = [%d, %d), want [300, 310)", start, end)
	}
	// a imposed 50 ns of wait itself (busy until 100) and sat idle from its
	// free instant 100 to the joint start 300.
	if got := a.QueueDelay(); got != 50 {
		t.Errorf("a.QueueDelay = %d, want 50", got)
	}
	if got := a.IdleTime(); got != 200 {
		t.Errorf("a.IdleTime = %d, want 200", got)
	}
	// b was the bottleneck: 250 ns of wait, no idle gap.
	if got := b.QueueDelay(); got != 250 {
		t.Errorf("b.QueueDelay = %d, want 250", got)
	}
	if got := b.IdleTime(); got != 0 {
		t.Errorf("b.IdleTime = %d, want 0", got)
	}
	// Both saw two overlapping reservations at the joint request instant.
	if got := a.MaxQueueDepth(); got != 2 {
		t.Errorf("a.MaxQueueDepth = %d, want 2", got)
	}
	if got := b.MaxQueueDepth(); got != 2 {
		t.Errorf("b.MaxQueueDepth = %d, want 2", got)
	}
}

// TestReserveJointIdleResources checks the degenerate joint reservation
// over idle resources: granted at now, no delay anywhere.
func TestReserveJointIdleResources(t *testing.T) {
	a := NewResource("a")
	b := NewResource("b")
	start, end := ReserveJoint(42, 8, a, b)
	if start != 42 || end != 50 {
		t.Fatalf("ReserveJoint = [%d, %d), want [42, 50)", start, end)
	}
	for _, r := range []*Resource{a, b} {
		s := r.Stats()
		if s.QueueDelayNs != 0 || s.IdleNs != 0 || s.MaxQueueDepth != 1 || s.Reservations != 1 || s.BusyNs != 8 {
			t.Errorf("%s stats = %+v, want uncontended single reservation", r.Name, s)
		}
	}
}

// TestResourceResetFresh is the Reset regression test: after an arbitrary
// contended history, Reset must make the resource indistinguishable from a
// fresh one — identical snapshot, identical FreeAt, and identical behavior
// on a subsequent schedule.
func TestResourceResetFresh(t *testing.T) {
	used := NewResource("r")
	// A history touching every counter: contention (queue delay + depth)
	// and an idle gap.
	used.Reserve(0, 100)
	used.Reserve(30, 50)
	used.Reserve(40, 25)
	used.Reserve(1000, 10)
	if used.QueueDelay() == 0 || used.IdleTime() == 0 || used.MaxQueueDepth() < 3 {
		t.Fatalf("history did not exercise all counters: %+v", used.Stats())
	}
	used.Reset()

	fresh := NewResource("r")
	if got, want := used.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("reset stats = %+v, fresh = %+v", got, want)
	}
	if used.FreeAt() != fresh.FreeAt() {
		t.Errorf("reset FreeAt = %d, fresh = %d", used.FreeAt(), fresh.FreeAt())
	}
	// Replay one schedule on both; every observable must stay in lockstep.
	sched := []struct{ now, dur int64 }{{5, 20}, {10, 30}, {200, 5}, {201, 5}}
	for i, s := range sched {
		s1, e1 := used.Reserve(s.now, s.dur)
		s2, e2 := fresh.Reserve(s.now, s.dur)
		if s1 != s2 || e1 != e2 {
			t.Errorf("step %d: reset granted [%d, %d), fresh [%d, %d)", i, s1, e1, s2, e2)
		}
	}
	if got, want := used.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-replay stats diverge: reset %+v, fresh %+v", got, want)
	}
}

// TestGroupSkipsNil checks the CounterGroup helper used by mesh fabrics
// whose self-pair slots are nil.
func TestGroupSkipsNil(t *testing.T) {
	a := NewResource("a")
	a.Reserve(0, 7)
	g := Group("mesh", nil, a, nil)
	if g.Name != "mesh" || len(g.Stats) != 1 || g.Stats[0].Name != "a" || g.Stats[0].BusyNs != 7 {
		t.Errorf("Group = %+v, want single snapshot of a", g)
	}
}
