package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1500)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 1500 {
		t.Fatalf("woke at %d, want 1500", woke)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEngine()
	order := []string{}
	e.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "a")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(-5)
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("got %v", order)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %d for zero-length sleeps", e.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		e.At(10, func() { order = append(order, "x10a") })
		e.At(5, func() { order = append(order, "x5") })
		e.At(10, func() { order = append(order, "x10b") })
		e.At(0, func() { order = append(order, "x0") })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"x0", "x5", "x10a", "x10b"}
	for trial := 0; trial < 5; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestPastEventClamped(t *testing.T) {
	e := NewEngine()
	var ran Time = -1
	e.Spawn("p", func(p *Proc) {
		p.Sleep(100)
		e.At(50, func() { ran = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", ran)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childTime Time = -1
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(7)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(3)
			childTime = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 10 {
		t.Fatalf("child finished at %d, want 10", childTime)
	}
}

func TestSemaphoreSignalWait(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s")
	var waited Time = -1
	e.Spawn("waiter", func(p *Proc) {
		sem.WaitGE(p, 2)
		waited = p.Now()
	})
	e.Spawn("signaler", func(p *Proc) {
		p.Sleep(100)
		sem.Add(1)
		p.Sleep(100)
		sem.Add(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 200 {
		t.Fatalf("waiter resumed at %d, want 200", waited)
	}
	if sem.Value() != 2 {
		t.Fatalf("sem value %d, want 2", sem.Value())
	}
}

func TestSemaphoreAlreadySatisfied(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s")
	sem.Add(5)
	var waited Time = -1
	e.Spawn("waiter", func(p *Proc) {
		sem.WaitGE(p, 3)
		waited = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 0 {
		t.Fatalf("pre-satisfied wait blocked until %d", waited)
	}
}

func TestSemaphoreManyWaiters(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s")
	resumed := 0
	for i := 1; i <= 10; i++ {
		target := uint64(i)
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			sem.WaitGE(p, target)
			resumed++
		})
	}
	e.Spawn("sig", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10)
			sem.Add(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 10 {
		t.Fatalf("resumed %d of 10 waiters", resumed)
	}
}

func TestSemaphoreAddFromCallback(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "s")
	var waited Time = -1
	e.Spawn("waiter", func(p *Proc) {
		sem.WaitGE(p, 1)
		waited = p.Now()
	})
	e.At(77, func() { sem.Add(1) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 77 {
		t.Fatalf("waiter resumed at %d, want 77", waited)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "never")
	e.Spawn("stuck", func(p *Proc) {
		sem.WaitGE(p, 1)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	var joined Time = -1
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := Duration(i * 100)
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Spawn("joiner", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 300 {
		t.Fatalf("joined at %d, want 300", joined)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative waitgroup")
		}
	}()
	wg.Done()
}

func TestResourceFIFOSerialization(t *testing.T) {
	r := NewResource("link")
	s1, e1 := r.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation [%d,%d], want [0,100]", s1, e1)
	}
	// Second request issued at t=10 must queue behind the first.
	s2, e2 := r.Reserve(10, 50)
	if s2 != 100 || e2 != 150 {
		t.Fatalf("second reservation [%d,%d], want [100,150]", s2, e2)
	}
	// Request after the resource is idle starts immediately.
	s3, e3 := r.Reserve(1000, 25)
	if s3 != 1000 || e3 != 1025 {
		t.Fatalf("third reservation [%d,%d], want [1000,1025]", s3, e3)
	}
	if r.BusyTime() != 175 {
		t.Fatalf("busy time %d, want 175", r.BusyTime())
	}
	if r.Reservations() != 3 {
		t.Fatalf("reservations %d, want 3", r.Reservations())
	}
}

func TestResourceZeroAndNegativeDuration(t *testing.T) {
	r := NewResource("x")
	s, e := r.Reserve(5, 0)
	if s != 5 || e != 5 {
		t.Fatalf("zero-length reservation [%d,%d]", s, e)
	}
	s, e = r.Reserve(5, -10)
	if s != 5 || e != 5 {
		t.Fatalf("negative-length reservation [%d,%d]", s, e)
	}
}

// Property: for any set of (arrival, duration) pairs presented in arrival
// order, resource reservations never overlap and never start before arrival.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		r := NewResource("p")
		var arrivals []Time
		var at Time
		for i, v := range raw {
			at += Time(v % 97)
			arrivals = append(arrivals, at)
			_ = i
		}
		prevEnd := Time(-1)
		for i, a := range arrivals {
			dur := Duration(raw[i] % 53)
			s, e := r.Reserve(a, dur)
			if s < a {
				return false
			}
			if s < prevEnd {
				return false
			}
			if e != s+dur {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(100)
			ticks++
		}
	})
	done := e.RunUntil(450)
	if done {
		t.Fatal("RunUntil claimed completion with pending events")
	}
	if ticks != 4 {
		t.Fatalf("ticks = %d at t<=450, want 4", ticks)
	}
	if e.RunUntil(10_000) != true {
		t.Fatal("RunUntil(10000) should drain the queue")
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestCondPredicateReevaluation(t *testing.T) {
	e := NewEngine()
	cond := NewCond(e)
	val := 0
	resumeOrder := []int{}
	// Waiter A needs val>=1, waiter B needs val>=2. A's resumption bumps val,
	// which must wake B within the same broadcast cycle.
	e.Spawn("A", func(p *Proc) {
		p.Wait(cond, "A", func() bool { return val >= 1 })
		val = 2
		cond.Broadcast()
		resumeOrder = append(resumeOrder, 1)
	})
	e.Spawn("B", func(p *Proc) {
		p.Wait(cond, "B", func() bool { return val >= 2 })
		resumeOrder = append(resumeOrder, 2)
	})
	e.Spawn("kick", func(p *Proc) {
		p.Sleep(10)
		val = 1
		cond.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(resumeOrder) != 2 || resumeOrder[0] != 1 || resumeOrder[1] != 2 {
		t.Fatalf("resume order %v, want [1 2]", resumeOrder)
	}
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	const n = 500
	sem := NewSemaphore(e, "barrier")
	finished := 0
	for i := 0; i < n; i++ {
		d := Duration(i % 17)
		e.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			sem.Add(1)
			sem.WaitGE(p, n)
			finished++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Fatalf("finished = %d, want %d", finished, n)
	}
}

// Property: simulation end time equals the max over procs of total sleep,
// when procs are independent.
func TestIndependentProcsEndTimeProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine()
		var maxTotal Time
		for _, d := range durs {
			total := Time(0)
			steps := int(d%5) + 1
			per := Duration(d % 1000)
			for i := 0; i < steps; i++ {
				total += per
			}
			if total > maxTotal {
				maxTotal = total
			}
			e.Spawn("w", func(p *Proc) {
				for i := 0; i < steps; i++ {
					p.Sleep(per)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == maxTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
