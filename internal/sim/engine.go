// Package sim implements a deterministic discrete-event simulator used as the
// execution substrate for the simulated GPU cluster.
//
// The engine runs a set of cooperating processes (Proc) over a virtual clock.
// Exactly one process runs at a time; processes yield to the engine whenever
// they block (Sleep, condition wait, ...), and the engine advances the clock
// to the next scheduled event. Event ordering is total and deterministic:
// events are ordered by (time, sequence number), so a simulation always
// replays identically.
//
// Concurrency discipline: although each Proc is backed by a goroutine, the
// engine enforces mutual exclusion through explicit hand-off channels, so all
// simulation state may be accessed without locks. All engine methods must be
// called either from the currently running Proc or from an event callback.
//
// Hot-path design: events are value types (no per-event heap allocation)
// kept in two structures — a FIFO ring for events scheduled at the current
// timestamp (the dominant case: Yield, Cond.Broadcast, same-instant
// completions) and a monomorphic 4-ary min-heap for future events. Proc
// dispatch, semaphore delivery and condition rechecks are encoded as typed
// events rather than closures, so steady-state scheduling is allocation-free.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time = int64

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

// evKind discriminates the typed fast-path events. Encoding the common
// engine-internal callbacks as kinds instead of closures keeps the
// scheduling hot path free of func-value allocations.
type evKind uint8

const (
	evFunc   evKind = iota // run fn()
	evProc                 // dispatch(p)
	evSemAdd               // sem.Add(n)
	evCond                 // cond.recheck()
)

// event is a value-type queue entry (no per-event allocation). obj holds the
// kind-dependent payload: func() for evFunc, *Proc for evProc, *Semaphore
// for evSemAdd, *Cond for evCond — all pointer-shaped, so the interface
// conversion never allocates.
type event struct {
	t    Time
	n    uint64
	obj  any
	kind evKind
}

// heapEnt is a scalar-only heap element. Keeping the pointerful payload out
// of the heap array (in a stable slot of Engine.slots) means sift-up and
// sift-down move 16-byte pointer-free values — no GC write barriers on the
// O(log n) moves of every push/pop, and a 4-ary node spans one cache line.
// seq is a wrapping tiebreak counter compared circularly: it only ever
// discriminates events at the same timestamp, whose sequence distance is
// far below 2^31.
type heapEnt struct {
	t    Time
	seq  uint32
	slot int32
}

// payload is the pointer-carrying part of a heap event, written once at
// schedule time and read once at pop time.
type payload struct {
	obj  any
	n    uint64
	kind evKind
}

func entLess(a, b *heapEnt) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return int32(a.seq-b.seq) < 0
}

// Engine is a deterministic discrete-event simulation kernel.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now Time
	seq uint32 // wrapping heap-entry tiebreak (see heapEnt)

	// ring holds events scheduled at the current timestamp, in FIFO order
	// (ring[ringHead:] are pending). heap is a 4-ary min-heap of future
	// events, scalar entries only; their payloads live in slots (free slots
	// listed in free). Invariant: every heap event satisfies t >= now, and
	// any heap event with t == now was scheduled before the clock reached
	// now, so it orders (by seq) before every ring event.
	ring     []event
	ringHead int
	heap     []heapEnt
	slots    []payload
	freeHead int32 // head of the free-slot list threaded through slots[i].n

	parked chan struct{} // signaled by a Proc when it parks or finishes
	live   map[*Proc]struct{}
	nextID int

	// horizon is the deadline of the driving Run/RunUntil call. A running
	// Proc that is the only runnable work before its wake time may advance
	// the clock inline (skipping the park/dispatch round-trip), but never
	// past the horizon — RunUntil must stop exactly at its deadline.
	horizon Time

	// recheckDepth counts Cond rechecks currently on the dispatch stack.
	// While a recheck is in progress, waiters it has not yet scanned are
	// runnable work that is invisible to the event queue, so the same-instant
	// sleep fast path must be disabled to preserve FIFO interleaving.
	recheckDepth int

	// stats
	eventsRun  uint64
	procsTotal int
}

// NewEngine returns a fresh engine with the clock at zero. Event storage is
// pre-sized so steady-state scheduling never reallocates.
func NewEngine() *Engine {
	return &Engine{
		ring:     make([]event, 0, 64),
		heap:     make([]heapEnt, 0, 64),
		slots:    make([]payload, 0, 64),
		freeHead: -1,
		parked:   make(chan struct{}),
		live:     make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far (for tests/metrics).
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event still runs after all currently
// pending work at that timestamp, preserving determinism).
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, event{kind: evFunc, obj: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// schedule routes ev to the current-instant ring (t <= now) or the heap.
// Ring entries need no sequence number: their order is positional.
func (e *Engine) schedule(t Time, ev event) {
	if t <= e.now {
		ev.t = e.now
		e.ring = append(e.ring, ev)
		return
	}
	e.seq++
	slot := e.freeHead
	if slot >= 0 {
		e.freeHead = int32(e.slots[slot].n)
	} else {
		e.slots = append(e.slots, payload{})
		slot = int32(len(e.slots) - 1)
	}
	e.slots[slot] = payload{obj: ev.obj, n: ev.n, kind: ev.kind}
	e.heapPush(heapEnt{t: t, seq: e.seq, slot: slot})
}

// heapPush inserts ent into the 4-ary min-heap (hole-based sift-up: parents
// slide down into the hole, ent is written once at its final position).
func (e *Engine) heapPush(ent heapEnt) {
	h := append(e.heap, heapEnt{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(&ent, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
	e.heap = h
}

// heapPop removes and returns the minimum heap entry; the caller owns the
// payload slot. Floyd's sift-down: walk the min-child path to a leaf (no
// comparison against the displaced last element on the way down — it almost
// always belongs near the bottom), then bubble the last element up.
func (e *Engine) heapPop() heapEnt {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	e.heap = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		min := 4*i + 1
		if min >= n {
			break
		}
		end := min + 4
		if end > n {
			end = n
		}
		for c := min + 1; c < end; c++ {
			if entLess(&h[c], &h[min]) {
				min = c
			}
		}
		h[i] = h[min]
		i = min
	}
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(&last, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = last
	return top
}

// hasWorkNow reports whether any event is pending at the current timestamp.
func (e *Engine) hasWorkNow() bool {
	return e.ringHead < len(e.ring) || (len(e.heap) > 0 && e.heap[0].t <= e.now)
}

// peekTime returns the timestamp of the next event, if any.
func (e *Engine) peekTime() (Time, bool) {
	if e.hasWorkNow() {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].t, true
	}
	return 0, false
}

// runNext pops and executes the next event in (t, seq) order, advancing the
// clock as needed. Heap events at the current timestamp precede ring events
// (they carry strictly smaller sequence numbers, see the ring/heap
// invariant). Reports false when the queue is empty.
func (e *Engine) runNext() bool {
	if len(e.heap) > 0 && e.heap[0].t <= e.now {
		e.runHeapTop()
		return true
	}
	if e.ringHead < len(e.ring) {
		i := e.ringHead
		e.ringHead++
		ev := &e.ring[i]
		kind, obj, n := ev.kind, ev.obj, ev.n
		ev.obj = nil // release reference
		// Recycle consumed capacity before exec (which may append): reset
		// when drained, or slide pending entries down once the consumed
		// prefix dominates, so a never-empty ring stays bounded.
		if e.ringHead == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringHead = 0
		} else if e.ringHead >= 32 && e.ringHead*2 >= len(e.ring) {
			m := copy(e.ring, e.ring[e.ringHead:])
			tail := e.ring[m:]
			for j := range tail {
				tail[j] = event{}
			}
			e.ring = e.ring[:m]
			e.ringHead = 0
		}
		e.eventsRun++
		e.exec(kind, obj, n)
		return true
	}
	if len(e.heap) > 0 {
		e.now = e.heap[0].t
		e.runHeapTop()
		return true
	}
	return false
}

// runHeapTop executes the minimum heap event, freeing its payload slot
// before the callback runs so the callback's own pushes can reuse it.
func (e *Engine) runHeapTop() {
	ent := e.heapPop()
	pl := &e.slots[ent.slot]
	kind, obj, n := pl.kind, pl.obj, pl.n
	pl.obj = nil // release reference; thread slot onto the free list
	pl.n = uint64(e.freeHead)
	e.freeHead = ent.slot
	e.eventsRun++
	e.exec(kind, obj, n)
}

// exec runs one event payload.
func (e *Engine) exec(kind evKind, obj any, n uint64) {
	switch kind {
	case evProc:
		e.dispatch(obj.(*Proc))
	case evSemAdd:
		obj.(*Semaphore).Add(n)
	case evCond:
		obj.(*Cond).recheck()
	default:
		obj.(func())()
	}
}

// Spawn creates a new process running fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process or event callback.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	e.procsTotal++
	p := &Proc{
		e:      e,
		Name:   name,
		ID:     e.nextID,
		resume: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.state = procDone
		delete(e.live, p)
		e.parked <- struct{}{}
	}()
	e.schedule(e.now, event{kind: evProc, obj: p})
	return p
}

// dispatch resumes p and blocks until p parks again or finishes. It must run
// in the engine's event loop context.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- struct{}{}
	<-e.parked
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked process
}

// Error formats the deadlock diagnostic: the drain time and every blocked
// process with its wait reason.
func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%dns: %d process(es) blocked: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run executes events until the queue is empty. If live processes remain
// blocked afterwards, Run returns a *DeadlockError naming them.
func (e *Engine) Run() error {
	const maxTime = Time(1<<63 - 1)
	e.horizon = maxTime
	for e.runNext() {
	}
	var blocked []string
	for p := range e.live {
		if p.daemon {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s (%s)", p.Name, p.waitReason))
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained (all work done), false if events remain past the
// deadline.
func (e *Engine) RunUntil(deadline Time) bool {
	e.horizon = deadline
	for {
		t, ok := e.peekTime()
		if !ok {
			return true
		}
		if t > deadline {
			return false
		}
		e.runNext()
	}
}
