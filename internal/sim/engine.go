// Package sim implements a deterministic discrete-event simulator used as the
// execution substrate for the simulated GPU cluster.
//
// The engine runs a set of cooperating processes (Proc) over a virtual clock.
// Exactly one process runs at a time; processes yield to the engine whenever
// they block (Sleep, condition wait, ...), and the engine advances the clock
// to the next scheduled event. Event ordering is total and deterministic:
// events are ordered by (time, sequence number), so a simulation always
// replays identically.
//
// Concurrency discipline: although each Proc is backed by a goroutine, the
// engine enforces mutual exclusion through explicit hand-off channels, so all
// simulation state may be accessed without locks. All engine methods must be
// called either from the currently running Proc or from an event callback.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time = int64

// Duration is a span of virtual time in nanoseconds.
type Duration = int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation kernel.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	parked chan struct{} // signaled by a Proc when it parks or finishes
	live   map[*Proc]struct{}
	nextID int

	// stats
	eventsRun  uint64
	procsTotal int
}

// NewEngine returns a fresh engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		parked: make(chan struct{}),
		live:   make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsRun returns the number of events executed so far (for tests/metrics).
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event still runs after all currently
// pending work at that timestamp, preserving determinism).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Spawn creates a new process running fn and schedules it to start at the
// current virtual time. It may be called before Run or from inside a running
// process or event callback.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	e.nextID++
	e.procsTotal++
	p := &Proc{
		e:      e,
		Name:   name,
		ID:     e.nextID,
		resume: make(chan struct{}),
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.state = procDone
		delete(e.live, p)
		e.parked <- struct{}{}
	}()
	e.At(e.now, func() { e.dispatch(p) })
	return p
}

// dispatch resumes p and blocks until p parks again or finishes. It must run
// in the engine's event loop context.
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- struct{}{}
	<-e.parked
}

// DeadlockError reports processes that were still blocked when the event
// queue drained.
type DeadlockError struct {
	Now     Time
	Blocked []string // "name (reason)" for each blocked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%dns: %d process(es) blocked: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run executes events until the queue is empty. If live processes remain
// blocked afterwards, Run returns a *DeadlockError naming them.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		e.eventsRun++
		ev.fn()
	}
	var blocked []string
	for p := range e.live {
		if p.daemon {
			continue
		}
		blocked = append(blocked, fmt.Sprintf("%s (%s)", p.Name, p.waitReason))
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained (all work done), false if events remain past the
// deadline.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 && e.events[0].t <= deadline {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		e.eventsRun++
		ev.fn()
	}
	return len(e.events) == 0
}
