package sim

// Microbenchmarks for the discrete-event engine hot path. These measure
// simulator *wall-clock* throughput (events/sec, allocs/op), not virtual
// time: they are the substrate benchmarks that bound how many paper
// scenarios the harness can sweep per core-hour.
//
// Run with:
//
//	go test ./internal/sim -bench=BenchmarkEngine -benchmem
//
// Baseline (pre-overhaul) and current numbers are recorded in BENCH_sim.json
// at the repository root.

import "testing"

// BenchmarkEngineEventThroughput measures steady-state schedule+run
// throughput of timed events: a window of in-flight events each rescheduling
// a successor, the shape of NIC-completion and signal-delivery traffic. The
// callback is shared, so the number measures pure scheduling machinery.
func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	const batch = 4096
	const window = 64 // in-flight timed events
	n := 0
	for n < b.N {
		e := NewEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count+window <= batch {
				e.After(Duration(count%7+1), tick)
			}
		}
		for i := 0; i < window; i++ {
			e.After(Duration(i%7+1), tick)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if count != batch {
			b.Fatalf("ran %d of %d events", count, batch)
		}
		n += batch
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineDeepHeap measures heap asymptotics: 4096 one-shot events
// scheduled up front and drained in timestamp order.
func BenchmarkEngineDeepHeap(b *testing.B) {
	b.ReportAllocs()
	const batch = 4096
	n := 0
	for n < b.N {
		e := NewEngine()
		sink := 0
		for i := 0; i < batch; i++ {
			e.At(Time(i), func() { sink++ })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if sink != batch {
			b.Fatalf("ran %d of %d events", sink, batch)
		}
		n += batch
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineSameInstant measures the same-timestamp dispatch path
// (Yield, Cond.Broadcast and same-instant completions all land here).
func BenchmarkEngineSameInstant(b *testing.B) {
	b.ReportAllocs()
	const batch = 4096
	n := 0
	for n < b.N {
		e := NewEngine()
		sink := 0
		var spin func()
		spin = func() {
			sink++
			if sink < batch {
				e.At(e.Now(), spin)
			}
		}
		e.At(0, spin)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		n += batch
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEnginePingPong measures park/dispatch latency: two processes
// alternating on a pair of semaphores, one wake per iteration — the pattern
// of every signal/wait channel synchronization in the simulator.
func BenchmarkEnginePingPong(b *testing.B) {
	b.ReportAllocs()
	const rounds = 1024
	n := 0
	for n < b.N {
		e := NewEngine()
		a := NewSemaphore(e, "a")
		z := NewSemaphore(e, "z")
		e.Spawn("ping", func(p *Proc) {
			for i := uint64(1); i <= rounds; i++ {
				a.Add(1)
				z.WaitGE(p, i)
			}
		})
		e.Spawn("pong", func(p *Proc) {
			for i := uint64(1); i <= rounds; i++ {
				a.WaitGE(p, i)
				z.Add(1)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		n += 2 * rounds
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "wakes/sec")
}

// BenchmarkEngineSleepChain measures the sleep/park/resume round-trip of a
// single process advancing the clock — the thread-block Elapse hot path.
func BenchmarkEngineSleepChain(b *testing.B) {
	b.ReportAllocs()
	const steps = 4096
	n := 0
	for n < b.N {
		e := NewEngine()
		e.Spawn("walker", func(p *Proc) {
			for i := 0; i < steps; i++ {
				p.Sleep(10)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		n += steps
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sleeps/sec")
}

// BenchmarkEngineYield measures Sleep(0): the same-instant yield that the
// overhaul short-circuits when no other work is pending at the current time.
func BenchmarkEngineYield(b *testing.B) {
	b.ReportAllocs()
	const steps = 8192
	n := 0
	for n < b.N {
		e := NewEngine()
		e.Spawn("spinner", func(p *Proc) {
			for i := 0; i < steps; i++ {
				p.Yield()
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		n += steps
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "yields/sec")
}

// BenchmarkEngineCondStorm measures Broadcast recheck cost when one signal
// releases every waiter at once (the grid-barrier / kernel-join pattern):
// the whole waiter list is woken in FIFO order by a single recheck sweep.
func BenchmarkEngineCondStorm(b *testing.B) {
	b.ReportAllocs()
	const waiters = 256
	n := 0
	for n < b.N {
		e := NewEngine()
		sem := NewSemaphore(e, "storm")
		done := 0
		for i := 0; i < waiters; i++ {
			e.Spawn("w", func(p *Proc) {
				sem.WaitGE(p, 1)
				done++
			})
		}
		e.Spawn("producer", func(p *Proc) {
			p.Sleep(1)
			sem.Add(1)
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		if done != waiters {
			b.Fatalf("woke %d of %d", done, waiters)
		}
		n += waiters
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "wakes/sec")
}

// BenchmarkResourceCounters measures Reserve with the full counter set
// engaged under a contended arrival pattern (two flows per free interval,
// so queue-delay, depth and idle-gap accounting all run every iteration).
// The 0 allocs/op result is a CI gate: resource introspection must stay
// free on the fabric's hot transfer paths.
func BenchmarkResourceCounters(b *testing.B) {
	b.ReportAllocs()
	r := NewResource("bench")
	joint := NewResource("joint")
	now := Time(0)
	for i := 0; i < b.N; i++ {
		// Two overlapping requests (the second queues), then a gap.
		r.Reserve(now, 100)
		r.Reserve(now+40, 100)
		ReserveJoint(now+60, 50, r, joint)
		now += 400
	}
	if r.Reservations() != uint64(3*b.N) {
		b.Fatalf("reservations = %d, want %d", r.Reservations(), 3*b.N)
	}
	b.ReportMetric(float64(3*b.N)/b.Elapsed().Seconds(), "reserves/sec")
}
