package sim

type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

// Proc is a simulated process: a goroutine whose execution is serialized by
// the engine and whose blocking operations consume virtual rather than real
// time. Thread blocks, CPU proxy threads, NIC completion handlers and
// workload drivers are all Procs.
type Proc struct {
	e          *Engine
	Name       string
	ID         int
	resume     chan struct{}
	state      procState
	waitReason string
	daemon     bool
}

// SetDaemon marks the process as a background service (e.g. a CPU proxy
// thread) that is expected to remain blocked when the simulation drains;
// daemons are excluded from deadlock detection.
func (p *Proc) SetDaemon(on bool) { p.daemon = on }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// park yields control to the engine until the process is dispatched again.
func (p *Proc) park(reason string) {
	p.state = procParked
	p.waitReason = reason
	p.e.parked <- struct{}{}
	<-p.resume
	p.waitReason = ""
}

// Sleep blocks the process for d nanoseconds of virtual time. Negative or
// zero durations yield to other work scheduled at the current instant.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.e.now + d)
}

// SleepUntil blocks the process until virtual time t (or now, if t is in the
// past).
//
// Fast paths: when the process is the only runnable work between now and t,
// parking is pure overhead — nothing could interleave before its wake event.
// A same-instant sleep then returns immediately, and a future-time sleep
// advances the clock inline, both skipping the park/resume goroutine
// round-trip. The fast paths require that no Cond recheck is in flight
// (waiters the recheck has not yet dispatched are runnable work invisible to
// the event queue) and never move the clock past the driving Run/RunUntil
// horizon.
func (p *Proc) SleepUntil(t Time) {
	e := p.e
	if e.recheckDepth == 0 && e.ringHead == len(e.ring) {
		if t <= e.now {
			if len(e.heap) == 0 || e.heap[0].t > e.now {
				return
			}
		} else if t <= e.horizon && (len(e.heap) == 0 || e.heap[0].t > t) {
			e.now = t
			return
		}
	}
	e.schedule(t, event{kind: evProc, obj: p})
	p.park("sleep")
}

// Yield lets any other work scheduled at the current instant run before the
// process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait blocks the process on cond until pred() is true. The predicate is
// evaluated immediately, and re-evaluated whenever the condition is
// broadcast. reason is reported in deadlock diagnostics.
func (p *Proc) Wait(c *Cond, reason string, pred func() bool) {
	if pred() {
		return
	}
	c.waiters = append(c.waiters, condWaiter{p: p, pred: pred})
	p.park(reason)
}

// Cond is a condition variable for simulated processes. Waiters supply a
// predicate; Broadcast wakes every waiter whose predicate has become true.
type Cond struct {
	e       *Engine
	waiters []condWaiter
	pending bool
}

// condWaiter is one blocked process. The common semaphore threshold wait is
// stored inline (sem != nil) so WaitGE needs no predicate closure.
type condWaiter struct {
	p      *Proc
	pred   func() bool
	sem    *Semaphore
	target uint64
}

func (w *condWaiter) ready() bool {
	if w.sem != nil {
		return w.sem.val >= w.target
	}
	return w.pred()
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// Broadcast schedules a re-check of all waiter predicates at the current
// virtual time. Waiters whose predicates hold are resumed in FIFO order.
// Safe to call from processes or event callbacks.
func (c *Cond) Broadcast() {
	if c.pending || len(c.waiters) == 0 {
		return
	}
	c.pending = true
	c.e.schedule(c.e.now, event{kind: evCond, obj: c})
}

// recheck scans the waiter list in FIFO order, dispatching every waiter
// whose predicate holds and compacting survivors in place (one O(n) pass per
// sweep instead of an O(n) splice per wake). Dispatching a waiter can change
// state that satisfies further waiters — including waiters appended to the
// list during the dispatch — so it iterates until a full pass wakes nobody.
func (c *Cond) recheck() {
	c.pending = false
	e := c.e
	e.recheckDepth++
	for {
		woke := false
		out := 0
		for in := 0; in < len(c.waiters); in++ {
			w := c.waiters[in]
			if w.ready() {
				c.waiters[in] = condWaiter{}
				e.dispatch(w.p)
				woke = true
			} else if out != in {
				c.waiters[out] = w
				c.waiters[in] = condWaiter{}
				out++
			} else {
				out++
			}
		}
		c.waiters = c.waiters[:out]
		if !woke {
			break
		}
	}
	e.recheckDepth--
}

// Waiters returns the number of processes currently blocked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }

// WaitGroup tracks completion of a set of processes or operations in virtual
// time.
type WaitGroup struct {
	cond  *Cond
	count int
}

// NewWaitGroup returns a WaitGroup bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{cond: NewCond(e)} }

// Add increments the outstanding-operation count.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the count and wakes waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter went negative")
	}
	if w.count == 0 {
		w.cond.Broadcast()
	}
}

// Count returns the number of outstanding operations.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks p until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	p.Wait(w.cond, "waitgroup", func() bool { return w.count == 0 })
}
