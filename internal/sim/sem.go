package sim

// Semaphore is a monotonically increasing counter with blocking waits, the
// simulated analogue of the GPU-memory semaphores MSCCL++ channels
// synchronize on. Signal-side code atomically increments the value; wait-side
// code busy-waits (in virtual time) until the value reaches an expected
// threshold.
type Semaphore struct {
	Name   string
	reason string // precomputed deadlock-diagnostic wait reason
	cond   *Cond
	val    uint64
}

// NewSemaphore returns a semaphore with value zero.
func NewSemaphore(e *Engine, name string) *Semaphore {
	return &Semaphore{Name: name, reason: "semaphore " + name, cond: NewCond(e)}
}

// Value returns the current counter value.
func (s *Semaphore) Value() uint64 { return s.val }

// Add atomically increments the counter by delta and wakes satisfied waiters.
// Safe to call from processes or event callbacks (e.g. NIC completion).
func (s *Semaphore) Add(delta uint64) {
	s.val += delta
	s.cond.Broadcast()
}

// AddAt schedules Add(delta) at absolute virtual time t as a typed engine
// event — the allocation-free form of At(t, func() { s.Add(delta) }) used by
// signal-delivery hot paths (channel signals, NIC completions).
func (s *Semaphore) AddAt(t Time, delta uint64) {
	s.cond.e.schedule(t, event{kind: evSemAdd, obj: s, n: delta})
}

// WaitGE blocks p until the counter value is >= target. The threshold wait
// is stored inline in the condition's waiter record (no predicate closure).
func (s *Semaphore) WaitGE(p *Proc, target uint64) {
	if s.val >= target {
		return
	}
	s.cond.waiters = append(s.cond.waiters, condWaiter{p: p, sem: s, target: target})
	p.park(s.reason)
}

// Resource models a serially reusable hardware unit (a link port, a DMA
// engine, a NIC send queue, a switch reduction pipeline). Work items are
// granted exclusive occupancy in FIFO order: a reservation of length dur
// begins when the resource frees up and pushes the free time forward.
//
// This is the standard "store-and-forward pipe" contention model: concurrent
// users serialize, which for fixed total bytes is time-equivalent to fair
// bandwidth sharing on a single link.
type Resource struct {
	Name   string
	freeAt Time

	// stats
	busy     Duration
	reserves uint64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Reserve books the resource for dur nanoseconds starting no earlier than
// now, returning the start and end of the granted occupancy.
func (r *Resource) Reserve(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.reserves++
	return start, end
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the cumulative reserved time (for utilization metrics).
func (r *Resource) BusyTime() Duration { return r.busy }

// Reservations returns the number of reservations made.
func (r *Resource) Reservations() uint64 { return r.reserves }

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() { r.freeAt = 0; r.busy = 0; r.reserves = 0 }
