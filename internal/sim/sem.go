package sim

// Semaphore is a monotonically increasing counter with blocking waits, the
// simulated analogue of the GPU-memory semaphores MSCCL++ channels
// synchronize on. Signal-side code atomically increments the value; wait-side
// code busy-waits (in virtual time) until the value reaches an expected
// threshold.
type Semaphore struct {
	Name   string
	reason string // precomputed deadlock-diagnostic wait reason
	cond   *Cond
	val    uint64
}

// NewSemaphore returns a semaphore with value zero.
func NewSemaphore(e *Engine, name string) *Semaphore {
	return &Semaphore{Name: name, reason: "semaphore " + name, cond: NewCond(e)}
}

// Value returns the current counter value.
func (s *Semaphore) Value() uint64 { return s.val }

// Add atomically increments the counter by delta and wakes satisfied waiters.
// Safe to call from processes or event callbacks (e.g. NIC completion).
func (s *Semaphore) Add(delta uint64) {
	s.val += delta
	s.cond.Broadcast()
}

// AddAt schedules Add(delta) at absolute virtual time t as a typed engine
// event — the allocation-free form of At(t, func() { s.Add(delta) }) used by
// signal-delivery hot paths (channel signals, NIC completions).
func (s *Semaphore) AddAt(t Time, delta uint64) {
	s.cond.e.schedule(t, event{kind: evSemAdd, obj: s, n: delta})
}

// WaitGE blocks p until the counter value is >= target. The threshold wait
// is stored inline in the condition's waiter record (no predicate closure).
func (s *Semaphore) WaitGE(p *Proc, target uint64) {
	if s.val >= target {
		return
	}
	s.cond.waiters = append(s.cond.waiters, condWaiter{p: p, sem: s, target: target})
	p.park(s.reason)
}

// Resource models a serially reusable hardware unit (a link port, a DMA
// engine, a NIC send queue, a switch reduction pipeline). Work items are
// granted exclusive occupancy in FIFO order: a reservation of length dur
// begins when the resource frees up and pushes the free time forward.
//
// This is the standard "store-and-forward pipe" contention model: concurrent
// users serialize, which for fixed total bytes is time-equivalent to fair
// bandwidth sharing on a single link.
//
// Every resource keeps a full set of introspection counters — reservations,
// busy time, cumulative queue delay, idle gaps, max queue depth — updated
// on every Reserve/ReserveJoint with no heap allocation in steady state
// (the pending-reservation window reuses its backing array once warm).
// Counters are observe-only: they never influence the granted times, so a
// simulation with and without readers of these counters is bit-identical.
type Resource struct {
	Name   string
	freeAt Time

	// stats (observe-only; see Stats)
	busy     Duration
	reserves uint64
	qdelay   Duration
	idle     Duration
	maxDepth int
	// pend[head:] holds the end times of reservations still pending at the
	// last Reserve instant — the FIFO window queue depth is measured over.
	// Ends are non-decreasing (serial FIFO occupancy), so pruning from the
	// front is exact; the slice is compacted in place whenever it drains,
	// keeping steady-state Reserve allocation-free.
	pend []Time
	head int
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Reserve books the resource for dur nanoseconds starting no earlier than
// now, returning the start and end of the granted occupancy.
func (r *Resource) Reserve(now Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.book(now, start, dur)
	return start, start + dur
}

// ReserveJoint books all resources simultaneously for dur ns, starting when
// the last of them frees up (crossbar-style occupancy: a flow holds every
// port on its path for the same interval). Counter attribution per member:
// queue delay is the wait that member alone would have imposed on a request
// at now, and idle gap is the span that member actually sat free before the
// joint start — so a port that was ready but held up by a busier peer
// accrues idle time, not queue delay.
func ReserveJoint(now Time, dur Duration, rs ...*Resource) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = now
	for _, r := range rs {
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	for _, r := range rs {
		r.book(now, start, dur)
	}
	return start, start + dur
}

// book commits an occupancy [start, start+dur) requested at now and updates
// the counters. start must be >= max(now, freeAt).
func (r *Resource) book(now, start Time, dur Duration) {
	if w := r.freeAt - now; w > 0 {
		r.qdelay += w
	}
	if r.reserves > 0 && start > r.freeAt {
		r.idle += start - r.freeAt
	}
	// Queue depth at the request instant: reservations whose occupancy has
	// not ended by now, plus this one.
	for r.head < len(r.pend) && r.pend[r.head] <= now {
		r.head++
	}
	if r.head == len(r.pend) {
		r.pend = r.pend[:0]
		r.head = 0
	}
	end := start + dur
	r.pend = append(r.pend, end)
	if d := len(r.pend) - r.head; d > r.maxDepth {
		r.maxDepth = d
	}
	r.freeAt = end
	r.busy += dur
	r.reserves++
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the cumulative reserved time (for utilization metrics).
func (r *Resource) BusyTime() Duration { return r.busy }

// Reservations returns the number of reservations made.
func (r *Resource) Reservations() uint64 { return r.reserves }

// QueueDelay returns the cumulative time reservations spent waiting for
// this resource: the sum over reservations of how long the resource was
// still busy past each request instant. A joint reservation charges each
// member only the wait it alone would have imposed.
func (r *Resource) QueueDelay() Duration { return r.qdelay }

// IdleTime returns the cumulative gap time between occupancies: spans where
// the resource sat free between the end of one reservation and the start of
// the next. The span before the first reservation is not counted.
func (r *Resource) IdleTime() Duration { return r.idle }

// MaxQueueDepth returns the largest number of reservations simultaneously
// pending at any reservation instant (including the new one); 1 means the
// resource was never contended, 0 that it was never reserved.
func (r *Resource) MaxQueueDepth() int { return r.maxDepth }

// Stats returns a snapshot of the resource's counters.
func (r *Resource) Stats() ResourceStats {
	return ResourceStats{
		Name:          r.Name,
		Reservations:  r.reserves,
		BusyNs:        r.busy,
		QueueDelayNs:  r.qdelay,
		IdleNs:        r.idle,
		MaxQueueDepth: r.maxDepth,
	}
}

// Reset returns the resource to idle at time zero, clearing every counter.
// A reset resource is indistinguishable from a fresh one (the regression
// test in resource_test.go holds this to the full observable surface); the
// pending-window capacity is retained so benchmark repetitions stay
// allocation-free.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.reserves = 0
	r.qdelay = 0
	r.idle = 0
	r.maxDepth = 0
	r.pend = r.pend[:0]
	r.head = 0
}

// ResourceStats is a point-in-time snapshot of one Resource's introspection
// counters, in a JSON-stable form suitable for per-scenario counter reports.
type ResourceStats struct {
	// Name is the owning resource's registered name (e.g. "nicTx[3]").
	Name string `json:"name"`
	// Reservations counts occupancies granted.
	Reservations uint64 `json:"reservations"`
	// BusyNs is the cumulative reserved time.
	BusyNs Duration `json:"busy_ns"`
	// QueueDelayNs is the cumulative wait charged to this resource.
	QueueDelayNs Duration `json:"queue_delay_ns"`
	// IdleNs is the cumulative gap time between occupancies.
	IdleNs Duration `json:"idle_ns"`
	// MaxQueueDepth is the deepest simultaneous pending count observed.
	MaxQueueDepth int `json:"max_queue_depth"`
}

// CounterGroup is a named collection of resource counter snapshots — one
// row of a layer's counter registration (all DMA engines, all NIC send
// queues, one replica's KV-swap lanes, ...).
type CounterGroup struct {
	// Name identifies the group (e.g. "dma", "nicTx", "kvswap").
	Name string `json:"name"`
	// Stats holds one snapshot per member resource, in registration order.
	Stats []ResourceStats `json:"stats"`
}

// Group snapshots rs into a named CounterGroup, skipping nil members (mesh
// fabrics leave self-pair slots nil).
func Group(name string, rs ...*Resource) CounterGroup {
	g := CounterGroup{Name: name}
	for _, r := range rs {
		if r != nil {
			g.Stats = append(g.Stats, r.Stats())
		}
	}
	return g
}
