package inference

// Expert-parallel MoE step pricing: the dense roofline of inference.go
// composed with internal/moe's dispatch/combine all-to-all priced on the
// real simulated fabric. A Model carries an optional MoESpec; when set,
// the serving layer prices iterations with MoEDecodeStepCtx /
// MoEPrefillStep instead of the dense step functions, paying per MoE layer
// an all-to-all measured by an EPTimer and scaling the routed-expert
// compute by the routing's deterministic load factor (hot-expert skew
// under the configured placement).

import (
	"fmt"
	"sync"

	"mscclpp/internal/moe"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// MoESpec describes the expert-parallel side of a Mixture-of-Experts
// model. A nil spec on a Model means dense: every step function in this
// package then reduces to the original roofline + AllReduce pricing.
type MoESpec struct {
	// Layers is the number of MoE transformer layers; the model's remaining
	// layers are dense and carry no all-to-all.
	Layers int
	// RoutedFrac is the fraction of the model's per-token FLOPs spent in
	// routed experts — the part whose effective cost scales with expert
	// load imbalance. The remainder (attention, shared expert, dense
	// layers) is imbalance-independent.
	RoutedFrac float64
	// Config is the routing and placement description handed to
	// internal/moe: experts, top-k, hidden size, hot-expert skew and the
	// expert-placement knob.
	Config moe.Config
	// Transport selects the all-to-all stack (MSCCL++ proxy or
	// NVSHMEM-IBGDA).
	Transport moe.Transport
}

// LayerBytes returns one MoE layer's cross-GPU all-to-all volume at a
// token count on an n-GPU expert-parallel group: dispatch moves FP8
// activations (1 B/element), combine returns BF16 partials (2 B/element).
// Local-expert (diagonal) traffic is excluded — it never touches the
// fabric.
func (s *MoESpec) LayerBytes(n, tokens int) (dispatch, combine int64) {
	for r, row := range s.Config.TrafficMatrix(n, tokens, 1) {
		for p, b := range row {
			if p != r {
				dispatch += b
			}
		}
	}
	return dispatch, 2 * dispatch
}

// A2ACost is one MoE layer's all-to-all price at a token count.
type A2ACost struct {
	Dispatch sim.Duration
	Combine  sim.Duration
}

// EPTimer measures one MoE layer's dispatch+combine all-to-all latency at
// arbitrary token counts for one (environment, routing config, transport)
// triple, caching per token count. It mirrors ARTimer: each measurement
// builds a fresh simulated cluster, warms the exchange once and times the
// second pass (steady state), and it is safe for concurrent use — the
// measurement is deterministic, so concurrent misses for the same token
// count redundantly compute the identical value.
type EPTimer struct {
	envFn func() *topology.Env
	cfg   moe.Config
	tr    moe.Transport
	mu    sync.Mutex
	cache map[int]A2ACost
}

// NewEPTimer returns a timer for the given routing config and transport on
// the environment produced by envFn.
func NewEPTimer(envFn func() *topology.Env, cfg moe.Config, tr moe.Transport) *EPTimer {
	return &EPTimer{envFn: envFn, cfg: cfg, tr: tr, cache: make(map[int]A2ACost)}
}

// Layer returns the dispatch and combine latency of one MoE layer's
// all-to-all moving `tokens` batch tokens.
func (t *EPTimer) Layer(tokens int) A2ACost {
	if tokens <= 0 {
		return A2ACost{}
	}
	t.mu.Lock()
	c, ok := t.cache[tokens]
	t.mu.Unlock()
	if ok {
		return c
	}
	c, err := MeasureA2A(t.envFn(), t.cfg, t.tr, tokens)
	if err != nil {
		panic(fmt.Sprintf("inference: measuring %s all-to-all at %d tokens: %v", t.tr, tokens, err))
	}
	t.mu.Lock()
	t.cache[tokens] = c
	t.mu.Unlock()
	return c
}

// MeasureA2A times one dispatch and one combine all-to-all at `tokens`
// batch tokens on a fresh simulated cluster (warm pass measured).
func MeasureA2A(env *topology.Env, cfg moe.Config, tr moe.Transport, tokens int) (A2ACost, error) {
	e, err := moe.New(env, cfg, tr)
	if err != nil {
		return A2ACost{}, err
	}
	// Warm-up pass: first-touch channel/semaphore state, as with the
	// AllReduce timer.
	if _, err := e.Dispatch(tokens); err != nil {
		return A2ACost{}, err
	}
	if _, err := e.Combine(tokens); err != nil {
		return A2ACost{}, err
	}
	d, err := e.Dispatch(tokens)
	if err != nil {
		return A2ACost{}, err
	}
	c, err := e.Combine(tokens)
	if err != nil {
		return A2ACost{}, err
	}
	return A2ACost{Dispatch: d.Elapsed, Combine: c.Elapsed}, nil
}

// MoEStepCost splits an expert-parallel iteration's virtual time into the
// bookable parts the serving layer's counters report.
type MoEStepCost struct {
	Total sim.Duration
	// Dispatch and Combine are the all-to-all shares, summed over the
	// model's MoE layers.
	Dispatch sim.Duration
	Combine  sim.Duration
}

// moeCompute is the shared roofline core of the MoE step functions: the
// dense compute term with the routed-expert share scaled by the routing's
// load factor — the batch is not done until the hottest GPU is.
func moeCompute(env *topology.Env, m Model, flops, memBytes float64, tokens int) sim.Duration {
	spec := m.MoE
	lf := spec.Config.LoadFactor(env.TotalGPUs(), tokens)
	eff := flops * ((1 - spec.RoutedFrac) + spec.RoutedFrac*lf)
	compT := eff / (env.PeakTFLOPS * 1e3 * m.Efficiency)
	compute := sim.Duration(memBytes / (env.HBMBW * m.Efficiency))
	if c := sim.Duration(compT); c > compute {
		compute = c
	}
	return compute
}

// MoEDecodeStepCtx prices one expert-parallel decode iteration: the dense
// roofline of DecodeStepCtx with the routed-expert compute scaled by the
// load factor, plus per MoE layer a dispatch+combine all-to-all at the
// batch's token count (one token per running sequence). m.MoE must be
// non-nil; a2a is usually an EPTimer's Layer method.
func MoEDecodeStepCtx(env *topology.Env, m Model, bsz int, totalCtx int64, ar func(int64) sim.Duration, a2a func(tokens int) A2ACost) MoEStepCost {
	memBytes := float64(m.WeightBytesPerGPU) + float64(totalCtx*m.KVBytesPerTokenPerGPU)
	flops := m.FLOPsPerTokenPerGPU * float64(bsz)
	compute := moeCompute(env, m, flops, memBytes, bsz)
	msg := int64(bsz) * int64(m.Hidden) * 2
	comm := sim.Duration(m.Layers*m.ARsPerLayer) * ar(msg)
	lc := a2a(bsz)
	disp := sim.Duration(m.MoE.Layers) * lc.Dispatch
	comb := sim.Duration(m.MoE.Layers) * lc.Combine
	return MoEStepCost{Total: compute + comm + disp + comb, Dispatch: disp, Combine: comb}
}

// MoEPrefillStep prices one expert-parallel chunked-prefill iteration over
// bsz sequences of seqlen tokens: PrefillStep's compute-bound roofline with
// load-factor scaling on the routed share, plus the per-MoE-layer
// all-to-all at the chunk's full token count.
func MoEPrefillStep(env *topology.Env, m Model, bsz, seqlen int, ar func(int64) sim.Duration, a2a func(tokens int) A2ACost) MoEStepCost {
	tokens := bsz * seqlen
	flops := m.FLOPsPerTokenPerGPU * float64(tokens)
	compute := moeCompute(env, m, flops, 0, tokens)
	msg := int64(tokens) * int64(m.Hidden) * 2
	comm := sim.Duration(m.Layers*m.ARsPerLayer) * ar(msg)
	lc := a2a(tokens)
	disp := sim.Duration(m.MoE.Layers) * lc.Dispatch
	comb := sim.Duration(m.MoE.Layers) * lc.Combine
	return MoEStepCost{Total: compute + comm + disp + comb, Dispatch: disp, Combine: comb}
}

// DeepSeekV3MoE returns the DeepSeek-V3 model as an expert-parallel MoE
// deployment over ep GPUs: the dense DeepSeekV3 card (whose roofline
// constants stay untouched) plus the expert-parallel spec — 58 of the 61
// layers are MoE (the first three are dense), 256 routed experts at top-k
// 8 over IBGDA, and roughly 70% of the activated FLOPs in routed experts
// (the rest is MLA attention plus the shared expert and dense layers).
// Skew and placement default to the balanced Figure 13 setting; callers
// mutate m.MoE.Config to model imbalance.
func DeepSeekV3MoE(ep int) Model {
	m := DeepSeekV3(ep)
	m.Name = "DeepSeek-V3-EP"
	m.MoE = &MoESpec{
		Layers:     58,
		RoutedFrac: 0.7,
		Config:     moe.Config{Hidden: m.Hidden, TopK: 8, Experts: 256},
		Transport:  moe.TransportIBGDA,
	}
	return m
}
