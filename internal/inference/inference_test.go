package inference

import (
	"testing"

	"mscclpp/internal/topology"
)

func a100_80g() *topology.Env { return topology.A100_80G(1) }

func TestMeasureAllReduceLibraries(t *testing.T) {
	for _, lib := range []Library{LibMSCCLPP, LibNCCL, LibMSCCL, LibVLLMCustom} {
		d, err := MeasureAllReduce(a100_80g(), lib, 16<<10)
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		if d <= 0 || d > 100_000 {
			t.Fatalf("%s: implausible 16KB latency %dns", lib, d)
		}
	}
}

func TestARTimerCachesAndAligns(t *testing.T) {
	timer := NewARTimer(a100_80g, LibMSCCLPP)
	d1 := timer.Time(16384)
	d2 := timer.Time(16384)
	if d1 != d2 {
		t.Fatalf("cache miss: %d vs %d", d1, d2)
	}
	// Unaligned sizes round up rather than failing.
	if d := timer.Time(16383); d <= 0 {
		t.Fatalf("unaligned size: %d", d)
	}
	if timer.Time(0) != 0 {
		t.Fatal("zero-size message should cost nothing")
	}
}

// Figure 11 shape: MSCCL++ decode is faster than NCCL decode for every
// batch configuration, with speedups in a plausible 1.02-1.5x band.
func TestDecodeSpeedupShape(t *testing.T) {
	env := a100_80g()
	model := Llama3x70B(8)
	nccl := NewARTimer(a100_80g, LibNCCL)
	mpp := NewARTimer(a100_80g, LibMSCCLPP)
	for _, bsz := range []int{1, 8, 32, 64} {
		for _, seqlen := range []int{128, 1024} {
			tN := DecodeStep(env, model, bsz, seqlen, nccl.Time)
			tM := DecodeStep(env, model, bsz, seqlen, mpp.Time)
			sp := Speedup(tN, tM)
			if sp <= 1.0 {
				t.Errorf("bsz=%d seqlen=%d: speedup %.3f <= 1", bsz, seqlen, sp)
			}
			if sp > 1.6 {
				t.Errorf("bsz=%d seqlen=%d: speedup %.3f implausibly large", bsz, seqlen, sp)
			}
		}
	}
}

// Prefill is compute-dominated: its speedup must be well below the decode
// speedup at the same configuration (paper: up to 1.06x for prefill vs
// 1.11x average for decode; our NCCL-sim's large-message gap makes the
// absolute prefill number somewhat larger, recorded in EXPERIMENTS.md).
func TestPrefillSpeedupSmall(t *testing.T) {
	env := a100_80g()
	model := Llama3x70B(8)
	nccl := NewARTimer(a100_80g, LibNCCL)
	mpp := NewARTimer(a100_80g, LibMSCCLPP)
	tN := PrefillStep(env, model, 8, 1024, nccl.Time)
	tM := PrefillStep(env, model, 8, 1024, mpp.Time)
	sp := Speedup(tN, tM)
	if sp < 1.0 || sp > 1.25 {
		t.Fatalf("prefill speedup %.3f outside [1.0, 1.25]", sp)
	}
	dN := DecodeStep(env, model, 8, 1024, nccl.Time)
	dM := DecodeStep(env, model, 8, 1024, mpp.Time)
	t.Logf("prefill speedup %.3f, decode speedup %.3f", sp, Speedup(dN, dM))
}

// The decode step time must grow with batch and with context length.
func TestDecodeStepMonotonic(t *testing.T) {
	env := a100_80g()
	model := Llama3x70B(8)
	mpp := NewARTimer(a100_80g, LibMSCCLPP)
	t1 := DecodeStep(env, model, 1, 128, mpp.Time)
	t2 := DecodeStep(env, model, 64, 128, mpp.Time)
	t3 := DecodeStep(env, model, 64, 4096, mpp.Time)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("decode times not monotonic: %d %d %d", t1, t2, t3)
	}
	// Plausible absolute range for Llama3-70B TP8 decode: 5-100 ms.
	if t1 < 5*1e6 || t1 > 100*1e6 {
		t.Fatalf("bsz=1 decode step %.2fms implausible", float64(t1)/1e6)
	}
}

// Figure 12 shape: two-node DeepSeek-V3 decode, MSCCL++ vs NCCL speedup in
// the 1.05-1.45 band, and throughput increasing with batch size.
func TestSGLangDecodeShape(t *testing.T) {
	envFn := func() *topology.Env { return topology.H100(2) }
	env := envFn()
	model := DeepSeekV3(16)
	nccl := NewARTimer(envFn, LibNCCL)
	mpp := NewARTimer(envFn, LibMSCCLPP)
	prevTput := 0.0
	for _, bsz := range []int{1, 4, 16, 64} {
		tN := DecodeStep(env, model, bsz, 1024, nccl.Time)
		tM := DecodeStep(env, model, bsz, 1024, mpp.Time)
		sp := Speedup(tN, tM)
		if sp <= 1.0 || sp > 1.6 {
			t.Errorf("bsz=%d: speedup %.3f outside (1.0, 1.6]", bsz, sp)
		}
		tput := DecodeThroughput(bsz, tM)
		if tput <= prevTput {
			t.Errorf("bsz=%d: throughput %.0f not increasing (prev %.0f)", bsz, tput, prevTput)
		}
		prevTput = tput
	}
	// Throughput order of magnitude: hundreds to thousands of tokens/s.
	if prevTput < 300 || prevTput > 50_000 {
		t.Fatalf("bsz=64 throughput %.0f tok/s implausible", prevTput)
	}
}

// vLLM custom kernel comparison (paper §7.3): MSCCL++ is similar or faster
// across message sizes, with meaningful gains somewhere in the range.
func TestCustomKernelComparison(t *testing.T) {
	custom := NewARTimer(a100_80g, LibVLLMCustom)
	mpp := NewARTimer(a100_80g, LibMSCCLPP)
	best := 0.0
	for _, msg := range []int64{4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		tc := custom.Time(msg)
		tm := mpp.Time(msg)
		r := Speedup(tc, tm)
		if r < 0.95 {
			t.Errorf("msg=%d: MSCCL++ %.2fx slower than custom kernel", msg, 1/r)
		}
		if r > best {
			best = r
		}
	}
	if best < 1.1 {
		t.Fatalf("MSCCL++ never meaningfully beats the custom kernel (best %.2fx)", best)
	}
}

// TestKVShardBytesFormula pins the KV-size helper to the explicit
// layers x (K+V) x KV-heads x head-dim x dtype-bytes / TP x tokens product
// for both model cards, so disaggregated KV-handoff sizing can never drift
// from the model definitions silently.
func TestKVShardBytesFormula(t *testing.T) {
	cases := []struct {
		name      string
		model     Model
		perTokSum int64 // layers x (K+V) x kvHeads x headDim x dtypeBytes, pre-TP
		tp        int
	}{
		// Llama3-70B: 80 layers, GQA with 8 KV heads x 128 head-dim, bf16.
		{"llama3-70b tp8", Llama3x70B(8), 80 * 2 * 8 * 128 * 2, 8},
		// DeepSeek-V3: 61 layers, MLA compressed KV of 576 elements, bf16
		// (the compressed latent replaces the per-head K/V pair).
		{"deepseek-v3 tp16", DeepSeekV3(16), 61 * 576 * 2, 16},
	}
	for _, c := range cases {
		perTok := c.perTokSum / int64(c.tp)
		if c.model.KVBytesPerTokenPerGPU != perTok {
			t.Errorf("%s: KVBytesPerTokenPerGPU = %d, formula gives %d", c.name, c.model.KVBytesPerTokenPerGPU, perTok)
		}
		for _, tokens := range []int{1, 7, 512, 4096} {
			want := int64(tokens) * perTok
			if got := c.model.KVShardBytes(tokens); got != want {
				t.Errorf("%s: KVShardBytes(%d) = %d, want %d", c.name, tokens, got, want)
			}
		}
		if got := c.model.KVShardBytes(0); got != 0 {
			t.Errorf("%s: KVShardBytes(0) = %d, want 0", c.name, got)
		}
		if got := c.model.KVShardBytes(-5); got != 0 {
			t.Errorf("%s: KVShardBytes(-5) = %d, want 0", c.name, got)
		}
	}
}
