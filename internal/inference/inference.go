// Package inference models the paper's end-to-end LLM inference workloads
// (Section 7.3): tensor-parallel transformer decode and prefill whose
// compute side follows a roofline model and whose communication side runs
// the actual simulated collectives — MSCCL++, NCCL-sim, or a vLLM-style
// custom kernel — at the workload's exact message sizes.
//
// The inference substitution (DESIGN.md): the paper measures vLLM/SGLang on
// real GPUs; decode speedups there are communication-fraction arithmetic
// over collective latencies, which we recompose with simulated latencies.
package inference

import (
	"fmt"
	"sync"

	"mscclpp/internal/baseline/mscclsim"
	"mscclpp/internal/baseline/ncclsim"
	"mscclpp/internal/baseline/twosided"
	"mscclpp/internal/collective"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Library selects the communication backend of a workload.
type Library string

// Backends.
const (
	LibMSCCLPP    Library = "mscclpp"
	LibNCCL       Library = "nccl"
	LibMSCCL      Library = "msccl"
	LibVLLMCustom Library = "vllm-custom"
)

// ARTimer measures AllReduce latency at arbitrary message sizes for one
// (environment, library) pair, caching per size. Each measurement builds a
// fresh simulated cluster, prepares the library's best algorithm, warms it
// up once and times the second invocation (steady state, as with CUDA
// graphs in the paper).
//
// ARTimer is safe for concurrent use: workload sweeps fan decode/prefill
// steps out across a worker pool and share one timer per library. The
// measurement itself is deterministic, so concurrent misses for the same
// size redundantly compute the identical value.
type ARTimer struct {
	envFn func() *topology.Env
	lib   Library
	mu    sync.Mutex
	cache map[int64]sim.Duration
}

// NewARTimer returns a timer for lib on the environment produced by envFn.
func NewARTimer(envFn func() *topology.Env, lib Library) *ARTimer {
	return &ARTimer{envFn: envFn, lib: lib, cache: make(map[int64]sim.Duration)}
}

// Time returns the AllReduce latency for a message of msg bytes.
func (t *ARTimer) Time(msg int64) sim.Duration {
	if msg <= 0 {
		return 0
	}
	// Round up to 4*ranks alignment.
	env := t.envFn()
	align := int64(4 * env.TotalGPUs())
	if rem := msg % align; rem != 0 {
		msg += align - rem
	}
	t.mu.Lock()
	d, ok := t.cache[msg]
	t.mu.Unlock()
	if ok {
		return d
	}
	d, err := MeasureAllReduce(t.envFn(), t.lib, msg)
	if err != nil {
		panic(fmt.Sprintf("inference: measuring %s allreduce at %dB: %v", t.lib, msg, err))
	}
	t.mu.Lock()
	t.cache[msg] = d
	t.mu.Unlock()
	return d
}

// MeasureAllReduce times one library's best AllReduce at size bytes (warm
// run measured).
func MeasureAllReduce(env *topology.Env, lib Library, size int64) (sim.Duration, error) {
	best := sim.Duration(0)
	run := func(prep func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error)) error {
		m := machine.New(env)
		m.MaterializeLimit = 0 // timing only
		c := collective.New(m)
		n := c.Ranks()
		in := make([]*mem.Buffer, n)
		out := make([]*mem.Buffer, n)
		for r := 0; r < n; r++ {
			in[r] = m.Alloc(r, "in", size)
			out[r] = m.Alloc(r, "out", size)
		}
		ex, err := prep(c, in, out)
		if err != nil {
			return nil // algorithm not applicable in this configuration
		}
		if _, err := c.Run(ex); err != nil { // warm-up
			return err
		}
		d, err := c.Run(ex)
		if err != nil {
			return err
		}
		if best == 0 || d < best {
			best = d
		}
		return nil
	}
	var err error
	switch lib {
	case LibMSCCLPP:
		err = run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return c.SelectAllReduce(size).Prepare(c, in, out)
		})
	case LibVLLMCustom:
		err = run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
			return (&collective.AllReduce1PAHB{}).Prepare(c, in, out)
		})
	case LibNCCL:
		for _, proto := range []twosided.Proto{twosided.ProtoLL, twosided.ProtoSimple} {
			p := proto
			if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return ncclsim.New(c, 0).PrepareAllReduceRing(in, out, p)
			}); e != nil {
				err = e
			}
			if env.Nodes > 1 {
				if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
					return ncclsim.New(c, 0).PrepareAllReduceTree(in, out, p)
				}); e != nil {
					err = e
				}
			}
		}
	case LibMSCCL:
		if env.Nodes == 1 {
			if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return mscclsim.New(c, 0).PrepareAllReduceAllPairs1P(in, out)
			}); e != nil {
				err = e
			}
			for _, proto := range []twosided.Proto{twosided.ProtoLL, twosided.ProtoSimple} {
				p := proto
				if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
					return mscclsim.New(c, 0).PrepareAllReduceAllPairs2P(in, out, p)
				}); e != nil {
					err = e
				}
			}
			if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
				return ncclsim.New(c, 0).PrepareAllReduceRing(in, out, twosided.ProtoSimple)
			}); e != nil {
				err = e
			}
		} else {
			for _, proto := range []twosided.Proto{twosided.ProtoLL, twosided.ProtoSimple} {
				p := proto
				if e := run(func(c *collective.Comm, in, out []*mem.Buffer) (*collective.Exec, error) {
					return mscclsim.New(c, 0).PrepareAllReduceHier(in, out, p)
				}); e != nil {
					err = e
				}
			}
		}
	default:
		return 0, fmt.Errorf("inference: unknown library %q", lib)
	}
	if err != nil {
		return 0, err
	}
	if best == 0 {
		return 0, fmt.Errorf("inference: no applicable algorithm for %s at %dB", lib, size)
	}
	return best, nil
}

// Model describes a tensor-parallel transformer for the roofline.
type Model struct {
	Name   string
	Layers int
	Hidden int
	// WeightBytesPerGPU is the per-GPU resident weight footprint read every
	// decode step (dense layers; for MoE, the activated expert subset).
	WeightBytesPerGPU int64
	// KVBytesPerTokenPerGPU is the KV-cache footprint per context token.
	KVBytesPerTokenPerGPU int64
	// FLOPsPerTokenPerGPU is the forward FLOP count per generated/processed
	// token per GPU.
	FLOPsPerTokenPerGPU float64
	// Efficiency derates peak compute/memory (kernel overheads, attention
	// inefficiency).
	Efficiency float64
	// ARsPerLayer is the number of tensor-parallel AllReduces per layer
	// (post-attention and post-MLP).
	ARsPerLayer int
	// MoE, when non-nil, marks the model as expert-parallel: serving
	// iterations are priced by MoEDecodeStepCtx/MoEPrefillStep (roofline +
	// per-layer dispatch/combine all-to-all) instead of the dense step
	// functions. See MoESpec (moe.go).
	MoE *MoESpec
}

// KVShardBytes returns the per-GPU KV-cache footprint of tokens context
// tokens: layers x (K+V) x KV-heads x head-dim x dtype-bytes per token
// (the product folded into KVBytesPerTokenPerGPU, already divided by the
// tensor-parallel degree) times the token count. This is the shard one
// GPU ships to its decode-pool peer when a disaggregated deployment hands
// a finished prefill's cache over the fabric; every TP rank moves its own
// shard in parallel, so the bytes-on-the-wire total is this value times
// the TP degree.
func (m Model) KVShardBytes(tokens int) int64 {
	if tokens <= 0 {
		return 0
	}
	return int64(tokens) * m.KVBytesPerTokenPerGPU
}

// Llama3x70B returns the Llama3-70B model sharded over tp GPUs (paper
// Figure 11 setup: TP=8 on A100-80G).
func Llama3x70B(tp int) Model {
	const (
		layers = 80
		hidden = 8192
		params = 70.6e9
	)
	return Model{
		Name:                  "Llama3-70b",
		Layers:                layers,
		Hidden:                hidden,
		WeightBytesPerGPU:     int64(params * 2 / float64(tp)),
		KVBytesPerTokenPerGPU: int64(layers * 2 * 1024 * 2 / tp), // GQA: 8 KV heads x 128
		FLOPsPerTokenPerGPU:   2 * params / float64(tp),
		Efficiency:            0.55,
		ARsPerLayer:           2,
	}
}

// DeepSeekV3 returns the DeepSeek-V3 model sharded over tp GPUs (paper
// Figure 12 setup: TP=16 over two H100 nodes).
func DeepSeekV3(tp int) Model {
	const (
		layers    = 61
		hidden    = 7168
		activated = 37e9
	)
	return Model{
		Name:                  "DeepSeek-V3",
		Layers:                layers,
		Hidden:                hidden,
		WeightBytesPerGPU:     int64(activated * 1 / float64(tp)), // FP8 weights
		KVBytesPerTokenPerGPU: int64(layers * 576 * 2 / tp),       // MLA compressed KV
		FLOPsPerTokenPerGPU:   2 * activated / float64(tp),
		// MoE decode runs at very low MFU (expert gating, many small
		// grouped GEMMs, MLA decompression), so the roofline derate is much
		// harsher than for dense models.
		Efficiency:  0.08,
		ARsPerLayer: 2,
	}
}

// DecodeStep returns the virtual time of one decode iteration for a batch
// of bsz sequences with context length seqlen, using ar for the
// tensor-parallel AllReduces.
func DecodeStep(env *topology.Env, m Model, bsz, seqlen int, ar func(int64) sim.Duration) sim.Duration {
	return DecodeStepCtx(env, m, bsz, int64(bsz)*int64(seqlen), ar)
}

// DecodeStepCtx is DecodeStep for a heterogeneous batch: totalCtx is the sum
// of the context lengths of the bsz sequences (a continuous-batching batch
// mixes fresh and deep sequences, so only the total KV footprint matters to
// the roofline, not a shared seqlen).
func DecodeStepCtx(env *topology.Env, m Model, bsz int, totalCtx int64, ar func(int64) sim.Duration) sim.Duration {
	// Memory-bound side: weights are read once per step; KV cache is read
	// for every context token in the batch.
	memBytes := float64(m.WeightBytesPerGPU) + float64(totalCtx*m.KVBytesPerTokenPerGPU)
	memT := memBytes / (env.HBMBW * m.Efficiency)
	// Compute side (matters at large batch).
	flops := m.FLOPsPerTokenPerGPU * float64(bsz)
	compT := flops / (env.PeakTFLOPS * 1e3 * m.Efficiency) // TFLOPs -> FLOP/ns
	compute := sim.Duration(memT)
	if c := sim.Duration(compT); c > compute {
		compute = c
	}
	// Tensor-parallel AllReduce per layer: bsz x hidden activations (bf16).
	msg := int64(bsz) * int64(m.Hidden) * 2
	comm := sim.Duration(m.Layers*m.ARsPerLayer) * ar(msg)
	return compute + comm
}

// PrefillStep returns the virtual time of one prefill (prompt processing)
// iteration over bsz sequences of seqlen tokens.
func PrefillStep(env *topology.Env, m Model, bsz, seqlen int, ar func(int64) sim.Duration) sim.Duration {
	tokens := float64(bsz * seqlen)
	flops := m.FLOPsPerTokenPerGPU * tokens
	compT := sim.Duration(flops / (env.PeakTFLOPS * 1e3 * m.Efficiency))
	msg := int64(bsz) * int64(seqlen) * int64(m.Hidden) * 2
	comm := sim.Duration(m.Layers*m.ARsPerLayer) * ar(msg)
	return compT + comm
}

// Speedup computes a/b as a float ratio.
func Speedup(a, b sim.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// DecodeThroughput returns tokens/second for one decode step time.
func DecodeThroughput(bsz int, step sim.Duration) float64 {
	if step <= 0 {
		return 0
	}
	return float64(bsz) / (float64(step) / 1e9)
}
