package inference

import (
	"testing"

	"mscclpp/internal/moe"
	"mscclpp/internal/topology"
)

func TestMoEDecodeStepPricing(t *testing.T) {
	envFn := func() *topology.Env { return topology.H100(2) }
	m := DeepSeekV3MoE(16)
	ar := NewARTimer(envFn, LibMSCCLPP)
	ep := NewEPTimer(envFn, m.MoE.Config, m.MoE.Transport)

	const bsz, ctx = 24, 24 * 512
	st := MoEDecodeStepCtx(envFn(), m, bsz, ctx, ar.Time, ep.Layer)
	if st.Dispatch <= 0 || st.Combine <= 0 {
		t.Fatalf("all-to-all shares not positive: %+v", st)
	}
	if st.Combine <= st.Dispatch {
		t.Fatalf("combine (%d) should cost more than dispatch (%d): 2x the bytes", st.Combine, st.Dispatch)
	}
	dense := DecodeStepCtx(envFn(), DeepSeekV3(16), bsz, ctx, ar.Time)
	if st.Total <= dense {
		t.Fatalf("MoE step %d ns not above dense-equivalent %d ns: all-to-all priced at zero?", st.Total, dense)
	}
	if st.Total-st.Dispatch-st.Combine < dense {
		t.Fatalf("MoE roofline part %d ns below dense %d ns at uniform routing", st.Total-st.Dispatch-st.Combine, dense)
	}

	pf := MoEPrefillStep(envFn(), m, 1, 512, ar.Time, ep.Layer)
	if pf.Total <= 0 || pf.Dispatch <= 0 || pf.Combine <= 0 {
		t.Fatalf("prefill step: %+v", pf)
	}
}

// TestMoESkewPricing pins the imbalance model end to end: hot-expert skew
// under block placement strictly inflates the decode step, and the
// rebalancing remap recovers at least half of that inflation.
func TestMoESkewPricing(t *testing.T) {
	envFn := func() *topology.Env { return topology.H100(2) }
	ar := NewARTimer(envFn, LibMSCCLPP)
	step := func(skew float64, place moe.Placement) MoEStepCost {
		m := DeepSeekV3MoE(16)
		m.MoE.Config.Skew = skew
		m.MoE.Config.Placement = place
		ep := NewEPTimer(envFn, m.MoE.Config, m.MoE.Transport)
		return MoEDecodeStepCtx(envFn(), m, 24, 24*512, ar.Time, ep.Layer)
	}
	uni := step(0, moe.PlaceUniform)
	skew := step(0.5, moe.PlaceUniform)
	rebal := step(0.5, moe.PlaceRebalance)
	if skew.Total <= uni.Total {
		t.Fatalf("skewed step %d ns not above uniform %d ns", skew.Total, uni.Total)
	}
	gap := skew.Total - uni.Total
	if rebal.Total > uni.Total+gap/2 {
		t.Fatalf("rebalance recovers too little: uniform %d, skew %d, rebalance %d ns", uni.Total, skew.Total, rebal.Total)
	}
}

func TestMoELayerBytes(t *testing.T) {
	m := DeepSeekV3MoE(16)
	const n, tokens = 16, 100 // non-divisible: exercises the remainder split
	d, c := m.MoE.LayerBytes(n, tokens)
	if c != 2*d {
		t.Fatalf("combine bytes %d != 2x dispatch bytes %d", c, d)
	}
	// Cross-GPU volume plus the diagonal must conserve the full routed load.
	var diag int64
	for r, row := range m.MoE.Config.TrafficMatrix(n, tokens, 1) {
		diag += row[r]
	}
	want := int64(tokens) * int64(m.MoE.Config.TopK) * int64(m.MoE.Config.Hidden)
	if d+diag != want {
		t.Fatalf("dispatch %d + local %d != %d total bytes", d, diag, want)
	}
}

func TestEPTimerDeterministicCache(t *testing.T) {
	envFn := func() *topology.Env { return topology.H100(2) }
	cfg := moe.DefaultConfig()
	a := NewEPTimer(envFn, cfg, moe.TransportIBGDA)
	b := NewEPTimer(envFn, cfg, moe.TransportIBGDA)
	if a.Layer(24) != a.Layer(24) {
		t.Fatal("cached lookup diverged from first measurement")
	}
	if a.Layer(24) != b.Layer(24) {
		t.Fatal("independent timers diverged on the same measurement")
	}
	if z := a.Layer(0); z != (A2ACost{}) {
		t.Fatalf("zero tokens should be free, got %+v", z)
	}
}
