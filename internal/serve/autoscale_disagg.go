package serve

// Prefill:decode ratio scaling for disaggregated deployments: the same
// control-loop discipline as RunAutoscaled, applied to the one knob a
// fixed-size disaggregated fleet has — how many of its replica slots run
// prefill versus decode. Total GPU count stays constant (this is a
// re-partitioning problem, not a capacity problem): a conversion drains
// one replica of the shrinking pool, waits out the provisioning delay
// (weight re-load, role switch), then boots a fresh replica of the
// growing pool on the same slot. The KV-handoff fabric is partitioned
// once over all slots, so a converted slot keeps its lanes and transfer
// pricing stays honest across role changes.

import (
	"fmt"
	"math"

	"mscclpp/internal/sim"
)

// RatioSignals is one control-loop sample of a disaggregated fleet — the
// view a RatioPolicy decides from.
type RatioSignals struct {
	// TimeNs is the sampling instant.
	TimeNs sim.Time `json:"time_ns"`
	// Slots is the fixed total replica-slot count.
	Slots int `json:"slots"`
	// PrefillReplicas and DecodeReplicas count active (routable) replicas
	// per pool; Converting counts slots mid-conversion (draining or
	// rebooting into their new role).
	PrefillReplicas int `json:"prefill_replicas"`
	DecodeReplicas  int `json:"decode_replicas"`
	Converting      int `json:"converting,omitempty"`
	// PrefillQueued/DecodeQueued sum the pools' admission queues;
	// PrefillTokens/DecodeTokens their token-weighted outstanding work
	// (decode includes handoffs still on the wire).
	PrefillQueued int   `json:"prefill_queued,omitempty"`
	DecodeQueued  int   `json:"decode_queued,omitempty"`
	PrefillTokens int64 `json:"prefill_tokens,omitempty"`
	DecodeTokens  int64 `json:"decode_tokens,omitempty"`
}

// RatioPolicy maps a signal sample to the desired prefill-pool size. The
// driver clamps the decision to [1, Slots-1] — both pools always keep at
// least one replica — and actuates at most one slot conversion at a time.
type RatioPolicy interface {
	// Name is the stable policy identifier used in reports.
	Name() string
	// DesiredPrefill returns how many slots the policy wants running
	// prefill. Called in engine context once per control interval.
	DesiredPrefill(sig RatioSignals) int
}

// staticRatio holds the prefill pool at a fixed size.
type staticRatio struct{ n int }

// NewStaticRatio returns the static baseline ratio policy: the prefill
// pool is held at n slots regardless of load (n <= 0 pins to half the
// slots).
func NewStaticRatio(n int) RatioPolicy { return &staticRatio{n: n} }

func (*staticRatio) Name() string { return "static-ratio" }

func (p *staticRatio) DesiredPrefill(sig RatioSignals) int {
	if p.n > 0 {
		return p.n
	}
	return sig.Slots / 2
}

// backlogRatio splits slots proportionally to token backlog.
type backlogRatio struct{}

// NewBacklogRatio returns the backlog-proportional ratio policy: slots
// are split in proportion to each pool's token-weighted outstanding work,
// so a prompt-heavy phase pulls slots into prefill and a decode-heavy
// tail releases them. It is a deliberately simple heuristic — the pools'
// service rates differ, so proportional is not optimal — but it moves the
// ratio in the right direction and is cheap to reason about.
func NewBacklogRatio() RatioPolicy { return backlogRatio{} }

func (backlogRatio) Name() string { return "backlog-ratio" }

func (backlogRatio) DesiredPrefill(sig RatioSignals) int {
	tot := sig.PrefillTokens + sig.DecodeTokens
	if tot <= 0 {
		return sig.PrefillReplicas
	}
	raw := float64(sig.Slots) * float64(sig.PrefillTokens) / float64(tot)
	return int(math.Round(raw))
}

// DisaggScaleConfig parameterizes a ratio-scaled disaggregated run.
type DisaggScaleConfig struct {
	// Slots is the fixed total replica-slot count (prefill + decode).
	// Must be >= 2; each slot owns one per-replica environment's GPUs.
	Slots int
	// InitialPrefill is how many slots start as prefill replicas.
	// Defaults to Slots/2 (at least 1). Must stay in [1, Slots-1].
	InitialPrefill int
	// Replica configures every replica engine either pool ever runs.
	Replica Config
	// Policy decides the prefill-pool size each interval. Defaults to
	// NewBacklogRatio(). Must be fresh.
	Policy RatioPolicy
	// PrefillPolicy routes arrivals over the active prefill pool;
	// DecodePolicy places finished prefills. Both default to JSQ and must
	// be fresh instances.
	PrefillPolicy Policy
	DecodePolicy  Policy
	// Interval is the control-loop period (default 15 s); ProvisionDelay
	// the role-switch reboot time after a conversion drain (default 30 s).
	Interval       sim.Duration
	ProvisionDelay sim.Duration
}

// RatioEvent is one entry of the ratio timeline: a slot transition and
// the pool composition right after it.
type RatioEvent struct {
	TimeNs sim.Time `json:"time_ns"`
	// Event is the transition: convert (drain begins), reboot (drain
	// finished, role switch under way), activate (new role admits), abort
	// (reboot finished into an already-closed pool), retire (end-of-run
	// drain), close-prefill, close-decode.
	Event string `json:"event"`
	// Slot is the slot the transition applies to (-1 for pool closes).
	Slot int `json:"slot"`
	// Prefill/Decode count active replicas per pool after the transition;
	// Converting counts slots mid-conversion.
	Prefill    int `json:"prefill"`
	Decode     int `json:"decode"`
	Converting int `json:"converting,omitempty"`
}

// RatioScaleResult is the outcome of one ratio-scaled disaggregated run.
type RatioScaleResult struct {
	// Policy names the ratio policy; PrefillPolicy/DecodePolicy the
	// routing and placement policies.
	Policy        string `json:"policy"`
	PrefillPolicy string `json:"prefill_policy"`
	DecodePolicy  string `json:"decode_policy"`
	// Results holds one Result per replica engine ever booted (slot
	// conversions boot fresh engines), in boot order; Merged pools them.
	Results []*Result `json:"results"`
	Merged  *Result   `json:"merged"`
	// Fleet is the ratio timeline; Samples the control-loop inputs;
	// Conversions counts completed slot conversions.
	Fleet       []RatioEvent   `json:"fleet"`
	Samples     []RatioSignals `json:"samples,omitempty"`
	Conversions int            `json:"conversions"`
	// KV-handoff accounting, as in DisaggResult.
	Handoffs      int          `json:"handoffs"`
	HandoffBytes  int64        `json:"handoff_bytes"`
	HandoffMeanNs sim.Duration `json:"handoff_mean_ns"`
	HandoffMaxNs  sim.Duration `json:"handoff_max_ns"`
}

// Summarize aggregates the cluster-level (merged) result under an SLO.
func (r *RatioScaleResult) Summarize(slo SLO) Summary { return r.Merged.Summarize(slo) }

// ratioSlotState is a slot's lifecycle state in the ratio scaler.
type ratioSlotState int

const (
	ratioActive    ratioSlotState = iota // routable in its pool
	ratioDraining                        // conversion drain in progress
	ratioRebooting                       // drained; role switch under way
	ratioDone                            // closed for good
)

// ratioSlot is one replica slot of a ratio-scaled deployment. The slot
// (and its KV-fabric group) is permanent; the scheduler behind it is
// replaced on each role conversion.
type ratioSlot struct {
	id     int
	s      *Scheduler
	role   role // current scheduler's role
	target role // role after any in-flight conversion
	state  ratioSlotState
	gen    int // boot generation, for unique engine names
}

// RunAutoscaledDisagg replays the workload against a disaggregated
// deployment whose prefill:decode split is re-balanced by a control loop:
// every Interval the loop samples both pools' queue and backlog signals
// and, when the RatioPolicy wants a different split, converts one slot —
// drain the shrinking pool's least-loaded replica (its never-admitted
// requests re-route inside the pool), wait ProvisionDelay, boot the
// grown pool's replacement on the same slot and fabric group. At most
// one conversion is in flight at a time, and both pools always keep at
// least one active replica, so arrivals and handoffs always have a
// destination. Deterministic and bit-stable like every other driver.
func RunAutoscaledDisagg(dc DisaggScaleConfig, wl Workload) (*RatioScaleResult, error) {
	slots := dc.Slots
	if slots < 2 {
		return nil, fmt.Errorf("serve: DisaggScaleConfig.Slots = %d (need >= 2)", slots)
	}
	initP := dc.InitialPrefill
	if initP == 0 {
		initP = slots / 2
		if initP < 1 {
			initP = 1
		}
	}
	if initP < 1 || initP > slots-1 {
		return nil, fmt.Errorf("serve: DisaggScaleConfig.InitialPrefill = %d of %d slots", initP, slots)
	}
	pol := dc.Policy
	if pol == nil {
		pol = NewBacklogRatio()
	}
	ppol := dc.PrefillPolicy
	if ppol == nil {
		ppol = NewJSQ()
	}
	dpol := dc.DecodePolicy
	if dpol == nil {
		dpol = NewJSQ()
	}
	interval := dc.Interval
	if interval == 0 {
		interval = 15 * sim.Second
	}
	delay := dc.ProvisionDelay
	if delay == 0 {
		delay = 30 * sim.Second
	}
	if interval < 0 || delay < 0 {
		return nil, fmt.Errorf("serve: DisaggScaleConfig interval=%d provision-delay=%d", interval, delay)
	}
	c, admitted, rejected, err := prepare(dc.Replica, wl)
	if err != nil {
		return nil, err
	}

	fabEnv := *c.Env
	fabEnv.Name = c.Env.Name + "-kv"
	fabEnv.Nodes = c.Env.Nodes * slots
	link, err := NewKVLink(&fabEnv, slots)
	if err != nil {
		return nil, err
	}
	lanes := int64(c.Env.TotalGPUs())

	expect := 0
	for _, r := range admitted.Requests {
		if r.OutputLen > 1 {
			expect++
		}
	}
	delivered := 0

	eng := sim.NewEngine()
	out := &RatioScaleResult{Policy: pol.Name(), PrefillPolicy: ppol.Name(), DecodePolicy: dpol.Name()}
	var (
		slotList     []*ratioSlot
		preScheds    []*Scheduler
		decScheds    []*Scheduler
		decIDs       []int // slot id per decScheds entry (fabric group of a placement)
		allScheds    []*Scheduler
		converting   int
		streamEnded  bool
		prefillDone  bool // prefill pool closed (end of arrivals)
		decodeClosed bool
	)
	rebuild := func() {
		preScheds, decScheds, decIDs = preScheds[:0], decScheds[:0], decIDs[:0]
		for _, sl := range slotList {
			if sl.state != ratioActive {
				continue
			}
			if sl.role == rolePrefill {
				preScheds = append(preScheds, sl.s)
			} else {
				decScheds = append(decScheds, sl.s)
				decIDs = append(decIDs, sl.id)
			}
		}
	}
	record := func(t sim.Time, ev string, id int) {
		out.Fleet = append(out.Fleet, RatioEvent{TimeNs: t, Event: ev, Slot: id,
			Prefill: len(preScheds), Decode: len(decScheds), Converting: converting})
	}
	closeDecode := func(now sim.Time) {
		if decodeClosed {
			return
		}
		decodeClosed = true
		for _, sl := range slotList {
			if sl.state == ratioActive && sl.role == roleDecode {
				sl.s.Close()
			}
		}
		record(now, "close-decode", -1)
	}
	maybeCloseDecode := func(now sim.Time) {
		if streamEnded && delivered == expect {
			closeDecode(now)
		}
	}

	var spawnSlot func(sl *ratioSlot, ro role)
	spawnSlot = func(sl *ratioSlot, ro role) {
		poolName := "prefill"
		if ro == roleDecode {
			poolName = "decode"
		}
		s, err := newScheduler(eng, fmt.Sprintf("%s-slot%d-g%d", poolName, sl.id, sl.gen), c, ro)
		if err != nil {
			// prepare validated the identical config; this cannot fire.
			panic(fmt.Sprintf("serve: ratio spawn: %v", err))
		}
		s.res.Workload = wl.Name
		sl.s = s
		sl.role = ro
		allScheds = append(allScheds, s)
		if ro == rolePrefill {
			src := sl.id
			s.onPrefilled = func(pr Prefilled, end sim.Time, release func()) {
				j := dpol.Pick(pr.Req, decScheds)
				if j < 0 || j >= len(decScheds) {
					panic(fmt.Sprintf("serve: decode policy %s picked replica %d of %d", dpol.Name(), j, len(decScheds)))
				}
				shard := c.Model.KVShardBytes(pr.Req.PromptLen)
				hEnd := link.Transfer(end, src, decIDs[j], shard)
				pr.HandoffBytes = shard * lanes
				pr.HandoffDur = hEnd - end
				out.Handoffs++
				out.HandoffBytes += pr.HandoffBytes
				out.HandoffMeanNs += pr.HandoffDur // sum here; divided after the run
				if pr.HandoffDur > out.HandoffMaxNs {
					out.HandoffMaxNs = pr.HandoffDur
				}
				pendTok := int64(pr.Req.OutputLen - 1)
				dst := decScheds[j]
				dst.reservePending(pendTok)
				done := pr
				eng.At(hEnd, func() {
					release()
					dst.reservePending(-pendTok)
					dst.SubmitPrefilled(done)
					delivered++
					maybeCloseDecode(eng.Now())
				})
			}
		}
		s.onRetired = func(at sim.Time) {
			if sl.state != ratioDraining {
				// End-of-run drain of a closed pool member.
				sl.state = ratioDone
				rebuild()
				record(at, "retire", sl.id)
				return
			}
			// Conversion drain finished: switch roles after the reboot delay.
			sl.state = ratioRebooting
			record(at, "reboot", sl.id)
			target := sl.target
			eng.At(at+delay, func() {
				now := eng.Now()
				if (target == rolePrefill && prefillDone) || (target == roleDecode && decodeClosed) {
					// The pool this slot was rebooting into has already
					// closed; the slot stays down.
					sl.state = ratioDone
					converting--
					record(now, "abort", sl.id)
					return
				}
				sl.gen++
				spawnSlot(sl, target)
				sl.state = ratioActive
				converting--
				out.Conversions++
				rebuild()
				record(now, "activate", sl.id)
			})
		}
	}

	for i := 0; i < slots; i++ {
		ro := roleDecode
		if i < initP {
			ro = rolePrefill
		}
		sl := &ratioSlot{id: i, target: ro, state: ratioActive}
		slotList = append(slotList, sl)
		spawnSlot(sl, ro)
	}
	rebuild()

	convertOne := func(now sim.Time, from role) {
		var victim *ratioSlot
		for _, sl := range slotList {
			if sl.state != ratioActive || sl.role != from {
				continue
			}
			if victim == nil || sl.s.InFlightTokens() < victim.s.InFlightTokens() ||
				(sl.s.InFlightTokens() == victim.s.InFlightTokens() && sl.id > victim.id) {
				victim = sl
			}
		}
		if victim == nil {
			return
		}
		if from == rolePrefill {
			victim.target = roleDecode
		} else {
			victim.target = rolePrefill
		}
		victim.state = ratioDraining
		converting++
		rebuild()
		handoff := victim.s.Drain()
		for _, req := range handoff {
			i := ppol.Pick(req, preScheds)
			if i < 0 || i >= len(preScheds) {
				panic(fmt.Sprintf("serve: prefill policy %s picked replica %d of %d", ppol.Name(), i, len(preScheds)))
			}
			preScheds[i].Submit(req)
		}
		record(now, "convert", victim.id)
	}

	sample := func(now sim.Time) RatioSignals {
		sig := RatioSignals{TimeNs: now, Slots: slots, Converting: converting,
			PrefillReplicas: len(preScheds), DecodeReplicas: len(decScheds)}
		for _, s := range preScheds {
			sig.PrefillQueued += s.QueuedRequests()
			sig.PrefillTokens += s.InFlightTokens()
		}
		for _, s := range decScheds {
			sig.DecodeQueued += s.QueuedRequests()
			sig.DecodeTokens += s.InFlightTokens()
		}
		out.Samples = append(out.Samples, sig)
		return sig
	}

	var tick func()
	tick = func() {
		if streamEnded {
			return
		}
		now := eng.Now()
		sig := sample(now)
		if converting == 0 {
			desired := clampReplicas(pol.DesiredPrefill(sig), 1, slots-1)
			curP := 0
			for _, sl := range slotList {
				if sl.state != ratioDone && sl.target == rolePrefill {
					curP++
				}
			}
			if desired > curP {
				convertOne(now, roleDecode)
			} else if desired < curP {
				convertOne(now, rolePrefill)
			}
		}
		eng.At(now+interval, tick)
	}
	eng.At(interval, tick)

	var last sim.Time
	for _, r := range admitted.Requests {
		req := r
		eng.At(req.Arrival, func() {
			i := ppol.Pick(req, preScheds)
			if i < 0 || i >= len(preScheds) {
				panic(fmt.Sprintf("serve: prefill policy %s picked replica %d of %d", ppol.Name(), i, len(preScheds)))
			}
			preScheds[i].Submit(req)
		})
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	eng.At(last, func() {
		streamEnded = true
		prefillDone = true
		for _, sl := range slotList {
			if sl.state == ratioActive && sl.role == rolePrefill {
				sl.s.Close()
			}
		}
		record(eng.Now(), "close-prefill", -1)
		maybeCloseDecode(eng.Now())
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := checkDrained(allScheds...); err != nil {
		return nil, err
	}

	out.Results = make([]*Result, len(allScheds))
	for i, s := range allScheds {
		out.Results[i] = s.Result()
	}
	parts := append(append([]*Result{}, out.Results...), rejectedPart(c, rejected))
	out.Merged = MergeResults(parts...)
	out.Merged.Workload = wl.Name
	if out.Handoffs > 0 {
		out.HandoffMeanNs /= sim.Duration(out.Handoffs)
	}
	return out, nil
}
