//go:build slow

package serve

// The planetary memory gate: a 200k-request cell (the serve-planetary
// scenario's cell geometry at reduced request count) must complete with
// bounded retained memory. The budget is bytes retained on the Go heap
// per offered request after the run — the workload itself is released,
// so what remains is the result: streamed per-tier sketches and
// counters, which are constant-size in the request count. Reintroducing
// any per-request retention (a RequestMetrics row is 100+ bytes, and
// slice growth roughly doubles that) blows the budget by an order of
// magnitude, which is exactly the regression this test exists to catch.

import (
	"runtime"
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

const (
	smokeRequests = 200_000
	// smokeBudgetBytesPerReq pins the retained-heap budget. Measured
	// steady state is ~0 B/request (the stream state is constant-size;
	// GC jitter can even make the delta negative); 32 B/request leaves
	// room for allocator noise while sitting far below the ~100 B/request
	// a row-retention regression costs.
	smokeBudgetBytesPerReq = 32.0
)

func TestPlanetarySmokeMemory(t *testing.T) {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	slo := SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}
	tierSLOs := map[int]SLO{1: {MaxTTFT: 20 * sim.Second, MaxTPOT: 400 * sim.Millisecond}}
	cfg := Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              timer.Time,
		MaxBatch:        32,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         MetricsStream,
		SLO:             slo,
		TierSLOs:        tierSLOs,
	}

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	// The workload lives only inside this closure: after it returns, the
	// 200k Request rows are garbage and the post-run GC reclaims them,
	// leaving the merged streaming result as the only per-run retention.
	res := func() *RoutedResult {
		wl := Diurnal(4242, smokeRequests, 24, 0.25, 2*3600*sim.Second,
			LogNormalLen(384, 0.6, 1024), LogNormalLen(48, 0.5, 128))
		wl = WithPriorities(wl, 4243, 0.7)
		r, err := RunRouted(RouterConfig{Replicas: 3, Policy: NewJSQ(), Replica: cfg}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	s := res.Merged.SummarizeTiered(slo, tierSLOs)
	if s.Requests != smokeRequests {
		t.Fatalf("completed %d requests, want %d", s.Requests, smokeRequests)
	}
	if len(res.Merged.PerRequest) != 0 {
		t.Fatalf("streaming run retained %d per-request rows", len(res.Merged.PerRequest))
	}
	if s.SLOAttainment <= 0 || s.TTFTp99ms <= 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}

	retained := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	perReq := float64(retained) / smokeRequests
	t.Logf("retained %d B over %d requests = %.2f B/request (budget %.0f), ttft p99 %.1f ms, slo %.3f",
		retained, smokeRequests, perReq, smokeBudgetBytesPerReq, s.TTFTp99ms, s.SLOAttainment)
	if perReq > smokeBudgetBytesPerReq {
		t.Errorf("retained %.2f B/request exceeds the %.0f B/request budget — did per-request retention sneak back in?",
			perReq, smokeBudgetBytesPerReq)
	}
}
