package serve

// Block-granular paged KV-cache management: the allocator behind the
// scheduler's KVPaged mode. Instead of reserving a request's whole
// prompt+output footprint at admission (KVReserve, the conservative
// discipline that can never need preemption), paged admission allocates
// fixed-size token blocks for the prompt only and grows the allocation by
// one block at a time as decode produces tokens — the vLLM PagedAttention
// shape. When a replica runs out of blocks mid-decode it preempts a victim
// and either recomputes (drop KV, requeue, prefill again) or swaps (page
// the KV out to host over the per-GPU copy engines and back in on resume).
//
// The free list is a bitmap scoreboard (one word per 64 blocks, first-fit
// scan with a cursor hint), so Alloc/Free are zero-allocation on the hot
// path — the idiom of the 64-entry Tomasulo scoreboards in classic
// out-of-order schedulers, scaled to an arbitrary block count. CI gates
// BenchmarkKVPagerAllocFree at 0 allocs/op.

import (
	"fmt"
	"math/bits"

	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

// KVPager is a bitmap block allocator over one replica's KV-cache budget.
// Blocks are fungible (the simulator never addresses KV bytes), so a block
// handle is just its index; callers record the indices they own and must
// free exactly what they allocated — Free panics on double-free, which is
// how the fuzz target proves conservation.
type KVPager struct {
	blockTokens int
	blockBytes  int64
	blocks      int
	words       []uint64 // bit set = block in use
	used        int
	cursor      int // first word that may have a free bit (scan hint)
}

// NewKVPager sizes a pager over capacityBytes of per-GPU KV budget, with
// blockTokens tokens per block at bytesPerToken per token. The block count
// is the floor of capacity over block size — partial trailing blocks are
// unusable, exactly like a real paged allocator's slab remainder.
func NewKVPager(capacityBytes int64, blockTokens int, bytesPerToken int64) (*KVPager, error) {
	if blockTokens < 1 || bytesPerToken < 1 {
		return nil, fmt.Errorf("serve: KVPager block %d tokens x %d bytes", blockTokens, bytesPerToken)
	}
	blockBytes := int64(blockTokens) * bytesPerToken
	nblocks := int(capacityBytes / blockBytes)
	if nblocks < 1 {
		return nil, fmt.Errorf("serve: KV capacity %d below one %d-byte block", capacityBytes, blockBytes)
	}
	return &KVPager{
		blockTokens: blockTokens,
		blockBytes:  blockBytes,
		blocks:      nblocks,
		words:       make([]uint64, (nblocks+63)/64),
	}, nil
}

// Blocks returns the pager's total block count.
func (p *KVPager) Blocks() int { return p.blocks }

// UsedBlocks returns the number of blocks currently allocated.
func (p *KVPager) UsedBlocks() int { return p.used }

// FreeBlocks returns the number of blocks currently free.
func (p *KVPager) FreeBlocks() int { return p.blocks - p.used }

// BlockTokens returns the tokens-per-block granularity.
func (p *KVPager) BlockTokens() int { return p.blockTokens }

// BlockBytes returns one block's per-GPU byte footprint.
func (p *KVPager) BlockBytes() int64 { return p.blockBytes }

// BlocksFor returns the block count covering tokens (ceiling division);
// zero or negative token counts need no blocks.
func (p *KVPager) BlocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + p.blockTokens - 1) / p.blockTokens
}

// Alloc grabs the lowest-index free block, returning (index, true), or
// (-1, false) when every block is in use. First-fit over the bitmap with a
// cursor hint: the scan starts at the lowest word that freed a block since
// the last exhaustion, so steady-state alloc is O(1) amortized and never
// allocates.
func (p *KVPager) Alloc() (int, bool) {
	for w := p.cursor; w < len(p.words); w++ {
		free := ^p.words[w]
		if w == len(p.words)-1 && p.blocks%64 != 0 {
			free &= (1 << (p.blocks % 64)) - 1 // mask tail bits past Blocks()
		}
		if free == 0 {
			continue
		}
		bit := bits.TrailingZeros64(free)
		p.words[w] |= 1 << bit
		p.used++
		p.cursor = w
		return w*64 + bit, true
	}
	p.cursor = len(p.words) // exhausted; reset on next Free
	return -1, false
}

// Free returns block b to the free list. Freeing a block that is not
// allocated (double-free, out of range) panics: it means the scheduler's
// block accounting is corrupt and every later allocation would be too.
func (p *KVPager) Free(b int) {
	if b < 0 || b >= p.blocks {
		panic(fmt.Sprintf("serve: KVPager.Free(%d) with %d blocks", b, p.blocks))
	}
	w, bit := b/64, uint(b%64)
	if p.words[w]&(1<<bit) == 0 {
		panic(fmt.Sprintf("serve: KVPager double-free of block %d", b))
	}
	p.words[w] &^= 1 << bit
	p.used--
	if w < p.cursor {
		p.cursor = w
	}
}

// KVSwapper prices paged KV swap-out/swap-in over a replica's per-GPU copy
// engines. Like the disaggregation layer's KVLink, it reuses the fabric's
// occupancy discipline — each tensor-parallel rank pages its own KV shard
// over its own DMA engine to host memory, so concurrent swaps on one
// replica queue behind each other per engine — but the endpoints are
// GPU<->host rather than GPU<->GPU, at the environment's DMA-engine
// bandwidth and initiation latency.
type KVSwapper struct {
	lanes []*sim.Resource
	bw    float64 // bytes/ns per engine
	lat   sim.Duration
}

// NewKVSwapper builds the swap engines for one replica's environment: one
// copy-engine resource per GPU, at env.DMABW and env.DMALat.
func NewKVSwapper(env *topology.Env) *KVSwapper {
	s := &KVSwapper{bw: env.DMABW, lat: env.DMALat}
	for i := 0; i < env.TotalGPUs(); i++ {
		s.lanes = append(s.lanes, sim.NewResource(fmt.Sprintf("kvswap[%d]", i)))
	}
	return s
}

// Transfer schedules one swap direction (out or in) of shardBytes per GPU
// lane starting at now and returns the time the last lane's shard has
// fully crossed its copy engine. Lanes run in parallel; a lane busy with
// an earlier swap queues, which is what keeps swap storms honest.
func (s *KVSwapper) Transfer(now sim.Time, shardBytes int64) sim.Time {
	wire := timing.XferTime(shardBytes, s.bw)
	end := now
	for _, r := range s.lanes {
		_, e := r.Reserve(now, wire)
		if e += s.lat; e > end {
			end = e
		}
	}
	return end
}

// Counters snapshots the swap lanes' resource counters as one named group:
// per-lane busy time is swap traffic, queue delay is time swaps spent
// behind earlier swaps on the same engine, and max depth is the deepest
// swap pile-up observed.
func (s *KVSwapper) Counters() sim.CounterGroup {
	return sim.Group("kvswap", s.lanes...)
}

// Cost is the closed-form uncontended cost of one swap direction of
// shardBytes per lane — the quantity the recompute-or-swap crossover
// compares against the prefill re-run cost (lanes are parallel, so the
// uncontended time is a single engine's wire time plus latency).
func (s *KVSwapper) Cost(shardBytes int64) sim.Duration {
	return timing.XferTime(shardBytes, s.bw) + s.lat
}
