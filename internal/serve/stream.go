package serve

// Streaming (bounded-memory) metric recording. Under the default
// MetricsStream mode a replica never accumulates per-request rows:
// each completion is judged against the configured SLO at its completion
// instant and folded into fixed-size mergeable quantile sketches
// (benchkit.Sketch), one set per priority tier. Memory per replica is
// O(tiers x sketch size) — constant in the request count — which is what
// lets a multi-million-request trace run at all. MetricsExact retains the
// full PerRequest rows (the pre-streaming behavior) for deterministic
// replay tests, property tests and small exploratory runs.

import (
	"fmt"
	"sort"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// MetricsMode selects how a replica records per-request metrics.
type MetricsMode int

// Metric recording modes. MetricsStream is the zero value: bounded memory
// is the default, row retention is the opt-in.
const (
	// MetricsStream folds each completion into per-tier quantile sketches
	// at completion time and retains no PerRequest rows. The SLO judged
	// against is Config.SLO / Config.TierSLOs, fixed for the whole run;
	// Summarize must be called with the same SLOs.
	MetricsStream MetricsMode = iota
	// MetricsExact retains one RequestMetrics row per request, allowing
	// post-hoc summaries under any SLO. Memory grows with the request
	// count.
	MetricsExact
)

// TierStream is the streaming accumulator for one priority class: exact
// counters plus one sketch per latency series. All latency samples are in
// milliseconds, matching the units Summarize reports.
type TierStream struct {
	// Priority is the tier's priority class (see Request.Priority).
	Priority int
	// Requests counts every offered request of the tier, rejected included.
	Requests int64
	// Rejected counts requests refused up front (never admitted).
	Rejected int64
	// Met counts completed requests that satisfied the tier's SLO at
	// completion time.
	Met int64
	// Tokens sums output tokens of completed requests; GoodTokens only
	// those of SLO-compliant ones.
	Tokens     int64
	GoodTokens int64
	// TTFT, TPOT and E2E are the tier's latency sketches (milliseconds).
	// TPOT only collects multi-token requests, mirroring the exact path.
	TTFT *benchkit.Sketch
	TPOT *benchkit.Sketch
	E2E  *benchkit.Sketch
}

// StreamStats is a replica's (or a merged cluster's) streaming metric
// state: per-tier accumulators plus the SLO configuration they were judged
// under. Results carrying a StreamStats merge without copying any
// per-request data (MergeResults).
type StreamStats struct {
	slo      SLO
	tierSLOs map[int]SLO

	// Tiers holds one accumulator per observed priority class, ascending.
	Tiers []*TierStream

	// span of completed requests: earliest arrival to latest completion,
	// the merged-makespan inputs the exact path recovers from rows.
	firstArr sim.Time
	lastDone sim.Time
	hasSpan  bool
}

// newStreamStats builds an empty accumulator judging against the given
// SLO configuration (fallback + optional per-tier overrides).
func newStreamStats(slo SLO, tierSLOs map[int]SLO) *StreamStats {
	return &StreamStats{slo: slo, tierSLOs: tierSLOs}
}

// sloFor returns the SLO requests of priority p are held to.
func (st *StreamStats) sloFor(p int) SLO {
	if s, ok := st.tierSLOs[p]; ok {
		return s
	}
	return st.slo
}

// tier returns the accumulator for priority p, creating it (in ascending
// position) on first use.
func (st *StreamStats) tier(p int) *TierStream {
	i := sort.Search(len(st.Tiers), func(i int) bool { return st.Tiers[i].Priority >= p })
	if i < len(st.Tiers) && st.Tiers[i].Priority == p {
		return st.Tiers[i]
	}
	t := &TierStream{
		Priority: p,
		TTFT:     benchkit.NewSketch(0),
		TPOT:     benchkit.NewSketch(0),
		E2E:      benchkit.NewSketch(0),
	}
	st.Tiers = append(st.Tiers, nil)
	copy(st.Tiers[i+1:], st.Tiers[i:])
	st.Tiers[i] = t
	return t
}

// observe folds one completed request into its tier: the latency samples
// stream into the sketches and the SLO verdict is taken now, at completion
// time, against the tier's configured SLO.
func (st *StreamStats) observe(m RequestMetrics) {
	t := st.tier(m.Priority)
	t.Requests++
	t.Tokens += int64(m.OutputLen)
	t.TTFT.Add(float64(m.TTFT()) / 1e6)
	t.E2E.Add(float64(m.E2E()) / 1e6)
	if m.OutputLen > 1 {
		t.TPOT.Add(float64(m.TPOT()) / 1e6)
	}
	if st.sloFor(m.Priority).Met(m) {
		t.Met++
		t.GoodTokens += int64(m.OutputLen)
	}
	if !st.hasSpan || m.Arrival < st.firstArr {
		st.firstArr = m.Arrival
	}
	if !st.hasSpan || m.Done > st.lastDone {
		st.lastDone = m.Done
	}
	st.hasSpan = true
}

// addRejected records an up-front rejection in priority class p (a miss
// with no latency samples, exactly like a Rejected row in the exact path).
func (st *StreamStats) addRejected(p int) {
	t := st.tier(p)
	t.Requests++
	t.Rejected++
}

// requests returns the total offered request count, rejected included.
func (st *StreamStats) requests() int64 {
	var n int64
	for _, t := range st.Tiers {
		n += t.Requests
	}
	return n
}

// sameSLOs reports whether two SLO configurations are identical.
func (st *StreamStats) sameSLOs(slo SLO, tiers map[int]SLO) bool {
	if st.slo != slo || len(st.tierSLOs) != len(tiers) {
		return false
	}
	for p, s := range tiers {
		if got, ok := st.tierSLOs[p]; !ok || got != s {
			return false
		}
	}
	return true
}

// check panics unless the queried SLOs match the streamed configuration —
// a streaming result judged SLO attainment at completion time, so it
// cannot be re-summarized under different objectives.
func (st *StreamStats) check(slo SLO, tiers map[int]SLO) {
	if !st.sameSLOs(slo, tiers) {
		panic(fmt.Sprintf("serve: Summarize(%+v, tiers %v) on a streaming Result judged against (%+v, tiers %v); "+
			"set Config.SLO/TierSLOs to the query SLOs or use MetricsExact", slo, tiers, st.slo, st.tierSLOs))
	}
}

// merge folds o's accumulators into st. Sketch merging is bucket-wise, so
// merged quantiles are independent of the merge grouping; SLO
// configurations must match (each side already judged its requests).
func (st *StreamStats) merge(o *StreamStats) {
	if o == nil {
		return
	}
	if !st.sameSLOs(o.slo, o.tierSLOs) {
		panic(fmt.Sprintf("serve: merging streaming Results with different SLOs: (%+v, %v) vs (%+v, %v)",
			st.slo, st.tierSLOs, o.slo, o.tierSLOs))
	}
	for _, ot := range o.Tiers {
		t := st.tier(ot.Priority)
		t.Requests += ot.Requests
		t.Rejected += ot.Rejected
		t.Met += ot.Met
		t.Tokens += ot.Tokens
		t.GoodTokens += ot.GoodTokens
		t.TTFT.Merge(ot.TTFT)
		t.TPOT.Merge(ot.TPOT)
		t.E2E.Merge(ot.E2E)
	}
	if o.hasSpan {
		if !st.hasSpan || o.firstArr < st.firstArr {
			st.firstArr = o.firstArr
		}
		if !st.hasSpan || o.lastDone > st.lastDone {
			st.lastDone = o.lastDone
		}
		st.hasSpan = true
	}
}

// summary builds the aggregate Summary from the streamed state, mirroring
// the exact path's definitions: percentiles over the pooled (tier-merged)
// sketches, attainment counting rejections as misses, throughput and
// goodput over the Result's makespan.
func (st *StreamStats) summary(r *Result, byTier bool) Summary {
	s := Summary{
		Requests:   int(st.requests()),
		Iterations: r.Iterations,
		MakespanS:  float64(r.Makespan) / 1e9,
	}
	if s.Requests == 0 {
		return s
	}
	ttft := benchkit.NewSketch(0)
	tpot := benchkit.NewSketch(0)
	e2e := benchkit.NewSketch(0)
	var tokens, goodTokens, met, rejected int64
	for _, t := range st.Tiers {
		ttft.Merge(t.TTFT)
		tpot.Merge(t.TPOT)
		e2e.Merge(t.E2E)
		tokens += t.Tokens
		goodTokens += t.GoodTokens
		met += t.Met
		rejected += t.Rejected
	}
	s.Rejected = int(rejected)
	if ttft.Count() > 0 {
		s.TTFTp50ms = ttft.Percentile(50)
		s.TTFTp90ms = ttft.Percentile(90)
		s.TTFTp99ms = ttft.Percentile(99)
		s.TPOTp50ms = tpot.Percentile(50)
		s.TPOTp99ms = tpot.Percentile(99)
		s.E2Ep50ms = e2e.Percentile(50)
		s.E2Ep99ms = e2e.Percentile(99)
	}
	if r.Makespan > 0 {
		s.ThroughputTokS = float64(tokens) / (float64(r.Makespan) / 1e9)
		s.GoodputTokS = float64(goodTokens) / (float64(r.Makespan) / 1e9)
	}
	s.SLOAttainment = float64(met) / float64(s.Requests)
	if byTier {
		s.ByTier = make([]TierSummary, 0, len(st.Tiers))
		for _, t := range st.Tiers {
			ts := TierSummary{
				Priority:      t.Priority,
				Requests:      int(t.Requests),
				Rejected:      int(t.Rejected),
				SLOAttainment: float64(t.Met) / float64(t.Requests),
				TTFTp50ms:     t.TTFT.Percentile(50),
				TTFTp99ms:     t.TTFT.Percentile(99),
			}
			if r.Makespan > 0 {
				ts.GoodputTokS = float64(t.GoodTokens) / (float64(r.Makespan) / 1e9)
			}
			s.ByTier = append(s.ByTier, ts)
		}
	}
	return s
}
