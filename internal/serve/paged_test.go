package serve

// Scheduler-level coverage for paged KV, preemption and priority classes:
// the provable reduction to whole-footprint reservation when capacity is
// never exhausted, lifecycle-timestamp invariants across preempt/resume
// cycles for every preemption mode and admission order, the
// recompute-or-swap crossover audit, and deterministic replay under
// overload.

import (
	"encoding/json"
	"testing"

	"mscclpp/internal/sim"
)

// pagedConfig is testConfig squeezed to a 16-block KV pool so sustained
// traffic exhausts it and forces preemption.
func pagedConfig() Config {
	c := testConfig()
	c.KVPolicy = KVPaged
	c.MaxBatch = 8
	c.ChunkTokens = 128
	c.KVCapacityBytes = 256 * c.Model.KVBytesPerTokenPerGPU // 16 blocks of 16 tokens
	return c
}

// overloadWorkload drives arrivals well past the 16-block pool's capacity:
// each request needs 4-8 blocks resident by completion, so a handful of
// concurrent residents exhausts the pager.
func overloadWorkload() Workload {
	return Poisson(17, 48, 40, UniformLen(32, 64), UniformLen(32, 64))
}

// TestPagedReducesToReserve: with capacity that is never exhausted, the
// paged scheduler admits, batches and times exactly like whole-footprint
// reservation — the two Results are bit-identical JSON. This is the
// property that keeps every pre-paging golden byte-stable.
func TestPagedReducesToReserve(t *testing.T) {
	wl := Poisson(31, 60, 10, LogNormalLen(256, 0.6, 1024), UniformLen(8, 64))
	reserve, err := Run(testConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.KVPolicy = KVPaged
	paged, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if paged.Preemptions != 0 {
		t.Fatalf("ample capacity still preempted %d times", paged.Preemptions)
	}
	a, err := json.Marshal(reserve)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(paged)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("paged scheduler at ample capacity diverged from reservation timing")
	}
}

// checkLifecycle asserts the timestamp invariants every request must keep,
// preempted or not: Arrival <= Admitted <= FirstToken <= Done and a
// non-negative TPOT.
func checkLifecycle(t *testing.T, res *Result, wantRequests int) {
	t.Helper()
	if len(res.PerRequest) != wantRequests {
		t.Fatalf("completed %d of %d requests", len(res.PerRequest), wantRequests)
	}
	var preempts int
	for _, m := range res.PerRequest {
		if m.Rejected {
			t.Fatalf("request %d rejected in an admissible workload", m.ID)
		}
		if m.Arrival > m.Admitted || m.Admitted > m.FirstToken || m.FirstToken > m.Done {
			t.Errorf("request %d: lifecycle out of order: arrival %d admitted %d first %d done %d",
				m.ID, m.Arrival, m.Admitted, m.FirstToken, m.Done)
		}
		if m.TPOT() < 0 {
			t.Errorf("request %d: negative TPOT %d", m.ID, m.TPOT())
		}
		if m.Preemptions == 0 && m.SwapBytes != 0 {
			t.Errorf("request %d: swap bytes without preemption: %+v", m.ID, m)
		}
		preempts += m.Preemptions
	}
	if preempts != res.Preemptions {
		t.Errorf("per-request preemptions sum %d != result total %d", preempts, res.Preemptions)
	}
	if res.Preemptions != res.Recomputes+res.Swaps {
		t.Errorf("preemptions %d != recomputes %d + swaps %d", res.Preemptions, res.Recomputes, res.Swaps)
	}
	if len(res.Preempts) != res.Preemptions {
		t.Errorf("audit trail has %d events for %d preemptions", len(res.Preempts), res.Preemptions)
	}
}

// TestPagedPreemptionLifecycle: under sustained overload every preemption
// mode and admission order completes every request with ordered lifecycle
// timestamps — across recompute requeues and swap-out/swap-in cycles.
func TestPagedPreemptionLifecycle(t *testing.T) {
	wl := overloadWorkload()
	for _, pp := range []struct {
		name string
		mode PreemptPolicy
	}{{"auto", PreemptAuto}, {"recompute", PreemptRecompute}, {"swap", PreemptSwap}} {
		for _, ad := range []struct {
			name  string
			order AdmissionOrder
		}{{"fifo", AdmitFIFO}, {"sjf", AdmitSJF}, {"decode-first", AdmitDecodeFirst}} {
			t.Run(pp.name+"/"+ad.name, func(t *testing.T) {
				cfg := pagedConfig()
				cfg.Preempt = pp.mode
				cfg.Admission = ad.order
				res, err := Run(cfg, wl)
				if err != nil {
					t.Fatal(err)
				}
				checkLifecycle(t, res, len(wl.Requests))
				if res.Preemptions == 0 {
					t.Error("overload workload never preempted — the stressor has gone soft")
				}
				if pp.mode == PreemptRecompute && res.Swaps != 0 {
					t.Errorf("recompute-only policy swapped %d times", res.Swaps)
				}
				if pp.mode == PreemptSwap && res.Recomputes != 0 {
					t.Errorf("swap-only policy recomputed %d times", res.Recomputes)
				}
				if pp.mode == PreemptSwap && res.SwapBytes == 0 {
					t.Error("swap-only policy moved no bytes")
				}
			})
		}
	}
}

// TestPagedPriorityClasses: under identical overload the interactive tier
// must never be preempted while batch requests are resident to victimize,
// and with aging disabled strict priority holds in admission order too.
func TestPagedPriorityClasses(t *testing.T) {
	wl := WithPriorities(overloadWorkload(), 5, 0.4)
	cfg := pagedConfig()
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycle(t, res, len(wl.Requests))
	prio := make(map[int]int, len(wl.Requests))
	for _, r := range wl.Requests {
		prio[r.ID] = r.Priority
	}
	var intPre, batchPre int
	for _, m := range res.PerRequest {
		if m.Priority != prio[m.ID] {
			t.Errorf("request %d: priority %d recorded as %d", m.ID, prio[m.ID], m.Priority)
		}
		if m.Priority == 0 {
			intPre += m.Preemptions
		} else {
			batchPre += m.Preemptions
		}
	}
	if batchPre == 0 {
		t.Error("no batch-tier preemptions under overload")
	}
	if intPre > batchPre {
		t.Errorf("interactive tier preempted more than batch (%d > %d) despite strict priority", intPre, batchPre)
	}

	// Aging must keep everything completing and correctly ordered too.
	cfg.AgingNs = 50 * sim.Millisecond
	aged, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycle(t, aged, len(wl.Requests))
}

// TestPreemptCrossoverAudit: every preemption event on a unified replica
// records both closed-form costs, and under PreemptAuto the recorded
// choice is exactly the cheaper one (ties to recompute).
func TestPreemptCrossoverAudit(t *testing.T) {
	cfg := pagedConfig()
	cfg.Preempt = PreemptAuto
	res, err := Run(cfg, overloadWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Preempts) == 0 {
		t.Fatal("no preemption events to audit")
	}
	for i, ev := range res.Preempts {
		want := "recompute"
		if ev.SwapCostNs < ev.RecomputeCostNs {
			want = "swap"
		}
		if ev.Mode != want {
			t.Errorf("event %d (req %d, %d resident): picked %s, cheaper is %s (recompute %d ns, swap %d ns)",
				i, ev.RequestID, ev.ResidentTokens, ev.Mode, want, ev.RecomputeCostNs, ev.SwapCostNs)
		}
	}
}

// TestPagedOverloadDeterministicReplay: the full overload configuration —
// paged KV, auto preemption, two priority tiers — is bit-identical JSON
// across runs (pattern of TestRoutedDeterministicReplay).
func TestPagedOverloadDeterministicReplay(t *testing.T) {
	wl := WithPriorities(overloadWorkload(), 5, 0.4)
	cfg := pagedConfig()
	run := func() string {
		t.Helper()
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	a, b := run(), run()
	if a != b {
		t.Error("overload replay is not deterministic")
	}
}

// TestPagedDisaggSwap: a disaggregated deployment with a starved decode
// pool preempts by swap (decode replicas cannot re-run prefill) and still
// completes every request with ordered timestamps.
func TestPagedDisaggSwap(t *testing.T) {
	cfg := pagedConfig()
	cfg.Preempt = PreemptRecompute // decode pool must override this to swap
	wl := Poisson(23, 32, 40, UniformLen(32, 64), UniformLen(32, 64))
	res, err := RunDisaggregated(DisaggConfig{
		PrefillReplicas: 1,
		DecodeReplicas:  1,
		Replica:         cfg,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycle(t, res.Merged, len(wl.Requests))
	if res.Merged.Preemptions > 0 && res.Merged.Recomputes != 0 {
		t.Errorf("decode pool recomputed %d times; it can only swap", res.Merged.Recomputes)
	}
}

// TestWithPriorities: the tier split is deterministic in the seed, leaves
// arrivals and lengths untouched, and respects the declared fraction
// within sampling noise.
func TestWithPriorities(t *testing.T) {
	base := Poisson(9, 400, 20, UniformLen(16, 64), UniformLen(16, 64))
	a := WithPriorities(base, 77, 0.3)
	b := WithPriorities(base, 77, 0.3)
	interactive := 0
	for i := range a.Requests {
		if a.Requests[i].Priority != b.Requests[i].Priority {
			t.Fatal("WithPriorities is not deterministic in the seed")
		}
		if a.Requests[i].Arrival != base.Requests[i].Arrival || a.Requests[i].PromptLen != base.Requests[i].PromptLen {
			t.Fatal("WithPriorities perturbed arrivals or lengths")
		}
		if a.Requests[i].Priority == 0 {
			interactive++
		}
	}
	if frac := float64(interactive) / float64(len(a.Requests)); frac < 0.2 || frac > 0.4 {
		t.Errorf("interactive fraction %.2f far from requested 0.30", frac)
	}
}
