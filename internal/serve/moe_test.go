package serve

// Serving-layer coverage of expert-parallel MoE pricing: a model with
// experts must route every priced iteration through the MoE step
// functions, book the all-to-all share on the moe-dispatch/moe-combine
// counter groups, and refuse to run without an all-to-all timer.

import (
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func moeTestConfig() Config {
	envFn := func() *topology.Env { return topology.H100(2) }
	m := inference.DeepSeekV3MoE(16)
	ar := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	ep := inference.NewEPTimer(envFn, m.MoE.Config, m.MoE.Transport)
	return Config{
		Env:             envFn(),
		Model:           m,
		AR:              ar.Time,
		A2A:             ep.Layer,
		MaxBatch:        8,
		KVCapacityBytes: 1 << 30,
		ChunkTokens:     256,
		Metrics:         MetricsExact,
	}
}

func TestMoEServeEndToEnd(t *testing.T) {
	wl := Poisson(4242, 24, 4, LogNormalLen(256, 0.5, 768), LogNormalLen(32, 0.4, 96))
	res, err := Run(moeTestConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.PerRequest); got != 24 {
		t.Fatalf("completed %d of 24 requests", got)
	}
	for _, m := range res.PerRequest {
		if m.Rejected || m.Done <= m.FirstToken || m.FirstToken <= m.Arrival {
			t.Fatalf("request %d has a broken lifecycle: %+v", m.ID, m)
		}
	}
	// The all-to-all share must be booked: both groups present, busy, and
	// strictly inside the gpu resource's iteration time.
	var gpu, disp, comb *sim.ResourceStats
	for _, g := range res.Counters {
		g := g
		switch g.Name {
		case "gpu":
			gpu = &g.Stats[0]
		case "moe-dispatch":
			disp = &g.Stats[0]
		case "moe-combine":
			comb = &g.Stats[0]
		}
	}
	if gpu == nil || disp == nil || comb == nil {
		t.Fatalf("missing counter groups: gpu=%v dispatch=%v combine=%v", gpu != nil, disp != nil, comb != nil)
	}
	if disp.BusyNs <= 0 || comb.BusyNs <= 0 {
		t.Fatalf("all-to-all counters idle: dispatch %d ns, combine %d ns", disp.BusyNs, comb.BusyNs)
	}
	if comb.BusyNs <= disp.BusyNs {
		t.Fatalf("combine busy %d ns not above dispatch busy %d ns (2x bytes)", comb.BusyNs, disp.BusyNs)
	}
	if total := disp.BusyNs + comb.BusyNs; total >= gpu.BusyNs {
		t.Fatalf("all-to-all share %d ns not strictly inside iteration time %d ns", total, gpu.BusyNs)
	}
}

func TestMoEConfigRequiresA2A(t *testing.T) {
	cfg := moeTestConfig()
	cfg.A2A = nil
	wl := Poisson(1, 2, 4, FixedLen(64), FixedLen(8))
	if _, err := Run(cfg, wl); err == nil {
		t.Fatal("expected validation error for MoE model without Config.A2A")
	}
	// Dense models must not require A2A (and must not grow counter groups).
	dense := cfg
	dense.Model = inference.DeepSeekV3(16)
	res, err := Run(dense, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Counters {
		if g.Name == "moe-dispatch" || g.Name == "moe-combine" {
			t.Fatalf("dense model grew MoE counter group %q", g.Name)
		}
	}
}
