package serve

// Property tests for the Diurnal workload generator (previously only
// exercised end-to-end through serve-planetary): the thinned arrival
// count must match the rate integral, arrivals must be strictly
// monotone, the same seed must replay bit-identically, and the
// troughFrac edge cases must behave as documented (0 panics by design,
// 1 degenerates to a constant-rate process).

import (
	"math"
	"reflect"
	"testing"

	"mscclpp/internal/sim"
)

// TestDiurnalRateIntegral pins Lewis-Shedler thinning to its target
// intensity: over the realized span, the integral of the modulated rate
// must predict the kept-arrival count to within Poisson noise.
func TestDiurnalRateIntegral(t *testing.T) {
	const (
		n      = 20000
		peak   = 50.0
		trough = 0.3
		period = 60 * sim.Second
	)
	wl := Diurnal(11, n, peak, trough, period, FixedLen(64), FixedLen(16))
	if len(wl.Requests) != n {
		t.Fatalf("generated %d requests, want %d", len(wl.Requests), n)
	}
	span := float64(wl.Requests[n-1].Arrival)
	// Numerically integrate rate(t) = peak * (trough + (1-trough)*(1-cos)/2)
	// over [0, span] — the same intensity the generator thins against.
	const steps = 200000
	dt := span / steps
	var integral float64
	for i := 0; i < steps; i++ {
		tm := (float64(i) + 0.5) * dt
		phase := 2 * math.Pi * math.Mod(tm, float64(period)) / float64(period)
		frac := trough + (1-trough)*(1-math.Cos(phase))/2
		integral += peak * frac * dt / 1e9
	}
	// The span ends at the n-th arrival, so E[count over span] = n up to
	// Poisson fluctuation; allow 5 sigma.
	if tol := 5 * math.Sqrt(float64(n)); math.Abs(integral-n) > tol {
		t.Errorf("rate integral over the realized span predicts %.0f arrivals, got %d (tolerance %.0f)",
			integral, n, tol)
	}
}

// TestDiurnalMonotoneArrivals: inter-arrival gaps are strictly positive
// (the thinning candidates advance by Exp draws and kept arrivals are a
// subsequence), IDs are sequential, and lengths respect their dists.
func TestDiurnalMonotoneArrivals(t *testing.T) {
	wl := Diurnal(7, 5000, 30, 0.25, 30*sim.Second, UniformLen(10, 100), UniformLen(1, 50))
	for i, r := range wl.Requests {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival <= wl.Requests[i-1].Arrival {
			t.Fatalf("arrival %d (%d ns) not after arrival %d (%d ns)",
				i, r.Arrival, i-1, wl.Requests[i-1].Arrival)
		}
		if r.PromptLen < 10 || r.PromptLen > 100 || r.OutputLen < 1 || r.OutputLen > 50 {
			t.Fatalf("request %d lengths outside the dists: prompt %d output %d", i, r.PromptLen, r.OutputLen)
		}
	}
}

// TestDiurnalSeedDeterminism: same parameters and seed replay the exact
// workload; a different seed must not.
func TestDiurnalSeedDeterminism(t *testing.T) {
	gen := func(seed uint64) Workload {
		return Diurnal(seed, 2000, 40, 0.2, 45*sim.Second, LogNormalLen(128, 0.5, 512), UniformLen(1, 64))
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Diurnal generations with the same seed differ")
	}
	if c := gen(43); reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical workloads")
	}
}

// TestDiurnalTroughFracEdges: troughFrac must lie in (0, 1] — 0 (and
// anything non-positive, or > 1) panics by design, while exactly 1
// degenerates to a constant-rate Poisson process at the peak rate.
func TestDiurnalTroughFracEdges(t *testing.T) {
	mustPanic := func(name string, frac float64) {
		defer func() {
			if recover() == nil {
				t.Errorf("Diurnal(troughFrac=%g) did not panic (%s)", frac, name)
			}
		}()
		Diurnal(1, 10, 10, frac, sim.Second, FixedLen(8), FixedLen(8))
	}
	mustPanic("zero", 0)
	mustPanic("negative", -0.5)
	mustPanic("above one", 1.5)

	// troughFrac = 1: every thinning candidate is kept, so the realized
	// mean rate is the peak rate up to Poisson noise.
	const n, peakRate = 20000, 25.0
	wl := Diurnal(5, n, peakRate, 1, 20*sim.Second, FixedLen(8), FixedLen(8))
	if len(wl.Requests) != n {
		t.Fatalf("generated %d requests, want %d", len(wl.Requests), n)
	}
	span := float64(wl.Requests[n-1].Arrival) / 1e9
	mean := float64(n) / span
	if tol := 5 * peakRate / math.Sqrt(float64(n)); math.Abs(mean-peakRate) > tol {
		t.Errorf("troughFrac=1 realized %.3f req/s, want the flat peak %.3f (tolerance %.3f)", mean, peakRate, tol)
	}
}
