package serve

// Acceptance tests for the autoscaling control plane: bit-identical
// deterministic replay of a two-tenant SLO-PID run, graceful-drain
// invariants under a deliberately chattering policy, the ratio-scaled
// disaggregated variant, the workload composition helpers the
// multi-tenant economics ride on, and a hand-computed pin of the gpu
// resource counters the control loop samples.

import (
	"encoding/json"
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// autoscaleTestConfig is the shared replica engine of the autoscaler
// tests: the routed-replay configuration plus the SLO objectives the
// control loop's attainment signal needs.
func autoscaleTestConfig() Config {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	return Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
		MaxBatch:        16,
		KVCapacityBytes: 2 << 30,
		ChunkTokens:     512,
		Metrics:         MetricsExact,
		SLO:             SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 200 * sim.Millisecond},
		TierSLOs:        map[int]SLO{1: {MaxTTFT: 20 * sim.Second, MaxTPOT: 400 * sim.Millisecond}},
	}
}

// autoscaleTestWorkload is the two-tenant stream of the replay tests: a
// diurnal interactive tenant expanded into multi-turn sessions plus a
// bursty batch tenant, 300+ requests total.
func autoscaleTestWorkload() Workload {
	chat := Diurnal(3001, 150, 8, 0.25, 60*sim.Second, LogNormalLen(256, 0.6, 1024), LogNormalLen(32, 0.5, 96))
	chat = WithSessions(chat, 3002, 2, 3, 5*sim.Second, 2048)
	batch := Bursty(3003, 120, 2, 8, 20*sim.Second, 10*sim.Second, LogNormalLen(384, 0.6, 1024), LogNormalLen(48, 0.5, 128))
	for i := range batch.Requests {
		batch.Requests[i].Priority = 1
	}
	return MergeWorkloads("autoscale-replay", chat, batch)
}

// TestAutoscaledDeterministicReplay is the autoscaler's acceptance gate,
// extending the routed pattern: a two-tenant 300+ request stream under
// the SLO-PID policy replays with bit-identical JSON — fleet timeline,
// drain audit, control samples, economics and per-request metrics —
// across runs.
func TestAutoscaledDeterministicReplay(t *testing.T) {
	wl := autoscaleTestWorkload()
	if len(wl.Requests) < 300 {
		t.Fatalf("replay workload has %d requests, want >= 300", len(wl.Requests))
	}
	run := func() *AutoscaleResult {
		res, err := RunAutoscaled(AutoscaleConfig{
			Replica:         autoscaleTestConfig(),
			Policy:          NewSLOPID(0, 0, 0),
			MinReplicas:     1,
			MaxReplicas:     3,
			InitialReplicas: 2,
			Interval:        10 * sim.Second,
			ProvisionDelay:  20 * sim.Second,
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two autoscaled replays of the same seeded workload produced different results")
	}
	if got := len(a.Merged.PerRequest); got != len(wl.Requests) {
		t.Fatalf("merged result has %d rows, want %d", got, len(wl.Requests))
	}
	if len(a.Samples) < 5 {
		t.Fatalf("control loop sampled %d times over the run", len(a.Samples))
	}
	if a.Econ.GPUHours <= 0 || a.Econ.PeakReplicas < 1 || a.Econ.GoodTokens <= 0 {
		t.Fatalf("degenerate economics: %+v", a.Econ)
	}
	sum := a.Summarize(SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 200 * sim.Millisecond})
	if sum.Requests != len(wl.Requests) || sum.ThroughputTokS <= 0 {
		t.Fatalf("degenerate merged summary: %+v", sum)
	}
}

// flipPolicy is a deliberately chattering test policy: it demands the
// fleet maximum for two intervals, then the minimum for two, forcing the
// full provision/cancel/drain/retire machinery to cycle continuously.
type flipPolicy struct{ n int }

func (*flipPolicy) Name() string { return "flip" }

func (p *flipPolicy) Desired(sig ScaleSignals) int {
	p.n++
	if p.n%4 < 2 {
		return sig.Max
	}
	return sig.Min
}

// TestAutoscaleDrainInvariants drives constant scale churn and checks the
// graceful-drain contract on every scale-down: nothing routed to a
// replica after it entered draining, every resident completed locally
// before retirement, zero stranded requests, and conservation of the
// request stream across the whole fleet.
func TestAutoscaleDrainInvariants(t *testing.T) {
	wl := autoscaleTestWorkload()
	res, err := RunAutoscaled(AutoscaleConfig{
		Replica:         autoscaleTestConfig(),
		Policy:          &flipPolicy{},
		MinReplicas:     1,
		MaxReplicas:     3,
		InitialReplicas: 3,
		Interval:        5 * sim.Second,
		ProvisionDelay:  8 * sim.Second,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Drains) == 0 {
		t.Fatal("the flip policy produced no drains — the churn harness is inert")
	}
	drainOf := make(map[int]DrainEvent)
	for _, d := range res.Drains {
		if d.Stranded != 0 {
			t.Errorf("drained replica %d stranded %d requests", d.Replica, d.Stranded)
		}
		if d.RetiredNs < d.TimeNs {
			t.Errorf("drained replica %d retired at %d before its drain at %d", d.Replica, d.RetiredNs, d.TimeNs)
		}
		drainOf[d.Replica] = d
	}
	var total int
	for id, pr := range res.PerReplica {
		total += len(pr.PerRequest)
		d, drained := drainOf[id]
		if !drained {
			continue
		}
		// No admission after draining: every request the drained replica
		// completed was routed to it before the drain instant (the control
		// tick removes it from the routable set before arrivals at the same
		// timestamp), and residents all completed by retirement.
		residents := 0
		for _, m := range pr.PerRequest {
			if m.Arrival > d.TimeNs {
				t.Errorf("replica %d completed request %d that arrived at %d, after its drain at %d",
					id, m.ID, m.Arrival, d.TimeNs)
			}
			if m.Done > d.RetiredNs {
				t.Errorf("replica %d finished request %d at %d, after retiring at %d", id, m.ID, m.Done, d.RetiredNs)
			}
			if m.Done > d.TimeNs {
				residents++
			}
		}
		if residents != d.Residents {
			t.Errorf("replica %d finished %d requests after its drain, audit recorded %d residents",
				id, residents, d.Residents)
		}
	}
	// Conservation: handoffs land on survivors; nothing is lost or run
	// twice (each merged row appears on exactly one replica).
	if total != len(wl.Requests) {
		t.Errorf("fleet completed %d requests, workload offered %d", total, len(wl.Requests))
	}
}

// TestDrainSchedulerContract pins the scheduler-level drain semantics:
// draining refuses new submissions, a second drain panics, and a fresh
// replica with no work retires immediately.
func TestDrainSchedulerContract(t *testing.T) {
	cfg := autoscaleTestConfig()
	eng := sim.NewEngine()
	s, err := NewScheduler(eng, "drainer", cfg)
	if err != nil {
		t.Fatal(err)
	}
	retired := false
	s.onRetired = func(sim.Time) { retired = true }
	eng.At(0, func() {
		if got := s.Drain(); len(got) != 0 {
			t.Errorf("empty replica handed off %d requests", len(got))
		}
		if !s.Draining() {
			t.Error("Draining() false after Drain")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Submit on a draining replica did not panic")
				}
			}()
			s.Submit(Request{ID: 1, PromptLen: 8, OutputLen: 2})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("second Drain did not panic")
				}
			}()
			s.Drain()
		}()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !retired {
		t.Error("an empty drained replica never retired")
	}
}

// TestAutoscaledDisaggReplay exercises the prefill:decode ratio scaler: a
// prompt-heavy stream under the backlog-proportional policy replays
// bit-identically, completes every request, keeps both pools nonempty
// throughout, and actually converts slots.
func TestAutoscaledDisaggReplay(t *testing.T) {
	wl := Poisson(4001, 400, 12, LogNormalLen(768, 0.6, 2048), LogNormalLen(24, 0.5, 64))
	run := func() *RatioScaleResult {
		res, err := RunAutoscaledDisagg(DisaggScaleConfig{
			Slots:          4,
			InitialPrefill: 1,
			Replica:        autoscaleTestConfig(),
			Policy:         NewBacklogRatio(),
			Interval:       5 * sim.Second,
			ProvisionDelay: 10 * sim.Second,
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two ratio-scaled disaggregated replays produced different results")
	}
	if got := len(a.Merged.PerRequest); got != len(wl.Requests) {
		t.Fatalf("merged result has %d rows, want %d", got, len(wl.Requests))
	}
	if a.Handoffs == 0 {
		t.Fatal("no KV handoffs — the deployment did not disaggregate")
	}
	for _, sig := range a.Samples {
		if sig.PrefillReplicas < 1 || sig.DecodeReplicas < 1 {
			t.Fatalf("pool emptied at t=%d: %d prefill / %d decode", sig.TimeNs, sig.PrefillReplicas, sig.DecodeReplicas)
		}
	}
	if a.Conversions == 0 {
		t.Fatal("the prompt-heavy stream triggered no slot conversions — the ratio controller is inert")
	}
}

// TestMergeWorkloadsComposition: merged streams are arrival-sorted and
// re-IDed, and per-part prefix groups are re-keyed into disjoint
// namespaces so tenants cannot alias each other's prompt caches.
func TestMergeWorkloadsComposition(t *testing.T) {
	a := WithPrefixGroups(Poisson(1, 100, 20, FixedLen(64), FixedLen(8)), 11, 4, 1.0, 32)
	b := WithPrefixGroups(Poisson(2, 100, 20, FixedLen(64), FixedLen(8)), 12, 4, 1.0, 32)
	m := MergeWorkloads("pair", a, b)
	if len(m.Requests) != 200 {
		t.Fatalf("merged %d requests, want 200", len(m.Requests))
	}
	groupsA, groupsB := map[uint64]bool{}, map[uint64]bool{}
	for i, r := range m.Requests {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if i > 0 && r.Arrival < m.Requests[i-1].Arrival {
			t.Fatalf("merged arrivals out of order at %d", i)
		}
		if r.PrefixGroup == 0 {
			t.Fatalf("request %d lost its prefix group", i)
		}
	}
	// Recover each part's remapped groups via the per-part namespace: the
	// same source group must map identically within a part and never
	// collide across parts.
	for _, r := range a.Requests {
		groupsA[Mix64(Mix64(0+0x7e57a11c)^r.PrefixGroup)] = true
	}
	for _, r := range b.Requests {
		groupsB[Mix64(Mix64(1+0x7e57a11c)^r.PrefixGroup)] = true
	}
	for g := range groupsA {
		if groupsB[g] {
			t.Fatalf("prefix group %d appears in both tenants after the merge", g)
		}
	}
}

// TestWithSessionsShape: session expansion keeps every invariant the
// prefix cache depends on — turn counts in range, one unique nonzero
// group per session, follow-up prompts carrying the previous turn's full
// context as PrefixLen, arrivals sorted, priority inherited.
func TestWithSessionsShape(t *testing.T) {
	roots := WithPriorities(Poisson(9, 200, 10, UniformLen(64, 256), UniformLen(8, 32)), 10, 0.5)
	wl := WithSessions(roots, 77, 2, 4, 3*sim.Second, 1024)
	if len(wl.Requests) < 2*len(roots.Requests) {
		t.Fatalf("sessions expanded %d roots into only %d requests", len(roots.Requests), len(wl.Requests))
	}
	for i, r := range wl.Requests {
		if i > 0 && r.Arrival < wl.Requests[i-1].Arrival {
			t.Fatalf("session arrivals out of order at %d", i)
		}
		if r.PrefixGroup == 0 {
			t.Fatalf("request %d has no session group", i)
		}
		if r.PromptLen > 1024 {
			t.Fatalf("request %d prompt %d exceeds the cap", i, r.PromptLen)
		}
	}
	// Group requests into sessions and check per-session structure.
	type turn struct {
		prompt, output, prefix, prio int
		arrival                      sim.Time
	}
	sessions := map[uint64][]turn{}
	for _, r := range wl.Requests {
		sessions[r.PrefixGroup] = append(sessions[r.PrefixGroup],
			turn{r.PromptLen, r.OutputLen, r.PrefixLen, r.Priority, r.Arrival})
	}
	if len(sessions) != len(roots.Requests) {
		t.Fatalf("%d sessions for %d roots", len(sessions), len(roots.Requests))
	}
	for g, turns := range sessions {
		if len(turns) < 2 || len(turns) > 4 {
			t.Fatalf("session %d has %d turns, want 2..4", g, len(turns))
		}
		for k := 1; k < len(turns); k++ {
			prev, cur := turns[k-1], turns[k]
			if cur.arrival <= prev.arrival {
				t.Fatalf("session %d turn %d does not follow turn %d in time", g, k, k-1)
			}
			wantPrefix := prev.prompt + prev.output
			if wantPrefix > 1023 {
				wantPrefix = 1023
			}
			if cur.prefix != wantPrefix {
				t.Fatalf("session %d turn %d prefix %d, want previous context %d", g, k, cur.prefix, wantPrefix)
			}
			if cur.prompt <= cur.prefix {
				t.Fatalf("session %d turn %d prompt %d not beyond its prefix %d", g, k, cur.prompt, cur.prefix)
			}
			if cur.prio != prev.prio {
				t.Fatalf("session %d priority changed across turns", g)
			}
		}
	}
}

// TestGPUCounterHandComputed pins the per-replica gpu resource the
// control loop samples to hand-computed values: with non-overlapping
// requests, reservations equal priced iterations exactly and busy time
// equals the closed-form compute+comm sum — one prefill step plus one
// decode step per subsequent token, each with the scheduler overhead.
func TestGPUCounterHandComputed(t *testing.T) {
	ar := func(int64) sim.Duration { return 40 * sim.Microsecond }
	cfg := Config{
		Env:             topology.A100_80G(1),
		Model:           inference.Llama3x70B(8),
		AR:              ar,
		MaxBatch:        4,
		KVCapacityBytes: 2 << 30,
		ChunkTokens:     512,
		Metrics:         MetricsExact,
	}
	// Arrivals 20 s apart: each request finishes long before the next, so
	// every iteration serves exactly one request and the closed form below
	// is the whole story.
	reqs := []Request{
		{ID: 0, Arrival: 0, PromptLen: 200, OutputLen: 5},
		{ID: 1, Arrival: 20 * sim.Second, PromptLen: 333, OutputLen: 2},
		{ID: 2, Arrival: 40 * sim.Second, PromptLen: 512, OutputLen: 8},
	}
	wl, err := Trace("hand", reqs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}

	var wantIters uint64
	var wantBusy sim.Duration
	overhead := 100 * sim.Microsecond // the documented SchedOverhead default
	for _, r := range reqs {
		// Iteration 1 prefills the whole prompt (<= ChunkTokens) and emits
		// the first token; each later token is one single-sequence decode
		// iteration at context prompt+generated.
		wantIters += uint64(r.OutputLen)
		wantBusy += overhead + inference.PrefillStep(cfg.Env, cfg.Model, 1, r.PromptLen, ar)
		for j := 1; j < r.OutputLen; j++ {
			wantBusy += overhead + inference.DecodeStepCtx(cfg.Env, cfg.Model, 1, int64(r.PromptLen+j), ar)
		}
	}

	var gpu sim.ResourceStats
	found := false
	for _, g := range res.Counters {
		if g.Name == "gpu" && len(g.Stats) == 1 {
			gpu, found = g.Stats[0], true
		}
	}
	if !found {
		t.Fatal("no gpu counter group in the result")
	}
	if gpu.Reservations != uint64(res.Iterations) {
		t.Errorf("gpu reservations %d != priced iterations %d", gpu.Reservations, res.Iterations)
	}
	if gpu.Reservations != wantIters {
		t.Errorf("gpu reservations %d, hand computed %d", gpu.Reservations, wantIters)
	}
	if gpu.BusyNs != wantBusy {
		t.Errorf("gpu busy %d ns, hand computed %d ns", gpu.BusyNs, wantBusy)
	}
	if gpu.QueueDelayNs != 0 || gpu.MaxQueueDepth != 1 {
		t.Errorf("observe-only gpu resource saw contention: queue delay %d ns, max depth %d",
			gpu.QueueDelayNs, gpu.MaxQueueDepth)
	}
}

// TestScalePolicyRegistry: the name registry constructs fresh policies
// and rejects unknowns; clampReplicas repairs degenerate bounds.
func TestScalePolicyRegistry(t *testing.T) {
	for _, name := range ScalePolicyNames() {
		p, err := ScalePolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := ScalePolicyByName("nope"); err == nil {
		t.Error("unknown scale policy did not error")
	}
	cases := []struct{ n, min, max, want int }{
		{5, 1, 4, 4},
		{0, 1, 4, 1},
		{2, 1, 4, 2},
		{3, 0, 0, 1}, // degenerate bounds repair to [1, 1]
		{-10, 2, 8, 2},
		{7, 5, 3, 5}, // max below min snaps to min
	}
	for _, c := range cases {
		if got := clampReplicas(c.n, c.min, c.max); got != c.want {
			t.Errorf("clampReplicas(%d, %d, %d) = %d, want %d", c.n, c.min, c.max, got, c.want)
		}
	}
}
