package serve

import (
	"encoding/json"
	"reflect"
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// fakeAR is a deterministic stand-in for a simulated-collective timer: a
// fixed latency plus a bandwidth term. Using it keeps scheduler unit tests
// fast; the end-to-end determinism test below uses the real ARTimer.
func fakeAR(msg int64) sim.Duration {
	return 5*sim.Microsecond + sim.Duration(msg/100)
}

func testConfig() Config {
	return Config{
		Env:     topology.A100_80G(1),
		Model:   inference.Llama3x70B(8),
		AR:      fakeAR,
		Metrics: MetricsExact,
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if e := r.Exp(100); e < 0 {
			t.Fatalf("Exp negative: %g", e)
		}
	}
}

func TestPoissonWorkload(t *testing.T) {
	wl := Poisson(1, 500, 10, LogNormalLen(512, 0.6, 2048), UniformLen(16, 256))
	if len(wl.Requests) != 500 {
		t.Fatalf("got %d requests", len(wl.Requests))
	}
	var prev sim.Time
	for i, r := range wl.Requests {
		if r.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = r.Arrival
		if r.PromptLen < 1 || r.PromptLen > 2048 {
			t.Fatalf("prompt len %d out of range", r.PromptLen)
		}
		if r.OutputLen < 16 || r.OutputLen > 256 {
			t.Fatalf("output len %d out of range", r.OutputLen)
		}
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
	}
	// Mean inter-arrival should be near 1/rate (within 20% over 500 draws).
	mean := float64(wl.Requests[len(wl.Requests)-1].Arrival) / float64(len(wl.Requests)) / 1e9
	if mean < 0.08 || mean > 0.12 {
		t.Errorf("mean inter-arrival %.4fs, want ~0.1s", mean)
	}
	// Same seed, same workload; different seed, different workload.
	if !reflect.DeepEqual(wl, Poisson(1, 500, 10, LogNormalLen(512, 0.6, 2048), UniformLen(16, 256))) {
		t.Error("identical seeds produced different workloads")
	}
	if reflect.DeepEqual(wl.Requests, Poisson(2, 500, 10, LogNormalLen(512, 0.6, 2048), UniformLen(16, 256)).Requests) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestBurstyWorkload(t *testing.T) {
	base, burst := 2.0, 40.0
	wl := Bursty(9, 400, base, burst, 5*sim.Second, 1*sim.Second, FixedLen(256), FixedLen(64))
	var prev sim.Time
	for i, r := range wl.Requests {
		if r.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = r.Arrival
	}
	// The overall rate must sit strictly between base and burst.
	overall := float64(len(wl.Requests)) / (float64(prev) / 1e9)
	if overall <= base || overall >= burst {
		t.Errorf("overall rate %.2f qps not between %.0f and %.0f", overall, base, burst)
	}
}

func TestTraceReplay(t *testing.T) {
	wl, err := Trace("t", []Request{
		{Arrival: 3 * sim.Second, PromptLen: 100, OutputLen: 10},
		{Arrival: 1 * sim.Second, PromptLen: 200, OutputLen: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wl.Requests[0].Arrival != 1*sim.Second || wl.Requests[0].ID != 0 {
		t.Errorf("trace not sorted/re-IDed: %+v", wl.Requests[0])
	}
	if _, err := Trace("bad", []Request{{PromptLen: 0, OutputLen: 5}}); err == nil {
		t.Error("trace accepted zero-length prompt")
	}
	if _, err := Trace("bad", []Request{{Arrival: -1, PromptLen: 1, OutputLen: 1}}); err == nil {
		t.Error("trace accepted negative arrival")
	}
}

// TestSchedulerBasics replays a tiny trace and checks the lifecycle
// invariants every request must satisfy.
func TestSchedulerBasics(t *testing.T) {
	wl, err := Trace("basic", []Request{
		{Arrival: 0, PromptLen: 700, OutputLen: 8},
		{Arrival: 0, PromptLen: 300, OutputLen: 1}, // single-token: done at prefill
		{Arrival: 2 * sim.Second, PromptLen: 100, OutputLen: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRequest) != 3 {
		t.Fatalf("completed %d requests, want 3", len(res.PerRequest))
	}
	for _, m := range res.PerRequest {
		if m.Admitted < m.Arrival || m.FirstToken <= m.Admitted || m.Done < m.FirstToken {
			t.Errorf("request %d: inconsistent lifecycle %+v", m.ID, m)
		}
		if m.OutputLen == 1 && m.Done != m.FirstToken {
			t.Errorf("single-token request %d: done %d != first token %d", m.ID, m.Done, m.FirstToken)
		}
		if m.OutputLen > 1 && m.TPOT() <= 0 {
			t.Errorf("request %d: non-positive TPOT", m.ID)
		}
	}
	if res.Makespan <= 0 || res.Iterations <= 0 {
		t.Errorf("degenerate result: makespan %d, iterations %d", res.Makespan, res.Iterations)
	}
	// Request 0 needs two 512-token prefill chunks; request 2 arrives 2s
	// later and must not have been waited for.
	byID := map[int]RequestMetrics{}
	for _, m := range res.PerRequest {
		byID[m.ID] = m
	}
	// FIFO chunking: the head of the queue never sees first-token later
	// than a request behind it (here both finish in iteration 2: 512+188
	// for request 0, then 300 of the remaining 324-token budget for 1).
	if byID[0].FirstToken > byID[1].FirstToken {
		t.Errorf("FIFO violated: head first-token %d after follower %d", byID[0].FirstToken, byID[1].FirstToken)
	}
	if byID[2].Admitted < 2*sim.Second {
		t.Errorf("request 2 admitted at %d before its arrival", byID[2].Admitted)
	}
}

// TestKVAdmissionGate: with capacity for only one resident request, the
// second must queue until the first completes, even though MaxBatch allows
// both.
func TestKVAdmissionGate(t *testing.T) {
	cfg := testConfig()
	perTok := cfg.Model.KVBytesPerTokenPerGPU
	cfg.KVCapacityBytes = 150 * perTok // one 100+20 request fits, two do not
	wl, err := Trace("kv", []Request{
		{Arrival: 0, PromptLen: 100, OutputLen: 20},
		{Arrival: 0, PromptLen: 100, OutputLen: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]RequestMetrics{}
	for _, m := range res.PerRequest {
		byID[m.ID] = m
	}
	if byID[1].Admitted < byID[0].Done {
		t.Errorf("request 1 admitted at %d before request 0 released KV at %d",
			byID[1].Admitted, byID[0].Done)
	}
	if byID[1].QueueDelay() <= 0 {
		t.Error("request 1 should have queued behind the KV gate")
	}

	// A request that can never fit is rejected up front as a structured
	// per-request outcome — not a hard error, not a deadlock.
	cfg.KVCapacityBytes = 10 * perTok
	res, err = Run(cfg, wl)
	if err != nil {
		t.Fatalf("never-fit requests must reject, not error: %v", err)
	}
	if res.Rejected != 2 {
		t.Errorf("rejected = %d, want 2 (every request exceeds 10 tokens of KV)", res.Rejected)
	}
	for _, m := range res.PerRequest {
		if !m.Rejected || m.RejectedReason != "kv-capacity" {
			t.Errorf("request %d: not marked rejected: %+v", m.ID, m)
		}
		if m.Admitted != 0 || m.FirstToken != 0 || m.Done != 0 {
			t.Errorf("request %d: rejected row carries lifecycle timestamps: %+v", m.ID, m)
		}
	}
}

// TestMaxBatchBound: admissions never exceed MaxBatch concurrently. With
// batch size 1 the requests serialize completely.
func TestMaxBatchBound(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 1
	wl, err := Trace("serial", []Request{
		{Arrival: 0, PromptLen: 64, OutputLen: 4},
		{Arrival: 0, PromptLen: 64, OutputLen: 4},
		{Arrival: 0, PromptLen: 64, OutputLen: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]RequestMetrics{}
	for _, m := range res.PerRequest {
		byID[m.ID] = m
	}
	for i := 1; i < 3; i++ {
		if byID[i].Admitted < byID[i-1].Done {
			t.Errorf("request %d admitted at %d while request %d still resident until %d",
				i, byID[i].Admitted, i-1, byID[i-1].Done)
		}
	}
}

// TestChunkedPrefill: a long prompt is spread over ceil(prompt/chunk)
// iterations, during which an already-running request keeps decoding (its
// TPOT may stretch but tokens keep flowing).
func TestChunkedPrefill(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkTokens = 128
	wl, err := Trace("chunk", []Request{
		{Arrival: 0, PromptLen: 1024, OutputLen: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	// 1024/128 = 8 prefill iterations + 1 decode iteration.
	if res.Iterations != 9 {
		t.Errorf("iterations = %d, want 9 (8 prefill chunks + 1 decode)", res.Iterations)
	}
}

// TestDeterministicReplay is the acceptance gate: a seeded 200+-request
// Poisson workload over the real simulated-collective timer replays with
// bit-identical metrics across runs.
func TestDeterministicReplay(t *testing.T) {
	run := func() *Result {
		envFn := func() *topology.Env { return topology.A100_80G(1) }
		cfg := Config{
			Env:             envFn(),
			Model:           inference.Llama3x70B(8),
			AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
			MaxBatch:        16,
			KVCapacityBytes: 2 << 30,
			ChunkTokens:     512,
			Metrics:         MetricsExact,
		}
		wl := Poisson(2026, 220, 12, LogNormalLen(384, 0.6, 1024), LogNormalLen(48, 0.5, 128))
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.PerRequest) != 220 {
		t.Fatalf("completed %d requests, want 220", len(a.PerRequest))
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two replays of the same seeded workload produced different metrics")
	}
	// Sanity on the aggregate view.
	sum := a.Summarize(SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 200 * sim.Millisecond})
	if sum.Requests != 220 || sum.ThroughputTokS <= 0 {
		t.Errorf("degenerate summary: %+v", sum)
	}
	if sum.GoodputTokS > sum.ThroughputTokS {
		t.Errorf("goodput %.1f exceeds throughput %.1f", sum.GoodputTokS, sum.ThroughputTokS)
	}
	if sum.SLOAttainment < 0 || sum.SLOAttainment > 1 {
		t.Errorf("SLO attainment %.3f out of range", sum.SLOAttainment)
	}
	if sum.TTFTp50ms > sum.TTFTp99ms || sum.E2Ep50ms > sum.E2Ep99ms {
		t.Errorf("percentiles not ordered: %+v", sum)
	}
}

// TestConfigValidation covers the rejected configurations.
func TestConfigValidation(t *testing.T) {
	wl, err := Trace("one", []Request{{PromptLen: 8, OutputLen: 2}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Env: nil, Model: inference.Llama3x70B(8), AR: fakeAR},
		{Env: topology.A100_80G(1), Model: inference.Llama3x70B(8), AR: nil},
		{Env: topology.A100_80G(1), Model: inference.Llama3x70B(8), AR: fakeAR, MaxBatch: -1},
		{Env: topology.A100_80G(1), Model: inference.Llama3x70B(8), AR: fakeAR, ChunkTokens: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, wl); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	// A model without KV accounting is rejected.
	cfg := testConfig()
	cfg.Model.KVBytesPerTokenPerGPU = 0
	if _, err := Run(cfg, wl); err == nil {
		t.Error("model without KV bytes accepted")
	}
}

// TestSummaryEmpty: summarizing an empty result is well-defined.
func TestSummaryEmpty(t *testing.T) {
	r := &Result{}
	s := r.Summarize(SLO{})
	if s.Requests != 0 || s.ThroughputTokS != 0 || s.SLOAttainment != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}
