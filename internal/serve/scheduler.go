package serve

// The continuous-batching scheduler: a sim.Proc that admits arriving
// requests into a bounded running batch, interleaves chunked prefill with
// decode in each engine iteration (vLLM-style token-budgeted batching), and
// gates admission on a per-GPU KV-cache capacity. Each iteration's virtual
// duration comes from the internal/inference roofline + simulated-collective
// step models, so serving metrics inherit the calibrated communication
// behavior of the underlying cluster model.
//
// The scheduler is an embeddable component: NewScheduler attaches one
// replica engine to an existing sim.Engine, requests are fed in through
// Submit (an event hook callable at any virtual time), and Close marks the
// end of the arrival stream so the scheduler process can drain and exit.
// Run wires a single replica to a fresh engine; internal/serve's router
// (router.go) runs several side by side behind an arrival-splitting policy.

import (
	"fmt"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Config parameterizes one serving engine replica.
type Config struct {
	Env   *topology.Env
	Model inference.Model
	// AR times one tensor-parallel AllReduce at a message size (usually an
	// inference.ARTimer's Time method; must be safe for reuse).
	AR func(int64) sim.Duration

	// MaxBatch bounds how many requests may be resident (prefilling or
	// decoding) at once. Defaults to 32.
	MaxBatch int
	// KVCapacityBytes is the per-GPU KV-cache budget. Admission reserves a
	// request's full footprint (prompt + output tokens) up front and releases
	// it at completion — the conservative reservation discipline, which can
	// never need preemption. Defaults to 8 GiB.
	KVCapacityBytes int64
	// ChunkTokens is the prefill token budget per engine iteration (chunked
	// prefill); long prompts are spread over several iterations so decode
	// latency stays bounded. Defaults to 512.
	ChunkTokens int
	// SchedOverhead is the fixed per-iteration scheduler/runtime cost
	// (batch formation, kernel dispatch glue). Defaults to 100 us, the
	// order of a Python-level serving engine's iteration overhead.
	SchedOverhead sim.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBatch == 0 {
		out.MaxBatch = 32
	}
	if out.KVCapacityBytes == 0 {
		out.KVCapacityBytes = 8 << 30
	}
	if out.ChunkTokens == 0 {
		out.ChunkTokens = 512
	}
	if out.SchedOverhead == 0 {
		out.SchedOverhead = 100 * sim.Microsecond
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Env == nil:
		return fmt.Errorf("serve: Config.Env is nil")
	case c.AR == nil:
		return fmt.Errorf("serve: Config.AR is nil")
	case c.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch = %d", c.MaxBatch)
	case c.KVCapacityBytes < 1:
		return fmt.Errorf("serve: KVCapacityBytes = %d", c.KVCapacityBytes)
	case c.ChunkTokens < 1:
		return fmt.Errorf("serve: ChunkTokens = %d", c.ChunkTokens)
	case c.SchedOverhead < 0:
		return fmt.Errorf("serve: SchedOverhead = %d", c.SchedOverhead)
	}
	return nil
}

// checkRequest rejects a request the defaulted config could never admit:
// it would sit at the head of the FIFO forever and deadlock the replica.
func (c *Config) checkRequest(r Request) error {
	if r.PromptLen < 1 || r.OutputLen < 1 {
		return fmt.Errorf("serve: request %d has prompt %d / output %d tokens", r.ID, r.PromptLen, r.OutputLen)
	}
	if r.PrefixLen < 0 {
		return fmt.Errorf("serve: request %d has negative prefix length %d", r.ID, r.PrefixLen)
	}
	if need := int64(r.PromptLen+r.OutputLen) * c.Model.KVBytesPerTokenPerGPU; need > c.KVCapacityBytes {
		return fmt.Errorf("serve: request %d needs %d KV bytes, capacity %d — it can never be admitted",
			r.ID, need, c.KVCapacityBytes)
	}
	return nil
}

// prepare is the single driver-side validation point shared by Run and
// RunRouted: it defaults and validates the config, then checks every
// request against it (and the model's KV accounting) before any engine is
// built, so impossible workloads error out deterministically instead of
// hanging a replica. NewScheduler independently re-validates the config —
// intentional defense-in-depth for embedders that construct schedulers
// directly.
func prepare(cfg Config, wl Workload) (Config, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return c, err
	}
	if c.Model.KVBytesPerTokenPerGPU < 1 {
		return c, fmt.Errorf("serve: model %s has KVBytesPerTokenPerGPU = %d", c.Model.Name, c.Model.KVBytesPerTokenPerGPU)
	}
	for _, r := range wl.Requests {
		if err := c.checkRequest(r); err != nil {
			return c, err
		}
	}
	return c, nil
}

// role selects which phases of a request's lifecycle a Scheduler runs.
// The zero value (roleUnified) is the chunked-prefill engine every replica
// ran before disaggregation existed: prefill and decode interleave on the
// same simulated GPUs. rolePrefill and roleDecode are the two halves of a
// disaggregated deployment (disagg.go): a prefill replica finishes a
// request at prefill completion and hands its KV cache off, a decode
// replica admits already-prefilled requests and only decodes.
type role int

const (
	roleUnified role = iota
	rolePrefill
	roleDecode
)

// reqState tracks one admitted request through prefill and decode.
type reqState struct {
	req         Request
	prefillDone int      // prompt tokens processed so far
	generated   int      // output tokens produced (1st at prefill completion)
	kvReserved  int64    // bytes reserved against the KV budget
	admitAt     sim.Time // when admission succeeded
	firstTok    sim.Time // when the first output token appeared
	prefixHit   bool     // admission found the shared prefix cached

	// Disaggregated-lifecycle extras (zero in unified runs).
	decodeAdmit  sim.Time     // when the decode pool admitted the handoff
	handoffBytes int64        // KV bytes moved prefill -> decode
	handoffDur   sim.Duration // KV transfer duration on the fabric
}

// Scheduler is one continuous-batching replica running as a process on a
// shared sim.Engine. Zero or more Schedulers may coexist on one engine;
// each owns its simulated cluster (Config.Env), KV budget and Metrics.
type Scheduler struct {
	cfg      Config // defaults applied
	role     role
	kvPerTok int64
	eng      *sim.Engine
	arrived  *sim.Cond

	// onPrefilled fires (in engine context, at the iteration end time) when
	// a rolePrefill replica finishes a request's prompt processing — the
	// disaggregation driver prices the KV handoff there. Nil elsewhere.
	onPrefilled func(pr Prefilled, end sim.Time)

	waiting    []*reqState // FIFO arrival order
	active     []*reqState // admission order; resident in the engine
	kvUsed     int64
	inflight   int64 // tokens submitted but not yet processed (JSQ load signal)
	pending    int64 // tokens committed but still on the wire (in-flight KV handoffs)
	closed     bool
	prefixSeen map[uint64]bool

	res      *Result
	hasReq   bool
	firstArr sim.Time
	lastDone sim.Time
}

// NewScheduler attaches a new replica to eng and spawns its scheduler
// process under the given name. The process runs until Close has been
// called and every submitted request has completed.
func NewScheduler(eng *sim.Engine, name string, cfg Config) (*Scheduler, error) {
	return newScheduler(eng, name, cfg, roleUnified)
}

// newScheduler is NewScheduler with an explicit lifecycle role; the
// disaggregation driver (disagg.go) uses it to build the two pools.
func newScheduler(eng *sim.Engine, name string, cfg Config, ro role) (*Scheduler, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Model.KVBytesPerTokenPerGPU < 1 {
		return nil, fmt.Errorf("serve: model %s has KVBytesPerTokenPerGPU = %d", c.Model.Name, c.Model.KVBytesPerTokenPerGPU)
	}
	s := &Scheduler{
		cfg:        c,
		role:       ro,
		kvPerTok:   c.Model.KVBytesPerTokenPerGPU,
		eng:        eng,
		arrived:    sim.NewCond(eng),
		prefixSeen: make(map[uint64]bool),
		res:        &Result{},
	}
	eng.Spawn(name, s.loop)
	return s, nil
}

// Submit enqueues req at the current virtual time. It must be called from
// engine context (an At callback or a running Proc) and before Close.
// Requests the replica can never admit must be filtered by the caller
// first — Run and RunRouted pre-validate every request via prepare —
// otherwise Submit panics rather than let the replica deadlock.
func (s *Scheduler) Submit(req Request) {
	if s.closed {
		panic(fmt.Sprintf("serve: Submit(request %d) after Close", req.ID))
	}
	if err := s.cfg.checkRequest(req); err != nil {
		panic(err.Error())
	}
	if !s.hasReq || req.Arrival < s.firstArr {
		s.firstArr = req.Arrival
	}
	s.hasReq = true
	if s.role == rolePrefill {
		// A prefill replica's outstanding work is prompt processing only;
		// output tokens are the decode pool's load.
		s.inflight += int64(req.PromptLen)
	} else {
		s.inflight += int64(req.PromptLen + req.OutputLen)
	}
	s.waiting = append(s.waiting, &reqState{req: req})
	s.arrived.Broadcast()
}

// Prefilled is a request whose prompt processing finished on a prefill
// replica, together with the lifecycle timestamps and KV-handoff accounting
// accrued so far. It is what a disaggregated deployment moves from the
// prefill pool to the decode pool once the KV-cache transfer completes.
type Prefilled struct {
	// Req is the original request; its prompt KV is resident on the decode
	// replica when SubmitPrefilled runs (the handoff has completed).
	Req Request
	// Admitted is when the prefill pool admitted the request.
	Admitted sim.Time
	// FirstToken is when prefill completed and emitted the first output
	// token (on the prefill replica).
	FirstToken sim.Time
	// PrefixHit records a prefill-side KV prefix-cache hit.
	PrefixHit bool
	// HandoffBytes is the total KV-cache footprint moved over the fabric
	// (all tensor-parallel shards).
	HandoffBytes int64
	// HandoffDur is how long the fabric transfer took, including occupancy
	// waits on busy DMA engines / NICs.
	HandoffDur sim.Duration
}

// SubmitPrefilled enqueues a finished prefill on a roleDecode replica at
// the current virtual time — the moment its KV handoff completed. Like
// Submit it must be called from engine context and before Close; the
// request joins the admission FIFO with its prompt already processed and
// its first token already emitted, so the replica only decodes.
func (s *Scheduler) SubmitPrefilled(pr Prefilled) {
	if s.role != roleDecode {
		panic(fmt.Sprintf("serve: SubmitPrefilled(request %d) on a non-decode replica", pr.Req.ID))
	}
	if s.closed {
		panic(fmt.Sprintf("serve: SubmitPrefilled(request %d) after Close", pr.Req.ID))
	}
	if err := s.cfg.checkRequest(pr.Req); err != nil {
		panic(err.Error())
	}
	if !s.hasReq || pr.Req.Arrival < s.firstArr {
		s.firstArr = pr.Req.Arrival
	}
	s.hasReq = true
	// Remaining work is decode only: tokens 2..OutputLen.
	s.inflight += int64(pr.Req.OutputLen - 1)
	s.waiting = append(s.waiting, &reqState{
		req:          pr.Req,
		prefillDone:  pr.Req.PromptLen,
		generated:    1,
		admitAt:      pr.Admitted,
		firstTok:     pr.FirstToken,
		prefixHit:    pr.PrefixHit,
		handoffBytes: pr.HandoffBytes,
		handoffDur:   pr.HandoffDur,
	})
	s.arrived.Broadcast()
}

// kvNeed is the KV-cache reservation admission takes for a request: the
// full prompt+output footprint, except on a prefill replica, which only
// ever materializes prompt KV (outputs are generated on the decode pool).
func (s *Scheduler) kvNeed(r Request) int64 {
	if s.role == rolePrefill {
		return int64(r.PromptLen) * s.kvPerTok
	}
	return int64(r.PromptLen+r.OutputLen) * s.kvPerTok
}

// releaseKV returns bytes to the KV budget from engine context. The
// disaggregation driver calls it on a prefill replica when a handoff
// completes — the prompt KV must stay resident during the fabric transfer —
// so admission re-checks the freed budget.
func (s *Scheduler) releaseKV(bytes int64) {
	s.kvUsed -= bytes
	s.arrived.Broadcast()
}

// headAdmissible reports whether the admission FIFO's head could join the
// running batch right now. Used as the idle-parking predicate: a drained
// prefill replica whose KV is still pinned by in-flight handoffs parks
// here instead of burning empty iterations until releaseKV frees budget.
func (s *Scheduler) headAdmissible() bool {
	if len(s.waiting) == 0 || len(s.active) >= s.cfg.MaxBatch {
		return false
	}
	return s.kvUsed+s.kvNeed(s.waiting[0].req) <= s.cfg.KVCapacityBytes
}

// Close marks the end of the arrival stream: once the queue and the
// running batch drain, the scheduler process exits and the replica's
// Result is final. Must be called from engine context, at or after the
// last Submit.
func (s *Scheduler) Close() {
	s.closed = true
	s.arrived.Broadcast()
}

// InFlightTokens is the replica's outstanding work: prompt + output tokens
// of every submitted request, minus tokens already processed, plus work
// already committed to this replica whose KV handoff is still on the wire
// (reservePending). This is the join-shortest-queue load signal —
// token-weighted, so one 8K-prompt request counts for more than ten chat
// turns, and handoff-aware, so a burst of prefill completions does not
// pile onto one decode replica just because its transfers have not landed
// yet.
func (s *Scheduler) InFlightTokens() int64 { return s.inflight + s.pending }

// reservePending adjusts the replica's committed-but-not-yet-delivered
// load by delta tokens. The disaggregation driver adds a request's decode
// work at placement time — the instant DecodePolicy picks this replica —
// and subtracts it again when the KV handoff completes and SubmitPrefilled
// moves the same tokens into the live in-flight count, so InFlightTokens
// never double-counts and never goes blind during a transfer.
func (s *Scheduler) reservePending(delta int64) { s.pending += delta }

// QueuedRequests is the number of requests waiting for admission.
func (s *Scheduler) QueuedRequests() int { return len(s.waiting) }

// ActiveRequests is the number of requests resident in the running batch.
func (s *Scheduler) ActiveRequests() int { return len(s.active) }

// HasPrefix reports whether the replica has already prefilled (and so
// notionally caches) the shared prefix of the given group.
func (s *Scheduler) HasPrefix(group uint64) bool { return s.prefixSeen[group] }

// Result returns the replica's metrics. Only complete after the engine has
// drained (every submitted request finished and Close was called).
func (s *Scheduler) Result() *Result { return s.res }

// loop is the scheduler process body: admit, form a batch, price it,
// sleep, apply effects; park when idle; exit when closed and drained.
func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if len(s.active) == 0 {
			// Park until the FIFO head can actually be admitted (or the
			// stream is closed and drained). For unified replicas an empty
			// batch implies an empty KV budget, so this is exactly the old
			// "anything waiting" predicate; on a prefill replica the budget
			// may still be pinned by in-flight handoffs, and waking before
			// releaseKV would only burn empty iterations.
			p.Wait(s.arrived, "waiting for arrivals", func() bool {
				return s.headAdmissible() || (s.closed && len(s.waiting) == 0)
			})
			if len(s.waiting) == 0 {
				// Pred held with nothing queued: closed and fully drained.
				break
			}
		}
		s.iterate(p)
	}
	if s.hasReq {
		s.res.Makespan = s.lastDone - s.firstArr
	}
}

// iterate runs one engine iteration: admission, batch formation, pricing,
// and effect application at the iteration's completion time.
func (s *Scheduler) iterate(p *sim.Proc) {
	c := &s.cfg
	// Admission: FIFO while the batch bound and the KV budget allow.
	// Head-of-line blocking on KV is intentional — admitting smaller
	// requests around a stuck head would starve long prompts.
	for len(s.waiting) > 0 && len(s.active) < c.MaxBatch {
		head := s.waiting[0]
		need := s.kvNeed(head.req)
		if s.kvUsed+need > c.KVCapacityBytes {
			break
		}
		s.waiting = s.waiting[1:]
		head.kvReserved = need
		s.kvUsed += need
		if s.role == roleDecode {
			// The request was admitted (and prefilled) on the prefill pool;
			// record when the decode pool let its handoff into the batch.
			head.decodeAdmit = p.Now()
		} else {
			head.admitAt = p.Now()
		}
		// KV prefix reuse: a replica that has already prefilled this
		// request's shared prefix (prefixSeen is set at prefill completion,
		// so the discount is only granted for KV that actually exists)
		// skips those prompt tokens, but at least one token always goes
		// through prefill so the first-token event stays well-defined. The
		// KV reservation stays at the full footprint — conservative, like
		// the rest of the admission policy. Decode replicas never prefill,
		// so the discount (which rewinds prefillDone) must not apply there.
		if g := head.req.PrefixGroup; s.role != roleDecode && g != 0 && head.req.PrefixLen > 0 && s.prefixSeen[g] {
			d := head.req.PrefixLen
			if d > head.req.PromptLen-1 {
				d = head.req.PromptLen - 1
			}
			head.prefillDone = d
			head.prefixHit = true
			s.inflight -= int64(d)
		}
		s.active = append(s.active, head)
	}

	// Form the iteration: a chunked-prefill token budget spread FIFO
	// over admitted-but-unprefilled requests, plus one decode token
	// for every running sequence.
	chunkLeft := c.ChunkTokens
	type prefillShare struct {
		rs  *reqState
		tok int
	}
	var prefills []prefillShare
	var decoders []*reqState
	var decodeCtx int64
	for _, rs := range s.active {
		if rs.prefillDone < rs.req.PromptLen {
			if chunkLeft > 0 {
				tok := rs.req.PromptLen - rs.prefillDone
				if tok > chunkLeft {
					tok = chunkLeft
				}
				prefills = append(prefills, prefillShare{rs, tok})
				chunkLeft -= tok
			}
		} else if rs.generated < rs.req.OutputLen {
			decoders = append(decoders, rs)
			decodeCtx += int64(rs.req.PromptLen + rs.generated)
		}
	}

	// Price the iteration. Prefill and decode execute back to back
	// within one engine step (the non-fused form of chunked prefill);
	// each side pays its own roofline + TP-communication cost.
	dur := c.SchedOverhead
	chunkTok := c.ChunkTokens - chunkLeft
	if chunkTok > 0 {
		dur += inference.PrefillStep(c.Env, c.Model, 1, chunkTok, c.AR)
	}
	if len(decoders) > 0 {
		dur += inference.DecodeStepCtx(c.Env, c.Model, len(decoders), decodeCtx, c.AR)
	}
	p.Sleep(dur)
	end := p.Now()
	s.res.Iterations++

	// Apply the iteration's effects at its completion time.
	for _, ps := range prefills {
		ps.rs.prefillDone += ps.tok
		s.inflight -= int64(ps.tok)
		if ps.rs.prefillDone == ps.rs.req.PromptLen {
			// Prefill completion emits the first output token, and only
			// now is the request's shared prefix KV resident — requests of
			// the same group admitted earlier (e.g. within one burst) paid
			// full prefill, as they would have on real hardware.
			ps.rs.generated = 1
			if s.role != rolePrefill {
				// Prefill replicas never counted output tokens as load.
				s.inflight--
			}
			ps.rs.firstTok = end
			if g := ps.rs.req.PrefixGroup; g != 0 {
				s.prefixSeen[g] = true
			}
		}
	}
	for _, rs := range decoders {
		rs.generated++
		s.inflight--
	}
	keep := s.active[:0]
	for _, rs := range s.active {
		switch {
		case s.role == rolePrefill && rs.prefillDone == rs.req.PromptLen && rs.req.OutputLen > 1:
			// Prefill done: the request leaves this replica, but its prompt
			// KV stays reserved until the fabric handoff completes (the
			// driver calls releaseKV at the transfer's end time). The
			// per-request record is written by the decode replica that
			// finishes the request.
			s.lastDone = end
			if s.onPrefilled != nil {
				s.onPrefilled(Prefilled{
					Req:        rs.req,
					Admitted:   rs.admitAt,
					FirstToken: rs.firstTok,
					PrefixHit:  rs.prefixHit,
				}, end)
			}
		case rs.generated >= rs.req.OutputLen && rs.prefillDone == rs.req.PromptLen:
			// Complete. On a prefill replica this is the one-token case:
			// the single output token came from prefill, no decode phase
			// exists, so the request never visits the decode pool.
			s.kvUsed -= rs.kvReserved
			s.lastDone = end
			s.res.PerRequest = append(s.res.PerRequest, RequestMetrics{
				ID:             rs.req.ID,
				PromptLen:      rs.req.PromptLen,
				OutputLen:      rs.req.OutputLen,
				Arrival:        rs.req.Arrival,
				Admitted:       rs.admitAt,
				FirstToken:     rs.firstTok,
				Done:           end,
				PrefixHit:      rs.prefixHit,
				DecodeAdmitted: rs.decodeAdmit,
				KVHandoffBytes: rs.handoffBytes,
				HandoffNs:      rs.handoffDur,
			})
		default:
			keep = append(keep, rs)
		}
	}
	s.active = keep
}

// Run replays the workload against a single replica and returns its
// per-request metrics. It builds a fresh discrete-event engine, schedules
// every arrival as an engine event, and runs the scheduler process until
// the last request completes.
func Run(cfg Config, wl Workload) (*Result, error) {
	if _, err := prepare(cfg, wl); err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	s, err := NewScheduler(eng, "serve-scheduler", cfg)
	if err != nil {
		return nil, err
	}
	s.res.Workload = wl.Name
	s.res.PerRequest = make([]RequestMetrics, 0, len(wl.Requests))
	var last sim.Time
	for _, r := range wl.Requests {
		req := r
		eng.At(req.Arrival, func() { s.Submit(req) })
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	eng.At(last, s.Close)
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return s.Result(), nil
}
