package serve

// The continuous-batching scheduler: a sim.Proc that admits arriving
// requests into a bounded running batch, interleaves chunked prefill with
// decode in each engine iteration (vLLM-style token-budgeted batching), and
// gates admission on a per-GPU KV-cache capacity. Each iteration's virtual
// duration comes from the internal/inference roofline + simulated-collective
// step models, so serving metrics inherit the calibrated communication
// behavior of the underlying cluster model.
//
// Two KV admission disciplines coexist (Config.KVPolicy):
//
//   - KVReserve (default): admission reserves a request's full
//     prompt+output footprint up front and releases it at completion. It
//     can never need preemption, but at high load it strands capacity —
//     bytes reserved for tokens that will not exist for seconds.
//   - KVPaged: a block-granular allocator (kvpage.go) admits on the
//     prompt-only footprint and grows the allocation one block at a time
//     as decode produces tokens. When the pager runs dry mid-decode the
//     scheduler preempts the least-important running request — lowest
//     priority class, then latest arrival — and either recomputes
//     (drop its KV, requeue, prefill again) or swaps (page the KV out to
//     host and back in over the per-GPU copy engines), whichever the
//     closed-form cost crossover picks under PreemptAuto.
//
// Admission order is policy-selectable (Config.Admission): FIFO by
// arrival, shortest-prompt-first, or decode-first (resumed work before
// fresh prefills). Priority classes (Request.Priority) are strict across
// all orders, with optional aging (Config.AgingNs) to bound starvation.
// With the default configuration — KVReserve, FIFO, no priorities — every
// code path below reduces exactly to the pre-paging scheduler, so existing
// goldens are byte-identical.
//
// The scheduler is an embeddable component: NewScheduler attaches one
// replica engine to an existing sim.Engine, requests are fed in through
// Submit (an event hook callable at any virtual time), and Close marks the
// end of the arrival stream so the scheduler process can drain and exit.
// Run wires a single replica to a fresh engine; internal/serve's router
// (router.go) runs several side by side behind an arrival-splitting policy.

import (
	"fmt"
	"sort"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// KVPolicy selects the KV-cache admission discipline of a replica.
type KVPolicy int

// KV admission disciplines. KVReserve is the zero value: the conservative
// whole-footprint reservation every scenario before paged KV used.
const (
	// KVReserve reserves prompt+output bytes at admission; no preemption.
	KVReserve KVPolicy = iota
	// KVPaged admits on prompt-only blocks and grows during decode,
	// preempting (recompute or swap) when the block pool runs dry.
	KVPaged
)

// PreemptPolicy selects how a paged replica evicts a running request when
// the block pool is exhausted.
type PreemptPolicy int

// Preemption modes. PreemptAuto is the zero value.
const (
	// PreemptAuto compares the closed-form costs of both modes per victim
	// and picks the cheaper one (ties go to recompute, which frees blocks
	// immediately).
	PreemptAuto PreemptPolicy = iota
	// PreemptRecompute drops the victim's KV and requeues it; the resident
	// context (prompt + generated tokens) is prefilled again on resume.
	PreemptRecompute
	// PreemptSwap pages the victim's KV out to host memory over the
	// per-GPU copy engines and back in on re-admission.
	PreemptSwap
)

// AdmissionOrder selects how a replica orders its waiting queue within a
// priority class.
type AdmissionOrder int

// Admission orders. AdmitFIFO is the zero value.
const (
	// AdmitFIFO admits in arrival (submit) order.
	AdmitFIFO AdmissionOrder = iota
	// AdmitSJF admits shortest prompt first (ties by arrival order) —
	// the classic mean-latency optimizer, at the cost of long-prompt tail.
	AdmitSJF
	// AdmitDecodeFirst admits preempted/swapped-out requests before fresh
	// prefills (ties by arrival order), prioritizing work already paid for.
	AdmitDecodeFirst
)

// Config parameterizes one serving engine replica.
type Config struct {
	Env   *topology.Env
	Model inference.Model
	// AR times one tensor-parallel AllReduce at a message size (usually an
	// inference.ARTimer's Time method; must be safe for reuse).
	AR func(int64) sim.Duration
	// A2A prices one MoE layer's expert-parallel all-to-all at a token
	// count (usually an inference.EPTimer's Layer method; must be safe for
	// reuse). Required when Model.MoE is set, ignored otherwise.
	A2A func(tokens int) inference.A2ACost

	// MaxBatch bounds how many requests may be resident (prefilling or
	// decoding) at once. Defaults to 32.
	MaxBatch int
	// KVCapacityBytes is the per-GPU KV-cache budget. Defaults to 8 GiB.
	KVCapacityBytes int64
	// ChunkTokens is the prefill token budget per engine iteration (chunked
	// prefill); long prompts are spread over several iterations so decode
	// latency stays bounded. Defaults to 512.
	ChunkTokens int
	// SchedOverhead is the fixed per-iteration scheduler/runtime cost
	// (batch formation, kernel dispatch glue). Defaults to 100 us, the
	// order of a Python-level serving engine's iteration overhead.
	SchedOverhead sim.Duration

	// KVPolicy selects whole-footprint reservation (KVReserve, default) or
	// block-granular paged allocation (KVPaged).
	KVPolicy KVPolicy
	// BlockTokens is the paged allocator's tokens-per-block granularity.
	// Defaults to 16 (the vLLM default). Only meaningful under KVPaged.
	BlockTokens int
	// Preempt selects the eviction mode a paged replica uses on block
	// exhaustion. Defaults to PreemptAuto. Decode-pool replicas of a
	// disaggregated deployment always swap — they cannot re-run prefill.
	Preempt PreemptPolicy
	// Admission orders the waiting queue within a priority class.
	// Defaults to AdmitFIFO.
	Admission AdmissionOrder
	// AgingNs, when positive, promotes a waiting request one priority
	// class per AgingNs of queueing delay, bounding starvation under
	// strict priority. Zero (default) disables aging.
	AgingNs sim.Duration

	// Metrics selects streaming (bounded-memory, the default) or exact
	// (full per-request row) metric recording. See MetricsMode.
	Metrics MetricsMode
	// SLO is the objective completions are judged against at completion
	// time under MetricsStream; TierSLOs optionally overrides it per
	// priority class. Both are ignored under MetricsExact (rows allow
	// post-hoc judging under any SLO).
	SLO      SLO
	TierSLOs map[int]SLO

	// Driver selects how the replica's scheduling loop executes on the
	// engine. See DriverMode; the default is the callback driver.
	Driver DriverMode
}

// DriverMode selects the execution style of a replica's scheduling loop.
type DriverMode int

// Driver modes. DriverCallback is the zero value.
const (
	// DriverCallback runs the scheduler as engine event callbacks: every
	// iteration boundary is a scheduled event, with no goroutine behind
	// the replica. This removes the park/resume hand-off that dominates a
	// drained engine's cost and is the default.
	DriverCallback DriverMode = iota
	// DriverProc runs the scheduler as a blocking sim.Proc, the original
	// execution style. It is retained as the reference implementation the
	// callback driver's timing-equivalence tests compare against.
	DriverProc
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBatch == 0 {
		out.MaxBatch = 32
	}
	if out.KVCapacityBytes == 0 {
		out.KVCapacityBytes = 8 << 30
	}
	if out.ChunkTokens == 0 {
		out.ChunkTokens = 512
	}
	if out.SchedOverhead == 0 {
		out.SchedOverhead = 100 * sim.Microsecond
	}
	if out.BlockTokens == 0 {
		out.BlockTokens = 16
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Env == nil:
		return fmt.Errorf("serve: Config.Env is nil")
	case c.AR == nil:
		return fmt.Errorf("serve: Config.AR is nil")
	case c.Model.MoE != nil && c.A2A == nil:
		return fmt.Errorf("serve: model %s has experts but Config.A2A is nil", c.Model.Name)
	case c.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch = %d", c.MaxBatch)
	case c.KVCapacityBytes < 1:
		return fmt.Errorf("serve: KVCapacityBytes = %d", c.KVCapacityBytes)
	case c.ChunkTokens < 1:
		return fmt.Errorf("serve: ChunkTokens = %d", c.ChunkTokens)
	case c.SchedOverhead < 0:
		return fmt.Errorf("serve: SchedOverhead = %d", c.SchedOverhead)
	case c.KVPolicy != KVReserve && c.KVPolicy != KVPaged:
		return fmt.Errorf("serve: KVPolicy = %d", c.KVPolicy)
	case c.BlockTokens < 1:
		return fmt.Errorf("serve: BlockTokens = %d", c.BlockTokens)
	case c.Preempt != PreemptAuto && c.Preempt != PreemptRecompute && c.Preempt != PreemptSwap:
		return fmt.Errorf("serve: Preempt = %d", c.Preempt)
	case c.Admission != AdmitFIFO && c.Admission != AdmitSJF && c.Admission != AdmitDecodeFirst:
		return fmt.Errorf("serve: Admission = %d", c.Admission)
	case c.AgingNs < 0:
		return fmt.Errorf("serve: AgingNs = %d", c.AgingNs)
	case c.Metrics != MetricsStream && c.Metrics != MetricsExact:
		return fmt.Errorf("serve: Metrics = %d", c.Metrics)
	case c.Driver != DriverCallback && c.Driver != DriverProc:
		return fmt.Errorf("serve: Driver = %d", c.Driver)
	}
	return nil
}

// checkRequest rejects a malformed request: non-positive token counts or a
// negative prefix length. These are caller bugs, not workload conditions,
// so they stay hard errors.
func (c *Config) checkRequest(r Request) error {
	if r.PromptLen < 1 || r.OutputLen < 1 {
		return fmt.Errorf("serve: request %d has prompt %d / output %d tokens", r.ID, r.PromptLen, r.OutputLen)
	}
	if r.PrefixLen < 0 {
		return fmt.Errorf("serve: request %d has negative prefix length %d", r.ID, r.PrefixLen)
	}
	return nil
}

// rejectReason reports why the defaulted config could never admit r (it
// would sit in the admission queue forever and deadlock the replica), or
// "" when r is admissible. Unlike malformed requests this is a workload
// condition — an oversized request in a million-request trace — so the
// drivers record it as a structured per-request rejection instead of
// aborting the run.
func (c *Config) rejectReason(r Request) string {
	tokens := r.PromptLen + r.OutputLen
	if c.KVPolicy == KVPaged {
		blockBytes := int64(c.BlockTokens) * c.Model.KVBytesPerTokenPerGPU
		total := c.KVCapacityBytes / blockBytes
		need := int64((tokens + c.BlockTokens - 1) / c.BlockTokens)
		if need > total {
			return "kv-capacity"
		}
		return ""
	}
	if need := int64(tokens) * c.Model.KVBytesPerTokenPerGPU; need > c.KVCapacityBytes {
		return "kv-capacity"
	}
	return ""
}

// prepare is the single driver-side validation point shared by Run,
// RunRouted and RunDisaggregated: it defaults and validates the config,
// hard-errors on malformed requests, and splits out requests the config
// can never admit as structured Rejected records (with the workload they
// are filtered from), so one hostile request degrades to a rejection row
// instead of killing the whole trace. NewScheduler independently
// re-validates the config — intentional defense-in-depth for embedders
// that construct schedulers directly.
func prepare(cfg Config, wl Workload) (Config, Workload, []RequestMetrics, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return c, wl, nil, err
	}
	if c.Model.KVBytesPerTokenPerGPU < 1 {
		return c, wl, nil, fmt.Errorf("serve: model %s has KVBytesPerTokenPerGPU = %d", c.Model.Name, c.Model.KVBytesPerTokenPerGPU)
	}
	var rejected []RequestMetrics
	admitted := wl.Requests
	copied := false
	for i, r := range wl.Requests {
		if err := c.checkRequest(r); err != nil {
			return c, wl, nil, err
		}
		if reason := c.rejectReason(r); reason != "" {
			if !copied {
				admitted = append([]Request(nil), wl.Requests[:i]...)
				copied = true
			}
			rejected = append(rejected, RequestMetrics{
				ID:             r.ID,
				PromptLen:      r.PromptLen,
				OutputLen:      r.OutputLen,
				Arrival:        r.Arrival,
				Priority:       r.Priority,
				Rejected:       true,
				RejectedReason: reason,
			})
		} else if copied {
			admitted = append(admitted, r)
		}
	}
	out := wl
	out.Requests = admitted
	return c, out, rejected, nil
}

// role selects which phases of a request's lifecycle a Scheduler runs.
// The zero value (roleUnified) is the chunked-prefill engine every replica
// ran before disaggregation existed: prefill and decode interleave on the
// same simulated GPUs. rolePrefill and roleDecode are the two halves of a
// disaggregated deployment (disagg.go): a prefill replica finishes a
// request at prefill completion and hands its KV cache off, a decode
// replica admits already-prefilled requests and only decodes.
type role int

const (
	roleUnified role = iota
	rolePrefill
	roleDecode
)

// reqState tracks one admitted request through prefill and decode.
type reqState struct {
	req         Request
	seq         int      // submit order (FIFO key; stable across requeues)
	prefillDone int      // effective-prompt tokens processed so far
	generated   int      // output tokens produced (1st at prefill completion)
	kvReserved  int64    // bytes reserved against the KV budget (KVReserve)
	blocks      []int32  // KV blocks held (KVPaged)
	admitAt     sim.Time // when admission first succeeded
	admitted    bool     // admitAt is set (resumes keep the original)
	firstTok    sim.Time // when the first output token appeared
	prefixHit   bool     // admission found the shared prefix cached

	// Preemption state (zero unless a paged replica evicted the request).
	replay    int   // output tokens folded into the effective prompt by recompute
	swapped   bool  // waiting with KV paged out to host; re-admission swaps in
	stalled   bool  // decoder held out of this iteration; its block frees in flight
	preempts  int   // times this request was preempted
	swapBytes int64 // KV bytes moved by swap-out + swap-in, all TP lanes

	// Disaggregated-lifecycle extras (zero in unified runs).
	decodeAdmit   sim.Time // when the decode pool admitted the handoff
	decodeAdmited bool
	handoffBytes  int64        // KV bytes moved prefill -> decode
	handoffDur    sim.Duration // KV transfer duration on the fabric
}

// prompt is the effective prompt length: the original prompt plus any
// generated tokens a recompute preemption folded back into prefill (the
// resident context must be recomputed before decode can resume).
func (rs *reqState) prompt() int { return rs.req.PromptLen + rs.replay }

// kvTokens is the number of context tokens with KV resident on the
// replica: prompt tokens prefilled so far plus output tokens appended
// since the last (re)prefill pass.
func (rs *reqState) kvTokens() int { return rs.prefillDone + rs.generated - rs.replay }

// Scheduler is one continuous-batching replica running as a process on a
// shared sim.Engine. Zero or more Schedulers may coexist on one engine;
// each owns its simulated cluster (Config.Env), KV budget and Metrics.
type Scheduler struct {
	cfg      Config // defaults applied
	role     role
	kvPerTok int64
	eng      *sim.Engine
	arrived  *sim.Cond

	// Paged-KV machinery; nil under KVReserve.
	pager   *KVPager
	swapper *KVSwapper

	// gpu is an observe-only occupancy resource tracking the replica's
	// iteration executions: each priced iteration books [start, start+dur)
	// at formIteration time, so its counters read as iteration count, busy
	// (compute+comm) time and inter-iteration idle gaps. It is never part
	// of any timing decision — iterations are serialized by the driver
	// state machine, not by this resource.
	gpu *sim.Resource
	// dispatch/combine are observe-only resources tracking the expert-
	// parallel all-to-all share of each priced iteration (the MoE model's
	// dispatch and combine time summed over its MoE layers). Nil for dense
	// models.
	dispatch *sim.Resource
	combine  *sim.Resource

	// onPrefilled fires (in engine context, at the iteration end time) when
	// a rolePrefill replica finishes a request's prompt processing — the
	// disaggregation driver prices the KV handoff there and calls release
	// when the transfer ends, freeing the prompt KV pinned on this replica.
	// Nil elsewhere.
	onPrefilled func(pr Prefilled, end sim.Time, release func())

	waiting    []*reqState // admission queue (submit order; pickWaiting reorders)
	active     []*reqState // admission order; resident in the engine
	kvUsed     int64
	inflight   int64 // tokens submitted but not yet processed (JSQ load signal)
	pending    int64 // tokens committed but still on the wire (in-flight KV handoffs)
	swapIn     int   // requests whose swap-in transfer is in flight
	swapOut    int   // requests whose swap-out transfer is in flight
	freeSoon   int   // blocks held by in-flight swap-outs; free when they land
	seq        int   // submit counter
	closed     bool
	draining   bool // Drain was called: no new admissions, retire when drained
	prefixSeen map[uint64]bool

	// onRetired fires (in engine context) when the replica finishes
	// draining — Close or Drain was called and the last resident request,
	// queued resume and in-flight transfer has completed. The autoscaler
	// (autoscale.go) stamps replica retirement times there. Nil elsewhere.
	onRetired func(at sim.Time)

	res      *Result
	stream   *StreamStats // bounded-memory recording; nil under MetricsExact
	hasReq   bool
	firstArr sim.Time
	lastDone sim.Time

	// Callback-driver state (DriverCallback). The scheduler is a state
	// machine over engine events instead of a parked goroutine: drvIdle
	// and drvStalled are the two parked states the Proc driver expresses
	// as Cond waits, drvRunning covers a priced iteration in flight, and
	// drvDone is the drained terminal state.
	state  drvState
	kicked bool // a wake event is already scheduled at the current instant

	// Iteration plan, reused across iterations (allocation-free steady
	// state): formIteration fills these, completeIteration applies them.
	prefills  []prefillShare
	decoders  []*reqState
	decodeCtx int64
	chunkTok  int
}

// drvState is the callback driver's state machine (see Scheduler fields).
type drvState int

const (
	drvIdle    drvState = iota // waiting for arrivals/admissibility
	drvStalled                 // every resident decoder stalled on KV frees
	drvRunning                 // an iteration's completion event is scheduled
	drvDone                    // closed and fully drained
)

// prefillShare is one request's token share of a chunked-prefill budget.
type prefillShare struct {
	rs  *reqState
	tok int
}

// NewScheduler attaches a new replica to eng and spawns its scheduler
// process under the given name. The process runs until Close has been
// called and every submitted request has completed.
func NewScheduler(eng *sim.Engine, name string, cfg Config) (*Scheduler, error) {
	return newScheduler(eng, name, cfg, roleUnified)
}

// newScheduler is NewScheduler with an explicit lifecycle role; the
// disaggregation driver (disagg.go) uses it to build the two pools.
func newScheduler(eng *sim.Engine, name string, cfg Config, ro role) (*Scheduler, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Model.KVBytesPerTokenPerGPU < 1 {
		return nil, fmt.Errorf("serve: model %s has KVBytesPerTokenPerGPU = %d", c.Model.Name, c.Model.KVBytesPerTokenPerGPU)
	}
	s := &Scheduler{
		cfg:        c,
		role:       ro,
		kvPerTok:   c.Model.KVBytesPerTokenPerGPU,
		eng:        eng,
		arrived:    sim.NewCond(eng),
		prefixSeen: make(map[uint64]bool),
		res:        &Result{},
		gpu:        sim.NewResource(name + "/gpu"),
	}
	if c.Model.MoE != nil {
		s.dispatch = sim.NewResource(name + "/moe-dispatch")
		s.combine = sim.NewResource(name + "/moe-combine")
	}
	if c.Metrics == MetricsStream {
		s.stream = newStreamStats(c.SLO, c.TierSLOs)
		s.res.Stream = s.stream
	}
	if c.KVPolicy == KVPaged {
		pager, err := NewKVPager(c.KVCapacityBytes, c.BlockTokens, c.Model.KVBytesPerTokenPerGPU)
		if err != nil {
			return nil, err
		}
		s.pager = pager
		s.swapper = NewKVSwapper(c.Env)
	}
	if c.Driver == DriverProc {
		eng.Spawn(name, s.loop)
	}
	return s, nil
}

// Submit enqueues req at the current virtual time. It must be called from
// engine context (an At callback or a running Proc) and before Close.
// Requests the replica can never admit must be filtered by the caller
// first — Run, RunRouted and RunDisaggregated pre-validate every request
// via prepare and record the rejections — otherwise Submit panics rather
// than let the replica deadlock.
func (s *Scheduler) Submit(req Request) {
	if s.closed {
		panic(fmt.Sprintf("serve: Submit(request %d) after Close", req.ID))
	}
	if s.draining {
		panic(fmt.Sprintf("serve: Submit(request %d) on a draining replica", req.ID))
	}
	if err := s.cfg.checkRequest(req); err != nil {
		panic(err.Error())
	}
	if reason := s.cfg.rejectReason(req); reason != "" {
		panic(fmt.Sprintf("serve: request %d can never be admitted (%s) — the driver must filter it as a rejection", req.ID, reason))
	}
	if !s.hasReq || req.Arrival < s.firstArr {
		s.firstArr = req.Arrival
	}
	s.hasReq = true
	if s.role == rolePrefill {
		// A prefill replica's outstanding work is prompt processing only;
		// output tokens are the decode pool's load.
		s.inflight += int64(req.PromptLen)
	} else {
		s.inflight += int64(req.PromptLen + req.OutputLen)
	}
	s.waiting = append(s.waiting, &reqState{req: req, seq: s.seq})
	s.seq++
	s.notify()
}

// Prefilled is a request whose prompt processing finished on a prefill
// replica, together with the lifecycle timestamps and KV-handoff accounting
// accrued so far. It is what a disaggregated deployment moves from the
// prefill pool to the decode pool once the KV-cache transfer completes.
type Prefilled struct {
	// Req is the original request; its prompt KV is resident on the decode
	// replica when SubmitPrefilled runs (the handoff has completed).
	Req Request
	// Admitted is when the prefill pool admitted the request.
	Admitted sim.Time
	// FirstToken is when prefill completed and emitted the first output
	// token (on the prefill replica).
	FirstToken sim.Time
	// PrefixHit records a prefill-side KV prefix-cache hit.
	PrefixHit bool
	// HandoffBytes is the total KV-cache footprint moved over the fabric
	// (all tensor-parallel shards).
	HandoffBytes int64
	// HandoffDur is how long the fabric transfer took, including occupancy
	// waits on busy DMA engines / NICs.
	HandoffDur sim.Duration
}

// SubmitPrefilled enqueues a finished prefill on a roleDecode replica at
// the current virtual time — the moment its KV handoff completed. Like
// Submit it must be called from engine context and before Close; the
// request joins the admission queue with its prompt already processed and
// its first token already emitted, so the replica only decodes.
func (s *Scheduler) SubmitPrefilled(pr Prefilled) {
	if s.role != roleDecode {
		panic(fmt.Sprintf("serve: SubmitPrefilled(request %d) on a non-decode replica", pr.Req.ID))
	}
	if s.closed {
		panic(fmt.Sprintf("serve: SubmitPrefilled(request %d) after Close", pr.Req.ID))
	}
	if err := s.cfg.checkRequest(pr.Req); err != nil {
		panic(err.Error())
	}
	if reason := s.cfg.rejectReason(pr.Req); reason != "" {
		panic(fmt.Sprintf("serve: request %d can never be admitted (%s) — the driver must filter it as a rejection", pr.Req.ID, reason))
	}
	if !s.hasReq || pr.Req.Arrival < s.firstArr {
		s.firstArr = pr.Req.Arrival
	}
	s.hasReq = true
	// Remaining work is decode only: tokens 2..OutputLen.
	s.inflight += int64(pr.Req.OutputLen - 1)
	s.waiting = append(s.waiting, &reqState{
		req:          pr.Req,
		seq:          s.seq,
		prefillDone:  pr.Req.PromptLen,
		generated:    1,
		admitAt:      pr.Admitted,
		admitted:     true,
		firstTok:     pr.FirstToken,
		prefixHit:    pr.PrefixHit,
		handoffBytes: pr.HandoffBytes,
		handoffDur:   pr.HandoffDur,
	})
	s.seq++
	if s.draining && s.pending == 0 {
		// Drain was deferred while this handoff was on the wire; it was the
		// last one, so the replica can now stop accepting and run down.
		s.closed = true
	}
	s.notify()
}

// kvNeed is the KV-cache reservation KVReserve admission takes for a
// request: the full prompt+output footprint, except on a prefill replica,
// which only ever materializes prompt KV (outputs are generated on the
// decode pool).
func (s *Scheduler) kvNeed(r Request) int64 {
	if s.role == rolePrefill {
		return int64(r.PromptLen) * s.kvPerTok
	}
	return int64(r.PromptLen+r.OutputLen) * s.kvPerTok
}

// releaseKV returns bytes to the KVReserve budget from engine context. The
// disaggregation driver calls it on a prefill replica when a handoff
// completes — the prompt KV must stay resident during the fabric transfer —
// so admission re-checks the freed budget.
func (s *Scheduler) releaseKV(bytes int64) {
	s.kvUsed -= bytes
	s.notify()
}

// ensureBlocks grows rs's paged allocation until it covers tokens,
// returning false if the pager ran dry first (blocks already grabbed are
// kept — they stay useful on the next attempt or are freed on preemption).
func (s *Scheduler) ensureBlocks(rs *reqState, tokens int) bool {
	need := s.pager.BlocksFor(tokens)
	for len(rs.blocks) < need {
		b, ok := s.pager.Alloc()
		if !ok {
			return false
		}
		rs.blocks = append(rs.blocks, int32(b))
	}
	return true
}

// freeBlocks returns every block rs holds to the pager and wakes admission.
func (s *Scheduler) freeBlocks(rs *reqState) {
	for _, b := range rs.blocks {
		s.pager.Free(int(b))
	}
	rs.blocks = rs.blocks[:0]
	s.notify()
}

// admitTokens is the KV footprint (in tokens) admission must cover before
// rs can join the batch: the effective prompt for fresh and recompute-
// resumed requests, or the full resident context for a swapped-out one.
func (s *Scheduler) admitTokens(rs *reqState) int {
	t := rs.prompt()
	if k := rs.kvTokens(); k > t {
		t = k
	}
	return t
}

// effPrio is rs's effective priority class at `now`: its static class,
// promoted one class per AgingNs of queueing delay when aging is on.
func (s *Scheduler) effPrio(rs *reqState, now sim.Time) int {
	p := rs.req.Priority
	if p > 0 && s.cfg.AgingNs > 0 {
		boost := int(int64(now-rs.req.Arrival) / int64(s.cfg.AgingNs))
		if boost >= p {
			return 0
		}
		return p - boost
	}
	return p
}

// beforeAdmit orders the waiting queue: strict effective priority first,
// then the configured admission order, then submit order. With AdmitFIFO
// and uniform priorities it degenerates to pure submit order, which is the
// pre-paging scheduler's exact behavior.
func (s *Scheduler) beforeAdmit(a, b *reqState, now sim.Time) bool {
	pa, pb := s.effPrio(a, now), s.effPrio(b, now)
	if pa != pb {
		return pa < pb
	}
	switch s.cfg.Admission {
	case AdmitSJF:
		if a.req.PromptLen != b.req.PromptLen {
			return a.req.PromptLen < b.req.PromptLen
		}
	case AdmitDecodeFirst:
		ra := a.generated > 0 || a.swapped
		rb := b.generated > 0 || b.swapped
		if ra != rb {
			return ra
		}
	}
	return a.seq < b.seq
}

// pickWaiting returns the index of the next admission candidate at `now`.
func (s *Scheduler) pickWaiting(now sim.Time) int {
	best := 0
	for i := 1; i < len(s.waiting); i++ {
		if s.beforeAdmit(s.waiting[i], s.waiting[best], now) {
			best = i
		}
	}
	return best
}

// canAdmit reports whether rs fits the replica's KV budget right now.
func (s *Scheduler) canAdmit(rs *reqState) bool {
	if s.pager != nil {
		return s.pager.FreeBlocks() >= s.pager.BlocksFor(s.admitTokens(rs))
	}
	return s.kvUsed+s.kvNeed(rs.req) <= s.cfg.KVCapacityBytes
}

// nextAdmissible reports whether the admission candidate the scheduler
// would pick right now could join the running batch. Used as the
// idle-parking predicate: a drained replica whose KV is still pinned by
// in-flight handoffs or swaps parks here instead of burning empty
// iterations until a release frees budget.
func (s *Scheduler) nextAdmissible() bool {
	if len(s.waiting) == 0 || len(s.active)+s.swapIn >= s.cfg.MaxBatch {
		return false
	}
	now := s.eng.Now()
	return s.canAdmit(s.waiting[s.pickWaiting(now)])
}

// transit is the number of requests owned by the replica but in neither
// the waiting queue nor the running batch: their swap transfer is in
// flight. The scheduler process may not exit while any remain.
func (s *Scheduler) transit() int { return s.swapIn + s.swapOut }

// Close marks the end of the arrival stream: once the queue, the running
// batch and any in-flight swaps drain, the scheduler process exits and the
// replica's Result is final. Must be called from engine context, at or
// after the last Submit.
func (s *Scheduler) Close() {
	s.closed = true
	s.notify()
}

// Drain begins graceful retirement of the replica: it stops admitting,
// removes every request that was never admitted from the waiting queue and
// returns those requests so the caller can re-route them to surviving
// replicas (their Arrival timestamps are preserved, so queueing delay is
// still charged from the original arrival). Residents — running requests,
// preempted resumes holding or swapping KV, and decode handoffs already
// accepted — stay and run to completion, after which the replica retires
// exactly like a closed one (Done becomes true; the onRetired hook fires).
// A decode replica with KV handoffs still on the wire keeps accepting
// those specific transfers and closes when the last one lands; new
// placements must stop at Drain time (Submit panics on a draining
// replica). Must be called from engine context. Draining an already
// closed or draining replica panics — that is a driver bug.
func (s *Scheduler) Drain() []Request {
	if s.closed || s.draining {
		panic("serve: Drain on an already closed or draining replica")
	}
	s.draining = true
	var handoff []Request
	keep := s.waiting[:0]
	for _, rs := range s.waiting {
		if rs.admitted {
			// A resident mid-lifecycle (recompute resume, swap victim, or an
			// accepted decode handoff): its paid-for work stays here.
			keep = append(keep, rs)
			continue
		}
		handoff = append(handoff, rs.req)
		if s.role == rolePrefill {
			s.inflight -= int64(rs.req.PromptLen)
		} else {
			s.inflight -= int64(rs.req.PromptLen + rs.req.OutputLen)
		}
	}
	for i := len(keep); i < len(s.waiting); i++ {
		s.waiting[i] = nil
	}
	s.waiting = keep
	if s.pending == 0 {
		s.closed = true
	}
	s.notify()
	return handoff
}

// Draining reports whether Drain has been called on the replica.
func (s *Scheduler) Draining() bool { return s.draining }

// InFlightTokens is the replica's outstanding work: prompt + output tokens
// of every submitted request, minus tokens already processed, plus work
// already committed to this replica whose KV handoff is still on the wire
// (reservePending). This is the join-shortest-queue load signal —
// token-weighted, so one 8K-prompt request counts for more than ten chat
// turns, and handoff-aware, so a burst of prefill completions does not
// pile onto one decode replica just because its transfers have not landed
// yet.
func (s *Scheduler) InFlightTokens() int64 { return s.inflight + s.pending }

// reservePending adjusts the replica's committed-but-not-yet-delivered
// load by delta tokens. The disaggregation driver adds a request's decode
// work at placement time — the instant DecodePolicy picks this replica —
// and subtracts it again when the KV handoff completes and SubmitPrefilled
// moves the same tokens into the live in-flight count, so InFlightTokens
// never double-counts and never goes blind during a transfer.
func (s *Scheduler) reservePending(delta int64) { s.pending += delta }

// QueuedRequests is the number of requests waiting for admission.
func (s *Scheduler) QueuedRequests() int { return len(s.waiting) }

// GPUBusy is the cumulative compute+comm time booked on the replica's
// observe-only gpu resource so far — the utilization signal the autoscale
// control loop differences between samples.
func (s *Scheduler) GPUBusy() sim.Duration { return s.gpu.BusyTime() }

// ActiveRequests is the number of requests resident in the running batch.
func (s *Scheduler) ActiveRequests() int { return len(s.active) }

// HasPrefix reports whether the replica has already prefilled (and so
// notionally caches) the shared prefix of the given group.
func (s *Scheduler) HasPrefix(group uint64) bool { return s.prefixSeen[group] }

// Result returns the replica's metrics. Only complete after the engine has
// drained (every submitted request finished and Close was called). The
// result carries a fresh Counters snapshot taken at this call.
func (s *Scheduler) Result() *Result {
	s.res.Counters = s.Counters()
	return s.res
}

// Counters snapshots the replica's named resource counters: the
// observe-only gpu iteration resource (reservations = priced iterations,
// busy = compute+comm time, idle = waiting on arrivals or KV frees); for
// MoE models the moe-dispatch/moe-combine groups (the expert-parallel
// all-to-all share of each iteration); and, under paged KV, the per-GPU
// swap lanes with their queue-delay and depth accounting. This is the
// serve layer's counter registration for per-scenario "where did the time
// go" reports.
func (s *Scheduler) Counters() []sim.CounterGroup {
	groups := []sim.CounterGroup{sim.Group("gpu", s.gpu)}
	if s.dispatch != nil {
		groups = append(groups,
			sim.Group("moe-dispatch", s.dispatch),
			sim.Group("moe-combine", s.combine))
	}
	if s.swapper != nil {
		groups = append(groups, s.swapper.Counters())
	}
	return groups
}

// notify wakes the scheduling loop after a state change that may unblock
// it: an arrival, a KV release, a landed swap. Under DriverProc it is a
// Cond broadcast; under DriverCallback it schedules a same-instant wake
// event with the same dedup discipline (at most one pending wake, no-op
// while the loop is mid-iteration or done — exactly the cases where the
// Proc driver's cond has no waiter).
func (s *Scheduler) notify() {
	if s.cfg.Driver == DriverProc {
		s.arrived.Broadcast()
		return
	}
	if s.kicked || s.state == drvRunning || s.state == drvDone {
		return
	}
	s.kicked = true
	s.eng.At(s.eng.Now(), s.onKick)
}

// onKick is the callback driver's wake event: re-evaluate the parked
// state's predicate (the same predicates the Proc driver hands to
// Cond.Wait) and resume driving if it holds.
func (s *Scheduler) onKick() {
	s.kicked = false
	switch s.state {
	case drvIdle:
		if s.wakePred() {
			s.drive()
		}
	case drvStalled:
		if s.stallPred() {
			s.drive()
		}
	}
}

// wakePred is the idle-parking predicate: something resident, an
// admissible candidate, or closed-and-drained (time to exit).
func (s *Scheduler) wakePred() bool {
	return len(s.active) > 0 || s.nextAdmissible() ||
		(s.closed && len(s.waiting) == 0 && s.transit() == 0)
}

// stallPred is the stalled-parking predicate: blocks came free, or every
// in-flight swap landed (so stalls can be re-resolved either way).
func (s *Scheduler) stallPred() bool {
	return s.pager.FreeBlocks() > 0 || s.transit() == 0
}

// drained reports the exit condition: closed with nothing resident,
// queued or in transit.
func (s *Scheduler) drained() bool {
	return len(s.active) == 0 && len(s.waiting) == 0 && s.transit() == 0
}

// finish records the terminal state once the replica has drained.
func (s *Scheduler) finish() {
	s.state = drvDone
	if s.hasReq {
		s.res.Makespan = s.lastDone - s.firstArr
	}
	if s.onRetired != nil {
		s.onRetired(s.eng.Now())
	}
}

// Done reports whether the replica has fully drained (Close called, every
// request completed, no transfers in flight). The drivers check it after
// the engine drains — the callback scheduler's replacement for the
// blocked-Proc deadlock detection.
func (s *Scheduler) Done() bool { return s.state == drvDone }

// drive is the callback driver's scheduling loop: the exact decision
// sequence of the Proc driver's loop/iterate, with the two Cond waits
// replaced by parked states and the iteration sleep replaced by a
// scheduled completion event (iterEnd). It runs inside an engine event
// (a wake kick or an iteration completion) and returns whenever the
// replica parks, starts a priced iteration, or exits.
func (s *Scheduler) drive() {
	s.state = drvRunning
	for {
		if len(s.active) == 0 {
			if !s.wakePred() {
				s.state = drvIdle
				return
			}
			if s.drained() {
				s.finish()
				return
			}
		}
		now := s.eng.Now()
		dur, verdict := s.formIteration(now)
		switch verdict {
		case iterIdle:
			continue
		case iterStalled:
			if !s.stallPred() {
				s.state = drvStalled
				return
			}
			continue
		}
		s.eng.At(now+dur, s.iterEnd)
		return
	}
}

// iterEnd is the completion event of a priced iteration: apply its
// effects at the completion time, then continue driving.
func (s *Scheduler) iterEnd() {
	s.completeIteration(s.eng.Now())
	s.drive()
}

// loop is the DriverProc scheduler process body: admit, form a batch,
// price it, sleep, apply effects; park when idle; exit when closed and
// drained. It shares formIteration/completeIteration with the callback
// driver — the only difference is how the loop blocks.
func (s *Scheduler) loop(p *sim.Proc) {
	for {
		if len(s.active) == 0 {
			// Park until something can make progress: a swap-in landed in
			// the batch, the next admission candidate fits, or the stream
			// is closed and fully drained (including swap transit).
			p.Wait(s.arrived, "waiting for arrivals", s.wakePred)
			if s.drained() {
				// Pred held with nothing resident: closed and fully drained.
				break
			}
		}
		dur, verdict := s.formIteration(p.Now())
		switch verdict {
		case iterIdle:
			continue
		case iterStalled:
			// Every resident decoder is stalled on KV frees still in
			// flight; park until a swap-out lands rather than spinning
			// empty iterations at the scheduler overhead.
			p.Wait(s.arrived, "stalled on kv frees", s.stallPred)
			continue
		}
		p.Sleep(dur)
		s.completeIteration(p.Now())
	}
	s.finish()
}

// moreImportant orders resident requests for victim selection: strict
// effective priority, then earliest arrival, then submit order. Victims
// are taken from the unimportant end — lowest class, latest arrival —
// which is also the request whose eviction wastes the least paid-for work
// under FIFO admission.
func (s *Scheduler) moreImportant(a, b *reqState, now sim.Time) bool {
	pa, pb := s.effPrio(a, now), s.effPrio(b, now)
	if pa != pb {
		return pa < pb
	}
	if a.req.Arrival != b.req.Arrival {
		return a.req.Arrival < b.req.Arrival
	}
	return a.seq < b.seq
}

// preempt evicts rs from the running batch at `now`. The recompute-or-swap
// choice compares closed-form costs under PreemptAuto: re-prefilling the
// resident context (one request, batch of 1) against one swap-out plus one
// swap-in of the resident KV shard over uncontended copy engines. Decode-
// pool replicas always swap — they cannot run prefill. The caller removes
// rs from s.active. Returns true when the victim's blocks were freed
// immediately (recompute); a swap victim's blocks free only when the
// copy engines finish reading them out.
func (s *Scheduler) preempt(rs *reqState, now sim.Time) bool {
	resident := rs.kvTokens()
	var recompute sim.Duration
	if resident > 0 {
		if s.cfg.Model.MoE != nil {
			recompute = inference.MoEPrefillStep(s.cfg.Env, s.cfg.Model, 1, resident, s.cfg.AR, s.cfg.A2A).Total
		} else {
			recompute = inference.PrefillStep(s.cfg.Env, s.cfg.Model, 1, resident, s.cfg.AR)
		}
	}
	shard := s.cfg.Model.KVShardBytes(resident)
	swapCost := 2 * s.swapper.Cost(shard)
	mode := s.cfg.Preempt
	if s.role == roleDecode {
		mode = PreemptSwap
	} else if mode == PreemptAuto {
		if swapCost < recompute {
			mode = PreemptSwap
		} else {
			mode = PreemptRecompute
		}
	}
	rs.preempts++
	s.res.Preemptions++
	ev := PreemptEvent{
		TimeNs:          now,
		RequestID:       rs.req.ID,
		ResidentTokens:  resident,
		RecomputeCostNs: recompute,
		SwapCostNs:      swapCost,
	}
	if mode == PreemptRecompute {
		ev.Mode = "recompute"
		s.res.Preempts = append(s.res.Preempts, ev)
		s.res.Recomputes++
		s.freeBlocks(rs)
		// The tokens of the resident context must be re-processed: fold the
		// generated tokens into the effective prompt and restart prefill.
		s.inflight += int64(rs.prefillDone + rs.generated - rs.replay)
		rs.replay = rs.generated
		rs.prefillDone = 0
		s.waiting = append(s.waiting, rs)
		return true
	}
	ev.Mode = "swap"
	s.res.Preempts = append(s.res.Preempts, ev)
	s.res.Swaps++
	wire := shard * int64(s.cfg.Env.TotalGPUs())
	rs.swapBytes += wire
	s.res.SwapBytes += wire
	end := s.swapper.Transfer(now, shard)
	rs.swapped = true
	s.swapOut++
	s.freeSoon += len(rs.blocks)
	// The victim's blocks stay allocated until the copy engines have read
	// them out; only then does it rejoin the waiting queue.
	s.eng.At(end, func() {
		s.swapOut--
		s.freeSoon -= len(rs.blocks)
		s.freeBlocks(rs)
		s.waiting = append(s.waiting, rs)
		s.notify()
	})
	return false
}

// growDecoders is the paged-mode growth pass: every running decoder must
// cover its next token's KV block before the iteration is formed. Requests
// are served in importance order; when the pager runs dry the least-
// important resident request is preempted (possibly the grower itself,
// vLLM-style, in which case it stops growing and leaves the batch).
//
// Swap evictions free their blocks only when the copy engines finish, so
// a grower whose deficit is already covered by in-flight swap-outs stalls
// for this iteration instead of cascade-evicting the whole batch — without
// that, a full pool of swap victims thrashes out and back in forever with
// zero tokens of forward progress. Returns true when any request was
// preempted or stalled; the caller must then skip new admission so the
// blocks coming free go to resident decoders, not to re-admitting the
// victims that just vacated them.
func (s *Scheduler) growDecoders(now sim.Time) bool {
	order := make([]*reqState, len(s.active))
	copy(order, s.active)
	sort.SliceStable(order, func(i, j int) bool { return s.moreImportant(order[i], order[j], now) })
	var evicted map[*reqState]bool
	stalls := 0
	pending := s.freeSoon // blocks already on their way back to the pool
	j := len(order) - 1
	for i := 0; i < len(order); i++ {
		rs := order[i]
		if evicted[rs] || rs.prefillDone < rs.prompt() || rs.generated >= rs.req.OutputLen {
			continue
		}
		rs.stalled = false
		for !s.ensureBlocks(rs, rs.kvTokens()+1) {
			if pending >= s.pager.BlocksFor(rs.kvTokens()+1)-len(rs.blocks) {
				// In-flight frees cover the deficit: sit this iteration out.
				rs.stalled = true
				stalls++
				break
			}
			for j > i && evicted[order[j]] {
				j--
			}
			if evicted == nil {
				evicted = make(map[*reqState]bool)
			}
			if j <= i {
				// No less-important victim remains. If frees are in flight,
				// stall; otherwise the grower evicts itself, vLLM-style.
				if pending > 0 {
					rs.stalled = true
					stalls++
				} else {
					if !s.preempt(rs, now) {
						pending += len(rs.blocks)
					}
					evicted[rs] = true
				}
				break
			}
			victim := order[j]
			j--
			evicted[victim] = true
			if !s.preempt(victim, now) {
				pending += len(victim.blocks)
			}
		}
	}
	if len(evicted) > 0 {
		keep := s.active[:0]
		for _, rs := range s.active {
			if !evicted[rs] {
				keep = append(keep, rs)
			}
		}
		s.active = keep
	}
	return len(evicted) > 0 || stalls > 0
}

// iterVerdict is formIteration's outcome: run a priced iteration, or one
// of the two park conditions the drivers express differently.
type iterVerdict int

const (
	iterRun     iterVerdict = iota // a priced batch formed; sleep dur, then complete
	iterIdle                       // growth evicted everything; park for arrivals
	iterStalled                    // all residents stalled on in-flight KV frees
)

// formIteration runs one iteration's decision phase at `now`: admission,
// paged growth/preemption, batch formation and pricing. The formed plan
// (prefill shares, decoders) is stored on the Scheduler for
// completeIteration to apply; the returned duration is only meaningful
// for iterRun.
func (s *Scheduler) formIteration(now sim.Time) (sim.Duration, iterVerdict) {
	c := &s.cfg

	// Paged growth runs before admission: every decoder's next-token block
	// must exist before the batch is formed, and resident decoders outrank
	// the waiting queue for blocks. On an iteration that preempted or
	// stalled, admission is skipped entirely — otherwise the freed blocks
	// would be re-granted to the just-evicted victims and the pool would
	// thrash in place instead of letting the batch shrink and drain.
	disturbed := false
	if s.pager != nil && len(s.active) > 0 {
		disturbed = s.growDecoders(now)
	}

	// Admission: the configured order while the batch bound and the KV
	// budget allow. Head-of-line blocking on KV is intentional — admitting
	// smaller requests around a stuck candidate would starve long prompts.
	// In-flight swap-ins count toward the batch bound; they are already
	// committed residents.
	for !disturbed && len(s.waiting) > 0 && len(s.active)+s.swapIn < c.MaxBatch {
		idx := s.pickWaiting(now)
		head := s.waiting[idx]
		if !s.canAdmit(head) {
			break
		}
		s.waiting = append(s.waiting[:idx], s.waiting[idx+1:]...)
		if s.pager != nil {
			if !s.ensureBlocks(head, s.admitTokens(head)) {
				panic(fmt.Sprintf("serve: request %d lost KV blocks admission just checked", head.req.ID))
			}
		} else {
			head.kvReserved = s.kvNeed(head.req)
			s.kvUsed += head.kvReserved
		}
		if head.swapped {
			// Re-admission of a swapped-out victim: its resident KV pages
			// back in over the copy engines; it rejoins the batch when the
			// transfer lands.
			s.swapInStart(head, now)
			continue
		}
		if s.role == roleDecode {
			// The request was admitted (and prefilled) on the prefill pool;
			// record when the decode pool first let its handoff into a batch.
			if !head.decodeAdmited {
				head.decodeAdmit = now
				head.decodeAdmited = true
			}
		} else if !head.admitted {
			head.admitAt = now
			head.admitted = true
		}
		// KV prefix reuse: a replica that has already prefilled this
		// request's shared prefix (prefixSeen is set at prefill completion,
		// so the discount is only granted for KV that actually exists)
		// skips those prompt tokens, but at least one token always goes
		// through prefill so the first-token event stays well-defined. The
		// KV footprint stays at the full prompt — conservative, like the
		// rest of the admission policy. Decode replicas never prefill, so
		// the discount (which rewinds prefillDone) must not apply there;
		// neither does it apply to resumed requests mid-lifecycle.
		if g := head.req.PrefixGroup; s.role != roleDecode && g != 0 && head.req.PrefixLen > 0 && s.prefixSeen[g] &&
			head.prefillDone == 0 && head.generated == 0 && head.replay == 0 {
			d := head.req.PrefixLen
			if d > head.req.PromptLen-1 {
				d = head.req.PromptLen - 1
			}
			head.prefillDone = d
			head.prefixHit = true
			s.inflight -= int64(d)
		}
		s.active = append(s.active, head)
	}

	// Form the iteration: a chunked-prefill token budget spread FIFO
	// over admitted-but-unprefilled requests, plus one decode token
	// for every running sequence. The plan slices are reused across
	// iterations, so steady-state batch formation allocates nothing.
	chunkLeft := c.ChunkTokens
	s.prefills = s.prefills[:0]
	s.decoders = s.decoders[:0]
	s.decodeCtx = 0
	for _, rs := range s.active {
		if rs.prefillDone < rs.prompt() {
			if chunkLeft > 0 {
				tok := rs.prompt() - rs.prefillDone
				if tok > chunkLeft {
					tok = chunkLeft
				}
				s.prefills = append(s.prefills, prefillShare{rs, tok})
				chunkLeft -= tok
			}
		} else if rs.generated < rs.req.OutputLen && !rs.stalled {
			s.decoders = append(s.decoders, rs)
			s.decodeCtx += int64(rs.prompt() + rs.generated - rs.replay)
		}
	}

	if len(s.prefills) == 0 && len(s.decoders) == 0 {
		if len(s.active) == 0 {
			// Growth evicted everything; the driver parks until the
			// evictions land or new work arrives.
			return 0, iterIdle
		}
		// Every resident decoder is stalled on KV frees still in flight;
		// the driver parks until a swap-out lands rather than spinning
		// empty iterations at the scheduler overhead.
		return 0, iterStalled
	}

	// Price the iteration. Prefill and decode execute back to back
	// within one engine step (the non-fused form of chunked prefill);
	// each side pays its own roofline + TP-communication cost. An MoE
	// model additionally pays per MoE layer a dispatch+combine all-to-all
	// at the phase's token count, with the routed-expert compute scaled by
	// the routing's load factor.
	dur := c.SchedOverhead
	s.chunkTok = c.ChunkTokens - chunkLeft
	var disp, comb sim.Duration
	if s.chunkTok > 0 {
		if c.Model.MoE != nil {
			st := inference.MoEPrefillStep(c.Env, c.Model, 1, s.chunkTok, c.AR, c.A2A)
			dur += st.Total
			disp += st.Dispatch
			comb += st.Combine
		} else {
			dur += inference.PrefillStep(c.Env, c.Model, 1, s.chunkTok, c.AR)
		}
	}
	if len(s.decoders) > 0 {
		if c.Model.MoE != nil {
			st := inference.MoEDecodeStepCtx(c.Env, c.Model, len(s.decoders), s.decodeCtx, c.AR, c.A2A)
			dur += st.Total
			disp += st.Dispatch
			comb += st.Combine
		} else {
			dur += inference.DecodeStepCtx(c.Env, c.Model, len(s.decoders), s.decodeCtx, c.AR)
		}
	}
	// Book the iteration on the observe-only gpu resource: its counters
	// become the replica's "where did the time go" row (busy = priced
	// iterations, idle gaps = waiting on arrivals or KV frees). MoE
	// iterations additionally book their all-to-all shares so the counter
	// report splits out fabric time from roofline time.
	s.gpu.Reserve(now, dur)
	if s.dispatch != nil && disp > 0 {
		s.dispatch.Reserve(now, disp)
	}
	if s.combine != nil && comb > 0 {
		s.combine.Reserve(now, comb)
	}
	return dur, iterRun
}

// completeIteration applies a formed iteration's effects at its completion
// time `end`: prefill progress, token emission, handoffs, completions and
// batch compaction.
func (s *Scheduler) completeIteration(end sim.Time) {
	s.res.Iterations++

	// Apply the iteration's effects at its completion time.
	for _, ps := range s.prefills {
		ps.rs.prefillDone += ps.tok
		s.inflight -= int64(ps.tok)
		if ps.rs.prefillDone == ps.rs.prompt() {
			if ps.rs.generated == 0 {
				// Prefill completion emits the first output token, and only
				// now is the request's shared prefix KV resident — requests of
				// the same group admitted earlier (e.g. within one burst) paid
				// full prefill, as they would have on real hardware.
				ps.rs.generated = 1
				ps.rs.firstTok = end
			} else {
				// Recompute replay: the re-prefill's forward pass emits the
				// next output token, exactly like the original prefill did.
				ps.rs.generated++
			}
			if s.role != rolePrefill {
				// Prefill replicas never counted output tokens as load.
				s.inflight--
			}
			if g := ps.rs.req.PrefixGroup; g != 0 {
				s.prefixSeen[g] = true
			}
		}
	}
	for _, rs := range s.decoders {
		rs.generated++
		s.inflight--
	}
	keep := s.active[:0]
	for _, rs := range s.active {
		switch {
		case s.role == rolePrefill && rs.prefillDone == rs.prompt() && rs.req.OutputLen > 1:
			// Prefill done: the request leaves this replica, but its prompt
			// KV stays resident until the fabric handoff completes (the
			// driver calls release at the transfer's end time). The
			// per-request record is written by the decode replica that
			// finishes the request.
			s.lastDone = end
			if s.onPrefilled != nil {
				pinned := rs
				s.onPrefilled(Prefilled{
					Req:        rs.req,
					Admitted:   rs.admitAt,
					FirstToken: rs.firstTok,
					PrefixHit:  rs.prefixHit,
				}, end, func() {
					if s.pager != nil {
						s.freeBlocks(pinned)
					} else {
						s.releaseKV(pinned.kvReserved)
					}
				})
			}
		case rs.generated >= rs.req.OutputLen && rs.prefillDone == rs.prompt():
			// Complete. On a prefill replica this is the one-token case:
			// the single output token came from prefill, no decode phase
			// exists, so the request never visits the decode pool.
			if s.pager != nil {
				s.freeBlocks(rs)
			} else {
				s.kvUsed -= rs.kvReserved
			}
			s.lastDone = end
			s.record(RequestMetrics{
				ID:             rs.req.ID,
				PromptLen:      rs.req.PromptLen,
				OutputLen:      rs.req.OutputLen,
				Priority:       rs.req.Priority,
				Arrival:        rs.req.Arrival,
				Admitted:       rs.admitAt,
				FirstToken:     rs.firstTok,
				Done:           end,
				PrefixHit:      rs.prefixHit,
				Preemptions:    rs.preempts,
				SwapBytes:      rs.swapBytes,
				DecodeAdmitted: rs.decodeAdmit,
				KVHandoffBytes: rs.handoffBytes,
				HandoffNs:      rs.handoffDur,
			})
		default:
			keep = append(keep, rs)
		}
	}
	s.active = keep
}

// record captures one completed request's lifecycle row: retained under
// MetricsExact, folded into the streaming accumulators (and discarded)
// under MetricsStream.
func (s *Scheduler) record(m RequestMetrics) {
	if s.stream != nil {
		s.stream.observe(m)
		return
	}
	s.res.PerRequest = append(s.res.PerRequest, m)
}

// swapInStart begins paging a re-admitted victim's resident KV back onto
// the replica. Its blocks are already allocated; the request rejoins the
// running batch when the last lane's transfer lands.
func (s *Scheduler) swapInStart(rs *reqState, now sim.Time) {
	shard := s.cfg.Model.KVShardBytes(rs.kvTokens())
	wire := shard * int64(s.cfg.Env.TotalGPUs())
	rs.swapBytes += wire
	s.res.SwapBytes += wire
	end := s.swapper.Transfer(now, shard)
	s.swapIn++
	s.eng.At(end, func() {
		s.swapIn--
		rs.swapped = false
		s.active = append(s.active, rs)
		s.notify()
	})
}

// Run replays the workload against a single replica and returns its
// per-request metrics. It builds a fresh discrete-event engine, schedules
// every arrival as an engine event, and runs the scheduler process until
// the last request completes. Requests the config can never admit are
// recorded as Rejected rows (appended after the completed requests)
// instead of failing the run.
func Run(cfg Config, wl Workload) (*Result, error) {
	c, admitted, rejected, err := prepare(cfg, wl)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	s, err := NewScheduler(eng, "serve-scheduler", cfg)
	if err != nil {
		return nil, err
	}
	s.res.Workload = wl.Name
	if c.Metrics == MetricsExact {
		s.res.PerRequest = make([]RequestMetrics, 0, len(admitted.Requests))
	}
	var last sim.Time
	for _, r := range admitted.Requests {
		req := r
		eng.At(req.Arrival, func() { s.Submit(req) })
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	eng.At(last, s.Close)
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := checkDrained(s); err != nil {
		return nil, err
	}
	res := s.Result()
	res.Rejected += len(rejected)
	if s.stream != nil {
		for _, m := range rejected {
			s.stream.addRejected(m.Priority)
		}
	} else {
		res.PerRequest = append(res.PerRequest, rejected...)
	}
	return res, nil
}

// checkDrained verifies every scheduler exited cleanly once the engine
// drained. Under DriverProc a stuck replica surfaces as the engine's
// blocked-Proc DeadlockError; the callback driver has no goroutine to
// detect, so the drivers assert the terminal state explicitly instead.
func checkDrained(ss ...*Scheduler) error {
	for _, s := range ss {
		if s.cfg.Driver == DriverProc || s.Done() {
			continue
		}
		return fmt.Errorf("serve: engine drained but a scheduler never finished "+
			"(%d active, %d waiting, %d in transit, closed=%v)",
			len(s.active), len(s.waiting), s.transit(), s.closed)
	}
	return nil
}
