package serve

// The continuous-batching scheduler: a sim.Proc that admits arriving
// requests into a bounded running batch, interleaves chunked prefill with
// decode in each engine iteration (vLLM-style token-budgeted batching), and
// gates admission on a per-GPU KV-cache capacity. Each iteration's virtual
// duration comes from the internal/inference roofline + simulated-collective
// step models, so serving metrics inherit the calibrated communication
// behavior of the underlying cluster model.

import (
	"fmt"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Config parameterizes one serving simulation.
type Config struct {
	Env   *topology.Env
	Model inference.Model
	// AR times one tensor-parallel AllReduce at a message size (usually an
	// inference.ARTimer's Time method; must be safe for reuse).
	AR func(int64) sim.Duration

	// MaxBatch bounds how many requests may be resident (prefilling or
	// decoding) at once. Defaults to 32.
	MaxBatch int
	// KVCapacityBytes is the per-GPU KV-cache budget. Admission reserves a
	// request's full footprint (prompt + output tokens) up front and releases
	// it at completion — the conservative reservation discipline, which can
	// never need preemption. Defaults to 8 GiB.
	KVCapacityBytes int64
	// ChunkTokens is the prefill token budget per engine iteration (chunked
	// prefill); long prompts are spread over several iterations so decode
	// latency stays bounded. Defaults to 512.
	ChunkTokens int
	// SchedOverhead is the fixed per-iteration scheduler/runtime cost
	// (batch formation, kernel dispatch glue). Defaults to 100 us, the
	// order of a Python-level serving engine's iteration overhead.
	SchedOverhead sim.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBatch == 0 {
		out.MaxBatch = 32
	}
	if out.KVCapacityBytes == 0 {
		out.KVCapacityBytes = 8 << 30
	}
	if out.ChunkTokens == 0 {
		out.ChunkTokens = 512
	}
	if out.SchedOverhead == 0 {
		out.SchedOverhead = 100 * sim.Microsecond
	}
	return out
}

func (c *Config) validate() error {
	switch {
	case c.Env == nil:
		return fmt.Errorf("serve: Config.Env is nil")
	case c.AR == nil:
		return fmt.Errorf("serve: Config.AR is nil")
	case c.MaxBatch < 1:
		return fmt.Errorf("serve: MaxBatch = %d", c.MaxBatch)
	case c.KVCapacityBytes < 1:
		return fmt.Errorf("serve: KVCapacityBytes = %d", c.KVCapacityBytes)
	case c.ChunkTokens < 1:
		return fmt.Errorf("serve: ChunkTokens = %d", c.ChunkTokens)
	case c.SchedOverhead < 0:
		return fmt.Errorf("serve: SchedOverhead = %d", c.SchedOverhead)
	}
	return nil
}

// reqState tracks one admitted request through prefill and decode.
type reqState struct {
	req         Request
	prefillDone int      // prompt tokens processed so far
	generated   int      // output tokens produced (1st at prefill completion)
	kvReserved  int64    // bytes reserved against the KV budget
	admitAt     sim.Time // when admission succeeded
	firstTok    sim.Time // when the first output token appeared
}

// Run replays the workload against the configured serving engine and
// returns per-request metrics. It builds a fresh discrete-event engine,
// schedules every arrival as an engine event, and runs the scheduler
// process until the last request completes.
func Run(cfg Config, wl Workload) (*Result, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	kvPerTok := c.Model.KVBytesPerTokenPerGPU
	if kvPerTok < 1 {
		return nil, fmt.Errorf("serve: model %s has KVBytesPerTokenPerGPU = %d", c.Model.Name, kvPerTok)
	}
	for _, r := range wl.Requests {
		if r.PromptLen < 1 || r.OutputLen < 1 {
			return nil, fmt.Errorf("serve: request %d has prompt %d / output %d tokens", r.ID, r.PromptLen, r.OutputLen)
		}
		if need := int64(r.PromptLen+r.OutputLen) * kvPerTok; need > c.KVCapacityBytes {
			return nil, fmt.Errorf("serve: request %d needs %d KV bytes, capacity %d — it can never be admitted",
				r.ID, need, c.KVCapacityBytes)
		}
	}

	eng := sim.NewEngine()
	arrived := sim.NewCond(eng)
	var waiting []*reqState // FIFO arrival order
	for _, r := range wl.Requests {
		req := r
		eng.At(req.Arrival, func() {
			waiting = append(waiting, &reqState{req: req})
			arrived.Broadcast()
		})
	}

	res := &Result{
		Workload:   wl.Name,
		PerRequest: make([]RequestMetrics, 0, len(wl.Requests)),
	}
	var kvUsed int64
	var active []*reqState // admission order; resident in the engine
	completed := 0
	total := len(wl.Requests)

	sched := func(p *sim.Proc) {
		for completed < total {
			if len(active) == 0 {
				p.Wait(arrived, "waiting for arrivals", func() bool { return len(waiting) > 0 })
			}
			// Admission: FIFO while the batch bound and the KV budget allow.
			// Head-of-line blocking on KV is intentional — admitting smaller
			// requests around a stuck head would starve long prompts.
			for len(waiting) > 0 && len(active) < c.MaxBatch {
				head := waiting[0]
				need := int64(head.req.PromptLen+head.req.OutputLen) * kvPerTok
				if kvUsed+need > c.KVCapacityBytes {
					break
				}
				waiting = waiting[1:]
				head.kvReserved = need
				kvUsed += need
				head.admitAt = p.Now()
				active = append(active, head)
			}

			// Form the iteration: a chunked-prefill token budget spread FIFO
			// over admitted-but-unprefilled requests, plus one decode token
			// for every running sequence.
			chunkLeft := c.ChunkTokens
			type prefillShare struct {
				rs  *reqState
				tok int
			}
			var prefills []prefillShare
			var decoders []*reqState
			var decodeCtx int64
			for _, rs := range active {
				if rs.prefillDone < rs.req.PromptLen {
					if chunkLeft > 0 {
						tok := rs.req.PromptLen - rs.prefillDone
						if tok > chunkLeft {
							tok = chunkLeft
						}
						prefills = append(prefills, prefillShare{rs, tok})
						chunkLeft -= tok
					}
				} else if rs.generated < rs.req.OutputLen {
					decoders = append(decoders, rs)
					decodeCtx += int64(rs.req.PromptLen + rs.generated)
				}
			}

			// Price the iteration. Prefill and decode execute back to back
			// within one engine step (the non-fused form of chunked prefill);
			// each side pays its own roofline + TP-communication cost.
			dur := c.SchedOverhead
			chunkTok := c.ChunkTokens - chunkLeft
			if chunkTok > 0 {
				dur += inference.PrefillStep(c.Env, c.Model, 1, chunkTok, c.AR)
			}
			if len(decoders) > 0 {
				dur += inference.DecodeStepCtx(c.Env, c.Model, len(decoders), decodeCtx, c.AR)
			}
			p.Sleep(dur)
			end := p.Now()
			res.Iterations++

			// Apply the iteration's effects at its completion time.
			for _, ps := range prefills {
				ps.rs.prefillDone += ps.tok
				if ps.rs.prefillDone == ps.rs.req.PromptLen {
					// Prefill completion emits the first output token.
					ps.rs.generated = 1
					ps.rs.firstTok = end
				}
			}
			for _, rs := range decoders {
				rs.generated++
			}
			keep := active[:0]
			for _, rs := range active {
				if rs.generated >= rs.req.OutputLen && rs.prefillDone == rs.req.PromptLen {
					kvUsed -= rs.kvReserved
					completed++
					res.PerRequest = append(res.PerRequest, RequestMetrics{
						ID:         rs.req.ID,
						PromptLen:  rs.req.PromptLen,
						OutputLen:  rs.req.OutputLen,
						Arrival:    rs.req.Arrival,
						Admitted:   rs.admitAt,
						FirstToken: rs.firstTok,
						Done:       end,
					})
				} else {
					keep = append(keep, rs)
				}
			}
			active = keep
		}
	}
	eng.Spawn("serve-scheduler", sched)
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if len(wl.Requests) > 0 {
		res.Makespan = eng.Now() - wl.Requests[0].Arrival
	}
	return res, nil
}
