package serve

// The multi-replica router: N independent replica engines — each a full
// continuous-batching Scheduler over its own simulated cluster — behind an
// arrival-splitting routing policy, all inside one discrete-event engine.
// This is the layer where cluster-scale serving is decided: at equal
// offered load, tail latency and goodput are set by how arrivals are
// split, not just by how fast one replica's kernels and collectives run.
//
// Everything stays deterministic: arrivals are engine events in workload
// order, each policy decision is a pure function of the engine state at
// the arrival instant, and replica event interleavings follow the
// engine's total (time, FIFO) order — so routed results are bit-stable
// and golden-gated like every other artifact.

import (
	"fmt"

	"mscclpp/internal/sim"
)

// RouterConfig parameterizes a routed multi-replica simulation.
type RouterConfig struct {
	// Replicas is the number of independent replica engines. Must be >= 1.
	Replicas int
	// Policy splits arrivals across replicas. Defaults to round-robin.
	// The instance must be fresh (policies carry routing state).
	Policy Policy
	// Replica configures every replica engine; each gets its own
	// Scheduler, KV budget and metrics over this shared configuration.
	Replica Config
}

// RoutedResult is the outcome of one routed simulation: the per-replica
// results in replica order, and their merge (MergeResults) as the
// cluster-level view.
type RoutedResult struct {
	Policy     string    `json:"policy"`
	PerReplica []*Result `json:"per_replica"`
	Merged     *Result   `json:"merged"`
}

// Summarize aggregates the cluster-level (merged) result under an SLO.
func (r *RoutedResult) Summarize(slo SLO) Summary { return r.Merged.Summarize(slo) }

// RunRouted replays the workload against Replicas independent replica
// engines behind the routing policy and returns per-replica and merged
// metrics. Each arrival is an engine event that asks the policy for a
// replica index (with every replica's live queue state visible) and
// submits the request there; replicas then run their continuous-batching
// schedules side by side in one virtual timeline.
func RunRouted(rc RouterConfig, wl Workload) (*RoutedResult, error) {
	if rc.Replicas < 1 {
		return nil, fmt.Errorf("serve: RouterConfig.Replicas = %d", rc.Replicas)
	}
	pol := rc.Policy
	if pol == nil {
		pol = NewRoundRobin()
	}
	c, admitted, rejected, err := prepare(rc.Replica, wl)
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	replicas := make([]*Scheduler, rc.Replicas)
	for i := range replicas {
		s, err := NewScheduler(eng, fmt.Sprintf("replica-%d", i), rc.Replica)
		if err != nil {
			return nil, err
		}
		s.res.Workload = wl.Name
		replicas[i] = s
	}

	var last sim.Time
	for _, r := range admitted.Requests {
		req := r
		eng.At(req.Arrival, func() {
			i := pol.Pick(req, replicas)
			if i < 0 || i >= len(replicas) {
				panic(fmt.Sprintf("serve: policy %s picked replica %d of %d", pol.Name(), i, len(replicas)))
			}
			replicas[i].Submit(req)
		})
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	// The arrival stream ends at the last arrival; Close is scheduled at
	// the same instant but after every same-instant Submit (FIFO order),
	// letting each replica drain and its scheduler process exit.
	eng.At(last, func() {
		for _, s := range replicas {
			s.Close()
		}
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := checkDrained(replicas...); err != nil {
		return nil, err
	}

	out := &RoutedResult{Policy: pol.Name(), PerReplica: make([]*Result, len(replicas))}
	for i, s := range replicas {
		out.PerReplica[i] = s.Result()
	}
	// Requests no replica could ever admit were filtered by prepare; merge
	// them in as a synthetic rejected part (rows or streamed counters,
	// matching the metrics mode) so the cluster view keeps one record per
	// offered request.
	parts := append(append([]*Result{}, out.PerReplica...), rejectedPart(c, rejected))
	out.Merged = MergeResults(parts...)
	out.Merged.Workload = wl.Name
	return out, nil
}

// rejectedPart wraps prepare's up-front rejections as a mergeable Result
// in the configured metrics mode: exact rows under MetricsExact, streamed
// per-tier rejection counters under MetricsStream.
func rejectedPart(c Config, rejected []RequestMetrics) *Result {
	r := &Result{Rejected: len(rejected)}
	if c.Metrics == MetricsExact {
		r.PerRequest = rejected
		return r
	}
	r.Stream = newStreamStats(c.SLO, c.TierSLOs)
	for _, m := range rejected {
		r.Stream.addRejected(m.Priority)
	}
	return r
}
