package serve

// Table-driven edge cases for the scheduler: configurations and workloads
// at the boundaries of the admission/batching state machine. Every case
// must either complete deterministically or error up front — never hang
// the engine.

import (
	"testing"

	"mscclpp/internal/sim"
)

func TestSchedulerEdgeCases(t *testing.T) {
	perTok := testConfig().Model.KVBytesPerTokenPerGPU
	cases := []struct {
		name    string
		cfg     func(c *Config) // mutate the base config
		reqs    []Request
		wantErr bool
		check   func(t *testing.T, res *Result)
	}{
		{
			name: "kv-footprint-exceeds-capacity",
			cfg:  func(c *Config) { c.KVCapacityBytes = 100 * perTok },
			reqs: []Request{
				{Arrival: 0, PromptLen: 90, OutputLen: 20}, // 110 tokens > 100-token budget
			},
			// Rejected deterministically up front as a structured outcome,
			// never queued and never a hard error.
			check: func(t *testing.T, res *Result) {
				if res.Rejected != 1 || len(res.PerRequest) != 1 {
					t.Fatalf("want 1 rejection, got %+v", res)
				}
				m := res.PerRequest[0]
				if !m.Rejected || m.RejectedReason != "kv-capacity" || m.Done != 0 {
					t.Errorf("malformed rejection row: %+v", m)
				}
			},
		},
		{
			name: "kv-footprint-exactly-capacity",
			cfg:  func(c *Config) { c.KVCapacityBytes = 110 * perTok },
			reqs: []Request{
				{Arrival: 0, PromptLen: 90, OutputLen: 20}, // == budget: admissible
			},
			check: func(t *testing.T, res *Result) {
				if len(res.PerRequest) != 1 {
					t.Fatalf("completed %d requests, want 1", len(res.PerRequest))
				}
			},
		},
		{
			name: "max-batch-one-serializes",
			cfg:  func(c *Config) { c.MaxBatch = 1 },
			reqs: []Request{
				{Arrival: 0, PromptLen: 64, OutputLen: 4},
				{Arrival: 0, PromptLen: 64, OutputLen: 4},
			},
			check: func(t *testing.T, res *Result) {
				byID := map[int]RequestMetrics{}
				for _, m := range res.PerRequest {
					byID[m.ID] = m
				}
				if byID[1].Admitted < byID[0].Done {
					t.Errorf("request 1 admitted at %d while request 0 resident until %d", byID[1].Admitted, byID[0].Done)
				}
			},
		},
		{
			name: "prompt-below-one-chunk",
			cfg:  func(c *Config) { c.ChunkTokens = 512 },
			reqs: []Request{
				{Arrival: 0, PromptLen: 17, OutputLen: 3}, // far below the chunk budget
			},
			check: func(t *testing.T, res *Result) {
				// One prefill iteration (17 of 512 budget) + 2 decode iterations.
				if res.Iterations != 3 {
					t.Errorf("iterations = %d, want 3 (1 prefill + 2 decode)", res.Iterations)
				}
				m := res.PerRequest[0]
				if m.FirstToken <= m.Arrival || m.Done <= m.FirstToken {
					t.Errorf("inconsistent lifecycle: %+v", m)
				}
			},
		},
		{
			name: "zero-request-workload",
			reqs: nil,
			check: func(t *testing.T, res *Result) {
				if len(res.PerRequest) != 0 || res.Iterations != 0 || res.Makespan != 0 {
					t.Errorf("empty workload produced non-empty result: %+v", res)
				}
			},
		},
		{
			name: "last-arrival-after-all-others-complete",
			reqs: []Request{
				{Arrival: 0, PromptLen: 64, OutputLen: 2},
				// The engine is fully idle for ~60s before this arrives; the
				// scheduler must park and wake rather than exit or spin.
				{Arrival: 60 * sim.Second, PromptLen: 64, OutputLen: 2},
			},
			check: func(t *testing.T, res *Result) {
				byID := map[int]RequestMetrics{}
				for _, m := range res.PerRequest {
					byID[m.ID] = m
				}
				if byID[0].Done >= 60*sim.Second {
					t.Errorf("request 0 not done (%d) before the late arrival", byID[0].Done)
				}
				if byID[1].Admitted < 60*sim.Second {
					t.Errorf("request 1 admitted at %d before it arrived", byID[1].Admitted)
				}
				if res.Makespan < 60*sim.Second {
					t.Errorf("makespan %d does not span the idle gap", res.Makespan)
				}
			},
		},
		{
			name: "single-token-output-at-chunk-boundary",
			cfg:  func(c *Config) { c.ChunkTokens = 64 },
			reqs: []Request{
				{Arrival: 0, PromptLen: 64, OutputLen: 1}, // done at prefill completion
			},
			check: func(t *testing.T, res *Result) {
				m := res.PerRequest[0]
				if m.Done != m.FirstToken {
					t.Errorf("single-token request: done %d != first token %d", m.Done, m.FirstToken)
				}
				if res.Iterations != 1 {
					t.Errorf("iterations = %d, want 1", res.Iterations)
				}
			},
		},
		{
			name: "prefix-discount-never-skips-whole-prompt",
			reqs: []Request{
				// Both in group 9 with a declared prefix longer than the whole
				// prompt. The second arrives well after the first's prefill
				// completed (the prefix cache is marked resident only then),
				// and its discount must cap at PromptLen-1 so prefill (and
				// the first-token event) still happens.
				{Arrival: 0, PromptLen: 50, OutputLen: 2, PrefixGroup: 9, PrefixLen: 400},
				{Arrival: 30 * sim.Second, PromptLen: 50, OutputLen: 2, PrefixGroup: 9, PrefixLen: 400},
			},
			check: func(t *testing.T, res *Result) {
				for _, m := range res.PerRequest {
					if m.FirstToken <= m.Arrival {
						t.Errorf("request %d: first token at %d not after arrival", m.ID, m.FirstToken)
					}
				}
				hit := 0
				for _, m := range res.PerRequest {
					if m.PrefixHit {
						hit++
					}
				}
				if hit != 1 {
					t.Errorf("prefix hits = %d, want exactly 1 (second member of the group)", hit)
				}
			},
		},
		{
			name: "negative-prefix-len-rejected",
			reqs: []Request{
				{Arrival: 0, PromptLen: 8, OutputLen: 2, PrefixLen: -1},
			},
			wantErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			reqs := append([]Request(nil), tc.reqs...)
			for i := range reqs {
				reqs[i].ID = i
			}
			res, err := Run(cfg, Workload{Name: tc.name, Requests: reqs})
			if tc.wantErr {
				if err == nil {
					t.Fatal("Run accepted a workload it must reject")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(res.PerRequest) != len(reqs) {
				t.Fatalf("completed %d of %d requests", len(res.PerRequest), len(reqs))
			}
			if tc.check != nil {
				tc.check(t, res)
			}
		})
	}
}
