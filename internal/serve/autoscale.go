package serve

// SLO-driven autoscaling: a control-plane loop that runs inside the same
// discrete-event timeline as the replica fleet it scales. Every Interval
// of virtual time the loop samples fleet signals — queue depth, in-flight
// tokens, windowed gpu-counter utilization, windowed SLO attainment from
// the streaming accumulators — hands them to a pluggable ScalePolicy, and
// actuates the difference:
//
//	sample --> ScalePolicy.Desired --> clamp [Min, Max] --> actuate
//
//	scale-up:   a fresh Scheduler is provisioned now but joins the
//	            routable set only ProvisionDelay later (boot, weight
//	            load). Until then it counts as capacity-in-flight, so the
//	            policy is not asked again for replicas it already bought.
//	scale-down: capacity still provisioning is canceled first (cheapest);
//	            then the least-loaded active replica is drained — it stops
//	            admitting, hands its never-admitted queue back to the
//	            router, finishes its residents, and retires.
//
// Every decision is a pure function of engine state at the sampling
// instant, so autoscaled runs are bit-stable and golden-gated like every
// other artifact. The driver also keeps the economics ledger: each
// replica's provision-to-retire lifetime is billed at GPUHourPrice, and
// EconReport derives goodput-per-GPU-hour and cost-per-million-tokens
// from the merged (sketch-pooled) metrics.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mscclpp/internal/sim"
)

// ScaleSignals is one control-loop sample of fleet state — the only view
// of the world a ScalePolicy gets.
type ScaleSignals struct {
	// TimeNs is the sampling instant.
	TimeNs sim.Time `json:"time_ns"`
	// Active, Provisioning and Draining count replicas by lifecycle state
	// at the sampling instant (canceled provisioning slots excluded).
	Active       int `json:"active"`
	Provisioning int `json:"provisioning,omitempty"`
	Draining     int `json:"draining,omitempty"`
	// Min and Max are the fleet bounds the driver clamps decisions to;
	// policies may use them (the static baseline pins to Max).
	Min int `json:"min"`
	Max int `json:"max"`
	// QueuedRequests and InFlightTokens sum the active replicas' admission
	// queues and token-weighted outstanding work.
	QueuedRequests int   `json:"queued_requests,omitempty"`
	InFlightTokens int64 `json:"inflight_tokens,omitempty"`
	// Utilization is the active fleet's busy fraction over the window
	// since the previous sample: the gpu-counter busy-time delta divided
	// by window x active replicas. It can briefly exceed 1 because an
	// iteration books its full duration when it is formed.
	Utilization float64 `json:"utilization"`
	// Attainment is the fraction of requests completed in the window that
	// met their tier's SLO (1 when nothing completed); Completed is the
	// window's completion count.
	Attainment float64 `json:"attainment"`
	Completed  int64   `json:"completed,omitempty"`
}

// ScalePolicy maps a signal sample to the desired active-replica count.
// An instance is stateful (the PID controller integrates across samples)
// and bound to one RunAutoscaled call — construct a fresh one per run.
// The driver clamps the returned value to [Min, Max], so policies may
// return out-of-range or extreme values without breaking the fleet.
type ScalePolicy interface {
	// Name is the stable policy identifier used in reports and CLI flags.
	Name() string
	// Desired returns the replica count the policy wants active. Called in
	// engine context once per control interval; must be a deterministic
	// function of the sample sequence.
	Desired(sig ScaleSignals) int
}

// clampReplicas bounds a policy decision to a sane fleet size: min is
// floored at 1, max at min, and n is clamped into [min, max].
func clampReplicas(n, min, max int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if n < min {
		return min
	}
	if n > max {
		return max
	}
	return n
}

// staticScale holds the fleet at a fixed size.
type staticScale struct{ n int }

// NewStaticScale returns the static baseline policy: the fleet is held at
// n replicas regardless of load. With n <= 0 it pins to the fleet maximum
// — static peak provisioning, the baseline an autoscaler's GPU-hour
// savings are measured against.
func NewStaticScale(n int) ScalePolicy { return &staticScale{n: n} }

func (*staticScale) Name() string { return "static" }

func (p *staticScale) Desired(sig ScaleSignals) int {
	if p.n > 0 {
		return p.n
	}
	return sig.Max
}

// targetUtil sizes the fleet so measured utilization lands on a target.
type targetUtil struct{ target float64 }

// NewTargetUtilization returns the target-utilization policy: the fleet
// is resized so the measured busy fraction lands on the target —
// desired = ceil(active x utilization / target) — the classic
// CPU-utilization autoscaling rule applied to the gpu-counter signal.
// It never scales down while requests are queued (a backlog means the
// sampled utilization understates demand). target outside (0, 1] falls
// back to 0.70.
func NewTargetUtilization(target float64) ScalePolicy {
	if math.IsNaN(target) || target <= 0 || target > 1 {
		target = 0.70
	}
	return &targetUtil{target: target}
}

func (*targetUtil) Name() string { return "target-util" }

func (p *targetUtil) Desired(sig ScaleSignals) int {
	util := sig.Utilization
	if math.IsNaN(util) || math.IsInf(util, 0) || util < 0 {
		return sig.Active
	}
	raw := float64(sig.Active) * util / p.target
	if sig.QueuedRequests > 0 && raw < float64(sig.Active) {
		raw = float64(sig.Active)
	}
	// Bound before the int conversion: a fuzzer-grade utilization value
	// must clamp, not overflow.
	if lim := float64(sig.Max); sig.Max > 0 && raw > lim {
		raw = lim
	}
	if raw < 0 || math.IsNaN(raw) {
		raw = 0
	}
	return int(math.Ceil(raw))
}

// sloPID trades fleet size against windowed SLO attainment.
type sloPID struct {
	floor, kp, ki float64
	integ         float64
}

// sloPIDShedCeil is the projected-utilization ceiling of the controller's
// scale-down guard: a shed that would push the survivors' busy fraction
// past this is refused, so a fully attaining fleet at peak load is not
// chattered down into an outage.
const sloPIDShedCeil = 0.75

// NewSLOPID returns the SLO-attainment PI controller: the error term is
// floor minus the window's attainment, so missing the objective pushes
// the fleet up hard (proportional term) while sustained perfect
// attainment accumulates gentle downscale pressure (integral term,
// anti-windup clamped). Actuation is asymmetric, the standard production
// rule: scale-up is unbounded (an outage is expensive), scale-down is at
// most one replica per interval and only when the survivors' projected
// utilization stays under sloPIDShedCeil with an empty admission queue —
// attainment is a lagging, completion-time signal, so without the guard
// a perfectly attaining fleet at peak load would shed straight into a
// backlog it then needs several boot delays to clear. Non-positive
// arguments select the defaults: floor 0.95, kp 10, ki 2. The policy
// reads attainment, so the replica Config must set SLO/TierSLOs — with
// no objectives every completion "meets SLO" and the controller sheds to
// the minimum.
func NewSLOPID(floor, kp, ki float64) ScalePolicy {
	if math.IsNaN(floor) || floor <= 0 || floor > 1 {
		floor = 0.95
	}
	if math.IsNaN(kp) || kp <= 0 {
		kp = 10
	}
	if math.IsNaN(ki) || ki <= 0 {
		ki = 2
	}
	return &sloPID{floor: floor, kp: kp, ki: ki}
}

func (*sloPID) Name() string { return "slo-pid" }

func (p *sloPID) Desired(sig ScaleSignals) int {
	att := sig.Attainment
	if math.IsNaN(att) || math.IsInf(att, 0) {
		return sig.Active
	}
	if att < 0 {
		att = 0
	}
	if att > 1 {
		att = 1
	}
	err := p.floor - att
	p.integ += err
	// Anti-windup: bound the integral so sustained perfect attainment
	// cannot bank more than steady downscale pressure, and a long outage
	// cannot demand an unbounded fleet once attainment recovers.
	const imax = 1.0
	if p.integ > imax {
		p.integ = imax
	}
	if p.integ < -imax {
		p.integ = -imax
	}
	delta := int(math.Round(p.kp*err + p.ki*p.integ))
	if delta >= 0 {
		return sig.Active + delta
	}
	// Scale-down: rate-limited and guarded.
	if sig.Active <= 1 || sig.QueuedRequests > 0 {
		return sig.Active
	}
	util := sig.Utilization
	if math.IsNaN(util) || math.IsInf(util, 0) || util < 0 {
		return sig.Active
	}
	if util*float64(sig.Active)/float64(sig.Active-1) > sloPIDShedCeil {
		return sig.Active
	}
	return sig.Active - 1
}

// scalePolicyFactories maps CLI/scenario names to constructors with
// default parameters, mirroring policyFactories for routing policies.
var scalePolicyFactories = map[string]func() ScalePolicy{
	"static":      func() ScalePolicy { return NewStaticScale(0) },
	"target-util": func() ScalePolicy { return NewTargetUtilization(0) },
	"slo-pid":     func() ScalePolicy { return NewSLOPID(0, 0, 0) },
}

// ScalePolicyByName constructs a fresh default-parameter scale policy
// from its name (static, target-util, slo-pid).
func ScalePolicyByName(name string) (ScalePolicy, error) {
	f, ok := scalePolicyFactories[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown scale policy %q (have %s)", name, strings.Join(ScalePolicyNames(), ", "))
	}
	return f(), nil
}

// ScalePolicyNames returns the registered scale-policy names, sorted.
func ScalePolicyNames() []string {
	names := make([]string, 0, len(scalePolicyFactories))
	for name := range scalePolicyFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AutoscaleConfig parameterizes an autoscaled routed simulation.
type AutoscaleConfig struct {
	// Replica configures every replica engine the fleet ever provisions.
	Replica Config
	// Policy decides the fleet size each control interval. Required, and
	// must be a fresh instance (policies carry controller state).
	Policy ScalePolicy
	// Router splits arrivals (and drain handoffs) across the active
	// replicas. Defaults to token-weighted JSQ. Must be fresh.
	Router Policy

	// MinReplicas and MaxReplicas bound the fleet; decisions are clamped
	// into [MinReplicas, MaxReplicas]. MinReplicas defaults to 1;
	// MaxReplicas defaults to MinReplicas.
	MinReplicas int
	MaxReplicas int
	// InitialReplicas is the fleet size at time zero (already booted).
	// Defaults to MinReplicas.
	InitialReplicas int

	// Interval is the control-loop sampling period. Defaults to 15 s.
	Interval sim.Duration
	// ProvisionDelay is how long a newly provisioned replica takes to boot
	// before it may admit requests. Defaults to 30 s.
	ProvisionDelay sim.Duration
	// GPUHourPrice is the $/GPU-hour rate EconReport bills replica
	// lifetimes at. Defaults to 2.5.
	GPUHourPrice float64
}

// FleetEvent is one entry of the fleet-size timeline: a lifecycle
// transition and the fleet composition right after it.
type FleetEvent struct {
	TimeNs sim.Time `json:"time_ns"`
	// Event is the transition: provision, activate, cancel, drain, retire,
	// or close (end of the arrival stream).
	Event string `json:"event"`
	// Replica is the slot the transition applies to (-1 for close).
	Replica int `json:"replica"`
	// Active, Provisioning and Draining count replicas by state after the
	// transition.
	Active       int `json:"active"`
	Provisioning int `json:"provisioning,omitempty"`
	Draining     int `json:"draining,omitempty"`
}

// DrainEvent is the audit record of one graceful scale-down.
type DrainEvent struct {
	TimeNs sim.Time `json:"time_ns"`
	// Replica is the drained slot.
	Replica int `json:"replica"`
	// HandedOff counts never-admitted requests re-routed to surviving
	// replicas at drain time; Residents counts requests that stayed
	// (running, resuming or in swap transit) to finish locally.
	HandedOff int `json:"handed_off"`
	Residents int `json:"residents"`
	// RetiredNs is when the replica finished its residents and retired.
	RetiredNs sim.Time `json:"retired_ns"`
	// Stranded counts requests still owned by the replica at retirement —
	// always zero unless the drain machinery is broken; recorded so
	// scenarios can assert it rather than assume it.
	Stranded int `json:"stranded"`
}

// EconReport is the economics ledger of one autoscaled run: every
// replica's provision-to-retire lifetime billed at GPUHourPrice, against
// the SLO-compliant tokens the fleet actually produced.
type EconReport struct {
	// GPUHours sums replica lifetimes (provision to retire, boot time
	// included) times the per-replica GPU count, in virtual hours.
	GPUHours float64 `json:"gpu_hours"`
	// GPUHourPrice is the billing rate; CostUSD = GPUHours x GPUHourPrice.
	GPUHourPrice float64 `json:"gpu_hour_price"`
	CostUSD      float64 `json:"cost_usd"`
	// PeakReplicas is the largest simultaneously active fleet;
	// MeanReplicas is the time-weighted average over the run span.
	PeakReplicas int     `json:"peak_replicas"`
	MeanReplicas float64 `json:"mean_replicas"`
	// GoodTokens counts output tokens of SLO-compliant requests;
	// GoodputPerGPUHour and CostPerMTok derive from it.
	GoodTokens        int64   `json:"good_tokens"`
	GoodputPerGPUHour float64 `json:"goodput_per_gpu_hour"`
	CostPerMTok       float64 `json:"cost_per_mtok"`
}

// AutoscaleResult is the outcome of one autoscaled routed simulation.
type AutoscaleResult struct {
	// Policy and RouterPolicy name the scale and routing policies.
	Policy       string `json:"policy"`
	RouterPolicy string `json:"router_policy"`
	// PerReplica holds one Result per slot ever provisioned, in provision
	// order; Merged pools them (MergeResults) as the cluster-level view.
	PerReplica []*Result `json:"per_replica"`
	Merged     *Result   `json:"merged"`
	// Fleet is the fleet-size timeline; Drains the scale-down audit
	// records; Samples the control-loop inputs in sampling order.
	Fleet   []FleetEvent   `json:"fleet"`
	Drains  []DrainEvent   `json:"drains,omitempty"`
	Samples []ScaleSignals `json:"samples,omitempty"`
	// ScaleUps and ScaleDowns count replica-level actuations (a decision
	// moving the fleet by two counts twice).
	ScaleUps   int `json:"scale_ups"`
	ScaleDowns int `json:"scale_downs"`
	// Econ is the run's economics ledger.
	Econ EconReport `json:"econ"`
}

// Summarize aggregates the cluster-level (merged) result under an SLO.
func (r *AutoscaleResult) Summarize(slo SLO) Summary { return r.Merged.Summarize(slo) }

// slotState is a fleet slot's lifecycle state.
type slotState int

const (
	slotProvisioning slotState = iota // booting; not routable yet
	slotActive                        // routable
	slotDraining                      // finishing residents; not routable
	slotRetired                       // fully drained
)

// scaleSlot is the driver-side record of one replica the fleet ever
// provisioned.
type scaleSlot struct {
	id       int
	s        *Scheduler
	state    slotState
	canceled bool // scale-down hit while still provisioning
	retired  bool

	provisionedAt sim.Time
	activatedAt   sim.Time
	retiredAt     sim.Time
	drainIdx      int // index into AutoscaleResult.Drains, -1 if never drained

	// Sampling state: previous cumulative gpu busy time, and (exact
	// metrics mode) the per-request row cursor with running SLO counters.
	lastBusy sim.Duration
	cursor   int
	metCum   int64
	doneCum  int64
}

// RunAutoscaled replays the workload against an elastically sized replica
// fleet: arrivals are routed across the currently active replicas, and a
// control loop samples fleet signals every Interval and scales the fleet
// under the configured ScalePolicy — provisioning fresh replicas (with
// boot delay, and a cold prefix cache, like real instances), canceling
// boots that became unnecessary, and gracefully draining scale-down
// victims, whose never-admitted requests are re-routed to the survivors
// at the drain instant. Everything runs in one discrete-event timeline,
// so results are bit-stable. The returned result carries the per-replica
// and merged metrics, the fleet/drain audit trail, the control samples
// and the EconReport.
func RunAutoscaled(ac AutoscaleConfig, wl Workload) (*AutoscaleResult, error) {
	if ac.Policy == nil {
		return nil, fmt.Errorf("serve: AutoscaleConfig.Policy is nil")
	}
	router := ac.Router
	if router == nil {
		router = NewJSQ()
	}
	minR := ac.MinReplicas
	if minR == 0 {
		minR = 1
	}
	maxR := ac.MaxReplicas
	if maxR == 0 {
		maxR = minR
	}
	initR := ac.InitialReplicas
	if initR == 0 {
		initR = minR
	}
	if minR < 1 || maxR < minR || initR < minR || initR > maxR {
		return nil, fmt.Errorf("serve: AutoscaleConfig fleet bounds min=%d init=%d max=%d", minR, initR, maxR)
	}
	interval := ac.Interval
	if interval == 0 {
		interval = 15 * sim.Second
	}
	delay := ac.ProvisionDelay
	if delay == 0 {
		delay = 30 * sim.Second
	}
	price := ac.GPUHourPrice
	if price == 0 {
		price = 2.5
	}
	if interval < 0 || delay < 0 || price < 0 {
		return nil, fmt.Errorf("serve: AutoscaleConfig interval=%d provision-delay=%d gpu-hour-price=%g", interval, delay, price)
	}
	c, admitted, rejected, err := prepare(ac.Replica, wl)
	if err != nil {
		return nil, err
	}
	sloFor := func(p int) SLO {
		if s, ok := c.TierSLOs[p]; ok {
			return s
		}
		return c.SLO
	}

	eng := sim.NewEngine()
	out := &AutoscaleResult{Policy: ac.Policy.Name(), RouterPolicy: router.Name()}
	var (
		fleet        []*scaleSlot
		activeScheds []*Scheduler
		peak         int
		streamEnded  bool
	)
	rebuild := func() {
		activeScheds = activeScheds[:0]
		for _, sl := range fleet {
			if sl.state == slotActive {
				activeScheds = append(activeScheds, sl.s)
			}
		}
		if len(activeScheds) > peak {
			peak = len(activeScheds)
		}
	}
	counts := func() (active, prov, drain int) {
		for _, sl := range fleet {
			switch sl.state {
			case slotProvisioning:
				if !sl.canceled {
					prov++
				}
			case slotActive:
				active++
			case slotDraining:
				drain++
			}
		}
		return
	}
	record := func(t sim.Time, ev string, id int) {
		a, p, d := counts()
		out.Fleet = append(out.Fleet, FleetEvent{TimeNs: t, Event: ev, Replica: id,
			Active: a, Provisioning: p, Draining: d})
	}

	spawn := func(now sim.Time, booted bool) {
		sl := &scaleSlot{id: len(fleet), provisionedAt: now, drainIdx: -1}
		s, err := NewScheduler(eng, fmt.Sprintf("replica-%d", sl.id), ac.Replica)
		if err != nil {
			// prepare validated the identical config; this cannot fire.
			panic(fmt.Sprintf("serve: autoscale spawn: %v", err))
		}
		s.res.Workload = wl.Name
		sl.s = s
		s.onRetired = func(at sim.Time) {
			stranded := s.ActiveRequests() + s.QueuedRequests() + s.transit()
			sl.state = slotRetired
			sl.retired = true
			sl.retiredAt = at
			if sl.drainIdx >= 0 {
				out.Drains[sl.drainIdx].RetiredNs = at
				out.Drains[sl.drainIdx].Stranded = stranded
			}
			rebuild()
			record(at, "retire", sl.id)
		}
		fleet = append(fleet, sl)
		if booted {
			sl.state = slotActive
			sl.activatedAt = now
			rebuild()
			return
		}
		sl.state = slotProvisioning
		record(now, "provision", sl.id)
		eng.At(now+delay, func() {
			if sl.canceled || streamEnded {
				// The boot completes into a fleet that no longer wants it:
				// the lifetime is still billed, but it never admits.
				sl.s.Close()
				return
			}
			sl.state = slotActive
			sl.activatedAt = eng.Now()
			rebuild()
			record(eng.Now(), "activate", sl.id)
		})
	}

	drainOne := func(now sim.Time) {
		// Victim: the least-loaded active replica, newest slot on ties.
		var victim *scaleSlot
		for _, sl := range fleet {
			if sl.state != slotActive {
				continue
			}
			if victim == nil || sl.s.InFlightTokens() < victim.s.InFlightTokens() ||
				(sl.s.InFlightTokens() == victim.s.InFlightTokens() && sl.id > victim.id) {
				victim = sl
			}
		}
		if victim == nil {
			return
		}
		victim.state = slotDraining
		rebuild()
		handoff := victim.s.Drain()
		victim.drainIdx = len(out.Drains)
		out.Drains = append(out.Drains, DrainEvent{
			TimeNs:    now,
			Replica:   victim.id,
			HandedOff: len(handoff),
			Residents: victim.s.ActiveRequests() + victim.s.QueuedRequests() + victim.s.transit(),
		})
		for _, req := range handoff {
			i := router.Pick(req, activeScheds)
			if i < 0 || i >= len(activeScheds) {
				panic(fmt.Sprintf("serve: policy %s picked replica %d of %d", router.Name(), i, len(activeScheds)))
			}
			activeScheds[i].Submit(req)
		}
		record(now, "drain", victim.id)
	}

	// slotTotals returns a slot's cumulative completed/SLO-met request
	// counts: streamed tier counters, or (exact mode) an incremental scan
	// of the rows appended since the last sample.
	slotTotals := func(sl *scaleSlot) (met, done int64) {
		if sl.s.stream != nil {
			for _, t := range sl.s.stream.Tiers {
				met += t.Met
				done += t.Requests - t.Rejected
			}
			return met, done
		}
		rows := sl.s.res.PerRequest
		for ; sl.cursor < len(rows); sl.cursor++ {
			m := rows[sl.cursor]
			if m.Rejected {
				continue
			}
			sl.doneCum++
			if sloFor(m.Priority).Met(m) {
				sl.metCum++
			}
		}
		return sl.metCum, sl.doneCum
	}

	var prevT sim.Time
	var prevMet, prevDone int64
	sample := func(now sim.Time) ScaleSignals {
		a, p, d := counts()
		sig := ScaleSignals{TimeNs: now, Active: a, Provisioning: p, Draining: d, Min: minR, Max: maxR}
		var busyDelta sim.Duration
		for _, sl := range fleet {
			if sl.state == slotActive {
				sig.QueuedRequests += sl.s.QueuedRequests()
				sig.InFlightTokens += sl.s.InFlightTokens()
				busyDelta += sl.s.GPUBusy() - sl.lastBusy
			}
			sl.lastBusy = sl.s.GPUBusy()
		}
		if w := now - prevT; w > 0 && a > 0 {
			sig.Utilization = float64(busyDelta) / (float64(w) * float64(a))
		}
		var met, done int64
		for _, sl := range fleet {
			m, dn := slotTotals(sl)
			met += m
			done += dn
		}
		sig.Completed = done - prevDone
		sig.Attainment = 1
		if sig.Completed > 0 {
			sig.Attainment = float64(met-prevMet) / float64(sig.Completed)
		}
		prevT, prevMet, prevDone = now, met, done
		out.Samples = append(out.Samples, sig)
		return sig
	}

	for i := 0; i < initR; i++ {
		spawn(0, true)
	}

	var tick func()
	tick = func() {
		if streamEnded {
			return
		}
		now := eng.Now()
		sig := sample(now)
		desired := clampReplicas(ac.Policy.Desired(sig), minR, maxR)
		cur := sig.Active + sig.Provisioning
		if desired > cur {
			out.ScaleUps += desired - cur
			for i := cur; i < desired; i++ {
				spawn(now, false)
			}
		} else if desired < cur {
			down := cur - desired
			out.ScaleDowns += down
			// Cancel capacity still booting first — it holds no requests.
			for _, sl := range fleet {
				if down == 0 {
					break
				}
				if sl.state == slotProvisioning && !sl.canceled {
					sl.canceled = true
					record(now, "cancel", sl.id)
					down--
				}
			}
			for ; down > 0; down-- {
				drainOne(now)
			}
		}
		eng.At(now+interval, tick)
	}
	eng.At(interval, tick)

	var last sim.Time
	for _, r := range admitted.Requests {
		req := r
		eng.At(req.Arrival, func() {
			i := router.Pick(req, activeScheds)
			if i < 0 || i >= len(activeScheds) {
				panic(fmt.Sprintf("serve: policy %s picked replica %d of %d", router.Name(), i, len(activeScheds)))
			}
			activeScheds[i].Submit(req)
		})
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	eng.At(last, func() {
		streamEnded = true
		for _, sl := range fleet {
			if sl.state == slotActive {
				sl.s.Close()
			}
		}
		record(eng.Now(), "close", -1)
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	scheds := make([]*Scheduler, len(fleet))
	for i, sl := range fleet {
		scheds[i] = sl.s
	}
	if err := checkDrained(scheds...); err != nil {
		return nil, err
	}
	for _, sl := range fleet {
		if !sl.retired {
			return nil, fmt.Errorf("serve: replica %d never retired (state %d)", sl.id, sl.state)
		}
	}

	out.PerReplica = make([]*Result, len(fleet))
	for i, sl := range fleet {
		out.PerReplica[i] = sl.s.Result()
	}
	parts := append(append([]*Result{}, out.PerReplica...), rejectedPart(c, rejected))
	out.Merged = MergeResults(parts...)
	out.Merged.Workload = wl.Name
	out.Econ = econReport(c, price, fleet, out.Merged, peak, sloFor)
	return out, nil
}

// econReport derives the economics ledger from the fleet's lifetimes and
// the merged metrics.
func econReport(c Config, price float64, fleet []*scaleSlot, merged *Result, peak int, sloFor func(int) SLO) EconReport {
	e := EconReport{GPUHourPrice: price, PeakReplicas: peak}
	gpus := float64(c.Env.TotalGPUs())
	var lifeNs float64
	var firstProv, lastRet sim.Time
	for i, sl := range fleet {
		lifeNs += float64(sl.retiredAt - sl.provisionedAt)
		if i == 0 || sl.provisionedAt < firstProv {
			firstProv = sl.provisionedAt
		}
		if i == 0 || sl.retiredAt > lastRet {
			lastRet = sl.retiredAt
		}
	}
	e.GPUHours = lifeNs * gpus / 3.6e12
	e.CostUSD = e.GPUHours * price
	if span := float64(lastRet - firstProv); span > 0 {
		e.MeanReplicas = lifeNs / span
	}
	e.GoodTokens = goodTokens(merged, sloFor)
	if e.GPUHours > 0 {
		e.GoodputPerGPUHour = float64(e.GoodTokens) / e.GPUHours
	}
	if e.GoodTokens > 0 {
		e.CostPerMTok = e.CostUSD / (float64(e.GoodTokens) / 1e6)
	}
	return e
}

// goodTokens counts output tokens of SLO-compliant requests in a merged
// result: streamed tier counters under MetricsStream, a row scan under
// the configured per-tier SLOs otherwise.
func goodTokens(r *Result, sloFor func(int) SLO) int64 {
	var g int64
	if r.Stream != nil {
		for _, t := range r.Stream.Tiers {
			g += t.GoodTokens
		}
		return g
	}
	for _, m := range r.PerRequest {
		if !m.Rejected && sloFor(m.Priority).Met(m) {
			g += int64(m.OutputLen)
		}
	}
	return g
}
