package serve

// Tests for disaggregated prefill/decode serving: KV-handoff byte
// accounting against the model's KV-size formula, fabric transfer-pricing
// monotonicity in prompt length, the DMA-vs-RDMA lane selection of KVLink,
// and the bit-identical deterministic replay RunDisaggregated shares with
// the rest of the serving stack.

import (
	"encoding/json"
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

func disaggConfig() DisaggConfig {
	return DisaggConfig{
		PrefillReplicas: 1,
		DecodeReplicas:  2,
		Replica:         testConfig(),
	}
}

// TestDisaggHandoffBytes: every multi-token request's recorded handoff
// footprint must equal the KV-size formula — per-GPU shard bytes
// (Model.KVShardBytes, i.e. layers x KV-heads x head-dim x dtype / TP,
// times the prompt length) times the tensor-parallel lane count — with a
// strictly positive fabric transfer time; one-token requests complete on
// the prefill side and must record no handoff at all.
func TestDisaggHandoffBytes(t *testing.T) {
	cfg := disaggConfig()
	wl := Poisson(301, 120, 20, LogNormalLen(256, 0.6, 1024), UniformLen(1, 48))
	res, err := RunDisaggregated(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged.PerRequest) != len(wl.Requests) {
		t.Fatalf("completed %d of %d requests", len(res.Merged.PerRequest), len(wl.Requests))
	}
	model := cfg.Replica.Model
	lanes := int64(cfg.Replica.Env.TotalGPUs())
	handoffs := 0
	var totalBytes int64
	for _, m := range res.Merged.PerRequest {
		if m.OutputLen == 1 {
			if m.KVHandoffBytes != 0 || m.HandoffNs != 0 || m.DecodeAdmitted != 0 {
				t.Errorf("request %d: one-token request should not hand off, got %d bytes / %d ns",
					m.ID, m.KVHandoffBytes, m.HandoffNs)
			}
			continue
		}
		handoffs++
		totalBytes += m.KVHandoffBytes
		want := model.KVShardBytes(m.PromptLen) * lanes
		if m.KVHandoffBytes != want {
			t.Errorf("request %d: handoff %d bytes, want %d (prompt %d tokens x %d B/tok/GPU x %d lanes)",
				m.ID, m.KVHandoffBytes, want, m.PromptLen, model.KVBytesPerTokenPerGPU, lanes)
		}
		if m.HandoffNs <= 0 {
			t.Errorf("request %d: handoff priced at %d ns — the fabric made the transfer free", m.ID, m.HandoffNs)
		}
		if m.DecodeAdmitted < m.FirstToken+m.HandoffNs {
			t.Errorf("request %d: decode admitted at %d, before handoff completed at %d",
				m.ID, m.DecodeAdmitted, m.FirstToken+m.HandoffNs)
		}
	}
	if handoffs == 0 {
		t.Fatal("workload produced no multi-token requests; test is vacuous")
	}
	if res.Handoffs != handoffs || res.HandoffBytes != totalBytes {
		t.Errorf("aggregate accounting (%d handoffs, %d bytes) disagrees with per-request rows (%d, %d)",
			res.Handoffs, res.HandoffBytes, handoffs, totalBytes)
	}
	if res.HandoffMeanNs <= 0 || res.HandoffMaxNs < res.HandoffMeanNs {
		t.Errorf("degenerate handoff durations: mean %d ns, max %d ns", res.HandoffMeanNs, res.HandoffMaxNs)
	}
}

// TestKVLinkPricingMonotone: on an idle fabric, the handoff duration must
// be non-decreasing — and eventually strictly increasing — in prompt
// length, inherited from timing.XferTime's ceil(size/bw) rounding. A
// fresh link per measurement keeps occupancy out of the comparison.
func TestKVLinkPricingMonotone(t *testing.T) {
	model := inference.Llama3x70B(8)
	prev := sim.Duration(-1)
	first, lastDur := sim.Duration(0), sim.Duration(0)
	for _, promptLen := range []int{1, 16, 128, 512, 2048, 8192} {
		env := topology.A100_80G(2)
		link, err := NewKVLink(env, 2)
		if err != nil {
			t.Fatal(err)
		}
		end := link.Transfer(0, 0, 1, model.KVShardBytes(promptLen))
		dur := sim.Duration(end)
		if dur <= 0 {
			t.Fatalf("promptLen %d: free handoff (%d ns)", promptLen, dur)
		}
		if dur < prev {
			t.Errorf("promptLen %d: handoff %d ns got cheaper than shorter prompt's %d ns", promptLen, dur, prev)
		}
		prev = dur
		if first == 0 {
			first = dur
		}
		lastDur = dur
	}
	if lastDur <= first {
		t.Errorf("pricing never increased across a 8192x prompt-length range (%d ns .. %d ns)", first, lastDur)
	}
}

// TestKVLinkLaneSelection: an idle link must price a same-node handoff on
// the DMA-engine path and a cross-node handoff on the RDMA path, matching
// the closed-form single-transfer costs of internal/fabric exactly.
func TestKVLinkLaneSelection(t *testing.T) {
	shard := int64(1 << 20)

	// Colocated: one 8-GPU node split into two 4-GPU replica groups; every
	// lane is intra-node, so the cost is the DMA engine's.
	env := topology.A100_80G(1)
	link, err := NewKVLink(env, 2)
	if err != nil {
		t.Fatal(err)
	}
	bw := env.DMABW
	if env.IntraBW < bw {
		bw = env.IntraBW
	}
	wantDMA := sim.Time(timing.XferTime(shard, bw) + env.IntraLat + env.DMALat)
	if got := link.Transfer(0, 0, 1, shard); got != wantDMA {
		t.Errorf("colocated handoff = %d ns, want DMA-path %d ns", got, wantDMA)
	}

	// Cross-node: two nodes, one replica group each; every lane pays RDMA.
	env2 := topology.A100_80G(2)
	link2, err := NewKVLink(env2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRDMA := sim.Time(timing.XferTime(shard, env2.IBBW) + env2.IBLat)
	if got := link2.Transfer(0, 0, 1, shard); got != wantRDMA {
		t.Errorf("cross-node handoff = %d ns, want RDMA-path %d ns", got, wantRDMA)
	}
	if wantRDMA <= wantDMA {
		t.Errorf("RDMA handoff (%d ns) should cost more than the DMA path (%d ns) at %d bytes", wantRDMA, wantDMA, shard)
	}
}

// TestKVLinkOccupancy: two handoffs leaving the same prefill replica at
// the same instant must serialize on its NICs — the second completes a
// full wire time after the first, not simultaneously.
func TestKVLinkOccupancy(t *testing.T) {
	env := topology.A100_80G(3)
	link, err := NewKVLink(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	shard := int64(8 << 20)
	first := link.Transfer(0, 0, 1, shard)
	second := link.Transfer(0, 0, 2, shard)
	wire := sim.Time(timing.XferTime(shard, env.IBBW))
	if second != first+wire {
		t.Errorf("second same-source handoff completed at %d ns, want %d (first %d + wire %d)",
			second, first+wire, first, wire)
	}
}

// TestDisaggDeterministicReplay extends the routed replay gate to the
// disaggregated driver: a seeded Poisson workload over a 2-prefill /
// 2-decode deployment with the real simulated-collective timer must
// produce bit-identical JSON across runs.
func TestDisaggDeterministicReplay(t *testing.T) {
	run := func() *DisaggResult {
		envFn := func() *topology.Env { return topology.A100_80G(1) }
		res, err := RunDisaggregated(DisaggConfig{
			PrefillReplicas: 2,
			DecodeReplicas:  2,
			Replica: Config{
				Env:             envFn(),
				Model:           inference.Llama3x70B(8),
				AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
				MaxBatch:        16,
				KVCapacityBytes: 2 << 30,
				ChunkTokens:     512,
				Metrics:         MetricsExact,
			},
		}, Poisson(2028, 200, 16, LogNormalLen(384, 0.6, 1024), LogNormalLen(48, 0.5, 128)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Merged.PerRequest) != 200 {
		t.Fatalf("completed %d requests, want 200", len(a.Merged.PerRequest))
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two disaggregated replays of the same seeded workload produced different metrics")
	}
	if a.Handoffs == 0 || a.HandoffBytes == 0 {
		t.Fatalf("replay recorded no KV handoffs (%d, %d bytes)", a.Handoffs, a.HandoffBytes)
	}
	sum := a.Summarize(SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 200 * sim.Millisecond})
	if sum.Requests != 200 || sum.ThroughputTokS <= 0 {
		t.Errorf("degenerate merged summary: %+v", sum)
	}
	// The decode pool must actually have decoded: every multi-token
	// request's row lives on a decode replica.
	decoded := 0
	for _, pr := range a.PerDecode {
		decoded += len(pr.PerRequest)
	}
	for _, pr := range a.PerPrefill {
		for _, m := range pr.PerRequest {
			if m.OutputLen > 1 {
				t.Errorf("multi-token request %d completed on a prefill replica", m.ID)
			}
		}
	}
	if decoded == 0 {
		t.Error("no requests completed on the decode pool")
	}
}
