package serve

// A tiny self-contained PRNG (splitmix64) so workload generation is
// bit-stable by construction: goldens must not depend on the Go standard
// library keeping math/rand's stream stable across releases. splitmix64
// passes BigCrush, is trivially seedable, and two generators with different
// seeds are independent for our purposes.

import "math"

// RNG is a deterministic 64-bit pseudo-random generator. The zero value is
// a valid (seed-0) generator; use NewRNG to seed it explicitly.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit output (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed sample with the given mean
// (inverse-CDF method; 1-u keeps the argument of log strictly positive).
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Norm returns a standard normal sample (Box-Muller, one of the pair).
func (r *RNG) Norm() float64 {
	u1 := 1 - r.Float64() // (0, 1]
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(N(mu, sigma^2)); median is exp(mu).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Mix64 is the splitmix64 finalizer as a stateless 64-bit hash: the same
// avalanche the RNG stream uses, applied to a single value. The routing
// layer uses it to pin prefix groups to replicas; it must stay stable
// across releases for the same reason the RNG must (goldens).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("serve: Intn with non-positive bound")
	}
	// Plain modulo reduction: its bias from a 64-bit source over
	// request-length ranges (n < 2^20) is far below any observable effect.
	return int(r.Uint64() % uint64(n))
}
