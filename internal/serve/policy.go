package serve

// Routing policies: how an arrival-splitting router picks the replica for
// each request. A Policy instance is stateful and bound to one RunRouted
// call — construct a fresh one per simulation (round-robin carries a
// cursor; sharing it across concurrent runs would race and break
// determinism).

import (
	"fmt"
	"sort"
	"strings"
)

// Policy selects the replica each arriving request is dispatched to.
type Policy interface {
	// Name is the stable policy identifier used in reports and CLI flags.
	Name() string
	// Pick returns the index into replicas for req. It is called in engine
	// context at req's arrival instant; implementations may inspect
	// replica state (InFlightTokens, QueuedRequests, HasPrefix, ...) and
	// their own bookkeeping, but must be deterministic functions of the
	// call sequence and that state.
	Pick(req Request, replicas []*Scheduler) int
}

// roundRobin cycles through replicas in submission order, blind to load.
type roundRobin struct{ next int }

// NewRoundRobin returns the round-robin policy: request i goes to replica
// i mod N. The baseline every load-aware policy is judged against.
func NewRoundRobin() Policy { return &roundRobin{} }

func (*roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(_ Request, replicas []*Scheduler) int {
	i := r.next % len(replicas)
	r.next++
	return i
}

// jsq joins the shortest queue measured in in-flight tokens.
type jsq struct{}

// NewJSQ returns the join-shortest-queue policy. Load is measured in
// in-flight *tokens* (prompt + output tokens submitted minus tokens
// processed), not request count: one 8K-token prompt is more load than
// ten short chat turns, and routing on request count would systematically
// overload whichever replica drew the long prompts. Ties break toward the
// lowest replica index, keeping the policy deterministic.
func NewJSQ() Policy { return jsq{} }

func (jsq) Name() string { return "jsq" }

func (jsq) Pick(_ Request, replicas []*Scheduler) int {
	best := 0
	for i := 1; i < len(replicas); i++ {
		if replicas[i].InFlightTokens() < replicas[best].InFlightTokens() {
			best = i
		}
	}
	return best
}

// prefixAffinity pins each prefix group to a replica by hash; ungrouped
// requests fall back to JSQ.
type prefixAffinity struct{ fallback Policy }

// NewPrefixAffinity returns the prefix-cache-affinity policy: requests
// carrying a PrefixGroup are pinned to replica Mix64(group) mod N, so the
// group's shared prompt prefix is prefilled once per replica and every
// subsequent member gets the prefill discount (Scheduler's KV
// prefix-reuse model). Requests without a group route by JSQ. The
// trade-off is classic affinity-vs-balance: hot groups can skew load,
// which the routing scenarios quantify against pure JSQ.
func NewPrefixAffinity() Policy { return &prefixAffinity{fallback: NewJSQ()} }

func (*prefixAffinity) Name() string { return "prefix-affinity" }

func (a *prefixAffinity) Pick(req Request, replicas []*Scheduler) int {
	if req.PrefixGroup == 0 {
		return a.fallback.Pick(req, replicas)
	}
	return int(Mix64(req.PrefixGroup) % uint64(len(replicas)))
}

// policyFactories maps CLI/scenario names (and their short aliases) to
// constructors. Registered here so PolicyByName and PolicyNames stay in
// lockstep; adding a policy means implementing the interface and adding
// one row.
var policyFactories = map[string]func() Policy{
	"round-robin":     NewRoundRobin,
	"rr":              NewRoundRobin,
	"jsq":             NewJSQ,
	"prefix-affinity": NewPrefixAffinity,
	"affinity":        NewPrefixAffinity,
}

// PolicyByName constructs a fresh policy instance from its name or alias
// (round-robin/rr, jsq, prefix-affinity/affinity).
func PolicyByName(name string) (Policy, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown routing policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
	}
	return f(), nil
}

// PolicyNames returns the canonical policy names (aliases excluded),
// sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyFactories))
	for name, f := range policyFactories {
		if f().Name() == name {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
