package serve

// Stream-vs-exact equivalence: the streaming metrics mode must agree with
// the row-retaining mode on everything that is exact by construction
// (counts, makespan, throughput, SLO verdicts — all taken on exact
// virtual-time integers in both modes) and stay within the sketch's
// documented relative rank-error everywhere quantiles are involved.

import (
	"math"
	"strings"
	"testing"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// streamTestWorkload is the shared two-tier workload of the equivalence
// tests, with one oversized request that prepare rejects up front.
func streamTestWorkload() Workload {
	wl := Poisson(7101, 400, 80, LogNormalLen(256, 0.6, 1024), LogNormalLen(32, 0.5, 96))
	wl = WithPriorities(wl, 7102, 0.7)
	// An inadmissible request mid-trace: prompt alone overflows the KV
	// budget, so both modes must account it as a rejection.
	wl.Requests[200].PromptLen = 1 << 24
	return wl
}

func streamTestConfig(metrics MetricsMode, slo SLO, tiers map[int]SLO) Config {
	cfg := testConfig()
	cfg.MaxBatch = 16
	cfg.KVCapacityBytes = 1 << 30
	cfg.ChunkTokens = 512
	cfg.Metrics = metrics
	cfg.SLO = slo
	cfg.TierSLOs = tiers
	return cfg
}

// pickSLO derives a discriminating objective (near the exact run's median
// TTFT, so attainment is neither 0 nor 1) from an exact-mode run.
func pickSLO(t *testing.T, wl Workload) SLO {
	t.Helper()
	res, err := Run(streamTestConfig(MetricsExact, SLO{}, nil), wl)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarize(SLO{})
	return SLO{
		MaxTTFT: sim.Duration(s.TTFTp50ms * 1e6),
		MaxTPOT: sim.Duration(s.TPOTp50ms * 2e6),
	}
}

// wantClose asserts the streamed quantile agrees with the exact one. The
// sketch guarantees alpha relative error against the order statistics;
// the exact path additionally interpolates between adjacent samples, so
// on small per-tier populations the gap between neighboring order stats
// (not a sketch artifact — benchkit's sketch tests pin the strict bound)
// widens the comparison. 3*alpha comfortably covers both terms for these
// fixed seeds.
func wantClose(t *testing.T, name string, stream, exact float64) {
	t.Helper()
	tol := 3 * benchkit.DefaultSketchAlpha
	if math.Abs(stream-exact) > tol*math.Abs(exact)+1e-9 {
		t.Errorf("%s: streamed %.6g vs exact %.6g exceeds %.2g%% relative error", name, stream, exact, 100*tol)
	}
}

// compareSummaries checks the exact-by-construction fields for equality
// and the sketch-derived quantiles for bounded error.
func compareSummaries(t *testing.T, stream, exact Summary) {
	t.Helper()
	if stream.Requests != exact.Requests || stream.Rejected != exact.Rejected ||
		stream.Iterations != exact.Iterations {
		t.Errorf("counters differ: stream %+v exact %+v", stream, exact)
	}
	if stream.MakespanS != exact.MakespanS {
		t.Errorf("makespan: stream %g exact %g", stream.MakespanS, exact.MakespanS)
	}
	if stream.ThroughputTokS != exact.ThroughputTokS || stream.GoodputTokS != exact.GoodputTokS {
		t.Errorf("token rates differ: stream %g/%g exact %g/%g",
			stream.ThroughputTokS, stream.GoodputTokS, exact.ThroughputTokS, exact.GoodputTokS)
	}
	if stream.SLOAttainment != exact.SLOAttainment {
		t.Errorf("slo attainment: stream %g exact %g", stream.SLOAttainment, exact.SLOAttainment)
	}
	wantClose(t, "ttft p50", stream.TTFTp50ms, exact.TTFTp50ms)
	wantClose(t, "ttft p90", stream.TTFTp90ms, exact.TTFTp90ms)
	wantClose(t, "ttft p99", stream.TTFTp99ms, exact.TTFTp99ms)
	wantClose(t, "tpot p50", stream.TPOTp50ms, exact.TPOTp50ms)
	wantClose(t, "tpot p99", stream.TPOTp99ms, exact.TPOTp99ms)
	wantClose(t, "e2e p50", stream.E2Ep50ms, exact.E2Ep50ms)
	wantClose(t, "e2e p99", stream.E2Ep99ms, exact.E2Ep99ms)
	if len(stream.ByTier) != len(exact.ByTier) {
		t.Fatalf("tier count: stream %d exact %d", len(stream.ByTier), len(exact.ByTier))
	}
	for i, st := range stream.ByTier {
		et := exact.ByTier[i]
		if st.Priority != et.Priority || st.Requests != et.Requests || st.Rejected != et.Rejected {
			t.Errorf("tier %d counters: stream %+v exact %+v", i, st, et)
		}
		if st.SLOAttainment != et.SLOAttainment || st.GoodputTokS != et.GoodputTokS {
			t.Errorf("tier %d rates: stream %g/%g exact %g/%g",
				i, st.SLOAttainment, st.GoodputTokS, et.SLOAttainment, et.GoodputTokS)
		}
		wantClose(t, "tier ttft p50", st.TTFTp50ms, et.TTFTp50ms)
		wantClose(t, "tier ttft p99", st.TTFTp99ms, et.TTFTp99ms)
	}
}

func TestStreamMatchesExact(t *testing.T) {
	wl := streamTestWorkload()
	slo := pickSLO(t, wl)
	tiers := map[int]SLO{1: {MaxTTFT: 4 * slo.MaxTTFT, MaxTPOT: 4 * slo.MaxTPOT}}

	streamRes, err := Run(streamTestConfig(MetricsStream, slo, tiers), wl)
	if err != nil {
		t.Fatal(err)
	}
	exactRes, err := Run(streamTestConfig(MetricsExact, slo, tiers), wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamRes.PerRequest) != 0 {
		t.Fatalf("streaming result retained %d per-request rows", len(streamRes.PerRequest))
	}
	if streamRes.Stream == nil {
		t.Fatal("streaming result has no StreamStats")
	}
	compareSummaries(t, streamRes.SummarizeTiered(slo, tiers), exactRes.SummarizeTiered(slo, tiers))

	// And the untiered path: a config with no per-tier overrides summarizes
	// through plain Summarize.
	flatStream, err := Run(streamTestConfig(MetricsStream, slo, nil), wl)
	if err != nil {
		t.Fatal(err)
	}
	compareSummaries(t, flatStream.Summarize(slo), exactRes.Summarize(slo))
}

// TestStreamRoutedMatchesExact checks the merge path: per-replica stream
// states (plus the synthetic rejected part) pooled by MergeResults must
// summarize like the pooled exact rows.
func TestStreamRoutedMatchesExact(t *testing.T) {
	wl := streamTestWorkload()
	slo := pickSLO(t, wl)
	tiers := map[int]SLO{1: {MaxTTFT: 4 * slo.MaxTTFT, MaxTPOT: 4 * slo.MaxTPOT}}

	run := func(metrics MetricsMode) *RoutedResult {
		res, err := RunRouted(RouterConfig{
			Replicas: 3,
			Policy:   NewJSQ(),
			Replica:  streamTestConfig(metrics, slo, tiers),
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stream, exact := run(MetricsStream), run(MetricsExact)
	if len(stream.Merged.PerRequest) != 0 {
		t.Fatalf("streaming merged result retained %d rows", len(stream.Merged.PerRequest))
	}
	if stream.Merged.Rejected != exact.Merged.Rejected || stream.Merged.Rejected == 0 {
		t.Errorf("rejected: stream %d exact %d (want equal and nonzero)",
			stream.Merged.Rejected, exact.Merged.Rejected)
	}
	compareSummaries(t, stream.Merged.SummarizeTiered(slo, tiers), exact.Merged.SummarizeTiered(slo, tiers))
}

// TestStreamGuards: a streaming result judged its SLOs at completion
// time, so re-summarizing under different objectives, or pooling with a
// differently-judged part, must fail loudly instead of silently lying.
func TestStreamGuards(t *testing.T) {
	wantPanic := func(name, substr string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
				t.Errorf("%s: panic %v does not mention %q", name, r, substr)
			}
		}()
		fn()
	}

	slo := SLO{MaxTTFT: sim.Second, MaxTPOT: 10 * sim.Millisecond}
	wl := Poisson(7201, 50, 100, FixedLen(128), FixedLen(16))
	res, err := Run(streamTestConfig(MetricsStream, slo, nil), wl)
	if err != nil {
		t.Fatal(err)
	}
	wantPanic("re-summarize", "judged against", func() {
		res.Summarize(SLO{MaxTTFT: 2 * sim.Second})
	})
	wantPanic("mismatched merge", "different SLOs", func() {
		other := &Result{Stream: newStreamStats(SLO{MaxTTFT: 3 * sim.Second}, nil)}
		MergeResults(res, other)
	})
	exact, err := Run(streamTestConfig(MetricsExact, slo, nil), wl)
	if err != nil {
		t.Fatal(err)
	}
	wantPanic("mixed-mode merge", "mixing", func() {
		MergeResults(res, exact)
	})
}
