package serve

import (
	"encoding/json"
	"reflect"
	"testing"

	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// fakeReplicas builds n schedulers on a throwaway engine so policy picks
// can be exercised without running a simulation.
func fakeReplicas(t *testing.T, n int) []*Scheduler {
	t.Helper()
	eng := sim.NewEngine()
	reps := make([]*Scheduler, n)
	for i := range reps {
		s, err := NewScheduler(eng, "r", testConfig())
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = s
	}
	return reps
}

func TestRoundRobinPolicy(t *testing.T) {
	reps := fakeReplicas(t, 3)
	p := NewRoundRobin()
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := p.Pick(Request{ID: i}, reps); got != w {
			t.Fatalf("pick %d: replica %d, want %d", i, got, w)
		}
	}
}

func TestJSQPolicy(t *testing.T) {
	reps := fakeReplicas(t, 3)
	p := NewJSQ()
	// All empty: ties break toward the lowest index.
	if got := p.Pick(Request{}, reps); got != 0 {
		t.Fatalf("empty-cluster pick = %d, want 0", got)
	}
	// Load replicas 0 and 2; the emptiest (1) must win, and the signal is
	// tokens, not request count: replica 0 holds one huge request, replica
	// 2 two small ones, so after 1 it must be 2, not 0.
	reps[0].inflight = 8192
	reps[2].inflight = 64 + 64
	if got := p.Pick(Request{}, reps); got != 1 {
		t.Fatalf("pick = %d, want least-loaded 1", got)
	}
	reps[1].inflight = 100000
	if got := p.Pick(Request{}, reps); got != 2 {
		t.Fatalf("pick = %d, want token-least 2 (JSQ must weigh tokens, not request count)", got)
	}
}

func TestPrefixAffinityPolicy(t *testing.T) {
	reps := fakeReplicas(t, 3)
	p := NewPrefixAffinity()
	// Same group always pins to the same replica, regardless of load.
	first := p.Pick(Request{PrefixGroup: 42, PrefixLen: 10}, reps)
	reps[first].inflight = 1 << 40
	for i := 0; i < 5; i++ {
		if got := p.Pick(Request{ID: i, PrefixGroup: 42, PrefixLen: 10}, reps); got != first {
			t.Fatalf("group 42 pick %d moved to replica %d (pinned to %d)", i, got, first)
		}
	}
	// Ungrouped requests fall back to JSQ and avoid the loaded replica.
	if got := p.Pick(Request{}, reps); got == first {
		t.Fatalf("ungrouped request routed to the overloaded pinned replica %d", got)
	}
	// Groups spread: 64 groups over 3 replicas must hit every replica.
	seen := map[int]bool{}
	for g := uint64(1); g <= 64; g++ {
		seen[p.Pick(Request{PrefixGroup: g, PrefixLen: 1}, reps)] = true
	}
	if len(seen) != 3 {
		t.Errorf("64 groups landed on only %d of 3 replicas", len(seen))
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"rr": "round-robin", "round-robin": "round-robin",
		"jsq":      "jsq",
		"affinity": "prefix-affinity", "prefix-affinity": "prefix-affinity",
	} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("PolicyByName(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	names := PolicyNames()
	if len(names) != 3 {
		t.Errorf("PolicyNames() = %v, want 3 canonical names", names)
	}
}

// TestRouterValidation covers rejected router configurations and
// workloads.
func TestRouterValidation(t *testing.T) {
	wl, err := Trace("one", []Request{{PromptLen: 8, OutputLen: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRouted(RouterConfig{Replicas: 0, Replica: testConfig()}, wl); err == nil {
		t.Error("Replicas=0 accepted")
	}
	bad := testConfig()
	bad.AR = nil
	if _, err := RunRouted(RouterConfig{Replicas: 2, Replica: bad}, wl); err == nil {
		t.Error("invalid replica config accepted")
	}
	cfg := testConfig()
	cfg.KVCapacityBytes = 1 // no request can ever fit: rejected, not errored
	rr, err := RunRouted(RouterConfig{Replicas: 2, Replica: cfg}, wl)
	if err != nil {
		t.Fatalf("never-fit requests must reject, not error: %v", err)
	}
	if rr.Merged.Rejected != 1 || len(rr.Merged.PerRequest) != 1 || !rr.Merged.PerRequest[0].Rejected {
		t.Errorf("impossible workload not recorded as rejection: %+v", rr.Merged)
	}
}

// TestRouterSingleReplicaEquivalence: a 1-replica routed run is the same
// simulation as a plain Run — bit-identical per-request metrics — for
// every policy. The router must add routing, not perturb the engine.
func TestRouterSingleReplicaEquivalence(t *testing.T) {
	wl := Poisson(77, 60, 10, LogNormalLen(256, 0.6, 1024), UniformLen(8, 64))
	base, err := Run(testConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	jbase, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		routed, err := RunRouted(RouterConfig{Replicas: 1, Policy: pol, Replica: testConfig()}, wl)
		if err != nil {
			t.Fatal(err)
		}
		jrep, err := json.Marshal(routed.PerReplica[0])
		if err != nil {
			t.Fatal(err)
		}
		if string(jrep) != string(jbase) {
			t.Errorf("policy %s: 1-replica routed result differs from plain Run", name)
		}
		if routed.Merged.Iterations != base.Iterations || routed.Merged.Makespan != base.Makespan {
			t.Errorf("policy %s: merged view drifted: %d/%d iterations, %d/%d makespan",
				name, routed.Merged.Iterations, base.Iterations, routed.Merged.Makespan, base.Makespan)
		}
	}
}

// TestRouterBalance: under round-robin, requests split evenly; under JSQ,
// every request lands somewhere and the merged result conserves the
// workload.
func TestRouterBalance(t *testing.T) {
	wl := Poisson(55, 90, 15, LogNormalLen(256, 0.6, 1024), UniformLen(8, 64))
	for _, name := range []string{"round-robin", "jsq"} {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRouted(RouterConfig{Replicas: 3, Policy: pol, Replica: testConfig()}, wl)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, pr := range res.PerReplica {
			total += len(pr.PerRequest)
			if name == "round-robin" && len(pr.PerRequest) != 30 {
				t.Errorf("round-robin replica %d completed %d requests, want 30", i, len(pr.PerRequest))
			}
		}
		if total != 90 || len(res.Merged.PerRequest) != 90 {
			t.Fatalf("policy %s: %d per-replica / %d merged completions, want 90", name, total, len(res.Merged.PerRequest))
		}
		// Merged records are ID-ordered and cover every request exactly once.
		for i, m := range res.Merged.PerRequest {
			if m.ID != i {
				t.Fatalf("policy %s: merged record %d has ID %d", name, i, m.ID)
			}
		}
	}
}

// TestPrefixAffinityHits: with prefix groups pinned, every group member
// after the first gets a prefix hit and a strictly earlier first token
// than the same workload without grouping.
func TestPrefixAffinityHits(t *testing.T) {
	base := Poisson(66, 80, 12, FixedLen(600), FixedLen(16))
	grouped := WithPrefixGroups(base, 660, 4, 1.0, 512)
	pol, err := PolicyByName("affinity")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRouted(RouterConfig{Replicas: 2, Policy: pol, Replica: testConfig()}, grouped)
	if err != nil {
		t.Fatal(err)
	}
	hits, groups := 0, map[uint64]bool{}
	for _, r := range grouped.Requests {
		groups[r.PrefixGroup] = true
	}
	for _, m := range res.Merged.PerRequest {
		if m.PrefixHit {
			hits++
		}
	}
	// Every request is grouped and each group pins to one replica. The
	// first member of each group always misses, and members admitted while
	// the group's first prefill is still in flight miss too (the cache is
	// marked resident only at prefill completion) — so hits are bounded
	// above by one cold miss per group, and at this arrival rate most
	// members must land after their group's prefix is resident.
	max := len(grouped.Requests) - len(groups)
	if hits > max {
		t.Errorf("prefix hits = %d, above the %d bound (at least one cold miss per group)", hits, max)
	}
	if hits < max/2 {
		t.Errorf("prefix hits = %d of %d possible — affinity pinning produced almost no reuse", hits, max)
	}

	// The discount must show up as latency saved: the same arrivals without
	// grouping prefill all 600 tokens per request instead of 88, so the
	// grouped run's mean TTFT must be strictly lower.
	polU, _ := PolicyByName("affinity")
	ung, err := RunRouted(RouterConfig{Replicas: 2, Policy: polU, Replica: testConfig()}, base)
	if err != nil {
		t.Fatal(err)
	}
	meanTTFT := func(r *Result) float64 {
		var sum float64
		for _, m := range r.PerRequest {
			sum += float64(m.TTFT())
		}
		return sum / float64(len(r.PerRequest))
	}
	if g, u := meanTTFT(res.Merged), meanTTFT(ung.Merged); g >= u {
		t.Errorf("grouped mean TTFT %.0f ns is not below ungrouped %.0f ns — prefix reuse saved no latency", g, u)
	}
}

// TestRoutedDeterministicReplay is the router's acceptance gate, extending
// the 220-request single-replica pattern: a seeded 300-request Poisson
// workload routed by JSQ across 3 replicas over the real
// simulated-collective timer replays with bit-identical merged and
// per-replica metrics across runs.
func TestRoutedDeterministicReplay(t *testing.T) {
	run := func() *RoutedResult {
		envFn := func() *topology.Env { return topology.A100_80G(1) }
		cfg := Config{
			Env:             envFn(),
			Model:           inference.Llama3x70B(8),
			AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
			MaxBatch:        16,
			KVCapacityBytes: 2 << 30,
			ChunkTokens:     512,
			Metrics:         MetricsExact,
		}
		wl := Poisson(2027, 300, 20, LogNormalLen(384, 0.6, 1024), LogNormalLen(48, 0.5, 128))
		res, err := RunRouted(RouterConfig{Replicas: 3, Policy: NewJSQ(), Replica: cfg}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Merged.PerRequest) != 300 {
		t.Fatalf("completed %d requests, want 300", len(a.Merged.PerRequest))
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("two JSQ routed replays of the same seeded workload produced different metrics")
	}
	// JSQ must actually have spread the work: no replica idle, no replica
	// hoarding.
	for i, pr := range a.PerReplica {
		if n := len(pr.PerRequest); n < 50 || n > 200 {
			t.Errorf("replica %d completed %d of 300 requests — JSQ imbalance", i, n)
		}
	}
	sum := a.Summarize(SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 200 * sim.Millisecond})
	if sum.Requests != 300 || sum.ThroughputTokS <= 0 {
		t.Errorf("degenerate merged summary: %+v", sum)
	}
}

// TestMergeResults: pooling invariants the router's aggregation depends
// on — merging per-replica results equals summarizing the pooled samples,
// and merging is associative.
func TestMergeResults(t *testing.T) {
	wl := Poisson(88, 120, 15, LogNormalLen(256, 0.6, 1024), UniformLen(8, 64))
	full, err := Run(testConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministically scatter the records over three parts.
	parts := make([]*Result, 3)
	for i := range parts {
		parts[i] = &Result{Workload: full.Workload}
	}
	rng := NewRNG(3)
	for _, m := range full.PerRequest {
		i := rng.Intn(3)
		parts[i].PerRequest = append(parts[i].PerRequest, m)
	}
	total := 0
	for i, p := range parts {
		p.Iterations = full.Iterations / 3
		if i == 0 {
			p.Iterations += full.Iterations % 3
		}
		total += len(p.PerRequest)
	}
	if total != len(full.PerRequest) {
		t.Fatalf("scatter lost records: %d != %d", total, len(full.PerRequest))
	}

	slo := SLO{MaxTTFT: 500 * sim.Millisecond, MaxTPOT: 100 * sim.Millisecond}
	merged := MergeResults(parts...)
	if got, want := merged.Summarize(slo), full.Summarize(slo); !reflect.DeepEqual(got, want) {
		t.Errorf("merged summary differs from pooled:\n got %+v\nwant %+v", got, want)
	}
	if merged.Makespan != full.Makespan {
		t.Errorf("merged makespan %d != pooled %d", merged.Makespan, full.Makespan)
	}

	// Associativity: merge(merge(a,b),c) == merge(a,b,c), byte for byte.
	ab := MergeResults(parts[0], parts[1])
	left, err := json.Marshal(MergeResults(ab, parts[2]))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(left) != string(flat) {
		t.Error("MergeResults is not associative")
	}

	// Degenerate merges are well-defined.
	if e := MergeResults(); len(e.PerRequest) != 0 || e.Makespan != 0 {
		t.Errorf("empty merge not zero: %+v", e)
	}
	if e := MergeResults(nil, &Result{}); len(e.PerRequest) != 0 {
		t.Errorf("nil-part merge not zero: %+v", e)
	}
}
