package serve

// Unit, fuzz and allocation-gate coverage for the paged KV allocator. The
// fuzz target drives random alloc/free sequences against a reference model
// (a plain set) and checks the scoreboard never double-allocates, never
// exceeds capacity, and conserves blocks; CI replays the committed seed
// corpus and gates BenchmarkKVPagerAllocFree at 0 allocs/op.

import (
	"testing"
)

func TestKVPagerBasics(t *testing.T) {
	p, err := NewKVPager(100*40960, 16, 40960) // 100 tokens -> 6 blocks of 16
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocks() != 6 || p.BlockTokens() != 16 || p.BlockBytes() != 16*40960 {
		t.Fatalf("geometry: %d blocks x %d tokens x %d bytes", p.Blocks(), p.BlockTokens(), p.BlockBytes())
	}
	if got := p.BlocksFor(0); got != 0 {
		t.Errorf("BlocksFor(0) = %d", got)
	}
	if got := p.BlocksFor(1); got != 1 {
		t.Errorf("BlocksFor(1) = %d", got)
	}
	if got := p.BlocksFor(16); got != 1 {
		t.Errorf("BlocksFor(16) = %d", got)
	}
	if got := p.BlocksFor(17); got != 2 {
		t.Errorf("BlocksFor(17) = %d", got)
	}
	var held []int
	for i := 0; i < 6; i++ {
		b, ok := p.Alloc()
		if !ok {
			t.Fatalf("exhausted after %d of 6 blocks", i)
		}
		held = append(held, b)
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("allocated past capacity")
	}
	if p.FreeBlocks() != 0 || p.UsedBlocks() != 6 {
		t.Fatalf("full pager reports %d free / %d used", p.FreeBlocks(), p.UsedBlocks())
	}
	p.Free(held[3])
	if b, ok := p.Alloc(); !ok || b != held[3] {
		t.Fatalf("freed block not reallocated first-fit: got %d ok=%v want %d", b, ok, held[3])
	}

	if _, err := NewKVPager(100, 16, 40960); err == nil {
		t.Error("sub-block capacity accepted")
	}
	if _, err := NewKVPager(1<<20, 0, 1); err == nil {
		t.Error("zero block tokens accepted")
	}
}

func TestKVPagerDoubleFreePanics(t *testing.T) {
	p, err := NewKVPager(1<<20, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := p.Alloc()
	if !ok {
		t.Fatal("empty pager failed to allocate")
	}
	p.Free(b)
	for _, bad := range []int{b, -1, p.Blocks()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", bad)
				}
			}()
			p.Free(bad)
		}()
	}
}

// FuzzKVPager: random alloc/free sequences against a reference set. The
// scoreboard must hand out unique in-range blocks, fail allocation exactly
// when full, keep used+free == capacity at every step, and refill to
// exactly its block count after a drain — block conservation, which is
// byte conservation at a fixed block size.
func FuzzKVPager(f *testing.F) {
	f.Add(uint32(64), uint32(16), []byte{0, 1, 2, 200, 3, 4, 201, 5})
	f.Add(uint32(1), uint32(1), []byte{9, 9, 9, 130})
	f.Add(uint32(130), uint32(7), []byte{10, 20, 30, 250, 40, 50, 255, 60, 128})
	f.Fuzz(func(t *testing.T, blocks, blockTokens uint32, ops []byte) {
		if blocks == 0 || blocks > 4096 || blockTokens == 0 || blockTokens > 1024 {
			t.Skip()
		}
		const bytesPerTok = 8
		p, err := NewKVPager(int64(blocks)*int64(blockTokens)*bytesPerTok, int(blockTokens), bytesPerTok)
		if err != nil {
			t.Fatal(err)
		}
		if p.Blocks() != int(blocks) {
			t.Fatalf("pager sized %d blocks, want %d", p.Blocks(), blocks)
		}
		owned := make(map[int]bool)
		var order []int
		for i, op := range ops {
			if op < 128 { // alloc
				b, ok := p.Alloc()
				if ok != (len(owned) < p.Blocks()) {
					t.Fatalf("op %d: Alloc ok=%v with %d/%d used", i, ok, len(owned), p.Blocks())
				}
				if ok {
					if b < 0 || b >= p.Blocks() {
						t.Fatalf("op %d: block %d out of range", i, b)
					}
					if owned[b] {
						t.Fatalf("op %d: block %d allocated twice", i, b)
					}
					owned[b] = true
					order = append(order, b)
				}
			} else if len(order) > 0 { // free a pseudo-random held block
				j := int(op) % len(order)
				b := order[j]
				order = append(order[:j], order[j+1:]...)
				delete(owned, b)
				p.Free(b)
			}
			if p.UsedBlocks() != len(owned) {
				t.Fatalf("op %d: used %d != model %d", i, p.UsedBlocks(), len(owned))
			}
			if p.UsedBlocks()+p.FreeBlocks() != p.Blocks() {
				t.Fatalf("op %d: conservation broken: %d used + %d free != %d",
					i, p.UsedBlocks(), p.FreeBlocks(), p.Blocks())
			}
		}
		// Drain and refill: every block must come back exactly once.
		for _, b := range order {
			p.Free(b)
		}
		for i := 0; i < p.Blocks(); i++ {
			if _, ok := p.Alloc(); !ok {
				t.Fatalf("drained pager exhausted after %d of %d blocks", i, p.Blocks())
			}
		}
		if _, ok := p.Alloc(); ok {
			t.Fatal("allocated past capacity after refill")
		}
	})
}

// BenchmarkKVPagerAllocFree is the hot-path allocation gate: one
// Alloc+Free round-trip on a production-sized pager (8 GiB at Llama3-70B's
// 40 KiB/token, 16-token blocks) must run allocation-free. CI enforces
// 0 allocs/op.
func BenchmarkKVPagerAllocFree(b *testing.B) {
	p, err := NewKVPager(8<<30, 16, 40960)
	if err != nil {
		b.Fatal(err)
	}
	// Hold half the pool so the cursor exercises the scan, not just bit 0.
	for i := 0; i < p.Blocks()/2; i++ {
		if _, ok := p.Alloc(); !ok {
			b.Fatal("pager exhausted during setup")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, ok := p.Alloc()
		if !ok {
			b.Fatal("pager exhausted")
		}
		p.Free(blk)
	}
}
