package serve

// Native Go fuzz targets for the workload layer's two determinism-critical
// inputs: the splitmix64 RNG (goldens depend on its stream never changing)
// and LenDist sampling (every generated length must respect its declared
// bounds, whatever the seed or parameters). Run continuously with
// `go test -fuzz=FuzzRNG ./internal/serve`; CI replays the committed seed
// corpus plus a short -fuzztime smoke per target.

import (
	"math"
	"testing"

	"mscclpp/internal/sim"
)

// FuzzRNG: the splitmix64 generator never panics, produces in-range
// variates, and is a pure function of its seed — the identical-seed ⇒
// identical-stream guarantee every golden rests on.
func FuzzRNG(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Add(uint64(0x9e3779b97f4a7c15))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 256; i++ {
			av := a.Uint64()
			if av != b.Uint64() {
				t.Fatalf("seed %d: streams diverged at draw %d", seed, i)
			}
		}
		r := NewRNG(seed)
		for i := 0; i < 256; i++ {
			if v := r.Float64(); v < 0 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("seed %d: Float64 = %g out of [0, 1)", seed, v)
			}
			if e := r.Exp(100); e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("seed %d: Exp(100) = %g", seed, e)
			}
			if n := r.Norm(); math.IsNaN(n) {
				t.Fatalf("seed %d: Norm is NaN", seed)
			}
			if v := r.Intn(7); v < 0 || v >= 7 {
				t.Fatalf("seed %d: Intn(7) = %d", seed, v)
			}
		}
		// Mix64 is a bijection's forward map: zero inputs still avalanche.
		if Mix64(seed) == Mix64(seed+1) {
			t.Fatalf("Mix64 collided on adjacent inputs at %d", seed)
		}
	})
}

// FuzzScalePolicy: whatever signal stream an autoscale policy is fed —
// hostile utilizations and attainments included — the driver-side clamp
// of its decision never leaves [min, max], and no registered policy
// panics. This is the fleet-safety contract RunAutoscaled relies on:
// arbitrary ScaleSignals must never produce a negative or above-max
// replica count.
func FuzzScalePolicy(f *testing.F) {
	f.Add(int64(0), 2, 0, 1, 1, 4, int64(0), 0.5, 0.99, int64(10))
	f.Add(int64(15_000_000_000), 4, 1, 1, 1, 8, int64(120_000), 1.2, 0.0, int64(0))
	f.Add(int64(-5), -3, -1, -2, 0, 0, int64(-77), math.Inf(1), math.NaN(), int64(-1))
	f.Add(int64(1)<<60, 1<<30, 1<<20, 1<<10, 7, 3, int64(1)<<62, -7.5, 123.0, int64(1)<<40)
	f.Fuzz(func(t *testing.T, timeNs int64, active, prov, draining, min, max int,
		queued int64, util, att float64, completed int64) {
		sig := ScaleSignals{
			TimeNs:         sim.Time(timeNs),
			Active:         active,
			Provisioning:   prov,
			Draining:       draining,
			Min:            min,
			Max:            max,
			QueuedRequests: int(queued),
			InFlightTokens: queued,
			Utilization:    util,
			Attainment:     att,
			Completed:      completed,
		}
		for _, name := range ScalePolicyNames() {
			pol, err := ScalePolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// Feed the same hostile sample repeatedly: stateful controllers
			// (the PID integral) must stay clamped under accumulation too.
			for i := 0; i < 8; i++ {
				got := clampReplicas(pol.Desired(sig), min, max)
				lo, hi := min, max
				if lo < 1 {
					lo = 1
				}
				if hi < lo {
					hi = lo
				}
				if got < lo || got > hi {
					t.Fatalf("%s: clamped decision %d outside [%d, %d] for %+v", name, got, lo, hi, sig)
				}
			}
		}
	})
}

// FuzzLenDist: every length distribution stays within its declared bounds
// and is deterministic in the RNG seed, across fuzzed parameters.
func FuzzLenDist(f *testing.F) {
	f.Add(uint64(1), 16, 256, 64.0, 0.5)
	f.Add(uint64(2026), 1, 1, 1.0, 0.0)
	f.Add(uint64(7), 100, 4096, 512.0, 3.0)
	f.Add(^uint64(0), 2, 3, 2.5, 10.0)
	f.Fuzz(func(t *testing.T, seed uint64, min, max int, median, sigma float64) {
		// Sanitize to the constructors' documented domains; the fuzzer's
		// job here is the sampling paths, not the panic guards (those are
		// covered by unit tests).
		if min < 1 || max < min || max > 1<<20 {
			t.Skip()
		}
		if !(median >= 1) || median > 1<<20 || math.IsNaN(sigma) || sigma < 0 || sigma > 20 {
			t.Skip()
		}

		dists := []struct {
			name   string
			d      LenDist
			lo, hi int
		}{
			{"fixed", FixedLen(max), max, max},
			{"uniform", UniformLen(min, max), min, max},
			{"lognormal", LogNormalLen(median, sigma, max), 1, max},
		}
		for _, tc := range dists {
			r1, r2 := NewRNG(seed), NewRNG(seed)
			for i := 0; i < 64; i++ {
				n := tc.d(r1)
				if n < tc.lo || n > tc.hi {
					t.Fatalf("%s draw %d: %d outside [%d, %d] (seed %d)", tc.name, i, n, tc.lo, tc.hi, seed)
				}
				if n2 := tc.d(r2); n2 != n {
					t.Fatalf("%s draw %d: same seed produced %d then %d", tc.name, i, n, n2)
				}
			}
		}
	})
}
