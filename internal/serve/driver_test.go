package serve

// Callback-vs-Proc timing equivalence. The scheduler daemon exists in two
// forms: the reference blocking Proc (DriverProc) and the callback state
// machine (DriverCallback, the default) that lets the engine drain
// naturally with no parked goroutines. They must be indistinguishable in
// virtual time: every request's full lifecycle record — admission
// instants, first-token instants, completion instants, preemption and
// swap accounting — has to match to the nanosecond, for every converted
// daemon (unified chunked-prefill replicas, routed replicas, and the
// disaggregated prefill/decode pools with their KV-handoff transits).
// The tests run in exact metrics mode and require JSON-identical results.

import (
	"encoding/json"
	"testing"

	"mscclpp/internal/sim"
)

// driverConfig is the shared replica config, paged so the equivalence
// also covers the preemption/swap wake-ups (notify from At-callbacks).
func driverConfig(driver DriverMode) Config {
	cfg := testConfig()
	cfg.MaxBatch = 8
	cfg.KVCapacityBytes = 16 << 20
	cfg.ChunkTokens = 256
	cfg.KVPolicy = KVPaged
	cfg.Preempt = PreemptSwap
	cfg.Driver = driver
	return cfg
}

func driverWorkload() Workload {
	wl := Bursty(7301, 300, 40, 400, 200*sim.Millisecond, 50*sim.Millisecond,
		LogNormalLen(256, 0.6, 1024), LogNormalLen(32, 0.5, 96))
	return WithPriorities(wl, 7302, 0.6)
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDriverEquivalenceUnified(t *testing.T) {
	wl := driverWorkload()
	run := func(d DriverMode) *Result {
		res, err := Run(driverConfig(d), wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cb, proc := run(DriverCallback), run(DriverProc)
	if len(cb.Preempts) == 0 {
		t.Error("workload triggered no preemptions; equivalence test lost its teeth")
	}
	if got, want := mustJSON(t, cb), mustJSON(t, proc); got != want {
		t.Errorf("callback and proc drivers disagree on the unified replica:\ncallback: %.400s\nproc:     %.400s", got, want)
	}
}

func TestDriverEquivalenceRouted(t *testing.T) {
	wl := driverWorkload()
	run := func(d DriverMode) *RoutedResult {
		res, err := RunRouted(RouterConfig{Replicas: 3, Policy: NewJSQ(), Replica: driverConfig(d)}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := mustJSON(t, run(DriverCallback)), mustJSON(t, run(DriverProc)); got != want {
		t.Errorf("callback and proc drivers disagree on routed replicas:\ncallback: %.400s\nproc:     %.400s", got, want)
	}
}

func TestDriverEquivalenceDisagg(t *testing.T) {
	wl := driverWorkload()
	run := func(d DriverMode) *DisaggResult {
		res, err := RunDisaggregated(DisaggConfig{
			PrefillReplicas: 2,
			DecodeReplicas:  2,
			Replica:         driverConfig(d),
		}, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got, want := mustJSON(t, run(DriverCallback)), mustJSON(t, run(DriverProc)); got != want {
		t.Errorf("callback and proc drivers disagree on disaggregated pools:\ncallback: %.400s\nproc:     %.400s", got, want)
	}
}

// TestDriverEquivalenceStream: same check in streaming mode — summaries
// (sketch-derived quantiles included: identical completion streams fold
// into identical buckets) must match exactly across drivers.
func TestDriverEquivalenceStream(t *testing.T) {
	wl := driverWorkload()
	slo := SLO{MaxTTFT: sim.Second, MaxTPOT: 10 * sim.Millisecond}
	run := func(d DriverMode) Summary {
		cfg := driverConfig(d)
		cfg.Metrics = MetricsStream
		cfg.SLO = slo
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summarize(slo)
	}
	if got, want := mustJSON(t, run(DriverCallback)), mustJSON(t, run(DriverProc)); got != want {
		t.Errorf("callback and proc drivers disagree on streamed summaries:\ncallback: %s\nproc: %s", got, want)
	}
}
