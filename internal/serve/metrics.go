package serve

// Per-request serving metrics and their aggregation: TTFT / TPOT / E2E
// latency distributions (percentiles via benchkit) and goodput under SLOs.
// All raw values are exact virtual-time integers; summaries derive from
// them deterministically.

import (
	"sort"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// RequestMetrics is the lifecycle record of one completed request.
type RequestMetrics struct {
	ID        int `json:"id"`
	PromptLen int `json:"prompt_len"`
	OutputLen int `json:"output_len"`

	Arrival    sim.Time `json:"arrival_ns"`
	Admitted   sim.Time `json:"admitted_ns"`    // joined the running batch
	FirstToken sim.Time `json:"first_token_ns"` // prefill completed
	Done       sim.Time `json:"done_ns"`        // last token generated

	// PrefixHit records whether admission found the request's shared
	// prompt prefix already cached on the replica (see Request.PrefixGroup).
	PrefixHit bool `json:"prefix_hit,omitempty"`

	// Disaggregated-serving extras (zero, and omitted from JSON, for
	// unified runs). DecodeAdmitted is when the decode pool let the
	// request's completed handoff into a running batch; KVHandoffBytes is
	// the prompt KV footprint moved prefill -> decode over the fabric (all
	// tensor-parallel shards); HandoffNs is that transfer's duration,
	// including occupancy waits on busy NICs/DMA engines.
	DecodeAdmitted sim.Time     `json:"decode_admitted_ns,omitempty"`
	KVHandoffBytes int64        `json:"kv_handoff_bytes,omitempty"`
	HandoffNs      sim.Duration `json:"handoff_ns,omitempty"`
}

// TTFT is the time-to-first-token: arrival to first output token.
func (m RequestMetrics) TTFT() sim.Duration { return m.FirstToken - m.Arrival }

// QueueDelay is the time spent waiting for admission.
func (m RequestMetrics) QueueDelay() sim.Duration { return m.Admitted - m.Arrival }

// E2E is the end-to-end latency: arrival to last token.
func (m RequestMetrics) E2E() sim.Duration { return m.Done - m.Arrival }

// TPOT is the mean time-per-output-token over the decode phase (0 for
// single-token outputs, which have no decode phase).
func (m RequestMetrics) TPOT() sim.Duration {
	if m.OutputLen <= 1 {
		return 0
	}
	return (m.Done - m.FirstToken) / sim.Duration(m.OutputLen-1)
}

// Result is the outcome of one serving simulation.
type Result struct {
	Workload   string           `json:"workload"`
	PerRequest []RequestMetrics `json:"per_request"`
	Makespan   sim.Duration     `json:"makespan_ns"` // first arrival to last completion
	Iterations int              `json:"iterations"`  // engine iterations executed
}

// MergeResults pools per-replica results into one cluster-level Result:
// per-request records are concatenated and ordered by request ID (stable,
// so duplicate IDs keep their argument order), iteration counts add, and
// the merged makespan spans the earliest pooled arrival to the latest
// pooled completion. Merging is associative — merging merges equals
// merging the parts — and Summarize over a merge equals Summarize over
// the pooled samples, which is the invariant the router's cross-replica
// aggregation depends on. Nil parts are skipped; the merged workload name
// is the first non-empty one.
func MergeResults(parts ...*Result) *Result {
	out := &Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.Workload == "" {
			out.Workload = p.Workload
		}
		out.Iterations += p.Iterations
		out.PerRequest = append(out.PerRequest, p.PerRequest...)
	}
	sort.SliceStable(out.PerRequest, func(i, j int) bool {
		return out.PerRequest[i].ID < out.PerRequest[j].ID
	})
	if len(out.PerRequest) > 0 {
		minArr, maxDone := out.PerRequest[0].Arrival, out.PerRequest[0].Done
		for _, m := range out.PerRequest[1:] {
			if m.Arrival < minArr {
				minArr = m.Arrival
			}
			if m.Done > maxDone {
				maxDone = m.Done
			}
		}
		out.Makespan = maxDone - minArr
	}
	return out
}

// SLO is a latency service-level objective for goodput accounting. A
// request meets the SLO when TTFT <= MaxTTFT and TPOT <= MaxTPOT (either
// bound may be zero, meaning "not constrained").
type SLO struct {
	MaxTTFT sim.Duration
	MaxTPOT sim.Duration
}

// Met reports whether one request satisfied the SLO.
func (s SLO) Met(m RequestMetrics) bool {
	if s.MaxTTFT > 0 && m.TTFT() > s.MaxTTFT {
		return false
	}
	if s.MaxTPOT > 0 && m.TPOT() > s.MaxTPOT {
		return false
	}
	return true
}

// Summary is the aggregate view of a Result: latency percentiles in
// milliseconds, token throughput, and goodput under an SLO.
type Summary struct {
	Requests   int     `json:"requests"`
	Iterations int     `json:"iterations"`
	MakespanS  float64 `json:"makespan_s"`

	TTFTp50ms float64 `json:"ttft_p50_ms"`
	TTFTp90ms float64 `json:"ttft_p90_ms"`
	TTFTp99ms float64 `json:"ttft_p99_ms"`
	TPOTp50ms float64 `json:"tpot_p50_ms"`
	TPOTp99ms float64 `json:"tpot_p99_ms"`
	E2Ep50ms  float64 `json:"e2e_p50_ms"`
	E2Ep99ms  float64 `json:"e2e_p99_ms"`

	// Throughput counts every generated token; Goodput only tokens of
	// SLO-compliant requests. Both are tokens/second of virtual time.
	ThroughputTokS float64 `json:"throughput_tok_s"`
	GoodputTokS    float64 `json:"goodput_tok_s"`
	// SLOAttainment is the fraction of requests meeting the SLO.
	SLOAttainment float64 `json:"slo_attainment"`
}

// Summarize aggregates a Result under an SLO.
func (r *Result) Summarize(slo SLO) Summary {
	n := len(r.PerRequest)
	s := Summary{
		Requests:   n,
		Iterations: r.Iterations,
		MakespanS:  float64(r.Makespan) / 1e9,
	}
	if n == 0 {
		return s
	}
	ttft := make([]float64, 0, n)
	tpot := make([]float64, 0, n)
	e2e := make([]float64, 0, n)
	var tokens, goodTokens int64
	met := 0
	for _, m := range r.PerRequest {
		ttft = append(ttft, float64(m.TTFT())/1e6)
		e2e = append(e2e, float64(m.E2E())/1e6)
		if m.OutputLen > 1 {
			tpot = append(tpot, float64(m.TPOT())/1e6)
		}
		tokens += int64(m.OutputLen)
		if slo.Met(m) {
			met++
			goodTokens += int64(m.OutputLen)
		}
	}
	// One sort per series (benchkit.Summary), then every percentile query
	// is an O(1) lookup — same values as per-call benchkit.Percentile.
	ttftS, tpotS, e2eS := benchkit.NewSummary(ttft), benchkit.NewSummary(tpot), benchkit.NewSummary(e2e)
	s.TTFTp50ms = ttftS.Percentile(50)
	s.TTFTp90ms = ttftS.Percentile(90)
	s.TTFTp99ms = ttftS.Percentile(99)
	s.TPOTp50ms = tpotS.Percentile(50)
	s.TPOTp99ms = tpotS.Percentile(99)
	s.E2Ep50ms = e2eS.Percentile(50)
	s.E2Ep99ms = e2eS.Percentile(99)
	if r.Makespan > 0 {
		s.ThroughputTokS = float64(tokens) / (float64(r.Makespan) / 1e9)
		s.GoodputTokS = float64(goodTokens) / (float64(r.Makespan) / 1e9)
	}
	s.SLOAttainment = float64(met) / float64(n)
	return s
}
