package serve

// Per-request serving metrics and their aggregation: TTFT / TPOT / E2E
// latency distributions (percentiles via benchkit) and goodput under SLOs.
// All raw values are exact virtual-time integers; summaries derive from
// them deterministically. Fields added for paged KV (preemption, swap and
// rejection accounting, priority tiers) are omitempty-zero on legacy
// configurations so pre-paging goldens stay byte-identical.

import (
	"fmt"
	"sort"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// RequestMetrics is the lifecycle record of one completed (or rejected)
// request.
type RequestMetrics struct {
	ID        int `json:"id"`
	PromptLen int `json:"prompt_len"`
	OutputLen int `json:"output_len"`

	// Priority is the request's admission tier (0 = interactive, highest;
	// larger values are lower classes — see Request.Priority).
	Priority int `json:"priority,omitempty"`

	Arrival    sim.Time `json:"arrival_ns"`
	Admitted   sim.Time `json:"admitted_ns"`    // joined the running batch
	FirstToken sim.Time `json:"first_token_ns"` // prefill completed
	Done       sim.Time `json:"done_ns"`        // last token generated

	// PrefixHit records whether admission found the request's shared
	// prompt prefix already cached on the replica (see Request.PrefixGroup).
	PrefixHit bool `json:"prefix_hit,omitempty"`

	// Preemptions counts how many times a paged replica evicted this
	// request mid-run; SwapBytes sums the KV bytes its swap-out and
	// swap-in transfers moved over the copy engines (all TP lanes, both
	// directions). Zero under KVReserve.
	Preemptions int   `json:"preemptions,omitempty"`
	SwapBytes   int64 `json:"swap_bytes,omitempty"`

	// Rejected marks a request the configuration could never admit: it was
	// refused up front with RejectedReason instead of aborting the run, and
	// its Admitted/FirstToken/Done are zero. Rejected rows count against
	// SLO attainment but contribute no latency samples.
	Rejected       bool   `json:"rejected,omitempty"`
	RejectedReason string `json:"rejected_reason,omitempty"`

	// Disaggregated-serving extras (zero, and omitted from JSON, for
	// unified runs). DecodeAdmitted is when the decode pool let the
	// request's completed handoff into a running batch; KVHandoffBytes is
	// the prompt KV footprint moved prefill -> decode over the fabric (all
	// tensor-parallel shards); HandoffNs is that transfer's duration,
	// including occupancy waits on busy NICs/DMA engines.
	DecodeAdmitted sim.Time     `json:"decode_admitted_ns,omitempty"`
	KVHandoffBytes int64        `json:"kv_handoff_bytes,omitempty"`
	HandoffNs      sim.Duration `json:"handoff_ns,omitempty"`
}

// TTFT is the time-to-first-token: arrival to first output token.
func (m RequestMetrics) TTFT() sim.Duration { return m.FirstToken - m.Arrival }

// QueueDelay is the time spent waiting for admission.
func (m RequestMetrics) QueueDelay() sim.Duration { return m.Admitted - m.Arrival }

// E2E is the end-to-end latency: arrival to last token.
func (m RequestMetrics) E2E() sim.Duration { return m.Done - m.Arrival }

// TPOT is the mean time-per-output-token over the decode phase (0 for
// single-token outputs, which have no decode phase).
func (m RequestMetrics) TPOT() sim.Duration {
	if m.OutputLen <= 1 {
		return 0
	}
	return (m.Done - m.FirstToken) / sim.Duration(m.OutputLen-1)
}

// PreemptEvent records one paged-KV eviction and the closed-form costs the
// recompute-or-swap crossover compared at that instant — the audit trail
// the serve-overload scenario checks the policy against.
type PreemptEvent struct {
	TimeNs    sim.Time `json:"time_ns"`
	RequestID int      `json:"request_id"`
	// Mode is "recompute" or "swap" — the choice actually taken.
	Mode string `json:"mode"`
	// ResidentTokens is the victim's KV-resident context size at eviction.
	ResidentTokens int `json:"resident_tokens"`
	// RecomputeCostNs is the closed-form cost of re-prefilling the resident
	// context (batch of 1, uncontended); SwapCostNs is the closed-form cost
	// of one swap-out plus one swap-in over uncontended copy engines.
	RecomputeCostNs sim.Duration `json:"recompute_cost_ns"`
	SwapCostNs      sim.Duration `json:"swap_cost_ns"`
}

// Result is the outcome of one serving simulation. Under the default
// MetricsStream mode PerRequest stays empty and Stream carries the
// bounded-memory accumulators; under MetricsExact, Stream is nil and
// PerRequest holds every row (the pre-streaming behavior, and the JSON
// schema is unchanged — Stream never marshals).
type Result struct {
	Workload   string           `json:"workload"`
	PerRequest []RequestMetrics `json:"per_request"`
	Makespan   sim.Duration     `json:"makespan_ns"` // first arrival to last completion
	Iterations int              `json:"iterations"`  // engine iterations executed

	// Stream is the bounded-memory metric state (MetricsStream mode only;
	// nil under MetricsExact). It is process-local state, not part of the
	// canonical result encoding.
	Stream *StreamStats `json:"-"`

	// Paged-KV accounting (all zero, and omitted from JSON, under
	// KVReserve): Preemptions = Recomputes + Swaps counts evictions,
	// SwapBytes sums swap traffic over the copy engines, Rejected counts
	// requests refused up front, and Preempts is the per-eviction audit
	// trail in event order.
	Preemptions int            `json:"preemptions,omitempty"`
	Recomputes  int            `json:"recomputes,omitempty"`
	Swaps       int            `json:"swaps,omitempty"`
	SwapBytes   int64          `json:"swap_bytes,omitempty"`
	Rejected    int            `json:"rejected,omitempty"`
	Preempts    []PreemptEvent `json:"preempt_events,omitempty"`

	// Counters is the replica's named resource-counter snapshot (the
	// observe-only gpu iteration resource, KV-swap lanes when paged) taken
	// when Result was built. Introspection state, not part of the
	// canonical result encoding; merges do not pool it.
	Counters []sim.CounterGroup `json:"-"`
}

// MergeResults pools per-replica results into one cluster-level Result:
// per-request records are concatenated and ordered by request ID (stable,
// so duplicate IDs keep their argument order), iteration and preemption
// counts add, preemption events merge in (time, request) order, and the
// merged makespan spans the earliest pooled arrival to the latest pooled
// completion (rejected rows, which never complete, don't stretch it).
// Merging is associative — merging merges equals merging the parts — and
// Summarize over a merge equals Summarize over the pooled samples, which
// is the invariant the router's cross-replica aggregation depends on. Nil
// parts are skipped; the merged workload name is the first non-empty one.
//
// Streaming parts (Result.Stream non-nil) merge without touching any
// per-request data: tier counters add and the quantile sketches merge
// bucket-wise, so pooling a million-request cluster copies no rows. All
// parts must be in the same metrics mode (mixing exact and streaming
// parts panics — the pooled summary would silently drop samples).
func MergeResults(parts ...*Result) *Result {
	out := &Result{}
	streamParts, exactParts := 0, 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.Workload == "" {
			out.Workload = p.Workload
		}
		out.Iterations += p.Iterations
		out.Preemptions += p.Preemptions
		out.Recomputes += p.Recomputes
		out.Swaps += p.Swaps
		out.SwapBytes += p.SwapBytes
		out.Rejected += p.Rejected
		out.Preempts = append(out.Preempts, p.Preempts...)
		if p.Stream != nil {
			streamParts++
			if out.Stream == nil {
				out.Stream = newStreamStats(p.Stream.slo, p.Stream.tierSLOs)
			}
			out.Stream.merge(p.Stream)
			continue
		}
		exactParts++
		out.PerRequest = append(out.PerRequest, p.PerRequest...)
	}
	if streamParts > 0 && exactParts > 0 {
		panic(fmt.Sprintf("serve: MergeResults mixing %d streaming and %d exact parts", streamParts, exactParts))
	}
	sort.SliceStable(out.Preempts, func(i, j int) bool {
		if out.Preempts[i].TimeNs != out.Preempts[j].TimeNs {
			return out.Preempts[i].TimeNs < out.Preempts[j].TimeNs
		}
		return out.Preempts[i].RequestID < out.Preempts[j].RequestID
	})
	if out.Stream != nil {
		if out.Stream.hasSpan {
			out.Makespan = out.Stream.lastDone - out.Stream.firstArr
		}
		return out
	}
	sort.SliceStable(out.PerRequest, func(i, j int) bool {
		return out.PerRequest[i].ID < out.PerRequest[j].ID
	})
	first := true
	var minArr sim.Time
	var maxDone sim.Time
	for _, m := range out.PerRequest {
		if m.Rejected {
			continue
		}
		if first || m.Arrival < minArr {
			minArr = m.Arrival
		}
		if first || m.Done > maxDone {
			maxDone = m.Done
		}
		first = false
	}
	if !first {
		out.Makespan = maxDone - minArr
	}
	return out
}

// SLO is a latency service-level objective for goodput accounting. A
// request meets the SLO when TTFT <= MaxTTFT and TPOT <= MaxTPOT (either
// bound may be zero, meaning "not constrained").
type SLO struct {
	MaxTTFT sim.Duration
	MaxTPOT sim.Duration
}

// Met reports whether one request satisfied the SLO. Rejected requests
// never do.
func (s SLO) Met(m RequestMetrics) bool {
	if m.Rejected {
		return false
	}
	if s.MaxTTFT > 0 && m.TTFT() > s.MaxTTFT {
		return false
	}
	if s.MaxTPOT > 0 && m.TPOT() > s.MaxTPOT {
		return false
	}
	return true
}

// TierSummary aggregates one priority class of a tiered summary.
type TierSummary struct {
	Priority int `json:"priority"`
	Requests int `json:"requests"`
	Rejected int `json:"rejected,omitempty"`
	// SLOAttainment is the fraction of the tier's requests meeting the
	// tier's SLO (rejections count as misses).
	SLOAttainment float64 `json:"slo_attainment"`
	TTFTp50ms     float64 `json:"ttft_p50_ms"`
	TTFTp99ms     float64 `json:"ttft_p99_ms"`
	// GoodputTokS is the tier's SLO-compliant token throughput over the
	// whole run's makespan.
	GoodputTokS float64 `json:"goodput_tok_s"`
}

// Summary is the aggregate view of a Result: latency percentiles in
// milliseconds, token throughput, and goodput under an SLO.
type Summary struct {
	Requests   int     `json:"requests"`
	Iterations int     `json:"iterations"`
	MakespanS  float64 `json:"makespan_s"`

	TTFTp50ms float64 `json:"ttft_p50_ms"`
	TTFTp90ms float64 `json:"ttft_p90_ms"`
	TTFTp99ms float64 `json:"ttft_p99_ms"`
	TPOTp50ms float64 `json:"tpot_p50_ms"`
	TPOTp99ms float64 `json:"tpot_p99_ms"`
	E2Ep50ms  float64 `json:"e2e_p50_ms"`
	E2Ep99ms  float64 `json:"e2e_p99_ms"`

	// Throughput counts every generated token; Goodput only tokens of
	// SLO-compliant requests. Both are tokens/second of virtual time.
	ThroughputTokS float64 `json:"throughput_tok_s"`
	GoodputTokS    float64 `json:"goodput_tok_s"`
	// SLOAttainment is the fraction of requests meeting the SLO
	// (rejections count as misses).
	SLOAttainment float64 `json:"slo_attainment"`

	// Rejected counts requests refused up front (see
	// RequestMetrics.Rejected); zero on legacy configurations.
	Rejected int `json:"rejected,omitempty"`
	// ByTier is the per-priority-class breakdown, ascending priority; only
	// populated by SummarizeTiered.
	ByTier []TierSummary `json:"by_tier,omitempty"`
}

// Summarize aggregates a Result under a single SLO applied to every
// request. On a streaming Result (MetricsStream) the SLO verdicts were
// already taken at completion time, so slo must equal Config.SLO (and the
// config must not have per-tier overrides); pass the same objectives or
// retain rows with MetricsExact.
func (r *Result) Summarize(slo SLO) Summary {
	if r.Stream != nil {
		r.Stream.check(slo, nil)
		return r.Stream.summary(r, false)
	}
	return r.summarize(func(int) SLO { return slo }, false)
}

// SummarizeTiered aggregates a Result under per-tier SLOs: requests of
// priority p are held to tiers[p] when present and fallback otherwise,
// both for overall goodput/attainment and for the per-tier breakdown in
// Summary.ByTier. This is how an overload scenario holds its interactive
// tier to a tight TTFT bound while batch traffic is judged against a
// looser one.
func (r *Result) SummarizeTiered(fallback SLO, tiers map[int]SLO) Summary {
	if r.Stream != nil {
		r.Stream.check(fallback, tiers)
		return r.Stream.summary(r, true)
	}
	sloFor := func(p int) SLO {
		if s, ok := tiers[p]; ok {
			return s
		}
		return fallback
	}
	return r.summarize(sloFor, true)
}

func (r *Result) summarize(sloFor func(priority int) SLO, byTier bool) Summary {
	n := len(r.PerRequest)
	s := Summary{
		Requests:   n,
		Iterations: r.Iterations,
		MakespanS:  float64(r.Makespan) / 1e9,
	}
	if n == 0 {
		return s
	}
	ttft := make([]float64, 0, n)
	tpot := make([]float64, 0, n)
	e2e := make([]float64, 0, n)
	var tokens, goodTokens int64
	met := 0
	for _, m := range r.PerRequest {
		if m.Rejected {
			s.Rejected++
			continue
		}
		ttft = append(ttft, float64(m.TTFT())/1e6)
		e2e = append(e2e, float64(m.E2E())/1e6)
		if m.OutputLen > 1 {
			tpot = append(tpot, float64(m.TPOT())/1e6)
		}
		tokens += int64(m.OutputLen)
		if sloFor(m.Priority).Met(m) {
			met++
			goodTokens += int64(m.OutputLen)
		}
	}
	if len(ttft) > 0 {
		// One sort per series (benchkit.Summary), then every percentile query
		// is an O(1) lookup — same values as per-call benchkit.Percentile.
		ttftS, tpotS, e2eS := benchkit.NewSummary(ttft), benchkit.NewSummary(tpot), benchkit.NewSummary(e2e)
		s.TTFTp50ms = ttftS.Percentile(50)
		s.TTFTp90ms = ttftS.Percentile(90)
		s.TTFTp99ms = ttftS.Percentile(99)
		s.TPOTp50ms = tpotS.Percentile(50)
		s.TPOTp99ms = tpotS.Percentile(99)
		s.E2Ep50ms = e2eS.Percentile(50)
		s.E2Ep99ms = e2eS.Percentile(99)
	}
	if r.Makespan > 0 {
		s.ThroughputTokS = float64(tokens) / (float64(r.Makespan) / 1e9)
		s.GoodputTokS = float64(goodTokens) / (float64(r.Makespan) / 1e9)
	}
	s.SLOAttainment = float64(met) / float64(n)
	if byTier {
		s.ByTier = r.tierBreakdown(sloFor)
	}
	return s
}

// tierBreakdown groups per-request rows by priority class and aggregates
// each tier under its own SLO. Tiers are reported in ascending priority.
func (r *Result) tierBreakdown(sloFor func(priority int) SLO) []TierSummary {
	byPrio := map[int][]RequestMetrics{}
	for _, m := range r.PerRequest {
		byPrio[m.Priority] = append(byPrio[m.Priority], m)
	}
	prios := make([]int, 0, len(byPrio))
	for p := range byPrio {
		prios = append(prios, p)
	}
	sort.Ints(prios)
	out := make([]TierSummary, 0, len(prios))
	for _, p := range prios {
		rows := byPrio[p]
		slo := sloFor(p)
		t := TierSummary{Priority: p, Requests: len(rows)}
		var goodTokens int64
		met := 0
		ttft := make([]float64, 0, len(rows))
		for _, m := range rows {
			if m.Rejected {
				t.Rejected++
				continue
			}
			ttft = append(ttft, float64(m.TTFT())/1e6)
			if slo.Met(m) {
				met++
				goodTokens += int64(m.OutputLen)
			}
		}
		t.SLOAttainment = float64(met) / float64(len(rows))
		if len(ttft) > 0 {
			ts := benchkit.NewSummary(ttft)
			t.TTFTp50ms = ts.Percentile(50)
			t.TTFTp99ms = ts.Percentile(99)
		}
		if r.Makespan > 0 {
			t.GoodputTokS = float64(goodTokens) / (float64(r.Makespan) / 1e9)
		}
		out = append(out, t)
	}
	return out
}
