package serve

// Disaggregated prefill/decode serving: prompt processing runs on a
// dedicated pool of prefill replicas, token generation on a separate pool
// of decode replicas, and every finished prefill hands its KV cache to a
// decode replica over the cluster fabric before decode can begin. The
// handoff is priced honestly with internal/fabric's occupancy models —
// every tensor-parallel rank ships its KV shard over its own DMA engine or
// RDMA NIC, and concurrent handoffs queue on those resources — so the
// crossover against chunked prefill (the unified Scheduler) reflects the
// interconnect, not a free teleport.
//
// The lifecycle of one request:
//
//	arrival --PrefillPolicy--> prefill replica (chunked prefill only)
//	       prefill completes: first token emitted (TTFT), KV stays pinned
//	       --DecodePolicy--> KV handoff over the fabric (KVLink.Transfer)
//	       handoff completes: prefill KV released, decode pool admits
//	       decode replica generates tokens 2..OutputLen (pure decode)
//
// Decode iterations on the decode pool overlap with in-flight handoffs by
// construction: a transfer is an engine event, not scheduler work, so a
// decode replica keeps batching while KV for its next requests is still on
// the wire.

import (
	"fmt"

	"mscclpp/internal/fabric"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
	"mscclpp/internal/topology"
)

// KVLink prices KV-cache handoffs between replicas over one shared
// interconnect model. The fabric's GPUs are partitioned into equal
// per-replica groups; a transfer from replica src to replica dst moves one
// KV shard per GPU lane in parallel (rank g of src to rank g of dst), each
// lane over the DMA engine when the two ranks share a node and over the
// RDMA NICs otherwise. Lanes are real fabric.Fabric resources, so
// back-to-back handoffs from one replica serialize on its NICs — the
// congestion a disaggregated deployment actually pays.
type KVLink struct {
	fab     *fabric.Fabric
	gpusPer int // GPU lanes per replica group
	groups  int
}

// NewKVLink builds a handoff fabric over env, partitioned into `replicas`
// equal GPU groups: replica r owns GPUs [r*G, (r+1)*G) with
// G = env.TotalGPUs()/replicas. env must validate and divide evenly.
func NewKVLink(env *topology.Env, replicas int) (*KVLink, error) {
	if replicas < 2 {
		return nil, fmt.Errorf("serve: KVLink needs >= 2 replica groups, got %d", replicas)
	}
	if err := env.Validate(); err != nil {
		return nil, fmt.Errorf("serve: KVLink env: %w", err)
	}
	if env.TotalGPUs()%replicas != 0 {
		return nil, fmt.Errorf("serve: KVLink cannot split %d GPUs into %d replica groups", env.TotalGPUs(), replicas)
	}
	return &KVLink{
		fab:     fabric.New(env, timing.Default(env)),
		gpusPer: env.TotalGPUs() / replicas,
		groups:  replicas,
	}, nil
}

// Transfer schedules a KV handoff of shardBytes per GPU lane from replica
// group src to replica group dst starting at now, and returns the time the
// last lane's shard is fully resident at the destination. Lane transfers
// occupy the fabric's DMA engines (same-node lanes) or RDMA NICs
// (cross-node lanes); a lane whose resources are busy with an earlier
// handoff waits its turn, which is how transfer pricing stays honest under
// bursts of simultaneous prefill completions.
func (l *KVLink) Transfer(now sim.Time, src, dst int, shardBytes int64) sim.Time {
	if src == dst || src < 0 || dst < 0 || src >= l.groups || dst >= l.groups {
		panic(fmt.Sprintf("serve: KVLink.Transfer(%d -> %d) with %d groups", src, dst, l.groups))
	}
	end := now
	for g := 0; g < l.gpusPer; g++ {
		s := src*l.gpusPer + g
		d := dst*l.gpusPer + g
		var e sim.Time
		if l.fab.SameNode(s, d) {
			e = l.fab.DMA(now, s, d, shardBytes)
		} else {
			e = l.fab.RDMA(now, s, d, shardBytes)
		}
		if e > end {
			end = e
		}
	}
	return end
}

// DisaggConfig parameterizes a disaggregated prefill/decode simulation.
type DisaggConfig struct {
	// PrefillReplicas and DecodeReplicas size the two pools — the
	// pool-sizing knob the serve-disagg scenario sweeps. Both must be
	// >= 1; the deployment occupies (PrefillReplicas+DecodeReplicas) times
	// the per-replica GPU count, which is what an equal-GPU comparison
	// against RunRouted must hold constant.
	PrefillReplicas int
	DecodeReplicas  int
	// Replica configures every replica engine in both pools (same model,
	// chunk budget and KV capacity on each side).
	Replica Config
	// PrefillPolicy splits arrivals across the prefill pool; defaults to
	// token-weighted JSQ. The instance must be fresh (policies are
	// stateful).
	PrefillPolicy Policy
	// DecodePolicy places each finished prefill on a decode replica at
	// handoff time; defaults to token-weighted JSQ. Must be fresh.
	DecodePolicy Policy
}

// DisaggResult is the outcome of one disaggregated simulation: per-replica
// results for both pools, their merge as the cluster-level view, and the
// KV-handoff accounting.
type DisaggResult struct {
	PrefillPolicy string `json:"prefill_policy"`
	DecodePolicy  string `json:"decode_policy"`
	// PerPrefill holds one Result per prefill replica. Prefill replicas
	// record per-request rows only for one-token requests (which never
	// visit the decode pool); their Iterations and Makespan still count.
	PerPrefill []*Result `json:"per_prefill"`
	// PerDecode holds one Result per decode replica, with the full
	// lifecycle rows of every multi-token request it finished.
	PerDecode []*Result `json:"per_decode"`
	// Merged pools every replica of both pools (MergeResults).
	Merged *Result `json:"merged"`

	// Handoffs counts KV transfers; HandoffBytes sums bytes on the wire
	// (per-GPU shard times the tensor-parallel lane count, over all
	// handoffs); HandoffMeanNs/HandoffMaxNs aggregate transfer durations
	// including fabric occupancy waits.
	Handoffs      int          `json:"handoffs"`
	HandoffBytes  int64        `json:"handoff_bytes"`
	HandoffMeanNs sim.Duration `json:"handoff_mean_ns"`
	HandoffMaxNs  sim.Duration `json:"handoff_max_ns"`
}

// Summarize aggregates the cluster-level (merged) result under an SLO.
func (r *DisaggResult) Summarize(slo SLO) Summary { return r.Merged.Summarize(slo) }

// RunDisaggregated replays the workload against a disaggregated
// prefill/decode deployment and returns per-pool and merged metrics.
// Arrivals are routed across the prefill pool by PrefillPolicy; each
// prefill completion picks a decode replica with DecodePolicy, prices the
// KV-cache handoff on the shared fabric (KVLink), keeps the prefill-side
// KV pinned until the transfer ends, and only then lets the decode replica
// admit the request — all inside one discrete-event timeline, so decode
// batching overlaps in-flight transfers and results are bit-stable.
func RunDisaggregated(dc DisaggConfig, wl Workload) (*DisaggResult, error) {
	if dc.PrefillReplicas < 1 || dc.DecodeReplicas < 1 {
		return nil, fmt.Errorf("serve: DisaggConfig pools %d prefill / %d decode (both must be >= 1)",
			dc.PrefillReplicas, dc.DecodeReplicas)
	}
	c, admitted, rejected, err := prepare(dc.Replica, wl)
	if err != nil {
		return nil, err
	}
	ppol := dc.PrefillPolicy
	if ppol == nil {
		ppol = NewJSQ()
	}
	dpol := dc.DecodePolicy
	if dpol == nil {
		dpol = NewJSQ()
	}
	nP, nD := dc.PrefillReplicas, dc.DecodeReplicas

	// The handoff fabric spans every replica of both pools: replica group
	// i in [0, nP) is a prefill replica, group nP+j a decode replica, each
	// owning its own copy of the per-replica environment's nodes. With
	// whole nodes per replica every handoff crosses nodes and pays RDMA;
	// KVLink itself also prices colocated (same-node, DMA) layouts.
	fabEnv := *c.Env
	fabEnv.Name = c.Env.Name + "-kv"
	fabEnv.Nodes = c.Env.Nodes * (nP + nD)
	link, err := NewKVLink(&fabEnv, nP+nD)
	if err != nil {
		return nil, err
	}
	lanes := int64(c.Env.TotalGPUs())

	// Decode-pool shutdown: the pool closes once every multi-token request
	// has been delivered (one-token requests complete on the prefill side
	// and never hand off).
	expect := 0
	for _, r := range admitted.Requests {
		if r.OutputLen > 1 {
			expect++
		}
	}
	delivered := 0

	eng := sim.NewEngine()
	dec := make([]*Scheduler, nD)
	for j := range dec {
		s, err := newScheduler(eng, fmt.Sprintf("decode-%d", j), c, roleDecode)
		if err != nil {
			return nil, err
		}
		s.res.Workload = wl.Name
		dec[j] = s
	}
	closeDecode := func() {
		for _, s := range dec {
			s.Close()
		}
	}

	out := &DisaggResult{PrefillPolicy: ppol.Name(), DecodePolicy: dpol.Name()}
	pre := make([]*Scheduler, nP)
	for i := range pre {
		s, err := newScheduler(eng, fmt.Sprintf("prefill-%d", i), c, rolePrefill)
		if err != nil {
			return nil, err
		}
		s.res.Workload = wl.Name
		group := i
		s.onPrefilled = func(pr Prefilled, end sim.Time, release func()) {
			j := dpol.Pick(pr.Req, dec)
			if j < 0 || j >= len(dec) {
				panic(fmt.Sprintf("serve: decode policy %s picked replica %d of %d", dpol.Name(), j, len(dec)))
			}
			shard := c.Model.KVShardBytes(pr.Req.PromptLen)
			hEnd := link.Transfer(end, group, nP+j, shard)
			pr.HandoffBytes = shard * lanes
			pr.HandoffDur = hEnd - end
			out.Handoffs++
			out.HandoffBytes += pr.HandoffBytes
			out.HandoffMeanNs += pr.HandoffDur // sum here; divided after the run
			if pr.HandoffDur > out.HandoffMaxNs {
				out.HandoffMaxNs = pr.HandoffDur
			}
			// Commit the decode work to the chosen replica immediately so
			// later placement decisions see transfers still on the wire —
			// otherwise every prefill completing within one handoff window
			// would tie-break onto the same decode replica.
			pendTok := int64(pr.Req.OutputLen - 1)
			dec[j].reservePending(pendTok)
			// The prompt KV stays pinned on the prefill replica until the
			// transfer ends; only then may the decode pool admit. The
			// release callback frees whatever the prefill scheduler holds
			// for the request — reserved bytes or paged blocks.
			dst, done := dec[j], pr
			eng.At(hEnd, func() {
				release()
				dst.reservePending(-pendTok)
				dst.SubmitPrefilled(done)
				delivered++
				if delivered == expect {
					closeDecode()
				}
			})
		}
		pre[i] = s
	}

	var last sim.Time
	for _, r := range admitted.Requests {
		req := r
		eng.At(req.Arrival, func() {
			i := ppol.Pick(req, pre)
			if i < 0 || i >= len(pre) {
				panic(fmt.Sprintf("serve: prefill policy %s picked replica %d of %d", ppol.Name(), i, len(pre)))
			}
			pre[i].Submit(req)
		})
		if req.Arrival > last {
			last = req.Arrival
		}
	}
	eng.At(last, func() {
		for _, s := range pre {
			s.Close()
		}
		if expect == 0 {
			closeDecode()
		}
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := checkDrained(append(append([]*Scheduler{}, pre...), dec...)...); err != nil {
		return nil, err
	}

	out.PerPrefill = make([]*Result, nP)
	for i, s := range pre {
		out.PerPrefill[i] = s.Result()
	}
	out.PerDecode = make([]*Result, nD)
	for j, s := range dec {
		out.PerDecode[j] = s.Result()
	}
	all := append(append([]*Result{}, out.PerPrefill...), out.PerDecode...)
	all = append(all, rejectedPart(c, rejected))
	out.Merged = MergeResults(all...)
	if out.Handoffs > 0 {
		out.HandoffMeanNs /= sim.Duration(out.Handoffs)
	}
	return out, nil
}
