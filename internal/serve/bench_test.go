package serve

// End-to-end replica benchmarks across the driver x metrics matrix, plus
// the streaming-observe hot path. These are the serve-side inputs to the
// CI bench-regression gate (cmd/benchgate against BENCH_serve.json):
// each benchmark iteration replays the same 2000-request seeded trace
// through a full engine run, so ns/op tracks simulator wall-clock per
// trace and req/s is reported as a derived metric.

import (
	"testing"

	"mscclpp/internal/sim"
)

var benchSink *Result

func benchWorkload() Workload {
	return Poisson(6001, 2000, 200, LogNormalLen(256, 0.6, 1024), LogNormalLen(32, 0.5, 96))
}

func benchServe(b *testing.B, driver DriverMode, metrics MetricsMode) {
	b.Helper()
	cfg := testConfig()
	cfg.MaxBatch = 32
	cfg.KVCapacityBytes = 1 << 30
	cfg.ChunkTokens = 512
	cfg.Driver = driver
	cfg.Metrics = metrics
	cfg.SLO = SLO{MaxTTFT: sim.Second, MaxTPOT: 10 * sim.Millisecond}
	wl := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, wl)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
	b.ReportMetric(float64(len(wl.Requests))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServeCallbackStream(b *testing.B) { benchServe(b, DriverCallback, MetricsStream) }
func BenchmarkServeCallbackExact(b *testing.B)  { benchServe(b, DriverCallback, MetricsExact) }
func BenchmarkServeProcStream(b *testing.B)     { benchServe(b, DriverProc, MetricsStream) }
func BenchmarkServeProcExact(b *testing.B)      { benchServe(b, DriverProc, MetricsExact) }

// BenchmarkStreamObserve isolates the per-completion metrics cost under
// MetricsStream: one observe call per op on a warm two-tier accumulator.
func BenchmarkStreamObserve(b *testing.B) {
	st := newStreamStats(SLO{MaxTTFT: sim.Second, MaxTPOT: 10 * sim.Millisecond},
		map[int]SLO{1: {MaxTTFT: 4 * sim.Second, MaxTPOT: 40 * sim.Millisecond}})
	rng := NewRNG(77)
	rows := make([]RequestMetrics, 4096)
	for i := range rows {
		arr := sim.Time(rng.Intn(1_000_000_000))
		adm := arr + sim.Duration(1000+rng.Intn(1_000_000))
		first := adm + sim.Duration(1000+rng.Intn(10_000_000))
		out := 2 + rng.Intn(128)
		rows[i] = RequestMetrics{
			ID: i, PromptLen: 256, OutputLen: out, Priority: i & 1,
			Arrival: arr, Admitted: adm, FirstToken: first,
			Done: first + sim.Duration(out*int(50*sim.Microsecond)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.observe(rows[i%len(rows)])
	}
}
