// Package topology describes the simulated cluster environments used in the
// paper's evaluation (Table 2): node counts, GPUs per node, intra-node
// interconnect style and raw link characteristics.
//
// Bandwidths are expressed in bytes per nanosecond, which is numerically
// equal to GB/s (1 GB/s = 1e9 B / 1e9 ns). Latencies are nanoseconds.
package topology

import "fmt"

// LinkKind identifies an interconnect technology.
type LinkKind int

const (
	// LinkNVLink is an NVIDIA NVLink connection through an NVSwitch.
	LinkNVLink LinkKind = iota
	// LinkXGMI is an AMD Infinity Fabric (xGMI) direct peer-to-peer mesh.
	LinkXGMI
	// LinkIB is an InfiniBand RDMA connection through a network switch.
	LinkIB
)

func (k LinkKind) String() string {
	switch k {
	case LinkNVLink:
		return "NVLink"
	case LinkXGMI:
		return "xGMI"
	case LinkIB:
		return "InfiniBand"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Env describes one evaluation environment (one row of paper Table 2).
type Env struct {
	Name        string
	Nodes       int
	GPUsPerNode int

	// IntraMesh is true when intra-node GPUs are connected point-to-point
	// (xGMI on MI300x) rather than through a central switch (NVSwitch).
	// On a mesh, per-peer bandwidth is IntraBW/(GPUsPerNode-1) and best link
	// utilization requires spraying data to all peers concurrently (§7.2).
	IntraMesh bool

	// HasMulticast is true when the intra-node switch supports in-network
	// aggregation/multicast (NVLink SHARP on H100 NVSwitch), enabling
	// SwitchChannel.
	HasMulticast bool

	// IntraBW is the per-GPU, per-direction aggregate intra-node bandwidth
	// (bytes/ns == GB/s) achievable by peer-to-peer transfers.
	IntraBW float64
	// IntraLat is the one-way peer-to-peer latency over the intra-node link
	// (visibility latency of a remote store), ns.
	IntraLat int64

	// DMABW is the bandwidth achievable by the DMA-copy engines
	// (cudaMemcpy path used by intra-node PortChannel). Usually slightly
	// above the thread-copy path since it bypasses SM load/store limits.
	DMABW float64
	// DMALat is the additional initiation latency of a DMA engine transfer.
	DMALat int64

	// SwitchBW is the effective bandwidth of switch-side reduction/multicast
	// (multimem.ld_reduce / multimem.st), bytes/ns. Zero when HasMulticast
	// is false.
	SwitchBW float64
	// SwitchLat is the added latency of a switch-mapped operation, ns.
	SwitchLat int64

	// IBBW is the per-GPU NIC bandwidth (bytes/ns). One NIC per GPU.
	IBBW float64
	// IBLat is the one-way RDMA write latency (wire + NIC processing), ns.
	IBLat int64

	// GPUClockGHz and SMs parameterize the compute-side roofline used by the
	// inference workload model.
	HBMBW      float64 // device memory bandwidth, bytes/ns
	PeakTFLOPS float64 // dense BF16/FP16 tensor throughput
}

// TotalGPUs returns Nodes*GPUsPerNode.
func (e *Env) TotalGPUs() int { return e.Nodes * e.GPUsPerNode }

// PeerBW returns the achievable bandwidth between two distinct intra-node
// peers when only that single flow is active. On a mesh the aggregate
// IntraBW is striped over GPUsPerNode-1 point-to-point links; Validate
// rejects meshes with fewer than two GPUs per node, and PeerBW guards the
// division anyway so an unvalidated Env can never yield +Inf.
func (e *Env) PeerBW() float64 {
	if e.IntraMesh && e.GPUsPerNode > 1 {
		return e.IntraBW / float64(e.GPUsPerNode-1)
	}
	return e.IntraBW
}

// Validate checks internal consistency.
func (e *Env) Validate() error {
	switch {
	case e.Nodes < 1:
		return fmt.Errorf("topology %s: Nodes = %d", e.Name, e.Nodes)
	case e.GPUsPerNode < 1:
		return fmt.Errorf("topology %s: GPUsPerNode = %d", e.Name, e.GPUsPerNode)
	case e.IntraMesh && e.GPUsPerNode < 2:
		return fmt.Errorf("topology %s: IntraMesh with GPUsPerNode = %d (a mesh needs >= 2 peers per node)", e.Name, e.GPUsPerNode)
	case e.IntraBW <= 0 || e.IntraLat <= 0:
		return fmt.Errorf("topology %s: intra-node link unspecified", e.Name)
	case e.Nodes > 1 && (e.IBBW <= 0 || e.IBLat <= 0):
		return fmt.Errorf("topology %s: multi-node without IB parameters", e.Name)
	case e.HasMulticast && e.SwitchBW <= 0:
		return fmt.Errorf("topology %s: multicast without switch bandwidth", e.Name)
	}
	return nil
}

// The four evaluation environments from Table 2. Link constants are
// calibrated against paper Table 1 (H100 NVLink 397.5 GB/s / 822 ns,
// InfiniBand 48.94 GB/s / 3.76 us) and public nvbandwidth/perftest figures
// for the other platforms.

// A100_40G returns the "A100-40G" environment: 8x NVIDIA A100 40G per node,
// NVLink 3.0 via NVSwitch, HDR InfiniBand (200 Gb/s, 25 GB/s per NIC).
func A100_40G(nodes int) *Env {
	return &Env{
		Name:        "A100-40G",
		Nodes:       nodes,
		GPUsPerNode: 8,
		IntraBW:     270.0,
		IntraLat:    1100,
		DMABW:       268.0,
		DMALat:      1500,
		IBBW:        24.6,
		IBLat:       3900,
		HBMBW:       1555.0,
		PeakTFLOPS:  312.0,
	}
}

// A100_80G returns the "A100-80G" environment (same fabric as A100-40G,
// larger HBM and slightly higher memory bandwidth).
func A100_80G(nodes int) *Env {
	e := A100_40G(nodes)
	e.Name = "A100-80G"
	e.HBMBW = 2039.0
	return e
}

// H100 returns the "H100" environment: 8x H100 per node, NVLink 4.0 with
// NVSwitch SHARP (multimem), NDR InfiniBand (400 Gb/s).
func H100(nodes int) *Env {
	return &Env{
		Name:         "H100",
		Nodes:        nodes,
		GPUsPerNode:  8,
		HasMulticast: true,
		IntraBW:      400.0,
		IntraLat:     822,
		DMABW:        397.5,
		DMALat:       1300,
		SwitchBW:     310.0,
		SwitchLat:    350,
		IBBW:         48.94,
		IBLat:        3760,
		HBMBW:        3350.0,
		PeakTFLOPS:   989.0,
	}
}

// MI300x returns the "MI300x" environment: 8x AMD MI300X per node, Infinity
// Fabric (xGMI) all-to-all mesh, NDR InfiniBand.
func MI300x(nodes int) *Env {
	return &Env{
		Name:        "MI300x",
		Nodes:       nodes,
		GPUsPerNode: 8,
		IntraMesh:   true,
		IntraBW:     350.0, // 7 xGMI links x 50 GB/s
		IntraLat:    1400,
		DMABW:       340.0,
		DMALat:      1800,
		IBBW:        48.94,
		IBLat:       3760,
		HBMBW:       5300.0,
		PeakTFLOPS:  1307.0,
	}
}

// ByName returns the environment constructor matching a Table 2 name.
func ByName(name string, nodes int) (*Env, error) {
	switch name {
	case "A100-40G", "a100-40g", "a100":
		return A100_40G(nodes), nil
	case "A100-80G", "a100-80g":
		return A100_80G(nodes), nil
	case "H100", "h100":
		return H100(nodes), nil
	case "MI300x", "mi300x", "MI300X":
		return MI300x(nodes), nil
	}
	return nil, fmt.Errorf("topology: unknown environment %q", name)
}
