package topology

import (
	"math"
	"strings"
	"testing"
)

// TestValidateTable drives Validate through accepting and rejecting cases.
func TestValidateTable(t *testing.T) {
	valid := func() *Env {
		return &Env{
			Name: "t", Nodes: 2, GPUsPerNode: 8,
			IntraBW: 300, IntraLat: 1000,
			IBBW: 25, IBLat: 4000,
		}
	}
	cases := []struct {
		name    string
		mutate  func(e *Env)
		wantErr string // substring; empty means valid
	}{
		{"baseline valid", func(e *Env) {}, ""},
		{"single node needs no IB", func(e *Env) { e.Nodes = 1; e.IBBW = 0; e.IBLat = 0 }, ""},
		{"zero nodes", func(e *Env) { e.Nodes = 0 }, "Nodes"},
		{"negative nodes", func(e *Env) { e.Nodes = -1 }, "Nodes"},
		{"zero gpus", func(e *Env) { e.GPUsPerNode = 0 }, "GPUsPerNode"},
		{"missing intra bw", func(e *Env) { e.IntraBW = 0 }, "intra-node link"},
		{"missing intra lat", func(e *Env) { e.IntraLat = 0 }, "intra-node link"},
		{"multi-node without IB", func(e *Env) { e.IBBW = 0 }, "without IB"},
		{"multicast without switch bw", func(e *Env) { e.HasMulticast = true }, "multicast"},
		{"mesh with 8 gpus ok", func(e *Env) { e.IntraMesh = true }, ""},
		{"mesh with 2 gpus ok", func(e *Env) { e.IntraMesh = true; e.GPUsPerNode = 2 }, ""},
		{"mesh with 1 gpu rejected", func(e *Env) { e.IntraMesh = true; e.GPUsPerNode = 1 }, "IntraMesh"},
	}
	for _, c := range cases {
		e := valid()
		c.mutate(e)
		err := e.Validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("%s: Validate accepted invalid env", c.name)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// TestPeerBWFinite is the regression test for the +Inf bug: a degenerate
// single-GPU mesh must not divide by zero even before Validate runs, and on
// real meshes per-peer bandwidth is the aggregate striped over the links.
func TestPeerBWFinite(t *testing.T) {
	e := &Env{Name: "degenerate", Nodes: 1, GPUsPerNode: 1, IntraMesh: true, IntraBW: 350, IntraLat: 1400}
	got := e.PeerBW()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("PeerBW on 1-GPU mesh = %g, want finite", got)
	}
	if got != e.IntraBW {
		t.Errorf("PeerBW on 1-GPU mesh = %g, want IntraBW %g", got, e.IntraBW)
	}
	if err := e.Validate(); err == nil {
		t.Error("Validate accepted IntraMesh with GPUsPerNode = 1")
	}

	mesh := MI300x(1)
	want := mesh.IntraBW / float64(mesh.GPUsPerNode-1)
	if got := mesh.PeerBW(); got != want {
		t.Errorf("MI300x PeerBW = %g, want %g", got, want)
	}
	sw := H100(1)
	if got := sw.PeerBW(); got != sw.IntraBW {
		t.Errorf("switch PeerBW = %g, want IntraBW %g", got, sw.IntraBW)
	}
}

// TestTable2Envs: every shipped environment validates at 1 and 2 nodes and
// reports consistent totals.
func TestTable2Envs(t *testing.T) {
	ctors := map[string]func(int) *Env{
		"A100-40G": A100_40G, "A100-80G": A100_80G, "H100": H100, "MI300x": MI300x,
	}
	for name, ctor := range ctors {
		for _, nodes := range []int{1, 2, 4} {
			e := ctor(nodes)
			if err := e.Validate(); err != nil {
				t.Errorf("%s(%d): %v", name, nodes, err)
			}
			if e.TotalGPUs() != nodes*e.GPUsPerNode {
				t.Errorf("%s(%d): TotalGPUs = %d", name, nodes, e.TotalGPUs())
			}
		}
	}
}

// TestByName round-trips the Table 2 lookup, including aliases and the
// unknown-name error path.
func TestByName(t *testing.T) {
	for alias, want := range map[string]string{
		"a100": "A100-40G", "A100-40G": "A100-40G", "a100-80g": "A100-80G",
		"h100": "H100", "MI300X": "MI300x", "mi300x": "MI300x",
	} {
		e, err := ByName(alias, 2)
		if err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
			continue
		}
		if e.Name != want || e.Nodes != 2 {
			t.Errorf("ByName(%q) = %s/%d nodes, want %s/2", alias, e.Name, e.Nodes, want)
		}
	}
	if _, err := ByName("tpu", 1); err == nil {
		t.Error("ByName accepted unknown environment")
	}
}

// TestLinkKindString covers the stringer, including out-of-range kinds.
func TestLinkKindString(t *testing.T) {
	for kind, want := range map[LinkKind]string{
		LinkNVLink: "NVLink", LinkXGMI: "xGMI", LinkIB: "InfiniBand", LinkKind(42): "LinkKind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("LinkKind(%d).String() = %q, want %q", int(kind), got, want)
		}
	}
}
