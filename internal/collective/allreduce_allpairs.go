package collective

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// AllReduce1PA is the one-phase all-pairs AllReduce (paper §6.1): every GPU
// concurrently broadcasts all its local data to all peers with the LL
// protocol, and every GPU reduces all N contributions locally. Redundant
// traffic and reduction, but a single round of relaxed synchronization —
// best for very small single-node messages.
type AllReduce1PA struct {
	// TB overrides the thread-block count (0 = auto).
	TB int
}

// Name implements Algorithm.
func (a *AllReduce1PA) Name() string { return "mscclpp-1PA-LL" }

// Prepare implements Algorithm.
func (a *AllReduce1PA) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	// Per-rank packet scratch: one slot of `size` bytes per source rank.
	scratch := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scratch[r] = c.M.Alloc(r, "1pa.scratch", size*int64(n))
	}
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return scratch[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size/(8<<10)) + 1
		if nTB > 4 {
			nTB = 4
		}
	}
	iter := uint64(0)
	launch := func() []*machine.KernelHandle {
		iter++
		flag := iter
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				// Broadcast local data to every peer's scratch slot r.
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).PutPackets(k, int64(r)*size, 0, size, k.Block, k.NumBlocks, flag)
				}
				// out = own input.
				localCopy(k, out[r], 0, in[r], 0, size)
				// Consume peers' packets and reduce.
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).AwaitPackets(k, flag, uint64(size))
					localReduce(k, out[r], 0, scratch[r], int64(p)*size, size)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllReduce1PAHB is the one-phase all-pairs AllReduce with HB-protocol
// signal/wait synchronization instead of LL packets. This is the structure
// of vLLM's and TensorRT-LLM's hand-written custom AllReduce kernels
// (registered peer buffers, one bulk exchange, flag barrier), used in the
// paper's §7.3 custom-kernel comparison: it pays a fence + semaphore
// round-trip that the LL variant avoids.
type AllReduce1PAHB struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce1PAHB) Name() string { return "custom-1PA-HB (vLLM-like)" }

// Prepare implements Algorithm.
func (a *AllReduce1PAHB) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	scratch := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scratch[r] = c.M.Alloc(r, "1pahb.scratch", size*int64(n))
	}
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return scratch[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size/(8<<10)) + 1
		if nTB > 4 {
			nTB = 4
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).Put(k, int64(r)*size, 0, size, k.Block, k.NumBlocks)
				}
				k.GridBarrier()
				if k.Block == 0 {
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Signal(k)
					}
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
				localCopy(k, out[r], 0, in[r], 0, size)
				for _, p := range peersOf(ranks, r) {
					localReduce(k, out[r], 0, scratch[r], int64(p)*size, size)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllReduce2PALL is the two-phase all-pairs AllReduce with the LL protocol
// (paper §6.2): phase one ReduceScatters (each rank collects and reduces its
// 1/N slice), phase two AllGathers the reduced slices, both in the all-pairs
// pattern with packet flags instead of semaphores.
type AllReduce2PALL struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce2PALL) Name() string { return "mscclpp-2PA-LL" }

// Prepare implements Algorithm.
func (a *AllReduce2PALL) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	slice := size / int64(n)
	// Phase-1 scratch: slot per source rank holding my slice's partial.
	// Phase-2 scratch: slot per source rank holding its reduced slice.
	scr1 := make([]*mem.Buffer, n)
	scr2 := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scr1[r] = c.M.Alloc(r, "2pall.scr1", slice*int64(n))
		scr2[r] = c.M.Alloc(r, "2pall.scr2", slice*int64(n))
	}
	m1 := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return scr1[r] })
	m2 := newMesh(c, ranks,
		func(r int) *mem.Buffer { return out[r] },
		func(r int) *mem.Buffer { return scr2[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size/(64<<10)) + 1
		if nTB > 8 {
			nTB = 8
		}
	}
	iter := uint64(0)
	launch := func() []*machine.KernelHandle {
		iter++
		flag1, flag2 := 2*iter, 2*iter+1
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				mySlice := int64(r) * slice
				// Phase 1: scatter slice p of my input to p's scratch.
				for _, p := range peersOf(ranks, r) {
					m1.at(r, p).PutPacketsBuf(k, scr1[p], int64(r)*slice,
						in[r], int64(p)*slice, slice, k.Block, k.NumBlocks, flag1)
				}
				// Seed my slice with my own contribution.
				localCopy(k, out[r], mySlice, in[r], mySlice, slice)
				for _, p := range peersOf(ranks, r) {
					m1.at(r, p).AwaitPackets(k, flag1, uint64(slice))
					localReduce(k, out[r], mySlice, scr1[r], int64(p)*slice, slice)
				}
				// Phase 2: broadcast my reduced slice to all peers' scratch.
				for _, p := range peersOf(ranks, r) {
					m2.at(r, p).PutPacketsBuf(k, scr2[p], int64(r)*slice,
						out[r], mySlice, slice, k.Block, k.NumBlocks, flag2)
				}
				for _, p := range peersOf(ranks, r) {
					m2.at(r, p).AwaitPackets(k, flag2, uint64(slice))
					localCopy(k, out[r], int64(p)*slice, scr2[r], int64(p)*slice, slice)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllReduce2PAHB is the two-phase all-pairs AllReduce with the HB protocol:
// phase one has each rank's thread groups read-reduce its slice from all
// peers' inputs concurrently (no per-step synchronization — the MSCCL++
// optimization existing libraries cannot express); phase two pushes the
// reduced slice into every peer's output with put+signal.
type AllReduce2PAHB struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce2PAHB) Name() string { return "mscclpp-2PA-HB" }

// Prepare implements Algorithm.
func (a *AllReduce2PAHB) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	slice := size / int64(n)
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return in[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (512 << 10))
		if nTB < 4 {
			nTB = 4
		}
		if nTB > 24 {
			nTB = 24
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				mySlice := int64(r) * slice
				// Phase 1: pull-reduce my slice from all peers (inputs are
				// immutable during the collective, so no sync is needed).
				localCopy(k, out[r], mySlice, in[r], mySlice, slice)
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).ReduceBuf(k, out[r], mySlice, in[p], mySlice,
						slice, k.Block, k.NumBlocks)
				}
				k.GridBarrier()
				// Phase 2: push my reduced slice into every peer's output.
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).PutBuf(k, out[p], mySlice, out[r], mySlice,
						slice, k.Block, k.NumBlocks)
				}
				k.GridBarrier()
				if k.Block == 0 {
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Signal(k)
					}
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}
