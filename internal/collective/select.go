package collective

import (
	"fmt"

	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
)

// Op identifies a collective operation in the NCCL-compatible API.
type Op int

const (
	// OpAllReduce sums inputs across ranks and broadcasts the result.
	OpAllReduce Op = iota
	// OpAllGather concatenates per-rank shards on every rank.
	OpAllGather
	// OpReduceScatter sums inputs and scatters 1/N slices.
	OpReduceScatter
)

func (o Op) String() string {
	switch o {
	case OpAllReduce:
		return "AllReduce"
	case OpAllGather:
		return "AllGather"
	case OpReduceScatter:
		return "ReduceScatter"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// SelectAllReduce returns the library's algorithm choice for an AllReduce of
// size bytes on the communicator's environment — the paper's tuned defaults
// (Section 6: 1PA for very small single-node, 2PA for mid sizes with the
// SwitchChannel variant on NVLS hardware, 2PR ring over PortChannel at the
// top end, 2PH for multi-node split by LL/HB protocol).
func (c *Comm) SelectAllReduce(size int64) Algorithm {
	env := c.M.Env
	if env.Nodes > 1 {
		if size <= 1<<20 {
			return &AllReduce2PHLL{}
		}
		return &AllReduce2PHHB{}
	}
	switch {
	case size <= 16<<10:
		return &AllReduce1PA{}
	case size <= 1<<20:
		return &AllReduce2PALL{}
	case env.HasMulticast:
		return &AllReduce2PASwitch{}
	case size >= 256<<20:
		return &AllReduce2PR{}
	default:
		return &AllReduce2PAHB{}
	}
}

// SelectAllGather returns the tuned AllGather choice for a given output
// (gathered) size in bytes.
func (c *Comm) SelectAllGather(totalSize int64) Algorithm {
	env := c.M.Env
	if env.Nodes > 1 {
		return &AllGatherHier{}
	}
	switch {
	case totalSize <= 256<<10:
		return &AllGatherAllPairsLL{}
	case totalSize <= 64<<20 || !env.HasMulticast:
		if totalSize >= 256<<20 {
			return &AllGatherRing{}
		}
		return &AllGatherAllPairsHB{}
	default:
		return &AllGatherSwitch{}
	}
}

// SelectReduceScatter returns the tuned ReduceScatter choice for a given
// input size in bytes.
func (c *Comm) SelectReduceScatter(totalSize int64) Algorithm {
	switch {
	case totalSize <= 256<<10:
		return &ReduceScatterAllPairsLL{}
	case totalSize >= 256<<20:
		return &ReduceScatterRing{}
	default:
		return &ReduceScatterAllPairsHB{}
	}
}

// AllReduce is the one-call Collective API: it selects the tuned algorithm,
// prepares it, runs one invocation and returns the elapsed virtual time.
// For repeated invocations on the same buffers, Prepare once and Run the
// Exec directly.
func (c *Comm) AllReduce(in, out []*mem.Buffer) (sim.Duration, error) {
	algo := c.SelectAllReduce(in[0].Size())
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		return 0, err
	}
	return c.Run(ex)
}

// AllGather is the one-call Collective API for AllGather.
func (c *Comm) AllGather(in, out []*mem.Buffer) (sim.Duration, error) {
	algo := c.SelectAllGather(out[0].Size())
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		return 0, err
	}
	return c.Run(ex)
}

// ReduceScatter is the one-call Collective API for ReduceScatter.
func (c *Comm) ReduceScatter(in, out []*mem.Buffer) (sim.Duration, error) {
	algo := c.SelectReduceScatter(in[0].Size())
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		return 0, err
	}
	return c.Run(ex)
}

// AllReduceAlgorithms lists every AllReduce algorithm applicable to the
// communicator's environment (used by benchmark sweeps that report the best
// per size, as the paper does).
func (c *Comm) AllReduceAlgorithms() []Algorithm {
	if c.M.Env.Nodes > 1 {
		return []Algorithm{&AllReduce2PHLL{}, &AllReduce2PHHB{}}
	}
	algos := []Algorithm{
		&AllReduce1PA{}, &AllReduce2PALL{}, &AllReduce2PAHB{},
		&AllReduce2PR{}, &AllReduce2PR{UseMemoryChannel: true},
	}
	if c.M.Env.HasMulticast {
		algos = append(algos, &AllReduce2PASwitch{})
	}
	return algos
}

// AllGatherAlgorithms lists applicable AllGather algorithms.
func (c *Comm) AllGatherAlgorithms() []Algorithm {
	if c.M.Env.Nodes > 1 {
		return []Algorithm{&AllGatherHier{}}
	}
	algos := []Algorithm{
		&AllGatherAllPairsLL{}, &AllGatherAllPairsHB{}, &AllGatherRing{},
	}
	if c.M.Env.HasMulticast {
		algos = append(algos, &AllGatherSwitch{})
	}
	return algos
}
