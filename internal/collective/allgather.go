package collective

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// validateAllGatherBufs checks NCCL conventions: in[r] holds rank r's shard
// (S/N bytes), out[r] holds the gathered result (S bytes).
func validateAllGatherBufs(c *Comm, in, out []*mem.Buffer) (shard int64, err error) {
	shard, err = validateEqualSized(c, in, "input")
	if err != nil {
		return 0, err
	}
	total, err := validateEqualSized(c, out, "output")
	if err != nil {
		return 0, err
	}
	if total != shard*int64(c.Ranks()) {
		return 0, fmt.Errorf("collective: allgather out %d != shard %d * ranks %d",
			total, shard, c.Ranks())
	}
	if shard%4 != 0 || shard == 0 {
		return 0, fmt.Errorf("collective: allgather shard %d not usable", shard)
	}
	return shard, nil
}

// AllGatherAllPairsLL gathers with the LL protocol: every rank packet-puts
// its shard to every peer's scratch and unpacks on arrival. Lowest latency
// for small shards.
type AllGatherAllPairsLL struct {
	TB int
}

// Name implements Algorithm.
func (a *AllGatherAllPairsLL) Name() string { return "mscclpp-AG-AllPairs-LL" }

// Prepare implements Algorithm.
func (a *AllGatherAllPairsLL) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	shard, err := validateAllGatherBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	scratch := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scratch[r] = c.M.Alloc(r, "agll.scratch", shard*int64(n))
	}
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return scratch[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(shard/(16<<10)) + 1
		if nTB > 4 {
			nTB = 4
		}
	}
	iter := uint64(0)
	launch := func() []*machine.KernelHandle {
		iter++
		flag := iter
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).PutPackets(k, int64(r)*shard, 0, shard, k.Block, k.NumBlocks, flag)
				}
				localCopy(k, out[r], int64(r)*shard, in[r], 0, shard)
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).AwaitPackets(k, flag, uint64(shard))
					localCopy(k, out[r], int64(p)*shard, scratch[r], int64(p)*shard, shard)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllGatherAllPairsHB gathers with direct zero-copy puts: every rank writes
// its shard straight into every peer's output buffer and signals once. One
// synchronization round, no scratch, no unpack — MSCCL++'s advantage over
// send/recv libraries.
type AllGatherAllPairsHB struct {
	TB int
}

// Name implements Algorithm.
func (a *AllGatherAllPairsHB) Name() string { return "mscclpp-AG-AllPairs-HB" }

// Prepare implements Algorithm.
func (a *AllGatherAllPairsHB) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	shard, err := validateAllGatherBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return out[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(shard / (128 << 10))
		if nTB < 2 {
			nTB = 2
		}
		if nTB > 16 {
			nTB = 16
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).Put(k, int64(r)*shard, 0, shard, k.Block, k.NumBlocks)
				}
				localCopy(k, out[r], int64(r)*shard, in[r], 0, shard)
				k.GridBarrier()
				if k.Block == 0 {
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Signal(k)
					}
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllGatherRing forwards shards around a PortChannel ring (DMA engines),
// zero-copy into outputs: best intra-node bandwidth at large shard sizes.
type AllGatherRing struct {
	TB int
}

// Name implements Algorithm.
func (a *AllGatherRing) Name() string { return "mscclpp-AG-Ring-Port" }

// Prepare implements Algorithm.
func (a *AllGatherRing) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	shard, err := validateAllGatherBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ring := make([]*ringEdge, n)
	for r := 0; r < n; r++ {
		next := (r + 1) % n
		s, d := c.C.NewPortChannelPairEx(r, next, out[r], out[next], out[next], out[r])
		if ring[r] == nil {
			ring[r] = &ringEdge{}
		}
		if ring[next] == nil {
			ring[next] = &ringEdge{}
		}
		ring[r].send = s
		ring[next].recv = d
	}
	nTB := a.TB
	if nTB == 0 {
		nTB = 4
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				localCopy(k, out[r], int64(r)*shard, in[r], 0, shard)
				k.GridBarrier()
				if k.Block == 0 {
					for s := 0; s < n-1; s++ {
						cs := int64((r+n-s)%n) * shard // shard to forward
						ring[r].send.Put(k, cs, cs, shard, 0, 1)
						ring[r].send.Signal(k)
						ring[r].recv.Wait(k)
					}
					ring[r].send.Flush(k)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// ringEdge holds one rank's send endpoint and recv endpoint on a ring.
type ringEdge struct {
	send ringChannel
	recv ringChannel
}

// AllGatherSwitch multicasts each shard through the NVSwitch (multimem.st):
// one store pass per rank, fanned out in-network.
type AllGatherSwitch struct {
	TB int
}

// Name implements Algorithm.
func (a *AllGatherSwitch) Name() string { return "mscclpp-AG-Switch" }

// Prepare implements Algorithm.
func (a *AllGatherSwitch) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	shard, err := validateAllGatherBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	if !c.M.Fabric.HasSwitch() {
		return nil, fmt.Errorf("%s: %s has no switch-mapped I/O", a.Name(), c.M.Env.Name)
	}
	n := c.Ranks()
	ranks := allRanks(n)
	outChans := c.C.NewSwitchChannels(ranks, out)
	bar := newBarrier(c, ranks)
	nTB := a.TB
	if nTB == 0 {
		nTB = int(shard / (256 << 10))
		if nTB < 2 {
			nTB = 2
		}
		if nTB > 16 {
			nTB = 16
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				// Stage my shard into my own out region, then multicast it.
				localCopy(k, out[r], int64(r)*shard, in[r], 0, shard)
				k.GridBarrier()
				outChans[r].Broadcast(k, int64(r)*shard, int64(r)*shard, shard, k.Block, k.NumBlocks)
				k.GridBarrier()
				if k.Block == 0 {
					bar.sync(k, ranks)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllGatherHier is the hierarchical multi-node AllGather: cross-node
// all-pairs among same-local ranks (each rank gathers its column), then
// intra-node broadcast of the gathered columns.
type AllGatherHier struct {
	TB int
}

// Name implements Algorithm.
func (a *AllGatherHier) Name() string { return "mscclpp-AG-2PH" }

// Prepare implements Algorithm.
func (a *AllGatherHier) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	shard, err := validateAllGatherBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	env := c.M.Env
	if env.Nodes < 2 {
		return nil, fmt.Errorf("%s: multi-node only", a.Name())
	}
	g, nodes := env.GPUsPerNode, env.Nodes
	n := c.Ranks()
	portCol := make([]*portMesh, g)
	for l := 0; l < g; l++ {
		rs := c.sameLocalRanks(l)
		portCol[l] = newPortMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return out[r] })
	}
	meshLocal := make([]*mesh, nodes)
	for node := 0; node < nodes; node++ {
		rs := c.nodeRanks(node)
		meshLocal[node] = newMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return out[r] })
	}
	nTB := a.TB
	if nTB == 0 {
		nTB = 4
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			node, l := r/g, r%g
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				localPeers := peersOf(c.nodeRanks(node), r)
				crossPeers := peersOf(c.sameLocalRanks(l), r)
				// Stage own shard.
				localCopy(k, out[r], int64(r)*shard, in[r], 0, shard)
				k.GridBarrier()
				// Cross-node: send my shard to all same-local peers.
				if k.Block == 0 {
					for _, p := range crossPeers {
						portCol[l].at(r, p).Put(k, int64(r)*shard, int64(r)*shard, shard, 0, 1)
						portCol[l].at(r, p).Signal(k)
					}
					for _, p := range crossPeers {
						portCol[l].at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
				// Intra-node: broadcast my gathered column (shards of all
				// (n', l)) to local peers' outputs.
				for n2 := 0; n2 < nodes; n2++ {
					src := int64(n2*g+l) * shard
					for _, p := range localPeers {
						meshLocal[node].at(r, p).PutBuf(k, out[p], src, out[r], src,
							shard, k.Block, k.NumBlocks)
					}
				}
				k.GridBarrier()
				if k.Block == 0 {
					for _, p := range localPeers {
						meshLocal[node].at(r, p).Signal(k)
					}
					for _, p := range localPeers {
						meshLocal[node].at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}
