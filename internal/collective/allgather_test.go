package collective

import (
	"testing"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func runAllGather(t *testing.T, env *topology.Env, algo Algorithm, shard int64, iters int) sim.Duration {
	t.Helper()
	m := machine.New(env)
	m.MaterializeLimit = 1 << 40
	c := New(m)
	n := c.Ranks()
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", shard)
		out[r] = m.Alloc(r, "out", shard*int64(n))
	}
	FillInputs(in, pattern)
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		t.Fatalf("%s: %v", algo.Name(), err)
	}
	var last sim.Duration
	for it := 0; it < iters; it++ {
		d, err := c.Run(ex)
		if err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		if err := CheckAllGather(out, shard, pattern, 0); err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		last = d
	}
	return last
}

func TestAllGatherAllPairsLL(t *testing.T) {
	for _, shard := range []int64{128, 8 << 10} {
		runAllGather(t, topology.A100_40G(1), &AllGatherAllPairsLL{}, shard, 3)
		runAllGather(t, topology.MI300x(1), &AllGatherAllPairsLL{}, shard, 2)
	}
}

func TestAllGatherAllPairsHB(t *testing.T) {
	for _, shard := range []int64{8 << 10, 256 << 10} {
		runAllGather(t, topology.A100_40G(1), &AllGatherAllPairsHB{}, shard, 3)
		runAllGather(t, topology.H100(1), &AllGatherAllPairsHB{}, shard, 2)
	}
}

func TestAllGatherRing(t *testing.T) {
	for _, shard := range []int64{64 << 10, 256 << 10} {
		runAllGather(t, topology.A100_40G(1), &AllGatherRing{}, shard, 2)
	}
}

func TestAllGatherSwitch(t *testing.T) {
	runAllGather(t, topology.H100(1), &AllGatherSwitch{}, 64<<10, 3)
}

func TestAllGatherHier(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		runAllGather(t, topology.A100_40G(nodes), &AllGatherHier{}, 32<<10, 2)
	}
}

func runReduceScatter(t *testing.T, env *topology.Env, algo Algorithm, slice int64, iters int) sim.Duration {
	t.Helper()
	m := machine.New(env)
	m.MaterializeLimit = 1 << 40
	c := New(m)
	n := c.Ranks()
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", slice*int64(n))
		out[r] = m.Alloc(r, "out", slice)
	}
	FillInputs(in, pattern)
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		t.Fatalf("%s: %v", algo.Name(), err)
	}
	var last sim.Duration
	for it := 0; it < iters; it++ {
		d, err := c.Run(ex)
		if err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		if err := CheckReduceScatter(out, pattern, 1e-4); err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		last = d
	}
	return last
}

func TestReduceScatterAllPairsLL(t *testing.T) {
	runReduceScatter(t, topology.A100_40G(1), &ReduceScatterAllPairsLL{}, 4<<10, 3)
}

func TestReduceScatterAllPairsHB(t *testing.T) {
	runReduceScatter(t, topology.A100_40G(1), &ReduceScatterAllPairsHB{}, 128<<10, 3)
	runReduceScatter(t, topology.H100(1), &ReduceScatterAllPairsHB{}, 32<<10, 2)
}

func TestReduceScatterRing(t *testing.T) {
	runReduceScatter(t, topology.A100_40G(1), &ReduceScatterRing{}, 64<<10, 2)
}

func TestSelectionBySize(t *testing.T) {
	single := New(machine.New(topology.A100_40G(1)))
	if got := single.SelectAllReduce(1 << 10).Name(); got != (&AllReduce1PA{}).Name() {
		t.Fatalf("1KB selection = %s", got)
	}
	if got := single.SelectAllReduce(256 << 10).Name(); got != (&AllReduce2PALL{}).Name() {
		t.Fatalf("256KB selection = %s", got)
	}
	if got := single.SelectAllReduce(1 << 30).Name(); got != (&AllReduce2PR{}).Name() {
		t.Fatalf("1GB selection = %s", got)
	}
	h100 := New(machine.New(topology.H100(1)))
	if got := h100.SelectAllReduce(64 << 20).Name(); got != (&AllReduce2PASwitch{}).Name() {
		t.Fatalf("H100 64MB selection = %s", got)
	}
	multi := New(machine.New(topology.A100_40G(2)))
	if got := multi.SelectAllReduce(1 << 10).Name(); got != (&AllReduce2PHLL{}).Name() {
		t.Fatalf("multi-node 1KB selection = %s", got)
	}
	if got := multi.SelectAllReduce(64 << 20).Name(); got != (&AllReduce2PHHB{}).Name() {
		t.Fatalf("multi-node 64MB selection = %s", got)
	}
}

// The one-call Collective API must produce correct results end-to-end.
func TestCollectiveAPIOneCall(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	m.MaterializeLimit = 1 << 40
	c := New(m)
	n := c.Ranks()
	size := int64(32 << 10)
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", size)
		out[r] = m.Alloc(r, "out", size)
	}
	FillInputs(in, pattern)
	d, err := c.AllReduce(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration %d", d)
	}
	if err := CheckAllReduce(out, pattern, 1e-4); err != nil {
		t.Fatal(err)
	}
}
