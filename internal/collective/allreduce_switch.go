package collective

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// AllReduce2PASwitch is the SwitchChannel AllReduce for NVSwitch-SHARP
// machines (paper §4.3, §7.2): each rank runs the fused
// multimem.ld_reduce + multimem.st loop over its 1/N slice — the switch
// aggregates inputs in-network and multicasts results — bracketed by rank
// barriers. This is the "15 lines of Python" kernel.
type AllReduce2PASwitch struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce2PASwitch) Name() string { return "mscclpp-2PA-Switch" }

// Prepare implements Algorithm.
func (a *AllReduce2PASwitch) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	if !c.M.Fabric.HasSwitch() {
		return nil, fmt.Errorf("%s: %s has no switch-mapped I/O", a.Name(), c.M.Env.Name)
	}
	n := c.Ranks()
	ranks := allRanks(n)
	slice := size / int64(n)
	inChans := c.C.NewSwitchChannels(ranks, in)
	outChans := c.C.NewSwitchChannels(ranks, out)
	bar := newBarrier(c, ranks)
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (256 << 10))
		if nTB < 2 {
			nTB = 2
		}
		if nTB > 24 {
			nTB = 24
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				// Entry barrier: all inputs registered and ready.
				if k.Block == 0 {
					bar.sync(k, ranks)
				}
				k.GridBarrier()
				// Fused in-switch reduce + multicast of my slice.
				core.FusedReduceBroadcast(k, inChans[r], outChans[r],
					int64(r)*slice, int64(r)*slice, slice, k.Block, k.NumBlocks)
				k.GridBarrier()
				// Exit barrier: my output regions written by peers' stores.
				if k.Block == 0 {
					bar.sync(k, ranks)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}
