package collective

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// AllReduce2PHLL is the hierarchical AllReduce for small multi-node messages
// (paper §6.4, first variant): a node-local LL ReduceScatter that splits the
// data only into the number of local GPUs, a one-phase all-pairs exchange
// across nodes over PortChannels (redundant reduction, but fewer
// synchronization steps), and a node-local LL AllGather. The local collective
// is pipelined with cross-node communication by issuing the asynchronous
// port puts as soon as each slice is ready.
type AllReduce2PHLL struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce2PHLL) Name() string { return "mscclpp-2PH-LL" }

// Prepare implements Algorithm.
func (a *AllReduce2PHLL) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	env := c.M.Env
	if env.Nodes < 2 {
		return nil, fmt.Errorf("%s: multi-node only", a.Name())
	}
	g, nodes := env.GPUsPerNode, env.Nodes
	n := c.Ranks()
	sg := size / int64(g) // per-local-rank slice
	if sg%4 != 0 {
		return nil, fmt.Errorf("%s: slice %d not aligned", a.Name(), sg)
	}

	// Scratch: phase A packets (slot per local sender), phase B cross-node
	// partials (slot per node), phase C packets (slot per local sender).
	scrA := make([]*mem.Buffer, n)
	scrB := make([]*mem.Buffer, n)
	scrC := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scrA[r] = c.M.Alloc(r, "2phll.scrA", sg*int64(g))
		scrB[r] = c.M.Alloc(r, "2phll.scrB", sg*int64(nodes))
		scrC[r] = c.M.Alloc(r, "2phll.scrC", sg*int64(g))
	}
	// Intra-node meshes per node; cross-node port meshes per local index.
	meshA := make([]*mesh, nodes)
	meshC := make([]*mesh, nodes)
	for node := 0; node < nodes; node++ {
		rs := c.nodeRanks(node)
		meshA[node] = newMesh(c, rs,
			func(r int) *mem.Buffer { return in[r] },
			func(r int) *mem.Buffer { return scrA[r] })
		meshC[node] = newMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return scrC[r] })
	}
	portB := make([]*portMesh, g)
	for l := 0; l < g; l++ {
		rs := c.sameLocalRanks(l)
		portB[l] = newPortMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return scrB[r] })
	}

	nTB := a.TB
	if nTB == 0 {
		nTB = 1
		if size > 256<<10 {
			nTB = 4
		}
	}
	iter := uint64(0)
	launch := func() []*machine.KernelHandle {
		iter++
		flagA, flagC := 2*iter, 2*iter+1
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			node, l := r/g, r%g
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				sliceOff := int64(l) * sg
				localPeers := peersOf(c.nodeRanks(node), r)
				crossPeers := peersOf(c.sameLocalRanks(l), r)
				// Phase A: local LL ReduceScatter. Send slice l' of my input
				// to local peer (node, l'), tagged with my local index.
				for _, p := range localPeers {
					meshA[node].at(r, p).PutPacketsBuf(k, scrA[p], int64(l)*sg,
						in[r], int64(p%g)*sg, sg, k.Block, k.NumBlocks, flagA)
				}
				localCopy(k, out[r], sliceOff, in[r], sliceOff, sg)
				for _, p := range localPeers {
					meshA[node].at(r, p).AwaitPackets(k, flagA, uint64(sg))
					localReduce(k, out[r], sliceOff, scrA[r], int64(p%g)*sg, sg)
				}
				k.GridBarrier()
				// Phase B: one-phase all-pairs across nodes (port channels;
				// each rank reduces all node partials redundantly).
				if k.Block == 0 {
					for _, p := range crossPeers {
						portB[l].at(r, p).Put(k, int64(node)*sg, sliceOff, sg, 0, 1)
						portB[l].at(r, p).Signal(k)
					}
				}
				k.GridBarrier()
				for _, p := range crossPeers {
					if k.Block == 0 {
						portB[l].at(r, p).Wait(k)
					}
					k.GridBarrier()
					localReduce(k, out[r], sliceOff, scrB[r], int64(p/g)*sg, sg)
					k.GridBarrier()
				}
				// Phase C: local LL AllGather of the finished slice.
				for _, p := range localPeers {
					meshC[node].at(r, p).PutPacketsBuf(k, scrC[p], int64(l)*sg,
						out[r], sliceOff, sg, k.Block, k.NumBlocks, flagC)
				}
				for _, p := range localPeers {
					meshC[node].at(r, p).AwaitPackets(k, flagC, uint64(sg))
					localCopy(k, out[r], int64(p%g)*sg, scrC[r], int64(p%g)*sg, sg)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// AllReduce2PHHB is the hierarchical AllReduce for large multi-node messages
// (paper §6.4, second variant): intra-node ReduceScatter pipelined with
// minimal cross-node all-pairs ReduceScatter/AllGather over PortChannels,
// then intra-node AllGather. Data is split into GPUsPerNode slices and each
// slice into Nodes sub-slices, so cross-node traffic is the minimum
// 2*(M-1)*S/N per NIC.
type AllReduce2PHHB struct {
	TB int
}

// Name implements Algorithm.
func (a *AllReduce2PHHB) Name() string { return "mscclpp-2PH-HB" }

// Prepare implements Algorithm.
func (a *AllReduce2PHHB) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	env := c.M.Env
	if env.Nodes < 2 {
		return nil, fmt.Errorf("%s: multi-node only", a.Name())
	}
	g, nodes := env.GPUsPerNode, env.Nodes
	n := c.Ranks()
	sg := size / int64(g)    // per-local-rank slice
	sgm := sg / int64(nodes) // per-node sub-slice
	if sgm%4 != 0 || sgm == 0 {
		return nil, fmt.Errorf("%s: sub-slice %d not usable", a.Name(), sgm)
	}

	// Cross-node RS scratch: slot per sender node.
	scrRS := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scrRS[r] = c.M.Alloc(r, "2phhb.scr", sgm*int64(nodes))
	}
	meshIntra := make([]*mesh, nodes)
	for node := 0; node < nodes; node++ {
		rs := c.nodeRanks(node)
		meshIntra[node] = newMesh(c, rs,
			func(r int) *mem.Buffer { return in[r] },
			func(r int) *mem.Buffer { return in[r] })
	}
	portRS := make([]*portMesh, g)
	portAG := make([]*portMesh, g)
	for l := 0; l < g; l++ {
		rs := c.sameLocalRanks(l)
		portRS[l] = newPortMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return scrRS[r] })
		portAG[l] = newPortMesh(c, rs,
			func(r int) *mem.Buffer { return out[r] },
			func(r int) *mem.Buffer { return out[r] })
	}
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (2 << 20))
		if nTB < 4 {
			nTB = 4
		}
		if nTB > 16 {
			nTB = 16
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			node, l := r/g, r%g
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				sliceOff := int64(l) * sg
				localPeers := peersOf(c.nodeRanks(node), r)
				crossPeers := peersOf(c.sameLocalRanks(l), r)
				// Phase A: per sub-slice, intra-node pull-ReduceScatter,
				// then immediately ship the sub-slice to its owner node
				// (asynchronous put overlaps the next sub-slice's pull).
				for sub := 0; sub < nodes; sub++ {
					off := sliceOff + int64(sub)*sgm
					localCopy(k, out[r], off, in[r], off, sgm)
					for _, p := range localPeers {
						meshIntra[node].at(r, p).ReduceBuf(k, out[r], off,
							in[p], off, sgm, k.Block, k.NumBlocks)
					}
					k.GridBarrier()
					if sub != node && k.Block == 0 {
						owner := sub*g + l
						portRS[l].at(r, owner).Put(k, int64(node)*sgm, off, sgm, 0, 1)
						portRS[l].at(r, owner).Signal(k)
					}
				}
				// Phase B: reduce the other nodes' contributions to my
				// sub-slice as they arrive.
				myOff := sliceOff + int64(node)*sgm
				for _, p := range crossPeers {
					if k.Block == 0 {
						portRS[l].at(r, p).Wait(k)
					}
					k.GridBarrier()
					localReduce(k, out[r], myOff, scrRS[r], int64(p/g)*sgm, sgm)
					k.GridBarrier()
				}
				// Phase C: cross-node AllGather of my finished sub-slice,
				// zero-copy into peers' outputs.
				if k.Block == 0 {
					for _, p := range crossPeers {
						portAG[l].at(r, p).Put(k, myOff, myOff, sgm, 0, 1)
						portAG[l].at(r, p).Signal(k)
					}
					for _, p := range crossPeers {
						portAG[l].at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
				// Phase D: intra-node AllGather of the full slice l.
				for _, p := range localPeers {
					meshIntra[node].at(r, p).PutBuf(k, out[p], sliceOff,
						out[r], sliceOff, sg, k.Block, k.NumBlocks)
				}
				k.GridBarrier()
				if k.Block == 0 {
					for _, p := range localPeers {
						meshIntra[node].at(r, p).Signal(k)
					}
					for _, p := range localPeers {
						meshIntra[node].at(r, p).Wait(k)
					}
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}
