package collective

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// AllReduce2PR is the two-phase ring AllReduce (paper §6.3 and Figure 6):
// a pipelined ring ReduceScatter whose local reduction overlaps the DMA-copy
// of the next half-chunk, followed by a ring AllGather over the same ring.
// Unlike NCCL, the ring runs over PortChannel (DMA engines) even within a
// node, freeing the SMs during transfers; it delivers the best intra-node
// throughput at very large message sizes.
type AllReduce2PR struct {
	// TB is the thread-block count used for local reductions (0 = auto).
	TB int
	// UseMemoryChannel switches the transport to thread-copy MemoryChannel
	// (for the PortChannel-vs-MemoryChannel ablation, paper §7.1).
	UseMemoryChannel bool
}

// Name implements Algorithm.
func (a *AllReduce2PR) Name() string {
	if a.UseMemoryChannel {
		return "mscclpp-2PR-Memory"
	}
	return "mscclpp-2PR-Port"
}

// ringChannel is the sender-side transport of one ring edge.
type ringChannel interface {
	Put(k *machine.Kernel, dstOff, srcOff, size int64, tb, nTB int)
	Signal(k *machine.Kernel)
	Wait(k *machine.Kernel)
	Flush(k *machine.Kernel)
}

// Prepare implements Algorithm.
func (a *AllReduce2PR) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only (2PH covers multi-node)", a.Name())
	}
	n := c.Ranks()
	if n < 2 {
		return nil, fmt.Errorf("%s: need at least 2 ranks", a.Name())
	}
	chunk := size / int64(n)
	half := chunk / 2
	if half%4 != 0 {
		return nil, fmt.Errorf("%s: half-chunk %d not 4-byte aligned", a.Name(), half)
	}
	// Scratch receives in-flight chunks during ReduceScatter.
	scr := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scr[r] = c.M.Alloc(r, "2pr.scr", size)
	}
	// Ring edges r -> r+1: RS set (out->scr) and AG set (out->out).
	rsSend := make([]ringChannel, n) // rank r's channel to next
	rsRecv := make([]ringChannel, n) // rank r's endpoint from prev
	agSend := make([]ringChannel, n)
	agRecv := make([]ringChannel, n)
	for r := 0; r < n; r++ {
		next := (r + 1) % n
		if a.UseMemoryChannel {
			s, d := c.C.NewMemoryChannelPairEx(r, next, out[r], scr[next], out[next], scr[r])
			rsSend[r], rsRecv[next] = s, d
			s2, d2 := c.C.NewMemoryChannelPairEx(r, next, out[r], out[next], out[next], out[r])
			agSend[r], agRecv[next] = s2, d2
		} else {
			s, d := c.C.NewPortChannelPairEx(r, next, out[r], scr[next], out[next], scr[r])
			rsSend[r], rsRecv[next] = s, d
			s2, d2 := c.C.NewPortChannelPairEx(r, next, out[r], out[next], out[next], out[r])
			agSend[r], agRecv[next] = s2, d2
		}
	}
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (1 << 20))
		if nTB < 4 {
			nTB = 4
		}
		if nTB > 16 {
			nTB = 16
		}
	}
	// putSig issues a signalled transfer on the chosen transport: the
	// PortChannel path enqueues asynchronously from block 0 (the GPU stays
	// free to reduce — the Figure 6 overlap); the MemoryChannel path copies
	// with all thread blocks and signals after a grid barrier. Both paths
	// keep per-block barrier counts identical.
	putSig := func(k *machine.Kernel, ch ringChannel, off, sz int64) {
		if a.UseMemoryChannel {
			ch.Put(k, off, off, sz, k.Block, k.NumBlocks)
			k.GridBarrier()
			if k.Block == 0 {
				ch.Signal(k)
			}
		} else if k.Block == 0 {
			ch.Put(k, off, off, sz, 0, 1)
			ch.Signal(k)
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				send, recv := rsSend[r], rsRecv[r]
				// Working copy: out starts as input.
				localCopy(k, out[r], 0, in[r], 0, size)
				k.GridBarrier()
				// --- Phase 1: ring ReduceScatter, half-chunk pipelined ---
				// Step s sends chunk (r-s) and receives chunk (r-s-1); the
				// received chunk is reduced in halves, the first half's
				// reduction overlapping the second half's transfer.
				for s := 0; s < n-1; s++ {
					cs := int64((r+n-s)%n) * chunk   // chunk to send
					cr := int64((r+n-s-1)%n) * chunk // chunk arriving
					putSig(k, send, cs, half)
					putSig(k, send, cs+half, chunk-half)
					if k.Block == 0 {
						recv.Wait(k) // first half of incoming chunk
					}
					k.GridBarrier()
					// Reduce first half while second half is in flight.
					localReduce(k, out[r], cr, scr[r], cr, half)
					k.GridBarrier()
					if k.Block == 0 {
						recv.Wait(k) // second half
					}
					k.GridBarrier()
					localReduce(k, out[r], cr+half, scr[r], cr+half, chunk-half)
					k.GridBarrier()
					if k.Block == 0 && !a.UseMemoryChannel {
						send.Flush(k)
					}
				}
				// Rank r now owns chunk (r+1)%n fully reduced.
				// --- Phase 2: ring AllGather, zero-copy into out ---
				aSend, aRecv := agSend[r], agRecv[r]
				for s := 0; s < n-1; s++ {
					cs := int64((r+1+n-s)%n) * chunk // chunk to forward
					putSig(k, aSend, cs, chunk)
					if k.Block == 0 {
						aRecv.Wait(k)
					}
					k.GridBarrier()
				}
				if k.Block == 0 && !a.UseMemoryChannel {
					aSend.Flush(k)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

var _ ringChannel = (*core.PortChannel)(nil)
var _ ringChannel = (*core.MemoryChannel)(nil)
