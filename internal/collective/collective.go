// Package collective implements the MSCCL++ collectives library (paper
// Section 6): AllReduce, AllGather and ReduceScatter algorithms written
// against the Primitive API, plus the NCCL-style Collective API with
// size-based algorithm selection.
//
// Algorithms implemented (names follow the paper):
//
//   - 1PA: one-phase all-pairs, LL protocol — small single-node messages.
//   - 2PA: two-phase all-pairs (ReduceScatter + AllGather), LL and HB
//     MemoryChannel variants and a SwitchChannel (NVLS) variant.
//   - 2PR: two-phase ring over PortChannel with reduction overlapped with
//     DMA-copy (paper Figure 6) — large single-node messages.
//   - 2PH: two-phase hierarchical, LL (small) and HB (large) variants —
//     multi-node messages.
//
// Buffer conventions match NCCL: AllReduce takes equal-sized in/out buffers
// of S bytes; AllGather takes S/N-byte shards in and S-byte out; ReduceScatter
// takes S bytes in and S/N out.
package collective

import (
	"fmt"

	"mscclpp/internal/core"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
)

// Comm wraps a machine with a communicator; all algorithm setups hang off it.
type Comm struct {
	M *machine.Machine
	C *core.Communicator
}

// New returns a collective communicator over all ranks of m.
func New(m *machine.Machine) *Comm {
	return &Comm{M: m, C: core.NewCommunicator(m)}
}

// Ranks returns the world size.
func (c *Comm) Ranks() int { return len(c.M.GPUs) }

// Exec is a prepared collective: channels and scratch are set up once;
// Launch starts one timed invocation's kernels.
type Exec struct {
	Name   string
	launch func() []*machine.KernelHandle
}

// NewExec wraps a launch function as an Exec; used by baseline libraries
// (ncclsim, mscclsim) so benchmarks can time every library uniformly.
func NewExec(name string, launch func() []*machine.KernelHandle) *Exec {
	return &Exec{Name: name, launch: launch}
}

// Run performs one invocation of the prepared collective and returns its
// virtual duration (launch through last data arrival).
func (c *Comm) Run(ex *Exec) (sim.Duration, error) {
	start := c.M.Engine.Now()
	ex.launch()
	if err := c.M.Run(); err != nil {
		return 0, fmt.Errorf("collective %s: %w", ex.Name, err)
	}
	return c.M.Engine.Now() - start, nil
}

// Algorithm prepares executions of one collective algorithm for a fixed set
// of buffers.
type Algorithm interface {
	Name() string
	// Prepare validates buffers, builds channels/scratch, and returns a
	// reusable Exec. in and out are indexed by rank.
	Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error)
}

// shardRange splits size into nTB 4-byte-aligned shards (same contract as
// the core package's sharding).
func shardRange(size int64, tb, nTB int) (off, n int64) {
	if nTB <= 1 {
		return 0, size
	}
	el := size / 4
	base := el / int64(nTB)
	rem := el % int64(nTB)
	startEl := base*int64(tb) + minI64(int64(tb), rem)
	count := base
	if int64(tb) < rem {
		count++
	}
	off = startEl * 4
	n = count * 4
	if tb == nTB-1 {
		n += size % 4
	}
	return off, n
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// localCopy charges block k its shard of a local size-byte copy and moves
// the data.
func localCopy(k *machine.Kernel, dst *mem.Buffer, dstOff int64, src *mem.Buffer, srcOff, size int64) {
	off, n := shardRange(size, k.Block, k.NumBlocks)
	if n == 0 {
		return
	}
	k.LocalCopy(n, 1)
	src.CopyTo(dst, dstOff+off, srcOff+off, n)
}

// localReduce charges block k its shard of a local size-byte accumulate
// (dst += src) and applies it.
func localReduce(k *machine.Kernel, dst *mem.Buffer, dstOff int64, src *mem.Buffer, srcOff, size int64) {
	off, n := shardRange(size, k.Block, k.NumBlocks)
	if n == 0 {
		return
	}
	k.LocalReduce(n, 1)
	dst.AccumulateFrom(src, dstOff+off, srcOff+off, n)
}

// validateEqualSized checks per-rank buffer arrays.
func validateEqualSized(c *Comm, bufs []*mem.Buffer, what string) (int64, error) {
	if len(bufs) != c.Ranks() {
		return 0, fmt.Errorf("collective: %d %s buffers for %d ranks", len(bufs), what, c.Ranks())
	}
	size := bufs[0].Size()
	for r, b := range bufs {
		if b == nil {
			return 0, fmt.Errorf("collective: nil %s buffer for rank %d", what, r)
		}
		if b.Rank != r {
			return 0, fmt.Errorf("collective: %s buffer %d lives on rank %d", what, r, b.Rank)
		}
		if b.Size() != size {
			return 0, fmt.Errorf("collective: %s buffer sizes differ (%d vs %d)", what, b.Size(), size)
		}
	}
	return size, nil
}

func validateAllReduceBufs(c *Comm, in, out []*mem.Buffer) (int64, error) {
	sIn, err := validateEqualSized(c, in, "input")
	if err != nil {
		return 0, err
	}
	sOut, err := validateEqualSized(c, out, "output")
	if err != nil {
		return 0, err
	}
	if sIn != sOut {
		return 0, fmt.Errorf("collective: allreduce in %d bytes != out %d bytes", sIn, sOut)
	}
	n := int64(c.Ranks())
	if sIn%(4*n) != 0 {
		return 0, fmt.Errorf("collective: size %d not divisible by 4*ranks", sIn)
	}
	return sIn, nil
}

// mesh is a full set of pairwise channels among a rank subset.
type mesh struct {
	chans map[int]map[int]*core.MemoryChannel // [local][peer]
}

// newMesh builds pairwise memory channels among ranks, binding each
// direction a->b as (srcOf(a) on a) -> (dstOf(b) on b).
func newMesh(c *Comm, ranks []int, srcOf, dstOf func(r int) *mem.Buffer) *mesh {
	m := &mesh{chans: make(map[int]map[int]*core.MemoryChannel)}
	for _, r := range ranks {
		m.chans[r] = make(map[int]*core.MemoryChannel)
	}
	for i, a := range ranks {
		for _, b := range ranks[i+1:] {
			ca, cb := c.C.NewMemoryChannelPairEx(a, b, srcOf(a), dstOf(b), srcOf(b), dstOf(a))
			m.chans[a][b] = ca
			m.chans[b][a] = cb
		}
	}
	return m
}

// at returns rank r's channel to peer p.
func (m *mesh) at(r, p int) *core.MemoryChannel { return m.chans[r][p] }

// portMesh is a full set of pairwise PortChannels among a rank subset.
type portMesh struct {
	chans map[int]map[int]*core.PortChannel
}

// newPortMesh builds pairwise port channels among ranks with per-direction
// bindings like newMesh.
func newPortMesh(c *Comm, ranks []int, srcOf, dstOf func(r int) *mem.Buffer) *portMesh {
	m := &portMesh{chans: make(map[int]map[int]*core.PortChannel)}
	for _, r := range ranks {
		m.chans[r] = make(map[int]*core.PortChannel)
	}
	for i, a := range ranks {
		for _, b := range ranks[i+1:] {
			ca, cb := c.C.NewPortChannelPairEx(a, b, srcOf(a), dstOf(b), srcOf(b), dstOf(a))
			m.chans[a][b] = ca
			m.chans[b][a] = cb
		}
	}
	return m
}

// at returns rank r's port channel to peer p.
func (m *portMesh) at(r, p int) *core.PortChannel { return m.chans[r][p] }

// peers returns r's peers in deterministic order, rotated so each rank
// starts with a different peer (spreading load, paper §7.2).
func peersOf(ranks []int, r int) []int {
	idx := -1
	for i, x := range ranks {
		if x == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("collective: rank %d not in group %v", r, ranks))
	}
	out := make([]int, 0, len(ranks)-1)
	for s := 1; s < len(ranks); s++ {
		out = append(out, ranks[(idx+s)%len(ranks)])
	}
	return out
}

// barrier is an all-pairs signal/wait rank barrier used by switch-based
// algorithms (relaxed-semantics flags in the real implementation).
type barrier struct {
	m *mesh
}

func newBarrier(c *Comm, ranks []int) *barrier {
	dummies := make(map[int]*mem.Buffer, len(ranks))
	for _, r := range ranks {
		dummies[r] = mem.NewBuffer(r, "barrier", 4)
	}
	get := func(r int) *mem.Buffer { return dummies[r] }
	return &barrier{m: newMesh(c, ranks, get, get)}
}

// sync performs the barrier from block 0 of each rank's kernel; other blocks
// must synchronize via GridBarrier around it.
func (b *barrier) sync(k *machine.Kernel, ranks []int) {
	r := k.GPU.Rank
	for _, p := range peersOf(ranks, r) {
		b.m.at(r, p).Signal(k)
	}
	for _, p := range peersOf(ranks, r) {
		b.m.at(r, p).Wait(k)
	}
}

// allRanks returns [0..n).
func allRanks(n int) []int {
	rs := make([]int, n)
	for i := range rs {
		rs[i] = i
	}
	return rs
}

// nodeRanks returns the global ranks of one node.
func (c *Comm) nodeRanks(node int) []int {
	g := c.M.Env.GPUsPerNode
	rs := make([]int, g)
	for i := range rs {
		rs[i] = node*g + i
	}
	return rs
}

// sameLocalRanks returns the global ranks with local index l across nodes.
func (c *Comm) sameLocalRanks(l int) []int {
	rs := make([]int, c.M.Env.Nodes)
	for n := range rs {
		rs[n] = n*c.M.Env.GPUsPerNode + l
	}
	return rs
}

// FillInputs fills in[r] element i with f(r, i) (test/bench helper).
func FillInputs(in []*mem.Buffer, f func(r int, i int64) float32) {
	for r, b := range in {
		rr := r
		b.FillPattern(func(i int64) float32 { return f(rr, i) })
	}
}

// CheckAllReduce verifies out[r] == sum over ranks of f(rank, i) for all r.
func CheckAllReduce(out []*mem.Buffer, f func(r int, i int64) float32, eps float32) error {
	n := len(out)
	want := func(i int64) float32 {
		var s float32
		for r := 0; r < n; r++ {
			s += f(r, i)
		}
		return s
	}
	for r, b := range out {
		if err := b.EqualFloat32(want, eps); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// CheckAllGather verifies out[r] is the concatenation of the shards,
// where shard p element i equals f(p, i).
func CheckAllGather(out []*mem.Buffer, shardBytes int64, f func(p int, i int64) float32, eps float32) error {
	n := len(out)
	shardEl := shardBytes / 4
	want := func(i int64) float32 {
		p := i / shardEl
		if p >= int64(n) {
			p = int64(n) - 1
		}
		return f(int(p), i%shardEl)
	}
	for r, b := range out {
		if err := b.EqualFloat32(want, eps); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}

// CheckReduceScatter verifies out[r] element i == sum over p of
// f(p, r*outEl+i).
func CheckReduceScatter(out []*mem.Buffer, f func(p int, i int64) float32, eps float32) error {
	n := len(out)
	for r, b := range out {
		outEl := b.Size() / 4
		base := int64(r) * outEl
		want := func(i int64) float32 {
			var s float32
			for p := 0; p < n; p++ {
				s += f(p, base+i)
			}
			return s
		}
		if err := b.EqualFloat32(want, eps); err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return nil
}
