package collective

import (
	"testing"
	"testing/quick"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/topology"
)

// Property: every single-node AllReduce algorithm produces the bit-exact
// same (numerically summed) result for arbitrary aligned sizes and input
// patterns, across all three vendor environments.
func TestAllReduceAlgorithmsProperty(t *testing.T) {
	envs := []func(int) *topology.Env{topology.A100_40G, topology.H100, topology.MI300x}
	f := func(sizeUnits uint8, seed uint8, envIdx uint8, algoIdx uint8) bool {
		// size: multiple of 64 bytes (4*8*2 alignment for halves), 64B-64KB.
		size := int64(sizeUnits%64+1) * 1024
		env := envs[int(envIdx)%len(envs)](1)
		m := machine.New(env)
		m.MaterializeLimit = 1 << 40
		c := New(m)
		algos := []Algorithm{
			&AllReduce1PA{}, &AllReduce1PAHB{}, &AllReduce2PALL{},
			&AllReduce2PAHB{}, &AllReduce2PR{},
		}
		if env.HasMulticast {
			algos = append(algos, &AllReduce2PASwitch{})
		}
		algo := algos[int(algoIdx)%len(algos)]
		n := c.Ranks()
		in := make([]*mem.Buffer, n)
		out := make([]*mem.Buffer, n)
		for r := 0; r < n; r++ {
			in[r] = m.Alloc(r, "in", size)
			out[r] = m.Alloc(r, "out", size)
		}
		pat := func(r int, i int64) float32 {
			return float32((int64(seed)+int64(r)*7+i)%17) * 0.5
		}
		FillInputs(in, pat)
		ex, err := algo.Prepare(c, in, out)
		if err != nil {
			t.Logf("%s size=%d: %v", algo.Name(), size, err)
			return false
		}
		if _, err := c.Run(ex); err != nil {
			t.Logf("%s size=%d: %v", algo.Name(), size, err)
			return false
		}
		if err := CheckAllReduce(out, pat, 1e-4); err != nil {
			t.Logf("%s size=%d: %v", algo.Name(), size, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated invocations of the same prepared Exec keep producing
// correct results (channel/semaphore/flag state is reusable, as required for
// CUDA-graph-style steady-state measurement).
func TestRepeatedInvocationProperty(t *testing.T) {
	f := func(iters uint8) bool {
		n := int(iters%5) + 2
		m := machine.New(topology.A100_40G(1))
		m.MaterializeLimit = 1 << 40
		c := New(m)
		const size = 8192
		in := make([]*mem.Buffer, c.Ranks())
		out := make([]*mem.Buffer, c.Ranks())
		for r := 0; r < c.Ranks(); r++ {
			in[r] = m.Alloc(r, "in", size)
			out[r] = m.Alloc(r, "out", size)
		}
		FillInputs(in, pattern)
		ex, err := (&AllReduce1PA{}).Prepare(c, in, out)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := c.Run(ex); err != nil {
				return false
			}
			if err := CheckAllReduce(out, pattern, 1e-4); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulation is deterministic — identical configurations give
// identical virtual durations.
func TestDeterminismProperty(t *testing.T) {
	f := func(sizeUnits uint8) bool {
		size := int64(sizeUnits%32+1) * 4096
		run := func() int64 {
			m := machine.New(topology.H100(1))
			m.MaterializeLimit = 0
			c := New(m)
			in := make([]*mem.Buffer, c.Ranks())
			out := make([]*mem.Buffer, c.Ranks())
			for r := 0; r < c.Ranks(); r++ {
				in[r] = m.Alloc(r, "in", size)
				out[r] = m.Alloc(r, "out", size)
			}
			ex, err := (&AllReduce2PAHB{}).Prepare(c, in, out)
			if err != nil {
				return -1
			}
			d, err := c.Run(ex)
			if err != nil {
				return -1
			}
			return d
		}
		a, b := run(), run()
		return a > 0 && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastFlat(t *testing.T) {
	for _, env := range []*topology.Env{topology.A100_40G(1), topology.H100(1)} {
		m := machine.New(env)
		m.MaterializeLimit = 1 << 40
		c := New(m)
		const size = 64 << 10
		in := make([]*mem.Buffer, c.Ranks())
		out := make([]*mem.Buffer, c.Ranks())
		for r := 0; r < c.Ranks(); r++ {
			in[r] = m.Alloc(r, "in", size)
			out[r] = m.Alloc(r, "out", size)
		}
		const root = 3
		in[root].FillPattern(func(i int64) float32 { return float32(i % 23) })
		d, err := c.Broadcast(in, out, root)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatalf("duration %d", d)
		}
		for r := 0; r < c.Ranks(); r++ {
			if err := out[r].EqualFloat32(func(i int64) float32 { return float32(i % 23) }, 0); err != nil {
				t.Fatalf("%s rank %d: %v", env.Name, r, err)
			}
		}
	}
}

func TestBroadcastSwitch(t *testing.T) {
	m := machine.New(topology.H100(1))
	m.MaterializeLimit = 1 << 40
	c := New(m)
	const size = 2 << 20
	in := make([]*mem.Buffer, c.Ranks())
	out := make([]*mem.Buffer, c.Ranks())
	for r := 0; r < c.Ranks(); r++ {
		in[r] = m.Alloc(r, "in", size)
		out[r] = m.Alloc(r, "out", size)
	}
	in[0].FillPattern(func(i int64) float32 { return float32(i%13) - 5 })
	ex, err := (&BroadcastSwitch{Root: 0}).Prepare(c, in, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ex); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < c.Ranks(); r++ {
		if err := out[r].EqualFloat32(func(i int64) float32 { return float32(i%13) - 5 }, 0); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBroadcastInvalidRoot(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	c := New(m)
	in := make([]*mem.Buffer, c.Ranks())
	out := make([]*mem.Buffer, c.Ranks())
	for r := 0; r < c.Ranks(); r++ {
		in[r] = m.Alloc(r, "in", 4096)
		out[r] = m.Alloc(r, "out", 4096)
	}
	if _, err := (&BroadcastFlat{Root: 99}).Prepare(c, in, out); err == nil {
		t.Fatal("expected root-range error")
	}
}
