package collective

import (
	"testing"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func pattern(r int, i int64) float32 {
	return float32(r+1) + float32(i%13)*0.25
}

// runAllReduce prepares and runs one algorithm on a fresh machine, verifying
// numerical correctness, and returns the measured duration.
func runAllReduce(t *testing.T, env *topology.Env, algo Algorithm, size int64, iters int) sim.Duration {
	t.Helper()
	m := machine.New(env)
	m.MaterializeLimit = 1 << 40
	c := New(m)
	n := c.Ranks()
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", size)
		out[r] = m.Alloc(r, "out", size)
	}
	FillInputs(in, pattern)
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		t.Fatalf("%s: %v", algo.Name(), err)
	}
	var last sim.Duration
	for it := 0; it < iters; it++ {
		d, err := c.Run(ex)
		if err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		if d <= 0 {
			t.Fatalf("%s iter %d: non-positive duration %d", algo.Name(), it, d)
		}
		if err := CheckAllReduce(out, pattern, 1e-4); err != nil {
			t.Fatalf("%s iter %d: %v", algo.Name(), it, err)
		}
		last = d
	}
	return last
}

func TestAllReduce1PACorrectness(t *testing.T) {
	for _, size := range []int64{1 << 10, 32 << 10} {
		runAllReduce(t, topology.A100_40G(1), &AllReduce1PA{}, size, 3)
		runAllReduce(t, topology.H100(1), &AllReduce1PA{}, size, 2)
		runAllReduce(t, topology.MI300x(1), &AllReduce1PA{}, size, 2)
	}
}

func TestAllReduce2PALLCorrectness(t *testing.T) {
	for _, size := range []int64{32 << 10, 1 << 20} {
		runAllReduce(t, topology.A100_40G(1), &AllReduce2PALL{}, size, 3)
		runAllReduce(t, topology.MI300x(1), &AllReduce2PALL{}, size, 2)
	}
}

func TestAllReduce2PAHBCorrectness(t *testing.T) {
	for _, size := range []int64{256 << 10, 2 << 20} {
		runAllReduce(t, topology.A100_40G(1), &AllReduce2PAHB{}, size, 3)
		runAllReduce(t, topology.H100(1), &AllReduce2PAHB{}, size, 2)
	}
}

func TestAllReduce2PASwitchCorrectness(t *testing.T) {
	for _, size := range []int64{64 << 10, 2 << 20} {
		runAllReduce(t, topology.H100(1), &AllReduce2PASwitch{}, size, 3)
	}
}

func TestAllReduce2PASwitchRequiresNVLS(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	c := New(m)
	var in, out []*mem.Buffer
	for r := 0; r < c.Ranks(); r++ {
		in = append(in, m.Alloc(r, "in", 4096))
		out = append(out, m.Alloc(r, "out", 4096))
	}
	if _, err := (&AllReduce2PASwitch{}).Prepare(c, in, out); err == nil {
		t.Fatal("expected error preparing switch algorithm on A100")
	}
}

func TestAllReduce2PRCorrectness(t *testing.T) {
	for _, size := range []int64{64 << 10, 2 << 20} {
		runAllReduce(t, topology.A100_40G(1), &AllReduce2PR{}, size, 3)
		runAllReduce(t, topology.H100(1), &AllReduce2PR{UseMemoryChannel: true}, size, 2)
	}
}

func TestAllReduce2PHLLCorrectness(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		runAllReduce(t, topology.A100_40G(nodes), &AllReduce2PHLL{}, 64<<10, 2)
	}
}

func TestAllReduce2PHHBCorrectness(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		runAllReduce(t, topology.A100_40G(nodes), &AllReduce2PHHB{}, 4<<20, 2)
	}
}

func TestMultiNodeAlgosRejectSingleNode(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	c := New(m)
	var in, out []*mem.Buffer
	for r := 0; r < c.Ranks(); r++ {
		in = append(in, m.Alloc(r, "in", 8192))
		out = append(out, m.Alloc(r, "out", 8192))
	}
	if _, err := (&AllReduce2PHLL{}).Prepare(c, in, out); err == nil {
		t.Fatal("2PH-LL should reject single node")
	}
	if _, err := (&AllReduce2PHHB{}).Prepare(c, in, out); err == nil {
		t.Fatal("2PH-HB should reject single node")
	}
}

func TestSingleNodeAlgosRejectMultiNode(t *testing.T) {
	m := machine.New(topology.A100_40G(2))
	c := New(m)
	var in, out []*mem.Buffer
	for r := 0; r < c.Ranks(); r++ {
		in = append(in, m.Alloc(r, "in", 8192))
		out = append(out, m.Alloc(r, "out", 8192))
	}
	for _, a := range []Algorithm{&AllReduce1PA{}, &AllReduce2PALL{}, &AllReduce2PAHB{}, &AllReduce2PR{}} {
		if _, err := a.Prepare(c, in, out); err == nil {
			t.Fatalf("%s should reject multi-node", a.Name())
		}
	}
}

func TestValidateBufferErrors(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	c := New(m)
	in := make([]*mem.Buffer, c.Ranks())
	out := make([]*mem.Buffer, c.Ranks())
	for r := range in {
		in[r] = m.Alloc(r, "in", 4096)
		out[r] = m.Alloc(r, "out", 4096)
	}
	// Size mismatch.
	bad := make([]*mem.Buffer, c.Ranks())
	copy(bad, out)
	bad[3] = m.Alloc(3, "odd", 8192)
	if _, err := (&AllReduce1PA{}).Prepare(c, in, bad); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	// Wrong rank.
	bad2 := make([]*mem.Buffer, c.Ranks())
	copy(bad2, in)
	bad2[0] = m.Alloc(1, "wrong", 4096)
	if _, err := (&AllReduce1PA{}).Prepare(c, bad2, out); err == nil {
		t.Fatal("expected wrong-rank error")
	}
	// Wrong count.
	if _, err := (&AllReduce1PA{}).Prepare(c, in[:4], out); err == nil {
		t.Fatal("expected count error")
	}
}

// runAllReduceTiming measures one algorithm without materializing data
// (virtual buffers: cost model only), for timing-shape assertions at large
// sizes.
func runAllReduceTiming(t *testing.T, env *topology.Env, algo Algorithm, size int64) sim.Duration {
	t.Helper()
	m := machine.New(env)
	m.MaterializeLimit = 0 // all buffers virtual
	c := New(m)
	n := c.Ranks()
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", size)
		out[r] = m.Alloc(r, "out", size)
	}
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		t.Fatalf("%s: %v", algo.Name(), err)
	}
	d, err := c.Run(ex)
	if err != nil {
		t.Fatalf("%s: %v", algo.Name(), err)
	}
	return d
}

// Latency-regime ordering: 1PA must be the fastest algorithm at 1KB.
func TestAlgorithmRegimes1KB(t *testing.T) {
	size := int64(1 << 10)
	t1pa := runAllReduce(t, topology.A100_40G(1), &AllReduce1PA{}, size, 2)
	t2pa := runAllReduce(t, topology.A100_40G(1), &AllReduce2PALL{}, size, 2)
	t2pr := runAllReduce(t, topology.A100_40G(1), &AllReduce2PR{}, size, 2)
	if t1pa >= t2pr {
		t.Fatalf("1PA (%d) should beat ring (%d) at 1KB", t1pa, t2pr)
	}
	if t1pa > t2pa+t2pa/2 {
		t.Fatalf("1PA (%d) should not be much slower than 2PA-LL (%d) at 1KB", t1pa, t2pa)
	}
}

// Bandwidth-regime ordering: ring (port) must beat 1PA at 64MB, and the port
// variant must beat the memory variant at very large sizes (paper: +6.2%).
func TestAlgorithmRegimesLarge(t *testing.T) {
	size := int64(64 << 20)
	t2pr := runAllReduceTiming(t, topology.A100_40G(1), &AllReduce2PR{}, size)
	t2pahb := runAllReduceTiming(t, topology.A100_40G(1), &AllReduce2PAHB{}, size)
	t2prMem := runAllReduceTiming(t, topology.A100_40G(1), &AllReduce2PR{UseMemoryChannel: true}, size)
	if t2pr >= t2prMem {
		t.Fatalf("2PR-Port (%d) should beat 2PR-Memory (%d) at 64MB", t2pr, t2prMem)
	}
	// Both large-message algorithms should land within 3x of each other.
	lo, hi := t2pr, t2pahb
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 3*lo {
		t.Fatalf("2PR (%d) and 2PA-HB (%d) diverge implausibly", t2pr, t2pahb)
	}
}
