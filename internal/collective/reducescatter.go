package collective

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// validateReduceScatterBufs checks NCCL conventions: in[r] holds S bytes,
// out[r] holds rank r's reduced S/N-byte slice.
func validateReduceScatterBufs(c *Comm, in, out []*mem.Buffer) (slice int64, err error) {
	total, err := validateEqualSized(c, in, "input")
	if err != nil {
		return 0, err
	}
	slice, err = validateEqualSized(c, out, "output")
	if err != nil {
		return 0, err
	}
	if total != slice*int64(c.Ranks()) {
		return 0, fmt.Errorf("collective: reducescatter in %d != slice %d * ranks %d",
			total, slice, c.Ranks())
	}
	if slice%4 != 0 || slice == 0 {
		return 0, fmt.Errorf("collective: reducescatter slice %d not usable", slice)
	}
	return slice, nil
}

// ReduceScatterAllPairsLL scatters with the LL protocol: every rank
// packet-puts slice p of its input to rank p, which reduces arrivals.
type ReduceScatterAllPairsLL struct {
	TB int
}

// Name implements Algorithm.
func (a *ReduceScatterAllPairsLL) Name() string { return "mscclpp-RS-AllPairs-LL" }

// Prepare implements Algorithm.
func (a *ReduceScatterAllPairsLL) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	slice, err := validateReduceScatterBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	scratch := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		scratch[r] = c.M.Alloc(r, "rsll.scratch", slice*int64(n))
	}
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return scratch[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(slice/(16<<10)) + 1
		if nTB > 4 {
			nTB = 4
		}
	}
	iter := uint64(0)
	launch := func() []*machine.KernelHandle {
		iter++
		flag := iter
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).PutPacketsBuf(k, scratch[p], int64(r)*slice,
						in[r], int64(p)*slice, slice, k.Block, k.NumBlocks, flag)
				}
				localCopy(k, out[r], 0, in[r], int64(r)*slice, slice)
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).AwaitPackets(k, flag, uint64(slice))
					localReduce(k, out[r], 0, scratch[r], int64(p)*slice, slice)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// ReduceScatterAllPairsHB scatters by pulling: every rank's thread groups
// read-reduce its slice from all peers' inputs concurrently, with no
// synchronization at all (inputs are stable during the collective).
type ReduceScatterAllPairsHB struct {
	TB int
}

// Name implements Algorithm.
func (a *ReduceScatterAllPairsHB) Name() string { return "mscclpp-RS-AllPairs-HB" }

// Prepare implements Algorithm.
func (a *ReduceScatterAllPairsHB) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	slice, err := validateReduceScatterBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	ranks := allRanks(n)
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return in[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(slice / (128 << 10))
		if nTB < 4 {
			nTB = 4
		}
		if nTB > 24 {
			nTB = 24
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				localCopy(k, out[r], 0, in[r], int64(r)*slice, slice)
				for _, p := range peersOf(ranks, r) {
					m.at(r, p).ReduceBuf(k, out[r], 0, in[p], int64(r)*slice,
						slice, k.Block, k.NumBlocks)
				}
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// ReduceScatterRing is the pipelined ring ReduceScatter of paper Figure 6,
// with half-chunk reduction overlapped with the next half's DMA transfer.
// Output convention differs from the AllReduce-internal ring: out[r] gets
// slice r.
type ReduceScatterRing struct {
	TB int
}

// Name implements Algorithm.
func (a *ReduceScatterRing) Name() string { return "mscclpp-RS-Ring-Port" }

// Prepare implements Algorithm.
func (a *ReduceScatterRing) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	slice, err := validateReduceScatterBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	if n < 2 {
		return nil, fmt.Errorf("%s: need at least 2 ranks", a.Name())
	}
	half := slice / 2
	if half%4 != 0 {
		return nil, fmt.Errorf("%s: half-slice %d not aligned", a.Name(), half)
	}
	// work[r] accumulates (copy of input); scr receives in-flight chunks.
	work := make([]*mem.Buffer, n)
	scr := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		work[r] = c.M.Alloc(r, "rsring.work", slice*int64(n))
		scr[r] = c.M.Alloc(r, "rsring.scr", slice*int64(n))
	}
	ring := make([]*ringEdge, n)
	for r := 0; r < n; r++ {
		next := (r + 1) % n
		s, d := c.C.NewPortChannelPairEx(r, next, work[r], scr[next], work[next], scr[r])
		if ring[r] == nil {
			ring[r] = &ringEdge{}
		}
		if ring[next] == nil {
			ring[next] = &ringEdge{}
		}
		ring[r].send = s
		ring[next].recv = d
	}
	nTB := a.TB
	if nTB == 0 {
		nTB = 4
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				localCopy(k, work[r], 0, in[r], 0, slice*int64(n))
				k.GridBarrier()
				send, recv := ring[r].send, ring[r].recv
				// Ring steps: after n-1 steps rank r owns chunk (r+1)%n; the
				// ring is oriented so that one final hop is avoided by
				// defining ownership accordingly, then the owned chunk is
				// copied to out.
				for s := 0; s < n-1; s++ {
					cs := int64((r+n-s)%n) * slice
					cr := int64((r+n-s-1)%n) * slice
					if k.Block == 0 {
						send.Put(k, cs, cs, half, 0, 1)
						send.Signal(k)
						send.Put(k, cs+half, cs+half, slice-half, 0, 1)
						send.Signal(k)
						recv.Wait(k)
					}
					k.GridBarrier()
					localReduce(k, work[r], cr, scr[r], cr, half)
					k.GridBarrier()
					if k.Block == 0 {
						recv.Wait(k)
					}
					k.GridBarrier()
					localReduce(k, work[r], cr+half, scr[r], cr+half, slice-half)
					k.GridBarrier()
					if k.Block == 0 {
						send.Flush(k)
					}
				}
				// Rank r owns chunk (r+1)%n. The API promises slice r in
				// out[r], so rank (r-1) holds slice r... each rank therefore
				// forwards its owned chunk to the owner-by-convention.
				owned := int64((r+1)%n) * slice
				k.GridBarrier()
				if k.Block == 0 {
					// One extra hop delivers the owned chunk to its
					// conventional owner (the next rank in the ring).
					send.Put(k, owned, owned, slice, 0, 1)
					send.Signal(k)
					recv.Wait(k)
					send.Flush(k)
				}
				k.GridBarrier()
				// My slice arrived in scr; publish to out.
				localCopy(k, out[r], 0, scr[r], int64(r)*slice, slice)
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}
