package collective

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
)

// BroadcastFlat is the single-node Broadcast: the root writes the buffer
// directly into every peer's output with sharded thread-copy puts and one
// signal round — zero-copy and single-step, in contrast to send/recv chains.
type BroadcastFlat struct {
	Root int
	TB   int
}

// Name implements Algorithm.
func (a *BroadcastFlat) Name() string { return "mscclpp-Broadcast-Flat" }

// Prepare implements Algorithm. in[root] is the source; out[r] receives the
// buffer on every rank (in[r] for r != root is ignored, as in NCCL when
// sendbuff==recvbuff conventions are not used).
func (a *BroadcastFlat) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	n := c.Ranks()
	root := a.Root
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%s: root %d out of range", a.Name(), root)
	}
	ranks := allRanks(n)
	m := newMesh(c, ranks,
		func(r int) *mem.Buffer { return in[r] },
		func(r int) *mem.Buffer { return out[r] })
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (256 << 10))
		if nTB < 2 {
			nTB = 2
		}
		if nTB > 24 {
			nTB = 24
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				if r == root {
					for _, p := range peersOf(ranks, r) {
						m.at(r, p).Put(k, 0, 0, size, k.Block, k.NumBlocks)
					}
					localCopy(k, out[r], 0, in[r], 0, size)
					k.GridBarrier()
					if k.Block == 0 {
						for _, p := range peersOf(ranks, r) {
							m.at(r, p).Signal(k)
						}
					}
				} else if k.Block == 0 {
					m.at(r, root).Wait(k)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// BroadcastSwitch multicasts the root's buffer through the NVSwitch in a
// single multimem.st pass (H100).
type BroadcastSwitch struct {
	Root int
	TB   int
}

// Name implements Algorithm.
func (a *BroadcastSwitch) Name() string { return "mscclpp-Broadcast-Switch" }

// Prepare implements Algorithm.
func (a *BroadcastSwitch) Prepare(c *Comm, in, out []*mem.Buffer) (*Exec, error) {
	size, err := validateAllReduceBufs(c, in, out)
	if err != nil {
		return nil, err
	}
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("%s: single-node only", a.Name())
	}
	if !c.M.Fabric.HasSwitch() {
		return nil, fmt.Errorf("%s: %s has no switch-mapped I/O", a.Name(), c.M.Env.Name)
	}
	n := c.Ranks()
	root := a.Root
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%s: root %d out of range", a.Name(), root)
	}
	ranks := allRanks(n)
	outChans := c.C.NewSwitchChannels(ranks, out)
	bar := newBarrier(c, ranks)
	nTB := a.TB
	if nTB == 0 {
		nTB = int(size / (256 << 10))
		if nTB < 2 {
			nTB = 2
		}
		if nTB > 24 {
			nTB = 24
		}
	}
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(a.Name(), nTB, func(k *machine.Kernel) {
				if r == root {
					outChans[r].BroadcastFrom(k, in[r], 0, 0, size, k.Block, k.NumBlocks)
				}
				k.GridBarrier()
				if k.Block == 0 {
					bar.sync(k, ranks)
				}
				k.GridBarrier()
			})
		}
		return handles
	}
	return &Exec{Name: a.Name(), launch: launch}, nil
}

// Broadcast is the one-call Collective API for Broadcast from root.
func (c *Comm) Broadcast(in, out []*mem.Buffer, root int) (sim.Duration, error) {
	var algo Algorithm
	if c.M.Env.Nodes == 1 && c.M.Env.HasMulticast && in[0].Size() >= 1<<20 {
		algo = &BroadcastSwitch{Root: root}
	} else {
		algo = &BroadcastFlat{Root: root}
	}
	ex, err := algo.Prepare(c, in, out)
	if err != nil {
		return 0, err
	}
	return c.Run(ex)
}
