// Package ncclsim is the NCCL/RCCL-style baseline library (paper Sections
// 2.2-2.3): collectives built from synchronous two-sided send/recv over
// staging buffers (package twosided), with ring and tree/chain algorithms,
// Simple and LL protocols, and multiple channels (thread blocks) per
// collective. On AMD-style meshes the per-channel rings use different xGMI
// links (stride rings), like RCCL.
//
// The library deliberately reproduces the baseline's structural costs — the
// extra FIFO copy per hop, per-chunk rendezvous, one hardcoded transfer mode
// per link — rather than being slowed down artificially.
package ncclsim

import (
	"fmt"

	"mscclpp/internal/baseline/twosided"
	"mscclpp/internal/collective"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// Library is one NCCL-like communicator.
type Library struct {
	C *collective.Comm
	// Channels is the number of parallel channels (thread blocks + rings);
	// NCCL_NCHANNELS. Default 12.
	Channels int
	// Chunk is the staging slot size (NCCL_BUFFSIZE/slots). Default 512 KiB.
	Chunk int64
}

// New returns a library over c.
func New(c *collective.Comm, channels int) *Library {
	if channels <= 0 {
		channels = 12
	}
	return &Library{C: c, Channels: channels, Chunk: 512 << 10}
}

// ringNext returns the successor of rank r on channel b's ring. Single-node
// mesh topologies rotate through coprime strides so different channels use
// different xGMI links (RCCL-style). Multi-node rings rotate the intra-node
// order per channel so each channel's node-crossing edge uses a different
// NIC (NCCL builds one ring per NIC).
func (l *Library) ringNext(r, b int) int {
	n := l.C.Ranks()
	env := l.C.M.Env
	if env.Nodes == 1 && env.IntraMesh {
		strides := []int{1, 3, 5, 7}
		s := strides[b%len(strides)]
		g := env.GPUsPerNode
		return (r + s) % g
	}
	if env.Nodes == 1 {
		return (r + 1) % n
	}
	// Multi-node: within a node, visit locals b, b+1, ..., b+g-1 (mod g);
	// the last local of each node hands off to local b of the next node.
	g := env.GPUsPerNode
	node, local := r/g, r%g
	pos := (local - b%g + g) % g
	if pos < g-1 {
		return node*g + (b+pos+1)%g
	}
	return ((node+1)%env.Nodes)*g + b%g
}

// ringEdges builds per-channel ring connections; edge[b][r] sends r -> next.
func (l *Library) ringEdges(proto twosided.Proto, chunk int64) [][]*twosided.Conn {
	n := l.C.Ranks()
	edges := make([][]*twosided.Conn, l.Channels)
	for b := 0; b < l.Channels; b++ {
		edges[b] = make([]*twosided.Conn, n)
		for r := 0; r < n; r++ {
			edges[b][r] = twosided.NewConn(l.C.M, r, l.ringNext(r, b),
				twosided.Config{Proto: proto, Chunk: chunk})
		}
	}
	return edges
}

// ringPrev returns the predecessor of r on channel b's ring.
func (l *Library) ringPrev(r, b int) int {
	n := l.C.Ranks()
	for p := 0; p < n; p++ {
		if l.ringNext(p, b) == r {
			return p
		}
	}
	panic("ncclsim: broken ring")
}

func shardRange(size int64, i, n int) (off, ln int64) {
	el := size / 4
	base := el / int64(n)
	rem := el % int64(n)
	start := base*int64(i) + minI64(int64(i), rem)
	cnt := base
	if int64(i) < rem {
		cnt++
	}
	off = start * 4
	ln = cnt * 4
	if i == n-1 {
		ln += size % 4
	}
	return
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// window returns the i-th chunk-sized window of a region of length n.
func window(n, chunk int64, i int64) (off, ln int64) {
	off = i * chunk
	if off >= n {
		return n, 0
	}
	ln = n - off
	if ln > chunk {
		ln = chunk
	}
	return
}

// PrepareAllReduceRing builds the classic ring AllReduce: a ReduceScatter
// pass followed by an AllGather pass, 2(N-1) synchronous hops per element,
// chunk-interleaved so neighbouring transfers pipeline.
func (l *Library) PrepareAllReduceRing(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	n := l.C.Ranks()
	if len(in) != n || len(out) != n {
		return nil, fmt.Errorf("ncclsim: need %d buffers", n)
	}
	size := in[0].Size()
	chunk := l.Chunk
	if proto == twosided.ProtoLL {
		chunk = 16 << 10
	}
	nch := l.Channels
	if size/int64(nch) < 4096 {
		nch = int(size/4096) + 1
		if nch > l.Channels {
			nch = l.Channels
		}
	}
	edges := l.ringEdges(proto, chunk)
	name := "nccl-Ring-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = l.C.M.GPUs[r].Launch(name, nch, func(k *machine.Kernel) {
				b := k.Block
				send := edges[b][r]
				recv := edges[b][l.ringPrev(r, b)]
				pOff, pSize := shardRange(size, b, nch)
				if pSize == 0 {
					return
				}
				// Working copy of this channel's part.
				k.LocalCopy(pSize, 1)
				in[r].CopyTo(out[r], pOff, pOff, pSize)
				// Ring indices follow ring positions, not rank numbers, so
				// stride rings stay correct.
				pos := ringPos(l, r, b)
				slice := func(i int) (int64, int64) {
					o, ln := shardRange(pSize, i, n)
					return pOff + o, ln
				}
				// ReduceScatter pass.
				for s := 0; s < n-1; s++ {
					csOff, csN := slice((pos + n - s) % n)
					crOff, crN := slice((pos + n - s - 1) % n)
					nw := (maxI64(csN, crN) + chunk - 1) / chunk
					for i := int64(0); i < nw; i++ {
						so, sn := window(csN, chunk, i)
						ro, rn := window(crN, chunk, i)
						if sn > 0 {
							send.Send(k, out[r], csOff+so, sn)
						}
						if rn > 0 {
							recv.RecvReduce(k, out[r], crOff+ro, rn)
						}
					}
				}
				// AllGather pass: forward the owned slice around the ring.
				for s := 0; s < n-1; s++ {
					csOff, csN := slice((pos + 1 + n - s) % n)
					crOff, crN := slice((pos + n - s) % n)
					nw := (maxI64(csN, crN) + chunk - 1) / chunk
					for i := int64(0); i < nw; i++ {
						so, sn := window(csN, chunk, i)
						ro, rn := window(crN, chunk, i)
						if sn > 0 {
							send.Send(k, out[r], csOff+so, sn)
						}
						if rn > 0 {
							recv.RecvCopy(k, out[r], crOff+ro, rn)
						}
					}
				}
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ringPos returns r's position along channel b's ring starting from rank 0.
func ringPos(l *Library, r, b int) int {
	pos := 0
	cur := 0
	for cur != r {
		cur = l.ringNext(cur, b)
		pos++
		if pos > l.C.Ranks() {
			panic("ncclsim: rank not on ring")
		}
	}
	return pos
}

// PrepareAllReduceTree builds the latency-oriented chain/tree AllReduce used
// for small multi-node messages: chain-reduce within each node to the local
// leader, chain-reduce across node leaders, then broadcast back down both
// levels.
func (l *Library) PrepareAllReduceTree(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	c := l.C
	n := c.Ranks()
	env := c.M.Env
	g, nodes := env.GPUsPerNode, env.Nodes
	size := in[0].Size()
	chunk := l.Chunk
	if proto == twosided.ProtoLL {
		chunk = 16 << 10
	}
	cfg := twosided.Config{Proto: proto, Chunk: chunk}
	// Reduce-phase conns (towards rank 0 of node 0) and broadcast-phase
	// conns (away from it).
	up := make([]*twosided.Conn, n)   // r -> its reduce parent
	down := make([]*twosided.Conn, n) // r -> its broadcast child source? indexed by receiver
	for r := 0; r < n; r++ {
		node, local := r/g, r%g
		if local > 0 {
			up[r] = twosided.NewConn(c.M, r, r-1, cfg)
		} else if node > 0 {
			up[r] = twosided.NewConn(c.M, r, (node-1)*g, cfg)
		}
	}
	for r := 0; r < n; r++ {
		node, local := r/g, r%g
		if local > 0 {
			down[r] = twosided.NewConn(c.M, r-1, r, cfg)
		} else if node > 0 {
			down[r] = twosided.NewConn(c.M, (node-1)*g, r, cfg)
		}
	}
	name := "nccl-Tree-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = c.M.GPUs[r].Launch(name, 1, func(k *machine.Kernel) {
				node, local := r/g, r%g
				k.LocalCopy(size, 1)
				in[r].CopyTo(out[r], 0, 0, size)
				// --- Reduce towards (0,0) ---
				if local < g-1 {
					up[r+1].RecvReduceBuffer(k, out[r], 0, size)
				}
				if local == 0 && node < nodes-1 {
					up[(node+1)*g].RecvReduceBuffer(k, out[r], 0, size)
				}
				if up[r] != nil {
					up[r].SendBuffer(k, out[r], 0, size)
				}
				// --- Broadcast back ---
				if down[r] != nil {
					down[r].RecvCopyBuffer(k, out[r], 0, size)
				}
				if local == 0 && node < nodes-1 {
					down[(node+1)*g].SendBuffer(k, out[r], 0, size)
				}
				if local < g-1 {
					down[r+1].SendBuffer(k, out[r], 0, size)
				}
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

// PrepareAllGatherRing builds the ring AllGather (NCCL's only AllGather
// algorithm): N-1 forwarding hops through staging buffers.
func (l *Library) PrepareAllGatherRing(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	n := l.C.Ranks()
	shard := in[0].Size()
	chunk := l.Chunk
	if proto == twosided.ProtoLL {
		chunk = 16 << 10
	}
	nch := l.Channels
	if shard/int64(nch) < 4096 {
		nch = int(shard/4096) + 1
		if nch > l.Channels {
			nch = l.Channels
		}
	}
	edges := l.ringEdges(proto, chunk)
	name := "nccl-AG-Ring-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			handles[r] = l.C.M.GPUs[r].Launch(name, nch, func(k *machine.Kernel) {
				b := k.Block
				send := edges[b][r]
				recv := edges[b][l.ringPrev(r, b)]
				pOff, pSize := shardRange(shard, b, nch)
				if pSize == 0 {
					return
				}
				k.LocalCopy(pSize, 1)
				in[r].CopyTo(out[r], int64(r)*shard+pOff, pOff, pSize)
				// Forward shards around the ring by ring position.
				prevRank := func(x, steps int) int {
					for ; steps > 0; steps-- {
						x = l.ringPrev(x, b)
					}
					return x
				}
				for s := 0; s < n-1; s++ {
					sRank := prevRank(r, s)   // shard to send this step
					rRank := prevRank(r, s+1) // shard arriving this step
					sOff := int64(sRank)*shard + pOff
					rOff := int64(rRank)*shard + pOff
					nw := (pSize + chunk - 1) / chunk
					for i := int64(0); i < nw; i++ {
						wo, wn := window(pSize, chunk, i)
						send.Send(k, out[r], sOff+wo, wn)
						recv.RecvCopy(k, out[r], rOff+wo, wn)
					}
				}
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}
