// Package baseline_test verifies the NCCL-sim and MSCCL-sim baseline
// libraries for numerical correctness and for the structural performance
// relationships the paper's gain breakdown relies on.
package baseline_test

import (
	"testing"

	"mscclpp/internal/baseline/mscclsim"
	"mscclpp/internal/baseline/ncclsim"
	"mscclpp/internal/baseline/twosided"
	"mscclpp/internal/collective"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func pattern(r int, i int64) float32 {
	return float32(r+1) + float32(i%7)*0.5
}

func setup(t *testing.T, env *topology.Env, size int64, materialize bool) (*collective.Comm, []*mem.Buffer, []*mem.Buffer) {
	t.Helper()
	m := machine.New(env)
	if materialize {
		m.MaterializeLimit = 1 << 40
	} else {
		m.MaterializeLimit = 0
	}
	c := collective.New(m)
	n := c.Ranks()
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", size)
		out[r] = m.Alloc(r, "out", size)
	}
	collective.FillInputs(in, pattern)
	return c, in, out
}

func runExec(t *testing.T, c *collective.Comm, ex *collective.Exec) sim.Duration {
	t.Helper()
	d, err := c.Run(ex)
	if err != nil {
		t.Fatalf("%s: %v", ex.Name, err)
	}
	return d
}

func TestTwoSidedConnBasics(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	m.MaterializeLimit = 1 << 40
	src := m.Alloc(0, "src", 8192)
	dst := m.Alloc(1, "dst", 8192)
	src.FillPattern(func(i int64) float32 { return float32(i) })
	conn := twosided.NewConn(m, 0, 1, twosided.Config{Chunk: 2048})
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		conn.SendBuffer(k, src, 0, 8192)
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		conn.RecvCopyBuffer(k, dst, 0, 8192)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(i int64) float32 { return float32(i) }, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTwoSidedBackpressure(t *testing.T) {
	// A slow receiver must throttle the sender via slot rendezvous without
	// deadlock or data loss.
	m := machine.New(topology.A100_40G(1))
	m.MaterializeLimit = 1 << 40
	const size = 64 << 10
	src := m.Alloc(0, "src", size)
	dst := m.Alloc(1, "dst", size)
	src.FillFloat32(2)
	conn := twosided.NewConn(m, 0, 1, twosided.Config{Chunk: 1024, Slots: 2})
	m.GPUs[0].Launch("send", 1, func(k *machine.Kernel) {
		conn.SendBuffer(k, src, 0, size)
	})
	m.GPUs[1].Launch("recv", 1, func(k *machine.Kernel) {
		for off := int64(0); off < size; off += 1024 {
			k.Elapse(5000) // slow consumer
			conn.RecvCopy(k, dst, off, 1024)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := dst.EqualFloat32(func(int64) float32 { return 2 }, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNCCLRingAllReduceCorrect(t *testing.T) {
	for _, env := range []*topology.Env{topology.A100_40G(1), topology.MI300x(1), topology.A100_40G(2)} {
		for _, proto := range []twosided.Proto{twosided.ProtoSimple, twosided.ProtoLL} {
			c, in, out := setup(t, env, 256<<10, true)
			lib := ncclsim.New(c, 4)
			ex, err := lib.PrepareAllReduceRing(in, out, proto)
			if err != nil {
				t.Fatal(err)
			}
			runExec(t, c, ex)
			if err := collective.CheckAllReduce(out, pattern, 1e-4); err != nil {
				t.Fatalf("%s %s %s: %v", env.Name, proto, ex.Name, err)
			}
		}
	}
}

func TestNCCLTreeAllReduceCorrect(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		c, in, out := setup(t, topology.A100_40G(nodes), 32<<10, true)
		lib := ncclsim.New(c, 4)
		ex, err := lib.PrepareAllReduceTree(in, out, twosided.ProtoLL)
		if err != nil {
			t.Fatal(err)
		}
		runExec(t, c, ex)
		if err := collective.CheckAllReduce(out, pattern, 1e-4); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
	}
}

func TestNCCLAllGatherCorrect(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	m.MaterializeLimit = 1 << 40
	c := collective.New(m)
	n := c.Ranks()
	shard := int64(32 << 10)
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", shard)
		out[r] = m.Alloc(r, "out", shard*int64(n))
	}
	collective.FillInputs(in, pattern)
	lib := ncclsim.New(c, 4)
	ex, err := lib.PrepareAllGatherRing(in, out, twosided.ProtoSimple)
	if err != nil {
		t.Fatal(err)
	}
	runExec(t, c, ex)
	if err := collective.CheckAllGather(out, shard, pattern, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMSCCLAllPairs1PCorrect(t *testing.T) {
	c, in, out := setup(t, topology.A100_40G(1), 8<<10, true)
	lib := mscclsim.New(c, 4)
	ex, err := lib.PrepareAllReduceAllPairs1P(in, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		runExec(t, c, ex)
		if err := collective.CheckAllReduce(out, pattern, 1e-4); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
	}
}

func TestMSCCLAllPairs2PCorrect(t *testing.T) {
	for _, proto := range []twosided.Proto{twosided.ProtoSimple, twosided.ProtoLL} {
		c, in, out := setup(t, topology.A100_40G(1), 512<<10, true)
		lib := mscclsim.New(c, 4)
		ex, err := lib.PrepareAllReduceAllPairs2P(in, out, proto)
		if err != nil {
			t.Fatal(err)
		}
		runExec(t, c, ex)
		if err := collective.CheckAllReduce(out, pattern, 1e-4); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

func TestMSCCLHierCorrect(t *testing.T) {
	for _, nodes := range []int{2, 4} {
		c, in, out := setup(t, topology.A100_40G(nodes), 2<<20, true)
		lib := mscclsim.New(c, 4)
		ex, err := lib.PrepareAllReduceHier(in, out, twosided.ProtoSimple)
		if err != nil {
			t.Fatal(err)
		}
		runExec(t, c, ex)
		if err := collective.CheckAllReduce(out, pattern, 1e-4); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
	}
}

func TestMSCCLAllGatherCorrect(t *testing.T) {
	m := machine.New(topology.A100_40G(1))
	m.MaterializeLimit = 1 << 40
	c := collective.New(m)
	n := c.Ranks()
	shard := int64(16 << 10)
	in := make([]*mem.Buffer, n)
	out := make([]*mem.Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = m.Alloc(r, "in", shard)
		out[r] = m.Alloc(r, "out", shard*int64(n))
	}
	collective.FillInputs(in, pattern)
	lib := mscclsim.New(c, 4)
	ex, err := lib.PrepareAllGatherAllPairs(in, out, twosided.ProtoLL)
	if err != nil {
		t.Fatal(err)
	}
	runExec(t, c, ex)
	if err := collective.CheckAllGather(out, shard, pattern, 0); err != nil {
		t.Fatal(err)
	}
}

// Paper gain breakdown, small messages: MSCCL (all-pairs over two-sided)
// beats NCCL (ring), and MSCCL++ 1PA beats MSCCL (~47% latency cut at 1KB).
func TestGainBreakdownSmall(t *testing.T) {
	size := int64(1 << 10)

	cN, inN, outN := setup(t, topology.A100_40G(1), size, false)
	exN, err := ncclsim.New(cN, 2).PrepareAllReduceRing(inN, outN, twosided.ProtoLL)
	if err != nil {
		t.Fatal(err)
	}
	tNCCL := runExec(t, cN, exN)

	cM, inM, outM := setup(t, topology.A100_40G(1), size, false)
	exM, err := mscclsim.New(cM, 2).PrepareAllReduceAllPairs1P(inM, outM)
	if err != nil {
		t.Fatal(err)
	}
	tMSCCL := runExec(t, cM, exM)

	cP, inP, outP := setup(t, topology.A100_40G(1), size, false)
	exP, err := (&collective.AllReduce1PA{}).Prepare(cP, inP, outP)
	if err != nil {
		t.Fatal(err)
	}
	tPP, err := cP.Run(exP)
	if err != nil {
		t.Fatal(err)
	}

	if tMSCCL >= tNCCL {
		t.Errorf("MSCCL 1KB latency %d >= NCCL %d (better algorithm should win)", tMSCCL, tNCCL)
	}
	if tPP >= tMSCCL {
		t.Errorf("MSCCL++ 1KB latency %d >= MSCCL %d (better primitives should win)", tPP, tMSCCL)
	}
	t.Logf("1KB AllReduce latency: NCCL=%dns MSCCL=%dns MSCCL++=%dns", tNCCL, tMSCCL, tPP)
}

// Large messages: MSCCL++ 2PR must beat the NCCL ring (zero staging copy,
// DMA engines, overlap).
func TestGainBreakdownLarge(t *testing.T) {
	size := int64(64 << 20)

	cN, inN, outN := setup(t, topology.A100_40G(1), size, false)
	exN, err := ncclsim.New(cN, 12).PrepareAllReduceRing(inN, outN, twosided.ProtoSimple)
	if err != nil {
		t.Fatal(err)
	}
	tNCCL := runExec(t, cN, exN)

	cP, inP, outP := setup(t, topology.A100_40G(1), size, false)
	exP, err := (&collective.AllReduce2PR{}).Prepare(cP, inP, outP)
	if err != nil {
		t.Fatal(err)
	}
	tPP, err := cP.Run(exP)
	if err != nil {
		t.Fatal(err)
	}
	if tPP >= tNCCL {
		t.Errorf("MSCCL++ 64MB (%d) >= NCCL (%d)", tPP, tNCCL)
	}
	t.Logf("64MB AllReduce: NCCL=%dus MSCCL++=%dus (%.2fx)",
		tNCCL/1000, tPP/1000, float64(tNCCL)/float64(tPP))
}
