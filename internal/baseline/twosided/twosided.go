// Package twosided implements the synchronous, two-sided send/recv substrate
// that NCCL, RCCL and MSCCL are built on (paper Sections 2.2-2.3): data
// moves through internal staging FIFO buffers with per-chunk rendezvous
// flags, paying an extra receiver-side copy and blocking synchronization on
// every hop — exactly the mechanisms whose removal is MSCCL++'s Primitive
// API contribution.
//
// The substrate is shared by the ncclsim and mscclsim baseline libraries.
package twosided

import (
	"fmt"

	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/sim"
	"mscclpp/internal/timing"
)

// Proto selects the baseline transfer protocol.
type Proto int

const (
	// ProtoSimple is the bulk protocol: full-bandwidth staging writes with
	// rendezvous (send blocks until the receiver has posted buffer space).
	ProtoSimple Proto = iota
	// ProtoLL is the baseline low-latency protocol: flags inline with data
	// (no rendezvous round-trip) at the cost of doubled traffic.
	ProtoLL
)

func (p Proto) String() string {
	if p == ProtoLL {
		return "LL"
	}
	return "Simple"
}

// Conn is a directed connection src -> dst through a staging FIFO on the
// receiver.
type Conn struct {
	m        *machine.Machine
	src, dst int
	proto    Proto

	stage *mem.Buffer
	slots int
	chunk int64

	dataReady *sim.Semaphore // sender bumps after a slot's data lands
	spaceFree *sim.Semaphore // receiver bumps after draining a slot
	sendSeq   uint64
	recvSeq   uint64

	lastVisible sim.Time
}

// Config sizes the staging FIFO.
type Config struct {
	Slots int   // FIFO depth (default 8)
	Chunk int64 // slot size in bytes (default 512 KiB)
	Proto Proto
}

// NewConn builds a directed connection. The staging buffer lives on the
// destination rank, as in NCCL.
func NewConn(m *machine.Machine, src, dst int, cfg Config) *Conn {
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 512 << 10
	}
	c := &Conn{
		m: m, src: src, dst: dst, proto: cfg.Proto,
		slots: cfg.Slots, chunk: cfg.Chunk,
		stage:     m.Alloc(dst, fmt.Sprintf("stage/%d->%d", src, dst), cfg.Chunk*int64(cfg.Slots)),
		dataReady: sim.NewSemaphore(m.Engine, fmt.Sprintf("ts.data/%d->%d", src, dst)),
		spaceFree: sim.NewSemaphore(m.Engine, fmt.Sprintf("ts.space/%d->%d", src, dst)),
	}
	c.spaceFree.Add(uint64(cfg.Slots))
	return c
}

// Chunk returns the slot size.
func (c *Conn) Chunk() int64 { return c.chunk }

// Src returns the sending rank.
func (c *Conn) Src() int { return c.src }

// Dst returns the receiving rank.
func (c *Conn) Dst() int { return c.dst }

// Send transfers n bytes (n <= Chunk) from src[off:] into the next staging
// slot. Synchronous: under ProtoSimple the call blocks on slot rendezvous
// before writing, so the source buffer is reusable on return.
func (c *Conn) Send(k *machine.Kernel, src *mem.Buffer, off, n int64) {
	if n > c.chunk {
		panic(fmt.Sprintf("twosided: send %d exceeds chunk %d", n, c.chunk))
	}
	if k.GPU.Rank != c.src {
		panic(fmt.Sprintf("twosided: send on conn %d->%d from rank %d", c.src, c.dst, k.GPU.Rank))
	}
	model := k.Model()
	c.sendSeq++
	if c.proto == ProtoSimple {
		// Rendezvous: block until the receiver freed the slot.
		c.spaceFree.WaitGE(k.P, c.sendSeq)
		k.Elapse(model.BaselineProtoOverhead)
	}
	slot := int64((c.sendSeq - 1) % uint64(c.slots))
	wire := n
	if c.proto == ProtoLL {
		wire = 2 * n
	}
	var complete sim.Time
	if c.m.Fabric.SameNode(c.src, c.dst) {
		complete = c.m.Fabric.P2P(k.Now(), c.src, c.dst, wire, model.StagingCopyBWPerTB)
	} else {
		// Inter-node: staged through the NIC proxy path.
		k.Elapse(model.FifoPushCost + model.ProxyPollInterval/2)
		complete = c.m.Fabric.RDMA(k.Now(), c.src, c.dst, wire)
	}
	if complete < c.lastVisible {
		complete = c.lastVisible
	}
	c.lastVisible = complete
	stage, seq := c.stage, c.sendSeq
	e := c.m.Engine
	srcBuf, srcOff, nn, slotOff := src, off, n, slot*c.chunk
	e.At(complete, func() {
		srcBuf.CopyTo(stage, slotOff, srcOff, nn)
		_ = seq
		c.dataReady.Add(1)
	})
	if c.m.Fabric.SameNode(c.src, c.dst) {
		// Thread-copy occupies the sending SMs until the stores are issued.
		k.P.SleepUntil(complete - c.m.Env.IntraLat)
	}
}

// RecvCopy drains the next staging slot into dst[off:].
func (c *Conn) RecvCopy(k *machine.Kernel, dst *mem.Buffer, off, n int64) {
	c.recvEpilogue(k, n, func(slotOff int64) {
		c.stage.CopyTo(dst, off, slotOff, n)
	})
}

// RecvReduce drains the next staging slot, accumulating into dst[off:].
func (c *Conn) RecvReduce(k *machine.Kernel, dst *mem.Buffer, off, n int64) {
	c.recvEpilogue(k, n, func(slotOff int64) {
		dst.AccumulateFrom(c.stage, off, slotOff, n)
	})
}

func (c *Conn) recvEpilogue(k *machine.Kernel, n int64, apply func(slotOff int64)) {
	if k.GPU.Rank != c.dst {
		panic(fmt.Sprintf("twosided: recv on conn %d->%d from rank %d", c.src, c.dst, k.GPU.Rank))
	}
	model := k.Model()
	c.recvSeq++
	c.dataReady.WaitGE(k.P, c.recvSeq)
	k.Elapse(model.SemWaitWake)
	// Receiver-side copy out of the FIFO: the baseline's extra memory pass.
	k.Elapse(timing.XferTime(n, model.StagingCopyBWPerTB) + model.BaselineProtoOverhead/2)
	slot := int64((c.recvSeq - 1) % uint64(c.slots))
	apply(slot * c.chunk)
	// Release the slot; the flag travels back to the sender.
	lat := c.m.Fabric.SignalLatency(c.dst, c.src)
	free := c.spaceFree
	c.m.Engine.At(k.Now()+lat, func() { free.Add(1) })
}

// SendBuffer streams a whole region chunk by chunk (helper for slice-sized
// steps).
func (c *Conn) SendBuffer(k *machine.Kernel, src *mem.Buffer, off, n int64) {
	for sent := int64(0); sent < n; sent += c.chunk {
		cn := n - sent
		if cn > c.chunk {
			cn = c.chunk
		}
		c.Send(k, src, off+sent, cn)
	}
}

// RecvCopyBuffer drains a whole region chunk by chunk.
func (c *Conn) RecvCopyBuffer(k *machine.Kernel, dst *mem.Buffer, off, n int64) {
	for got := int64(0); got < n; got += c.chunk {
		cn := n - got
		if cn > c.chunk {
			cn = c.chunk
		}
		c.RecvCopy(k, dst, off+got, cn)
	}
}

// RecvReduceBuffer drains and accumulates a whole region chunk by chunk.
func (c *Conn) RecvReduceBuffer(k *machine.Kernel, dst *mem.Buffer, off, n int64) {
	for got := int64(0); got < n; got += c.chunk {
		cn := n - got
		if cn > c.chunk {
			cn = c.chunk
		}
		c.RecvReduce(k, dst, off+got, cn)
	}
}
