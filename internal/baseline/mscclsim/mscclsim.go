// Package mscclsim is the MSCCL baseline library (paper Section 2.2):
// custom, topology-tuned communication algorithms — all-pairs and
// hierarchical patterns authored in the MSCCLang DSL — executed over NCCL's
// two-sided synchronous send/recv substrate. It captures the paper's gain
// breakdown: MSCCL beats NCCL through better algorithms, and MSCCL++ beats
// MSCCL through one-sided, zero-copy, asynchronous primitives.
package mscclsim

import (
	"fmt"

	"mscclpp/internal/baseline/twosided"
	"mscclpp/internal/collective"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
)

// Library is one MSCCL-like communicator.
type Library struct {
	C *collective.Comm
	// Channels bounds thread-block parallelism for bulk algorithms.
	Channels int
}

// New returns a library over c.
func New(c *collective.Comm, channels int) *Library {
	if channels <= 0 {
		channels = 12
	}
	return &Library{C: c, Channels: channels}
}

// pairConns builds directed conns among every ordered pair in ranks.
func (l *Library) pairConns(ranks []int, cfg twosided.Config) map[int]map[int]*twosided.Conn {
	conns := make(map[int]map[int]*twosided.Conn)
	for _, a := range ranks {
		conns[a] = make(map[int]*twosided.Conn)
	}
	for _, a := range ranks {
		for _, b := range ranks {
			if a != b {
				conns[a][b] = twosided.NewConn(l.C.M, a, b, cfg)
			}
		}
	}
	return conns
}

func peersOf(ranks []int, r int) []int {
	idx := -1
	for i, x := range ranks {
		if x == r {
			idx = i
		}
	}
	out := make([]int, 0, len(ranks)-1)
	for s := 1; s < len(ranks); s++ {
		out = append(out, ranks[(idx+s)%len(ranks)])
	}
	return out
}

func allRanks(n int) []int {
	rs := make([]int, n)
	for i := range rs {
		rs[i] = i
	}
	return rs
}

// shardTB splits size into nTB 4-byte-aligned shards for per-thread-block
// parallel transfers (MSCCL channels).
func shardTB(size int64, tb, nTB int) (off, ln int64) {
	if nTB <= 1 {
		return 0, size
	}
	el := size / 4
	base := el / int64(nTB)
	rem := el % int64(nTB)
	start := base*int64(tb) + minI64(int64(tb), rem)
	cnt := base
	if int64(tb) < rem {
		cnt++
	}
	off = start * 4
	ln = cnt * 4
	if tb == nTB-1 {
		ln += size % 4
	}
	return
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// tbCount picks the per-collective thread-block (channel) parallelism.
func (l *Library) tbCount(bytesPerLeg int64) int {
	n := int(bytesPerLeg / (256 << 10))
	if n < 1 {
		n = 1
	}
	if n > l.Channels {
		n = l.Channels
	}
	if n > 8 {
		n = 8
	}
	return n
}

// xferSpec describes one leg of a chunk-interleaved all-pairs exchange.
type xferSpec struct {
	conn   *twosided.Conn
	buf    *mem.Buffer
	off    int64
	reduce bool // receive legs: reduce instead of copy
}

// runExchange interleaves sends and receives chunk by chunk so that slot
// backpressure never deadlocks (MSCCL executes send and recv legs on
// separate thread blocks; interleaving models the same progress guarantee).
// All legs cover `length` bytes.
func runExchange(k *machine.Kernel, length, chunk int64, sends, recvs []xferSpec) {
	for wo := int64(0); wo < length; wo += chunk {
		wn := length - wo
		if wn > chunk {
			wn = chunk
		}
		for _, s := range sends {
			s.conn.Send(k, s.buf, s.off+wo, wn)
		}
		for _, r := range recvs {
			if r.reduce {
				r.conn.RecvReduce(k, r.buf, r.off+wo, wn)
			} else {
				r.conn.RecvCopy(k, r.buf, r.off+wo, wn)
			}
		}
	}
}

// PrepareAllReduceAllPairs1P is MSCCL's one-phase all-pairs AllReduce for
// small messages: every rank LL-sends its whole input to every peer, which
// reduces all arrivals — the same algorithm as MSCCL++'s 1PA but over
// two-sided primitives with staging copies.
func (l *Library) PrepareAllReduceAllPairs1P(in, out []*mem.Buffer) (*collective.Exec, error) {
	c := l.C
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("msccl 1P: single-node only")
	}
	n := c.Ranks()
	size := in[0].Size()
	ranks := allRanks(n)
	conns := l.pairConns(ranks, twosided.Config{Proto: twosided.ProtoLL, Chunk: 64 << 10, Slots: 16})
	name := "msccl-AllPairs1P-LL"
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(name, 1, func(k *machine.Kernel) {
				k.LocalCopy(size, 1)
				in[r].CopyTo(out[r], 0, 0, size)
				var sends, recvs []xferSpec
				for _, p := range peersOf(ranks, r) {
					sends = append(sends, xferSpec{conns[r][p], in[r], 0, false})
					recvs = append(recvs, xferSpec{conns[p][r], out[r], 0, true})
				}
				runExchange(k, size, conns[r][peersOf(ranks, r)[0]].Chunk(), sends, recvs)
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

// PrepareAllReduceAllPairs2P is MSCCL's two-phase all-pairs AllReduce
// (ReduceScatter + AllGather) for medium messages.
func (l *Library) PrepareAllReduceAllPairs2P(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	c := l.C
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("msccl 2P: single-node only")
	}
	n := c.Ranks()
	size := in[0].Size()
	slice := size / int64(n)
	ranks := allRanks(n)
	chunk := int64(128 << 10)
	if proto == twosided.ProtoLL {
		chunk = 32 << 10
	}
	nTB := l.tbCount(slice)
	connsRS := make([]map[int]map[int]*twosided.Conn, nTB)
	connsAG := make([]map[int]map[int]*twosided.Conn, nTB)
	for b := 0; b < nTB; b++ {
		connsRS[b] = l.pairConns(ranks, twosided.Config{Proto: proto, Chunk: chunk, Slots: 16})
		connsAG[b] = l.pairConns(ranks, twosided.Config{Proto: proto, Chunk: chunk, Slots: 16})
	}
	name := "msccl-AllPairs2P-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(name, nTB, func(k *machine.Kernel) {
				b := k.Block
				off, ln := shardTB(slice, b, k.NumBlocks)
				if ln == 0 {
					return
				}
				mySlice := int64(r)*slice + off
				k.LocalCopy(ln, 1)
				in[r].CopyTo(out[r], mySlice, mySlice, ln)
				// Phase 1: scatter slices; reduce arrivals into my slice.
				var sends, recvs []xferSpec
				for _, p := range peersOf(ranks, r) {
					sends = append(sends, xferSpec{connsRS[b][r][p], in[r], int64(p)*slice + off, false})
					recvs = append(recvs, xferSpec{connsRS[b][p][r], out[r], mySlice, true})
				}
				runExchange(k, ln, chunk, sends, recvs)
				// Phase 2: broadcast my reduced slice; copy arrivals.
				sends, recvs = nil, nil
				for _, p := range peersOf(ranks, r) {
					sends = append(sends, xferSpec{connsAG[b][r][p], out[r], mySlice, false})
					recvs = append(recvs, xferSpec{connsAG[b][p][r], out[r], int64(p)*slice + off, false})
				}
				runExchange(k, ln, chunk, sends, recvs)
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

// PrepareAllReduceHier is MSCCL's hierarchical (2PH-style) AllReduce for
// multi-node messages: intra-node all-pairs ReduceScatter, cross-node
// all-pairs exchange among same-local ranks, intra-node AllGather.
func (l *Library) PrepareAllReduceHier(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	c := l.C
	env := c.M.Env
	if env.Nodes < 2 {
		return nil, fmt.Errorf("msccl hier: multi-node only")
	}
	g, nodes := env.GPUsPerNode, env.Nodes
	n := c.Ranks()
	size := in[0].Size()
	sg := size / int64(g)
	sgm := sg / int64(nodes)
	if sgm == 0 || sgm%4 != 0 {
		return nil, fmt.Errorf("msccl hier: size %d too small", size)
	}
	chunk := int64(128 << 10)
	if proto == twosided.ProtoLL {
		chunk = 32 << 10
	}
	cfg := twosided.Config{Proto: proto, Chunk: chunk, Slots: 16}
	nTB := l.tbCount(sg)
	intra := make([][]map[int]map[int]*twosided.Conn, nTB)
	intraAG := make([][]map[int]map[int]*twosided.Conn, nTB)
	colRS := make([][]map[int]map[int]*twosided.Conn, nTB)
	colAG := make([][]map[int]map[int]*twosided.Conn, nTB)
	for b := 0; b < nTB; b++ {
		intra[b] = make([]map[int]map[int]*twosided.Conn, nodes)
		intraAG[b] = make([]map[int]map[int]*twosided.Conn, nodes)
		for node := 0; node < nodes; node++ {
			rs := nodeRanks(node, g)
			intra[b][node] = l.pairConns(rs, cfg)
			intraAG[b][node] = l.pairConns(rs, cfg)
		}
		colRS[b] = make([]map[int]map[int]*twosided.Conn, g)
		colAG[b] = make([]map[int]map[int]*twosided.Conn, g)
		for lidx := 0; lidx < g; lidx++ {
			rs := colRanks(lidx, g, nodes)
			colRS[b][lidx] = l.pairConns(rs, cfg)
			colAG[b][lidx] = l.pairConns(rs, cfg)
		}
	}
	name := "msccl-Hier-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for r := 0; r < n; r++ {
			r := r
			node, lidx := r/g, r%g
			handles[r] = c.M.GPUs[r].Launch(name, nTB, func(k *machine.Kernel) {
				b := k.Block
				sOff, sLen := shardTB(sg, b, k.NumBlocks)
				if sLen == 0 {
					return
				}
				// Per-TB sub-slice shards (aligned so cross-node sub-slice
				// shards stay within the TB's region).
				mOff, mLen := shardTB(sgm, b, k.NumBlocks)
				sliceOff := int64(lidx)*sg + sOff
				localPeers := peersOf(nodeRanks(node, g), r)
				crossPeers := peersOf(colRanks(lidx, g, nodes), r)
				k.LocalCopy(sLen, 1)
				in[r].CopyTo(out[r], sliceOff, sliceOff, sLen)
				// Intra-node ReduceScatter of slice lidx.
				var sends, recvs []xferSpec
				for _, p := range localPeers {
					sends = append(sends, xferSpec{intra[b][node][r][p], in[r], int64(p%g)*sg + sOff, false})
					recvs = append(recvs, xferSpec{intra[b][node][p][r], out[r], sliceOff, true})
				}
				runExchange(k, sLen, chunk, sends, recvs)
				// TB shards of the slice and of the sub-slice differ, so
				// phases must synchronize across thread blocks.
				k.GridBarrier()
				// Cross-node exchange of sub-slices, all-pairs.
				myOff := int64(lidx)*sg + int64(node)*sgm + mOff
				sends, recvs = nil, nil
				for _, p := range crossPeers {
					sends = append(sends, xferSpec{colRS[b][lidx][r][p], out[r],
						int64(lidx)*sg + int64(p/g)*sgm + mOff, false})
					recvs = append(recvs, xferSpec{colRS[b][lidx][p][r], out[r], myOff, true})
				}
				runExchange(k, mLen, chunk, sends, recvs)
				k.GridBarrier()
				// Cross-node AllGather of finished sub-slices.
				sends, recvs = nil, nil
				for _, p := range crossPeers {
					sends = append(sends, xferSpec{colAG[b][lidx][r][p], out[r], myOff, false})
					recvs = append(recvs, xferSpec{colAG[b][lidx][p][r], out[r],
						int64(lidx)*sg + int64(p/g)*sgm + mOff, false})
				}
				runExchange(k, mLen, chunk, sends, recvs)
				k.GridBarrier()
				// Intra-node AllGather of slice lidx.
				sends, recvs = nil, nil
				for _, p := range localPeers {
					sends = append(sends, xferSpec{intraAG[b][node][r][p], out[r], sliceOff, false})
					recvs = append(recvs, xferSpec{intraAG[b][node][p][r], out[r], int64(p%g)*sg + sOff, false})
				}
				runExchange(k, sLen, chunk, sends, recvs)
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

// PrepareAllGatherAllPairs is MSCCL's all-pairs AllGather.
func (l *Library) PrepareAllGatherAllPairs(in, out []*mem.Buffer, proto twosided.Proto) (*collective.Exec, error) {
	c := l.C
	if c.M.Env.Nodes != 1 {
		return nil, fmt.Errorf("msccl AG: single-node only")
	}
	n := c.Ranks()
	shard := in[0].Size()
	ranks := allRanks(n)
	chunk := int64(128 << 10)
	if proto == twosided.ProtoLL {
		chunk = 32 << 10
	}
	conns := l.pairConns(ranks, twosided.Config{Proto: proto, Chunk: chunk, Slots: 16})
	name := "msccl-AG-AllPairs-" + proto.String()
	launch := func() []*machine.KernelHandle {
		handles := make([]*machine.KernelHandle, n)
		for _, r := range ranks {
			r := r
			handles[r] = c.M.GPUs[r].Launch(name, 1, func(k *machine.Kernel) {
				k.LocalCopy(shard, 1)
				in[r].CopyTo(out[r], int64(r)*shard, 0, shard)
				var sends, recvs []xferSpec
				for _, p := range peersOf(ranks, r) {
					sends = append(sends, xferSpec{conns[r][p], in[r], 0, false})
					recvs = append(recvs, xferSpec{conns[p][r], out[r], int64(p) * shard, false})
				}
				runExchange(k, shard, chunk, sends, recvs)
			})
		}
		return handles
	}
	return collective.NewExec(name, launch), nil
}

func nodeRanks(node, g int) []int {
	rs := make([]int, g)
	for i := range rs {
		rs[i] = node*g + i
	}
	return rs
}

func colRanks(l, g, nodes int) []int {
	rs := make([]int, nodes)
	for n := range rs {
		rs[n] = n*g + l
	}
	return rs
}
