// Package mscclpp is the public API of the MSCCL++ reproduction: a
// simulation-backed implementation of the paper's three-layer GPU
// communication stack (Primitive API, DSL, Collective API) together with
// the NCCL/MSCCL baseline libraries, LLM-inference workload models and the
// benchmark harness that regenerates the paper's tables and figures.
//
// The layers map to the paper as follows:
//
//   - Primitive API (paper §4): Communicator, MemoryChannel, PortChannel,
//     SwitchChannel — one-sided, zero-copy, asynchronous channel primitives
//     over simulated NVLink/xGMI/InfiniBand hardware.
//   - DSL (paper §5): NewProgram and the Program builder — a global-view
//     language for custom collective algorithms, lowered (with dependence
//     analysis and operation fusion) to execution plans interpreted by the
//     Executor.
//   - Collective API (paper §6): NewComm's AllReduce / AllGather /
//     ReduceScatter with the tuned algorithm library (1PA, 2PA, 2PR, 2PH).
//
// Quick start:
//
//	cluster := mscclpp.NewCluster(mscclpp.A100x40G(1))
//	comm := mscclpp.NewComm(cluster)
//	in, out := ... // per-rank buffers via cluster.Alloc
//	elapsed, err := comm.AllReduce(in, out)
//
// All results are measured in deterministic *virtual* time: a simulation
// always replays identically, so reported latencies and bandwidths are
// properties of the modeled hardware, independent of the host machine. The
// execution substrate (internal/sim) is tuned for simulator *wall-clock*
// throughput — an allocation-free event engine with same-instant and
// inline clock-advance fast paths (microbenchmarks: go test ./internal/sim
// -bench=BenchmarkEngine -benchmem; history in BENCH_sim.json) — and the
// benchmark harness runs independent simulations in parallel across cores
// without perturbing any virtual-time result.
package mscclpp

import (
	"mscclpp/internal/collective"
	"mscclpp/internal/core"
	"mscclpp/internal/dsl"
	"mscclpp/internal/executor"
	"mscclpp/internal/machine"
	"mscclpp/internal/mem"
	"mscclpp/internal/plan"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// Core simulated-cluster types.
type (
	// Env describes a cluster environment (paper Table 2).
	Env = topology.Env
	// Cluster is a simulated multi-GPU machine.
	Cluster = machine.Machine
	// Kernel is the execution context of a simulated thread block; Primitive
	// API calls are made from kernels.
	Kernel = machine.Kernel
	// Buffer is simulated GPU memory registered for communication.
	Buffer = mem.Buffer
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
)

// Primitive API (paper §4).
type (
	// Communicator performs bootstrap: connection setup between GPUs.
	Communicator = core.Communicator
	// MemoryChannel is memory-mapped I/O (peer-to-peer thread copy; LL and
	// HB protocols).
	MemoryChannel = core.MemoryChannel
	// PortChannel is port-mapped I/O (DMA/RDMA via a CPU proxy FIFO).
	PortChannel = core.PortChannel
	// SwitchChannel is switch-mapped I/O (in-network reduce/multicast).
	SwitchChannel = core.SwitchChannel
	// Channel is the transport-generic synchronization interface.
	Channel = core.Channel
)

// Collective API (paper §6).
type (
	// Comm is the NCCL-style collective communicator.
	Comm = collective.Comm
	// Exec is a prepared (channels set up) collective invocation.
	Exec = collective.Exec
	// Algorithm is one collective algorithm implementation.
	Algorithm = collective.Algorithm
)

// DSL and Executor (paper §5).
type (
	// Program is a DSL program under construction.
	Program = dsl.Program
	// DSLBuffer is a buffer in the DSL's global view.
	DSLBuffer = dsl.Buffer
	// DSLChunk is a byte range of a DSL buffer.
	DSLChunk = dsl.Chunk
	// DSLMemChannel is a directional memory channel in the DSL.
	DSLMemChannel = dsl.MemChannel
	// DSLPortChannel is a directional port channel in the DSL.
	DSLPortChannel = dsl.PortChannel
	// TBGroup is a thread-block group cooperating on one DSL operation.
	TBGroup = dsl.TBGroup
	// Plan is a lowered, JSON-serializable execution plan.
	Plan = plan.Plan
	// ExecutorInstance interprets a plan over concrete buffers.
	ExecutorInstance = executor.Instance
)

// Environments (paper Table 2).
var (
	// A100x40G builds the A100-40G environment with the given node count.
	A100x40G = topology.A100_40G
	// A100x80G builds the A100-80G environment.
	A100x80G = topology.A100_80G
	// H100 builds the H100 environment (NVLink 4.0 + NVSwitch SHARP).
	H100 = topology.H100
	// MI300x builds the AMD MI300x environment (xGMI mesh).
	MI300x = topology.MI300x
)

// NewCluster builds a simulated cluster for env.
func NewCluster(env *Env) *Cluster { return machine.New(env) }

// NewComm returns a Collective-API communicator over all ranks of c.
func NewComm(c *Cluster) *Comm { return collective.New(c) }

// NewCommunicator returns a Primitive-API bootstrap communicator.
func NewCommunicator(c *Cluster) *Communicator { return core.NewCommunicator(c) }

// NewProgram starts a DSL program (see package documentation and paper §5).
func NewProgram(name, collectiveName string, ranks, numTB int, inSize, outSize int64) *Program {
	return dsl.NewProgram(name, collectiveName, ranks, numTB, inSize, outSize)
}

// NewExecutor binds a lowered plan to buffers, building all channels.
func NewExecutor(c *Communicator, p *Plan, in, out []*Buffer) (*ExecutorInstance, error) {
	return executor.New(c, p, in, out)
}

// AllReduce algorithms (paper §6), exposed for explicit selection and for
// the ablation benchmarks.
type (
	// AllReduce1PA is one-phase all-pairs with the LL protocol.
	AllReduce1PA = collective.AllReduce1PA
	// AllReduce2PALL is two-phase all-pairs, LL protocol.
	AllReduce2PALL = collective.AllReduce2PALL
	// AllReduce2PAHB is two-phase all-pairs, HB protocol.
	AllReduce2PAHB = collective.AllReduce2PAHB
	// AllReduce2PASwitch is the NVSwitch-SHARP (multimem) variant.
	AllReduce2PASwitch = collective.AllReduce2PASwitch
	// AllReduce2PR is the two-phase ring with DMA/reduction overlap.
	AllReduce2PR = collective.AllReduce2PR
	// AllReduce2PHLL is hierarchical multi-node, LL protocol.
	AllReduce2PHLL = collective.AllReduce2PHLL
	// AllReduce2PHHB is hierarchical multi-node, HB protocol.
	AllReduce2PHHB = collective.AllReduce2PHHB
)

// Test/bench data helpers.
var (
	// FillInputs fills per-rank buffers with a deterministic pattern.
	FillInputs = collective.FillInputs
	// CheckAllReduce verifies an AllReduce result.
	CheckAllReduce = collective.CheckAllReduce
	// CheckAllGather verifies an AllGather result.
	CheckAllGather = collective.CheckAllGather
	// CheckReduceScatter verifies a ReduceScatter result.
	CheckReduceScatter = collective.CheckReduceScatter
)

// DSL program library (paper §6: collectives authored in the DSL).
var (
	// BuildAllReduce1PA authors the 1PA algorithm in the DSL.
	BuildAllReduce1PA = dsl.BuildAllReduce1PA
	// BuildAllReduce2PAHB authors the 2PA-HB algorithm in the DSL.
	BuildAllReduce2PAHB = dsl.BuildAllReduce2PAHB
	// BuildRingReduceScatter authors paper Figure 6's overlapped ring
	// ReduceScatter in the DSL.
	BuildRingReduceScatter = dsl.BuildRingReduceScatter
)
