package mscclpp

import "testing"

// TestPublicAPIEndToEnd exercises the facade: cluster construction, the
// one-call Collective API with verification, and DSL authoring -> lowering
// -> execution, all through exported identifiers only.
func TestPublicAPIEndToEnd(t *testing.T) {
	cluster := NewCluster(A100x40G(1))
	cluster.MaterializeLimit = 1 << 40
	comm := NewComm(cluster)
	const size = int64(8 << 10)
	n := comm.Ranks()
	in := make([]*Buffer, n)
	out := make([]*Buffer, n)
	for r := 0; r < n; r++ {
		in[r] = cluster.Alloc(r, "in", size)
		out[r] = cluster.Alloc(r, "out", size)
	}
	pattern := func(r int, i int64) float32 { return float32(r+1) + float32(i%4) }
	FillInputs(in, pattern)
	elapsed, err := comm.AllReduce(in, out)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed %d", elapsed)
	}
	if err := CheckAllReduce(out, pattern, 1e-4); err != nil {
		t.Fatal(err)
	}

	// DSL path through the facade.
	prog, err := BuildAllReduce1PA(8, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := prog.Lower()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCluster(A100x40G(1))
	c2.MaterializeLimit = 1 << 40
	in2 := make([]*Buffer, 8)
	out2 := make([]*Buffer, 8)
	for r := 0; r < 8; r++ {
		in2[r] = c2.Alloc(r, "in", size)
		out2[r] = c2.Alloc(r, "out", size)
	}
	FillInputs(in2, pattern)
	inst, err := NewExecutor(NewCommunicator(c2), pl, in2, out2)
	if err != nil {
		t.Fatal(err)
	}
	inst.Launch()
	if err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := CheckAllReduce(out2, pattern, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestEnvironmentsValid(t *testing.T) {
	for _, env := range []*Env{A100x40G(1), A100x80G(2), H100(4), MI300x(1)} {
		if err := env.Validate(); err != nil {
			t.Fatal(err)
		}
		if env.TotalGPUs()%8 != 0 {
			t.Fatalf("%s: %d GPUs", env.Name, env.TotalGPUs())
		}
	}
}
