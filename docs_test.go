package mscclpp

// Repository-wide documentation gates: every Markdown file's relative
// links must resolve against the tree. This is the `go test` face of the
// CI docs job, so a renamed file or package whose README still points at
// the old path fails locally before it fails in CI.

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"mscclpp/internal/doccheck"
)

// TestReadmeLinksResolve walks every committed Markdown file and fails on
// any relative link whose target does not exist.
func TestReadmeLinksResolve(t *testing.T) {
	var checked int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Goldens and fuzz corpora contain no docs; .git is not ours.
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		switch d.Name() {
		case "SNIPPETS.md", "PAPERS.md", "PAPER.md":
			// Retrieval-provided reference material quoted verbatim from
			// other repositories; its links point into those trees, not
			// ours, and are not part of this repo's documentation.
			return nil
		}
		checked++
		broken, err := doccheck.BrokenLinks(path)
		if err != nil {
			return err
		}
		for _, b := range broken {
			t.Errorf("%s: broken relative link %s", path, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 5 {
		t.Fatalf("walked only %d Markdown files — the link gate is not seeing the tree", checked)
	}
}
