// Command collbench regenerates the paper's collective-communication
// results: Table 1 (peer-to-peer primitives) and Figures 7-10 (AllReduce /
// AllGather across A100-40G, H100 and MI300x), plus the DSL-vs-Primitive
// comparison (§7.1) and the gain-breakdown ablations.
//
// It is a thin wrapper over the internal/scenario registry; use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Usage:
//
//	collbench -experiment all|table1|fig7|fig8|fig9|fig10|dslvsprim|ablation
package main

import (
	"flag"
	"log"
	"os"

	"mscclpp/internal/scenario"
)

// experiments are the collective scenarios in this command's traditional
// output order; "all" runs every one of them.
var experiments = []string{"table1", "fig7", "fig8", "fig9", "fig10", "dslvsprim", "ablation"}

func main() {
	exp := flag.String("experiment", "all", "table1|fig7|fig8|fig9|fig10|dslvsprim|ablation|all")
	flag.Parse()
	matched := false
	for _, name := range experiments {
		if *exp != "all" && *exp != name {
			continue
		}
		matched = true
		s, ok := scenario.Get(name)
		if !ok {
			log.Fatalf("%s: not registered", name)
		}
		if _, err := s.Exec(os.Stdout); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
