// Command inferbench regenerates the paper's LLM-inference results:
// Figure 11 (Llama3-70B decode speedup with vLLM, TP=8 on A100-80G),
// Figure 12 (DeepSeek-V3 decode throughput with SGLang, TP=16 on two H100
// nodes), and the §7.3 vLLM custom-AllReduce-kernel comparison.
//
// It is a thin wrapper over the internal/scenario registry; use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Usage:
//
//	inferbench -experiment all|fig11|fig12|customar
package main

import (
	"flag"
	"log"
	"os"

	"mscclpp/internal/scenario"
)

// experiments are the inference scenarios in this command's traditional
// output order; "customar" is the registry name of the §7.3 comparison.
var experiments = []string{"fig11", "fig12", "customar"}

func main() {
	exp := flag.String("experiment", "all", "fig11|fig12|customar|all")
	flag.Parse()
	matched := false
	for _, name := range experiments {
		if *exp != "all" && *exp != name {
			continue
		}
		matched = true
		s, ok := scenario.Get(name)
		if !ok {
			log.Fatalf("%s: not registered", name)
		}
		if _, err := s.Exec(os.Stdout); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
