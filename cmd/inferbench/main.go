// Command inferbench regenerates the paper's LLM-inference results:
// Figure 11 (Llama3-70B decode speedup with vLLM, TP=8 on A100-80G),
// Figure 12 (DeepSeek-V3 decode throughput with SGLang, TP=16 on two H100
// nodes), and the §7.3 vLLM custom-AllReduce-kernel comparison.
//
// Usage:
//
//	inferbench -experiment all|fig11|fig12|customar
package main

import (
	"flag"
	"fmt"
	"log"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

func main() {
	exp := flag.String("experiment", "all", "fig11|fig12|customar|all")
	flag.Parse()
	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
		}
	}
	run("fig11", fig11)
	run("fig12", fig12)
	run("customar", customAR)
	_ = log.Flags()
}

func fig11() {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	env := envFn()
	model := inference.Llama3x70B(8)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	fmt.Println("\nFigure 11: Llama3-70b decode speedup, MSCCL++ over NCCL (vLLM, TP=8, A100-80G)")
	fmt.Printf("  %-18s %12s %12s %9s\n", "bsz x seqlen", "NCCL (ms)", "MSCCL++ (ms)", "speedup")
	// The (bsz, seqlen) grid points are independent simulations: fan them
	// out and print from index-stable slots so output order is unchanged.
	type combo struct{ bsz, seqlen int }
	var combos []combo
	for _, bsz := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, seqlen := range []int{128, 512, 2048} {
			combos = append(combos, combo{bsz, seqlen})
		}
	}
	times := make([][2]sim.Duration, len(combos))
	benchkit.Parallel(len(combos), func(i int) {
		c := combos[i]
		times[i][0] = inference.DecodeStep(env, model, c.bsz, c.seqlen, nccl.Time)
		times[i][1] = inference.DecodeStep(env, model, c.bsz, c.seqlen, mpp.Time)
	})
	var speedups []float64
	for i, c := range combos {
		tN, tM := times[i][0], times[i][1]
		sp := inference.Speedup(tN, tM)
		speedups = append(speedups, sp)
		fmt.Printf("  bsz=%-4d seq=%-6d %12.2f %12.2f %8.2fx\n",
			c.bsz, c.seqlen, float64(tN)/1e6, float64(tM)/1e6, sp)
	}
	fmt.Printf("  average decode speedup: %.2fx (paper: 1.11x)\n", benchkit.Geomean(speedups))
	// Prefill comparison (paper: similar or up to 1.06x).
	tN := inference.PrefillStep(env, model, 8, 1024, nccl.Time)
	tM := inference.PrefillStep(env, model, 8, 1024, mpp.Time)
	fmt.Printf("  prefill (bsz=8, seq=1024) speedup: %.2fx (paper: up to 1.06x)\n",
		inference.Speedup(tN, tM))
}

func fig12() {
	envFn := func() *topology.Env { return topology.H100(2) }
	env := envFn()
	model := inference.DeepSeekV3(16)
	nccl := inference.NewARTimer(envFn, inference.LibNCCL)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	fmt.Println("\nFigure 12: DeepSeek-V3 decode throughput (SGLang, TP=16, 2x H100 nodes, 1024 in / 1024 out)")
	fmt.Printf("  %-6s %16s %16s %9s\n", "bsz", "baseline tok/s", "MSCCL++ tok/s", "speedup")
	bszs := []int{1, 2, 4, 8, 16, 32, 64}
	times := make([][2]sim.Duration, len(bszs))
	benchkit.Parallel(len(bszs), func(i int) {
		times[i][0] = inference.DecodeStep(env, model, bszs[i], 1024, nccl.Time)
		times[i][1] = inference.DecodeStep(env, model, bszs[i], 1024, mpp.Time)
	})
	var speedups []float64
	for i, bsz := range bszs {
		tN, tM := times[i][0], times[i][1]
		sp := inference.Speedup(tN, tM)
		speedups = append(speedups, sp)
		fmt.Printf("  %-6d %16.0f %16.0f %8.2fx\n", bsz,
			inference.DecodeThroughput(bsz, tN), inference.DecodeThroughput(bsz, tM), sp)
	}
	fmt.Printf("  average decode speedup: %.2fx (paper: 1.31x)\n", benchkit.Geomean(speedups))
}

func customAR() {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	custom := inference.NewARTimer(envFn, inference.LibVLLMCustom)
	mpp := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	fmt.Println("\nvLLM custom AllReduce kernel vs MSCCL++ (A100-80G, TP=8)")
	msgs := []int64{2 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} // vLLM uses its custom kernel only for small inputs
	times := make([][2]sim.Duration, len(msgs))
	benchkit.Parallel(len(msgs), func(i int) {
		times[i][0], times[i][1] = custom.Time(msgs[i]), mpp.Time(msgs[i])
	})
	var ratios []float64
	for i, msg := range msgs {
		tc, tm := times[i][0], times[i][1]
		r := inference.Speedup(tc, tm)
		ratios = append(ratios, r)
		fmt.Printf("  msg %-6s custom %8.2fus  MSCCL++ %8.2fus  ratio %.2fx\n",
			benchkit.HumanSize(msg), float64(tc)/1000, float64(tm)/1000, r)
	}
	fmt.Printf("  geomean MSCCL++ advantage: %.2fx (paper: 1.4x geomean, up to 3x)\n",
		benchkit.Geomean(ratios))
	// End-to-end decode with the custom kernel vs MSCCL++.
	env := envFn()
	model := inference.Llama3x70B(8)
	var sps []float64
	for _, bsz := range []int{1, 8, 32} {
		tC := inference.DecodeStep(env, model, bsz, 512, custom.Time)
		tM := inference.DecodeStep(env, model, bsz, 512, mpp.Time)
		sps = append(sps, inference.Speedup(tC, tM))
	}
	fmt.Printf("  end-to-end decode speedup vs custom kernel: %.2fx geomean (paper: 1.04x avg, up to 1.11x)\n",
		benchkit.Geomean(sps))
}
