// Command deepepbench regenerates paper Figure 13: DeepEP expert-parallel
// dispatch (FP8) and combine (BF16) bandwidth on two H100 nodes (16 GPUs,
// DeepSeek-V3 settings), comparing the NVSHMEM-IBGDA stack with MSCCL++
// PortChannels.
//
// It is a thin wrapper over the internal/scenario registry ("fig13"); use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Setting any of -tokens/-transport/-imbalance/-placement instead runs one
// ad-hoc dispatch+combine pair at that batch with the chosen hot-expert
// skew and expert placement, reporting per-phase bandwidth, the routing's
// load factor and the cross-GPU byte volume:
//
//	deepepbench -tokens 4100 -transport nvshmem-ibgda -imbalance 0.5 -placement rebalance
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mscclpp/internal/moe"
	"mscclpp/internal/scenario"
)

func main() {
	tokens := flag.Int("tokens", 4096, "ad-hoc mode: batch tokens per all-to-all (any count; non-divisible remainders spread over the first ranks)")
	transport := flag.String("transport", string(moe.TransportIBGDA), "ad-hoc mode: all-to-all stack (mscclpp|nvshmem-ibgda)")
	imbalance := flag.Float64("imbalance", 0, "ad-hoc mode: hot-expert skew fraction in [0, 1] (0 = balanced Figure 13 routing)")
	placement := flag.String("placement", "uniform", "ad-hoc mode: expert-to-GPU map (uniform|rebalance)")
	flag.Parse()

	adhoc := false
	flag.Visit(func(*flag.Flag) { adhoc = true })
	if adhoc {
		if err := runAdhoc(*tokens, moe.Transport(*transport), *imbalance, *placement); err != nil {
			log.Fatal(err)
		}
		return
	}

	s, ok := scenario.Get("fig13")
	if !ok {
		log.Fatal("fig13: not registered")
	}
	if _, err := s.Exec(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runAdhoc prices one dispatch+combine pair on the Figure 13 environment
// (two H100 nodes, 16 GPUs) under the chosen routing skew and placement.
func runAdhoc(tokens int, tr moe.Transport, imbalance float64, placement string) error {
	if tokens < 1 {
		return fmt.Errorf("-tokens must be positive (got %d)", tokens)
	}
	cfg := moe.DefaultConfig()
	cfg.Skew = imbalance
	switch placement {
	case "uniform":
		cfg.Placement = moe.PlaceUniform
	case "rebalance":
		cfg.Placement = moe.PlaceRebalance
	default:
		return fmt.Errorf("-placement must be uniform or rebalance (got %q)", placement)
	}
	env := moe.Paper13Env()
	e, err := moe.New(env, cfg, tr)
	if err != nil {
		return err
	}
	d, err := e.Dispatch(tokens)
	if err != nil {
		return err
	}
	c, err := e.Combine(tokens)
	if err != nil {
		return err
	}
	n := env.TotalGPUs()
	fmt.Printf("DeepEP ad-hoc all-to-all: %d tokens over %d GPUs (2x H100), %s, %d experts top-%d, skew %.2f, placement %s\n",
		tokens, n, tr, cfg.Experts, cfg.TopK, imbalance, placement)
	fmt.Printf("  dispatch (FP8):  %8.2f us, %7.1f GB/s, max per-GPU %s\n",
		float64(d.Elapsed)/1e3, d.AlgoBWGBs, humanBytes(d.BytesMax))
	fmt.Printf("  combine  (BF16): %8.2f us, %7.1f GB/s, max per-GPU %s\n",
		float64(c.Elapsed)/1e3, c.AlgoBWGBs, humanBytes(c.BytesMax))
	fmt.Printf("  load factor %.2fx (hottest GPU's received activations over the per-GPU mean)\n",
		cfg.LoadFactor(n, tokens))
	return nil
}

// humanBytes renders a byte count with a binary-ish decimal unit.
func humanBytes(b int64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f KB", float64(b)/1e3)
	}
	return fmt.Sprintf("%d B", b)
}
