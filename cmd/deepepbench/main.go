// Command deepepbench regenerates paper Figure 13: DeepEP expert-parallel
// dispatch (FP8) and combine (BF16) bandwidth on two H100 nodes (16 GPUs,
// DeepSeek-V3 settings), comparing the NVSHMEM-IBGDA stack with MSCCL++
// PortChannels.
package main

import (
	"fmt"
	"log"

	"mscclpp/internal/moe"
)

func main() {
	cfg := moe.DefaultConfig()
	fmt.Println("Figure 13: DeepEP on two H100 nodes (16 GPUs, hidden 7168, top-k 8, 256 experts)")
	fmt.Printf("%-8s | %12s %12s | %12s %12s\n", "tokens",
		"disp NVSHMEM", "disp MSCCL++", "comb NVSHMEM", "comb MSCCL++")
	for tokens := 128; tokens <= 65536; tokens *= 2 {
		row := []float64{}
		for _, phase := range []string{"dispatch", "combine"} {
			for _, tr := range []moe.Transport{moe.TransportIBGDA, moe.TransportMSCCLPP} {
				e, err := moe.New(moe.Paper13Env(), cfg, tr)
				if err != nil {
					log.Fatal(err)
				}
				var res moe.Result
				if phase == "dispatch" {
					res, err = e.Dispatch(tokens)
				} else {
					res, err = e.Combine(tokens)
				}
				if err != nil {
					log.Fatal(err)
				}
				row = append(row, res.AlgoBWGBs)
			}
		}
		fmt.Printf("%-8d | %9.1f GB/s %9.1f GB/s | %9.1f GB/s %9.1f GB/s\n",
			tokens, row[0], row[1], row[2], row[3])
	}
	fmt.Println("(expected: curves rise and saturate near the 48.94 GB/s NIC rate;")
	fmt.Println(" MSCCL++ CPU-proxy RDMA shows no noticeable difference vs IBGDA)")
}
