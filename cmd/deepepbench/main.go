// Command deepepbench regenerates paper Figure 13: DeepEP expert-parallel
// dispatch (FP8) and combine (BF16) bandwidth on two H100 nodes (16 GPUs,
// DeepSeek-V3 settings), comparing the NVSHMEM-IBGDA stack with MSCCL++
// PortChannels.
//
// It is a thin wrapper over the internal/scenario registry ("fig13"); use
// cmd/paperbench for listing, JSON records and golden-output checks.
package main

import (
	"log"
	"os"

	"mscclpp/internal/scenario"
)

func main() {
	s, ok := scenario.Get("fig13")
	if !ok {
		log.Fatal("fig13: not registered")
	}
	if _, err := s.Exec(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
