package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: mscclpp/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineEventThroughput-8   	13478241	        95.1 ns/op	       1 B/op	       0 allocs/op
BenchmarkEngineEventThroughput-8   	13101120	        91.3 ns/op	       1 B/op	       0 allocs/op
BenchmarkServeCallbackStream 	     100	  10432890 ns/op	    191702 req/s	  993977 B/op	    6390 allocs/op
BenchmarkNoUnit 	 1000	 12 somethingelse/op
PASS
ok  	mscclpp/internal/sim	4.5s
`

func TestParseBench(t *testing.T) {
	mins, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := mins["EngineEventThroughput"]; got != 91.3 {
		t.Errorf("EngineEventThroughput min = %v, want 91.3 (min of repeated counts)", got)
	}
	if got := mins["ServeCallbackStream"]; got != 10432890 {
		t.Errorf("ServeCallbackStream = %v, want 10432890", got)
	}
	if _, ok := mins["NoUnit"]; ok {
		t.Error("line without ns/op unit should be ignored")
	}
	if len(mins) != 2 {
		t.Errorf("parsed %d benchmarks, want 2: %v", len(mins), mins)
	}
}

func TestParseBenchSuffixStripping(t *testing.T) {
	// A trailing -N is only a GOMAXPROCS suffix when numeric; a name that
	// itself ends in a non-numeric dash segment must survive intact.
	mins, err := parseBench(strings.NewReader(
		"BenchmarkFoo-bar 	 10	 5.0 ns/op\nBenchmarkBaz-16 	 10	 7.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mins["Foo-bar"]; !ok {
		t.Errorf("non-numeric suffix stripped: %v", mins)
	}
	if _, ok := mins["Baz"]; !ok {
		t.Errorf("numeric GOMAXPROCS suffix kept: %v", mins)
	}
}

func TestGate(t *testing.T) {
	baselines := map[string]float64{"A": 100, "B": 100, "C": 100}
	measured := map[string]float64{"A": 110, "B": 130}

	var out strings.Builder
	regressed, missing := gate(&out, baselines, measured, 1.25, false)
	if len(regressed) != 1 || regressed[0] != "B" {
		t.Errorf("regressed = %v, want [B]", regressed)
	}
	if len(missing) != 0 {
		t.Errorf("missing = %v without -require-all, want none", missing)
	}
	if !strings.Contains(out.String(), "REGRESSED B") && !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("verdict table lacks REGRESSED line:\n%s", out.String())
	}

	out.Reset()
	_, missing = gate(&out, baselines, measured, 1.25, true)
	if len(missing) != 1 || missing[0] != "C" {
		t.Errorf("missing = %v with -require-all, want [C]", missing)
	}
}

func TestBaselineNs(t *testing.T) {
	if got := (entry{NsOp: 5}).baselineNs(); got != 5 {
		t.Errorf("inline ns_op = %v, want 5", got)
	}
	if got := (entry{NsOp: 5, After: &metric{NsOp: 3}}).baselineNs(); got != 3 {
		t.Errorf("after.ns_op should win: got %v, want 3", got)
	}
	if got := (entry{}).baselineNs(); got != 0 {
		t.Errorf("empty entry = %v, want 0 (ungated)", got)
	}
	if got := (entry{NsOp: 5, GateNs: 7, After: &metric{NsOp: 3}}).baselineNs(); got != 7 {
		t.Errorf("gate_ns_op should override everything: got %v, want 7", got)
	}
}
