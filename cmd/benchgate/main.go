// Command benchgate compares `go test -bench` output against committed
// BENCH_*.json baselines and fails on wall-clock regressions.
//
// Usage:
//
//	go test ./internal/sim -bench BenchmarkEngine -count 3 | \
//	    go run ./cmd/benchgate -baseline BENCH_sim.json
//
// Each baseline file is a BENCH_*.json record (see BENCH_sim.json /
// BENCH_serve.json): a "benchmarks" map whose entries carry an ns_op
// number, either at the top level or under "after" (the post-optimization
// measurement of a before/after pair). A benchmark line regresses when
// its ns/op exceeds baseline * tolerance; the default tolerance is 1.25
// (25%), chosen to sit above the run-to-run noise of shared CI runners
// while still catching the step-function slowdowns that matter —
// accidental O(n^2), a lost fast path, an allocation on a hot loop.
//
// Noise handling: run the benchmarks with -count N and benchgate gates on
// the *minimum* ns/op per benchmark — the minimum is the least noisy
// estimator of the true cost on a time-shared machine. Baselines are
// per-runner-class numbers: refresh them (editing the JSON deliberately,
// like any golden) when the CI hardware or the benchmark itself changes.
//
// With -require-all, every baselined benchmark must appear in the input;
// this catches a gated benchmark being renamed or dropped, which would
// otherwise silently un-gate it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metric is one measurement in a baseline entry.
type metric struct {
	NsOp float64 `json:"ns_op"`
}

// entry is one baseline benchmark record: ns_op either inline or under
// "after" (before/after pairs gate on the "after" number). gate_ns_op,
// when present, overrides both — it refreshes the gate threshold on a
// noisy benchmark without rewriting the historical before/after record.
type entry struct {
	NsOp   float64 `json:"ns_op"`
	GateNs float64 `json:"gate_ns_op"`
	After  *metric `json:"after"`
}

// baselineNs returns the entry's gate value, or 0 when the entry carries
// no ns_op (descriptive-only records are not gated).
func (e entry) baselineNs() float64 {
	if e.GateNs > 0 {
		return e.GateNs
	}
	if e.After != nil && e.After.NsOp > 0 {
		return e.After.NsOp
	}
	return e.NsOp
}

// benchFile is the subset of a BENCH_*.json record benchgate reads.
type benchFile struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

// stringList collects a repeatable -baseline flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

// Set appends one flag occurrence.
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// parseBench extracts min-ns/op per benchmark from `go test -bench`
// output. Benchmark names are normalized: the "Benchmark" prefix and the
// -GOMAXPROCS suffix are stripped, so lines match baseline keys like
// "EngineEventThroughput".
func parseBench(r io.Reader) (map[string]float64, error) {
	mins := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// The ns/op value is the number preceding the "ns/op" unit token.
		for i := 2; i < len(fields); i++ {
			if fields[i] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad ns/op on line %q: %v", sc.Text(), err)
			}
			if cur, ok := mins[name]; !ok || ns < cur {
				mins[name] = ns
			}
			break
		}
	}
	return mins, sc.Err()
}

// gate compares measured minima against baselines and writes a verdict
// table. It returns the regressed and (under requireAll) missing names.
func gate(w io.Writer, baselines map[string]float64, measured map[string]float64, tolerance float64, requireAll bool) (regressed, missing []string) {
	names := make([]string, 0, len(baselines))
	for name := range baselines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baselines[name]
		got, ok := measured[name]
		if !ok {
			if requireAll {
				missing = append(missing, name)
				fmt.Fprintf(w, "MISSING %-28s baseline %12.1f ns/op — not in bench output\n", name, base)
			}
			continue
		}
		limit := base * tolerance
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Fprintf(w, "%-9s %-28s %12.1f ns/op (baseline %12.1f, limit %12.1f, %+6.1f%%)\n",
			verdict, name, got, base, limit, 100*(got/base-1))
	}
	return regressed, missing
}

func main() {
	var files stringList
	flag.Var(&files, "baseline", "BENCH_*.json baseline file (repeatable)")
	tolerance := flag.Float64("tolerance", 1.25, "fail when ns/op exceeds baseline * tolerance")
	requireAll := flag.Bool("require-all", false, "fail if any baselined benchmark is absent from the input")
	flag.Parse()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: at least one -baseline file is required")
		os.Exit(2)
	}

	baselines := map[string]float64{}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		var bf benchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", f, err)
			os.Exit(2)
		}
		for name, e := range bf.Benchmarks {
			if ns := e.baselineNs(); ns > 0 {
				baselines[name] = ns
			}
		}
	}

	in := io.Reader(os.Stdin)
	if args := flag.Args(); len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	regressed, missing := gate(os.Stdout, baselines, measured, *tolerance, *requireAll)
	if len(regressed) > 0 || len(missing) > 0 {
		fmt.Printf("benchgate: %d regressed, %d missing (tolerance %.0f%%)\n",
			len(regressed), len(missing), 100*(*tolerance-1))
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within %.0f%% of baseline\n", len(measured), 100*(*tolerance-1))
}
