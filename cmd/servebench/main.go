// Command servebench runs the traffic-driven serving artifacts: continuous
// batching over the simulated cluster model under Poisson and bursty load,
// reporting TTFT/TPOT tails and goodput under SLOs per communication
// backend (internal/serve layered on internal/inference + the simulated
// collectives), plus the multi-replica routing artifacts (round-robin vs
// JSQ vs prefix-affinity arrival splitting).
//
// It is a thin wrapper over the internal/scenario registry; use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Usage:
//
//	servebench -experiment all|llama70b|deepseek|ratesweep|routing|affinity
//
// Setting any of -replicas/-policy/-requests/-rate/-seed instead runs an
// ad-hoc routed simulation (Llama3-70B TP=8 per replica, A100-80G,
// MSCCL++) with the chosen replica count and routing policy:
//
//	servebench -replicas 4 -policy jsq -requests 400 -rate 30
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mscclpp/internal/inference"
	"mscclpp/internal/scenario"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// experiments maps this command's traditional short names to registry
// scenario names, in output order.
var experiments = []struct{ short, name string }{
	{"llama70b", "serve-llama70b"},
	{"deepseek", "serve-deepseek"},
	{"ratesweep", "serve-ratesweep"},
	{"routing", "serve-routing"},
	{"affinity", "serve-affinity"},
}

func main() {
	exp := flag.String("experiment", "all", "llama70b|deepseek|ratesweep|routing|affinity|all")
	replicas := flag.Int("replicas", 3, "ad-hoc mode: number of replica engines (enables ad-hoc routed run)")
	policy := flag.String("policy", "jsq", "ad-hoc mode: routing policy ("+strings.Join(serve.PolicyNames(), "|")+")")
	requests := flag.Int("requests", 300, "ad-hoc mode: number of requests")
	rate := flag.Float64("rate", 24, "ad-hoc mode: Poisson arrival rate, requests/second (aggregate)")
	seed := flag.Uint64("seed", 1, "ad-hoc mode: workload seed")
	flag.Parse()

	adhocFlagsSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replicas", "policy", "requests", "rate", "seed":
			adhocFlagsSet = true
		}
	})
	if adhocFlagsSet {
		// Ad-hoc mode and registry mode are mutually exclusive: refuse the
		// ambiguous combination instead of silently ignoring flags (registry
		// artifacts have fixed workloads; the ad-hoc flags cannot apply).
		if *exp != "all" {
			log.Fatalf("ad-hoc flags (-replicas/-policy/-requests/-rate/-seed) cannot be combined with -experiment %s", *exp)
		}
		if *requests < 1 || *rate <= 0 || *replicas < 1 {
			log.Fatalf("ad-hoc mode needs -requests >= 1, -rate > 0 and -replicas >= 1 (got %d, %g, %d)", *requests, *rate, *replicas)
		}
		if err := runAdhoc(*replicas, *policy, *requests, *rate, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.short {
			continue
		}
		matched = true
		s, ok := scenario.Get(e.name)
		if !ok {
			log.Fatalf("%s: not registered", e.name)
		}
		if _, err := s.Exec(os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// runAdhoc replays one seeded Poisson workload through a routed
// multi-replica cluster and prints the merged and per-replica summaries.
func runAdhoc(replicas int, policy string, requests int, rate float64, seed uint64) error {
	pol, err := serve.PolicyByName(policy)
	if err != nil {
		return err
	}
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	timer := inference.NewARTimer(envFn, inference.LibMSCCLPP)
	wl := serve.Poisson(seed, requests, rate,
		serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
	res, err := serve.RunRouted(serve.RouterConfig{
		Replicas: replicas,
		Policy:   pol,
		Replica: serve.Config{
			Env:             envFn(),
			Model:           inference.Llama3x70B(8),
			AR:              timer.Time,
			MaxBatch:        24,
			KVCapacityBytes: 4 << 30,
			ChunkTokens:     512,
		},
	}, wl)
	if err != nil {
		return err
	}
	slo := serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}
	s := res.Summarize(slo)
	fmt.Printf("Routed serving: %d requests at %.3g req/s over %d replicas, policy %s (Llama3-70b TP=8, A100-80G, MSCCL++)\n",
		requests, rate, replicas, res.Policy)
	fmt.Printf("  merged: ttft p50 %.1f ms p99 %.1f ms | tpot p99 %.1f ms | goodput %.0f tok/s | SLO %.1f%%\n",
		s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment)
	for i, pr := range res.PerReplica {
		ps := pr.Summarize(slo)
		fmt.Printf("  replica %d: %4d requests, ttft p99 %8.1f ms, %d iterations\n",
			i, ps.Requests, ps.TTFTp99ms, ps.Iterations)
	}
	return nil
}
