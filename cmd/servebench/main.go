// Command servebench runs the traffic-driven serving artifacts: continuous
// batching over the simulated cluster model under Poisson and bursty load,
// reporting TTFT/TPOT tails and goodput under SLOs per communication
// backend (internal/serve layered on internal/inference + the simulated
// collectives).
//
// It is a thin wrapper over the internal/scenario registry; use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Usage:
//
//	servebench -experiment all|llama70b|deepseek|ratesweep
package main

import (
	"flag"
	"log"
	"os"

	"mscclpp/internal/scenario"
)

// experiments maps this command's traditional short names to registry
// scenario names, in output order.
var experiments = []struct{ short, name string }{
	{"llama70b", "serve-llama70b"},
	{"deepseek", "serve-deepseek"},
	{"ratesweep", "serve-ratesweep"},
}

func main() {
	exp := flag.String("experiment", "all", "llama70b|deepseek|ratesweep|all")
	flag.Parse()
	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.short {
			continue
		}
		matched = true
		s, ok := scenario.Get(e.name)
		if !ok {
			log.Fatalf("%s: not registered", e.name)
		}
		if _, err := s.Exec(os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}
