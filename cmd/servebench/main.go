// Command servebench runs the traffic-driven serving artifacts: continuous
// batching over the simulated cluster model under Poisson and bursty load,
// reporting TTFT/TPOT tails and goodput under SLOs per communication
// backend (internal/serve layered on internal/inference + the simulated
// collectives), plus the multi-replica routing artifacts (round-robin vs
// JSQ vs prefix-affinity arrival splitting) and the disaggregated
// prefill/decode artifact (pool splits with fabric-priced KV handoff).
//
// It is a thin wrapper over the internal/scenario registry; use
// cmd/paperbench for listing, JSON records and golden-output checks.
//
// Usage:
//
//	servebench -experiment all|llama70b|deepseek|ratesweep|routing|affinity|disagg|moe
//
// Setting any of -replicas/-policy/-requests/-rate/-seed/-disagg/
// -prefill-replicas instead runs an ad-hoc simulation (Llama3-70B TP=8
// per replica, A100-80G, MSCCL++) with the chosen replica count and
// routing policy:
//
//	servebench -replicas 4 -policy jsq -requests 400 -rate 30
//
// With -disagg the same replica slots are split into a disaggregated
// prefill/decode deployment: -prefill-replicas of the -replicas total run
// prompt processing only, the rest decode only, and every finished prefill
// hands its KV cache to a decode replica over the simulated fabric:
//
//	servebench -disagg -replicas 4 -prefill-replicas 2 -requests 400 -rate 20
//
// Overload robustness knobs (also ad-hoc mode): -kv-bytes shrinks the
// per-replica KV capacity, -preempt recompute|swap|auto switches the
// replicas to block-granular paged KV with the chosen eviction policy,
// and -priority-split 0.3 marks 30% of requests interactive (priority 0)
// with the rest batch. Runs that preempt, swap or reject print those
// counters after the merged summary:
//
//	servebench -replicas 2 -requests 400 -rate 40 -kv-bytes 1073741824 -preempt auto -priority-split 0.3
//
// -counters (also ad-hoc mode) appends one "where did the time go"
// resource-counter report per replica after the summaries: gpu occupancy
// (reservations = priced iterations, busy = compute+comm, idle = stall and
// park time) and, when paged preemption swapped, the per-GPU kv-swap lane
// counters:
//
//	servebench -replicas 2 -requests 400 -rate 40 -counters
//
// -moe (also ad-hoc mode) switches the replicas to the expert-parallel
// DeepSeek-V3 deployment (EP=16 over two H100 nodes, 256 experts top-8,
// IBGDA all-to-all priced per iteration); -experts overrides the expert
// count, -imbalance sets the hot-expert skew fraction and -placement
// uniform|rebalance picks the expert-to-GPU map:
//
//	servebench -moe -replicas 1 -requests 200 -rate 3 -imbalance 0.5 -placement rebalance -counters
//
// -autoscale (also ad-hoc mode) runs an elastically scaled routed fleet
// instead of a fixed one: -replicas becomes the fleet maximum, -policy
// selects the scale policy (static|target-util|slo-pid), -tenants merges
// that many independently seeded diurnal tenants (tenant 0 interactive,
// the rest batch tier), and -provision-delay sets the boot time in
// seconds before a scaled-up replica admits. The run prints the
// fleet-size timeline, the scale-down drain audit and the economics
// report (GPU-hours, cost per million SLO-compliant tokens):
//
//	servebench -autoscale -replicas 4 -policy slo-pid -tenants 2 -requests 400 -rate 10 -provision-delay 45
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/inference"
	"mscclpp/internal/moe"
	"mscclpp/internal/scenario"
	"mscclpp/internal/serve"
	"mscclpp/internal/sim"
	"mscclpp/internal/topology"
)

// experiments maps this command's traditional short names to registry
// scenario names, in output order.
var experiments = []struct{ short, name string }{
	{"llama70b", "serve-llama70b"},
	{"deepseek", "serve-deepseek"},
	{"ratesweep", "serve-ratesweep"},
	{"routing", "serve-routing"},
	{"affinity", "serve-affinity"},
	{"disagg", "serve-disagg"},
	{"moe", "serve-moe"},
}

func main() {
	exp := flag.String("experiment", "all", "llama70b|deepseek|ratesweep|routing|affinity|disagg|moe|all")
	replicas := flag.Int("replicas", 3, "ad-hoc mode: number of replica engines (enables ad-hoc routed run)")
	policy := flag.String("policy", "jsq", "ad-hoc mode: routing policy, or pool policy with -disagg ("+strings.Join(serve.PolicyNames(), "|")+")")
	requests := flag.Int("requests", 300, "ad-hoc mode: number of requests")
	rate := flag.Float64("rate", 24, "ad-hoc mode: Poisson arrival rate, requests/second (aggregate)")
	seed := flag.Uint64("seed", 1, "ad-hoc mode: workload seed")
	disagg := flag.Bool("disagg", false, "ad-hoc mode: run a disaggregated prefill/decode deployment instead of a routed one")
	prefillReplicas := flag.Int("prefill-replicas", 1, "ad-hoc -disagg mode: how many of -replicas run prefill (the rest decode)")
	kvBytes := flag.Int64("kv-bytes", 0, "ad-hoc mode: per-replica KV capacity in bytes (0 = the 4 GiB default); shrink it to provoke queueing and preemption")
	prioritySplit := flag.Float64("priority-split", -1, "ad-hoc mode: fraction of requests in the interactive tier (priority 0), the rest batch (priority 1); negative = single tier")
	preempt := flag.String("preempt", "", "ad-hoc mode: run block-granular paged KV with this preemption policy (recompute|swap|auto); empty = whole-footprint reservation")
	counters := flag.Bool("counters", false, "ad-hoc mode: print each replica's resource-counter report (gpu occupancy, kv-swap lanes) after the summaries")
	moeRun := flag.Bool("moe", false, "ad-hoc mode: serve the expert-parallel DeepSeek-V3 deployment (EP=16, 2x H100, IBGDA all-to-all) instead of dense Llama3-70B")
	autoscale := flag.Bool("autoscale", false, "ad-hoc mode: run an elastically scaled routed fleet (-replicas is the fleet maximum; -policy selects the scale policy: "+strings.Join(serve.ScalePolicyNames(), "|")+")")
	tenants := flag.Int("tenants", 2, "ad-hoc -autoscale mode: number of merged independently seeded diurnal tenants (tenant 0 interactive, the rest batch tier)")
	provisionDelay := flag.Float64("provision-delay", 30, "ad-hoc -autoscale mode: boot delay in seconds before a scaled-up replica admits")
	experts := flag.Int("experts", 256, "ad-hoc -moe mode: total routed experts (must be divisible by the 16 expert-parallel GPUs)")
	imbalance := flag.Float64("imbalance", 0, "ad-hoc -moe mode: hot-expert skew fraction in [0, 1] (0 = balanced routing)")
	placement := flag.String("placement", "uniform", "ad-hoc -moe mode: expert-to-GPU map (uniform|rebalance)")
	flag.Parse()

	adhocFlagsSet, prefillSet, moeSubflagSet := false, false, false
	policySet, prioritySet, autoscaleSubflagSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "prefill-replicas":
			prefillSet = true
			adhocFlagsSet = true
		case "experts", "imbalance", "placement":
			moeSubflagSet = true
			adhocFlagsSet = true
		case "tenants", "provision-delay":
			autoscaleSubflagSet = true
			adhocFlagsSet = true
		case "policy":
			policySet = true
			adhocFlagsSet = true
		case "priority-split":
			prioritySet = true
			adhocFlagsSet = true
		case "replicas", "requests", "rate", "seed", "disagg",
			"kv-bytes", "preempt", "counters", "moe", "autoscale":
			adhocFlagsSet = true
		}
	})
	if adhocFlagsSet {
		// Ad-hoc mode and registry mode are mutually exclusive: refuse the
		// ambiguous combination instead of silently ignoring flags (registry
		// artifacts have fixed workloads; the ad-hoc flags cannot apply).
		if *exp != "all" {
			log.Fatalf("ad-hoc flags (-replicas/-policy/-requests/-rate/-seed/-disagg/-prefill-replicas) cannot be combined with -experiment %s", *exp)
		}
		if *requests < 1 || *rate <= 0 || *replicas < 1 {
			log.Fatalf("ad-hoc mode needs -requests >= 1, -rate > 0 and -replicas >= 1 (got %d, %g, %d)", *requests, *rate, *replicas)
		}
		cfg := adhocReplica()
		if *moeRun {
			var err error
			if cfg, err = adhocMoEReplica(*experts, *imbalance, *placement); err != nil {
				log.Fatal(err)
			}
		} else if moeSubflagSet {
			// Same fail-fast rule as -prefill-replicas: refuse the flag
			// rather than silently ignoring it.
			log.Fatal("-experts/-imbalance/-placement only apply with -moe")
		}
		if *kvBytes != 0 {
			if *kvBytes < 0 {
				log.Fatalf("-kv-bytes must be positive (got %d)", *kvBytes)
			}
			cfg.KVCapacityBytes = *kvBytes
		}
		if *preempt != "" {
			cfg.KVPolicy = serve.KVPaged
			switch *preempt {
			case "recompute":
				cfg.Preempt = serve.PreemptRecompute
			case "swap":
				cfg.Preempt = serve.PreemptSwap
			case "auto":
				cfg.Preempt = serve.PreemptAuto
			default:
				log.Fatalf("-preempt must be recompute, swap or auto (got %q)", *preempt)
			}
		}
		if *autoscale {
			// The autoscale mode owns its workload shape (per-tenant diurnal
			// envelopes with built-in tiers) and fleet geometry; refuse the
			// flags it would otherwise silently ignore.
			if *disagg || *moeRun || prefillSet || prioritySet {
				log.Fatal("-autoscale cannot be combined with -disagg, -moe, -prefill-replicas or -priority-split")
			}
			if *tenants < 1 {
				log.Fatalf("-tenants must be >= 1 (got %d)", *tenants)
			}
			if *provisionDelay < 0 {
				log.Fatalf("-provision-delay must be >= 0 seconds (got %g)", *provisionDelay)
			}
			scalePol := "slo-pid"
			if policySet {
				scalePol = *policy
			}
			if err := runAdhocAutoscale(cfg, *replicas, scalePol, *tenants, *requests, *rate, *seed,
				*provisionDelay, *counters); err != nil {
				log.Fatal(err)
			}
			return
		}
		if autoscaleSubflagSet {
			// Same fail-fast rule as the other mode sub-flags.
			log.Fatal("-tenants/-provision-delay only apply with -autoscale")
		}
		wl := adhocWorkload(*requests, *rate, *seed)
		tiered := *prioritySplit >= 0
		if tiered {
			if *prioritySplit > 1 {
				log.Fatalf("-priority-split must be in [0, 1] (got %g)", *prioritySplit)
			}
			wl = serve.WithPriorities(wl, *seed, *prioritySplit)
		}
		var err error
		if *disagg {
			if *prefillReplicas < 1 || *prefillReplicas >= *replicas {
				log.Fatalf("-disagg needs 1 <= -prefill-replicas < -replicas (got %d of %d)", *prefillReplicas, *replicas)
			}
			err = runAdhocDisagg(cfg, *prefillReplicas, *replicas-*prefillReplicas, *policy, wl, *rate, tiered, *counters)
		} else {
			if prefillSet {
				// Same fail-fast rule as the registry/ad-hoc split: refuse
				// the flag rather than silently ignoring it.
				log.Fatal("-prefill-replicas only applies with -disagg")
			}
			err = runAdhoc(cfg, *replicas, *policy, wl, *rate, tiered, *counters)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.short {
			continue
		}
		matched = true
		s, ok := scenario.Get(e.name)
		if !ok {
			log.Fatalf("%s: not registered", e.name)
		}
		if _, err := s.Exec(os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
	}
	if !matched {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// adhocSLO is the latency objective of both ad-hoc modes.
var adhocSLO = serve.SLO{MaxTTFT: 2 * sim.Second, MaxTPOT: 100 * sim.Millisecond}

// adhocReplica is the shared per-replica engine configuration of both
// ad-hoc modes (routed and disaggregated): Llama3-70B TP=8 on one
// A100-80G node with MSCCL++ collectives. Keeping it in one place keeps
// the routed-vs-disagg ad-hoc comparison honest.
func adhocReplica() serve.Config {
	envFn := func() *topology.Env { return topology.A100_80G(1) }
	return serve.Config{
		Env:             envFn(),
		Model:           inference.Llama3x70B(8),
		AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
		MaxBatch:        24,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}
}

// adhocMoEReplica is the -moe ad-hoc replica: the expert-parallel
// DeepSeek-V3 deployment (EP=16 over two H100 nodes) with the expert
// count, hot-expert skew and placement taken from the flags. Iterations
// pay the per-MoE-layer dispatch/combine all-to-all through an EPTimer on
// the same environment.
func adhocMoEReplica(experts int, imbalance float64, placement string) (serve.Config, error) {
	envFn := func() *topology.Env { return topology.H100(2) }
	model := inference.DeepSeekV3MoE(16)
	if experts < 1 || experts%envFn().TotalGPUs() != 0 {
		return serve.Config{}, fmt.Errorf("-experts must be a positive multiple of %d (got %d)", envFn().TotalGPUs(), experts)
	}
	if imbalance < 0 || imbalance > 1 {
		return serve.Config{}, fmt.Errorf("-imbalance must be in [0, 1] (got %g)", imbalance)
	}
	model.MoE.Config.Experts = experts
	model.MoE.Config.Skew = imbalance
	switch placement {
	case "uniform":
		model.MoE.Config.Placement = moe.PlaceUniform
	case "rebalance":
		model.MoE.Config.Placement = moe.PlaceRebalance
	default:
		return serve.Config{}, fmt.Errorf("-placement must be uniform or rebalance (got %q)", placement)
	}
	return serve.Config{
		Env:             envFn(),
		Model:           model,
		AR:              inference.NewARTimer(envFn, inference.LibMSCCLPP).Time,
		A2A:             inference.NewEPTimer(envFn, model.MoE.Config, model.MoE.Transport).Layer,
		MaxBatch:        24,
		KVCapacityBytes: 4 << 30,
		ChunkTokens:     512,
		Metrics:         serve.MetricsExact,
	}, nil
}

// adhocWorkload is the seeded Poisson request stream of both ad-hoc modes.
func adhocWorkload(requests int, rate float64, seed uint64) serve.Workload {
	return serve.Poisson(seed, requests, rate,
		serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
}

// printOverload reports the robustness counters of a merged result —
// preemptions split by mechanism, bytes swapped, structured rejections —
// whenever the run exercised any of them, and the per-tier breakdown when
// the workload carries priority classes.
func printOverload(res *serve.Result, tiered bool) {
	if res.Preemptions > 0 || res.Rejected > 0 {
		fmt.Printf("  overload: %d preemptions (%d recompute / %d swap, %.2f GB swapped), %d rejected\n",
			res.Preemptions, res.Recomputes, res.Swaps, float64(res.SwapBytes)/1e9, res.Rejected)
	}
	if !tiered {
		return
	}
	s := res.SummarizeTiered(adhocSLO, nil)
	for _, ts := range s.ByTier {
		name := "batch"
		if ts.Priority == 0 {
			name = "interactive"
		}
		fmt.Printf("  tier %d (%s): %4d requests, %d rejected, ttft p99 %8.1f ms, goodput %6.0f tok/s, SLO %.1f%%\n",
			ts.Priority, name, ts.Requests, ts.Rejected, ts.TTFTp99ms, ts.GoodputTokS, 100*ts.SLOAttainment)
	}
}

// printCounters renders one replica's resource-counter report over its
// makespan (the span Summarize also rates goodput against).
func printCounters(title string, res *serve.Result) {
	benchkit.PrintCounterReport(os.Stdout, title, res.Makespan, res.Counters)
}

// runAdhoc replays one seeded Poisson workload through a routed
// multi-replica cluster and prints the merged and per-replica summaries.
func runAdhoc(cfg serve.Config, replicas int, policy string, wl serve.Workload, rate float64, tiered, counters bool) error {
	pol, err := serve.PolicyByName(policy)
	if err != nil {
		return err
	}
	res, err := serve.RunRouted(serve.RouterConfig{
		Replicas: replicas,
		Policy:   pol,
		Replica:  cfg,
	}, wl)
	if err != nil {
		return err
	}
	slo := adhocSLO
	s := res.Summarize(slo)
	fmt.Printf("Routed serving: %d requests at %.3g req/s over %d replicas, policy %s (%s, MSCCL++)\n",
		len(wl.Requests), rate, replicas, res.Policy, cfg.Model.Name)
	fmt.Printf("  merged: ttft p50 %.1f ms p99 %.1f ms | tpot p99 %.1f ms | goodput %.0f tok/s | SLO %.1f%%\n",
		s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment)
	printOverload(res.Merged, tiered)
	for i, pr := range res.PerReplica {
		ps := pr.Summarize(slo)
		fmt.Printf("  replica %d: %4d requests, ttft p99 %8.1f ms, %d iterations\n",
			i, ps.Requests, ps.TTFTp99ms, ps.Iterations)
	}
	if counters {
		for i, pr := range res.PerReplica {
			printCounters(fmt.Sprintf("replica %d", i), pr)
		}
	}
	return nil
}

// adhocBatchSLO is the relaxed objective of the autoscale mode's batch
// tenants (priority 1).
var adhocBatchSLO = serve.SLO{MaxTTFT: 20 * sim.Second, MaxTPOT: 400 * sim.Millisecond}

// runAdhocAutoscale replays a merged multi-tenant diurnal workload
// through an elastically scaled routed fleet and prints the merged
// summary, the fleet-size timeline, the drain audit and the EconReport.
func runAdhocAutoscale(cfg serve.Config, maxReplicas int, policy string, tenants, requests int, rate float64, seed uint64, delaySec float64, counters bool) error {
	pol, err := serve.ScalePolicyByName(policy)
	if err != nil {
		return err
	}
	// The control loop reads SLO attainment, so the objectives are replica
	// configuration here (tenant 0 interactive, the rest batch tier).
	cfg.SLO = adhocSLO
	cfg.TierSLOs = map[int]serve.SLO{1: adhocBatchSLO}
	parts := make([]serve.Workload, tenants)
	for i := range parts {
		t := serve.Diurnal(seed+uint64(i), requests, rate, 0.25, 600*sim.Second,
			serve.LogNormalLen(512, 0.6, 2048), serve.LogNormalLen(64, 0.5, 192))
		if i > 0 {
			for j := range t.Requests {
				t.Requests[j].Priority = 1
			}
		}
		parts[i] = t
	}
	wl := serve.MergeWorkloads(fmt.Sprintf("%d-tenant-diurnal", tenants), parts...)
	res, err := serve.RunAutoscaled(serve.AutoscaleConfig{
		Replica:        cfg,
		Policy:         pol,
		Router:         serve.NewJSQ(),
		MinReplicas:    1,
		MaxReplicas:    maxReplicas,
		ProvisionDelay: sim.Duration(delaySec * float64(sim.Second)),
	}, wl)
	if err != nil {
		return err
	}
	s := res.Merged.SummarizeTiered(adhocSLO, cfg.TierSLOs)
	fmt.Printf("Autoscaled serving: %d requests (%d diurnal tenants at peak %.3g req/s each), scale policy %s, fleet 1..%d (%s, MSCCL++)\n",
		len(wl.Requests), tenants, rate, res.Policy, maxReplicas, cfg.Model.Name)
	fmt.Printf("  merged: ttft p50 %.1f ms p99 %.1f ms | tpot p99 %.1f ms | goodput %.0f tok/s | SLO %.1f%%\n",
		s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment)
	for _, ts := range s.ByTier {
		name := "batch"
		if ts.Priority == 0 {
			name = "interactive"
		}
		fmt.Printf("  tier %d (%s): %4d requests, ttft p99 %8.1f ms, SLO %.1f%%\n",
			ts.Priority, name, ts.Requests, ts.TTFTp99ms, 100*ts.SLOAttainment)
	}
	fmt.Printf("  fleet timeline (%d scale-ups, %d scale-downs):\n", res.ScaleUps, res.ScaleDowns)
	for _, ev := range res.Fleet {
		fmt.Printf("    t=%8.1fs %-9s replica %2d -> %d active / %d provisioning / %d draining\n",
			float64(ev.TimeNs)/1e9, ev.Event, ev.Replica, ev.Active, ev.Provisioning, ev.Draining)
	}
	for _, d := range res.Drains {
		fmt.Printf("  drain replica %d at t=%.1fs: %d handed off, %d residents, retired t=%.1fs, %d stranded\n",
			d.Replica, float64(d.TimeNs)/1e9, d.HandedOff, d.Residents, float64(d.RetiredNs)/1e9, d.Stranded)
	}
	e := res.Econ
	fmt.Printf("  econ: %.2f GPU-hours at $%.2f/GPU-h = $%.2f | peak %d / mean %.2f replicas | %.0f good tok per GPU-h | $%.3f per Mtok\n",
		e.GPUHours, e.GPUHourPrice, e.CostUSD, e.PeakReplicas, e.MeanReplicas, e.GoodputPerGPUHour, e.CostPerMTok)
	if counters {
		for i, pr := range res.PerReplica {
			printCounters(fmt.Sprintf("replica %d", i), pr)
		}
	}
	return nil
}

// runAdhocDisagg replays one seeded Poisson workload through a
// disaggregated prefill/decode deployment (both pools routed by the named
// policy) and prints the merged summary plus the KV-handoff accounting
// and per-pool breakdown.
func runAdhocDisagg(cfg serve.Config, prefill, decode int, policy string, wl serve.Workload, rate float64, tiered, counters bool) error {
	// Policies are stateful; each pool needs its own fresh instance.
	ppol, err := serve.PolicyByName(policy)
	if err != nil {
		return err
	}
	dpol, err := serve.PolicyByName(policy)
	if err != nil {
		return err
	}
	res, err := serve.RunDisaggregated(serve.DisaggConfig{
		PrefillReplicas: prefill,
		DecodeReplicas:  decode,
		Replica:         cfg,
		PrefillPolicy:   ppol,
		DecodePolicy:    dpol,
	}, wl)
	if err != nil {
		return err
	}
	slo := adhocSLO
	s := res.Summarize(slo)
	fmt.Printf("Disaggregated serving: %d requests at %.3g req/s over %dp+%dd replicas, pool policy %s (%s, MSCCL++)\n",
		len(wl.Requests), rate, prefill, decode, res.PrefillPolicy, cfg.Model.Name)
	fmt.Printf("  merged: ttft p50 %.1f ms p99 %.1f ms | tpot p99 %.1f ms | goodput %.0f tok/s | SLO %.1f%%\n",
		s.TTFTp50ms, s.TTFTp99ms, s.TPOTp99ms, s.GoodputTokS, 100*s.SLOAttainment)
	printOverload(res.Merged, tiered)
	fmt.Printf("  KV handoff: %d transfers, %.1f GB moved, mean %.2f ms, max %.2f ms\n",
		res.Handoffs, float64(res.HandoffBytes)/1e9, float64(res.HandoffMeanNs)/1e6, float64(res.HandoffMaxNs)/1e6)
	for i, pr := range res.PerPrefill {
		fmt.Printf("  prefill %d: %d iterations (%d one-token requests completed locally)\n",
			i, pr.Iterations, len(pr.PerRequest))
	}
	for j, pr := range res.PerDecode {
		ps := pr.Summarize(slo)
		fmt.Printf("  decode %d: %4d requests, tpot p99 %6.1f ms, %d iterations\n",
			j, ps.Requests, ps.TPOTp99ms, ps.Iterations)
	}
	if counters {
		for i, pr := range res.PerPrefill {
			printCounters(fmt.Sprintf("prefill %d", i), pr)
		}
		for j, pr := range res.PerDecode {
			printCounters(fmt.Sprintf("decode %d", j), pr)
		}
	}
	return nil
}
