// Command paperbench drives the artifact scenario registry
// (internal/scenario): it lists, runs, and regression-checks every table
// and figure the repository reproduces, plus the serving-stack artifacts
// grown on top of them (the serve-* scenarios: continuous batching,
// multi-replica routing, prefix affinity, disaggregated prefill/decode).
//
// Usage:
//
//	paperbench -list
//	paperbench -run all|name[,name...]            # print human-readable text
//	paperbench -run all -json                     # print canonical JSON records
//	paperbench -run all -check                    # diff text+JSON against goldens
//	paperbench -run all -update                   # regenerate golden files
//
// Golden files live under -golden (default internal/scenario/testdata/golden,
// relative to the repository root — run `go run ./cmd/paperbench` from
// there). Each scenario owns a <name>.txt (human-readable text) and a
// <name>.json (canonical record); -check recomputes both and fails on any
// byte difference, which is how CI gates every paper artifact against
// drift. See internal/scenario/README.md for the add-a-scenario workflow.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mscclpp/internal/scenario"
)

func main() {
	list := flag.Bool("list", false, "list registered scenarios and exit")
	run := flag.String("run", "", "scenario to run: all or comma-separated names")
	asJSON := flag.Bool("json", false, "emit canonical JSON records instead of text")
	check := flag.Bool("check", false, "diff text and JSON output against golden files")
	update := flag.Bool("update", false, "regenerate golden files")
	golden := flag.String("golden", filepath.Join("internal", "scenario", "testdata", "golden"),
		"golden directory (repo-root relative)")
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "paperbench: nothing to do; use -list or -run <name|all>")
		flag.Usage()
		os.Exit(2)
	}
	if *check && *update {
		fmt.Fprintln(os.Stderr, "paperbench: -check and -update are mutually exclusive")
		os.Exit(2)
	}
	scenarios, err := resolve(*run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *check:
		if !checkGoldens(scenarios, *golden) {
			os.Exit(1)
		}
	case *update:
		if err := updateGoldens(scenarios, *golden); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := runScenarios(scenarios, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}
}

func listScenarios() {
	all := scenario.All()
	wName := len("NAME")
	for _, s := range all {
		if len(s.Name) > wName {
			wName = len(s.Name)
		}
	}
	fmt.Printf("%-*s  %-5s  %s\n", wName, "NAME", "SPEED", "TITLE")
	for _, s := range all {
		speed := "fast"
		if s.Slow {
			speed = "slow"
		}
		fmt.Printf("%-*s  %-5s  %s\n", wName, s.Name, speed, s.Title)
	}
}

// resolve expands "all" or a comma-separated name list into scenarios,
// preserving registry order for "all" and request order otherwise.
func resolve(spec string) ([]scenario.Scenario, error) {
	if spec == "all" {
		return scenario.All(), nil
	}
	var out []scenario.Scenario
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, ok := scenario.Get(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (known: %s)",
				name, strings.Join(scenario.Names(), ", "))
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty scenario list %q", spec)
	}
	return out, nil
}

// runScenarios executes each scenario, streaming either its human-readable
// text or its canonical JSON record (a stream of concatenated records —
// `jq -s` turns it into an array) to stdout.
func runScenarios(scenarios []scenario.Scenario, asJSON bool) error {
	for _, s := range scenarios {
		var textOut io.Writer
		if !asJSON {
			textOut = os.Stdout
		}
		rec, err := s.Exec(textOut)
		if err != nil {
			return err
		}
		if asJSON {
			if err := rec.Encode(os.Stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

// render executes one scenario and returns the exact bytes of both golden
// views.
func render(s scenario.Scenario) (text, jsonRec []byte, err error) {
	var buf bytes.Buffer
	rec, err := s.Exec(&buf)
	if err != nil {
		return nil, nil, err
	}
	var jb bytes.Buffer
	if err := rec.Encode(&jb); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), jb.Bytes(), nil
}

func goldenPaths(dir string, s scenario.Scenario) (txt, jsn string) {
	return filepath.Join(dir, s.Name+".txt"), filepath.Join(dir, s.Name+".json")
}

func checkGoldens(scenarios []scenario.Scenario, dir string) bool {
	ok := true
	for _, s := range scenarios {
		text, jsonRec, err := render(s)
		if err != nil {
			fmt.Printf("FAIL  %-10s %v\n", s.Name, err)
			ok = false
			continue
		}
		txtPath, jsnPath := goldenPaths(dir, s)
		drift := compareGolden(s.Name, "text", txtPath, text)
		drift = compareGolden(s.Name, "json", jsnPath, jsonRec) || drift
		if drift {
			ok = false
		} else {
			fmt.Printf("ok    %s\n", s.Name)
		}
	}
	if !ok {
		fmt.Println("\ngolden drift detected; inspect with -run <name>, then refresh intentional changes with -update")
	}
	return ok
}

// compareGolden diffs got against the committed golden file, reporting the
// first differing line via scenario.DiffGolden. It returns true on drift.
func compareGolden(name, kind, path string, got []byte) bool {
	want, err := os.ReadFile(path)
	if err != nil {
		fmt.Printf("FAIL  %-10s missing golden %s (run paperbench -run %s -update)\n", name, path, name)
		return true
	}
	d := scenario.DiffGolden(got, want)
	if d == "" {
		return false
	}
	fmt.Printf("FAIL  %-10s %s drift vs %s\n", name, kind, path)
	for _, line := range strings.Split(d, "\n") {
		fmt.Printf("      %s\n", line)
	}
	return true
}

func updateGoldens(scenarios []scenario.Scenario, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range scenarios {
		text, jsonRec, err := render(s)
		if err != nil {
			return err
		}
		txtPath, jsnPath := goldenPaths(dir, s)
		if err := os.WriteFile(txtPath, text, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(jsnPath, jsonRec, 0o644); err != nil {
			return err
		}
		fmt.Printf("updated  %s\n", s.Name)
	}
	return nil
}
