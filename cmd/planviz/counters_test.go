package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mscclpp/internal/benchkit"
	"mscclpp/internal/sim"
)

// TestRenderCounters checks the utilization view structurally against a
// synthetic record: one line per group, gauge widths proportional to the
// busy fraction over the report's elapsed span, and the aggregate counts.
func TestRenderCounters(t *testing.T) {
	a, b := sim.NewResource("a"), sim.NewResource("b")
	a.Reserve(0, 50)
	a.Reserve(0, 50) // queues behind the first: busy 100, maxq 2
	b.Reserve(0, 25)
	rec := &benchkit.Record{Name: "synthetic"}
	rec.AddCounters("phase one", 100, []sim.CounterGroup{sim.Group("gpu", a), sim.Group("kv", b)})

	var buf bytes.Buffer
	if err := renderCounters(&buf, rec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "phase one (elapsed 0.000 ms)") {
		t.Errorf("missing report header in:\n%s", out)
	}
	wantGauges := map[string]int{"gpu": 30, "kv": 8} // 100% and 25% of width 30
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		want, ok := wantGauges[fields[0]]
		if !ok {
			continue
		}
		delete(wantGauges, fields[0])
		if got := strings.Count(line, "#"); got != want {
			t.Errorf("group %s gauge has %d ticks, want %d: %q", fields[0], got, want, line)
		}
	}
	if len(wantGauges) != 0 {
		t.Errorf("groups %v missing from:\n%s", wantGauges, out)
	}
	if !strings.Contains(out, "maxq 2") {
		t.Errorf("gpu row does not report the queue pile-up:\n%s", out)
	}

	if err := renderCounters(&buf, &benchkit.Record{Name: "empty"}); err == nil {
		t.Error("want error for a record with no counter reports")
	}
}

// TestRenderRoofline checks the roofline view against synthetic metrics:
// rows appear in ascending batch order, the ceiling switches from the
// memory slope to the compute roof at the ridge point, and records without
// roofline metrics are rejected.
func TestRenderRoofline(t *testing.T) {
	rec := &benchkit.Record{Name: "synthetic"}
	rec.AddMetric("roofline peak", "GFLOP/s", 1000)
	rec.AddMetric("roofline membw", "GB/s", 100) // ridge at 10 FLOP/B
	cells := []struct {
		bsz                 int
		intensity, achieved float64
		wantCeiling         float64
		wantBound           string
	}{
		{1, 1, 90, 100, "mem"},
		{4, 4, 380, 400, "mem"},
		{16, 16, 950, 1000, "comp"},
	}
	for _, c := range cells {
		rec.AddMetric(fmt.Sprintf("roofline bsz=%d intensity", c.bsz), "FLOP/B", c.intensity)
		rec.AddMetric(fmt.Sprintf("roofline bsz=%d achieved", c.bsz), "GFLOP/s", c.achieved)
	}

	var buf bytes.Buffer
	if err := renderRoofline(&buf, rec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ridge 10.0 FLOP/B") {
		t.Errorf("missing ridge point in:\n%s", out)
	}
	var rows []string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "[") {
			rows = append(rows, line)
		}
	}
	if len(rows) != len(cells) {
		t.Fatalf("got %d roofline rows, want %d:\n%s", len(rows), len(cells), out)
	}
	for i, c := range cells {
		fields := strings.Fields(rows[i])
		if fields[0] != fmt.Sprint(c.bsz) {
			t.Errorf("row %d is for bsz %s, want %d (rows must sort ascending)", i, fields[0], c.bsz)
		}
		if fields[2] != fmt.Sprintf("%.0f", c.wantCeiling) {
			t.Errorf("bsz %d ceiling %s, want %.0f", c.bsz, fields[2], c.wantCeiling)
		}
		if !strings.HasSuffix(rows[i], c.wantBound) {
			t.Errorf("bsz %d row not labeled %q: %q", c.bsz, c.wantBound, rows[i])
		}
	}

	if err := renderRoofline(&buf, &benchkit.Record{Name: "empty"}); err == nil {
		t.Error("want error for a record with no roofline metrics")
	}
}

// TestRenderRecordLoads checks the file-loading path end to end: a record
// encoded in the canonical golden byte format loads and renders, and a
// missing file surfaces the error.
func TestRenderRecordLoads(t *testing.T) {
	rec := &benchkit.Record{Name: "roundtrip"}
	r := sim.NewResource("r")
	r.Reserve(0, 10)
	rec.AddCounters("io", 20, []sim.CounterGroup{sim.Group("g", r)})
	var enc bytes.Buffer
	if err := rec.Encode(&enc); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rec.json")
	if err := os.WriteFile(path, enc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := renderRecord(&buf, path, renderCounters); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "io (elapsed") {
		t.Errorf("rendered output missing the report: %q", buf.String())
	}
	if err := renderRecord(&buf, filepath.Join(t.TempDir(), "absent.json"), renderCounters); err == nil {
		t.Error("want error for a missing record file")
	}
}
