// Command planviz lowers a bundled DSL program and prints its execution
// plan — either a human-readable summary or the full JSON the DSL Executor
// interprets. It can also render the machine-readable record a scenario
// emits: a utilization view of its resource counter reports, or the decode
// roofline from the calibrate-roofline metrics.
//
// Usage:
//
//	planviz -program 1pa|2pahb|ringrs -ranks 8 -size 65536 [-tb 2] [-json]
//	planviz -counters record.json   # utilization bars per counter report
//	planviz -roofline record.json   # decode roofline from calibrate-roofline
//
// where record.json is `paperbench -run <name> -json` output (or a
// committed golden under internal/scenario/testdata/golden).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mscclpp/internal/dsl"
	"mscclpp/internal/plan"
)

func main() {
	program := flag.String("program", "1pa", "1pa|2pahb|ringrs")
	ranks := flag.Int("ranks", 8, "number of ranks")
	size := flag.Int64("size", 64<<10, "buffer size in bytes")
	tb := flag.Int("tb", 2, "thread blocks per rank (1pa/2pahb)")
	asJSON := flag.Bool("json", false, "dump full JSON plan")
	counters := flag.String("counters", "", "render utilization bars from a scenario record JSON file")
	roofline := flag.String("roofline", "", "render the decode roofline from a scenario record JSON file")
	flag.Parse()

	switch {
	case *counters != "":
		if err := renderRecord(os.Stdout, *counters, renderCounters); err != nil {
			log.Fatal(err)
		}
	case *roofline != "":
		if err := renderRecord(os.Stdout, *roofline, renderRoofline); err != nil {
			log.Fatal(err)
		}
	default:
		if err := render(os.Stdout, *program, *ranks, *size, *tb, *asJSON); err != nil {
			log.Fatal(err)
		}
	}
}

// lower builds and lowers the named bundled program.
func lower(program string, ranks int, size int64, tb int) (*plan.Plan, error) {
	var prog *dsl.Program
	var err error
	switch program {
	case "1pa":
		prog, err = dsl.BuildAllReduce1PA(ranks, size, tb)
	case "2pahb":
		prog, err = dsl.BuildAllReduce2PAHB(ranks, size, tb)
	case "ringrs":
		prog, err = dsl.BuildRingReduceScatter(ranks, size)
	default:
		return nil, fmt.Errorf("unknown program %q", program)
	}
	if err != nil {
		return nil, err
	}
	return prog.Lower()
}

// render lowers the program and writes either the JSON plan or the
// human-readable summary to w.
func render(w io.Writer, program string, ranks int, size int64, tb int, asJSON bool) error {
	pl, err := lower(program, ranks, size, tb)
	if err != nil {
		return err
	}
	if asJSON {
		data, err := pl.Marshal()
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	fmt.Fprintf(w, "plan %q (%s): %d ranks x %d TBs, in=%dB out=%dB\n",
		pl.Name, pl.Collective, pl.Ranks, pl.NumTB, pl.InSize, pl.OutSize)
	fmt.Fprintf(w, "channels: %d, scratch buffers: %d, total ops: %d\n",
		len(pl.Channels), len(pl.Scratch), pl.OpCount())
	hist := map[plan.OpCode]int{}
	for _, tbs := range pl.Programs {
		for _, ops := range tbs {
			for _, op := range ops {
				hist[op.Code]++
			}
		}
	}
	fmt.Fprintln(w, "op histogram:")
	for _, code := range []plan.OpCode{plan.OpPut, plan.OpPutWithSignal, plan.OpPutPackets,
		plan.OpReducePut, plan.OpSignal, plan.OpWait, plan.OpFlush, plan.OpAwaitPackets,
		plan.OpChanReduce, plan.OpLocalCopy, plan.OpLocalReduce, plan.OpTBSync,
		plan.OpGridBarrier, plan.OpSwitchReduce, plan.OpSwitchBcast} {
		if n := hist[code]; n > 0 {
			fmt.Fprintf(w, "  %-18s %d\n", code, n)
		}
	}
	fmt.Fprintln(w, "\nrank 0, thread block 0:")
	for i, op := range pl.Programs[0][0] {
		fmt.Fprintf(w, "  %3d: %-16s ch=%-3d dst=[%s+%d,%d] src=[%s+%d,%d] flag=%d\n",
			i, op.Code, op.Channel,
			op.Dst.Buf.Kind, op.Dst.Off, op.Dst.Size,
			op.Src.Buf.Kind, op.Src.Off, op.Src.Size, op.Flag)
	}
	return nil
}
