package main

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mscclpp/internal/plan"
)

// TestRenderSummary smoke-tests the human-readable rendering of every
// bundled program and checks structural invariants of the output: the
// header identifies the plan, the op histogram sums to the reported total
// op count, and the rank-0/TB-0 trace lists every op of that thread block.
func TestRenderSummary(t *testing.T) {
	histRe := regexp.MustCompile(`^  ([a-z_]+) +(\d+)$`)
	opRe := regexp.MustCompile(`^ +\d+: `)
	for _, program := range []string{"1pa", "2pahb", "ringrs"} {
		t.Run(program, func(t *testing.T) {
			const ranks, size, tb = 8, 64 << 10, 2
			var buf bytes.Buffer
			if err := render(&buf, program, ranks, size, tb, false); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, fmt.Sprintf(": %d ranks x ", ranks)) {
				t.Errorf("header does not report %d ranks:\n%s", ranks, out)
			}
			// The lowered plan is the ground truth for the invariants.
			pl, err := lower(program, ranks, size, tb)
			if err != nil {
				t.Fatal(err)
			}
			wantHeader := fmt.Sprintf("plan %q (%s): %d ranks x %d TBs, in=%dB out=%dB",
				pl.Name, pl.Collective, pl.Ranks, pl.NumTB, pl.InSize, pl.OutSize)
			if !strings.Contains(out, wantHeader) {
				t.Errorf("missing header %q in:\n%s", wantHeader, out)
			}
			// Histogram counts must sum to the reported total op count.
			histSum := 0
			for _, line := range strings.Split(out, "\n") {
				if m := histRe.FindStringSubmatch(line); m != nil {
					n, err := strconv.Atoi(m[2])
					if err != nil || n <= 0 {
						t.Errorf("bad histogram line %q", line)
						continue
					}
					histSum += n
				}
			}
			if histSum != pl.OpCount() {
				t.Errorf("op histogram sums to %d, plan has %d ops", histSum, pl.OpCount())
			}
			// The rank-0/TB-0 trace must list exactly that program's ops.
			traceLines := 0
			for _, line := range strings.Split(out, "\n") {
				if opRe.MatchString(line) {
					traceLines++
				}
			}
			if want := len(pl.Programs[0][0]); traceLines != want {
				t.Errorf("trace lists %d ops, rank 0 TB 0 has %d", traceLines, want)
			}
		})
	}
}

// TestRenderJSON checks the -json mode round-trips through the plan
// loader: the emitted bytes are exactly Marshal output plus a newline, and
// they unmarshal into a plan that passes validation.
func TestRenderJSON(t *testing.T) {
	const ranks, size, tb = 8, 64 << 10, 2
	var buf bytes.Buffer
	if err := render(&buf, "2pahb", ranks, size, tb, true); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatal("JSON output must end with a newline")
	}
	pl, err := plan.Unmarshal(bytes.TrimSuffix(out, []byte("\n")))
	if err != nil {
		t.Fatalf("emitted JSON does not load: %v", err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("emitted plan fails validation: %v", err)
	}
	if pl.Ranks != ranks {
		t.Errorf("plan has %d ranks, want %d", pl.Ranks, ranks)
	}
	if pl.OpCount() == 0 {
		t.Error("plan has no ops")
	}
}

// TestRenderUnknownProgram checks the error path.
func TestRenderUnknownProgram(t *testing.T) {
	var buf bytes.Buffer
	err := render(&buf, "nope", 8, 1024, 2, false)
	if err == nil || !strings.Contains(err.Error(), `unknown program "nope"`) {
		t.Fatalf("want unknown-program error, got %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("error path wrote output: %q", buf.String())
	}
}
