package main

// Counter-report views: planviz can render the machine-readable record a
// scenario emits (paperbench -run <name> -json > record.json) instead of a
// DSL plan. -counters draws per-group utilization bars from the "where did
// the time go" counter reports; -roofline draws the decode roofline from
// the calibrate-roofline metrics (peak, memory bandwidth, per-batch
// arithmetic intensity and achieved FLOP rate).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"mscclpp/internal/benchkit"
)

// loadRecord reads one canonical benchkit.Record JSON file (the byte format
// of the committed goldens and of paperbench -json).
func loadRecord(path string) (*benchkit.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec benchkit.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// renderRecord loads a record file and feeds it to one of the record views.
func renderRecord(w io.Writer, path string, view func(io.Writer, *benchkit.Record) error) error {
	rec, err := loadRecord(path)
	if err != nil {
		return err
	}
	return view(w, rec)
}

// bar renders a fixed-width ASCII gauge of frac in [0, 1].
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// renderCounters draws every counter report in the record as a utilization
// view: one gauge per resource group, busy fraction over the report's
// elapsed virtual-time span, with the aggregate reservation count and the
// deepest queue observed.
func renderCounters(w io.Writer, rec *benchkit.Record) error {
	if len(rec.Counters) == 0 {
		return fmt.Errorf("record %q has no counter reports (run a scenario that emits them, e.g. calibrate-*)", rec.Name)
	}
	for _, cr := range rec.Counters {
		fmt.Fprintf(w, "%s (elapsed %.3f ms)\n", cr.Title, float64(cr.ElapsedNs)/1e6)
		for _, g := range cr.Groups {
			u := benchkit.Utilization(g, cr.ElapsedNs)
			t := benchkit.GroupTotals(g)
			fmt.Fprintf(w, "  %-10s [%s] %5.1f%%  %3d res %9d reserves  maxq %d\n",
				g.Name, bar(u, 30), 100*u, len(g.Stats), t.Reservations, t.MaxQueueDepth)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// rooflineBszRe matches the per-batch metrics calibrate-roofline records.
var rooflineBszRe = regexp.MustCompile(`^roofline bsz=(\d+) (intensity|achieved)$`)

// renderRoofline draws the decode roofline from a record's metrics: the
// compute and memory ceilings, the ridge point, and per batch size the
// arithmetic intensity, the ceiling it faces, and how much of that ceiling
// the simulated decode step achieved.
func renderRoofline(w io.Writer, rec *benchkit.Record) error {
	var peak, membw float64
	type pt struct{ intensity, achieved float64 }
	pts := map[int]*pt{}
	for _, m := range rec.Metrics {
		switch m.Name {
		case "roofline peak":
			peak = m.Value
		case "roofline membw":
			membw = m.Value
		default:
			g := rooflineBszRe.FindStringSubmatch(m.Name)
			if g == nil {
				continue
			}
			bsz, err := strconv.Atoi(g[1])
			if err != nil {
				continue
			}
			p := pts[bsz]
			if p == nil {
				p = &pt{}
				pts[bsz] = p
			}
			if g[2] == "intensity" {
				p.intensity = m.Value
			} else {
				p.achieved = m.Value
			}
		}
	}
	if peak <= 0 || membw <= 0 || len(pts) == 0 {
		return fmt.Errorf("record %q has no roofline metrics (run: paperbench -run calibrate-roofline -json)", rec.Name)
	}
	order := make([]int, 0, len(pts))
	for bsz := range pts {
		order = append(order, bsz)
	}
	sort.Ints(order)
	ridge := peak / membw
	fmt.Fprintf(w, "roofline: peak %.0f GFLOP/s, mem %.0f GB/s, ridge %.1f FLOP/B\n", peak, membw, ridge)
	fmt.Fprintf(w, "%6s %10s %12s %12s  achieved/ceiling\n", "bsz", "FLOP/B", "ceiling", "achieved")
	for _, bsz := range order {
		p := pts[bsz]
		ceiling := peak
		if c := p.intensity * membw; c < ceiling {
			ceiling = c
		}
		bound := "comp"
		if p.intensity < ridge {
			bound = "mem"
		}
		frac := 0.0
		if ceiling > 0 {
			frac = p.achieved / ceiling
		}
		fmt.Fprintf(w, "%6d %10.1f %12.0f %12.0f  [%s] %5.1f%% %s\n",
			bsz, p.intensity, ceiling, p.achieved, bar(frac, 30), 100*frac, bound)
	}
	return nil
}
